#!/usr/bin/env bash
# Tier-1 CI gate: build, test, lint, format.
#
# Everything runs offline — external dependencies are provided by the shim
# crates under crates/shims/ (see the workspace Cargo.toml).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo bench --no-run"
# Benches must at least compile so they cannot rot silently.
cargo bench --no-run

echo "==> scaling_report smoke sweep (BENCH_dist.json)"
# A small distributed sweep so the modeled-perf trajectory stays
# machine-readable; the bin cross-checks recorded allgather volumes
# against the Table I closed form.
cargo run --release -p hpcg-bench --bin scaling_report -- \
    --size 8 --iters 2 --nodes 1,2,4 --out BENCH_dist.json

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> ci.sh: all green"
