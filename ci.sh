#!/usr/bin/env bash
# Tier-1 CI gate: build, test, lint, format.
#
# Everything runs offline — external dependencies are provided by the shim
# crates under crates/shims/ (see the workspace Cargo.toml).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo bench --no-run"
# Benches must at least compile so they cannot rot silently.
cargo bench --no-run

echo "==> scaling_report smoke sweep (BENCH_dist.json)"
# A small distributed sweep so the modeled-perf trajectory stays
# machine-readable; the bin cross-checks recorded allgather volumes
# against the Table I closed form.
cargo run --release -p hpcg-bench --bin scaling_report -- \
    --size 8 --iters 2 --nodes 1,2,4 --out BENCH_dist.json
# Sharded execution gates: every sweep point carries a real measured
# speedup against the Sequential baseline; multi-node points must show
# split-phase exchange time actually hidden behind compute; and the
# modeled-vs-measured ratio stays inside a wide sanity band (this tiny
# problem runs real threads against a model of a big cluster, so the
# band only catches measurement or attribution collapsing to zero).
python3 -c "
import json
d = json.load(open('BENCH_dist.json'))
assert d['sequential_baseline_secs'] > 0, 'no sequential baseline timed'
for e in d['sweep']:
    p = e['nodes']
    assert e['real_speedup'] > 0, f'{p} nodes: no real speedup recorded'
    assert 1e-3 <= e['model_error'] <= 1e4, (
        f\"{p} nodes: model error {e['model_error']} outside sanity band\")
    if p > 1:
        assert e['overlap_hidden_secs'] > 0, (
            f'{p} nodes: split-phase exchange hid no time behind compute')
    else:
        assert e['overlap_hidden_secs'] == 0, '1 node has nobody to overlap with'
    print(f\"{p} nodes: model_error x{e['model_error']:.2f}, \"
          f\"real_speedup x{e['real_speedup']:.3f}, \"
          f\"overlap hidden {e['overlap_hidden_secs']*1e3:.3f} ms\")
" || { echo "BENCH_dist.json sharded-execution gate failed" >&2; exit 1; }

echo "==> dist real-exec smoke (dist:4 HPCG vs Sequential, measured overlap)"
# The determinism stress suite pins HPCG, sparse-frontier BFS and plan
# replay bitwise-identical to Sequential on dist:p for p in {1,2,3,4,7}
# (already part of 'cargo test -q'; rerun here so the gate is explicit),
# then a dist:4 report must show nonzero measured exchange overlap.
cargo test -q -p hpcg --test dist_determinism
cargo run --release -p hpcg-bench --bin hpcg_report -- \
    --size 8 --iters 3 --backend dist:4 > HPCG_dist_smoke.txt
python3 -c "
import re
t = open('HPCG_dist_smoke.txt').read()
m = re.search(r'([0-9.]+) ms exchange hidden behind compute', t)
assert m, 'hpcg_report printed no exchange-hidden line'
assert float(m.group(1)) > 0, 'sharded dist:4 run hid no exchange time'
print(f'dist:4 smoke: {m.group(1)} ms exchange hidden behind compute')
" || { echo "dist:4 real-exec smoke gate failed" >&2; exit 1; }

echo "==> perf_probe smoke (BENCH_shared.json)"
# Shared-memory kernel timings in machine-readable form — the
# counterpart of BENCH_dist.json for SpMV/dot regressions.
cargo run --release -p hpcg-bench --bin perf_probe -- \
    --size 16 --reps 40 --out BENCH_shared.json
# Compiled-plan replay must amortize: replaying a cached plan can never be
# meaningfully slower than re-recording the pipeline it was compiled from
# (5 % slack absorbs timer noise on these sub-millisecond kernels).
python3 -c "
import json
d = json.load(open('BENCH_shared.json'))
amort = d['amortization']
assert amort, 'perf_probe emitted no amortization entries'
for e in amort:
    assert e['replay_secs'] <= e['record_secs'] * 1.05, (
        f\"{e['kernel']}: replay {e['replay_secs']:.3e}s slower than \"
        f\"record {e['record_secs']:.3e}s\")
    print(f\"{e['kernel']}: replay amortizes record \"
          f\"({e['speedup']:.2f}x)\")
" || { echo "BENCH_shared.json replay amortization gate failed" >&2; exit 1; }
# Tracing off must stay free: the disabled span probe every kernel entry
# now carries may cost at most 1 % of one spmv_dot invocation.
python3 -c "
import json
d = json.load(open('BENCH_shared.json'))
o = d['obs_overhead']
assert o['ratio'] <= 1.01, f\"disabled tracing costs {o['ratio']:.4f}x\"
print(f\"obs overhead (tracing off): {o['span_probe_secs']*1e9:.2f} ns/probe \"
      f\"on a {o['kernel_secs']*1e6:.1f} us kernel ({o['ratio']:.6f}x)\")
" || { echo "BENCH_shared.json obs-overhead gate failed" >&2; exit 1; }

echo "==> hpcg_report trace smoke (Chrome trace-event JSON)"
# A traced distributed solve must emit parseable Chrome trace JSON with
# spans from every kernel class the instrumentation covers.
cargo run --release -p hpcg-bench --bin hpcg_report -- \
    --size 16 --iters 3 --backend dist:2 --trace BENCH_trace.json > /dev/null
python3 -c "
import json, collections
d = json.load(open('BENCH_trace.json'))
ev = d['traceEvents']
assert ev, 'trace is empty'
assert all(e['ph'] in ('X', 'M') for e in ev), 'expected X spans + M metadata'
named = [e['args']['name'] for e in ev
         if e['ph'] == 'M' and e['name'] == 'thread_name']
assert any(n.startswith('node ') for n in named), (
    f'no BSP worker thread names in metadata: {named}')
cats = collections.Counter(e['cat'] for e in ev if e['ph'] == 'X')
for c in ['spmv', 'dot', 'update', 'fused', 'plan', 'superstep', 'shard']:
    assert cats.get(c, 0) > 0, f'no {c} spans recorded'
print('BENCH_trace.json:', len(ev), 'events,',
      len(named), 'named worker track(s),',
      ', '.join(f'{c}={n}' for c, n in sorted(cats.items())))
" || { echo "BENCH_trace.json trace gate failed" >&2; exit 1; }

echo "==> serve smoke (mixed two-tenant load, bit-exact verify, BENCH_serve.json)"
# Concurrent two-tenant mixed jobs across seq/par/dist:2; --verify
# asserts every response bit-identical to direct Sequential execution.
cargo run --release -p hpcg-bench --bin serve_bench -- \
    --threads 4 --jobs 12 --n 32 --workers 2 --verify --out BENCH_serve.json
python3 -c "
import json
d = json.load(open('BENCH_serve.json'))
assert d['total_jobs'] == 48, d['total_jobs']
assert d['verified'] is not None and d['verified'] > 0, 'verify did not run'
assert {t['tenant'] for t in d['tenants']} >= {'acme', 'zeta'}, d['tenants']
assert d['plan_cache_hits'] > 0, 'repeated jobs never hit the plan cache'
assert d['stats_ok'] is True, 'the stats wire job failed its health check'
# Communicated bytes on a tenant's bill can only come from a dist:<p>
# cluster's real superstep trace, so this pins that the smoke pushed at
# least one job through the sharded distributed path.
assert any(t['h_bytes'] > 0 for t in d['tenants']), (
    'no tenant was billed communicated bytes: no dist job ran sharded')
print('BENCH_serve.json well-formed:', d['total_jobs'], 'jobs,',
      d['verified'], 'verified bit-exact,',
      d['plan_cache_hits'], 'plan-cache hits /',
      d['plan_cache_misses'], 'misses, stats job ok')
" || { echo "BENCH_serve.json malformed" >&2; exit 1; }

echo "==> graph_report smoke (RMAT sparse-frontier BFS, BENCH_graph.json)"
# Direction-optimizing BFS over RMAT graphs: the bin hard-asserts the
# sparse-frontier levels bit-identical to the dense baseline on all three
# backends; the gate below asserts the heuristic actually exercised both
# frontier modes and that sparse frontiers beat the dense allgather.
cargo run --release -p hpcg-bench --bin graph_report -- \
    --scales 8,10 --edge-factor 8 --out BENCH_graph.json
python3 -c "
import json
d = json.load(open('BENCH_graph.json'))
assert d['sweep'], 'graph_report emitted no sweep entries'
for e in d['sweep']:
    s = e['scale']
    assert e['teps'] > 0, f'scale {s}: TEPS must be positive'
    assert e['push_steps'] > 0, f'scale {s}: push mode never selected'
    assert e['pull_steps'] > 0, f'scale {s}: pull mode never selected'
    assert e['dist_sparse_h_bytes'] < e['dist_dense_h_bytes'], (
        f'scale {s}: sparse frontiers must communicate less than dense')
    print(f\"scale {s}: {e['teps']:.3e} TEPS, \"
          f\"{e['push_steps']} push / {e['pull_steps']} pull, \"
          f\"comm {e['dist_sparse_h_bytes']:.0f} B vs dense \"
          f\"{e['dist_dense_h_bytes']:.0f} B\")
" || { echo "BENCH_graph.json gate failed" >&2; exit 1; }

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> ci.sh: all green"
