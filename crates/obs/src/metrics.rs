//! Counters, gauges and log-bucketed latency histograms.
//!
//! All metric types are built from relaxed atomics and are always on
//! (unlike spans there is no enable flag — a handful of `fetch_add`s per
//! request is noise). A [`Registry`] names them and renders a compact
//! single-line JSON dump, which is what the serve layer's `stats` wire job
//! returns.
//!
//! The histogram is HDR-style log-linear: values below 64 get their own
//! bucket (exact); above that, each power of two splits into 64 linear
//! sub-buckets, so quantization error is bounded by 2⁻⁶ ≈ 1.6 % of the
//! value. Exact minimum and maximum are tracked separately and percentiles
//! clamp to them, so a single-sample histogram reads back exactly and a
//! saturating `u64::MAX` sample reports `u64::MAX`, not a bucket floor.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Linear sub-buckets per power of two (2⁶ → ≤ 1.6 % quantization).
const SUB_BITS: u32 = 6;
const SUB: usize = 1 << SUB_BITS;
/// Bucket group 0 covers values `< SUB` exactly; groups 1..=58 cover one
/// power of two each up to `u64::MAX`.
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;

/// A log-linear latency histogram over `u64` samples (nanoseconds by
/// convention, but unit-agnostic).
#[derive(Debug)]
pub struct Histogram {
    counts: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: (0..BUCKETS)
                .map(|_| AtomicU64::new(0))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket index a value lands in (monotone in the value).
    pub fn bucket(v: u64) -> usize {
        if v < SUB as u64 {
            return v as usize;
        }
        let top = 63 - v.leading_zeros();
        let group = (top - SUB_BITS + 1) as usize;
        let sub = ((v >> (top - SUB_BITS)) as usize) & (SUB - 1);
        (group << SUB_BITS) | sub
    }

    /// The smallest value mapping to bucket `idx`.
    pub fn bucket_low(idx: usize) -> u64 {
        if idx < SUB {
            return idx as u64;
        }
        let group = (idx >> SUB_BITS) as u32;
        let sub = (idx & (SUB - 1)) as u64;
        (SUB as u64 + sub) << (group - 1)
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.counts[Self::bucket(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Wrapping on extreme sums only skews the mean, never the
        // percentiles.
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in seconds as integer nanoseconds.
    pub fn record_secs(&self, secs: f64) {
        self.record((secs.max(0.0) * 1e9) as u64);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.min.load(Ordering::Relaxed)
        }
    }

    /// Exact largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// The value at percentile `p` (0 < p ≤ 100): the smallest bucket
    /// floor whose cumulative count reaches rank `⌈p·n/100⌉`, clamped to
    /// the exact observed `[min, max]`. Exact for single samples, for
    /// values below 64, and at bucket boundaries; otherwise within the
    /// ≤ 1.6 % bucket width.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = (((p / 100.0) * total as f64).ceil() as u64).clamp(1, total);
        // Ranks at the ends are exact order statistics we track directly.
        if rank == 1 {
            return self.min();
        }
        if rank == total {
            return self.max();
        }
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c.load(Ordering::Relaxed);
            if cum >= rank {
                return Self::bucket_low(i).clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    fn dump_into(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"count\":{},\"min\":{},\"max\":{},\"mean\":{:.3},\
             \"p50\":{},\"p90\":{},\"p99\":{}}}",
            self.count(),
            self.min(),
            self.max(),
            self.mean(),
            self.percentile(50.0),
            self.percentile(90.0),
            self.percentile(99.0)
        );
    }
}

/// A named set of metrics. Lookups get-or-create; handles are `Arc`s so
/// hot paths can cache them and skip the name lookup.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(locked(&self.counters).entry(name.to_string()).or_default())
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(locked(&self.gauges).entry(name.to_string()).or_default())
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Arc::clone(
            locked(&self.histograms)
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// Compact single-line JSON dump of every metric (no spaces or
    /// newlines, so it survives whitespace-normalizing wire transports).
    pub fn dump_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, c)) in locked(&self.counters).iter().enumerate() {
            let _ = write!(
                out,
                "{}\"{}\":{}",
                if i > 0 { "," } else { "" },
                crate::json_escape(name),
                c.get()
            );
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, g)) in locked(&self.gauges).iter().enumerate() {
            let _ = write!(
                out,
                "{}\"{}\":{}",
                if i > 0 { "," } else { "" },
                crate::json_escape(name),
                g.get()
            );
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in locked(&self.histograms).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":", crate::json_escape(name));
            h.dump_into(&mut out);
        }
        out.push_str("}}");
        out
    }
}

/// The process-wide registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("jobs");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("jobs").get(), 5, "same handle by name");
        let g = r.gauge("queue_depth");
        g.set(7);
        assert_eq!(r.gauge("queue_depth").get(), 7);
    }

    #[test]
    fn buckets_are_monotone_and_floors_invert() {
        let mut prev = 0usize;
        for v in [
            0u64,
            1,
            63,
            64,
            65,
            127,
            128,
            1000,
            4095,
            4096,
            1 << 20,
            (1 << 20) + 12345,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let b = Histogram::bucket(v);
            assert!(b >= prev, "bucket index must be monotone at {v}");
            assert!(b < BUCKETS);
            let low = Histogram::bucket_low(b);
            assert!(low <= v, "floor {low} must not exceed sample {v}");
            assert_eq!(Histogram::bucket(low), b, "floor maps back to bucket");
            prev = b;
        }
        // The floor of the next bucket bounds the width to 1.6 %.
        let v = 1_000_000u64;
        let b = Histogram::bucket(v);
        let width = Histogram::bucket_low(b + 1) - Histogram::bucket_low(b);
        assert!((width as f64) <= v as f64 / 64.0 + 1.0);
    }

    #[test]
    fn single_sample_percentiles_are_exact() {
        for v in [0u64, 1, 42, 63, 64, 999, 123_456_789, u64::MAX] {
            let h = Histogram::new();
            h.record(v);
            for p in [1.0, 50.0, 90.0, 99.0, 100.0] {
                assert_eq!(h.percentile(p), v, "p{p} of a single sample {v}");
            }
            assert_eq!(h.min(), v);
            assert_eq!(h.max(), v);
            assert_eq!(h.count(), 1);
        }
    }

    #[test]
    fn small_value_percentiles_are_exact() {
        // Values below 64 each own a bucket, so ranks read back exactly.
        let h = Histogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(50.0), 31); // rank ⌈0.50·64⌉ = 32 → value 31
        assert_eq!(h.percentile(90.0), 57); // rank ⌈0.90·64⌉ = 58 → value 57
        assert_eq!(h.percentile(99.0), 63); // rank ⌈0.99·64⌉ = 64 → value 63
        assert_eq!(h.mean(), 31.5);
    }

    #[test]
    fn saturating_samples_stay_saturated() {
        let h = Histogram::new();
        for _ in 0..10 {
            h.record(u64::MAX);
        }
        assert_eq!(h.percentile(50.0), u64::MAX);
        assert_eq!(h.percentile(99.0), u64::MAX);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn percentiles_clamp_into_observed_range() {
        let h = Histogram::new();
        h.record(1_000_003); // not a bucket floor
        h.record(1_000_003);
        h.record(2_000_000);
        let p50 = h.percentile(50.0);
        assert_eq!(p50, 1_000_003, "clamped up to the exact min");
        assert_eq!(h.percentile(100.0), 2_000_000, "clamped down to max");
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn dump_json_is_single_line_and_complete() {
        let r = Registry::new();
        r.counter("a").add(3);
        r.gauge("g").set(9);
        let h = r.histogram("lat");
        h.record(5);
        let json = r.dump_json();
        assert!(!json.contains('\n'));
        assert!(!json.contains(' '));
        assert!(json.contains("\"a\":3"));
        assert!(json.contains("\"g\":9"));
        assert!(json.contains("\"lat\":{\"count\":1,\"min\":5,\"max\":5"));
        assert!(json.contains("\"p50\":5"));
    }
}
