//! Zero-dependency observability: tracing spans and metrics.
//!
//! This crate is the workspace's measurement layer, with no dependencies
//! beyond `std` (consistent with the offline-shim constraint). It has two
//! halves:
//!
//! * [`span`] — a thread-aware RAII tracer. [`span_enter`] (or the
//!   [`span!`] macro) opens a span; dropping the guard records
//!   `(name, class, start, dur, tid, depth)` into a lock-striped ring
//!   buffer. A single global [`set_enabled`] flag gates recording: the
//!   disabled path is one relaxed atomic load and returns `None`, so
//!   instrumented hot loops cost nothing measurable when tracing is off.
//!   [`chrome_trace`] renders the buffer as Chrome trace-event JSON
//!   (complete `"X"` events) loadable in `chrome://tracing` or Perfetto.
//! * [`metrics`] — a [`Registry`] of named [`Counter`]s, [`Gauge`]s and
//!   log-bucketed latency [`Histogram`]s with `p50/p90/p99` readout and a
//!   compact single-line JSON dump. Metrics are always on (they are plain
//!   relaxed atomics); only spans are gated.
//!
//! ```
//! obs::set_enabled(true);
//! {
//!     obs::span!("solve", "plan");
//!     let _inner = obs::span_enter("mxv", "spmv");
//! }
//! obs::set_enabled(false);
//! let trace = obs::chrome_trace();
//! assert!(trace.contains("\"ph\":\"X\""));
//!
//! let h = obs::global().histogram("latency_ns");
//! h.record(1_000);
//! assert_eq!(h.percentile(50.0), 1_000);
//! ```

#![warn(missing_docs)]

pub mod metrics;
pub mod span;

pub use metrics::{global, Counter, Gauge, Histogram, Registry};
pub use span::{
    adopt_tid, alloc_tid, chrome_trace, clear, dropped_count, enabled, record_span, set_enabled,
    set_thread_label, snapshot, span_count, span_enter, SpanGuard, SpanRecord,
};

use std::fmt::Write as _;

/// Escapes a string for embedding inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Opens a RAII span for the rest of the enclosing scope.
///
/// Expands to a `let` binding holding an `Option<SpanGuard>`; when tracing
/// is disabled the expansion is a single relaxed load.
#[macro_export]
macro_rules! span {
    ($name:expr, $class:expr) => {
        let _obs_span = $crate::span::span_enter($name, $class);
    };
}

#[cfg(test)]
mod tests {
    use super::json_escape;

    #[test]
    fn escape_handles_quotes_backslashes_and_controls() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb"), "a\\u000ab");
    }
}
