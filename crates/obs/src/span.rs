//! Thread-aware RAII spans in a lock-striped ring buffer.
//!
//! Every span records `(name, class, start_ns, dur_ns, tid, depth)` where
//! `start_ns` is measured from a process-wide epoch (the first span ever
//! opened), `tid` is a small dense thread id handed out per OS thread, and
//! `depth` is that thread's nesting level at entry. Records land in one of
//! [`STRIPES`] fixed-capacity rings selected by `tid`, so concurrent
//! threads rarely contend on the same mutex; a full ring overwrites its
//! oldest records (and counts them in [`dropped_count`]) rather than
//! growing without bound in long-running servers.

use std::cell::Cell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Number of independently locked rings (spans hash to one by thread id).
pub const STRIPES: usize = 16;
/// Span capacity of each stripe; the oldest records are overwritten beyond
/// this (a bounded trace, not an unbounded log).
pub const STRIPE_CAPACITY: usize = 1 << 14;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether span recording is on. One relaxed load — this is the entire
/// cost of an instrumented call site while tracing is disabled.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enables or disables span recording.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The process-wide time origin all `start_ns` values are measured from.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// One completed span.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Operation name (e.g. `"mxv"`, `"plan.run"`).
    pub name: &'static str,
    /// Coarse class for filtering (e.g. `"spmv"`, `"fused"`, `"serve"`).
    pub class: &'static str,
    /// Start time in nanoseconds from the process epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Dense per-thread id (1-based, assigned on first span).
    pub tid: u64,
    /// Nesting depth on the recording thread at entry (0 = top level).
    pub depth: u32,
}

struct Ring {
    records: Vec<SpanRecord>,
    /// Next overwrite position once the ring is at capacity.
    head: usize,
    dropped: u64,
}

struct Stripe {
    buf: Mutex<Ring>,
}

impl Stripe {
    fn lock(&self) -> MutexGuard<'_, Ring> {
        // Span recording must never take an instrumented process down; a
        // panic mid-push leaves at worst one torn record.
        self.buf.lock().unwrap_or_else(|e| e.into_inner())
    }
}

fn stripes() -> &'static [Stripe] {
    static STRIPE_SET: OnceLock<Vec<Stripe>> = OnceLock::new();
    STRIPE_SET.get_or_init(|| {
        (0..STRIPES)
            .map(|_| Stripe {
                buf: Mutex::new(Ring {
                    records: Vec::new(),
                    head: 0,
                    dropped: 0,
                }),
            })
            .collect()
    })
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// 0 = not yet assigned; [`current_tid`] assigns lazily, [`adopt_tid`]
    /// overrides (how short-lived BSP worker threads keep a stable track).
    static TID: Cell<u64> = const { Cell::new(0) };
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// This thread's span id, assigning a fresh one on first use.
fn current_tid() -> u64 {
    TID.with(|t| {
        let v = t.get();
        if v != 0 {
            v
        } else {
            let id = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(id);
            id
        }
    })
}

/// Reserves a thread id without binding it to any thread — callers hand
/// it to workers via [`adopt_tid`] so logically-identical threads across
/// operations (e.g. "node 3 of this cluster") share one trace track.
pub fn alloc_tid() -> u64 {
    NEXT_TID.fetch_add(1, Ordering::Relaxed)
}

/// Makes the calling thread record spans under `tid` (normally one
/// reserved with [`alloc_tid`]) instead of its own lazily assigned id.
pub fn adopt_tid(tid: u64) {
    TID.with(|t| t.set(tid));
}

/// `tid → human-readable label` registry backing the Chrome trace's
/// `thread_name` metadata events.
fn labels() -> &'static Mutex<Vec<(u64, String)>> {
    static LABELS: OnceLock<Mutex<Vec<(u64, String)>>> = OnceLock::new();
    LABELS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Names a thread id for trace rendering (e.g. `"node 3/8"`). Labels are
/// process-lived: they survive [`clear`] so a drained-and-refilled buffer
/// still renders named tracks.
pub fn set_thread_label(tid: u64, label: impl Into<String>) {
    let mut reg = labels().lock().unwrap_or_else(|e| e.into_inner());
    let label = label.into();
    match reg.iter_mut().find(|(t, _)| *t == tid) {
        Some((_, l)) => *l = label,
        None => reg.push((tid, label)),
    }
}

/// Registered `(tid, label)` pairs, ascending by tid.
fn thread_labels() -> Vec<(u64, String)> {
    let mut reg = labels().lock().unwrap_or_else(|e| e.into_inner()).clone();
    reg.sort_by_key(|&(t, _)| t);
    reg
}

fn push(r: SpanRecord) {
    let stripe = &stripes()[(r.tid as usize) % STRIPES];
    let ring = &mut *stripe.lock();
    if ring.records.len() < STRIPE_CAPACITY {
        ring.records.push(r);
    } else {
        let head = ring.head;
        ring.records[head] = r;
        ring.head = (head + 1) % STRIPE_CAPACITY;
        ring.dropped += 1;
    }
}

/// An open span; dropping it records the completed [`SpanRecord`].
pub struct SpanGuard {
    name: &'static str,
    class: &'static str,
    start: Instant,
    tid: u64,
    depth: u32,
}

impl SpanGuard {
    /// Opens a span unconditionally (callers normally go through
    /// [`span_enter`], which checks the enable flag first).
    pub fn enter(name: &'static str, class: &'static str) -> SpanGuard {
        let tid = current_tid();
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        let _ = epoch(); // pin the origin no later than the first span
        SpanGuard {
            name,
            class,
            start: Instant::now(),
            tid,
            depth,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let end = Instant::now();
        push(SpanRecord {
            name: self.name,
            class: self.class,
            start_ns: self.start.duration_since(epoch()).as_nanos() as u64,
            dur_ns: end.duration_since(self.start).as_nanos() as u64,
            tid: self.tid,
            depth: self.depth,
        });
    }
}

/// Opens a span if tracing is enabled. The disabled path is one relaxed
/// atomic load returning `None` (no TLS access, no clock read).
#[inline]
pub fn span_enter(name: &'static str, class: &'static str) -> Option<SpanGuard> {
    if enabled() {
        Some(SpanGuard::enter(name, class))
    } else {
        None
    }
}

/// Records a span retrospectively from explicit start/end instants (e.g.
/// queue wait measured across threads). Uses the *calling* thread's id and
/// current depth; a `start` before the process epoch clamps to it.
pub fn record_span(name: &'static str, class: &'static str, start: Instant, end: Instant) {
    if !enabled() {
        return;
    }
    let tid = current_tid();
    let depth = DEPTH.with(|d| d.get());
    push(SpanRecord {
        name,
        class,
        start_ns: start.duration_since(epoch()).as_nanos() as u64,
        dur_ns: end.duration_since(start).as_nanos() as u64,
        tid,
        depth,
    });
}

/// All buffered spans, sorted by start time (then thread, then depth).
pub fn snapshot() -> Vec<SpanRecord> {
    let mut out = Vec::with_capacity(span_count());
    for stripe in stripes() {
        out.extend_from_slice(&stripe.lock().records);
    }
    out.sort_by_key(|r| (r.start_ns, r.tid, r.depth));
    out
}

/// Number of spans currently buffered.
pub fn span_count() -> usize {
    stripes().iter().map(|s| s.lock().records.len()).sum()
}

/// Number of spans overwritten because their stripe was full.
pub fn dropped_count() -> u64 {
    stripes().iter().map(|s| s.lock().dropped).sum()
}

/// Empties the span buffer (the drop counters reset too).
pub fn clear() {
    for stripe in stripes() {
        let ring = &mut *stripe.lock();
        ring.records.clear();
        ring.head = 0;
        ring.dropped = 0;
    }
}

/// Renders the buffered spans as Chrome trace-event JSON — an object with
/// a `traceEvents` array of complete (`"ph":"X"`) duration events, with
/// timestamps in microseconds, preceded by `thread_name` metadata
/// (`"ph":"M"`) events for every labeled thread that appears in the
/// buffer (see [`set_thread_label`] — how BSP worker tracks get their
/// `node 3/8` names in Perfetto). Loadable at `chrome://tracing` or
/// <https://ui.perfetto.dev>. The buffer is left intact.
pub fn chrome_trace() -> String {
    let records = snapshot();
    let mut out = String::with_capacity(64 + records.len() * 112);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for (tid, label) in thread_labels() {
        if !records.iter().any(|r| r.tid == tid) {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
             \"args\":{{\"name\":\"{}\"}}}}",
            tid,
            crate::json_escape(&label)
        );
    }
    for r in records.iter() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{}.{:03},\"dur\":{}.{:03},\
             \"pid\":1,\"tid\":{},\"args\":{{\"depth\":{}}}}}",
            crate::json_escape(r.name),
            crate::json_escape(r.class),
            r.start_ns / 1_000,
            r.start_ns % 1_000,
            r.dur_ns / 1_000,
            r.dur_ns % 1_000,
            r.tid,
            r.depth
        );
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// The span buffer is process-global; tests that write to it take this
    /// lock so `cargo test`'s parallel runner cannot interleave them.
    fn test_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = test_lock();
        clear();
        set_enabled(false);
        {
            crate::span!("quiet", "test");
        }
        assert_eq!(span_count(), 0);
    }

    #[test]
    fn nesting_depth_is_recorded_per_thread() {
        let _g = test_lock();
        clear();
        set_enabled(true);
        {
            let _outer = span_enter("outer", "test").unwrap();
            {
                let _inner = span_enter("inner", "test").unwrap();
            }
            let _sibling = span_enter("sibling", "test").unwrap();
        }
        set_enabled(false);
        let spans = snapshot();
        assert_eq!(spans.len(), 3);
        let depth_of = |name: &str| {
            spans
                .iter()
                .find(|s| s.name == name)
                .map(|s| s.depth)
                .unwrap()
        };
        assert_eq!(depth_of("outer"), 0);
        assert_eq!(depth_of("inner"), 1);
        assert_eq!(depth_of("sibling"), 1);
        // Inner spans close no later than their parents and start inside
        // them.
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        assert!(inner.start_ns >= outer.start_ns);
        // ±2 ns slack for the independent truncations of the two clocks.
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns + 2);
    }

    #[test]
    fn scoped_threads_get_distinct_tids_and_independent_depths() {
        let _g = test_lock();
        clear();
        set_enabled(true);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    let _outer = span_enter("t.outer", "test").unwrap();
                    let _inner = span_enter("t.inner", "test").unwrap();
                });
            }
        });
        set_enabled(false);
        let spans = snapshot();
        assert_eq!(spans.len(), 6);
        let mut tids: Vec<u64> = spans
            .iter()
            .filter(|s| s.name == "t.outer")
            .map(|s| s.tid)
            .collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 3, "each scoped thread gets its own tid");
        for tid in tids {
            let outer = spans
                .iter()
                .find(|s| s.tid == tid && s.name == "t.outer")
                .unwrap();
            let inner = spans
                .iter()
                .find(|s| s.tid == tid && s.name == "t.inner")
                .unwrap();
            assert_eq!(outer.depth, 0);
            assert_eq!(inner.depth, 1, "depth is per-thread, not global");
        }
    }

    #[test]
    fn retrospective_record_span_lands_in_the_buffer() {
        let _g = test_lock();
        clear();
        set_enabled(true);
        let start = Instant::now();
        let end = start + Duration::from_micros(250);
        record_span("queue.wait", "serve", start, end);
        set_enabled(false);
        let spans = snapshot();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "queue.wait");
        assert_eq!(spans[0].dur_ns, 250_000);
    }

    #[test]
    fn full_stripe_overwrites_oldest_instead_of_growing() {
        let _g = test_lock();
        clear();
        set_enabled(true);
        let base = Instant::now();
        for i in 0..(STRIPE_CAPACITY + 10) {
            record_span("flood", "test", base, base + Duration::from_nanos(i as u64));
        }
        set_enabled(false);
        // This thread writes one stripe; it must cap out, not grow.
        assert_eq!(span_count(), STRIPE_CAPACITY);
        assert_eq!(dropped_count(), 10);
        clear();
        assert_eq!(span_count(), 0);
        assert_eq!(dropped_count(), 0);
    }

    #[test]
    fn adopted_tids_keep_a_stable_track_across_threads() {
        let _g = test_lock();
        clear();
        set_enabled(true);
        let tid = alloc_tid();
        set_thread_label(tid, "node 1/2");
        for _ in 0..2 {
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    adopt_tid(tid);
                    let _s = span_enter("worker.op", "test").unwrap();
                });
            });
        }
        set_enabled(false);
        let spans = snapshot();
        assert_eq!(spans.len(), 2);
        assert!(
            spans.iter().all(|s| s.tid == tid),
            "both short-lived worker threads recorded on the adopted tid"
        );
        let json = chrome_trace();
        assert!(json.contains(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"node 1/2\"}}}}"
        )));
    }

    #[test]
    fn unused_labels_emit_no_metadata_events() {
        let _g = test_lock();
        clear();
        set_enabled(true);
        let silent = alloc_tid();
        set_thread_label(silent, "never records");
        {
            let _s = span_enter("only.this", "test").unwrap();
        }
        set_enabled(false);
        assert!(!chrome_trace().contains("never records"));
    }

    #[test]
    fn chrome_trace_emits_complete_x_events() {
        let _g = test_lock();
        clear();
        set_enabled(true);
        {
            let _s = span_enter("render me", "test").unwrap();
        }
        set_enabled(false);
        let json = chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}"));
        assert!(json.contains("\"name\":\"render me\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"args\":{\"depth\":0}"));
    }
}
