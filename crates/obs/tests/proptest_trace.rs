//! Property test: `chrome_trace()` always renders valid JSON whose
//! `traceEvents` are complete `"X"` duration events.
//!
//! The checker is a minimal recursive-descent JSON parser written here —
//! the crate itself must stay dependency-free, and depending on the thing
//! under test to validate its own output would prove nothing.

use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// A tiny JSON parser (objects/arrays/strings/numbers/literals)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at {}", p.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(&b) if b >= 0x20 => {
                    // Consume one UTF-8 scalar (input came from a &str).
                    let len = match b {
                        _ if b < 0x80 => 1,
                        _ if b < 0xe0 => 2,
                        _ if b < 0xf0 => 3,
                        _ => 4,
                    };
                    let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + len])
                        .map_err(|e| e.to_string())?;
                    out.push_str(s);
                    self.pos += len;
                }
                _ => return Err(format!("unterminated or control char at {}", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at {start}"))
    }
}

// ---------------------------------------------------------------------------
// The property
// ---------------------------------------------------------------------------

/// The span buffer is process-global, so cases must not interleave with
/// each other across the test binary's threads.
fn buffer_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const NAMES: [&str; 5] = [
    "mxv",
    "plan.run",
    "queue.wait",
    "odd \"name\"",
    "back\\slash",
];
const CLASSES: [&str; 3] = ["spmv", "serve", "plan"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chrome_trace_is_valid_json_of_complete_x_events(
        spans in proptest::collection::vec(
            (0usize..NAMES.len(), 0usize..CLASSES.len(), 0u64..5_000_000, 0u64..1_000_000),
            0..40,
        )
    ) {
        let _g = buffer_lock();
        obs::clear();
        obs::set_enabled(true);
        let base = Instant::now();
        for &(name, class, start_off, dur) in &spans {
            let start = base + Duration::from_nanos(start_off);
            obs::record_span(
                NAMES[name],
                CLASSES[class],
                start,
                start + Duration::from_nanos(dur),
            );
        }
        obs::set_enabled(false);
        let text = obs::chrome_trace();
        obs::clear();

        let doc = Parser::parse(&text).expect("chrome_trace must be valid JSON");
        let events = match doc.get("traceEvents") {
            Some(Json::Arr(events)) => events,
            other => panic!("traceEvents must be an array, got {other:?}"),
        };
        prop_assert_eq!(events.len(), spans.len());
        for ev in events {
            // Complete duration events: ph == "X" with both ts and dur, so
            // there are no unbalanced B/E pairs by construction.
            prop_assert_eq!(ev.get("ph"), Some(&Json::Str("X".into())));
            let name = match ev.get("name") {
                Some(Json::Str(s)) => s.clone(),
                other => panic!("name must be a string, got {other:?}"),
            };
            prop_assert!(NAMES.contains(&name.as_str()), "unknown name {}", name);
            for field in ["ts", "dur", "tid", "pid"] {
                match ev.get(field) {
                    Some(Json::Num(v)) => prop_assert!(*v >= 0.0),
                    other => panic!("{field} must be numeric, got {other:?}"),
                }
            }
        }
    }
}
