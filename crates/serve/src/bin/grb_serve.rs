//! The standalone solve-service daemon.
//!
//! ```text
//! grb_serve [--socket PATH] [--workers N] [--queue-bound K]
//! ```
//!
//! Binds the wire protocol on a Unix socket and serves until killed.
//! Talk to it with [`serve::net::Client`] or any program that speaks the
//! framed line grammar in [`serve::protocol`].

use serve::net::SocketServer;
use serve::{Server, ServerConfig};
use std::path::PathBuf;
use std::sync::Arc;

fn parse_args() -> Result<(PathBuf, ServerConfig), String> {
    let mut socket = PathBuf::from("/tmp/grb_serve.sock");
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| args.next().ok_or_else(|| format!("{what} expects a value"));
        match flag.as_str() {
            "--socket" => socket = PathBuf::from(value("--socket")?),
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers expects an integer".to_string())?;
            }
            "--queue-bound" => {
                config.queue_bound = value("--queue-bound")?
                    .parse()
                    .map_err(|_| "--queue-bound expects an integer".to_string())?;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if config.workers == 0 {
        return Err("the daemon needs at least one worker".into());
    }
    Ok((socket, config))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (socket, config) = parse_args()?;
    let server = Arc::new(Server::start(config));
    let frontend = SocketServer::bind(Arc::clone(&server), &socket)?;
    println!(
        "grb_serve listening on {} ({} workers, queue bound {})",
        frontend.path().display(),
        config.workers,
        config.queue_bound
    );
    // Serve until killed.
    loop {
        std::thread::park();
    }
}
