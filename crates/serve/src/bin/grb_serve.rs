//! The standalone solve-service daemon.
//!
//! ```text
//! grb_serve [--socket PATH] [--workers N] [--queue-bound K] [--trace PATH]
//! ```
//!
//! Binds the wire protocol on a Unix socket and serves until killed.
//! Talk to it with [`serve::net::Client`] or any program that speaks the
//! framed line grammar in [`serve::protocol`].
//!
//! `--trace PATH` turns span collection on and rewrites PATH with a
//! Chrome trace-event JSON snapshot every few seconds. The daemon dies
//! by signal, so there is no shutdown hook to flush on — the periodic
//! rewrite means the last snapshot (at most a few seconds stale)
//! survives the kill. Open the file in Perfetto or `chrome://tracing`.

use serve::net::SocketServer;
use serve::{Server, ServerConfig};
use std::path::PathBuf;
use std::sync::Arc;

/// Seconds between trace-snapshot rewrites.
const TRACE_DUMP_SECS: u64 = 3;

fn parse_args() -> Result<(PathBuf, ServerConfig, Option<PathBuf>), String> {
    let mut socket = PathBuf::from("/tmp/grb_serve.sock");
    let mut config = ServerConfig::default();
    let mut trace = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| args.next().ok_or_else(|| format!("{what} expects a value"));
        match flag.as_str() {
            "--socket" => socket = PathBuf::from(value("--socket")?),
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers expects an integer".to_string())?;
            }
            "--queue-bound" => {
                config.queue_bound = value("--queue-bound")?
                    .parse()
                    .map_err(|_| "--queue-bound expects an integer".to_string())?;
            }
            "--trace" => trace = Some(PathBuf::from(value("--trace")?)),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if config.workers == 0 {
        return Err("the daemon needs at least one worker".into());
    }
    Ok((socket, config, trace))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (socket, config, trace) = parse_args()?;
    if trace.is_some() {
        obs::set_enabled(true);
    }
    let server = Arc::new(Server::start(config));
    let frontend = SocketServer::bind(Arc::clone(&server), &socket)?;
    println!(
        "grb_serve listening on {} ({} workers, queue bound {})",
        frontend.path().display(),
        config.workers,
        config.queue_bound
    );
    match trace {
        // Serve until killed, refreshing the trace snapshot as we go.
        Some(path) => {
            println!(
                "tracing to {} (rewritten every {TRACE_DUMP_SECS}s)",
                path.display()
            );
            loop {
                std::thread::sleep(std::time::Duration::from_secs(TRACE_DUMP_SECS));
                if let Err(e) = std::fs::write(&path, obs::chrome_trace()) {
                    eprintln!("trace dump to {} failed: {e}", path.display());
                }
            }
        }
        // Serve until killed.
        None => loop {
            std::thread::park();
        },
    }
}
