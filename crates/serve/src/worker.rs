//! The worker pool: each worker owns its execution state.
//!
//! A worker is one OS thread looping on the shared [`JobQueue`]. Per the
//! no-shared-pool-contention rule, everything execution-related is
//! worker-private: the worker builds a fresh `DynCtx` per job from the
//! request's [`BackendSpec`] and keeps its **own** cache of simulated
//! clusters keyed by node count (clusters live in a process-wide registry
//! and are never freed, so a per-job `Distributed::new` would leak one
//! registry slot per request; per-worker caching also means nobody else
//! can interleave cost steps into a cluster while a job runs on it —
//! which is exactly what lets `take_steps()` attribute the whole trace
//! to the job's tenant).
//!
//! Batching: when a worker pops a plain `mxv`, it drains every queued
//! `mxv` against the same matrix with the same backend spelling and runs
//! them as one shared sweep ([`batch_mxv`]). Results stay bit-identical
//! to unbatched sequential execution; each job is billed as if it ran
//! alone (server-side coalescing is the operator's win, not a billing
//! discount), so metering totals are independent of batching luck.

use crate::batcher::batch_mxv;
use crate::error::{Result, ServeError};
use crate::metering::Metering;
use crate::protocol::{BackendSpec, JobSpec, Payload, Request, Response};
use crate::queue::JobQueue;
use crate::registry::Registry;
use bsp::KernelClass;
use graphblas::{ctx_on, BackendKind, Ctx, Distributed, Exec, Vector};
use hpcg::{flops_per_iteration, run_with_rhs, GrbHpcg, RunConfig};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};

/// One unit of queued work: the request plus where to send its response.
pub struct Job {
    /// The parsed request.
    pub request: Request,
    /// Response channel; a vanished receiver is not the worker's problem.
    pub reply: mpsc::Sender<Response>,
}

/// Server-wide observability counters.
#[derive(Default)]
pub struct ServeStats {
    /// Jobs that completed successfully.
    pub jobs_ok: AtomicU64,
    /// Jobs that returned a typed error.
    pub jobs_err: AtomicU64,
    /// Batched sweeps executed (each covering ≥ 2 jobs).
    pub batched_sweeps: AtomicU64,
    /// Jobs that rode in a batched sweep instead of a private one.
    pub batched_jobs: AtomicU64,
}

/// The per-thread worker state.
pub(crate) struct Worker {
    queue: Arc<JobQueue<Job>>,
    registry: Arc<Registry>,
    metering: Arc<Metering>,
    stats: Arc<ServeStats>,
    clusters: HashMap<usize, Distributed>,
}

impl Worker {
    pub(crate) fn new(
        queue: Arc<JobQueue<Job>>,
        registry: Arc<Registry>,
        metering: Arc<Metering>,
        stats: Arc<ServeStats>,
    ) -> Worker {
        Worker {
            queue,
            registry,
            metering,
            stats,
            clusters: HashMap::new(),
        }
    }

    /// Main loop: runs until the queue closes and drains.
    pub(crate) fn run(mut self) {
        while let Some(job) = self.queue.pop() {
            if let Some(batch) = self.try_claim_batch(&job) {
                self.run_batch(batch);
            } else {
                self.run_single(job);
            }
        }
    }

    /// If `job` is a batchable SpMV, claims every queued SpMV on the same
    /// matrix with the same backend and returns the whole group.
    fn try_claim_batch(&self, job: &Job) -> Option<Vec<Job>> {
        let (name, backend) = match (&job.request.job, job.request.backend) {
            // Distributed SpMVs run individually so their cost steps come
            // from the actual cluster, not a local estimate.
            (JobSpec::Mxv { matrix, .. }, b @ (BackendSpec::Seq | BackendSpec::Par)) => {
                (matrix.clone(), b)
            }
            _ => return None,
        };
        let mates = self.queue.drain_where(|other| {
            other.request.backend == backend
                && matches!(&other.request.job, JobSpec::Mxv { matrix, .. } if *matrix == name)
        });
        if mates.is_empty() {
            return None;
        }
        let mut batch = Vec::with_capacity(mates.len() + 1);
        // Safe: the caller hands the popped job over in run().
        batch.push(Job {
            request: job.request.clone(),
            reply: job.reply.clone(),
        });
        batch.extend(mates);
        Some(batch)
    }

    /// Runs a group of same-matrix SpMVs as one shared sweep.
    fn run_batch(&mut self, batch: Vec<Job>) {
        let name = match &batch[0].request.job {
            JobSpec::Mxv { matrix, .. } => matrix.clone(),
            _ => unreachable!("try_claim_batch only groups mxv jobs"),
        };
        let outcome = self.registry.get(&name).and_then(|a| {
            let xs: Vec<Vector<f64>> = batch
                .iter()
                .map(|j| match &j.request.job {
                    JobSpec::Mxv { x, .. } => Vector::from_dense(x.clone()),
                    _ => unreachable!(),
                })
                .collect();
            let refs: Vec<&Vector<f64>> = xs.iter().collect();
            let ys = batch_mxv(&a, &refs)?;
            Ok((a.nnz(), ys))
        });
        match outcome {
            Ok((nnz, ys)) => {
                self.stats.batched_sweeps.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .batched_jobs
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                for (job, y) in batch.iter().zip(ys) {
                    // Billed exactly like a lone SpMV (see module docs).
                    self.metering
                        .charge_local(&job.request.tenant, KernelClass::SpMV, nnz, 1);
                    let meter = self.metering.complete_job(&job.request.tenant);
                    self.stats.jobs_ok.fetch_add(1, Ordering::Relaxed);
                    let _ = job.reply.send(Response::Ok {
                        payload: Payload::Vector(y.as_slice().to_vec()),
                        meter,
                    });
                }
            }
            Err(e) => {
                let resp = Response::from_error(&e);
                for job in &batch {
                    self.stats.jobs_err.fetch_add(1, Ordering::Relaxed);
                    let _ = job.reply.send(resp.clone());
                }
            }
        }
    }

    /// Runs one job end to end and replies.
    fn run_single(&mut self, job: Job) {
        let response = match self.execute(&job.request) {
            Ok(payload) => {
                let meter = self.metering.complete_job(&job.request.tenant);
                self.stats.jobs_ok.fetch_add(1, Ordering::Relaxed);
                Response::Ok { payload, meter }
            }
            Err(e) => {
                self.stats.jobs_err.fetch_add(1, Ordering::Relaxed);
                Response::from_error(&e)
            }
        };
        let _ = job.reply.send(response);
    }

    /// The worker's cached cluster for `p` nodes.
    fn cluster(&mut self, p: usize) -> Distributed {
        *self
            .clusters
            .entry(p)
            .or_insert_with(|| Distributed::new(p))
    }

    /// Executes `req`, charging its tenant.
    fn execute(&mut self, req: &Request) -> Result<Payload> {
        // `put` mutates the registry, no backend involved.
        if let JobSpec::Put {
            name,
            nrows,
            ncols,
            triplets,
        } = &req.job
        {
            self.registry.put(name, *nrows, *ncols, triplets)?;
            self.metering
                .charge_local(&req.tenant, KernelClass::Other, triplets.len(), 1);
            return Ok(Payload::Ack);
        }
        match req.backend {
            BackendSpec::Seq => {
                let (payload, charge) = run_job(ctx_on(BackendKind::Sequential), self, req)?;
                self.metering
                    .charge_local(&req.tenant, charge.0, charge.1, charge.2);
                Ok(payload)
            }
            BackendSpec::Par => {
                let (payload, charge) = run_job(ctx_on(BackendKind::Parallel), self, req)?;
                self.metering
                    .charge_local(&req.tenant, charge.0, charge.1, charge.2);
                Ok(payload)
            }
            BackendSpec::Dist(p) => {
                let cluster = self.cluster(p);
                let result = run_job(ctx_on(BackendKind::Dist(cluster)), self, req);
                // Bill the steps the cluster actually recorded — the whole
                // point of reusing the BSP cost model as the meter. Taken
                // on the error path too, so a failed job cannot leak its
                // steps into the next job's bill.
                let steps = cluster.take_steps();
                match result {
                    Ok((payload, _)) => {
                        self.metering.charge_steps(&req.tenant, steps);
                        Ok(payload)
                    }
                    Err(e) => Err(e),
                }
            }
        }
    }
}

/// A local-billing estimate: `(class, elements, vectors)`.
type Charge = (KernelClass, usize, usize);

/// Runs the compute of one job on `exec`; returns the payload plus the
/// charge used when the backend has no cost trace of its own.
fn run_job<E: Exec>(exec: Ctx<E>, w: &Worker, req: &Request) -> Result<(Payload, Charge)> {
    match &req.job {
        JobSpec::Put { .. } => unreachable!("put handled before backend dispatch"),
        JobSpec::Mxv { matrix, x } => {
            let a = w.registry.get(matrix)?;
            let x = Vector::from_dense(x.clone());
            let mut y = Vector::zeros(a.nrows());
            exec.mxv(&a, &x).into(&mut y)?;
            Ok((
                Payload::Vector(y.as_slice().to_vec()),
                (KernelClass::SpMV, a.nnz(), 1),
            ))
        }
        JobSpec::Dot { x, y } => {
            let n = x.len();
            let xv = Vector::from_dense(x.clone());
            let yv = Vector::from_dense(y.clone());
            let d = exec.dot(&xv, &yv).compute()?;
            Ok((Payload::Scalar(d), (KernelClass::Dot, n, 2)))
        }
        JobSpec::Bfs { matrix, source } => {
            let a = w.registry.get(matrix)?;
            let levels = graphblas::algorithms::bfs_levels(exec, &a, *source)?;
            let rounds = levels.iter().copied().max().unwrap_or(0).max(1) as usize;
            Ok((
                Payload::Levels(levels),
                (KernelClass::SpMV, a.nnz(), rounds),
            ))
        }
        JobSpec::Sssp { matrix, source } => {
            let a = w.registry.get(matrix)?;
            let dist = graphblas::algorithms::sssp(exec, &a, *source)?;
            Ok((
                Payload::Vector(dist),
                (KernelClass::SpMV, a.nnz(), a.nrows().max(1)),
            ))
        }
        JobSpec::Pagerank {
            matrix,
            damping,
            tol,
            max_iters,
        } => {
            let a = w.registry.get(matrix)?;
            let (ranks, iters) =
                graphblas::algorithms::pagerank(exec, &a, *damping, *tol, *max_iters)?;
            Ok((
                Payload::Vector(ranks.as_slice().to_vec()),
                (KernelClass::SpMV, a.nnz(), iters.max(1)),
            ))
        }
        JobSpec::TriangleCount { matrix } => {
            let a = w.registry.get(matrix)?;
            let count = graphblas::algorithms::triangle_count(exec, &a)?;
            Ok((Payload::Count(count), (KernelClass::Other, a.nnz(), 1)))
        }
        JobSpec::Cg { matrix, iters, b } => {
            let a = w.registry.get(matrix)?;
            let result = cg_plain(exec, &a, b, *iters)?;
            Ok((result, (KernelClass::SpMV, a.nnz(), (*iters).max(1))))
        }
        JobSpec::Hpcg {
            size,
            levels,
            iters,
        } => {
            let problem = w.registry.hpcg_problem(*size, *levels)?;
            let flops = flops_per_iteration(&problem);
            let fine_nnz = problem.levels[0].a.nnz();
            let b = problem.b.clone();
            let mut k = GrbHpcg::with_ctx(problem.as_ref().clone(), exec);
            let (_report, cg) = run_with_rhs(
                &mut k,
                &b,
                flops,
                RunConfig {
                    iterations: *iters,
                    preconditioned: true,
                },
            );
            Ok((
                Payload::Solve {
                    iterations: cg.iterations,
                    relative_residual: cg.relative_residual,
                    x: Vec::new(),
                },
                (KernelClass::Smoother, fine_nnz, (*iters).max(1)),
            ))
        }
    }
}

/// Unpreconditioned CG on an arbitrary registered SPD matrix, built from
/// context operations only, so one implementation serves every backend
/// (and records real cost steps on `dist:<p>`).
fn cg_plain<E: Exec>(
    exec: Ctx<E>,
    a: &graphblas::CsrMatrix<f64>,
    b: &[f64],
    iters: usize,
) -> Result<Payload> {
    if b.len() != a.nrows() {
        return Err(ServeError::BadRequest(format!(
            "cg rhs has length {} but the matrix has {} rows",
            b.len(),
            a.nrows()
        )));
    }
    let bv = Vector::from_dense(b.to_vec());
    let mut x = Vector::zeros(a.nrows());
    // x = 0 ⇒ r = b.
    let mut r = bv.clone();
    let mut p = r.clone();
    let mut ap = Vector::zeros(a.nrows());
    let mut rs_old = exec.norm2_squared(&r)?;
    let norm0 = rs_old.sqrt();
    let mut iterations = 0;
    let mut rs_new = rs_old;
    for _ in 1..=iters {
        if rs_old == 0.0 {
            break;
        }
        exec.mxv(a, &p).into(&mut ap)?;
        let p_ap = exec.dot(&p, &ap).compute()?;
        if p_ap == 0.0 {
            break;
        }
        let alpha = rs_old / p_ap;
        exec.axpy(&mut x, alpha, &p)?;
        exec.axpy(&mut r, -alpha, &ap)?;
        rs_new = exec.norm2_squared(&r)?;
        iterations += 1;
        let beta = rs_new / rs_old;
        // p ← r + β·p.
        let mut p_next = r.clone();
        exec.axpy(&mut p_next, beta, &p)?;
        p = p_next;
        rs_old = rs_new;
    }
    Ok(Payload::Solve {
        iterations,
        relative_residual: if norm0 > 0.0 {
            rs_new.sqrt() / norm0
        } else {
            0.0
        },
        x: x.as_slice().to_vec(),
    })
}
