//! The worker pool: each worker owns its execution state.
//!
//! A worker is one OS thread looping on the shared [`JobQueue`]. Per the
//! no-shared-pool-contention rule, everything execution-related is
//! worker-private: the worker builds a fresh `DynCtx` per job from the
//! request's [`BackendSpec`] and keeps its **own** cache of simulated
//! clusters keyed by node count (clusters live in a process-wide registry
//! and are never freed, so a per-job `Distributed::new` would leak one
//! registry slot per request; per-worker caching also means nobody else
//! can interleave cost steps into a cluster while a job runs on it —
//! which is exactly what lets the per-job `end_job()` hand-off attribute
//! the whole trace to the job's tenant and wipe the cluster's scope
//! before the next tenant reuses it).
//!
//! Batching: when a worker pops a plain `mxv`, it drains every queued
//! `mxv` against the same matrix with the same backend spelling and runs
//! them as one shared sweep ([`batch_mxv`]). Results stay bit-identical
//! to unbatched sequential execution; each job is billed as if it ran
//! alone (server-side coalescing is the operator's win, not a billing
//! discount), so metering totals are independent of batching luck.

use crate::batcher::batch_mxv;
use crate::error::{Result, ServeError};
use crate::metering::Metering;
use crate::protocol::{BackendSpec, JobSpec, Payload, Request, Response};
use crate::queue::JobQueue;
use crate::registry::Registry;
use bsp::KernelClass;
use graphblas::algorithms::FrontierStats;
use graphblas::{
    ctx_on, plan_key, BackendKind, Ctx, Distributed, Exec, GraphMatrix, Plan, PlanCache, Vector,
};
use hpcg::{flops_per_iteration, run_with_rhs, GrbHpcg, RunConfig};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};

/// One unit of queued work: the request plus where to send its response.
pub struct Job {
    /// The parsed request.
    pub request: Request,
    /// Response channel; a vanished receiver is not the worker's problem.
    pub reply: mpsc::Sender<Response>,
    /// When the job entered the queue — the anchor for queue-wait spans
    /// and end-to-end latency histograms.
    pub submitted: std::time::Instant,
}

/// Server-wide observability counters.
#[derive(Default)]
pub struct ServeStats {
    /// Jobs that completed successfully.
    pub jobs_ok: AtomicU64,
    /// Jobs that returned a typed error.
    pub jobs_err: AtomicU64,
    /// Batched sweeps executed (each covering ≥ 2 jobs).
    pub batched_sweeps: AtomicU64,
    /// Jobs that rode in a batched sweep instead of a private one.
    pub batched_jobs: AtomicU64,
    /// Compiled-plan cache hits across all workers (a job replayed an
    /// already-fused plan instead of re-recording its op graph).
    pub plan_cache_hits: AtomicU64,
    /// Compiled-plan cache misses (first-time compilations).
    pub plan_cache_misses: AtomicU64,
    /// Traversal frontier steps (`bfs`/`sssp`) the direction-optimizing
    /// kernel ran in push mode (sparse column scatter).
    pub frontier_push: AtomicU64,
    /// Traversal frontier steps that ran in pull mode (dense row sweep).
    pub frontier_pull: AtomicU64,
    /// Latency histograms and friends: `latency_ns.kind.<kind>` and
    /// `latency_ns.tenant.<tenant>` record end-to-end (submit → reply
    /// handed off) nanoseconds per job.
    pub metrics: obs::Registry,
}

impl ServeStats {
    /// Records one finished job's end-to-end latency under both its
    /// kind- and tenant-keyed histograms.
    pub fn note_latency(&self, tenant: &str, kind: &str, submitted: std::time::Instant) {
        let ns = submitted.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.metrics
            .histogram(&format!("latency_ns.kind.{kind}"))
            .record(ns);
        self.metrics
            .histogram(&format!("latency_ns.tenant.{tenant}"))
            .record(ns);
    }

    /// The `stats` job's payload: every counter plus the metric registry,
    /// as one compact JSON token (no interior whitespace — the wire
    /// normalizes spaces).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"jobs_ok\":{},\"jobs_err\":{},\"batched_sweeps\":{},",
                "\"batched_jobs\":{},\"plan_cache_hits\":{},\"plan_cache_misses\":{},",
                "\"frontier_push\":{},\"frontier_pull\":{},\"spans\":{},\"metrics\":{}}}"
            ),
            self.jobs_ok.load(Ordering::Relaxed),
            self.jobs_err.load(Ordering::Relaxed),
            self.batched_sweeps.load(Ordering::Relaxed),
            self.batched_jobs.load(Ordering::Relaxed),
            self.plan_cache_hits.load(Ordering::Relaxed),
            self.plan_cache_misses.load(Ordering::Relaxed),
            self.frontier_push.load(Ordering::Relaxed),
            self.frontier_pull.load(Ordering::Relaxed),
            obs::span_count(),
            self.metrics.dump_json()
        )
    }
}

/// The per-thread worker state.
pub(crate) struct Worker {
    queue: Arc<JobQueue<Job>>,
    registry: Arc<Registry>,
    metering: Arc<Metering>,
    stats: Arc<ServeStats>,
    clusters: HashMap<usize, Distributed>,
    /// Compiled plans for repeat job shapes, keyed by
    /// `(job kind, matrix, dims, backend)`. Worker-private like the
    /// clusters: a plan captures its execution handle, and this worker's
    /// `dist:<p>` handle is its own cached cluster.
    plans: PlanCache,
}

impl Worker {
    pub(crate) fn new(
        queue: Arc<JobQueue<Job>>,
        registry: Arc<Registry>,
        metering: Arc<Metering>,
        stats: Arc<ServeStats>,
    ) -> Worker {
        Worker {
            queue,
            registry,
            metering,
            stats,
            clusters: HashMap::new(),
            plans: PlanCache::new(),
        }
    }

    /// Main loop: runs until the queue closes and drains.
    pub(crate) fn run(mut self) {
        while let Some(job) = self.queue.pop() {
            if let Some(batch) = self.try_claim_batch(&job) {
                self.run_batch(batch);
            } else {
                self.run_single(job);
            }
        }
    }

    /// If `job` is a batchable SpMV, claims every queued SpMV on the same
    /// matrix with the same backend and returns the whole group.
    fn try_claim_batch(&self, job: &Job) -> Option<Vec<Job>> {
        let (name, backend) = match (&job.request.job, job.request.backend) {
            // Distributed SpMVs run individually so their cost steps come
            // from the actual cluster, not a local estimate.
            (JobSpec::Mxv { matrix, .. }, b @ (BackendSpec::Seq | BackendSpec::Par)) => {
                (matrix.clone(), b)
            }
            _ => return None,
        };
        let mates = self.queue.drain_where(|other| {
            other.request.backend == backend
                && matches!(&other.request.job, JobSpec::Mxv { matrix, .. } if *matrix == name)
        });
        if mates.is_empty() {
            return None;
        }
        let mut batch = Vec::with_capacity(mates.len() + 1);
        // Safe: the caller hands the popped job over in run().
        batch.push(Job {
            request: job.request.clone(),
            reply: job.reply.clone(),
            submitted: job.submitted,
        });
        batch.extend(mates);
        Some(batch)
    }

    /// Runs a group of same-matrix SpMVs as one shared sweep.
    fn run_batch(&mut self, batch: Vec<Job>) {
        for job in &batch {
            note_dequeued(job);
        }
        obs::span!("serve.batch", "serve");
        let name = match &batch[0].request.job {
            JobSpec::Mxv { matrix, .. } => matrix.clone(),
            _ => unreachable!("try_claim_batch only groups mxv jobs"),
        };
        let outcome = self.registry.get(&name).and_then(|a| {
            let xs: Vec<Vector<f64>> = batch
                .iter()
                .map(|j| match &j.request.job {
                    JobSpec::Mxv { x, .. } => Vector::from_dense(x.clone()),
                    _ => unreachable!(),
                })
                .collect();
            let refs: Vec<&Vector<f64>> = xs.iter().collect();
            let ys = batch_mxv(&a, &refs)?;
            Ok((a.nnz(), ys))
        });
        match outcome {
            Ok((nnz, ys)) => {
                self.stats.batched_sweeps.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .batched_jobs
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                for (job, y) in batch.iter().zip(ys) {
                    // Billed exactly like a lone SpMV (see module docs).
                    self.metering
                        .charge_local(&job.request.tenant, KernelClass::SpMV, nnz, 1);
                    let meter = self.metering.complete_job(&job.request.tenant);
                    self.stats.jobs_ok.fetch_add(1, Ordering::Relaxed);
                    let _ = job.reply.send(Response::Ok {
                        payload: Payload::Vector(y.as_slice().to_vec()),
                        meter,
                    });
                    self.stats.note_latency(
                        &job.request.tenant,
                        job.request.job.kind(),
                        job.submitted,
                    );
                }
            }
            Err(e) => {
                let resp = Response::from_error(&e);
                for job in &batch {
                    self.stats.jobs_err.fetch_add(1, Ordering::Relaxed);
                    let _ = job.reply.send(resp.clone());
                    self.stats.note_latency(
                        &job.request.tenant,
                        job.request.job.kind(),
                        job.submitted,
                    );
                }
            }
        }
    }

    /// Runs one job end to end and replies.
    fn run_single(&mut self, job: Job) {
        note_dequeued(&job);
        let response = {
            obs::span!("serve.exec", "serve");
            match self.execute(&job.request) {
                Ok(payload) => {
                    let meter = self.metering.complete_job(&job.request.tenant);
                    self.stats.jobs_ok.fetch_add(1, Ordering::Relaxed);
                    Response::Ok { payload, meter }
                }
                Err(e) => {
                    self.stats.jobs_err.fetch_add(1, Ordering::Relaxed);
                    Response::from_error(&e)
                }
            }
        };
        let _ = job.reply.send(response);
        self.stats
            .note_latency(&job.request.tenant, job.request.job.kind(), job.submitted);
    }

    /// Records one plan-cache lookup in the server stats and on the
    /// tenant's meter.
    fn note_plan(&self, tenant: &str, hit: bool) {
        let counter = if hit {
            &self.stats.plan_cache_hits
        } else {
            &self.stats.plan_cache_misses
        };
        counter.fetch_add(1, Ordering::Relaxed);
        self.metering.note_plan(tenant, hit);
    }

    /// Records a traversal job's push/pull frontier decisions in the
    /// server stats and on the tenant's meter.
    fn note_frontier(&self, tenant: &str, stats: FrontierStats) {
        self.stats
            .frontier_push
            .fetch_add(stats.push_steps as u64, Ordering::Relaxed);
        self.stats
            .frontier_pull
            .fetch_add(stats.pull_steps as u64, Ordering::Relaxed);
        self.metering.note_frontier(tenant, stats);
    }

    /// The worker's cached cluster for `p` nodes.
    fn cluster(&mut self, p: usize) -> Distributed {
        *self
            .clusters
            .entry(p)
            .or_insert_with(|| Distributed::new(p))
    }

    /// Executes `req`, charging its tenant.
    fn execute(&mut self, req: &Request) -> Result<Payload> {
        // `put` mutates the registry, no backend involved.
        if let JobSpec::Put {
            name,
            nrows,
            ncols,
            triplets,
        } = &req.job
        {
            self.registry.put(name, *nrows, *ncols, triplets)?;
            self.metering
                .charge_local(&req.tenant, KernelClass::Other, triplets.len(), 1);
            return Ok(Payload::Ack);
        }
        // `stats` reads the shared counters, no backend involved. Reading
        // the meter is free: observability must not distort the bill.
        if let JobSpec::Stats = &req.job {
            return Ok(Payload::Stats(self.stats.to_json()));
        }
        match req.backend {
            BackendSpec::Seq => {
                let (payload, charge) = run_job(ctx_on(BackendKind::Sequential), self, req)?;
                self.metering
                    .charge_local(&req.tenant, charge.0, charge.1, charge.2);
                Ok(payload)
            }
            BackendSpec::Par => {
                let (payload, charge) = run_job(ctx_on(BackendKind::Parallel), self, req)?;
                self.metering
                    .charge_local(&req.tenant, charge.0, charge.1, charge.2);
                Ok(payload)
            }
            BackendSpec::Dist(p) => {
                let cluster = self.cluster(p);
                let result = run_job(ctx_on(BackendKind::Dist(cluster)), self, req);
                // Bill the steps the cluster actually recorded — the whole
                // point of reusing the BSP cost model as the meter. The
                // hand-off also resets the cluster's attribution scope and
                // runs on the error path too, so neither a failed job's
                // steps nor a dangling scope can bleed into the next
                // tenant's job on this cached cluster.
                let steps = cluster.end_job();
                match result {
                    Ok((payload, _)) => {
                        self.metering.charge_steps(&req.tenant, steps);
                        Ok(payload)
                    }
                    Err(e) => Err(e),
                }
            }
        }
    }
}

/// Emits the retrospective queue-wait span for a job the worker just
/// claimed, covering submit time → now.
fn note_dequeued(job: &Job) {
    if obs::enabled() {
        obs::record_span(
            "queue.wait",
            "serve",
            job.submitted,
            std::time::Instant::now(),
        );
    }
}

/// A local-billing estimate: `(class, elements, vectors)`.
type Charge = (KernelClass, usize, usize);

/// Runs the compute of one job on `exec`; returns the payload plus the
/// charge used when the backend has no cost trace of its own.
fn run_job<E: Exec>(exec: Ctx<E>, w: &Worker, req: &Request) -> Result<(Payload, Charge)> {
    match &req.job {
        JobSpec::Put { .. } => unreachable!("put handled before backend dispatch"),
        JobSpec::Stats => unreachable!("stats handled before backend dispatch"),
        JobSpec::Mxv { matrix, x } => {
            let a = w.registry.get(matrix)?;
            let x = Vector::from_dense(x.clone());
            let mut y = Vector::zeros(a.nrows());
            exec.mxv(&a, &x).into(&mut y)?;
            Ok((
                Payload::Vector(y.as_slice().to_vec()),
                (KernelClass::SpMV, a.nnz(), 1),
            ))
        }
        JobSpec::Dot { x, y } => {
            let n = x.len();
            let xv = Vector::from_dense(x.clone());
            let yv = Vector::from_dense(y.clone());
            let d = exec.dot(&xv, &yv).compute()?;
            Ok((Payload::Scalar(d), (KernelClass::Dot, n, 2)))
        }
        JobSpec::Bfs { matrix, source } => {
            let a = w.registry.get(matrix)?;
            let g = GraphMatrix::from_csr((*a).clone());
            let (levels, frontier) = graphblas::algorithms::bfs_levels_on(exec, &g, *source)?;
            w.note_frontier(&req.tenant, frontier);
            let rounds = levels.iter().copied().max().unwrap_or(0).max(1) as usize;
            Ok((
                Payload::Levels(levels),
                (KernelClass::SpMV, a.nnz(), rounds),
            ))
        }
        JobSpec::Sssp { matrix, source } => {
            let a = w.registry.get(matrix)?;
            let g = GraphMatrix::from_csr((*a).clone());
            let (dist, frontier) = graphblas::algorithms::sssp_on(exec, &g, *source)?;
            w.note_frontier(&req.tenant, frontier);
            Ok((
                Payload::Vector(dist),
                (KernelClass::SpMV, a.nnz(), a.nrows().max(1)),
            ))
        }
        JobSpec::Pagerank {
            matrix,
            damping,
            tol,
            max_iters,
        } => {
            let a = w.registry.get(matrix)?;
            let (ranks, iters) =
                graphblas::algorithms::pagerank(exec, &a, *damping, *tol, *max_iters)?;
            Ok((
                Payload::Vector(ranks.as_slice().to_vec()),
                (KernelClass::SpMV, a.nnz(), iters.max(1)),
            ))
        }
        JobSpec::TriangleCount { matrix } => {
            let a = w.registry.get(matrix)?;
            let count = graphblas::algorithms::triangle_count(exec, &a)?;
            Ok((Payload::Count(count), (KernelClass::Other, a.nnz(), 1)))
        }
        JobSpec::Cg { matrix, iters, b } => {
            let a = w.registry.get(matrix)?;
            let result = cg_plain(exec, w, req, matrix, &a, b, *iters)?;
            Ok((result, (KernelClass::SpMV, a.nnz(), (*iters).max(1))))
        }
        JobSpec::Hpcg {
            size,
            levels,
            iters,
        } => {
            let problem = w.registry.hpcg_problem(*size, *levels)?;
            let flops = flops_per_iteration(&problem);
            let fine_nnz = problem.levels[0].a.nnz();
            let b = problem.b.clone();
            let mut k = GrbHpcg::with_ctx(problem.as_ref().clone(), exec);
            let (_report, cg) = run_with_rhs(
                &mut k,
                &b,
                flops,
                RunConfig {
                    iterations: *iters,
                    preconditioned: true,
                },
            );
            Ok((
                Payload::Solve {
                    iterations: cg.iterations,
                    relative_residual: cg.relative_residual,
                    x: Vec::new(),
                },
                (KernelClass::Smoother, fine_nnz, (*iters).max(1)),
            ))
        }
    }
}

/// Unpreconditioned CG on an arbitrary registered SPD matrix, built from
/// context operations only, so one implementation serves every backend
/// (and records real cost steps on `dist:<p>`).
///
/// The iteration body is **compiled once** per `(matrix, backend)` into
/// two plans held in the worker's cache — `A·p` fused with `⟨p, Ap⟩`, and
/// the `x`/`r` updates fused with `‖r‖²` — and replayed with rebound
/// vectors and fresh `±α` parameters every iteration of every request.
/// Replay is bit-identical to the eager per-primitive loop, so responses
/// are unchanged; only the per-iteration record+fuse cost disappears.
#[allow(clippy::too_many_arguments)]
fn cg_plain<E: Exec>(
    exec: Ctx<E>,
    w: &Worker,
    req: &Request,
    matrix: &str,
    a: &graphblas::CsrMatrix<f64>,
    b: &[f64],
    iters: usize,
) -> Result<Payload> {
    if b.len() != a.nrows() {
        return Err(ServeError::BadRequest(format!(
            "cg rhs has length {} but the matrix has {} rows",
            b.len(),
            a.nrows()
        )));
    }
    let n = a.nrows();
    let (spmv_plan, hit) = w
        .plans
        .get_or_compile(plan_key(&("cg.spmv_dot", matrix, n, req.backend)), || {
            hpcg::fused::build_spmv_dot_plan(exec, n)
        });
    w.note_plan(&req.tenant, hit);
    let (update_plan, hit) = w.plans.get_or_compile(
        plan_key(&("cg.update_norm", matrix, n, req.backend)),
        || build_cg_update_plan(exec, n),
    );
    w.note_plan(&req.tenant, hit);

    let bv = Vector::from_dense(b.to_vec());
    let mut x = Vector::zeros(n);
    // x = 0 ⇒ r = b.
    let mut r = bv.clone();
    let mut p = r.clone();
    let mut ap = Vector::zeros(n);
    let mut rs_old = exec.norm2_squared(&r)?;
    let norm0 = rs_old.sqrt();
    let mut iterations = 0;
    let mut rs_new = rs_old;
    for _ in 1..=iters {
        if rs_old == 0.0 {
            break;
        }
        let p_ap = {
            let mut bnd = spmv_plan.bindings();
            bnd.bind_matrix(spmv_plan.matrix_slot(0), a)
                .bind_input(spmv_plan.input_slot(0), &p)
                .bind_output(spmv_plan.output_slot(0), &mut ap);
            spmv_plan.run(&mut bnd)?[spmv_plan.scalar(0)]
        };
        if p_ap == 0.0 {
            break;
        }
        let alpha = rs_old / p_ap;
        rs_new = {
            let mut bnd = update_plan.bindings();
            bnd.bind_output(update_plan.output_slot(0), &mut x)
                .bind_output(update_plan.output_slot(1), &mut r)
                .bind_input(update_plan.input_slot(0), &p)
                .bind_input(update_plan.input_slot(1), &ap)
                .set(update_plan.param(0), alpha)
                .set(update_plan.param(1), -alpha);
            update_plan.run(&mut bnd)?[update_plan.scalar(0)]
        };
        iterations += 1;
        let beta = rs_new / rs_old;
        // p ← r + β·p.
        let mut p_next = r.clone();
        exec.axpy(&mut p_next, beta, &p)?;
        p = p_next;
        rs_old = rs_new;
    }
    Ok(Payload::Solve {
        iterations,
        relative_residual: if norm0 > 0.0 {
            rs_new.sqrt() / norm0
        } else {
            0.0
        },
        x: x.as_slice().to_vec(),
    })
}

/// Compiles the CG update half-iteration — `x += α·p`, `r += (−α)·ap`,
/// `‖r‖²` — with both coefficients as parameters. Slots: outputs 0/1 are
/// `x` and `r`, inputs 0/1 are `p` and `ap`, params 0/1 are `α` and `−α`;
/// scalar 0 is the norm. The residual update and norm fuse into one
/// stream, exactly as the eager pair's fused kernel would.
fn build_cg_update_plan<E: Exec>(exec: Ctx<E>, n: usize) -> Plan<f64, E> {
    let mut pb = exec.plan::<f64>();
    let xs = pb.output(n);
    let rs = pb.output(n);
    let ps = pb.input(n);
    let aps = pb.input(n);
    let alpha = pb.param(0.0);
    let neg_alpha = pb.param(0.0);
    pb.axpy(xs, alpha, ps);
    pb.axpy(rs, neg_alpha, aps);
    pb.norm2_squared(rs);
    pb.compile()
}
