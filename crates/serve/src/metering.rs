//! Per-tenant cost accounting.
//!
//! Every job a tenant runs is billed in the same currency the
//! distributed backend already speaks: BSP [`StepCost`] supersteps.
//! Jobs that actually ran on a `dist:<p>` cluster contribute the steps
//! that cluster recorded (taken with `Distributed::take_steps` right
//! after the job, while the worker still owns the cluster exclusively).
//! Jobs that ran on `seq`/`par` are charged through a dedicated 1-node
//! *gauge* cluster: the worker sets the tenant's kernel class as the
//! attribution scope (`Distributed::set_scope`), records the job's
//! touched-data volume as a local stream, and takes the tagged steps —
//! so one `CostSummary` mechanism prices every backend. Snapshots for
//! responses come from [`CostSummary::from_steps`] over the tenant's
//! accumulated trace.

use crate::protocol::MeterSnapshot;
use bsp::{KernelClass, StepCost};
use graphblas::{CostSummary, Distributed};
use std::collections::HashMap;
use std::sync::Mutex;

#[derive(Default)]
struct TenantState {
    steps: Vec<StepCost>,
    jobs: u64,
    plan_hits: u64,
    plan_misses: u64,
    frontier_push: u64,
    frontier_pull: u64,
}

struct Inner {
    tenants: HashMap<String, TenantState>,
    gauge: Distributed,
}

/// Thread-safe per-tenant meter shared by all workers.
pub struct Metering {
    inner: Mutex<Inner>,
}

impl Metering {
    /// Creates a meter with its private 1-node gauge cluster.
    pub fn new() -> Metering {
        Metering {
            inner: Mutex::new(Inner {
                tenants: HashMap::new(),
                gauge: Distributed::new(1),
            }),
        }
    }

    /// Bills `tenant` for a local (`seq`/`par`) job: `n` elements
    /// streamed across `k` logical vectors, attributed to `class`. The
    /// gauge cluster converts the volume into modeled seconds under the
    /// same machine model distributed jobs are priced with.
    pub fn charge_local(&self, tenant: &str, class: KernelClass, n: usize, k: usize) {
        let mut inner = self.inner.lock().expect("meter lock poisoned");
        let gauge = inner.gauge;
        gauge.set_scope(Some(class), None);
        gauge.record_local_stream(n, k);
        gauge.clear_scope();
        let steps = gauge.take_steps();
        inner
            .tenants
            .entry(tenant.to_string())
            .or_default()
            .steps
            .extend(steps);
    }

    /// Bills `tenant` with steps recorded by the cluster a distributed
    /// job actually ran on.
    pub fn charge_steps(&self, tenant: &str, steps: Vec<StepCost>) {
        if steps.is_empty() {
            return;
        }
        self.inner
            .lock()
            .expect("meter lock poisoned")
            .tenants
            .entry(tenant.to_string())
            .or_default()
            .steps
            .extend(steps);
    }

    /// Records one compiled-plan cache lookup made on `tenant`'s behalf —
    /// a hit means the job replayed an already-fused plan, a miss that it
    /// paid the one-time record+fuse cost. Surfaced in every
    /// [`MeterSnapshot`] so tenants can see their amortization.
    pub fn note_plan(&self, tenant: &str, hit: bool) {
        let mut inner = self.inner.lock().expect("meter lock poisoned");
        let state = inner.tenants.entry(tenant.to_string()).or_default();
        if hit {
            state.plan_hits += 1;
        } else {
            state.plan_misses += 1;
        }
    }

    /// Records the push/pull decisions a traversal job made on `tenant`'s
    /// behalf: each sparse-frontier `mxv` step ran in one of the two
    /// direction-optimized orientations. Surfaced in every
    /// [`MeterSnapshot`] so tenants can see the frontier machinery work.
    pub fn note_frontier(&self, tenant: &str, stats: graphblas::algorithms::FrontierStats) {
        if stats.steps() == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("meter lock poisoned");
        let state = inner.tenants.entry(tenant.to_string()).or_default();
        state.frontier_push += stats.push_steps as u64;
        state.frontier_pull += stats.pull_steps as u64;
    }

    /// Marks one job finished for `tenant` and returns the cumulative
    /// snapshot the response carries.
    pub fn complete_job(&self, tenant: &str) -> MeterSnapshot {
        let mut inner = self.inner.lock().expect("meter lock poisoned");
        let state = inner.tenants.entry(tenant.to_string()).or_default();
        state.jobs += 1;
        let summary = CostSummary::from_steps(1, "tenant", &state.steps);
        MeterSnapshot {
            modeled_secs: summary.total_secs,
            h_bytes: summary.total_h_bytes,
            supersteps: summary.supersteps,
            jobs: state.jobs,
            plan_hits: state.plan_hits,
            plan_misses: state.plan_misses,
            frontier_push: state.frontier_push,
            frontier_pull: state.frontier_pull,
        }
    }

    /// The tenant's full per-class cost breakdown (`None` if the tenant
    /// has never completed a job).
    pub fn summary(&self, tenant: &str) -> Option<CostSummary> {
        let inner = self.inner.lock().expect("meter lock poisoned");
        inner
            .tenants
            .get(tenant)
            .map(|s| CostSummary::from_steps(1, "tenant", &s.steps))
    }

    /// All tenants that have been billed, sorted.
    pub fn tenants(&self) -> Vec<String> {
        let inner = self.inner.lock().expect("meter lock poisoned");
        let mut names: Vec<String> = inner.tenants.keys().cloned().collect();
        names.sort();
        names
    }
}

impl Default for Metering {
    fn default() -> Metering {
        Metering::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_charges_accumulate_under_the_scoped_class() {
        let m = Metering::new();
        m.charge_local("acme", KernelClass::SpMV, 1024, 1);
        m.charge_local("acme", KernelClass::Dot, 1024, 2);
        let s = m.summary("acme").unwrap();
        assert_eq!(s.supersteps, 2);
        assert!(s.total_secs > 0.0);
        let classes: Vec<KernelClass> = s.per_class.iter().map(|c| c.class).collect();
        assert_eq!(classes, vec![KernelClass::SpMV, KernelClass::Dot]);
    }

    #[test]
    fn tenants_are_disjoint() {
        let m = Metering::new();
        m.charge_local("a", KernelClass::SpMV, 100, 1);
        m.charge_local("b", KernelClass::Dot, 200, 2);
        let sa = m.summary("a").unwrap();
        let sb = m.summary("b").unwrap();
        assert_eq!(sa.supersteps, 1);
        assert_eq!(sb.supersteps, 1);
        assert_eq!(sa.per_class[0].class, KernelClass::SpMV);
        assert_eq!(sb.per_class[0].class, KernelClass::Dot);
        assert!(m.summary("c").is_none());
    }

    #[test]
    fn plan_lookups_are_metered_per_tenant() {
        let m = Metering::new();
        m.note_plan("t", false);
        m.note_plan("t", true);
        m.note_plan("t", true);
        m.note_plan("other", false);
        let s = m.complete_job("t");
        assert_eq!((s.plan_hits, s.plan_misses), (2, 1));
        let o = m.complete_job("other");
        assert_eq!((o.plan_hits, o.plan_misses), (0, 1));
    }

    #[test]
    fn frontier_decisions_are_metered_per_tenant() {
        use graphblas::algorithms::FrontierStats;
        let m = Metering::new();
        m.note_frontier(
            "t",
            FrontierStats {
                push_steps: 3,
                pull_steps: 2,
            },
        );
        m.note_frontier(
            "t",
            FrontierStats {
                push_steps: 1,
                pull_steps: 0,
            },
        );
        // Zero-step traversals do not create tenant state.
        m.note_frontier("idle", FrontierStats::default());
        let s = m.complete_job("t");
        assert_eq!((s.frontier_push, s.frontier_pull), (4, 2));
        assert!(!m.tenants().contains(&"idle".to_string()));
    }

    #[test]
    fn snapshots_count_jobs_cumulatively() {
        let m = Metering::new();
        m.charge_local("t", KernelClass::SpMV, 10, 1);
        let s1 = m.complete_job("t");
        m.charge_local("t", KernelClass::SpMV, 10, 1);
        let s2 = m.complete_job("t");
        assert_eq!(s1.jobs, 1);
        assert_eq!(s2.jobs, 2);
        assert!(s2.modeled_secs >= s1.modeled_secs);
        assert_eq!(s2.supersteps, 2);
    }
}
