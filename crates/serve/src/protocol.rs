//! The wire protocol: a length-prefixed line grammar.
//!
//! Every message is one UTF-8 line framed as `<len> <payload>\n`, where
//! `len` is the decimal byte length of the payload (the frame survives
//! payloads containing no newline, and a reader can reject oversized
//! frames before allocating). Payloads are space-separated tokens;
//! vectors are comma-separated `f64` literals and matrices comma-separated
//! `row:col:value` triplets. `f64` values print through Rust's shortest
//! round-trip formatting, so a value parsed back from the wire is
//! **bit-identical** to the value the server computed — the property the
//! service's "same result as direct `Sequential` execution" guarantee
//! rides on.
//!
//! # Grammar
//!
//! ```text
//! request  := req <tenant> <backend> <job>
//! backend  := seq | par | dist:<nodes>
//! job      := put <name> <nrows> <ncols> <r:c:v,...>
//!           | mxv <name> <x-csv>
//!           | dot <x-csv> <y-csv>
//!           | bfs <name> <source>
//!           | sssp <name> <source>
//!           | pagerank <name> <damping> <tol> <max-iters>
//!           | tricount <name>
//!           | cg <name> <iters> <b-csv>
//!           | hpcg <size> <levels> <iters>
//!           | stats
//!
//! response := ok <result> meter <secs> <h-bytes> <steps> <jobs> <plan-hits> <plan-misses>
//!                <push-steps> <pull-steps>
//!           | err <code> <message...>
//! result   := ack | scalar <v> | vec <csv> | levels <csv>
//!           | count <n> | solve <iters> <relres> <x-csv|->
//!           | stats <json>
//! code     := overloaded | bad_request | no_such_matrix | exec | io | shutdown
//! ```

use crate::error::ServeError;
use std::io::{BufRead, Write};

/// Hard ceiling on one frame's payload size (64 MiB): a malformed or
/// hostile length prefix must not become an allocation bomb.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// The execution backend a job asks for. Unlike
/// [`BackendKind`](graphblas::BackendKind) this is a pure description —
/// parsing it has no side effects (no cluster registration); workers map
/// it onto their own cached dispatchers.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum BackendSpec {
    /// Single-threaded reference backend.
    Seq,
    /// Shared-memory parallel backend.
    Par,
    /// Simulated BSP cluster with the given node count.
    Dist(usize),
}

impl BackendSpec {
    /// Parses `seq | par | dist:<nodes>` (same spelling rules as
    /// `BackendKind::parse`, minus the bare-`dist` default: a service job
    /// must say how many nodes it wants billed).
    pub fn parse(s: &str) -> Result<BackendSpec, ServeError> {
        let norm = s.trim().to_ascii_lowercase();
        match norm.as_str() {
            "seq" | "sequential" => return Ok(BackendSpec::Seq),
            "par" | "parallel" => return Ok(BackendSpec::Par),
            _ => {}
        }
        if let Some(nodes) = norm
            .strip_prefix("dist:")
            .or_else(|| norm.strip_prefix("distributed:"))
        {
            let n: usize = nodes.parse().map_err(|_| {
                ServeError::BadRequest(format!("invalid node count {nodes:?} in backend {s:?}"))
            })?;
            if n == 0 {
                return Err(ServeError::BadRequest(format!(
                    "invalid node count 0 in backend {s:?}"
                )));
            }
            return Ok(BackendSpec::Dist(n));
        }
        Err(ServeError::BadRequest(format!(
            "unknown backend {s:?} (expected seq|par|dist:<nodes>)"
        )))
    }
}

impl std::fmt::Display for BackendSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendSpec::Seq => f.write_str("seq"),
            BackendSpec::Par => f.write_str("par"),
            BackendSpec::Dist(p) => write!(f, "dist:{p}"),
        }
    }
}

/// One job the service knows how to run.
#[derive(Clone, Debug, PartialEq)]
pub enum JobSpec {
    /// Register a named matrix in the server's registry.
    Put {
        /// Registry name.
        name: String,
        /// Row count.
        nrows: usize,
        /// Column count.
        ncols: usize,
        /// `(row, col, value)` entries.
        triplets: Vec<(usize, usize, f64)>,
    },
    /// `y = A·x` against a registered matrix — the micro-op the batcher
    /// coalesces across requests.
    Mxv {
        /// Registry name of `A`.
        matrix: String,
        /// Input vector.
        x: Vec<f64>,
    },
    /// `⟨x, y⟩` over the arithmetic semiring.
    Dot {
        /// Left operand.
        x: Vec<f64>,
        /// Right operand.
        y: Vec<f64>,
    },
    /// BFS levels from `source` on a registered adjacency.
    Bfs {
        /// Registry name.
        matrix: String,
        /// Source vertex.
        source: usize,
    },
    /// Single-source shortest paths from `source`.
    Sssp {
        /// Registry name.
        matrix: String,
        /// Source vertex.
        source: usize,
    },
    /// PageRank power iteration on a registered column-stochastic matrix.
    Pagerank {
        /// Registry name.
        matrix: String,
        /// Damping factor in `[0, 1)`.
        damping: f64,
        /// Convergence tolerance (max per-vertex change).
        tol: f64,
        /// Iteration cap.
        max_iters: usize,
    },
    /// Triangle count of a registered undirected adjacency.
    TriangleCount {
        /// Registry name.
        matrix: String,
    },
    /// Unpreconditioned CG on a registered SPD matrix.
    Cg {
        /// Registry name of `A`.
        matrix: String,
        /// Fixed iteration count (HPCG style).
        iters: usize,
        /// Right-hand side.
        b: Vec<f64>,
    },
    /// A full preconditioned HPCG solve on a generated `size`³ problem
    /// (problems are cached server-side by `(size, levels)`).
    Hpcg {
        /// Grid edge length.
        size: usize,
        /// Multigrid depth.
        levels: usize,
        /// CG iterations.
        iters: usize,
    },
    /// Observability snapshot: server-wide counters plus the worker's
    /// metric registry, returned as one compact JSON document.
    Stats,
}

impl JobSpec {
    /// The job-kind token that leads its wire encoding.
    pub fn kind(&self) -> &'static str {
        match self {
            JobSpec::Put { .. } => "put",
            JobSpec::Mxv { .. } => "mxv",
            JobSpec::Dot { .. } => "dot",
            JobSpec::Bfs { .. } => "bfs",
            JobSpec::Sssp { .. } => "sssp",
            JobSpec::Pagerank { .. } => "pagerank",
            JobSpec::TriangleCount { .. } => "tricount",
            JobSpec::Cg { .. } => "cg",
            JobSpec::Hpcg { .. } => "hpcg",
            JobSpec::Stats => "stats",
        }
    }
}

/// One request: who is asking, on what backend, for which job.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Tenant identity — the billing/QoS scope of the job.
    pub tenant: String,
    /// Requested execution backend.
    pub backend: BackendSpec,
    /// The job to run.
    pub job: JobSpec,
}

/// The result carried by a successful [`Response`].
#[derive(Clone, Debug, PartialEq)]
pub enum Payload {
    /// The job had no value to return (e.g. `put`).
    Ack,
    /// One scalar.
    Scalar(f64),
    /// A dense `f64` vector.
    Vector(Vec<f64>),
    /// Per-vertex BFS levels.
    Levels(Vec<i64>),
    /// A count.
    Count(usize),
    /// A solver outcome. `x` is the solution for registry-matrix CG and
    /// empty for HPCG jobs (the generated problem's solution is bulky;
    /// the bit-exact `relative_residual` is the comparison handle).
    Solve {
        /// Iterations executed.
        iterations: usize,
        /// Final `‖r‖/‖r⁰‖`.
        relative_residual: f64,
        /// Solution vector (possibly empty, see above).
        x: Vec<f64>,
    },
    /// An observability snapshot as one compact JSON token. The server
    /// emits it without interior whitespace, so it travels the wire as a
    /// single space-separated token like every other payload field.
    Stats(String),
}

/// The tenant's cumulative bill, attached to every successful response.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct MeterSnapshot {
    /// Modeled BSP seconds across everything this tenant ran.
    pub modeled_secs: f64,
    /// Communicated h-relation bytes across the tenant's jobs.
    pub h_bytes: f64,
    /// Recorded cost supersteps.
    pub supersteps: usize,
    /// Jobs completed for this tenant.
    pub jobs: u64,
    /// Compiled-plan cache hits the tenant's jobs enjoyed.
    pub plan_hits: u64,
    /// Compiled-plan cache misses (first-time compilations) the tenant's
    /// jobs paid for.
    pub plan_misses: u64,
    /// Frontier steps the tenant's traversal jobs (`bfs`, `sssp`) ran in
    /// **push** mode (sparse column scatter over the frontier nonzeros).
    pub frontier_push: u64,
    /// Frontier steps that ran in **pull** mode (dense row sweep).
    pub frontier_pull: u64,
}

/// One response: a payload plus the tenant's meter, or a typed error.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// The job ran; here is its result and the tenant's running bill.
    Ok {
        /// Job result.
        payload: Payload,
        /// The tenant's cumulative meter after this job.
        meter: MeterSnapshot,
    },
    /// The job was rejected or failed.
    Err {
        /// Stable error code (see [`ServeError::code`]).
        code: String,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Wraps a [`ServeError`] as a wire response.
    pub fn from_error(e: &ServeError) -> Response {
        Response::Err {
            code: e.code().to_string(),
            message: e.to_string(),
        }
    }

    /// Converts a wire response back into a service-level result.
    pub fn into_result(self) -> Result<(Payload, MeterSnapshot), ServeError> {
        match self {
            Response::Ok { payload, meter } => Ok((payload, meter)),
            Response::Err { code, message } => Err(ServeError::from_wire(&code, &message)),
        }
    }
}

fn fmt_csv(values: &[f64]) -> String {
    let mut out = String::new();
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out
}

fn parse_csv(s: &str) -> Result<Vec<f64>, ServeError> {
    if s == "-" {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|t| {
            t.parse::<f64>()
                .map_err(|_| ServeError::BadRequest(format!("invalid f64 literal {t:?}")))
        })
        .collect()
}

fn fmt_levels(values: &[i64]) -> String {
    let mut out = String::new();
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out
}

fn parse_levels(s: &str) -> Result<Vec<i64>, ServeError> {
    if s == "-" {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|t| {
            t.parse::<i64>()
                .map_err(|_| ServeError::BadRequest(format!("invalid i64 literal {t:?}")))
        })
        .collect()
}

fn fmt_triplets(triplets: &[(usize, usize, f64)]) -> String {
    let mut out = String::new();
    for (i, (r, c, v)) in triplets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{r}:{c}:{v}"));
    }
    out
}

fn parse_triplets(s: &str) -> Result<Vec<(usize, usize, f64)>, ServeError> {
    if s == "-" {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|t| {
            let mut parts = t.splitn(3, ':');
            let bad = || ServeError::BadRequest(format!("invalid triplet {t:?} (want r:c:v)"));
            let r = parts.next().and_then(|p| p.parse().ok()).ok_or_else(bad)?;
            let c = parts.next().and_then(|p| p.parse().ok()).ok_or_else(bad)?;
            let v = parts.next().and_then(|p| p.parse().ok()).ok_or_else(bad)?;
            Ok((r, c, v))
        })
        .collect()
}

/// A space-separated token cursor with precise complaints.
struct Tokens<'a> {
    iter: std::str::SplitWhitespace<'a>,
    context: &'static str,
}

impl<'a> Tokens<'a> {
    fn new(line: &'a str, context: &'static str) -> Tokens<'a> {
        Tokens {
            iter: line.split_whitespace(),
            context,
        }
    }

    fn next(&mut self, what: &str) -> Result<&'a str, ServeError> {
        self.iter
            .next()
            .ok_or_else(|| ServeError::BadRequest(format!("{}: missing {what}", self.context)))
    }

    fn next_usize(&mut self, what: &str) -> Result<usize, ServeError> {
        let t = self.next(what)?;
        t.parse()
            .map_err(|_| ServeError::BadRequest(format!("{}: invalid {what} {t:?}", self.context)))
    }

    fn next_f64(&mut self, what: &str) -> Result<f64, ServeError> {
        let t = self.next(what)?;
        t.parse()
            .map_err(|_| ServeError::BadRequest(format!("{}: invalid {what} {t:?}", self.context)))
    }

    fn rest(&mut self) -> String {
        self.iter.by_ref().collect::<Vec<_>>().join(" ")
    }

    fn expect_end(&mut self) -> Result<(), ServeError> {
        match self.iter.next() {
            None => Ok(()),
            Some(t) => Err(ServeError::BadRequest(format!(
                "{}: unexpected trailing token {t:?}",
                self.context
            ))),
        }
    }
}

impl Request {
    /// Encodes the request as one payload line (unframed).
    pub fn to_line(&self) -> String {
        let job = match &self.job {
            JobSpec::Put {
                name,
                nrows,
                ncols,
                triplets,
            } => format!("put {name} {nrows} {ncols} {}", fmt_triplets(triplets)),
            JobSpec::Mxv { matrix, x } => format!("mxv {matrix} {}", fmt_csv(x)),
            JobSpec::Dot { x, y } => format!("dot {} {}", fmt_csv(x), fmt_csv(y)),
            JobSpec::Bfs { matrix, source } => format!("bfs {matrix} {source}"),
            JobSpec::Sssp { matrix, source } => format!("sssp {matrix} {source}"),
            JobSpec::Pagerank {
                matrix,
                damping,
                tol,
                max_iters,
            } => format!("pagerank {matrix} {damping} {tol} {max_iters}"),
            JobSpec::TriangleCount { matrix } => format!("tricount {matrix}"),
            JobSpec::Cg { matrix, iters, b } => format!("cg {matrix} {iters} {}", fmt_csv(b)),
            JobSpec::Hpcg {
                size,
                levels,
                iters,
            } => format!("hpcg {size} {levels} {iters}"),
            JobSpec::Stats => "stats".to_string(),
        };
        format!("req {} {} {job}", self.tenant, self.backend)
    }

    /// Parses one payload line into a request.
    pub fn parse_line(line: &str) -> Result<Request, ServeError> {
        let mut t = Tokens::new(line, "request");
        let tag = t.next("leading `req` tag")?;
        if tag != "req" {
            return Err(ServeError::BadRequest(format!(
                "request: expected leading `req`, got {tag:?}"
            )));
        }
        let tenant = t.next("tenant")?.to_string();
        let backend = BackendSpec::parse(t.next("backend")?)?;
        let kind = t.next("job kind")?;
        let job = match kind {
            "put" => {
                let name = t.next("matrix name")?.to_string();
                let nrows = t.next_usize("nrows")?;
                let ncols = t.next_usize("ncols")?;
                let triplets = parse_triplets(t.next("triplets")?)?;
                JobSpec::Put {
                    name,
                    nrows,
                    ncols,
                    triplets,
                }
            }
            "mxv" => JobSpec::Mxv {
                matrix: t.next("matrix name")?.to_string(),
                x: parse_csv(t.next("x vector")?)?,
            },
            "dot" => JobSpec::Dot {
                x: parse_csv(t.next("x vector")?)?,
                y: parse_csv(t.next("y vector")?)?,
            },
            "bfs" => JobSpec::Bfs {
                matrix: t.next("matrix name")?.to_string(),
                source: t.next_usize("source vertex")?,
            },
            "sssp" => JobSpec::Sssp {
                matrix: t.next("matrix name")?.to_string(),
                source: t.next_usize("source vertex")?,
            },
            "pagerank" => JobSpec::Pagerank {
                matrix: t.next("matrix name")?.to_string(),
                damping: t.next_f64("damping")?,
                tol: t.next_f64("tolerance")?,
                max_iters: t.next_usize("max iterations")?,
            },
            "tricount" => JobSpec::TriangleCount {
                matrix: t.next("matrix name")?.to_string(),
            },
            "cg" => JobSpec::Cg {
                matrix: t.next("matrix name")?.to_string(),
                iters: t.next_usize("iteration count")?,
                b: parse_csv(t.next("rhs vector")?)?,
            },
            "hpcg" => JobSpec::Hpcg {
                size: t.next_usize("grid size")?,
                levels: t.next_usize("mg levels")?,
                iters: t.next_usize("iteration count")?,
            },
            "stats" => JobSpec::Stats,
            other => {
                return Err(ServeError::BadRequest(format!(
                    "request: unknown job kind {other:?}"
                )))
            }
        };
        t.expect_end()?;
        Ok(Request {
            tenant,
            backend,
            job,
        })
    }
}

impl Response {
    /// Encodes the response as one payload line (unframed).
    pub fn to_line(&self) -> String {
        match self {
            Response::Ok { payload, meter } => {
                let body = match payload {
                    Payload::Ack => "ack".to_string(),
                    Payload::Scalar(v) => format!("scalar {v}"),
                    Payload::Vector(v) => format!(
                        "vec {}",
                        if v.is_empty() {
                            "-".to_string()
                        } else {
                            fmt_csv(v)
                        }
                    ),
                    Payload::Levels(v) => format!(
                        "levels {}",
                        if v.is_empty() {
                            "-".to_string()
                        } else {
                            fmt_levels(v)
                        }
                    ),
                    Payload::Count(n) => format!("count {n}"),
                    Payload::Solve {
                        iterations,
                        relative_residual,
                        x,
                    } => format!(
                        "solve {iterations} {relative_residual} {}",
                        if x.is_empty() {
                            "-".to_string()
                        } else {
                            fmt_csv(x)
                        }
                    ),
                    Payload::Stats(json) => format!("stats {json}"),
                };
                format!(
                    "ok {body} meter {} {} {} {} {} {} {} {}",
                    meter.modeled_secs,
                    meter.h_bytes,
                    meter.supersteps,
                    meter.jobs,
                    meter.plan_hits,
                    meter.plan_misses,
                    meter.frontier_push,
                    meter.frontier_pull
                )
            }
            Response::Err { code, message } => format!("err {code} {message}"),
        }
    }

    /// Parses one payload line into a response.
    pub fn parse_line(line: &str) -> Result<Response, ServeError> {
        let mut t = Tokens::new(line, "response");
        match t.next("leading ok/err tag")? {
            "err" => {
                let code = t.next("error code")?.to_string();
                Ok(Response::Err {
                    code,
                    message: t.rest(),
                })
            }
            "ok" => {
                let payload = match t.next("result kind")? {
                    "ack" => Payload::Ack,
                    "scalar" => Payload::Scalar(t.next_f64("scalar value")?),
                    "vec" => Payload::Vector(parse_csv(t.next("vector")?)?),
                    "levels" => Payload::Levels(parse_levels(t.next("levels")?)?),
                    "count" => Payload::Count(t.next_usize("count")?),
                    "solve" => Payload::Solve {
                        iterations: t.next_usize("iterations")?,
                        relative_residual: t.next_f64("relative residual")?,
                        x: parse_csv(t.next("solution vector")?)?,
                    },
                    "stats" => Payload::Stats(t.next("stats json")?.to_string()),
                    other => {
                        return Err(ServeError::BadRequest(format!(
                            "response: unknown result kind {other:?}"
                        )))
                    }
                };
                let tag = t.next("meter tag")?;
                if tag != "meter" {
                    return Err(ServeError::BadRequest(format!(
                        "response: expected `meter`, got {tag:?}"
                    )));
                }
                let meter = MeterSnapshot {
                    modeled_secs: t.next_f64("meter secs")?,
                    h_bytes: t.next_f64("meter h-bytes")?,
                    supersteps: t.next_usize("meter steps")?,
                    jobs: t.next_usize("meter jobs")? as u64,
                    plan_hits: t.next_usize("meter plan hits")? as u64,
                    plan_misses: t.next_usize("meter plan misses")? as u64,
                    frontier_push: t.next_usize("meter frontier push")? as u64,
                    frontier_pull: t.next_usize("meter frontier pull")? as u64,
                };
                t.expect_end()?;
                Ok(Response::Ok { payload, meter })
            }
            other => Err(ServeError::BadRequest(format!(
                "response: expected ok/err, got {other:?}"
            ))),
        }
    }
}

/// Writes one framed payload: `<len> <payload>\n`.
pub fn write_frame<W: Write>(w: &mut W, payload: &str) -> std::io::Result<()> {
    w.write_all(payload.len().to_string().as_bytes())?;
    w.write_all(b" ")?;
    w.write_all(payload.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Reads one framed payload. Returns `Ok(None)` on clean EOF before the
/// first byte of a frame; any other truncation or malformation is an
/// error.
pub fn read_frame<R: BufRead>(r: &mut R) -> std::io::Result<Option<String>> {
    // Read the decimal length prefix up to the separating space.
    let mut len: usize = 0;
    let mut saw_digit = false;
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte)? {
            0 if !saw_digit => return Ok(None),
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "frame truncated in length prefix",
                ))
            }
            _ => {}
        }
        match byte[0] {
            b'0'..=b'9' => {
                saw_digit = true;
                len = len
                    .saturating_mul(10)
                    .saturating_add((byte[0] - b'0') as usize);
                if len > MAX_FRAME_BYTES {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("frame length exceeds the {MAX_FRAME_BYTES}-byte ceiling"),
                    ));
                }
            }
            b' ' if saw_digit => break,
            other => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("invalid byte {other:#04x} in frame length prefix"),
                ))
            }
        }
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let mut newline = [0u8; 1];
    r.read_exact(&mut newline)?;
    if newline[0] != b'\n' {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame payload not terminated by newline (bad length prefix?)",
        ));
    }
    String::from_utf8(payload).map(Some).map_err(|_| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame payload is not UTF-8",
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let line = req.to_line();
        assert_eq!(Request::parse_line(&line).unwrap(), req, "line: {line}");
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request {
            tenant: "acme".into(),
            backend: BackendSpec::Seq,
            job: JobSpec::Put {
                name: "a".into(),
                nrows: 2,
                ncols: 2,
                triplets: vec![(0, 0, 2.0), (1, 1, -0.125)],
            },
        });
        round_trip_request(Request {
            tenant: "acme".into(),
            backend: BackendSpec::Dist(4),
            job: JobSpec::Mxv {
                matrix: "a".into(),
                x: vec![1.0, -2.5],
            },
        });
        round_trip_request(Request {
            tenant: "t2".into(),
            backend: BackendSpec::Par,
            job: JobSpec::Pagerank {
                matrix: "web".into(),
                damping: 0.85,
                tol: 1e-9,
                max_iters: 100,
            },
        });
        round_trip_request(Request {
            tenant: "t2".into(),
            backend: BackendSpec::Seq,
            job: JobSpec::Hpcg {
                size: 8,
                levels: 2,
                iters: 3,
            },
        });
        round_trip_request(Request {
            tenant: "ops".into(),
            backend: BackendSpec::Seq,
            job: JobSpec::Stats,
        });
    }

    #[test]
    fn stats_responses_round_trip() {
        let resp = Response::Ok {
            payload: Payload::Stats(r#"{"jobs_ok":3,"histograms":{}}"#.to_string()),
            meter: MeterSnapshot::default(),
        };
        let back = Response::parse_line(&resp.to_line()).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn responses_round_trip_bit_exactly() {
        // A value with no short decimal form must survive the wire.
        let ugly = 1.0 / 3.0 + 1e-17;
        let resp = Response::Ok {
            payload: Payload::Solve {
                iterations: 7,
                relative_residual: ugly,
                x: vec![f64::INFINITY, -0.0, 2.5e-300],
            },
            meter: MeterSnapshot {
                modeled_secs: 1.25e-3,
                h_bytes: 4096.0,
                supersteps: 12,
                jobs: 3,
                plan_hits: 5,
                plan_misses: 1,
                frontier_push: 9,
                frontier_pull: 4,
            },
        };
        let line = resp.to_line();
        let back = Response::parse_line(&line).unwrap();
        match (&resp, &back) {
            (
                Response::Ok {
                    payload:
                        Payload::Solve {
                            relative_residual: a,
                            x: xa,
                            ..
                        },
                    ..
                },
                Response::Ok {
                    payload:
                        Payload::Solve {
                            relative_residual: b,
                            x: xb,
                            ..
                        },
                    ..
                },
            ) => {
                assert_eq!(a.to_bits(), b.to_bits());
                for (va, vb) in xa.iter().zip(xb) {
                    assert_eq!(va.to_bits(), vb.to_bits());
                }
            }
            _ => panic!("shape changed over the wire"),
        }
        assert_eq!(back, resp);
    }

    #[test]
    fn error_responses_round_trip() {
        let e = ServeError::Overloaded { bound: 9 };
        let resp = Response::from_error(&e);
        let back = Response::parse_line(&resp.to_line()).unwrap();
        assert_eq!(back.into_result().unwrap_err(), e);
    }

    #[test]
    fn malformed_lines_name_the_problem() {
        let e = Request::parse_line("req acme gpu mxv a 1,2").unwrap_err();
        assert!(e.to_string().contains("gpu"), "got: {e}");
        let e = Request::parse_line("req acme seq warp a").unwrap_err();
        assert!(e.to_string().contains("warp"), "got: {e}");
        let e = Request::parse_line("req acme seq mxv a 1,x").unwrap_err();
        assert!(e.to_string().contains('x'), "got: {e}");
        let e = Request::parse_line("req onlytenant").unwrap_err();
        assert!(e.to_string().contains("missing"), "got: {e}");
        let e = Request::parse_line("req t seq bfs a 0 junk").unwrap_err();
        assert!(e.to_string().contains("trailing"), "got: {e}");
    }

    #[test]
    fn backend_spec_parsing() {
        assert_eq!(BackendSpec::parse("seq").unwrap(), BackendSpec::Seq);
        assert_eq!(BackendSpec::parse(" PAR ").unwrap(), BackendSpec::Par);
        assert_eq!(BackendSpec::parse("dist:3").unwrap(), BackendSpec::Dist(3));
        assert!(BackendSpec::parse("dist").is_err(), "no default node count");
        assert!(BackendSpec::parse("dist:0").is_err());
        assert!(BackendSpec::parse("dist:x").is_err());
        assert!(BackendSpec::parse("").is_err());
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello world").unwrap();
        write_frame(&mut buf, "").unwrap();
        write_frame(&mut buf, "second frame").unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "hello world");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "second frame");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn frame_reader_rejects_garbage() {
        let mut r = std::io::Cursor::new(b"999999999999999999 x\n".to_vec());
        assert!(read_frame(&mut r).is_err(), "oversized length");
        let mut r = std::io::Cursor::new(b"abc def\n".to_vec());
        assert!(read_frame(&mut r).is_err(), "non-numeric length");
        let mut r = std::io::Cursor::new(b"10 short\n".to_vec());
        assert!(read_frame(&mut r).is_err(), "truncated payload");
        let mut r = std::io::Cursor::new(b"2 abX".to_vec());
        assert!(read_frame(&mut r).is_err(), "missing newline terminator");
    }
}
