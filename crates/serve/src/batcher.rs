//! Cross-request SpMV batching.
//!
//! Small `mxv` jobs against the same matrix arrive independently but are
//! bandwidth-bound on the same data: sweeping the matrix once per job
//! re-reads every row per request. The batcher coalesces `k` same-matrix
//! jobs into **one** row sweep that loads each row once and accumulates
//! all `k` outputs while the row is hot.
//!
//! Bit-identicality contract: each output must equal what a direct
//! `ctx::<Sequential>().mxv` would produce. The sequential kernel folds
//! a row as `acc = acc + A_ij * x_j` over the row's entries in storage
//! order starting from `0.0` ([`mxv_exec`]'s loop), so the batched sweep
//! keeps that exact per-vector association order — only the *matrix*
//! traversal is shared, never the accumulation.

use crate::error::{Result, ServeError};
use graphblas::{CsrMatrix, Vector};

/// Computes `y_j = A · x_j` for all inputs in one sweep over `A`.
///
/// Every `x_j` must have length `A.ncols()`; each output has length
/// `A.nrows()` and is bit-identical to a standalone sequential `mxv`.
pub fn batch_mxv(a: &CsrMatrix<f64>, xs: &[&Vector<f64>]) -> Result<Vec<Vector<f64>>> {
    for (j, x) in xs.iter().enumerate() {
        if x.len() != a.ncols() {
            return Err(ServeError::BadRequest(format!(
                "batched mxv input {j} has length {} but the matrix has {} columns",
                x.len(),
                a.ncols()
            )));
        }
    }
    let k = xs.len();
    let mut outs: Vec<Vector<f64>> = (0..k).map(|_| Vector::zeros(a.nrows())).collect();
    let inputs: Vec<&[f64]> = xs.iter().map(|x| x.as_slice()).collect();
    let mut acc = vec![0.0f64; k];
    for i in 0..a.nrows() {
        let (cols, vals) = a.row(i);
        acc.iter_mut().for_each(|v| *v = 0.0);
        for (&c, &v) in cols.iter().zip(vals) {
            let c = c as usize;
            for (j, a_j) in acc.iter_mut().enumerate() {
                *a_j += v * inputs[j][c];
            }
        }
        for (j, a_j) in acc.iter().enumerate() {
            outs[j].as_mut_slice()[i] = *a_j;
        }
    }
    Ok(outs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas::{ctx, Sequential};

    fn awkward_matrix(n: usize) -> CsrMatrix<f64> {
        // Values with no exact binary representation, irregular sparsity:
        // any reassociation of the accumulation would change low bits.
        let mut triplets = Vec::new();
        for i in 0..n {
            triplets.push((i, i, 0.1 + i as f64 / 3.0));
            if i + 1 < n {
                triplets.push((i, i + 1, -1.0 / 7.0));
            }
            if i >= 2 {
                triplets.push((i, i - 2, 0.3 * i as f64));
            }
            if i % 5 == 0 && i + 3 < n {
                triplets.push((i, i + 3, 1e-12 + i as f64));
            }
        }
        CsrMatrix::from_triplets(n, n, &triplets).unwrap()
    }

    #[test]
    fn batched_outputs_are_bit_identical_to_sequential_mxv() {
        let n = 64;
        let a = awkward_matrix(n);
        let xs: Vec<Vector<f64>> = (0..5)
            .map(|j| {
                Vector::from_dense(
                    (0..n)
                        .map(|i| (i as f64 + 0.1 * j as f64) / 3.0 - 7.0 / 11.0)
                        .collect(),
                )
            })
            .collect();
        let refs: Vec<&Vector<f64>> = xs.iter().collect();
        let batched = batch_mxv(&a, &refs).unwrap();
        for (j, x) in xs.iter().enumerate() {
            let mut direct = Vector::zeros(n);
            ctx::<Sequential>().mxv(&a, x).into(&mut direct).unwrap();
            for (b, d) in batched[j].as_slice().iter().zip(direct.as_slice()) {
                assert_eq!(b.to_bits(), d.to_bits(), "vector {j} diverged");
            }
        }
    }

    #[test]
    fn batch_of_one_matches_too() {
        let a = awkward_matrix(10);
        let x = Vector::from_dense((0..10).map(|i| 1.0 / (i as f64 + 2.0)).collect());
        let batched = batch_mxv(&a, &[&x]).unwrap();
        let mut direct = Vector::zeros(10);
        ctx::<Sequential>().mxv(&a, &x).into(&mut direct).unwrap();
        assert_eq!(batched[0].as_slice(), direct.as_slice());
    }

    #[test]
    fn dimension_mismatch_is_a_bad_request() {
        let a = awkward_matrix(4);
        let short = Vector::from_dense(vec![1.0, 2.0]);
        let e = batch_mxv(&a, &[&short]).unwrap_err();
        assert!(matches!(e, ServeError::BadRequest(_)));
        assert!(e.to_string().contains("length 2"), "got: {e}");
    }
}
