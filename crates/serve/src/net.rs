//! The socket frontend: the wire protocol over a Unix-domain socket.
//!
//! One accept loop hands each connection to its own thread; a connection
//! is a sequence of framed request lines answered in order (pipelining
//! across a single connection is sequential by design — concurrency
//! comes from multiple connections, all funneling into the same bounded
//! queue and worker pool as in-process callers). Admission rejections
//! (`Overloaded`) are answered inline without occupying a worker, so the
//! socket stays responsive exactly when the service is saturated.

use crate::error::{Result, ServeError};
use crate::protocol::{read_frame, write_frame, MeterSnapshot, Payload, Request, Response};
use crate::Server;
use std::io::BufReader;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A running socket frontend; dropping or [`stop`](SocketServer::stop)-ping
/// it unbinds the socket. The [`Server`] itself keeps running.
pub struct SocketServer {
    path: PathBuf,
    stopping: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl SocketServer {
    /// Binds `path` and starts accepting connections for `server`.
    pub fn bind(server: Arc<Server>, path: &Path) -> Result<SocketServer> {
        // A stale socket file from a dead process would fail the bind.
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        let stopping = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let stopping = Arc::clone(&stopping);
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if stopping.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = conn else { continue };
                        let server = Arc::clone(&server);
                        let _ = std::thread::Builder::new()
                            .name("serve-conn".into())
                            .spawn(move || handle_connection(&server, stream));
                    }
                })
                .expect("failed to spawn accept thread")
        };
        Ok(SocketServer {
            path: path.to_path_buf(),
            stopping,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound socket path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Stops accepting and unbinds the socket. In-flight connections
    /// finish on their own threads.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        if self.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        // Poke the listener so the blocking accept observes the flag.
        let _ = UnixStream::connect(&self.path);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

impl Drop for SocketServer {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Serves one connection until EOF or an unrecoverable i/o error.
fn handle_connection(server: &Server, stream: UnixStream) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = write_half;
    loop {
        let line = match read_frame(&mut reader) {
            Ok(Some(line)) => line,
            Ok(None) => return, // clean EOF
            Err(e) => {
                // One best-effort complaint, then hang up: after a framing
                // error the stream position is unreliable.
                let resp = Response::from_error(&ServeError::Io(e.to_string()));
                let _ = write_frame(&mut writer, &resp.to_line());
                return;
            }
        };
        let response = match Request::parse_line(&line) {
            Ok(request) => match server.submit(request) {
                Ok(ticket) => match ticket.wait() {
                    Ok((payload, meter)) => Response::Ok { payload, meter },
                    Err(e) => Response::from_error(&e),
                },
                Err(e) => Response::from_error(&e),
            },
            Err(e) => Response::from_error(&e),
        };
        let wrote = {
            obs::span!("serve.reply", "serve");
            write_frame(&mut writer, &response.to_line())
        };
        if wrote.is_err() {
            return;
        }
    }
}

/// A blocking protocol client for one connection.
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    /// Connects to a [`SocketServer`] at `path`.
    pub fn connect(path: &Path) -> Result<Client> {
        let stream = UnixStream::connect(path)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request and blocks for its response.
    pub fn call(&mut self, request: &Request) -> Result<(Payload, MeterSnapshot)> {
        write_frame(&mut self.writer, &request.to_line())?;
        match read_frame(&mut self.reader)? {
            Some(line) => Response::parse_line(&line)?.into_result(),
            None => Err(ServeError::Io("server closed the connection".into())),
        }
    }
}
