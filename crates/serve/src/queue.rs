//! A bounded MPMC job queue with admission control.
//!
//! The producer side never blocks and never grows without bound:
//! [`JobQueue::try_push`] either enqueues or returns the typed
//! [`ServeError::Overloaded`] rejection immediately, which is the
//! service's whole backpressure story — clients own the retry policy,
//! the server's memory stays bounded. The consumer side blocks
//! ([`JobQueue::pop`]) until a job or shutdown arrives, and additionally
//! supports [`JobQueue::drain_where`] so a worker holding one job can
//! opportunistically claim queued jobs that batch with it.

use crate::error::{Result, ServeError};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded multi-producer/multi-consumer queue.
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
    bound: usize,
}

impl<T> JobQueue<T> {
    /// Creates a queue admitting at most `bound` queued jobs (jobs being
    /// executed by workers no longer count against the bound).
    pub fn new(bound: usize) -> JobQueue<T> {
        JobQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            bound,
        }
    }

    /// The admission bound this queue enforces.
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// Admits `item`, or rejects it without blocking: `Overloaded` when
    /// the queue is full, `Shutdown` once the queue is closed.
    pub fn try_push(&self, item: T) -> Result<()> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        if inner.closed {
            return Err(ServeError::Shutdown);
        }
        if inner.items.len() >= self.bound {
            return Err(ServeError::Overloaded { bound: self.bound });
        }
        inner.items.push_back(item);
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until a job arrives (returning `Some`) or the queue closes
    /// with nothing left to drain (returning `None`).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.available.wait(inner).expect("queue lock poisoned");
        }
    }

    /// Removes and returns every queued job matching `pred`, preserving
    /// arrival order, without blocking. Used by the batcher: the worker
    /// that popped an SpMV claims all queued SpMVs on the same matrix.
    pub fn drain_where<F: FnMut(&T) -> bool>(&self, mut pred: F) -> Vec<T> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        let mut matched = Vec::new();
        let mut kept = VecDeque::with_capacity(inner.items.len());
        for item in inner.items.drain(..) {
            if pred(&item) {
                matched.push(item);
            } else {
                kept.push_back(item);
            }
        }
        inner.items = kept;
        matched
    }

    /// Number of queued (not yet claimed) jobs.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock poisoned").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: future pushes fail with `Shutdown`, and blocked
    /// consumers wake up. Already-queued jobs are still handed out so a
    /// graceful shutdown drains rather than drops.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock poisoned").closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bound_is_enforced_with_typed_rejection() {
        let q = JobQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let e = q.try_push(3).unwrap_err();
        assert_eq!(e, ServeError::Overloaded { bound: 2 });
        // Draining one admits one more.
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
    }

    #[test]
    fn close_wakes_blocked_consumers_and_drains() {
        let q = Arc::new(JobQueue::new(4));
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8).unwrap_err(), ServeError::Shutdown);
        assert_eq!(q.pop(), Some(7), "queued work survives close");
        assert_eq!(q.pop(), None);
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn drain_where_preserves_order_and_remainder() {
        let q = JobQueue::new(8);
        for i in 0..6 {
            q.try_push(i).unwrap();
        }
        let evens = q.drain_where(|i| i % 2 == 0);
        assert_eq!(evens, vec![0, 2, 4]);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(5));
        assert!(q.is_empty());
    }
}
