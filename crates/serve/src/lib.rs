//! A long-running solve service over the GraphBLAS execution contexts.
//!
//! Everything else in this workspace is a one-shot binary; this crate is
//! the piece the ROADMAP's production north star needs — a server that
//! stays up and takes **concurrent** jobs: CG/HPCG solves, the graph
//! algorithms (`bfs`/`sssp`/`pagerank`/`tricount`), and raw `mxv`/`dot`
//! micro-ops. One `Exec` surface means a job runs unchanged on `seq`,
//! `par`, or `dist:<p>` — the request just names its backend.
//!
//! The server owns:
//!
//! * a [`Registry`] of named matrices (plus a cache of generated HPCG
//!   problems),
//! * a **bounded** [`JobQueue`] with admission control — a full queue
//!   rejects with the typed [`ServeError::Overloaded`] instead of
//!   queueing unboundedly,
//! * a worker pool where each worker owns its own execution state
//!   (per-worker cluster cache, per-job `DynCtx` — no shared-pool
//!   contention),
//! * cross-request batching of small same-matrix SpMVs into one sweep
//!   ([`batcher`]), bit-identical to unbatched execution,
//! * per-tenant [`Metering`] in the distributed backend's BSP cost
//!   currency, so every response carries the tenant's cumulative
//!   modeled seconds and h-relation bytes.
//!
//! Remote access speaks a length-prefixed line protocol over a Unix
//! socket ([`net`]); in-process callers (tests, benches) use
//! [`Server::call`] directly — both paths run the same queue and
//! workers.
//!
//! ```
//! use serve::{Server, ServerConfig};
//! use serve::protocol::{BackendSpec, JobSpec, Payload, Request};
//!
//! let server = Server::start(ServerConfig::default());
//! server
//!     .call(Request {
//!         tenant: "docs".into(),
//!         backend: BackendSpec::Seq,
//!         job: JobSpec::Put {
//!             name: "a".into(),
//!             nrows: 2,
//!             ncols: 2,
//!             triplets: vec![(0, 0, 2.0), (1, 1, 3.0)],
//!         },
//!     })
//!     .unwrap();
//! let (payload, meter) = server
//!     .call(Request {
//!         tenant: "docs".into(),
//!         backend: BackendSpec::Seq,
//!         job: JobSpec::Mxv { matrix: "a".into(), x: vec![1.0, 1.0] },
//!     })
//!     .unwrap();
//! assert_eq!(payload, Payload::Vector(vec![2.0, 3.0]));
//! assert_eq!(meter.jobs, 2);
//! server.shutdown();
//! ```

pub mod batcher;
pub mod error;
pub mod metering;
pub mod net;
pub mod protocol;
pub mod queue;
pub mod registry;
pub mod worker;

pub use error::{Result, ServeError};
pub use metering::Metering;
pub use protocol::{BackendSpec, JobSpec, MeterSnapshot, Payload, Request, Response};
pub use queue::JobQueue;
pub use registry::Registry;
pub use worker::{Job, ServeStats};

use std::sync::{mpsc, Arc};
use worker::Worker;

/// Server sizing knobs.
#[derive(Copy, Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads. `0` is allowed (nothing drains the queue — what
    /// the backpressure tests use to fill it deterministically).
    pub workers: usize,
    /// Queued-job admission bound; the `workers+1`-th .. in-flight jobs
    /// queue here and the bound caps that queue.
    pub queue_bound: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_bound: 64,
        }
    }
}

/// A pending response: hold it while the job runs, [`wait`](JobTicket::wait)
/// for the result.
pub struct JobTicket {
    rx: mpsc::Receiver<Response>,
}

impl JobTicket {
    /// Blocks until the job's response arrives.
    pub fn wait(self) -> Result<(Payload, MeterSnapshot)> {
        match self.rx.recv() {
            Ok(response) => response.into_result(),
            // The worker dropped the sender without replying: shutdown.
            Err(_) => Err(ServeError::Shutdown),
        }
    }
}

/// The long-running solve service (in-process handle).
pub struct Server {
    queue: Arc<JobQueue<Job>>,
    registry: Arc<Registry>,
    metering: Arc<Metering>,
    stats: Arc<ServeStats>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Starts the worker pool and returns the handle.
    pub fn start(config: ServerConfig) -> Server {
        let queue = Arc::new(JobQueue::new(config.queue_bound));
        let registry = Arc::new(Registry::new());
        let metering = Arc::new(Metering::new());
        let stats = Arc::new(ServeStats::default());
        let handles = (0..config.workers)
            .map(|i| {
                let worker = Worker::new(
                    Arc::clone(&queue),
                    Arc::clone(&registry),
                    Arc::clone(&metering),
                    Arc::clone(&stats),
                );
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker.run())
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Server {
            queue,
            registry,
            metering,
            stats,
            handles,
        }
    }

    /// Submits a job without waiting. Fails fast with
    /// [`ServeError::Overloaded`] when the queue is at its bound.
    pub fn submit(&self, request: Request) -> Result<JobTicket> {
        let (tx, rx) = mpsc::channel();
        self.queue.try_push(Job {
            request,
            reply: tx,
            submitted: std::time::Instant::now(),
        })?;
        Ok(JobTicket { rx })
    }

    /// Submits a job and blocks for its result.
    pub fn call(&self, request: Request) -> Result<(Payload, MeterSnapshot)> {
        self.submit(request)?.wait()
    }

    /// The shared matrix registry (also reachable through `put` jobs).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The per-tenant meter.
    pub fn metering(&self) -> &Metering {
        &self.metering
    }

    /// Observability counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The admission bound the queue enforces.
    pub fn queue_bound(&self) -> usize {
        self.queue.bound()
    }

    /// Jobs currently queued (excludes jobs being executed).
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Graceful shutdown: stop admitting, drain queued jobs, join the
    /// workers.
    pub fn shutdown(mut self) {
        self.queue.close();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // `shutdown()` drains `handles`, so this only fires on a handle
        // dropped without an explicit shutdown; close so workers exit
        // rather than park forever.
        self.queue.close();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}
