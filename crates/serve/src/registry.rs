//! Shared, named state the server owns across requests.
//!
//! Two maps live here: the tenant-visible matrix registry (`put` jobs
//! install into it, every by-name job reads from it) and a server-side
//! cache of generated HPCG problems keyed by `(size, levels)` — building
//! a multigrid hierarchy dwarfs a small solve, so repeated `hpcg` jobs
//! must not rebuild it. Both maps hand out `Arc`s: workers read matrices
//! concurrently without copying, and a `put` overwriting a name cannot
//! invalidate a job already running against the old matrix.

use crate::error::{Result, ServeError};
use graphblas::CsrMatrix;
use hpcg::{Grid3, Problem, RhsVariant};
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// Named-matrix registry plus the HPCG problem cache.
#[derive(Default)]
pub struct Registry {
    matrices: RwLock<HashMap<String, Arc<CsrMatrix<f64>>>>,
    problems: RwLock<HashMap<(usize, usize), Arc<Problem>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Builds a matrix from triplets and installs it under `name`,
    /// replacing any previous holder of the name.
    pub fn put(
        &self,
        name: &str,
        nrows: usize,
        ncols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<()> {
        let m = CsrMatrix::from_triplets(nrows, ncols, triplets)?;
        self.matrices
            .write()
            .expect("registry lock poisoned")
            .insert(name.to_string(), Arc::new(m));
        Ok(())
    }

    /// Looks up a registered matrix by name.
    pub fn get(&self, name: &str) -> Result<Arc<CsrMatrix<f64>>> {
        self.matrices
            .read()
            .expect("registry lock poisoned")
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::NoSuchMatrix(name.to_string()))
    }

    /// Registered matrix names, for introspection.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .matrices
            .read()
            .expect("registry lock poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Returns the cached `(size, levels)` HPCG problem, building it on
    /// first use. Always uses the reference rhs so solves are comparable
    /// across backends and sessions.
    pub fn hpcg_problem(&self, size: usize, levels: usize) -> Result<Arc<Problem>> {
        if let Some(p) = self
            .problems
            .read()
            .expect("problem cache poisoned")
            .get(&(size, levels))
        {
            return Ok(Arc::clone(p));
        }
        // Build outside the lock: hierarchy construction is the slow part
        // and two racing builders simply produce identical problems.
        let built = Arc::new(Problem::build_with(
            Grid3::cube(size),
            levels,
            RhsVariant::Reference,
        )?);
        let mut cache = self.problems.write().expect("problem cache poisoned");
        Ok(Arc::clone(cache.entry((size, levels)).or_insert(built)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_and_missing_name() {
        let reg = Registry::new();
        reg.put("a", 2, 2, &[(0, 0, 1.0), (1, 1, 2.0)]).unwrap();
        let m = reg.get("a").unwrap();
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.nnz(), 2);
        let e = reg.get("missing").unwrap_err();
        assert_eq!(e, ServeError::NoSuchMatrix("missing".into()));
    }

    #[test]
    fn put_rejects_out_of_bounds_triplets() {
        let reg = Registry::new();
        let e = reg.put("bad", 2, 2, &[(5, 0, 1.0)]).unwrap_err();
        assert!(matches!(e, ServeError::Exec(_)));
    }

    #[test]
    fn old_matrix_survives_replacement() {
        let reg = Registry::new();
        reg.put("a", 1, 1, &[(0, 0, 1.0)]).unwrap();
        let old = reg.get("a").unwrap();
        reg.put("a", 1, 1, &[(0, 0, 9.0)]).unwrap();
        assert_eq!(old.get(0, 0), Some(1.0), "in-flight handle unchanged");
        assert_eq!(reg.get("a").unwrap().get(0, 0), Some(9.0));
    }

    #[test]
    fn hpcg_problems_are_cached() {
        let reg = Registry::new();
        let p1 = reg.hpcg_problem(4, 2).unwrap();
        let p2 = reg.hpcg_problem(4, 2).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2), "second lookup hits the cache");
    }
}
