//! Typed service errors and their wire codes.
//!
//! The service's error discipline extends the GraphBLAS one (errors are
//! values, callers decide policy) with the conditions only a long-running
//! server has: admission-control rejection ([`ServeError::Overloaded`]),
//! protocol violations, unknown registry names, and shutdown races. Every
//! variant maps onto a stable wire code so remote clients can branch on
//! the condition without parsing prose.

use graphblas::GrbError;
use std::fmt;

/// The error type of every fallible service operation, in-process or on
/// the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Admission control rejected the job: the bounded queue already holds
    /// `bound` jobs. The request was **not** enqueued; the client owns the
    /// retry policy (the typed alternative to queueing unboundedly).
    Overloaded {
        /// The queue bound that was hit.
        bound: usize,
    },
    /// The request line failed to parse or asked for something malformed
    /// (bad backend spec, bad vector literal, wrong token count).
    BadRequest(String),
    /// The named matrix is not in the registry.
    NoSuchMatrix(String),
    /// The job executed and the kernel layer reported an error
    /// (dimension mismatch, negative cycle, ...).
    Exec(GrbError),
    /// A socket/framing failure.
    Io(String),
    /// The server shut down while the job was queued or in flight.
    Shutdown,
}

impl ServeError {
    /// The stable wire code of this error (`err <code> <message>`).
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::BadRequest(_) => "bad_request",
            ServeError::NoSuchMatrix(_) => "no_such_matrix",
            ServeError::Exec(_) => "exec",
            ServeError::Io(_) => "io",
            ServeError::Shutdown => "shutdown",
        }
    }

    /// Reconstructs an error from its wire code and message (lossy: the
    /// structured fields collapse into prose on the wire).
    pub fn from_wire(code: &str, message: &str) -> ServeError {
        match code {
            "overloaded" => ServeError::Overloaded {
                bound: message
                    .split_whitespace()
                    .find_map(|t| t.trim_matches(|c: char| !c.is_ascii_digit()).parse().ok())
                    .unwrap_or(0),
            },
            "no_such_matrix" => {
                // Recover the name from `no matrix named "x" is registered`.
                let name = message.split('"').nth(1).unwrap_or(message).to_string();
                ServeError::NoSuchMatrix(name)
            }
            "exec" => ServeError::Exec(GrbError::InvalidInput(message.to_string())),
            "io" => ServeError::Io(message.to_string()),
            "shutdown" => ServeError::Shutdown,
            _ => ServeError::BadRequest(message.to_string()),
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { bound } => {
                write!(f, "queue full at bound {bound}, job rejected")
            }
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::NoSuchMatrix(name) => write!(f, "no matrix named {name:?} is registered"),
            ServeError::Exec(e) => write!(f, "execution failed: {e}"),
            ServeError::Io(msg) => write!(f, "i/o failure: {msg}"),
            ServeError::Shutdown => write!(f, "server shut down before the job completed"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<GrbError> for ServeError {
    fn from(e: GrbError) -> ServeError {
        ServeError::Exec(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> ServeError {
        ServeError::Io(e.to_string())
    }
}

/// Convenience alias used throughout the service.
pub type Result<T> = std::result::Result<T, ServeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_distinct() {
        let errors = [
            ServeError::Overloaded { bound: 4 },
            ServeError::BadRequest("x".into()),
            ServeError::NoSuchMatrix("a".into()),
            ServeError::Exec(GrbError::Unsupported("y")),
            ServeError::Io("pipe".into()),
            ServeError::Shutdown,
        ];
        let codes: Vec<&str> = errors.iter().map(ServeError::code).collect();
        assert_eq!(
            codes,
            vec![
                "overloaded",
                "bad_request",
                "no_such_matrix",
                "exec",
                "io",
                "shutdown"
            ]
        );
    }

    #[test]
    fn overloaded_round_trips_its_bound() {
        let e = ServeError::Overloaded { bound: 7 };
        let back = ServeError::from_wire(e.code(), &e.to_string());
        assert_eq!(back, e);
    }

    #[test]
    fn display_names_the_condition() {
        let e = ServeError::Overloaded { bound: 3 };
        assert!(e.to_string().contains("bound 3"));
        let e = ServeError::NoSuchMatrix("web".into());
        assert!(e.to_string().contains("web"));
    }
}
