//! End-to-end service tests: the acceptance criteria of the serve
//! subsystem — concurrent bit-identical execution across backends,
//! typed backpressure, per-tenant metering, batching, and the socket
//! frontend.

use serve::net::{Client, SocketServer};
use serve::protocol::{BackendSpec, JobSpec, Payload, Request};
use serve::{ServeError, Server, ServerConfig};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use graphblas::{ctx, CsrMatrix, Sequential, Vector};

/// A small graph with awkward float weights: any reassociation of a sum
/// shows up in the low bits.
fn graph_triplets(n: usize) -> Vec<(usize, usize, f64)> {
    let mut t = Vec::new();
    for i in 0..n {
        t.push((i, (i + 1) % n, 0.1 + i as f64 / 3.0));
        t.push((i, (i + 3) % n, 1.0 / 7.0 + i as f64));
        if i % 2 == 0 {
            t.push((i, (i + 5) % n, 0.3));
        }
    }
    t
}

/// Pattern-symmetric closure of [`graph_triplets`]: `tricount` validates
/// its adjacency, so triangle jobs run on the undirected version.
fn sym_graph_triplets(n: usize) -> Vec<(usize, usize, f64)> {
    let mut seen = std::collections::HashSet::new();
    let mut t = Vec::new();
    for (r, c, v) in graph_triplets(n) {
        if seen.insert((r, c)) {
            t.push((r, c, v));
        }
    }
    for (r, c, v) in graph_triplets(n) {
        if seen.insert((c, r)) {
            t.push((c, r, v));
        }
    }
    t
}

/// A small SPD matrix (diagonally dominant) for CG jobs.
fn spd_triplets(n: usize) -> Vec<(usize, usize, f64)> {
    let mut t = Vec::new();
    for i in 0..n {
        t.push((i, i, 4.0 + 0.1 * i as f64));
        if i + 1 < n {
            t.push((i, i + 1, -1.0 / 3.0));
            t.push((i + 1, i, -1.0 / 3.0));
        }
    }
    t
}

fn put(server: &Server, name: &str, n: usize, triplets: Vec<(usize, usize, f64)>) {
    server
        .call(Request {
            tenant: "setup".into(),
            backend: BackendSpec::Seq,
            job: JobSpec::Put {
                name: name.into(),
                nrows: n,
                ncols: n,
                triplets,
            },
        })
        .expect("put failed");
}

#[test]
fn concurrent_mixed_backend_jobs_match_direct_sequential() {
    let n = 40;
    let server = Arc::new(Server::start(ServerConfig {
        workers: 4,
        queue_bound: 256,
    }));
    put(&server, "g", n, graph_triplets(n));
    put(&server, "gsym", n, sym_graph_triplets(n));
    put(&server, "spd", n, spd_triplets(n));

    // Direct sequential ground truth, computed without the service.
    let g = CsrMatrix::from_triplets(n, n, &graph_triplets(n)).unwrap();
    let sctx = ctx::<Sequential>();
    let x_for = |t: usize| -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 + 0.1 * t as f64) / 3.0 - 7.0 / 11.0)
            .collect()
    };
    let expected_mxv: Vec<Vec<f64>> = (0..8)
        .map(|t| {
            let x = Vector::from_dense(x_for(t));
            let mut y = Vector::zeros(n);
            sctx.mxv(&g, &x).into(&mut y).unwrap();
            y.as_slice().to_vec()
        })
        .collect();
    let expected_bfs = graphblas::algorithms::bfs_levels(sctx, &g, 0).unwrap();
    let expected_sssp = graphblas::algorithms::sssp(sctx, &g, 1).unwrap();
    let gs = CsrMatrix::from_triplets(n, n, &sym_graph_triplets(n)).unwrap();
    let expected_tri = graphblas::algorithms::triangle_count(sctx, &gs).unwrap();
    let expected_dot: f64 = sctx
        .dot(&Vector::from_dense(x_for(0)), &Vector::from_dense(x_for(1)))
        .compute()
        .unwrap();

    // Mixed backends. Distributed executes through sequential kernels and
    // parallel keeps per-row/fixed-chunk determinism, so every spelling
    // must be bit-identical to the direct sequential run for these jobs.
    let backends = [
        BackendSpec::Seq,
        BackendSpec::Par,
        BackendSpec::Dist(2),
        BackendSpec::Dist(4),
    ];
    let mut threads = Vec::new();
    for t in 0..8usize {
        let server = Arc::clone(&server);
        let expected_mxv = expected_mxv[t].clone();
        let expected_bfs = expected_bfs.clone();
        let expected_sssp = expected_sssp.clone();
        let backend = backends[t % backends.len()];
        let x = x_for(t);
        let x0 = x_for(0);
        let x1 = x_for(1);
        threads.push(std::thread::spawn(move || {
            let tenant = format!("tenant-{}", t % 2);
            let (payload, meter) = server
                .call(Request {
                    tenant: tenant.clone(),
                    backend,
                    job: JobSpec::Mxv {
                        matrix: "g".into(),
                        x,
                    },
                })
                .expect("mxv failed");
            match payload {
                Payload::Vector(y) => {
                    for (a, b) in y.iter().zip(&expected_mxv) {
                        assert_eq!(a.to_bits(), b.to_bits(), "mxv diverged on {backend}");
                    }
                }
                other => panic!("unexpected payload {other:?}"),
            }
            assert!(meter.jobs > 0, "response carries the tenant meter");

            let (payload, meter) = server
                .call(Request {
                    tenant: tenant.clone(),
                    backend,
                    job: JobSpec::Bfs {
                        matrix: "g".into(),
                        source: 0,
                    },
                })
                .expect("bfs failed");
            assert_eq!(payload, Payload::Levels(expected_bfs));
            assert!(
                meter.frontier_push + meter.frontier_pull > 0,
                "bfs meters its push/pull frontier decisions"
            );

            let (payload, _) = server
                .call(Request {
                    tenant: tenant.clone(),
                    backend,
                    job: JobSpec::Sssp {
                        matrix: "g".into(),
                        source: 1,
                    },
                })
                .expect("sssp failed");
            match payload {
                Payload::Vector(d) => {
                    for (a, b) in d.iter().zip(&expected_sssp) {
                        assert_eq!(a.to_bits(), b.to_bits(), "sssp diverged on {backend}");
                    }
                }
                other => panic!("unexpected payload {other:?}"),
            }

            let (payload, _) = server
                .call(Request {
                    tenant: tenant.clone(),
                    backend,
                    job: JobSpec::Dot { x: x0, y: x1 },
                })
                .expect("dot failed");
            // Dist dot runs sequential kernels; Par dot reassociates, so
            // only pin the non-par backends to the exact bits.
            if backend != BackendSpec::Par {
                assert_eq!(payload, Payload::Scalar(expected_dot));
            }

            let (payload, _) = server
                .call(Request {
                    tenant,
                    backend,
                    job: JobSpec::TriangleCount {
                        matrix: "gsym".into(),
                    },
                })
                .expect("tricount failed");
            assert_eq!(payload, Payload::Count(expected_tri));
        }));
    }
    for t in threads {
        t.join().expect("worker thread panicked");
    }

    // CG across seq and dist:<p> (floating accumulation order matters, so
    // par is exercised elsewhere): bit-identical solves.
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64 / 3.0).collect();
    let solve = |backend: BackendSpec| {
        let (payload, _) = server
            .call(Request {
                tenant: "cg".into(),
                backend,
                job: JobSpec::Cg {
                    matrix: "spd".into(),
                    iters: 12,
                    b: b.clone(),
                },
            })
            .expect("cg failed");
        match payload {
            Payload::Solve {
                iterations,
                relative_residual,
                x,
            } => (iterations, relative_residual, x),
            other => panic!("unexpected payload {other:?}"),
        }
    };
    let (it_seq, rr_seq, x_seq) = solve(BackendSpec::Seq);
    let (it_dist, rr_dist, x_dist) = solve(BackendSpec::Dist(3));
    assert_eq!(it_seq, 12);
    assert!(rr_seq < 1e-6, "CG converged: {rr_seq}");
    assert_eq!(it_seq, it_dist);
    assert_eq!(rr_seq.to_bits(), rr_dist.to_bits());
    for (a, b) in x_seq.iter().zip(&x_dist) {
        assert_eq!(a.to_bits(), b.to_bits(), "dist CG solution diverged");
    }

    // HPCG solves agree bit-exactly between seq and dist too.
    let hpcg = |backend: BackendSpec| {
        let (payload, _) = server
            .call(Request {
                tenant: "cg".into(),
                backend,
                job: JobSpec::Hpcg {
                    size: 8,
                    levels: 2,
                    iters: 3,
                },
            })
            .expect("hpcg failed");
        match payload {
            Payload::Solve {
                relative_residual, ..
            } => relative_residual,
            other => panic!("unexpected payload {other:?}"),
        }
    };
    assert_eq!(
        hpcg(BackendSpec::Seq).to_bits(),
        hpcg(BackendSpec::Dist(2)).to_bits()
    );

    Arc::try_unwrap(server)
        .map_err(|_| "server still shared")
        .unwrap()
        .shutdown();
}

#[test]
fn backpressure_rejects_with_typed_overloaded() {
    // No workers: nothing drains the queue, so admission is deterministic.
    let server = Server::start(ServerConfig {
        workers: 0,
        queue_bound: 3,
    });
    let req = |i: usize| Request {
        tenant: format!("t{i}"),
        backend: BackendSpec::Seq,
        job: JobSpec::Dot {
            x: vec![1.0],
            y: vec![2.0],
        },
    };
    let _tickets: Vec<_> = (0..3).map(|i| server.submit(req(i)).unwrap()).collect();
    assert_eq!(server.queued(), 3);
    let e = match server.submit(req(3)) {
        Ok(_) => panic!("4th job must be rejected"),
        Err(e) => e,
    };
    assert_eq!(e, ServeError::Overloaded { bound: 3 }, "typed rejection");
    assert_eq!(e.code(), "overloaded");
    assert_eq!(server.queued(), 3, "rejected job was not enqueued");
    server.shutdown();
}

#[test]
fn per_tenant_metering_is_disjoint_and_pinned() {
    let n = 24;
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_bound: 64,
    });
    put(&server, "g", n, graph_triplets(n));

    // Tenant A: two SpMVs and a dot on seq. Tenant B: one distributed
    // SpMV on 4 nodes. Different mixes, one meter each.
    let x: Vec<f64> = (0..n).map(|i| i as f64 / 3.0).collect();
    let mut last_a = None;
    for _ in 0..2 {
        let (_, m) = server
            .call(Request {
                tenant: "alice".into(),
                backend: BackendSpec::Seq,
                job: JobSpec::Mxv {
                    matrix: "g".into(),
                    x: x.clone(),
                },
            })
            .unwrap();
        last_a = Some(m);
    }
    let (_, ma) = server
        .call(Request {
            tenant: "alice".into(),
            backend: BackendSpec::Seq,
            job: JobSpec::Dot {
                x: x.clone(),
                y: x.clone(),
            },
        })
        .unwrap();
    let (_, mb) = server
        .call(Request {
            tenant: "bob".into(),
            backend: BackendSpec::Dist(4),
            job: JobSpec::Mxv {
                matrix: "g".into(),
                x: x.clone(),
            },
        })
        .unwrap();

    // Pinned: alice billed exactly one gauge step per job (2 SpMV + 1
    // Dot), cumulative and monotonic; bob billed the distributed job's
    // real superstep trace, with actual communicated bytes.
    assert_eq!(ma.jobs, 3);
    assert_eq!(ma.supersteps, 3);
    assert!(ma.modeled_secs > last_a.unwrap().modeled_secs);
    assert_eq!(ma.h_bytes, 0.0, "local jobs communicate nothing");
    assert_eq!(mb.jobs, 1);
    assert!(mb.supersteps >= 1);
    assert!(mb.h_bytes > 0.0, "4-node SpMV must move bytes");
    assert!(mb.modeled_secs > 0.0);

    // The server-side summaries attribute classes per tenant, disjointly.
    let sa = server.metering().summary("alice").unwrap();
    assert_eq!(sa.supersteps, 3);
    let mut counts: Vec<(bsp::KernelClass, usize)> =
        sa.per_class.iter().map(|c| (c.class, c.steps)).collect();
    counts.sort_by_key(|(c, _)| format!("{c:?}"));
    assert_eq!(
        counts,
        vec![(bsp::KernelClass::Dot, 1), (bsp::KernelClass::SpMV, 2)]
    );
    let sb = server.metering().summary("bob").unwrap();
    assert!(sb.total_h_bytes > 0.0);
    assert!(
        (sa.total_secs - ma.modeled_secs).abs() < 1e-12,
        "summary and response meter agree"
    );
    assert!(server.metering().summary("nobody").is_none());
    // Setup put is billed to its own tenant, not to alice/bob.
    assert_eq!(server.metering().summary("setup").unwrap().supersteps, 1);
    server.shutdown();
}

#[test]
fn interleaved_dist_tenants_on_one_shared_cluster_do_not_bleed() {
    // One worker → every dist:2 job below runs on the SAME cached
    // cluster. Interleaving two tenants (with a failing job in the
    // middle) must bill each tenant exactly what a private cluster
    // would have billed for its own jobs — nothing bleeds across the
    // per-job hand-off.
    let n = 24;
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_bound: 64,
    });
    put(&server, "g", n, graph_triplets(n));
    let x: Vec<f64> = (0..n).map(|i| i as f64 / 3.0 - 0.7).collect();

    // Ground truth per-job step traces from a private 2-node cluster.
    let g = CsrMatrix::from_triplets(n, n, &graph_triplets(n)).unwrap();
    let solo = graphblas::Distributed::new(2);
    let xv = Vector::from_dense(x.clone());
    let mut y = Vector::zeros(n);
    solo.ctx().mxv(&g, &xv).into(&mut y).unwrap();
    let mxv_steps = solo.take_steps();
    solo.ctx().dot(&xv, &xv).compute().unwrap();
    let dot_steps = solo.take_steps();
    let secs = |steps: &[bsp::StepCost]| steps.iter().map(|s| s.total_secs()).sum::<f64>();

    let call = |tenant: &str, job: JobSpec| {
        server
            .call(Request {
                tenant: tenant.into(),
                backend: BackendSpec::Dist(2),
                job,
            })
            .expect("dist job failed")
    };
    let mxv_job = || JobSpec::Mxv {
        matrix: "g".into(),
        x: x.clone(),
    };
    let dot_job = || JobSpec::Dot {
        x: x.clone(),
        y: x.clone(),
    };

    call("alice", mxv_job());
    call("bob", mxv_job());
    // A failing bob job between alice's jobs: wrong-length input.
    server
        .call(Request {
            tenant: "bob".into(),
            backend: BackendSpec::Dist(2),
            job: JobSpec::Mxv {
                matrix: "g".into(),
                x: vec![1.0; 3],
            },
        })
        .expect_err("length-mismatched mxv must fail");
    call("alice", dot_job());
    let (_, mb) = call("bob", dot_job());
    let (_, ma) = call("alice", mxv_job());

    // Alice: 2 SpMVs + 1 dot; bob: 1 SpMV + 1 dot (the failed job billed
    // nothing and is not counted). Modeled cost is deterministic, so the
    // bills must match the private-cluster traces exactly.
    assert_eq!(ma.jobs, 3);
    assert_eq!(ma.supersteps, 2 * mxv_steps.len() + dot_steps.len());
    assert!((ma.modeled_secs - (2.0 * secs(&mxv_steps) + secs(&dot_steps))).abs() < 1e-15);
    assert_eq!(mb.jobs, 2);
    assert_eq!(mb.supersteps, mxv_steps.len() + dot_steps.len());
    assert!((mb.modeled_secs - (secs(&mxv_steps) + secs(&dot_steps))).abs() < 1e-15);
    let solo_h: f64 = mxv_steps.iter().chain(&dot_steps).map(|s| s.h_bytes).sum();
    assert_eq!(mb.h_bytes, solo_h, "bob's communicated bytes are his own");
    server.shutdown();
}

#[test]
fn queued_same_matrix_spmvs_are_batched_and_bit_identical() {
    let n = 32;
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_bound: 64,
    });
    put(&server, "g", n, graph_triplets(n));

    // Occupy the single worker with a slow solve, then queue up SpMVs on
    // the same matrix: when the worker frees up it pops the first and
    // must drain the rest into one sweep.
    let slow = server
        .submit(Request {
            tenant: "slow".into(),
            backend: BackendSpec::Seq,
            job: JobSpec::Hpcg {
                size: 16,
                levels: 2,
                iters: 4,
            },
        })
        .unwrap();
    let xs: Vec<Vec<f64>> = (0..6)
        .map(|t| (0..n).map(|i| (i + t) as f64 / 7.0 - 1.5).collect())
        .collect();
    let tickets: Vec<_> = xs
        .iter()
        .cloned()
        .map(|x| {
            server
                .submit(Request {
                    tenant: "batch".into(),
                    backend: BackendSpec::Seq,
                    job: JobSpec::Mxv {
                        matrix: "g".into(),
                        x,
                    },
                })
                .unwrap()
        })
        .collect();
    slow.wait().expect("hpcg failed");

    let g = CsrMatrix::from_triplets(n, n, &graph_triplets(n)).unwrap();
    for (x, ticket) in xs.iter().zip(tickets) {
        let (payload, _) = ticket.wait().expect("batched mxv failed");
        let mut expected = Vector::zeros(n);
        ctx::<Sequential>()
            .mxv(&g, &Vector::from_dense(x.clone()))
            .into(&mut expected)
            .unwrap();
        match payload {
            Payload::Vector(y) => {
                for (a, b) in y.iter().zip(expected.as_slice()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "batched result diverged");
                }
            }
            other => panic!("unexpected payload {other:?}"),
        }
    }
    assert!(
        server.stats().batched_jobs.load(Ordering::Relaxed) >= 2,
        "at least one multi-job sweep ran"
    );
    assert!(server.stats().batched_sweeps.load(Ordering::Relaxed) >= 1);
    server.shutdown();
}

#[test]
fn socket_round_trip_matches_in_process() {
    let n = 16;
    let server = Arc::new(Server::start(ServerConfig {
        workers: 2,
        queue_bound: 32,
    }));
    let path = std::env::temp_dir().join(format!("serve_test_{}.sock", std::process::id()));
    let frontend = SocketServer::bind(Arc::clone(&server), &path).unwrap();

    let mut client = Client::connect(&path).unwrap();
    let (payload, _) = client
        .call(&Request {
            tenant: "wire".into(),
            backend: BackendSpec::Seq,
            job: JobSpec::Put {
                name: "m".into(),
                nrows: n,
                ncols: n,
                triplets: graph_triplets(n),
            },
        })
        .unwrap();
    assert_eq!(payload, Payload::Ack);

    let x: Vec<f64> = (0..n).map(|i| 0.1 * i as f64 + 1.0 / 3.0).collect();
    let (wire_payload, wire_meter) = client
        .call(&Request {
            tenant: "wire".into(),
            backend: BackendSpec::Par,
            job: JobSpec::Mxv {
                matrix: "m".into(),
                x: x.clone(),
            },
        })
        .unwrap();
    let (direct_payload, _) = server
        .call(Request {
            tenant: "direct".into(),
            backend: BackendSpec::Seq,
            job: JobSpec::Mxv {
                matrix: "m".into(),
                x,
            },
        })
        .unwrap();
    // The wire used shortest round-trip f64 formatting, so even the
    // cross-process result is bit-identical to the in-process one.
    assert_eq!(wire_payload, direct_payload);
    assert_eq!(wire_meter.jobs, 2);

    // Typed errors survive the wire.
    let e = client
        .call(&Request {
            tenant: "wire".into(),
            backend: BackendSpec::Seq,
            job: JobSpec::TriangleCount {
                matrix: "ghost".into(),
            },
        })
        .unwrap_err();
    assert_eq!(e, ServeError::NoSuchMatrix("ghost".into()));

    frontend.stop();
    assert!(!path.exists(), "socket file cleaned up");
    // The connection thread may still hold its server Arc briefly; the
    // last Arc's drop performs the close-and-join shutdown.
    drop(client);
    drop(server);
}

#[test]
fn stats_job_reports_counters_and_latency_histograms() {
    let n = 16;
    let server = Server::start(ServerConfig {
        workers: 2,
        queue_bound: 64,
    });
    put(&server, "s", n, graph_triplets(n));
    let x: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 / 7.0).collect();
    for _ in 0..3 {
        server
            .call(Request {
                tenant: "acme".into(),
                backend: BackendSpec::Seq,
                job: JobSpec::Mxv {
                    matrix: "s".into(),
                    x: x.clone(),
                },
            })
            .unwrap();
    }
    let (payload, _) = server
        .call(Request {
            tenant: "ops".into(),
            backend: BackendSpec::Seq,
            job: JobSpec::Stats,
        })
        .unwrap();
    let Payload::Stats(json) = payload else {
        panic!("stats job returned {payload:?}");
    };
    // One compact token: the wire would split interior whitespace.
    assert!(!json.contains(char::is_whitespace), "json: {json}");
    assert!(json.contains("\"jobs_ok\":"), "json: {json}");
    // 1 put + 3 mxv finished before the stats job was popped.
    assert!(json.contains("\"latency_ns.kind.mxv\""), "json: {json}");
    assert!(json.contains("\"latency_ns.tenant.acme\""), "json: {json}");
    // The snapshot itself round-trips the wire as a single token.
    let resp = serve::protocol::Response::Ok {
        payload: Payload::Stats(json.clone()),
        meter: serve::MeterSnapshot::default(),
    };
    let back = serve::protocol::Response::parse_line(&resp.to_line()).unwrap();
    assert_eq!(back, resp);
}
