//! Offline shim for the subset of [criterion](https://docs.rs/criterion)
//! this workspace uses.
//!
//! Supports `criterion_group!`/`criterion_main!`, benchmark groups,
//! `Throughput`, `BenchmarkId` and `Bencher::iter`. Measurement is a
//! calibrated wall-clock sampler: each sample batches enough iterations to
//! exceed ~2 ms, `sample_size` samples are taken, and median/min/max plus
//! derived throughput are printed as plain text. When invoked with
//! `--test` (as `cargo test` does for benches), every benchmark runs a
//! single iteration and no timing is reported.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Work-volume annotation for derived rates.
#[derive(Copy, Clone, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Two-part benchmark identifier (`BenchmarkId::new("kernel", "variant")`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter rendering.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// The measurement driver handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    test_mode: bool,
    /// Per-sample mean iteration time, filled by [`Bencher::iter`].
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, collecting `sample_size` batched samples.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        if self.test_mode {
            std::hint::black_box(f());
            return;
        }
        // Warm-up + calibration: find an iteration count ≥ ~2 ms per batch.
        let mut iters_per_sample = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(2) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 2;
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            self.samples.push(t0.elapsed() / iters_per_sample as u32);
        }
        self.samples.sort_unstable();
    }
}

/// A named group of related benchmarks sharing throughput annotations.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the work volume per iteration for derived rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        self.criterion
            .run_one(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (report lines are emitted eagerly; this is a no-op
    /// kept for API compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 20,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: self.sample_size,
            criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = id.into().label;
        let samples = self.sample_size;
        self.run_one(&label, samples, None, f);
        self
    }

    fn run_one(
        &self,
        label: &str,
        sample_size: usize,
        throughput: Option<Throughput>,
        mut f: impl FnMut(&mut Bencher),
    ) {
        let mut b = Bencher {
            sample_size,
            test_mode: self.test_mode,
            samples: Vec::new(),
        };
        f(&mut b);
        if self.test_mode {
            println!("test {label} ... ok (bench shim, single iteration)");
            return;
        }
        if b.samples.is_empty() {
            println!("{label:<50} (no measurement — closure never called iter)");
            return;
        }
        let median = b.samples[b.samples.len() / 2];
        let min = b.samples[0];
        let max = *b.samples.last().unwrap();
        let mut line = format!(
            "{label:<50} time: [{} {} {}]",
            fmt_time(min),
            fmt_time(median),
            fmt_time(max)
        );
        if let Some(t) = throughput {
            let secs = median.as_secs_f64().max(1e-12);
            match t {
                Throughput::Elements(n) => {
                    let _ = write!(line, "  thrpt: {:.3} Melem/s", n as f64 / secs / 1e6);
                }
                Throughput::Bytes(n) => {
                    let _ = write!(
                        line,
                        "  thrpt: {:.3} MiB/s",
                        n as f64 / secs / (1 << 20) as f64
                    );
                }
            }
        }
        println!("{line}");
    }
}

fn fmt_time(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a benchmark group runner (`name = …; config = …; targets = …`
/// form, plus the positional form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(1));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_function(BenchmarkId::new("id", "form"), |b| b.iter(|| 2 * 2));
        g.finish();
    }

    #[test]
    fn runs_in_test_mode_quickly() {
        let mut c = Criterion {
            sample_size: 5,
            test_mode: true,
        };
        trivial(&mut c);
        c.bench_function("standalone", |b| b.iter(|| 3 * 3));
    }

    #[test]
    fn measures_when_not_in_test_mode() {
        let mut c = Criterion {
            sample_size: 3,
            test_mode: false,
        };
        let mut g = c.benchmark_group("measured");
        g.sample_size(2);
        g.bench_function("spin", |b| {
            b.iter(|| std::hint::black_box((0..500).sum::<i64>()))
        });
        g.finish();
    }
}
