//! Offline no-op stand-in for serde's derive macros.
//!
//! The workspace annotates a few plain-old-data types with
//! `#[derive(Serialize, Deserialize)]` so they serialize once a real serde
//! is available, but nothing in-tree performs serialization. With no
//! registry access, this proc-macro crate accepts the derives and expands
//! to nothing, keeping the annotations compiling. Swap the workspace `serde`
//! path dependency for the registry crate to get real implementations.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
