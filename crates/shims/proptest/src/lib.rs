//! Offline shim for the subset of [proptest](https://docs.rs/proptest) this
//! workspace uses.
//!
//! Provides the `proptest!` / `prop_assert*` macros, the [`Strategy`] trait
//! with `prop_map` / `prop_flat_map`, range and tuple strategies,
//! `collection::vec`, and `bool::ANY`. Generation is a deterministic
//! SplitMix64 stream seeded from the test name, so every run explores the
//! same cases (reproducible CI). Failing cases are reported with their case
//! number; there is **no shrinking** — the failing value itself is printed
//! via the assertion message.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration (`ProptestConfig::with_cases`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Failure value produced by `prop_assert!` and friends.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Deterministic SplitMix64 generator.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds deterministically from a label (typically the test name).
    pub fn deterministic(label: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in label.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: seed }
    }

    /// Seeds from a label plus a per-process invocation counter, for the
    /// nested `proptest!` closure form: without the counter, every
    /// invocation inside an outer test's case loop would replay the same
    /// stream and re-test identical inner values.
    pub fn deterministic_nested(label: &str) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static INVOCATION: AtomicU64 = AtomicU64::new(0);
        let mut rng = TestRng::deterministic(label);
        rng.state = rng.state.wrapping_add(
            INVOCATION
                .fetch_add(1, Ordering::Relaxed)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        rng
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of random values (`proptest::strategy::Strategy`, minus
/// shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values.
    fn prop_map<R, F: Fn(Self::Value) -> R>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Derives a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

/// Mapping strategy.
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, R, F: Fn(S::Value) -> R> Strategy for Map<S, F> {
    type Value = R;
    fn generate(&self, rng: &mut TestRng) -> R {
        (self.f)(self.base.generate(rng))
    }
}

/// Dependent (flat-mapped) strategy.
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Always-`value` strategy (`proptest::strategy::Just`).
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types generatable without an explicit strategy (bare `arg: Type`
/// parameters in `proptest!`).
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed length or a range.
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            Strategy::generate(self, rng)
        }
    }

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniform boolean strategy.
    pub struct Any;

    /// The uniform boolean strategy value (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The common imports.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {:?} != {:?} ({} != {})",
            left, right, stringify!($left), stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Fails the current case unless the operands compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: both sides equal {:?} ({} == {})",
            left,
            stringify!($left),
            stringify!($right)
        );
    }};
}

/// Property-test entry point. Two forms:
///
/// * item form — a block of `#[test]` functions whose arguments are either
///   `pattern in strategy` bindings or plain `name: Type` parameters
///   (drawn via [`Arbitrary`]), optionally preceded by
///   `#![proptest_config(...)]`;
/// * closure form — `proptest!(|(pat in strategy)| { ... })`, runs
///   immediately (used to nest dependent generation inside a test body).
#[macro_export]
macro_rules! proptest {
    (|($p:pat in $s:expr)| $body:block) => {{
        let __strategy = $s;
        let mut __rng = $crate::TestRng::deterministic_nested(concat!(file!(), ":", line!()));
        for __case in 0..$crate::ProptestConfig::default().cases {
            let $p = $crate::Strategy::generate(&__strategy, &mut __rng);
            #[allow(clippy::redundant_closure_call)]
            let __result: ::std::result::Result<(), $crate::TestCaseError> =
                (|| { $body ::std::result::Result::Ok(()) })();
            if let ::std::result::Result::Err(e) = __result {
                panic!("nested proptest case #{} failed: {}", __case, e);
            }
        }
    }};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`] (item-form expansion).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)) => {};
    // `pattern in strategy` parameters.
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(stringify!($name));
            let __strategies = ($($s,)+);
            for __case in 0..__cfg.cases {
                let ($($p,)+) = $crate::Strategy::generate(&__strategies, &mut __rng);
                #[allow(clippy::redundant_closure_call)]
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!("proptest case #{} of {} failed: {}", __case, stringify!($name), e);
                }
            }
        }
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    // Plain `name: Type` parameters drawn via `Arbitrary`.
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($a:ident : $ty:ty),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(stringify!($name));
            for __case in 0..__cfg.cases {
                $(let $a: $ty = $crate::Arbitrary::arbitrary(&mut __rng);)+
                #[allow(clippy::redundant_closure_call)]
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!("proptest case #{} of {} failed: {}", __case, stringify!($name), e);
                }
            }
        }
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = Strategy::generate(&(-5i64..7), &mut rng);
            assert!((-5..7).contains(&v));
            let u = Strategy::generate(&(3usize..=9), &mut rng);
            assert!((3..=9).contains(&u));
            let f = Strategy::generate(&(-1.0f64..2.0), &mut rng);
            assert!((-1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_lengths() {
        let mut rng = crate::TestRng::deterministic("vecs");
        let s = crate::collection::vec(0i64..10, 2usize..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| (0..10).contains(x)));
        }
        let fixed = crate::collection::vec(0i64..10, 3usize);
        assert_eq!(fixed.generate(&mut rng).len(), 3);
    }

    #[test]
    fn generation_is_deterministic() {
        let draw = || {
            let mut rng = crate::TestRng::deterministic("same-seed");
            (0..16)
                .map(|_| Strategy::generate(&(0u64..1000), &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn item_form_in_args(a in 0i64..100, b in 0i64..100) {
            prop_assert!(a + b <= 198);
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn item_form_typed_args(a: bool, b: bool) {
            prop_assert_eq!(a && b, b && a);
        }

        #[test]
        fn nested_closure_form(n in 1usize..8) {
            let strategy = crate::collection::vec(0i64..10, n);
            proptest!(|(v in strategy)| {
                prop_assert_eq!(v.len(), n);
            });
        }

        #[test]
        fn early_ok_return(n in 0usize..10) {
            if n > 4 {
                return Ok(());
            }
            prop_assert!(n <= 4);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn always_fails(a in 0i64..10) {
                prop_assert!(a < 0, "a = {}", a);
            }
        }
        always_fails();
    }
}
