//! Offline shim for the subset of [rayon](https://docs.rs/rayon) this
//! workspace uses.
//!
//! The build container has no registry access, so this crate provides the
//! rayon APIs the kernels rely on — `into_par_iter` over ranges,
//! `par_iter`/`par_chunks`/`par_chunks_mut` over slices, `with_min_len`,
//! `map`/`zip`/`enumerate`/`for_each`/`reduce`/`collect`, thread pools —
//! with genuine data parallelism on `std::thread::scope`. Work is split
//! into at most `current_num_threads()` contiguous chunks (respecting
//! `with_min_len`), which preserves the fixed-chunking determinism the
//! HPCG reference implementation depends on.
//!
//! It is a shim, not a replacement: no work stealing, no splitting beyond
//! the initial partition, and `ThreadPool::install` only scopes the thread
//! *count* (work still runs on freshly scoped threads).

use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut};
}

/// Global thread-count override (0 = use available parallelism).
static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// The number of threads parallel operations will use.
pub fn current_num_threads() -> usize {
    let n = NUM_THREADS.load(Ordering::Relaxed);
    if n != 0 {
        n
    } else {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    }
}

/// Splits `0..len` into at most `current_num_threads()` contiguous chunks of
/// at least `min_len` items and runs `f(chunk_index, start, end)` on scoped
/// threads (the last chunk runs on the caller's thread).
fn run_chunked<F: Fn(usize, usize, usize) + Sync>(len: usize, min_len: usize, f: F) {
    if len == 0 {
        return;
    }
    let min_len = min_len.max(1);
    let chunks = current_num_threads().min(len.div_ceil(min_len)).max(1);
    if chunks == 1 {
        f(0, 0, len);
        return;
    }
    let per = len.div_ceil(chunks);
    std::thread::scope(|scope| {
        let f = &f;
        for c in 1..chunks {
            let start = c * per;
            if start >= len {
                break;
            }
            let end = (start + per).min(len);
            scope.spawn(move || f(c, start, end));
        }
        f(0, 0, per.min(len));
    });
}

/// The parallel-iterator surface: indexed, fixed-partition.
///
/// # Contract
///
/// `item(i)` must be invoked at most once per index per consumption; the
/// combinators below uphold this, which is what makes `ParChunksMut` sound.
pub trait ParallelIterator: Sized + Sync {
    /// The element type.
    type Item;

    /// Number of elements.
    fn pi_len(&self) -> usize;

    /// Scheduling granularity floor.
    fn min_len_hint(&self) -> usize {
        1
    }

    /// Produces element `i`.
    ///
    /// # Safety
    ///
    /// Each index must be requested at most once per consumption, from at
    /// most one thread.
    unsafe fn item(&self, i: usize) -> Self::Item;

    /// Sets the minimum number of items each scheduled chunk processes.
    fn with_min_len(self, min: usize) -> MinLen<Self> {
        MinLen { base: self, min }
    }

    /// Element-wise transformation.
    fn map<R, F: Fn(Self::Item) -> R + Sync>(self, f: F) -> Map<Self, F> {
        Map { base: self, f }
    }

    /// Pairs this iterator with another, truncating to the shorter.
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Pairs each element with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Consumes the iterator, invoking `f` on every element in parallel.
    fn for_each<F: Fn(Self::Item) + Sync>(self, f: F) {
        let this = &self;
        run_chunked(self.pi_len(), self.min_len_hint(), |_, start, end| {
            for i in start..end {
                // SAFETY: chunks are disjoint, each index visited once.
                f(unsafe { this.item(i) });
            }
        });
    }

    /// Parallel fold: each chunk folds locally from `identity()`, then the
    /// per-chunk partials fold in chunk order (deterministic partitioning).
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        Self::Item: Send,
        ID: Fn() -> Self::Item + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    {
        let this = &self;
        let partials = std::sync::Mutex::new(Vec::new());
        run_chunked(self.pi_len(), self.min_len_hint(), |chunk, start, end| {
            let mut acc = identity();
            for i in start..end {
                // SAFETY: chunks are disjoint, each index visited once.
                acc = op(acc, unsafe { this.item(i) });
            }
            partials.lock().unwrap().push((chunk, acc));
        });
        let mut partials = partials.into_inner().unwrap();
        partials.sort_by_key(|&(chunk, _)| chunk);
        partials
            .into_iter()
            .fold(identity(), |acc, (_, v)| op(acc, v))
    }

    /// Collects into a container (sequential drain — used off the hot path).
    fn collect<C: From<Vec<Self::Item>>>(self) -> C {
        let mut out = Vec::with_capacity(self.pi_len());
        for i in 0..self.pi_len() {
            // SAFETY: each index visited exactly once.
            out.push(unsafe { self.item(i) });
        }
        C::from(out)
    }
}

/// Conversion into a [`ParallelIterator`] (`rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// The resulting iterator.
    type Iter: ParallelIterator;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange {
            start: self.start,
            len: self.end.saturating_sub(self.start),
        }
    }
}

/// Parallel iterator over a `Range<usize>`.
pub struct ParRange {
    start: usize,
    len: usize,
}

impl ParallelIterator for ParRange {
    type Item = usize;
    fn pi_len(&self) -> usize {
        self.len
    }
    unsafe fn item(&self, i: usize) -> usize {
        self.start + i
    }
}

/// `par_iter` / `par_chunks` over shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator of `&T`.
    fn par_iter(&self) -> ParSliceIter<'_, T>;
    /// Parallel iterator of `&[T]` chunks of length `chunk` (last may be short).
    fn par_chunks(&self, chunk: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParSliceIter<'_, T> {
        ParSliceIter { slice: self }
    }
    fn par_chunks(&self, chunk: usize) -> ParChunks<'_, T> {
        assert!(chunk > 0, "chunk size must be positive");
        ParChunks { slice: self, chunk }
    }
}

/// `par_chunks_mut` over exclusive slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator of `&mut [T]` chunks of length `chunk`.
    fn par_chunks_mut(&mut self, chunk: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk: usize) -> ParChunksMut<'_, T> {
        assert!(chunk > 0, "chunk size must be positive");
        ParChunksMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            chunk,
            _marker: std::marker::PhantomData,
        }
    }
}

/// Parallel `&T` iterator.
pub struct ParSliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParSliceIter<'a, T> {
    type Item = &'a T;
    fn pi_len(&self) -> usize {
        self.slice.len()
    }
    unsafe fn item(&self, i: usize) -> &'a T {
        // SAFETY: i < len by the driver contract.
        unsafe { self.slice.get_unchecked(i) }
    }
}

/// Parallel `&[T]` chunk iterator.
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    chunk: usize,
}

impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];
    fn pi_len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }
    unsafe fn item(&self, i: usize) -> &'a [T] {
        let start = i * self.chunk;
        let end = (start + self.chunk).min(self.slice.len());
        &self.slice[start..end]
    }
}

/// Parallel `&mut [T]` chunk iterator.
///
/// Holds a raw pointer so disjoint chunks can be handed to different
/// threads; soundness comes from the at-most-once-per-index contract of
/// [`ParallelIterator::item`].
pub struct ParChunksMut<'a, T> {
    ptr: *mut T,
    len: usize,
    chunk: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: chunks are disjoint and each is accessed by exactly one thread.
unsafe impl<T: Send> Send for ParChunksMut<'_, T> {}
// SAFETY: `item` hands out non-overlapping subslices only.
unsafe impl<T: Send> Sync for ParChunksMut<'_, T> {}

impl<'a, T: Send> ParallelIterator for ParChunksMut<'a, T> {
    type Item = &'a mut [T];
    fn pi_len(&self) -> usize {
        self.len.div_ceil(self.chunk)
    }
    unsafe fn item(&self, i: usize) -> &'a mut [T] {
        let start = i * self.chunk;
        let end = (start + self.chunk).min(self.len);
        // SAFETY: [start, end) chunks are pairwise disjoint and in bounds;
        // the contract guarantees each index is taken once.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), end - start) }
    }
}

/// Adapter carrying a scheduling-granularity floor.
pub struct MinLen<I> {
    base: I,
    min: usize,
}

impl<I: ParallelIterator> ParallelIterator for MinLen<I> {
    type Item = I::Item;
    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn min_len_hint(&self) -> usize {
        self.min.max(self.base.min_len_hint())
    }
    unsafe fn item(&self, i: usize) -> I::Item {
        // SAFETY: forwarded contract.
        unsafe { self.base.item(i) }
    }
}

/// Mapping adapter.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I: ParallelIterator, R, F: Fn(I::Item) -> R + Sync> ParallelIterator for Map<I, F> {
    type Item = R;
    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn min_len_hint(&self) -> usize {
        self.base.min_len_hint()
    }
    unsafe fn item(&self, i: usize) -> R {
        // SAFETY: forwarded contract.
        (self.f)(unsafe { self.base.item(i) })
    }
}

/// Zipping adapter (truncates to the shorter side).
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);
    fn pi_len(&self) -> usize {
        self.a.pi_len().min(self.b.pi_len())
    }
    fn min_len_hint(&self) -> usize {
        self.a.min_len_hint().max(self.b.min_len_hint())
    }
    unsafe fn item(&self, i: usize) -> (A::Item, B::Item) {
        // SAFETY: forwarded contract on both sides.
        unsafe { (self.a.item(i), self.b.item(i)) }
    }
}

/// Enumerating adapter.
pub struct Enumerate<I> {
    base: I,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);
    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn min_len_hint(&self) -> usize {
        self.base.min_len_hint()
    }
    unsafe fn item(&self, i: usize) -> (usize, I::Item) {
        // SAFETY: forwarded contract.
        (i, unsafe { self.base.item(i) })
    }
}

/// Builder for thread pools (`rayon::ThreadPoolBuilder`).
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

/// Error type for pool construction (construction cannot fail in the shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the thread count (0 = available parallelism).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Builds a scoped-thread "pool" (really: a thread-count setting).
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: self.num_threads.unwrap_or(0),
        })
    }

    /// Installs the thread count globally.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        NUM_THREADS.store(self.num_threads.unwrap_or(0), Ordering::Relaxed);
        Ok(())
    }
}

/// A configured degree of parallelism. `install` scopes the global thread
/// count to the closure (the shim has no dedicated worker threads).
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count as the global setting. The
    /// previous setting is restored even if `f` panics.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                NUM_THREADS.store(self.0, Ordering::Relaxed);
            }
        }
        let _restore = Restore(NUM_THREADS.swap(self.threads, Ordering::Relaxed));
        f()
    }

    /// The configured thread count.
    pub fn current_num_threads(&self) -> usize {
        if self.threads != 0 {
            self.threads
        } else {
            current_num_threads()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn range_for_each_visits_all() {
        let sum = AtomicUsize::new(0);
        (0..10_000usize)
            .into_par_iter()
            .with_min_len(64)
            .for_each(|i| {
                sum.fetch_add(i, Ordering::Relaxed);
            });
        assert_eq!(sum.load(Ordering::Relaxed), 9_999 * 10_000 / 2);
    }

    #[test]
    fn map_reduce_matches_sequential() {
        let total = (0..100_000usize)
            .into_par_iter()
            .with_min_len(512)
            .map(|i| (i % 97) as u64)
            .reduce(|| 0u64, |a, b| a + b);
        let expected: u64 = (0..100_000usize).map(|i| (i % 97) as u64).sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn chunks_zip_collect() {
        let x: Vec<f64> = (0..5000).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..5000).map(|i| 2.0 * i as f64).collect();
        let partials: Vec<f64> = x
            .par_chunks(512)
            .zip(y.par_chunks(512))
            .map(|(cx, cy)| cx.iter().zip(cy).map(|(&a, &b)| a * b).sum::<f64>())
            .collect();
        assert_eq!(partials.len(), 5000usize.div_ceil(512));
        let total: f64 = partials.iter().sum();
        let expected: f64 = x.iter().zip(&y).map(|(&a, &b)| a * b).sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn chunks_mut_writes_disjoint() {
        let mut w = vec![0.0f64; 4096];
        let y: Vec<f64> = (0..4096).map(|i| i as f64).collect();
        w.par_chunks_mut(256)
            .zip(y.par_chunks(256))
            .for_each(|(cw, cy)| {
                for i in 0..cw.len() {
                    cw[i] = cy[i] + 1.0;
                }
            });
        assert!(w.iter().enumerate().all(|(i, &v)| v == i as f64 + 1.0));
    }

    #[test]
    fn enumerate_indices_align() {
        let mut w = vec![0usize; 1000];
        w.par_chunks_mut(128)
            .enumerate()
            .for_each(|(chunk, slots)| {
                for s in slots {
                    *s = chunk;
                }
            });
        for (i, &v) in w.iter().enumerate() {
            assert_eq!(v, i / 128);
        }
    }

    #[test]
    fn pool_install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
    }
}
