//! Determinism stress suite for the sharded distributed backend.
//!
//! `dist:p` executes every kernel across `p` real worker threads over
//! sharded containers, so the one property everything downstream leans
//! on — cost cross-checks, serve billing, the paper's ALP-vs-Ref
//! comparison — is that thread scheduling is invisible in the results:
//! every run, at every node count, must be **bitwise** identical to
//! `Sequential`. These tests hammer that pin with repeats across node
//! counts (including p = 3 and p = 7, which split nothing evenly) on
//! the three surfaces with the most combine machinery: the full HPCG
//! solve, sparse-frontier traversals, and compiled-plan replay.

use graphblas::algorithms::{bfs_levels_on, sssp_on};
use graphblas::{ctx, CsrMatrix, Ctx, Distributed, Exec, GraphMatrix, Sequential, Vector};
use hpcg::{cg_solve, CgWorkspace, GrbHpcg, Grid3, Kernels, MgWorkspace, Problem, RhsVariant};

/// Deliberately uneven node counts: 3 and 7 leave ragged shard tails.
const NODE_COUNTS: [usize; 5] = [1, 2, 3, 4, 7];
/// Repeats per node count — a scheduling race that survives the
/// owner-order combine would show up as a flaky, not a deterministic,
/// failure.
const REPEATS: usize = 3;

/// A graph whose float weights make any reassociation of a sum visible
/// in the low bits.
fn awkward_csr(n: usize) -> CsrMatrix<f64> {
    let mut t = Vec::new();
    for i in 0..n {
        t.push((i, (i + 1) % n, 0.1 + i as f64 / 3.0));
        t.push((i, (i + 3) % n, 1.0 / 7.0 + i as f64));
        if i % 2 == 0 {
            t.push((i, (i + 5) % n, 0.3));
        }
    }
    CsrMatrix::from_triplets(n, n, &t).unwrap()
}

/// Runs a preconditioned CG solve and returns every result bit: the
/// solution vector and the relative residual.
fn hpcg_solution<E: Exec>(exec: Ctx<E>, problem: &Problem, iters: usize) -> (Vec<u64>, u64) {
    let mut k = GrbHpcg::with_ctx(problem.clone(), exec);
    let mut cg_ws = CgWorkspace::new(&k);
    let mut mg_ws = MgWorkspace::new(&k);
    let mut x = k.alloc(0);
    let b = problem.b.clone();
    let res = cg_solve(&mut k, &mut cg_ws, &mut mg_ws, &b, &mut x, iters, 0.0, true);
    (
        x.as_slice().iter().map(|v| v.to_bits()).collect(),
        res.relative_residual.to_bits(),
    )
}

/// Compiles the fused SpMV+dot plan once and replays it `rounds` times
/// with rebound inputs, returning every output bit of every round.
fn replay_bits<E: Exec>(exec: Ctx<E>, a: &CsrMatrix<f64>, rounds: usize) -> Vec<u64> {
    let n = a.nrows();
    let plan = hpcg::fused::build_spmv_dot_plan(exec, n);
    let mut bits = Vec::new();
    let mut y = Vector::zeros(n);
    for round in 0..rounds {
        let x = Vector::from_dense(
            (0..n)
                .map(|i| (i as f64 + 0.3 * round as f64) / 7.0 - 1.0 / 3.0)
                .collect(),
        );
        let mut bnd = plan.bindings();
        bnd.bind_matrix(plan.matrix_slot(0), a)
            .bind_input(plan.input_slot(0), &x)
            .bind_output(plan.output_slot(0), &mut y);
        let d = plan.run(&mut bnd).unwrap()[plan.scalar(0)];
        bits.push(d.to_bits());
        bits.extend(y.as_slice().iter().map(|v| v.to_bits()));
    }
    bits
}

#[test]
fn hpcg_bitwise_identical_across_node_counts_and_repeats() {
    let problem = Problem::build_with(Grid3::cube(8), 2, RhsVariant::Reference)
        .expect("8³ splits into 2 MG levels");
    let expected = hpcg_solution(ctx::<Sequential>(), &problem, 4);
    for p in NODE_COUNTS {
        for run in 0..REPEATS {
            let cluster = Distributed::new(p);
            let got = hpcg_solution(cluster.ctx(), &problem, 4);
            assert_eq!(got, expected, "HPCG diverged on dist:{p} run {run}");
        }
    }
}

#[test]
fn sparse_frontier_traversals_bitwise_identical_across_node_counts() {
    let n = 96;
    let g = GraphMatrix::from_csr(awkward_csr(n));
    let sctx = ctx::<Sequential>();
    let (exp_levels, _) = bfs_levels_on(sctx, &g, 0).unwrap();
    let (exp_dist, _) = sssp_on(sctx, &g, 1).unwrap();
    for p in NODE_COUNTS {
        for run in 0..REPEATS {
            let d = Distributed::new(p).ctx();
            let (levels, stats) = bfs_levels_on(d, &g, 0).unwrap();
            assert_eq!(levels, exp_levels, "BFS diverged on dist:{p} run {run}");
            assert!(
                stats.push_steps > 0,
                "BFS on dist:{p} never took the sparse push (frontier exchange) path"
            );
            let (dist, _) = sssp_on(d, &g, 1).unwrap();
            for (i, (a, b)) in dist.iter().zip(&exp_dist).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "SSSP diverged at {i} on dist:{p} run {run}"
                );
            }
        }
    }
}

#[test]
fn plan_replay_bitwise_identical_across_node_counts_and_repeats() {
    let a = awkward_csr(64);
    let expected = replay_bits(ctx::<Sequential>(), &a, 4);
    for p in NODE_COUNTS {
        for run in 0..REPEATS {
            let got = replay_bits(Distributed::new(p).ctx(), &a, 4);
            assert_eq!(got, expected, "plan replay diverged on dist:{p} run {run}");
        }
    }
}
