//! The multigrid V-cycle preconditioner (paper §II-D, Listing 1).
//!
//! One preconditioner application computes `z ≈ A⁻¹·r` by recursive
//! smooth–restrict–solve–refine–smooth:
//!
//! ```text
//! MG(level, z, r):
//!   z ← smooth(z, r)                 # pre-smoothing
//!   if no coarser level: return z
//!   f  ← A·z                         # current residual of A z = r
//!   rc ← restrict(r − f)
//!   zc ← 0;  zc ← MG(level+1, zc, rc)
//!   z  ← z + refine(zc)
//!   z ← smooth(z, r)                 # post-smoothing
//! ```
//!
//! Written once against [`Kernels`], so ALP and Ref share this exact
//! control flow — as they do in the paper.

use crate::kernels::Kernels;

/// Pre-allocated per-level vectors the V-cycle needs.
///
/// One instance is reused across all preconditioner applications; no
/// allocation happens inside the solver loop.
pub struct MgWorkspace<V> {
    /// Per-level right-hand side (`r` of Listing 1).
    pub r: Vec<V>,
    /// Per-level solution estimate (`z`).
    pub z: Vec<V>,
    /// Per-level residual scratch (`f`).
    pub f: Vec<V>,
}

impl<V> MgWorkspace<V> {
    /// Allocates workspace for every level of `k`.
    pub fn new<K: Kernels<V = V>>(k: &K) -> MgWorkspace<V> {
        let levels = k.levels();
        MgWorkspace {
            r: (0..levels).map(|l| k.alloc(l)).collect(),
            z: (0..levels).map(|l| k.alloc(l)).collect(),
            f: (0..levels).map(|l| k.alloc(l)).collect(),
        }
    }
}

/// Applies the MG preconditioner: `z_out ≈ A₀⁻¹ · r_fine`.
///
/// `z_out` is fully overwritten (the V-cycle starts from a zero guess, as
/// CG requires of a symmetric preconditioner).
pub fn mg_precondition<K: Kernels>(
    k: &mut K,
    ws: &mut MgWorkspace<K::V>,
    r_fine: &K::V,
    z_out: &mut K::V,
) {
    k.copy(0, r_fine, &mut ws.r[0]);
    k.set_zero(0, &mut ws.z[0]);
    vcycle(k, ws, 0);
    k.copy(0, &ws.z[0], z_out);
}

/// The recursive V-cycle on `ws.r[level]` / `ws.z[level]` (Listing 1).
///
/// Precondition: `ws.z[level]` is zero (set by the caller / the recursion).
pub fn vcycle<K: Kernels>(k: &mut K, ws: &mut MgWorkspace<K::V>, level: usize) {
    // Listing 1 line 2: pre-smooth (the only smooth at the coarsest level).
    k.smooth(level, &mut ws.z[level], &ws.r[level]);
    if level + 1 >= k.levels() {
        return;
    }
    // Lines 5-6: f ← A·z, f ← r − f, rc ← restrict(f) — one combined
    // kernel entry point so implementations can pipeline the three ops.
    {
        let (r_head, r_tail) = ws.r.split_at_mut(level + 1);
        k.residual_restrict(
            level,
            &mut ws.f[level],
            &ws.z[level],
            &r_head[level],
            &mut r_tail[0],
        );
    }
    // Lines 7-8: zc ← 0, recurse.
    k.set_zero(level + 1, &mut ws.z[level + 1]);
    vcycle(k, ws, level + 1);
    // Line 9: z ← z + refine(zc).
    {
        let (fine, coarse) = ws.z.split_at_mut(level + 1);
        k.prolong_add(level, &mut fine[level], &coarse[0]);
    }
    // Line 10: post-smooth.
    k.smooth(level, &mut ws.z[level], &ws.r[level]);
}

#[cfg(test)]
mod tests {
    use crate::geometry::Grid3;
    use crate::grb_impl::GrbHpcg;
    use crate::kernels::Kernels;
    use crate::mg::{mg_precondition, MgWorkspace};
    use crate::problem::{Problem, RhsVariant};
    use graphblas::Sequential;

    fn residual_norm<K: Kernels>(k: &mut K, b: &K::V, x: &K::V) -> f64 {
        let mut ax = k.alloc(0);
        k.spmv(0, &mut ax, x);
        let mut r = k.alloc(0);
        k.waxpby(0, &mut r, 1.0, b, -1.0, &ax);
        k.dot(0, &r, &r).sqrt()
    }

    #[test]
    fn vcycle_beats_single_smoother_application() {
        let p = Problem::build_with(Grid3::cube(16), 4, RhsVariant::Reference).unwrap();
        let b = p.b.clone();
        let mut k = GrbHpcg::<Sequential>::new(p);
        let mut ws = MgWorkspace::new(&k);

        // z_mg = MG(b); z_smooth = one symmetric sweep on the fine level.
        let mut z_mg = k.alloc(0);
        mg_precondition(&mut k, &mut ws, &b, &mut z_mg);
        let mut z_s = k.alloc(0);
        k.smooth(0, &mut z_s, &b);

        let r_mg = residual_norm(&mut k, &b, &z_mg);
        let r_s = residual_norm(&mut k, &b, &z_s);
        assert!(
            r_mg < r_s,
            "V-cycle must beat plain smoothing: MG residual {r_mg} vs smoother {r_s}"
        );
    }

    #[test]
    fn preconditioner_is_deterministic_and_zero_preserving() {
        let p = Problem::build_with(Grid3::cube(8), 3, RhsVariant::Reference).unwrap();
        let b = p.b.clone();
        let mut k = GrbHpcg::<Sequential>::new(p);
        let mut ws = MgWorkspace::new(&k);
        let mut z1 = k.alloc(0);
        let mut z2 = k.alloc(0);
        mg_precondition(&mut k, &mut ws, &b, &mut z1);
        mg_precondition(&mut k, &mut ws, &b, &mut z2);
        assert_eq!(
            z1.as_slice(),
            z2.as_slice(),
            "workspace reuse must not leak state"
        );

        // MG(0) = 0: GS from zero guess on zero rhs stays zero.
        let zero = k.alloc(0);
        let mut z0 = k.alloc(0);
        mg_precondition(&mut k, &mut ws, &zero, &mut z0);
        assert!(z0.as_slice().iter().all(|&v| v == 0.0));
    }
}
