//! **ALP**: HPCG on GraphBLAS (paper §IV).
//!
//! Every kernel is a GraphBLAS primitive over opaque containers:
//!
//! | HPCG kernel | GraphBLAS realization |
//! |-------------|----------------------|
//! | `spmv` | `mxv` over `(+, ×)` |
//! | `dot` / norms | `dot` over `(+, ×)` |
//! | `waxpby` | dedicated fused element-wise kernel |
//! | SGS smoother | RBGS: masked structural `mxv` + masked `eWiseLambda` per color (Listing 3) |
//! | restriction | `mxv` with the materialized `n/8 × n` matrix (§III-B) |
//! | refinement | accumulating `mxv` with the **transpose descriptor** on the same matrix — no materialized transpose (§IV) |
//!
//! The backend type parameter `B` selects sequential or shared-memory
//! parallel execution, the analogue of ALP's compile-time backend choice.
//!
//! # Deferred (nonblocking) execution
//!
//! By default the hot loops run through [`Ctx::pipeline`] op graphs: the
//! CG pairs `spmv`+`⟨p, Ap⟩` and residual-`axpy`+`‖r‖²` fuse into single
//! passes, the MG residual/restrict chain and the RBGS sweep execute as
//! recorded graphs. [`GrbHpcg::set_pipeline`] switches back to eager
//! per-primitive execution (`hpcg_report --pipeline off`); both modes are
//! bit-identical, which the workspace's property tests pin down.
//!
//! Each deferred op graph is **compiled once per level** into a reusable
//! [`Plan`](graphblas::Plan) held in a per-instance [`PlanCache`]: the
//! first call at a level records and fuses, every later call just rebinds
//! the iteration's buffers (and scalar parameters such as the CG `α`) and
//! replays the frozen schedule — recording and fusion drop out of the
//! iteration loop entirely. The cache is per-instance because a plan
//! captures its execution handle; keys only need to name the kernel and
//! level.

use crate::kernels::Kernels;
use crate::problem::Problem;
use crate::smoother::rbgs_grb;
use crate::timers::{Kernel, KernelTimers};
use graphblas::{ctx, plan_key, Backend, Ctx, Exec, Plan, PlanCache, Plus, Vector};
use std::time::Instant;

/// The GraphBLAS-based HPCG implementation.
///
/// Generic over the execution dispatcher: `GrbHpcg<Sequential>` /
/// `GrbHpcg<Parallel>` monomorphize the kernels (ALP's compile-time
/// backend), while `GrbHpcg<BackendKind>` — built via
/// [`GrbHpcg::with_ctx`] from a [`graphblas::DynCtx`] — selects the
/// backend at runtime (`--backend seq|par`).
pub struct GrbHpcg<E: Exec> {
    problem: Problem,
    /// Per-level workspace for the RBGS `tmp` buffer (Listing 3 line 7).
    tmp: Vec<Vector<f64>>,
    timers: KernelTimers,
    /// The execution context every kernel lowers through (ALP's launcher).
    ctx: Ctx<E>,
    /// Whether hot loops run through deferred (fused) pipelines.
    pipeline: bool,
    /// Compiled plans for the hot op graphs, keyed by kernel and level —
    /// each graph records and fuses once, then replays every iteration.
    plans: PlanCache,
}

impl<B: Backend> GrbHpcg<B> {
    /// Wraps a generated problem on the compile-time backend `B`.
    pub fn new(problem: Problem) -> GrbHpcg<B> {
        GrbHpcg::with_ctx(problem, ctx::<B>())
    }
}

impl<E: Exec> GrbHpcg<E> {
    /// Wraps a generated problem on an explicit execution context
    /// (including the runtime-dispatched [`graphblas::DynCtx`]).
    pub fn with_ctx(problem: Problem, ctx: Ctx<E>) -> GrbHpcg<E> {
        let tmp = problem
            .levels
            .iter()
            .map(|l| Vector::zeros(l.n()))
            .collect();
        let timers = KernelTimers::new(problem.levels.len());
        GrbHpcg {
            problem,
            tmp,
            timers,
            ctx,
            pipeline: true,
            plans: PlanCache::new(),
        }
    }

    /// Enables or disables deferred (pipeline-fused) execution of the hot
    /// loops. On by default; both modes produce bit-identical results.
    pub fn set_pipeline(&mut self, enabled: bool) {
        self.pipeline = enabled;
    }

    /// Whether hot loops run through deferred pipelines.
    pub fn pipeline_enabled(&self) -> bool {
        self.pipeline
    }

    /// The execution context kernels run on.
    pub fn ctx(&self) -> Ctx<E> {
        self.ctx
    }

    /// The underlying problem (levels, rhs).
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// Consumes self, returning the problem.
    pub fn into_problem(self) -> Problem {
        self.problem
    }
}

impl<E: Exec> Kernels for GrbHpcg<E> {
    type V = Vector<f64>;

    fn levels(&self) -> usize {
        self.problem.levels.len()
    }

    fn n_at(&self, level: usize) -> usize {
        self.problem.levels[level].n()
    }

    fn alloc(&self, level: usize) -> Vector<f64> {
        Vector::zeros(self.problem.levels[level].n())
    }

    fn set_zero(&mut self, _level: usize, v: &mut Vector<f64>) {
        v.clear();
    }

    fn copy(&mut self, _level: usize, src: &Vector<f64>, dst: &mut Vector<f64>) {
        dst.as_mut_slice().copy_from_slice(src.as_slice());
    }

    fn spmv(&mut self, level: usize, y: &mut Vector<f64>, x: &Vector<f64>) {
        let a = &self.problem.levels[level].a;
        let exec = self.ctx;
        self.timers.time(level, Kernel::SpMV, || {
            exec.mxv(a, x)
                .into(y)
                .expect("spmv dimensions fixed at setup");
        });
    }

    fn dot(&mut self, level: usize, x: &Vector<f64>, y: &Vector<f64>) -> f64 {
        let exec = self.ctx;
        self.timers.time(level, Kernel::Dot, || {
            exec.dot(x, y)
                .compute()
                .expect("dot dimensions fixed at setup")
        })
    }

    fn waxpby(
        &mut self,
        level: usize,
        w: &mut Vector<f64>,
        alpha: f64,
        x: &Vector<f64>,
        beta: f64,
        y: &Vector<f64>,
    ) {
        let exec = self.ctx;
        self.timers.time(level, Kernel::Waxpby, || {
            exec.ewise(x, y)
                .scaled(alpha, beta)
                .into(w)
                .expect("waxpby dimensions fixed at setup");
        });
    }

    fn axpy(&mut self, level: usize, x: &mut Vector<f64>, alpha: f64, y: &Vector<f64>) {
        let exec = self.ctx;
        self.timers.time(level, Kernel::Waxpby, || {
            exec.axpy(x, alpha, y)
                .expect("axpy dimensions fixed at setup");
        });
    }

    fn xpay(&mut self, level: usize, p: &mut Vector<f64>, beta: f64, z: &Vector<f64>) {
        let zs = z.as_slice();
        let exec = self.ctx;
        self.timers.time(level, Kernel::Waxpby, || {
            exec.transform(p)
                .apply(|i, pi| {
                    *pi = zs[i] + beta * *pi;
                })
                .expect("xpay dimensions fixed at setup");
        });
    }

    fn sub_reverse(&mut self, level: usize, w: &mut Vector<f64>, r: &Vector<f64>) {
        let rs = r.as_slice();
        let exec = self.ctx;
        self.timers.time(level, Kernel::Waxpby, || {
            exec.transform(w)
                .apply(|i, wi| {
                    *wi = rs[i] - *wi;
                })
                .expect("sub dimensions fixed at setup");
        });
    }

    fn spmv_dot(&mut self, level: usize, y: &mut Vector<f64>, x: &Vector<f64>) -> f64 {
        if !self.pipeline {
            self.spmv(level, y, x);
            return self.dot(level, x, y);
        }
        let a = &self.problem.levels[level].a;
        let exec = self.ctx;
        let n = a.nrows();
        let (plan, _) = self
            .plans
            .get_or_compile(plan_key(&("hpcg.spmv_dot", level)), || {
                crate::fused::build_spmv_dot_plan(exec, n)
            });
        let t0 = Instant::now();
        let d = crate::fused::spmv_dot_replay(&plan, a, x, y);
        // A fused pass cannot time its halves separately; attribute the
        // wall-clock to the SpMV and Dot cells in proportion to their
        // modeled flops (2·nnz vs 2·n, the constants reporting.rs uses) so
        // the breakdown figures stay comparable with the eager path.
        let elapsed = t0.elapsed().as_secs_f64();
        let (spmv_w, dot_w) = (2.0 * a.nnz() as f64, 2.0 * x.len() as f64);
        let spmv_frac = spmv_w / (spmv_w + dot_w);
        self.timers
            .add_secs(level, Kernel::SpMV, elapsed * spmv_frac);
        self.timers
            .add_secs(level, Kernel::Dot, elapsed * (1.0 - spmv_frac));
        d
    }

    fn axpy_norm2(
        &mut self,
        level: usize,
        x: &mut Vector<f64>,
        alpha: f64,
        y: &Vector<f64>,
    ) -> f64 {
        if !self.pipeline {
            self.axpy(level, x, alpha, y);
            let xs = &*x;
            return self.dot(level, xs, xs);
        }
        let exec = self.ctx;
        let len = x.len();
        let (plan, _) = self
            .plans
            .get_or_compile(plan_key(&("hpcg.axpy_norm", level)), || {
                crate::fused::build_axpy_norm_plan(exec, len)
            });
        let t0 = Instant::now();
        // The shared replay computes `x ← x − α·y`; negate to keep this
        // method's `x ← x + α·y` contract.
        let n = crate::fused::axpy_norm_replay(&plan, x, -alpha, y);
        // Update and norm model 2·n flops each: split the fused time
        // evenly between the Waxpby and Dot cells (see spmv_dot).
        let half = t0.elapsed().as_secs_f64() * 0.5;
        self.timers.add_secs(level, Kernel::Waxpby, half);
        self.timers.add_secs(level, Kernel::Dot, half);
        n
    }

    fn residual_restrict(
        &mut self,
        level: usize,
        f: &mut Vector<f64>,
        z: &Vector<f64>,
        r: &Vector<f64>,
        rc: &mut Vector<f64>,
    ) {
        if !self.pipeline {
            self.spmv(level, f, z);
            self.sub_reverse(level, f, r);
            self.restrict_to(level, rc, f);
            return;
        }
        let l = &self.problem.levels[level];
        let rmat = l
            .restriction
            .as_ref()
            .expect("residual_restrict called on a level with a coarser system");
        let a = &l.a;
        let exec = self.ctx;
        let (n, nc) = (a.nrows(), rmat.nrows());
        let (plan, _) = self
            .plans
            .get_or_compile(plan_key(&("hpcg.residual_restrict", level)), || {
                residual_restrict_plan(exec, n, nc)
            });
        let t0 = Instant::now();
        let mut b = plan.bindings();
        b.bind_matrix(plan.matrix_slot(0), a)
            .bind_matrix(plan.matrix_slot(1), rmat)
            .bind_input(plan.input_slot(0), z)
            .bind_input(plan.input_slot(1), r)
            .bind_output(plan.output_slot(0), f)
            .bind_output(plan.output_slot(1), rc);
        plan.run(&mut b)
            .expect("residual_restrict dimensions fixed at setup");
        drop(b);
        // Flop-proportional attribution across the three cells the eager
        // path charges (see spmv_dot): spmv / subtract / restriction.
        let elapsed = t0.elapsed().as_secs_f64();
        let (w_spmv, w_sub, w_restrict) = (
            2.0 * a.nnz() as f64,
            f.len() as f64,
            2.0 * rmat.nnz() as f64,
        );
        let total = w_spmv + w_sub + w_restrict;
        self.timers
            .add_secs(level, Kernel::SpMV, elapsed * w_spmv / total);
        self.timers
            .add_secs(level, Kernel::Waxpby, elapsed * w_sub / total);
        self.timers
            .add_secs(level, Kernel::RestrictRefine, elapsed * w_restrict / total);
    }

    fn smooth(&mut self, level: usize, x: &mut Vector<f64>, r: &Vector<f64>) {
        let l = &self.problem.levels[level];
        let tmp = &mut self.tmp[level];
        let exec = self.ctx;
        let plan = if self.pipeline {
            let (n, colors) = (l.n(), l.color_masks.len());
            let (plan, _) = self
                .plans
                .get_or_compile(plan_key(&("hpcg.rbgs", level)), || {
                    rbgs_grb::build_rbgs_plan(exec, n, colors)
                });
            Some(plan)
        } else {
            None
        };
        self.timers.time(level, Kernel::Smoother, || {
            if let Some(plan) = &plan {
                rbgs_grb::rbgs_symmetric_replay(plan, &l.a, &l.a_diag, &l.color_masks, r, x, tmp)
                    .expect("smoother dimensions fixed at setup");
            } else {
                rbgs_grb::rbgs_symmetric(exec, &l.a, &l.a_diag, &l.color_masks, r, x, tmp)
                    .expect("smoother dimensions fixed at setup");
            }
        });
    }

    fn restrict_to(&mut self, level: usize, rc: &mut Vector<f64>, rf: &Vector<f64>) {
        let r = self.problem.levels[level]
            .restriction
            .as_ref()
            .expect("restrict_to called on a level with a coarser system");
        let exec = self.ctx;
        self.timers.time(level, Kernel::RestrictRefine, || {
            exec.mxv(r, rf)
                .into(rc)
                .expect("restriction dimensions fixed at setup");
        });
    }

    fn prolong_add(&mut self, level: usize, zf: &mut Vector<f64>, zc: &Vector<f64>) {
        let r = self.problem.levels[level]
            .restriction
            .as_ref()
            .expect("prolong_add called on a level with a coarser system");
        let exec = self.ctx;
        self.timers.time(level, Kernel::RestrictRefine, || {
            exec.mxv(r, zc)
                .transpose()
                .accum(Plus)
                .into(zf)
                .expect("refinement dimensions fixed at setup");
        });
    }

    fn timers_mut(&mut self) -> &mut KernelTimers {
        &mut self.timers
    }

    fn timers(&self) -> &KernelTimers {
        &self.timers
    }

    fn name(&self) -> &'static str {
        "ALP (GraphBLAS)"
    }

    fn backend_name(&self) -> &'static str {
        self.ctx.backend_name()
    }
}

/// Compiles the MG residual/restrict chain — `f = A·z`, `f ← r − f`,
/// `rc = R·f` — for an `n`-row level restricting to `nc` rows. Slots:
/// matrices 0/1 are `A` and `R`, inputs 0/1 are `z` and `r`, outputs 0/1
/// are `f` and `rc`.
fn residual_restrict_plan<E: Exec>(exec: Ctx<E>, n: usize, nc: usize) -> Plan<f64, E> {
    let mut pb = exec.plan::<f64>();
    let am = pb.matrix(n, n);
    let rm = pb.matrix(nc, n);
    let zs = pb.input(n);
    let rs = pb.input(n);
    let fs = pb.output(n);
    let rcs = pb.output(nc);
    let fh = pb.mxv(am, zs).into(fs);
    pb.transform(fh).zip(rs).apply(|_i, fi, ri| *fi = ri - *fi);
    pb.mxv(rm, fh).into(rcs);
    pb.compile()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Grid3;
    use crate::problem::RhsVariant;
    use graphblas::Sequential;

    fn make() -> GrbHpcg<Sequential> {
        let p = Problem::build_with(Grid3::cube(8), 2, RhsVariant::Reference).unwrap();
        GrbHpcg::new(p)
    }

    #[test]
    fn kernel_shapes() {
        let mut k = make();
        assert_eq!(k.levels(), 2);
        assert_eq!(k.n_at(0), 512);
        assert_eq!(k.n_at(1), 64);
        let x = k.alloc(0);
        assert_eq!(x.len(), 512);
        let mut rc = k.alloc(1);
        let rf = Vector::filled(512, 1.0);
        k.restrict_to(0, &mut rc, &rf);
        assert!(
            rc.as_slice().iter().all(|&v| v == 1.0),
            "injection of constant is constant"
        );
    }

    #[test]
    fn prolong_add_accumulates() {
        let mut k = make();
        let zc = Vector::filled(64, 2.0);
        let mut zf = Vector::filled(512, 1.0);
        k.prolong_add(0, &mut zf, &zc);
        // Injected positions became 3, the rest stayed 1.
        let f2c = &k.problem().levels[0].f2c.clone();
        let zs = zf.as_slice();
        let mut injected = 0;
        for (i, &v) in zs.iter().enumerate() {
            if f2c.contains(&(i as u32)) {
                assert_eq!(v, 3.0);
                injected += 1;
            } else {
                assert_eq!(v, 1.0);
            }
        }
        assert_eq!(injected, 64);
    }

    #[test]
    fn timers_attribute_to_cells() {
        let mut k = make();
        let x = Vector::filled(512, 1.0);
        let mut y = k.alloc(0);
        k.spmv(0, &mut y, &x);
        let r1 = k.alloc(1);
        let mut z1 = k.alloc(1);
        k.smooth(1, &mut z1, &r1);
        assert!(k.timers().secs(0, Kernel::SpMV) > 0.0);
        assert!(k.timers().secs(1, Kernel::Smoother) > 0.0);
        assert_eq!(k.timers().secs(0, Kernel::Smoother), 0.0);
        assert_eq!(k.timers().secs(1, Kernel::SpMV), 0.0);
    }

    #[test]
    fn fused_kernel_overrides_match_eager_mode() {
        let p = Problem::build_with(Grid3::cube(8), 2, RhsVariant::Reference).unwrap();
        let mut fused = GrbHpcg::<Sequential>::new(p.clone());
        let mut eager = GrbHpcg::<Sequential>::new(p);
        eager.set_pipeline(false);
        assert!(fused.pipeline_enabled());
        assert!(!eager.pipeline_enabled());

        let x = Vector::from_dense((0..512).map(|i| (i % 7) as f64 - 3.0).collect::<Vec<_>>());
        let mut y_f = fused.alloc(0);
        let mut y_e = eager.alloc(0);
        let d_f = fused.spmv_dot(0, &mut y_f, &x);
        let d_e = eager.spmv_dot(0, &mut y_e, &x);
        assert_eq!(y_f.as_slice(), y_e.as_slice());
        assert_eq!(d_f.to_bits(), d_e.to_bits());

        let q = Vector::from_dense((0..512).map(|i| (i % 5) as f64).collect::<Vec<_>>());
        let n_f = fused.axpy_norm2(0, &mut y_f, -0.25, &q);
        let n_e = eager.axpy_norm2(0, &mut y_e, -0.25, &q);
        assert_eq!(y_f.as_slice(), y_e.as_slice());
        assert_eq!(n_f.to_bits(), n_e.to_bits());

        let z = Vector::from_dense((0..512).map(|i| (i % 3) as f64).collect::<Vec<_>>());
        let r = Vector::from_dense((0..512).map(|i| (i % 11) as f64 - 5.0).collect::<Vec<_>>());
        let mut f_f = fused.alloc(0);
        let mut f_e = eager.alloc(0);
        let mut rc_f = fused.alloc(1);
        let mut rc_e = eager.alloc(1);
        fused.residual_restrict(0, &mut f_f, &z, &r, &mut rc_f);
        eager.residual_restrict(0, &mut f_e, &z, &r, &mut rc_e);
        assert_eq!(f_f.as_slice(), f_e.as_slice());
        assert_eq!(rc_f.as_slice(), rc_e.as_slice());

        let mut x_f = fused.alloc(0);
        let mut x_e = eager.alloc(0);
        fused.smooth(0, &mut x_f, &r);
        eager.smooth(0, &mut x_e, &r);
        assert_eq!(x_f.as_slice(), x_e.as_slice());
    }

    #[test]
    fn vector_ops() {
        let mut k = make();
        let x = Vector::filled(512, 2.0);
        let y = Vector::filled(512, 3.0);
        let mut w = k.alloc(0);
        k.waxpby(0, &mut w, 2.0, &x, 1.0, &y);
        assert!(w.as_slice().iter().all(|&v| v == 7.0));
        k.axpy(0, &mut w, -1.0, &y);
        assert!(w.as_slice().iter().all(|&v| v == 4.0));
        k.xpay(0, &mut w, 0.5, &x);
        assert!(w.as_slice().iter().all(|&v| v == 4.0), "2 + 0.5*4 = 4");
        let d = k.dot(0, &x, &y);
        assert_eq!(d, 512.0 * 6.0);
        k.sub_reverse(0, &mut w, &x);
        assert!(w.as_slice().iter().all(|&v| v == -2.0));
    }
}
