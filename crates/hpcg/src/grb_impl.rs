//! **ALP**: HPCG on GraphBLAS (paper §IV).
//!
//! Every kernel is a GraphBLAS primitive over opaque containers:
//!
//! | HPCG kernel | GraphBLAS realization |
//! |-------------|----------------------|
//! | `spmv` | `mxv` over `(+, ×)` |
//! | `dot` / norms | `dot` over `(+, ×)` |
//! | `waxpby` | dedicated fused element-wise kernel |
//! | SGS smoother | RBGS: masked structural `mxv` + masked `eWiseLambda` per color (Listing 3) |
//! | restriction | `mxv` with the materialized `n/8 × n` matrix (§III-B) |
//! | refinement | accumulating `mxv` with the **transpose descriptor** on the same matrix — no materialized transpose (§IV) |
//!
//! The backend type parameter `B` selects sequential or shared-memory
//! parallel execution, the analogue of ALP's compile-time backend choice.

use crate::kernels::Kernels;
use crate::problem::Problem;
use crate::smoother::rbgs_grb;
use crate::timers::{Kernel, KernelTimers};
use graphblas::{ctx, Backend, Ctx, Exec, Plus, Vector};

/// The GraphBLAS-based HPCG implementation.
///
/// Generic over the execution dispatcher: `GrbHpcg<Sequential>` /
/// `GrbHpcg<Parallel>` monomorphize the kernels (ALP's compile-time
/// backend), while `GrbHpcg<BackendKind>` — built via
/// [`GrbHpcg::with_ctx`] from a [`graphblas::DynCtx`] — selects the
/// backend at runtime (`--backend seq|par`).
pub struct GrbHpcg<E: Exec> {
    problem: Problem,
    /// Per-level workspace for the RBGS `tmp` buffer (Listing 3 line 7).
    tmp: Vec<Vector<f64>>,
    timers: KernelTimers,
    /// The execution context every kernel lowers through (ALP's launcher).
    ctx: Ctx<E>,
}

impl<B: Backend> GrbHpcg<B> {
    /// Wraps a generated problem on the compile-time backend `B`.
    pub fn new(problem: Problem) -> GrbHpcg<B> {
        GrbHpcg::with_ctx(problem, ctx::<B>())
    }
}

impl<E: Exec> GrbHpcg<E> {
    /// Wraps a generated problem on an explicit execution context
    /// (including the runtime-dispatched [`graphblas::DynCtx`]).
    pub fn with_ctx(problem: Problem, ctx: Ctx<E>) -> GrbHpcg<E> {
        let tmp = problem
            .levels
            .iter()
            .map(|l| Vector::zeros(l.n()))
            .collect();
        let timers = KernelTimers::new(problem.levels.len());
        GrbHpcg {
            problem,
            tmp,
            timers,
            ctx,
        }
    }

    /// The execution context kernels run on.
    pub fn ctx(&self) -> Ctx<E> {
        self.ctx
    }

    /// The underlying problem (levels, rhs).
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// Consumes self, returning the problem.
    pub fn into_problem(self) -> Problem {
        self.problem
    }
}

impl<E: Exec> Kernels for GrbHpcg<E> {
    type V = Vector<f64>;

    fn levels(&self) -> usize {
        self.problem.levels.len()
    }

    fn n_at(&self, level: usize) -> usize {
        self.problem.levels[level].n()
    }

    fn alloc(&self, level: usize) -> Vector<f64> {
        Vector::zeros(self.problem.levels[level].n())
    }

    fn set_zero(&mut self, _level: usize, v: &mut Vector<f64>) {
        v.clear();
    }

    fn copy(&mut self, _level: usize, src: &Vector<f64>, dst: &mut Vector<f64>) {
        dst.as_mut_slice().copy_from_slice(src.as_slice());
    }

    fn spmv(&mut self, level: usize, y: &mut Vector<f64>, x: &Vector<f64>) {
        let a = &self.problem.levels[level].a;
        let exec = self.ctx;
        self.timers.time(level, Kernel::SpMV, || {
            exec.mxv(a, x)
                .into(y)
                .expect("spmv dimensions fixed at setup");
        });
    }

    fn dot(&mut self, level: usize, x: &Vector<f64>, y: &Vector<f64>) -> f64 {
        let exec = self.ctx;
        self.timers.time(level, Kernel::Dot, || {
            exec.dot(x, y)
                .compute()
                .expect("dot dimensions fixed at setup")
        })
    }

    fn waxpby(
        &mut self,
        level: usize,
        w: &mut Vector<f64>,
        alpha: f64,
        x: &Vector<f64>,
        beta: f64,
        y: &Vector<f64>,
    ) {
        let exec = self.ctx;
        self.timers.time(level, Kernel::Waxpby, || {
            exec.ewise(x, y)
                .scaled(alpha, beta)
                .into(w)
                .expect("waxpby dimensions fixed at setup");
        });
    }

    fn axpy(&mut self, level: usize, x: &mut Vector<f64>, alpha: f64, y: &Vector<f64>) {
        let exec = self.ctx;
        self.timers.time(level, Kernel::Waxpby, || {
            exec.axpy(x, alpha, y)
                .expect("axpy dimensions fixed at setup");
        });
    }

    fn xpay(&mut self, level: usize, p: &mut Vector<f64>, beta: f64, z: &Vector<f64>) {
        let zs = z.as_slice();
        let exec = self.ctx;
        self.timers.time(level, Kernel::Waxpby, || {
            exec.transform(p)
                .apply(|i, pi| {
                    *pi = zs[i] + beta * *pi;
                })
                .expect("xpay dimensions fixed at setup");
        });
    }

    fn sub_reverse(&mut self, level: usize, w: &mut Vector<f64>, r: &Vector<f64>) {
        let rs = r.as_slice();
        let exec = self.ctx;
        self.timers.time(level, Kernel::Waxpby, || {
            exec.transform(w)
                .apply(|i, wi| {
                    *wi = rs[i] - *wi;
                })
                .expect("sub dimensions fixed at setup");
        });
    }

    fn smooth(&mut self, level: usize, x: &mut Vector<f64>, r: &Vector<f64>) {
        let l = &self.problem.levels[level];
        let tmp = &mut self.tmp[level];
        let exec = self.ctx;
        self.timers.time(level, Kernel::Smoother, || {
            rbgs_grb::rbgs_symmetric(exec, &l.a, &l.a_diag, &l.color_masks, r, x, tmp)
                .expect("smoother dimensions fixed at setup");
        });
    }

    fn restrict_to(&mut self, level: usize, rc: &mut Vector<f64>, rf: &Vector<f64>) {
        let r = self.problem.levels[level]
            .restriction
            .as_ref()
            .expect("restrict_to called on a level with a coarser system");
        let exec = self.ctx;
        self.timers.time(level, Kernel::RestrictRefine, || {
            exec.mxv(r, rf)
                .into(rc)
                .expect("restriction dimensions fixed at setup");
        });
    }

    fn prolong_add(&mut self, level: usize, zf: &mut Vector<f64>, zc: &Vector<f64>) {
        let r = self.problem.levels[level]
            .restriction
            .as_ref()
            .expect("prolong_add called on a level with a coarser system");
        let exec = self.ctx;
        self.timers.time(level, Kernel::RestrictRefine, || {
            exec.mxv(r, zc)
                .transpose()
                .accum(Plus)
                .into(zf)
                .expect("refinement dimensions fixed at setup");
        });
    }

    fn timers_mut(&mut self) -> &mut KernelTimers {
        &mut self.timers
    }

    fn timers(&self) -> &KernelTimers {
        &self.timers
    }

    fn name(&self) -> &'static str {
        "ALP (GraphBLAS)"
    }

    fn backend_name(&self) -> &'static str {
        self.ctx.backend_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Grid3;
    use crate::problem::RhsVariant;
    use graphblas::Sequential;

    fn make() -> GrbHpcg<Sequential> {
        let p = Problem::build_with(Grid3::cube(8), 2, RhsVariant::Reference).unwrap();
        GrbHpcg::new(p)
    }

    #[test]
    fn kernel_shapes() {
        let mut k = make();
        assert_eq!(k.levels(), 2);
        assert_eq!(k.n_at(0), 512);
        assert_eq!(k.n_at(1), 64);
        let x = k.alloc(0);
        assert_eq!(x.len(), 512);
        let mut rc = k.alloc(1);
        let rf = Vector::filled(512, 1.0);
        k.restrict_to(0, &mut rc, &rf);
        assert!(
            rc.as_slice().iter().all(|&v| v == 1.0),
            "injection of constant is constant"
        );
    }

    #[test]
    fn prolong_add_accumulates() {
        let mut k = make();
        let zc = Vector::filled(64, 2.0);
        let mut zf = Vector::filled(512, 1.0);
        k.prolong_add(0, &mut zf, &zc);
        // Injected positions became 3, the rest stayed 1.
        let f2c = &k.problem().levels[0].f2c.clone();
        let zs = zf.as_slice();
        let mut injected = 0;
        for (i, &v) in zs.iter().enumerate() {
            if f2c.contains(&(i as u32)) {
                assert_eq!(v, 3.0);
                injected += 1;
            } else {
                assert_eq!(v, 1.0);
            }
        }
        assert_eq!(injected, 64);
    }

    #[test]
    fn timers_attribute_to_cells() {
        let mut k = make();
        let x = Vector::filled(512, 1.0);
        let mut y = k.alloc(0);
        k.spmv(0, &mut y, &x);
        let r1 = k.alloc(1);
        let mut z1 = k.alloc(1);
        k.smooth(1, &mut z1, &r1);
        assert!(k.timers().secs(0, Kernel::SpMV) > 0.0);
        assert!(k.timers().secs(1, Kernel::Smoother) > 0.0);
        assert_eq!(k.timers().secs(0, Kernel::Smoother), 0.0);
        assert_eq!(k.timers().secs(1, Kernel::SpMV), 0.0);
    }

    #[test]
    fn vector_ops() {
        let mut k = make();
        let x = Vector::filled(512, 2.0);
        let y = Vector::filled(512, 3.0);
        let mut w = k.alloc(0);
        k.waxpby(0, &mut w, 2.0, &x, 1.0, &y);
        assert!(w.as_slice().iter().all(|&v| v == 7.0));
        k.axpy(0, &mut w, -1.0, &y);
        assert!(w.as_slice().iter().all(|&v| v == 4.0));
        k.xpay(0, &mut w, 0.5, &x);
        assert!(w.as_slice().iter().all(|&v| v == 4.0), "2 + 0.5*4 = 4");
        let d = k.dot(0, &x, &y);
        assert_eq!(d, 512.0 * 6.0);
        k.sub_reverse(0, &mut w, &x);
        assert!(w.as_slice().iter().all(|&v| v == -2.0));
    }
}
