//! The HPCG benchmark on GraphBLAS — core library.
//!
//! Reproduction of *"Effective implementation of the High Performance
//! Conjugate Gradient benchmark on GraphBLAS"* (Scolari & Yzelman, IPDPS
//! 2023). The crate provides **two complete HPCG implementations** over the
//! same generated problem:
//!
//! * [`grb_impl::GrbHpcg`] — "**ALP**": every kernel is a GraphBLAS
//!   primitive on opaque containers (masked `mxv`, `eWiseLambda`,
//!   transpose-descriptor refinement), generic over the execution backend;
//! * [`ref_impl::RefHpcg`] — "**Ref**": the reference style, direct CSR
//!   array access, index-array grid transfers, rayon loops.
//!
//! Both plug into the same solver logic ([`cg`], [`mg`]) through the
//! [`kernels::Kernels`] trait, both pass the HPCG symmetry/convergence
//! validation ([`validation`]), and both run distributed on the simulated
//! BSP cluster ([`distributed`]) under their respective data distributions
//! (1D block-cyclic vs 3D geometric halo).
//!
//! # Quickstart
//!
//! ```
//! use hpcg::geometry::Grid3;
//! use hpcg::problem::Problem;
//! use hpcg::grb_impl::GrbHpcg;
//! use hpcg::driver::{run_with_rhs, flops_per_iteration, RunConfig};
//! use graphblas::Parallel;
//!
//! let problem = Problem::build_with(
//!     Grid3::cube(16), 4, hpcg::problem::RhsVariant::Reference).unwrap();
//! let flops = flops_per_iteration(&problem);
//! let b = problem.b.clone();
//! let mut alp = GrbHpcg::<Parallel>::new(problem);
//! let (report, cg) = run_with_rhs(&mut alp, &b, flops, RunConfig { iterations: 10, preconditioned: true });
//! assert!(cg.relative_residual < 1e-3);
//! println!("{} did {} iterations at {:.2} GFLOP/s", report.name, report.iterations, report.gflops);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod cg;
pub mod coloring;
pub mod distributed;
pub mod driver;
pub mod fused;
pub mod geometry;
pub mod grb_impl;
pub mod kernels;
pub mod mg;
pub mod problem;
pub mod ref_impl;
pub mod reporting;
pub mod smoother;
pub mod timers;
pub(crate) mod util;
pub mod validation;

pub use cg::{cg_solve, CgResult, CgWorkspace};
pub use driver::{bytes_per_iteration, flops_per_iteration, run_with_rhs, RunConfig, RunReport};
pub use geometry::Grid3;
pub use grb_impl::GrbHpcg;
pub use kernels::Kernels;
pub use mg::{mg_precondition, MgWorkspace};
pub use problem::{Problem, RhsVariant};
pub use ref_impl::RefHpcg;
pub use reporting::{render_report, FlopBreakdown};
pub use timers::{Kernel, KernelTimers};
pub use validation::{validate, ValidationReport};
