//! The preconditioned Conjugate Gradient solver (paper §II-C).
//!
//! Standard PCG with the MG V-cycle as preconditioner, mirroring the HPCG
//! reference's `CG()`: one `spmv`, one preconditioner application, two
//! `dot`s plus a norm, and three vector updates per iteration. The two
//! kernel pairs fusion admits — `spmv` with `⟨p, Ap⟩`, and the residual
//! `axpy` with `‖r‖²` — go through the combined [`Kernels`] entry points so
//! fused implementations (the deferred-execution pipeline) drop in without
//! changing this control flow. Like the benchmark (and the paper's
//! experiments), iteration count is fixed by the caller so runtimes are
//! directly comparable; convergence data is returned for validation.

use crate::kernels::Kernels;
use crate::mg::{mg_precondition, MgWorkspace};

/// Outcome of a CG run.
#[derive(Clone, Debug)]
pub struct CgResult {
    /// Iterations executed.
    pub iterations: usize,
    /// `‖r‖₂` after each iteration (index 0 = after the first).
    pub residual_history: Vec<f64>,
    /// Final `‖r‖₂ / ‖r⁰‖₂`.
    pub relative_residual: f64,
}

/// Scratch vectors for the CG loop, allocated once.
pub struct CgWorkspace<V> {
    r: V,
    z: V,
    p: V,
    ap: V,
}

impl<V> CgWorkspace<V> {
    /// Allocates fine-level scratch from `k`.
    pub fn new<K: Kernels<V = V>>(k: &K) -> CgWorkspace<V> {
        CgWorkspace {
            r: k.alloc(0),
            z: k.alloc(0),
            p: k.alloc(0),
            ap: k.alloc(0),
        }
    }
}

/// Runs `max_iters` of (optionally MG-preconditioned) CG on
/// `A₀·x = b`, updating `x` in place.
///
/// Stops early only if the residual reaches `tolerance` (pass `0.0` to run
/// all iterations, as the benchmark does).
#[allow(clippy::too_many_arguments)]
pub fn cg_solve<K: Kernels>(
    k: &mut K,
    cg_ws: &mut CgWorkspace<K::V>,
    mg_ws: &mut MgWorkspace<K::V>,
    b: &K::V,
    x: &mut K::V,
    max_iters: usize,
    tolerance: f64,
    preconditioned: bool,
) -> CgResult {
    // r ← b − A·x.
    k.spmv(0, &mut cg_ws.ap, x);
    k.waxpby(0, &mut cg_ws.r, 1.0, b, -1.0, &cg_ws.ap);
    let norm0 = k.dot(0, &cg_ws.r, &cg_ws.r).sqrt();
    let mut normr = norm0;
    let mut rtz = 0.0f64;
    let mut history = Vec::with_capacity(max_iters);
    let mut iterations = 0;

    for iter in 1..=max_iters {
        if preconditioned {
            mg_precondition(k, mg_ws, &cg_ws.r, &mut cg_ws.z);
        } else {
            let (z, r) = (&mut cg_ws.z, &cg_ws.r);
            k.copy(0, r, z);
        }
        let old_rtz = rtz;
        rtz = k.dot(0, &cg_ws.r, &cg_ws.z);
        if iter == 1 {
            let (p, z) = (&mut cg_ws.p, &cg_ws.z);
            k.copy(0, z, p);
        } else {
            let beta = rtz / old_rtz;
            let (p, z) = (&mut cg_ws.p, &cg_ws.z);
            k.xpay(0, p, beta, z);
        }
        // Ap = A·p and ⟨p, Ap⟩ in one logical step (fusable, paper §VI).
        let p_ap = {
            let (ap, p) = (&mut cg_ws.ap, &cg_ws.p);
            k.spmv_dot(0, ap, p)
        };
        let alpha = rtz / p_ap;
        k.axpy(0, x, alpha, &cg_ws.p);
        // r ← r − α·Ap and ‖r‖² in one logical step (fusable).
        normr = {
            let (r, ap) = (&mut cg_ws.r, &cg_ws.ap);
            k.axpy_norm2(0, r, -alpha, ap)
        }
        .sqrt();
        history.push(normr);
        iterations = iter;
        if tolerance > 0.0 && normr / norm0 <= tolerance {
            break;
        }
    }

    CgResult {
        iterations,
        residual_history: history,
        relative_residual: if norm0 > 0.0 { normr / norm0 } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Grid3;
    use crate::grb_impl::GrbHpcg;
    use crate::problem::{Problem, RhsVariant};
    use graphblas::Sequential;

    fn solve(preconditioned: bool, max_iters: usize, tol: f64) -> (CgResult, Vec<f64>) {
        let p = Problem::build_with(Grid3::cube(16), 4, RhsVariant::Reference).unwrap();
        let b = p.b.clone();
        let mut k = GrbHpcg::<Sequential>::new(p);
        let mut cg_ws = CgWorkspace::new(&k);
        let mut mg_ws = MgWorkspace::new(&k);
        let mut x = k.alloc(0);
        let res = cg_solve(
            &mut k,
            &mut cg_ws,
            &mut mg_ws,
            &b,
            &mut x,
            max_iters,
            tol,
            preconditioned,
        );
        (res, x.as_slice().to_vec())
    }

    #[test]
    fn converges_to_known_solution() {
        // Reference rhs → exact solution is all ones.
        let (res, x) = solve(true, 50, 1e-10);
        assert!(res.relative_residual <= 1e-10);
        for &v in &x {
            assert!((v - 1.0).abs() < 1e-7, "expected 1.0, got {v}");
        }
    }

    #[test]
    fn preconditioning_cuts_iterations() {
        // The whole point of MG (paper §II-D): fewer iterations to a fixed
        // tolerance than unpreconditioned CG.
        let (pcg, _) = solve(true, 200, 1e-8);
        let (plain, _) = solve(false, 200, 1e-8);
        assert!(
            pcg.iterations < plain.iterations,
            "MG-PCG took {} iters, plain CG took {}",
            pcg.iterations,
            plain.iterations
        );
    }

    #[test]
    fn residual_monotone_within_tolerance() {
        let (res, _) = solve(true, 30, 0.0);
        assert_eq!(res.iterations, 30, "tolerance 0 runs all iterations");
        // CG residuals can oscillate slightly, but the trend must be a
        // decrease of orders of magnitude.
        let first = res.residual_history[0];
        let last = *res.residual_history.last().unwrap();
        assert!(last < first * 1e-6, "first {first}, last {last}");
    }

    #[test]
    fn fixed_iteration_mode_matches_benchmark_contract() {
        let (res, _) = solve(true, 7, 0.0);
        assert_eq!(res.iterations, 7);
        assert_eq!(res.residual_history.len(), 7);
    }

    #[test]
    fn pipelined_cg_is_bit_identical_to_eager_cg() {
        // The acceptance contract of the deferred-execution subsystem: the
        // whole preconditioned solve — fused spmv+dot, fused axpy+norm,
        // pipelined MG residual/restrict and pipelined RBGS — produces the
        // exact bytes the eager path does.
        let p = Problem::build_with(Grid3::cube(16), 3, RhsVariant::Reference).unwrap();
        let b = p.b.clone();
        let run = |pipelined: bool| {
            let mut k = GrbHpcg::<Sequential>::new(p.clone());
            k.set_pipeline(pipelined);
            let mut cg_ws = CgWorkspace::new(&k);
            let mut mg_ws = MgWorkspace::new(&k);
            let mut x = k.alloc(0);
            let res = cg_solve(&mut k, &mut cg_ws, &mut mg_ws, &b, &mut x, 12, 0.0, true);
            (res, x.as_slice().to_vec())
        };
        let (res_pipe, x_pipe) = run(true);
        let (res_eager, x_eager) = run(false);
        assert_eq!(x_pipe, x_eager, "solutions must be bit-identical");
        let bits = |h: &[f64]| h.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&res_pipe.residual_history),
            bits(&res_eager.residual_history)
        );
    }
}
