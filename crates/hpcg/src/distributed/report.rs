//! Driving distributed runs and extracting the paper's metrics.

use crate::cg::{cg_solve, CgResult, CgWorkspace};
use crate::kernels::Kernels;
use crate::mg::MgWorkspace;
use crate::timers::Kernel;
use bsp::cost::CostTracker;

/// A distributed implementation: [`Kernels`] plus access to its BSP trace.
pub trait DistKernels: Kernels {
    /// The accumulated BSP cost trace.
    fn bsp_tracker(&self) -> &CostTracker;
    /// Mutable access (reset between runs).
    fn bsp_tracker_mut(&mut self) -> &mut CostTracker;
}

impl DistKernels for super::alp::AlpDistHpcg {
    fn bsp_tracker(&self) -> &CostTracker {
        self.tracker()
    }

    fn bsp_tracker_mut(&mut self) -> &mut CostTracker {
        self.tracker_mut()
    }
}

impl DistKernels for super::ref_dist::RefDistHpcg {
    fn bsp_tracker(&self) -> &CostTracker {
        self.tracker()
    }

    fn bsp_tracker_mut(&mut self) -> &mut CostTracker {
        self.tracker_mut()
    }
}

/// The outcome of a distributed benchmark run.
#[derive(Clone, Debug)]
pub struct DistReport {
    /// Implementation name.
    pub name: &'static str,
    /// Simulated nodes.
    pub nodes: usize,
    /// Fine-level unknowns.
    pub n: usize,
    /// CG iterations executed.
    pub iterations: usize,
    /// Modeled wall-clock (the y-axis of Fig 3).
    pub modeled_secs: f64,
    /// Total h-relation bytes across all supersteps.
    pub comm_bytes: f64,
    /// Number of supersteps with a barrier.
    pub supersteps: usize,
    /// Per-level `(smoother, restrict/refine)` modeled seconds — Figs 6-7.
    pub level_breakdown: Vec<(f64, f64)>,
    /// Final relative residual (validation).
    pub relative_residual: f64,
}

impl DistReport {
    /// Percentage of modeled time in the smoother at `level` (Figs 6-7 bright bars).
    pub fn smoother_percent(&self, level: usize) -> f64 {
        100.0 * self.level_breakdown[level].0 / self.modeled_secs.max(1e-300)
    }

    /// Percentage in restriction/refinement at `level` (dark bars).
    pub fn restrict_percent(&self, level: usize) -> f64 {
        100.0 * self.level_breakdown[level].1 / self.modeled_secs.max(1e-300)
    }
}

/// Runs `iterations` of preconditioned CG on a distributed implementation
/// and collects the modeled-cost report.
pub fn run_distributed<K: DistKernels>(
    k: &mut K,
    b: &K::V,
    iterations: usize,
) -> (DistReport, CgResult) {
    k.bsp_tracker_mut().reset();
    k.timers_mut().reset();
    let mut cg_ws = CgWorkspace::new(k);
    let mut mg_ws = MgWorkspace::new(k);
    let mut x = k.alloc(0);
    let cg = cg_solve(k, &mut cg_ws, &mut mg_ws, b, &mut x, iterations, 0.0, true);

    let total = k.bsp_tracker().total_secs();
    k.timers_mut().set_total_secs(total);
    let levels = (0..k.levels())
        .map(|l| {
            (
                k.timers().secs(l, Kernel::Smoother),
                k.timers().secs(l, Kernel::RestrictRefine),
            )
        })
        .collect();
    let report = DistReport {
        name: k.name(),
        nodes: k.bsp_tracker().nodes(),
        n: k.n_at(0),
        iterations: cg.iterations,
        modeled_secs: total,
        comm_bytes: k.bsp_tracker().total_h_bytes(),
        supersteps: k.bsp_tracker().superstep_count(),
        level_breakdown: levels,
        relative_residual: cg.relative_residual,
    };
    (report, cg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributed::{AlpDistHpcg, RefDistHpcg};
    use crate::geometry::Grid3;
    use crate::problem::{Problem, RhsVariant};
    use bsp::machine::MachineParams;

    fn problem() -> Problem {
        Problem::build_with(Grid3::cube(16), 3, RhsVariant::Reference).unwrap()
    }

    #[test]
    fn both_variants_converge_identically_to_shared_memory() {
        use crate::grb_impl::GrbHpcg;
        use graphblas::Sequential;
        let prob = problem();
        let b_vec = prob.b.as_slice().to_vec();
        let b_grb = prob.b.clone();

        let mut alp = AlpDistHpcg::new(prob.clone(), 4, MachineParams::arm_cluster());
        let (_, cg_alp) = run_distributed(&mut alp, &b_grb, 8);

        let mut rd = RefDistHpcg::new(prob.clone(), 8, MachineParams::arm_cluster());
        let (_, cg_ref) = run_distributed(&mut rd, &b_vec, 8);

        let mut shared = GrbHpcg::<Sequential>::new(prob);
        let mut cg_ws = crate::cg::CgWorkspace::new(&shared);
        let mut mg_ws = crate::mg::MgWorkspace::new(&shared);
        let mut x = shared.alloc(0);
        let cg_sm = crate::cg::cg_solve(
            &mut shared,
            &mut cg_ws,
            &mut mg_ws,
            &b_grb,
            &mut x,
            8,
            0.0,
            true,
        );

        for ((a, r), s) in cg_alp
            .residual_history
            .iter()
            .zip(&cg_ref.residual_history)
            .zip(&cg_sm.residual_history)
        {
            assert!(((a - s) / s).abs() < 1e-9, "ALP-dist vs shared: {a} vs {s}");
            assert!(((r - s) / s).abs() < 1e-9, "Ref-dist vs shared: {r} vs {s}");
        }
    }

    #[test]
    fn alp_communicates_far_more_than_ref() {
        let prob = problem();
        let b_vec = prob.b.as_slice().to_vec();
        let b_grb = prob.b.clone();
        let mut alp = AlpDistHpcg::new(prob.clone(), 8, MachineParams::arm_cluster());
        let (ra, _) = run_distributed(&mut alp, &b_grb, 3);
        let mut rd = RefDistHpcg::new(prob, 8, MachineParams::arm_cluster());
        let (rr, _) = run_distributed(&mut rd, &b_vec, 3);
        assert!(
            ra.comm_bytes > 5.0 * rr.comm_bytes,
            "Table I separation: ALP {} vs Ref {} bytes",
            ra.comm_bytes,
            rr.comm_bytes
        );
    }

    #[test]
    fn reports_have_consistent_breakdowns() {
        let prob = problem();
        let b = prob.b.clone();
        let mut alp = AlpDistHpcg::new(prob, 4, MachineParams::arm_cluster());
        let (r, cg) = run_distributed(&mut alp, &b, 3);
        assert_eq!(r.iterations, 3);
        assert_eq!(cg.iterations, 3);
        assert!(r.modeled_secs > 0.0);
        assert!(r.supersteps > 0);
        let smoother_total: f64 = (0..3).map(|l| r.smoother_percent(l)).sum();
        assert!(
            smoother_total > 30.0,
            "smoother dominates: {smoother_total}%"
        );
        assert!(smoother_total <= 100.0);
    }

    #[test]
    fn rerun_resets_state() {
        let prob = problem();
        let b = prob.b.clone();
        let mut alp = AlpDistHpcg::new(prob, 4, MachineParams::arm_cluster());
        let (r1, _) = run_distributed(&mut alp, &b, 2);
        let (r2, _) = run_distributed(&mut alp, &b, 2);
        assert!((r1.modeled_secs - r2.modeled_secs).abs() < 1e-12);
        assert_eq!(r1.supersteps, r2.supersteps);
    }
}
