//! Distributed Ref: HPCG over the 3D geometric distribution.
//!
//! The configuration whose weak scaling stays flat in Fig 3. The physical
//! grid splits into `px×py×pz` boxes (the optimal factorization of §II-G);
//! before an spmv each node exchanges only its 2D halo —
//! `Θ(∛(n²/p²))` elements — with its ≤26 geometric neighbors. Inside
//! RBGS, each color step exchanges only that color's slice of the halo,
//! overlapping communication with computation via `MPI_Irecv/Isend`
//! semantics (`max(compute, comm)`, paper §IV). Restriction and refinement
//! are **fully local**: successive levels share the process grid, so the
//! injection source of every owned coarse point is also owned.

use super::{spmv_bytes, stream_bytes, LevelPartition, F64};
use crate::kernels::Kernels;
use crate::problem::Problem;
use crate::smoother::rbgs_ref;
use crate::timers::{Kernel, KernelTimers};
use crate::util::SyncSlice;
use bsp::cost::{CostTracker, KernelClass};
use bsp::dist::{Distribution, Geometric3D};
use bsp::factor::factor3d;
use bsp::halo::halo_by_neighbor;
use bsp::machine::MachineParams;

/// Per-level halo metadata: for each node, its neighbors and how many halo
/// points (total and per color) it receives from each.
#[derive(Clone, Debug)]
struct HaloInfo {
    /// `per_node[node] = [(neighbor, total_points, per_color_points)]`.
    per_node: Vec<Vec<(usize, usize, Vec<usize>)>>,
}

/// Distributed-Ref HPCG: executes the direct-access kernels and accounts
/// BSP costs under the 3D geometric distribution.
pub struct RefDistHpcg {
    problem: Problem,
    dists: Vec<Geometric3D>,
    parts: Vec<LevelPartition>,
    halos: Vec<HaloInfo>,
    tracker: CostTracker,
    timers: KernelTimers,
}

impl RefDistHpcg {
    /// Builds the distributed context for `nodes` simulated nodes.
    ///
    /// Panics (like the HPCG reference setup) if the optimal process grid
    /// does not divide every level's point grid.
    pub fn new(problem: Problem, nodes: usize, machine: MachineParams) -> RefDistHpcg {
        let g0 = problem.levels[0].grid;
        let (px, py, pz) = factor3d(nodes, g0.nx, g0.ny, g0.nz);
        let dists: Vec<Geometric3D> = problem
            .levels
            .iter()
            .map(|l| Geometric3D::with_process_grid(l.grid.nx, l.grid.ny, l.grid.nz, px, py, pz))
            .collect();
        let parts = problem
            .levels
            .iter()
            .zip(&dists)
            .map(|(l, d)| LevelPartition::new(l, d))
            .collect();
        let halos = problem
            .levels
            .iter()
            .zip(&dists)
            .map(|(l, d)| {
                let ncolors = l.coloring.num_colors;
                let per_node = (0..d.nodes())
                    .map(|node| {
                        halo_by_neighbor(d, node)
                            .into_iter()
                            .map(|(nbr, idx)| {
                                let mut per_color = vec![0usize; ncolors];
                                for &g in &idx {
                                    per_color[l.coloring.color[g] as usize] += 1;
                                }
                                (nbr, idx.len(), per_color)
                            })
                            .collect()
                    })
                    .collect();
                HaloInfo { per_node }
            })
            .collect();
        let timers = KernelTimers::new(problem.levels.len());
        RefDistHpcg {
            problem,
            dists,
            parts,
            halos,
            tracker: CostTracker::new(nodes, machine),
            timers,
        }
    }

    /// The BSP cost trace accumulated so far.
    pub fn tracker(&self) -> &CostTracker {
        &self.tracker
    }

    /// Mutable tracker access (reset between runs).
    pub fn tracker_mut(&mut self) -> &mut CostTracker {
        &mut self.tracker
    }

    /// The underlying problem.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// The process grid in use.
    pub fn process_grid(&self) -> (usize, usize, usize) {
        let d = &self.dists[0];
        (d.px, d.py, d.pz)
    }

    /// Records a full halo exchange at `level` (each node receives its
    /// whole halo from the owning neighbors).
    fn record_halo_exchange(&mut self, level: usize) {
        let per_node = &self.halos[level].per_node;
        for (node, nbrs) in per_node.iter().enumerate() {
            for &(nbr, count, _) in nbrs {
                self.tracker.record_send(nbr, node, count as f64 * F64);
            }
        }
    }

    /// Records a single-color halo exchange at `level`.
    fn record_halo_exchange_color(&mut self, level: usize, color: usize) {
        let per_node = &self.halos[level].per_node;
        for (node, nbrs) in per_node.iter().enumerate() {
            for (nbr, _, per_color) in nbrs {
                let count = per_color[color];
                if count > 0 {
                    self.tracker.record_send(*nbr, node, count as f64 * F64);
                }
            }
        }
    }

    fn record_stream(&mut self, level: usize, k: usize, flops_per_elem: f64) {
        let p = self.tracker.nodes();
        for node in 0..p {
            let n = self.parts[level].local_n[node];
            self.tracker
                .record_compute(node, flops_per_elem * n as f64, stream_bytes(k, n));
        }
    }

    fn charge(&mut self, level: usize, kernel: Kernel, secs: f64) {
        self.timers.add_secs(level, kernel, secs);
    }
}

fn spmv_rows_seq(a: &graphblas::CsrMatrix<f64>, x: &[f64], y: &mut [f64]) {
    for (i, slot) in y.iter_mut().enumerate().take(a.nrows()) {
        let (cols, vals) = a.row(i);
        let mut acc = 0.0;
        for (&c, &v) in cols.iter().zip(vals) {
            acc += v * x[c as usize];
        }
        *slot = acc;
    }
}

impl Kernels for RefDistHpcg {
    type V = Vec<f64>;

    fn levels(&self) -> usize {
        self.problem.levels.len()
    }

    fn n_at(&self, level: usize) -> usize {
        self.problem.levels[level].n()
    }

    fn alloc(&self, level: usize) -> Vec<f64> {
        vec![0.0; self.problem.levels[level].n()]
    }

    fn set_zero(&mut self, level: usize, v: &mut Vec<f64>) {
        v.iter_mut().for_each(|x| *x = 0.0);
        self.record_stream(level, 1, 0.0);
        let c = self
            .tracker
            .end_local_step(KernelClass::Waxpby, Some(level));
        self.charge(level, Kernel::Waxpby, c.total_secs());
    }

    fn copy(&mut self, level: usize, src: &Vec<f64>, dst: &mut Vec<f64>) {
        dst.copy_from_slice(src);
        self.record_stream(level, 2, 0.0);
        let c = self
            .tracker
            .end_local_step(KernelClass::Waxpby, Some(level));
        self.charge(level, Kernel::Waxpby, c.total_secs());
    }

    fn spmv(&mut self, level: usize, y: &mut Vec<f64>, x: &Vec<f64>) {
        let a = &self.problem.levels[level].a;
        spmv_rows_seq(a, x, y);
        self.record_halo_exchange(level);
        let p = self.tracker.nodes();
        for node in 0..p {
            let nnz = self.parts[level].local_nnz[node];
            let rows = self.parts[level].local_n[node];
            self.tracker
                .record_compute(node, 2.0 * nnz as f64, spmv_bytes(nnz, rows));
        }
        // Irecv/Isend overlap (paper §IV).
        let c = self
            .tracker
            .end_superstep(KernelClass::SpMV, Some(level), true);
        self.charge(level, Kernel::SpMV, c.total_secs());
    }

    fn dot(&mut self, level: usize, x: &Vec<f64>, y: &Vec<f64>) -> f64 {
        let v: f64 = x.iter().zip(y).map(|(&a, &b)| a * b).sum();
        self.record_stream(level, 2, 2.0);
        let p = self.tracker.nodes();
        for from in 0..p {
            self.tracker.record_send_all(from, F64);
        }
        let c = self
            .tracker
            .end_superstep(KernelClass::Dot, Some(level), false);
        self.charge(level, Kernel::Dot, c.total_secs());
        v
    }

    fn waxpby(
        &mut self,
        level: usize,
        w: &mut Vec<f64>,
        alpha: f64,
        x: &Vec<f64>,
        beta: f64,
        y: &Vec<f64>,
    ) {
        for i in 0..w.len() {
            w[i] = alpha * x[i] + beta * y[i];
        }
        self.record_stream(level, 3, 3.0);
        let c = self
            .tracker
            .end_local_step(KernelClass::Waxpby, Some(level));
        self.charge(level, Kernel::Waxpby, c.total_secs());
    }

    fn axpy(&mut self, level: usize, x: &mut Vec<f64>, alpha: f64, y: &Vec<f64>) {
        for i in 0..x.len() {
            x[i] += alpha * y[i];
        }
        self.record_stream(level, 3, 2.0);
        let c = self
            .tracker
            .end_local_step(KernelClass::Waxpby, Some(level));
        self.charge(level, Kernel::Waxpby, c.total_secs());
    }

    fn xpay(&mut self, level: usize, p: &mut Vec<f64>, beta: f64, z: &Vec<f64>) {
        for i in 0..p.len() {
            p[i] = z[i] + beta * p[i];
        }
        self.record_stream(level, 3, 2.0);
        let c = self
            .tracker
            .end_local_step(KernelClass::Waxpby, Some(level));
        self.charge(level, Kernel::Waxpby, c.total_secs());
    }

    fn sub_reverse(&mut self, level: usize, w: &mut Vec<f64>, r: &Vec<f64>) {
        for i in 0..w.len() {
            w[i] = r[i] - w[i];
        }
        self.record_stream(level, 3, 1.0);
        let c = self
            .tracker
            .end_local_step(KernelClass::Waxpby, Some(level));
        self.charge(level, Kernel::Waxpby, c.total_secs());
    }

    fn smooth(&mut self, level: usize, x: &mut Vec<f64>, r: &Vec<f64>) {
        // Execute the reference RBGS once (same schedule as distributed).
        {
            let l = &self.problem.levels[level];
            rbgs_ref::rbgs_symmetric(&l.a, l.a_diag.as_slice(), &l.color_classes, r, x);
        }
        // Account: one full halo refresh at sweep start, then one
        // color-sliced exchange per color step, compute overlapped with
        // communication per §IV (color-aware Irecv/Isend).
        let ncolors = self.problem.levels[level].coloring.num_colors;
        let p = self.tracker.nodes();
        let mut secs = 0.0;
        self.record_halo_exchange(level);
        let c = self
            .tracker
            .end_superstep(KernelClass::Smoother, Some(level), true);
        secs += c.total_secs();
        for sweep in 0..2 {
            for step in 0..ncolors {
                let color = if sweep == 0 { step } else { ncolors - 1 - step };
                self.record_halo_exchange_color(level, color);
                for node in 0..p {
                    let nnz = self.parts[level].nnz_by_color[node][color];
                    let rows = self.parts[level].rows_by_color[node][color];
                    self.tracker.record_compute(
                        node,
                        2.0 * nnz as f64 + 5.0 * rows as f64,
                        spmv_bytes(nnz, rows) + stream_bytes(2, rows),
                    );
                }
                let c = self
                    .tracker
                    .end_superstep(KernelClass::Smoother, Some(level), true);
                secs += c.total_secs();
            }
        }
        self.charge(level, Kernel::Smoother, secs);
    }

    fn restrict_to(&mut self, level: usize, rc: &mut Vec<f64>, rf: &Vec<f64>) {
        let f2c = &self.problem.levels[level].f2c;
        for (i, slot) in rc.iter_mut().enumerate() {
            *slot = rf[f2c[i] as usize];
        }
        // Aligned process grids make this purely local (§II-F): gathers
        // from the node's own box, no messages, no barrier.
        let p = self.tracker.nodes();
        for node in 0..p {
            let rows = self.parts[level + 1].local_n[node];
            self.tracker
                .record_compute(node, rows as f64, stream_bytes(2, rows));
        }
        let c = self
            .tracker
            .end_local_step(KernelClass::RestrictRefine, Some(level));
        self.charge(level, Kernel::RestrictRefine, c.total_secs());
    }

    fn prolong_add(&mut self, level: usize, zf: &mut Vec<f64>, zc: &Vec<f64>) {
        let f2c = &self.problem.levels[level].f2c;
        let zs = SyncSlice::new(zf.as_mut_slice());
        for (i, &zci) in zc.iter().enumerate() {
            let fi = f2c[i] as usize;
            // SAFETY: sequential loop, strictly increasing targets.
            unsafe { zs.write(fi, zs.read(fi) + zci) };
        }
        let p = self.tracker.nodes();
        for node in 0..p {
            let rows = self.parts[level + 1].local_n[node];
            self.tracker
                .record_compute(node, rows as f64, stream_bytes(3, rows));
        }
        let c = self
            .tracker
            .end_local_step(KernelClass::RestrictRefine, Some(level));
        self.charge(level, Kernel::RestrictRefine, c.total_secs());
    }

    fn timers_mut(&mut self) -> &mut KernelTimers {
        &mut self.timers
    }

    fn timers(&self) -> &KernelTimers {
        &self.timers
    }

    fn name(&self) -> &'static str {
        "Ref distributed (3D geometric)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Grid3;
    use crate::problem::{Problem, RhsVariant};

    fn make(nodes: usize) -> RefDistHpcg {
        // 16³ grid, 2 levels; nodes must divide the grid.
        let p = Problem::build_with(Grid3::cube(16), 2, RhsVariant::Reference).unwrap();
        RefDistHpcg::new(p, nodes, MachineParams::arm_cluster())
    }

    #[test]
    fn spmv_exchanges_only_halos() {
        let mut k = make(8); // 2x2x2 grid of 8³ boxes
        let x = vec![1.0; 4096];
        let mut y = k.alloc(0);
        k.spmv(0, &mut y, &x);
        let s = k.tracker().steps()[0];
        assert!(s.overlap, "Ref overlaps compute and communication");
        // Halo of an 8³ box with 3 inner faces + edges + corner:
        // 3·64 + 3·8 + 1 = 217 points → far below n/p = 512.
        assert_eq!(s.h_bytes, 217.0 * 8.0);
    }

    #[test]
    fn halo_color_slices_sum_to_full_halo() {
        let k = make(8);
        for nbrs in &k.halos[0].per_node {
            for (_, total, per_color) in nbrs {
                assert_eq!(per_color.iter().sum::<usize>(), *total);
            }
        }
    }

    #[test]
    fn grid_transfers_are_local() {
        let mut k = make(8);
        let rf = vec![1.0; 4096];
        let mut rc = k.alloc(1);
        k.restrict_to(0, &mut rc, &rf);
        let mut zf = vec![0.0; 4096];
        k.prolong_add(0, &mut zf, &rc);
        for s in k.tracker().steps() {
            assert_eq!(s.h_bytes, 0.0, "no communication in Ref grid transfers");
            assert_eq!(s.sync_secs, 0.0, "no barrier either");
        }
    }

    #[test]
    fn coarse_point_sources_are_node_local() {
        // The alignment property that makes restriction local: the fine
        // source of every owned coarse point is owned by the same node.
        let k = make(8);
        let f2c = &k.problem().levels[0].f2c;
        let fine_d = &k.dists[0];
        let coarse_d = &k.dists[1];
        for (c, &f) in f2c.iter().enumerate() {
            assert_eq!(coarse_d.owner(c), fine_d.owner(f as usize));
        }
    }

    #[test]
    fn ref_halo_much_smaller_than_alp_allgather() {
        // The Table I separation at the heart of Fig 3.
        let k = make(8);
        let n = 4096.0;
        let p = 8.0;
        let alp_h = (p - 1.0) * (n / p) * 8.0;
        let ref_h = k.halos[0].per_node[0]
            .iter()
            .map(|(_, c, _)| *c as f64 * 8.0)
            .sum::<f64>();
        assert!(ref_h * 4.0 < alp_h, "halo {ref_h} vs allgather {alp_h}");
    }
}
