//! Distributed HPCG on the simulated BSP cluster (paper §II-G, §IV, §V-B).
//!
//! Two distributed designs, one per implementation:
//!
//! * [`alp::AlpDistHpcg`] — ALP's hybrid backend: **1D block-cyclic** rows
//!   and vector entries. Opaque containers hide the problem geometry, so
//!   before *every* `mxv` (including each RBGS color step and each grid
//!   transfer) all nodes must receive the full input vector — the
//!   `Θ(n(p−1)/p)` allgather of Table I. GraphBLAS semantics are blocking:
//!   no compute/communication overlap. Since the generic distributed
//!   backend landed this is literally [`crate::grb_impl::GrbHpcg`] on a
//!   `Ctx<graphblas::Distributed>`: the allgather/allreduce recording
//!   lives in the backend, and this type only scopes each superstep to
//!   its multigrid level and kernel class.
//! * [`ref_dist::RefDistHpcg`] — the reference design: **3D geometric**
//!   boxes with 2D halo exchange, `Θ(∛(n²/p²))` per `mxv`, color-sliced
//!   halo messages inside RBGS, `MPI_Irecv/Isend`-style overlap
//!   (`max(compute, comm)` per step), and fully *local* restriction /
//!   refinement (the process grids of successive levels are aligned).
//!
//! # Execution model
//!
//! Kernels execute **once on global state** — the color schedule makes the
//! distributed algorithm's numerics identical to the shared-memory
//! schedule, so per-node re-execution would reproduce the same values —
//! while costs are recorded **per node** from the distribution's exact
//! owner/halo sets (not closed-form estimates): per-node flops and touched
//! bytes feed the roofline, per-message byte counts feed the h-relation,
//! and every exchange closes a BSP superstep. Modeled wall-clock follows
//! `Σ max_i(w_i) + g·max_i(h_i) + l` (Table I). The `table1_bsp_costs`
//! harness cross-checks recorded volumes against the paper's closed forms.
//!
//! Both types implement [`crate::Kernels`], so the *same* generic CG/MG
//! drives them; convergence results are asserted (in tests) to match the
//! shared-memory implementations.

pub mod alp;
pub mod ref_dist;
pub mod report;

pub use alp::{AlpDistHpcg, AlpLayout};
pub use ref_dist::RefDistHpcg;
pub use report::{run_distributed, DistReport};

use crate::problem::MgLevel;
use bsp::dist::Distribution;

/// Per-level, per-node partition metadata the Ref-design cost recorder
/// indexes (the ALP design now gets its partitions from the generic
/// backend's [`graphblas::ShardLayout`]).
#[derive(Clone, Debug)]
pub(crate) struct LevelPartition {
    /// Unknowns owned by each node.
    pub local_n: Vec<usize>,
    /// Stored nonzeroes in each node's owned rows.
    pub local_nnz: Vec<usize>,
    /// Per node, per color: owned rows of that color.
    pub rows_by_color: Vec<Vec<usize>>,
    /// Per node, per color: nonzeroes in owned rows of that color.
    pub nnz_by_color: Vec<Vec<usize>>,
}

impl LevelPartition {
    /// Computes the partition of `level` under `dist`.
    pub(crate) fn new<D: Distribution>(level: &MgLevel, dist: &D) -> LevelPartition {
        let p = dist.nodes();
        let ncolors = level.coloring.num_colors;
        let mut local_n = vec![0usize; p];
        let mut local_nnz = vec![0usize; p];
        let mut rows_by_color = vec![vec![0usize; ncolors]; p];
        let mut nnz_by_color = vec![vec![0usize; ncolors]; p];
        for g in 0..level.n() {
            let node = dist.owner(g);
            let color = level.coloring.color[g] as usize;
            let nnz = level.a.row_nnz(g);
            local_n[node] += 1;
            local_nnz[node] += nnz;
            rows_by_color[node][color] += 1;
            nnz_by_color[node][color] += nnz;
        }
        LevelPartition {
            local_n,
            local_nnz,
            rows_by_color,
            nnz_by_color,
        }
    }
}

/// Bytes of one `f64`.
pub(crate) const F64: f64 = 8.0;

// One roofline price list for every distributed cost model: the Ref-design
// simulator below uses the exact helpers the generic backend records with,
// so the ALP-vs-Ref comparison can never drift apples-to-oranges.
pub(crate) use graphblas::backend::dist::cost::{spmv_bytes, stream_bytes};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Grid3;
    use crate::problem::{Problem, RhsVariant};
    use bsp::dist::{BlockCyclic1D, Geometric3D};

    #[test]
    fn partition_sums_match_level_totals() {
        let p = Problem::build_with(Grid3::cube(8), 2, RhsVariant::Reference).unwrap();
        let l = &p.levels[0];
        for nodes in [1usize, 2, 4] {
            let d = BlockCyclic1D::new(l.n(), nodes, 32);
            let part = LevelPartition::new(l, &d);
            assert_eq!(part.local_n.iter().sum::<usize>(), l.n());
            assert_eq!(part.local_nnz.iter().sum::<usize>(), l.a.nnz());
            for node in 0..nodes {
                assert_eq!(
                    part.rows_by_color[node].iter().sum::<usize>(),
                    part.local_n[node]
                );
                assert_eq!(
                    part.nnz_by_color[node].iter().sum::<usize>(),
                    part.local_nnz[node]
                );
            }
        }
    }

    #[test]
    fn geometric_partition_balances_colors() {
        let p = Problem::build_with(Grid3::cube(8), 1, RhsVariant::Reference).unwrap();
        let l = &p.levels[0];
        let d = Geometric3D::new(8, 8, 8, 8);
        let part = LevelPartition::new(l, &d);
        // Each 4³ box contains 8 colors × 8 points each.
        for node in 0..8 {
            assert_eq!(part.local_n[node], 64);
            for c in 0..8 {
                assert_eq!(part.rows_by_color[node][c], 8);
            }
        }
    }
}
