//! Distributed ALP: HPCG over the 1D block-cyclic GraphBLAS backend.
//!
//! This is the configuration whose weak scaling Fig 3 shows degrading
//! linearly: the hybrid ALP/GraphBLAS backend distributes matrix rows and
//! vectors block-cyclically over a 1D node grid and, lacking any geometric
//! knowledge (containers are opaque), must allgather the *entire* input
//! vector before every `mxv` — one superstep of `h = (p−1)·n/p` elements
//! per spmv, per RBGS color step, per restriction, per refinement.
//! Blocking GraphBLAS semantics mean no compute/communication overlap
//! (paper §IV).

use super::{spmv_bytes, stream_bytes, LevelPartition, F64};
use crate::kernels::Kernels;
use crate::problem::Problem;
use crate::smoother::rbgs_grb;
use crate::timers::{Kernel, KernelTimers};
use bsp::cost::{CostTracker, KernelClass};
use bsp::dist::BlockCyclic1D;
use bsp::machine::MachineParams;
use graphblas::{ctx, Ctx, Plus, Sequential, Vector};

/// Block size of the block-cyclic distribution (ALP default-like). Small
/// enough that even the coarsest multigrid level spreads across all nodes.
const BLOCK: usize = 64;

/// Which matrix/vector layout the (hypothetical) ALP distributed backend
/// uses. [`AlpLayout::Cyclic1D`] is the paper's actual hybrid backend;
/// [`AlpLayout::Block2D`] is the §VII-B(ii) proposal — provided so the
/// weak-scaling harness can show how far it closes the gap to Ref.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AlpLayout {
    /// 1D block-cyclic rows: full-vector allgather before every mxv.
    Cyclic1D,
    /// 2D `pr×pc` blocks: expand along process columns + fold along rows,
    /// `(pr−1+pc−1)·n/p` elements per node instead of `(p−1)·n/p`.
    Block2D {
        /// Process-grid rows.
        pr: usize,
        /// Process-grid columns.
        pc: usize,
    },
}

/// Distributed-ALP HPCG: executes the GraphBLAS kernels and accounts BSP
/// costs under the 1D block-cyclic distribution.
pub struct AlpDistHpcg {
    problem: Problem,
    layout: AlpLayout,
    parts: Vec<LevelPartition>,
    tmp: Vec<Vector<f64>>,
    tracker: CostTracker,
    timers: KernelTimers,
}

impl AlpDistHpcg {
    /// Builds the distributed context for `nodes` simulated nodes with the
    /// paper's 1D block-cyclic layout.
    pub fn new(problem: Problem, nodes: usize, machine: MachineParams) -> AlpDistHpcg {
        Self::with_layout(problem, nodes, machine, AlpLayout::Cyclic1D)
    }

    /// Builds with the §VII-B(ii) 2D block layout (most-square `pr×pc`
    /// factorization of `nodes`).
    pub fn new_2d(problem: Problem, nodes: usize, machine: MachineParams) -> AlpDistHpcg {
        let (pr, pc) = bsp::factor2d(nodes);
        Self::with_layout(problem, nodes, machine, AlpLayout::Block2D { pr, pc })
    }

    /// Builds with an explicit layout.
    pub fn with_layout(
        problem: Problem,
        nodes: usize,
        machine: MachineParams,
        layout: AlpLayout,
    ) -> AlpDistHpcg {
        let dists: Vec<BlockCyclic1D> = problem
            .levels
            .iter()
            .map(|l| BlockCyclic1D::new(l.n(), nodes, BLOCK))
            .collect();
        let parts = problem
            .levels
            .iter()
            .zip(&dists)
            .map(|(l, d)| LevelPartition::new(l, d))
            .collect();
        let tmp = problem
            .levels
            .iter()
            .map(|l| Vector::zeros(l.n()))
            .collect();
        let timers = KernelTimers::new(problem.levels.len());
        AlpDistHpcg {
            problem,
            layout,
            parts,
            tmp,
            tracker: CostTracker::new(nodes, machine),
            timers,
        }
    }

    /// The layout in use.
    pub fn layout(&self) -> AlpLayout {
        self.layout
    }

    /// The BSP cost trace accumulated so far.
    pub fn tracker(&self) -> &CostTracker {
        &self.tracker
    }

    /// Mutable tracker access (reset between runs).
    pub fn tracker_mut(&mut self) -> &mut CostTracker {
        &mut self.tracker
    }

    /// The underlying problem.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// The execution context node-local kernels run on. The simulated
    /// distributed backend executes its per-node work sequentially — the
    /// parallelism being modeled lives across nodes, not threads.
    fn exec() -> Ctx<Sequential> {
        ctx::<Sequential>()
    }

    /// Records the pre-`mxv` vector exchange at `level`. Under the 1D
    /// layout this is a full allgather (every node sends its part to all
    /// peers); under the 2D layout each node exchanges only with its
    /// process row and column — `(pr−1 + pc−1)` peers instead of `p−1`.
    fn record_allgather(&mut self, level: usize) {
        let p = self.tracker.nodes();
        match self.layout {
            AlpLayout::Cyclic1D => {
                for from in 0..p {
                    let bytes = self.parts[level].local_n[from] as f64 * F64;
                    self.tracker.record_send_all(from, bytes);
                }
            }
            AlpLayout::Block2D { pr, pc } => {
                for from in 0..p {
                    let bytes = self.parts[level].local_n[from] as f64 * F64;
                    let (r, c) = (from / pc, from % pc);
                    // Expand along the process column, fold along the row.
                    for c2 in 0..pc {
                        if c2 != c {
                            self.tracker.record_send(from, r * pc + c2, bytes);
                        }
                    }
                    for r2 in 0..pr {
                        if r2 != r {
                            self.tracker.record_send(from, r2 * pc + c, bytes);
                        }
                    }
                }
            }
        }
    }

    /// Records per-node spmv work over the full matrix at `level`.
    fn record_spmv_work(&mut self, level: usize) {
        let p = self.tracker.nodes();
        for node in 0..p {
            let nnz = self.parts[level].local_nnz[node];
            let rows = self.parts[level].local_n[node];
            self.tracker
                .record_compute(node, 2.0 * nnz as f64, spmv_bytes(nnz, rows));
        }
    }

    /// Records per-node streaming vector work at `level` (k vectors touched,
    /// `flops_per_elem` flops per element).
    fn record_stream(&mut self, level: usize, k: usize, flops_per_elem: f64) {
        let p = self.tracker.nodes();
        for node in 0..p {
            let n = self.parts[level].local_n[node];
            self.tracker
                .record_compute(node, flops_per_elem * n as f64, stream_bytes(k, n));
        }
    }

    fn charge(&mut self, level: usize, kernel: Kernel, secs: f64) {
        self.timers.add_secs(level, kernel, secs);
    }
}

impl Kernels for AlpDistHpcg {
    type V = Vector<f64>;

    fn levels(&self) -> usize {
        self.problem.levels.len()
    }

    fn n_at(&self, level: usize) -> usize {
        self.problem.levels[level].n()
    }

    fn alloc(&self, level: usize) -> Vector<f64> {
        Vector::zeros(self.problem.levels[level].n())
    }

    fn set_zero(&mut self, level: usize, v: &mut Vector<f64>) {
        v.clear();
        self.record_stream(level, 1, 0.0);
        let c = self
            .tracker
            .end_local_step(KernelClass::Waxpby, Some(level));
        self.charge(level, Kernel::Waxpby, c.total_secs());
    }

    fn copy(&mut self, level: usize, src: &Vector<f64>, dst: &mut Vector<f64>) {
        dst.as_mut_slice().copy_from_slice(src.as_slice());
        self.record_stream(level, 2, 0.0);
        let c = self
            .tracker
            .end_local_step(KernelClass::Waxpby, Some(level));
        self.charge(level, Kernel::Waxpby, c.total_secs());
    }

    fn spmv(&mut self, level: usize, y: &mut Vector<f64>, x: &Vector<f64>) {
        let a = &self.problem.levels[level].a;
        Self::exec()
            .mxv(a, x)
            .into(y)
            .expect("spmv dimensions fixed at setup");
        self.record_allgather(level);
        self.record_spmv_work(level);
        let c = self
            .tracker
            .end_superstep(KernelClass::SpMV, Some(level), false);
        self.charge(level, Kernel::SpMV, c.total_secs());
    }

    fn dot(&mut self, level: usize, x: &Vector<f64>, y: &Vector<f64>) -> f64 {
        let v = Self::exec()
            .dot(x, y)
            .compute()
            .expect("dot dimensions fixed at setup");
        self.record_stream(level, 2, 2.0);
        let p = self.tracker.nodes();
        for from in 0..p {
            self.tracker.record_send_all(from, F64);
        }
        let c = self
            .tracker
            .end_superstep(KernelClass::Dot, Some(level), false);
        self.charge(level, Kernel::Dot, c.total_secs());
        v
    }

    fn waxpby(
        &mut self,
        level: usize,
        w: &mut Vector<f64>,
        alpha: f64,
        x: &Vector<f64>,
        beta: f64,
        y: &Vector<f64>,
    ) {
        Self::exec()
            .ewise(x, y)
            .scaled(alpha, beta)
            .into(w)
            .expect("waxpby dimensions fixed at setup");
        self.record_stream(level, 3, 3.0);
        let c = self
            .tracker
            .end_local_step(KernelClass::Waxpby, Some(level));
        self.charge(level, Kernel::Waxpby, c.total_secs());
    }

    fn axpy(&mut self, level: usize, x: &mut Vector<f64>, alpha: f64, y: &Vector<f64>) {
        Self::exec()
            .axpy(x, alpha, y)
            .expect("axpy dimensions fixed at setup");
        self.record_stream(level, 3, 2.0);
        let c = self
            .tracker
            .end_local_step(KernelClass::Waxpby, Some(level));
        self.charge(level, Kernel::Waxpby, c.total_secs());
    }

    fn xpay(&mut self, level: usize, p: &mut Vector<f64>, beta: f64, z: &Vector<f64>) {
        let zs = z.as_slice();
        Self::exec()
            .transform(p)
            .apply(|i, pi| {
                *pi = zs[i] + beta * *pi;
            })
            .expect("xpay dimensions fixed at setup");
        self.record_stream(level, 3, 2.0);
        let c = self
            .tracker
            .end_local_step(KernelClass::Waxpby, Some(level));
        self.charge(level, Kernel::Waxpby, c.total_secs());
    }

    fn sub_reverse(&mut self, level: usize, w: &mut Vector<f64>, r: &Vector<f64>) {
        let rs = r.as_slice();
        Self::exec()
            .transform(w)
            .apply(|i, wi| {
                *wi = rs[i] - *wi;
            })
            .expect("sub dimensions fixed at setup");
        self.record_stream(level, 3, 1.0);
        let c = self
            .tracker
            .end_local_step(KernelClass::Waxpby, Some(level));
        self.charge(level, Kernel::Waxpby, c.total_secs());
    }

    fn smooth(&mut self, level: usize, x: &mut Vector<f64>, r: &Vector<f64>) {
        // Execute the exact GraphBLAS smoother once.
        {
            let l = &self.problem.levels[level];
            let tmp = &mut self.tmp[level];
            rbgs_grb::rbgs_symmetric(Self::exec(), &l.a, &l.a_diag, &l.color_masks, r, x, tmp)
                .expect("smoother dimensions fixed at setup");
        }
        // Account one superstep per color step, forward + backward: each
        // masked mxv is preceded by a full allgather of x (opaque
        // containers leave the backend no choice), then the masked rows'
        // work plus the 5-flop lambda update.
        let ncolors = self.problem.levels[level].coloring.num_colors;
        let p = self.tracker.nodes();
        let mut secs = 0.0;
        for sweep in 0..2 {
            for step in 0..ncolors {
                let color = if sweep == 0 { step } else { ncolors - 1 - step };
                self.record_allgather(level);
                for node in 0..p {
                    let nnz = self.parts[level].nnz_by_color[node][color];
                    let rows = self.parts[level].rows_by_color[node][color];
                    self.tracker.record_compute(
                        node,
                        2.0 * nnz as f64 + 5.0 * rows as f64,
                        spmv_bytes(nnz, rows) + stream_bytes(4, rows),
                    );
                }
                let c = self
                    .tracker
                    .end_superstep(KernelClass::Smoother, Some(level), false);
                secs += c.total_secs();
            }
        }
        self.charge(level, Kernel::Smoother, secs);
    }

    fn restrict_to(&mut self, level: usize, rc: &mut Vector<f64>, rf: &Vector<f64>) {
        let r = self.problem.levels[level]
            .restriction
            .as_ref()
            .expect("restrict_to needs a coarser level");
        Self::exec()
            .mxv(r, rf)
            .into(rc)
            .expect("restriction dimensions fixed at setup");
        // mxv with the restriction matrix: allgather the *fine* vector,
        // then each node computes its owned coarse rows (1 nonzero each).
        self.record_allgather(level);
        let p = self.tracker.nodes();
        for node in 0..p {
            let rows = self.parts[level + 1].local_n[node];
            self.tracker
                .record_compute(node, 2.0 * rows as f64, spmv_bytes(rows, rows));
        }
        let c = self
            .tracker
            .end_superstep(KernelClass::RestrictRefine, Some(level), false);
        self.charge(level, Kernel::RestrictRefine, c.total_secs());
    }

    fn prolong_add(&mut self, level: usize, zf: &mut Vector<f64>, zc: &Vector<f64>) {
        let r = self.problem.levels[level]
            .restriction
            .as_ref()
            .expect("prolong_add needs a coarser level");
        Self::exec()
            .mxv(r, zc)
            .transpose()
            .accum(Plus)
            .into(zf)
            .expect("refinement dimensions fixed at setup");
        // Transposed mxv: allgather the *coarse* vector, then each node
        // updates its owned fine entries.
        let p = self.tracker.nodes();
        for from in 0..p {
            let bytes = self.parts[level + 1].local_n[from] as f64 * F64;
            self.tracker.record_send_all(from, bytes);
        }
        for node in 0..p {
            let rows = self.parts[level].local_n[node];
            self.tracker
                .record_compute(node, rows as f64, stream_bytes(2, rows));
        }
        let c = self
            .tracker
            .end_superstep(KernelClass::RestrictRefine, Some(level), false);
        self.charge(level, Kernel::RestrictRefine, c.total_secs());
    }

    fn timers_mut(&mut self) -> &mut KernelTimers {
        &mut self.timers
    }

    fn timers(&self) -> &KernelTimers {
        &self.timers
    }

    fn name(&self) -> &'static str {
        match self.layout {
            AlpLayout::Cyclic1D => "ALP distributed (1D block-cyclic)",
            AlpLayout::Block2D { .. } => "ALP distributed (2D block, §VII-B ii)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Grid3;
    use crate::problem::RhsVariant;

    fn make(nodes: usize) -> AlpDistHpcg {
        let p = Problem::build_with(Grid3::cube(8), 2, RhsVariant::Reference).unwrap();
        AlpDistHpcg::new(p, nodes, MachineParams::arm_cluster())
    }

    #[test]
    fn spmv_allgather_volume_matches_table1() {
        let mut k = make(4);
        let x = Vector::filled(512, 1.0);
        let mut y = k.alloc(0);
        k.spmv(0, &mut y, &x);
        let steps = k.tracker().steps();
        assert_eq!(steps.len(), 1);
        // h = (p-1)·(n/p)·8 = 3·128·8 bytes.
        assert_eq!(steps[0].h_bytes, 3.0 * 128.0 * 8.0);
        assert!(!steps[0].overlap, "blocking GraphBLAS semantics");
    }

    #[test]
    fn smoother_issues_one_superstep_per_color_step() {
        let mut k = make(2);
        let r = k.alloc(0);
        let mut x = k.alloc(0);
        k.smooth(0, &mut x, &r);
        // 8 colors × 2 sweeps = 16 supersteps.
        assert_eq!(k.tracker().superstep_count(), 16);
        for s in k.tracker().steps() {
            assert_eq!(s.class, KernelClass::Smoother);
            assert!(s.h_bytes > 0.0, "every color step pays a full allgather");
        }
    }

    #[test]
    fn single_node_pays_no_communication() {
        let mut k = make(1);
        let x = Vector::filled(512, 1.0);
        let mut y = k.alloc(0);
        k.spmv(0, &mut y, &x);
        assert_eq!(k.tracker().steps()[0].h_bytes, 0.0);
    }

    #[test]
    fn execution_matches_shared_memory_kernels() {
        // The distributed wrapper must not perturb numerics.
        use crate::grb_impl::GrbHpcg;
        let prob = Problem::build_with(Grid3::cube(8), 2, RhsVariant::Reference).unwrap();
        let b = prob.b.clone();
        let mut shared = GrbHpcg::<Sequential>::new(prob.clone());
        let mut dist = AlpDistHpcg::new(prob, 4, MachineParams::arm_cluster());
        let mut xs = shared.alloc(0);
        let mut xd = dist.alloc(0);
        shared.smooth(0, &mut xs, &b);
        dist.smooth(0, &mut xd, &b);
        assert_eq!(xs.as_slice(), xd.as_slice());
    }
}

#[cfg(test)]
mod layout_tests {
    use super::*;
    use crate::geometry::Grid3;
    use crate::problem::RhsVariant;

    #[test]
    fn block2d_communicates_less_than_1d_more_than_nothing() {
        let prob = Problem::build_with(Grid3::cube(16), 1, RhsVariant::Reference).unwrap();
        let n = prob.n();
        let p = 16; // 4x4 process grid
        let mut one_d = AlpDistHpcg::new(prob.clone(), p, MachineParams::arm_cluster());
        let mut two_d = AlpDistHpcg::new_2d(prob, p, MachineParams::arm_cluster());
        let x = Vector::filled(n, 1.0);
        let mut y1 = one_d.alloc(0);
        let mut y2 = two_d.alloc(0);
        one_d.spmv(0, &mut y1, &x);
        two_d.spmv(0, &mut y2, &x);
        assert_eq!(
            y1.as_slice(),
            y2.as_slice(),
            "layout changes cost, not numerics"
        );
        let h1 = one_d.tracker().steps()[0].h_bytes;
        let h2 = two_d.tracker().steps()[0].h_bytes;
        // 1D: (p-1)*n/p elements; 2D: (pr-1 + pc-1)*n/p = 6*n/p vs 15*n/p.
        assert!(h2 < h1, "2D must communicate less: {h2} vs {h1}");
        assert!(
            (h1 / h2 - 15.0 / 6.0).abs() < 0.01,
            "exact ratio 15/6, got {}",
            h1 / h2
        );
        assert!(h2 > 0.0);
    }

    #[test]
    fn block2d_layout_reports_its_name() {
        let prob = Problem::build_with(Grid3::cube(8), 1, RhsVariant::Reference).unwrap();
        let two_d = AlpDistHpcg::new_2d(prob, 4, MachineParams::arm_cluster());
        assert_eq!(two_d.layout(), AlpLayout::Block2D { pr: 2, pc: 2 });
        assert!(two_d.name().contains("2D"));
    }
}
