//! Distributed ALP: HPCG over the generic distributed GraphBLAS backend.
//!
//! This is the configuration whose weak scaling Fig 3 shows degrading
//! linearly: the hybrid ALP/GraphBLAS backend distributes matrix rows and
//! vectors block-cyclically over a 1D node grid and, lacking any geometric
//! knowledge (containers are opaque), must allgather the *entire* input
//! vector before every `mxv` — one superstep of `h = (p−1)·n/p` elements
//! per spmv, per RBGS color step, per restriction, per refinement.
//! Blocking GraphBLAS semantics mean no compute/communication overlap
//! (paper §IV).
//!
//! Since the workspace grew `graphblas::Distributed`, this type carries
//! **no cost plumbing of its own**: it is [`GrbHpcg`] — the unmodified
//! shared-memory HPCG text — running on a `Ctx<Distributed>`, with the
//! allgathers, allreduces and per-node roofline work recorded inside the
//! backend. What remains here is HPCG-specific *attribution*: each kernel
//! scopes the recorded supersteps to its multigrid level (and the smoother
//! / grid-transfer classes) so the breakdown figures keep their meaning,
//! then drains the steps into per-kernel modeled-seconds timers.

use crate::grb_impl::GrbHpcg;
use crate::kernels::Kernels;
use crate::problem::Problem;
use crate::timers::{Kernel, KernelTimers};
use bsp::cost::{CostTracker, KernelClass};
use bsp::machine::MachineParams;
use graphblas::{DistConfig, Distributed, ShardLayout, Vector};

/// Block size of the block-cyclic distribution (ALP default-like). Small
/// enough that even the coarsest multigrid level spreads across all nodes.
const BLOCK: usize = 64;

/// Which matrix/vector layout the (hypothetical) ALP distributed backend
/// uses. [`AlpLayout::Cyclic1D`] is the paper's actual hybrid backend;
/// [`AlpLayout::Block2D`] is the §VII-B(ii) proposal — provided so the
/// weak-scaling harness can show how far it closes the gap to Ref.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AlpLayout {
    /// 1D block-cyclic rows: full-vector allgather before every mxv.
    Cyclic1D,
    /// 2D `pr×pc` blocks: expand along process columns + fold along rows,
    /// `(pr−1+pc−1)·n/p` elements per node instead of `(p−1)·n/p`.
    Block2D {
        /// Process-grid rows.
        pr: usize,
        /// Process-grid columns.
        pc: usize,
    },
}

/// Distributed-ALP HPCG: the GraphBLAS kernels on a `Ctx<Distributed>`
/// cluster, with BSP costs recorded by the backend and attributed here.
pub struct AlpDistHpcg {
    inner: GrbHpcg<Distributed>,
    cluster: Distributed,
    layout: AlpLayout,
    /// Mirror of every superstep drained from the cluster, kept so the
    /// harnesses' `tracker()` view (steps, totals) survives attribution.
    tracker: CostTracker,
    /// Modeled seconds per (level, kernel) — the breakdown of Figs 6-7.
    timers: KernelTimers,
}

impl AlpDistHpcg {
    /// Builds the distributed context for `nodes` simulated nodes with the
    /// paper's 1D block-cyclic layout.
    pub fn new(problem: Problem, nodes: usize, machine: MachineParams) -> AlpDistHpcg {
        Self::with_layout(problem, nodes, machine, AlpLayout::Cyclic1D)
    }

    /// Builds with the §VII-B(ii) 2D block layout (most-square `pr×pc`
    /// factorization of `nodes`).
    pub fn new_2d(problem: Problem, nodes: usize, machine: MachineParams) -> AlpDistHpcg {
        let (pr, pc) = bsp::factor2d(nodes);
        Self::with_layout(problem, nodes, machine, AlpLayout::Block2D { pr, pc })
    }

    /// Builds with an explicit layout.
    pub fn with_layout(
        problem: Problem,
        nodes: usize,
        machine: MachineParams,
        layout: AlpLayout,
    ) -> AlpDistHpcg {
        let mut config = DistConfig::new(nodes)
            .machine(machine)
            .layout(ShardLayout::BlockCyclic { block: BLOCK });
        if let AlpLayout::Block2D { pr, pc } = layout {
            config = config.grid2d(pr, pc);
        }
        let cluster = Distributed::with_config(config);
        let levels = problem.levels.len();
        AlpDistHpcg {
            inner: GrbHpcg::with_ctx(problem, cluster.ctx()),
            cluster,
            layout,
            tracker: CostTracker::new(nodes, machine),
            timers: KernelTimers::new(levels),
        }
    }

    /// The layout in use.
    pub fn layout(&self) -> AlpLayout {
        self.layout
    }

    /// The generic distributed backend handle (cost trace, machine).
    pub fn cluster(&self) -> Distributed {
        self.cluster
    }

    /// The BSP cost trace accumulated so far.
    pub fn tracker(&self) -> &CostTracker {
        &self.tracker
    }

    /// Mutable tracker access (reset between runs).
    pub fn tracker_mut(&mut self) -> &mut CostTracker {
        &mut self.tracker
    }

    /// The underlying problem.
    pub fn problem(&self) -> &Problem {
        self.inner.problem()
    }

    /// Enables or disables deferred (pipeline-fused) execution of the hot
    /// loops, exactly as on the shared-memory implementation. Fused pairs
    /// cost one sweep plus one allreduce instead of two full supersteps.
    pub fn set_pipeline(&mut self, enabled: bool) {
        self.inner.set_pipeline(enabled);
    }

    /// Runs `f` on the inner kernels with supersteps scoped to `level` /
    /// `class`, then drains the recorded steps into the modeled timers
    /// and the local tracker mirror.
    fn scoped<R>(
        &mut self,
        level: usize,
        class: Option<KernelClass>,
        f: impl FnOnce(&mut GrbHpcg<Distributed>) -> R,
    ) -> R {
        self.cluster.set_scope(class, Some(level));
        let out = f(&mut self.inner);
        self.cluster.clear_scope();
        for step in self.cluster.take_steps() {
            self.timers
                .add_secs(level, kernel_for(step.class), step.total_secs());
            self.tracker.import_step(step);
        }
        out
    }
}

/// The timer cell a recorded kernel class bills to.
fn kernel_for(class: KernelClass) -> Kernel {
    match class {
        KernelClass::SpMV => Kernel::SpMV,
        KernelClass::Dot => Kernel::Dot,
        KernelClass::Smoother => Kernel::Smoother,
        KernelClass::RestrictRefine => Kernel::RestrictRefine,
        KernelClass::Waxpby | KernelClass::Other => Kernel::Waxpby,
    }
}

impl Kernels for AlpDistHpcg {
    type V = Vector<f64>;

    fn levels(&self) -> usize {
        self.inner.levels()
    }

    fn n_at(&self, level: usize) -> usize {
        self.inner.n_at(level)
    }

    fn alloc(&self, level: usize) -> Vector<f64> {
        self.inner.alloc(level)
    }

    fn set_zero(&mut self, level: usize, v: &mut Vector<f64>) {
        // A raw buffer clear never reaches the context; charge its stream
        // explicitly so the modeled trace keeps every byte the nodes move.
        let cluster = self.cluster;
        self.scoped(level, None, |k| {
            k.set_zero(level, v);
            cluster.record_local_stream(v.len(), 1);
        });
    }

    fn copy(&mut self, level: usize, src: &Vector<f64>, dst: &mut Vector<f64>) {
        let cluster = self.cluster;
        self.scoped(level, None, |k| {
            k.copy(level, src, dst);
            cluster.record_local_stream(src.len(), 2);
        });
    }

    fn spmv(&mut self, level: usize, y: &mut Vector<f64>, x: &Vector<f64>) {
        self.scoped(level, None, |k| k.spmv(level, y, x));
    }

    fn dot(&mut self, level: usize, x: &Vector<f64>, y: &Vector<f64>) -> f64 {
        self.scoped(level, None, |k| k.dot(level, x, y))
    }

    fn waxpby(
        &mut self,
        level: usize,
        w: &mut Vector<f64>,
        alpha: f64,
        x: &Vector<f64>,
        beta: f64,
        y: &Vector<f64>,
    ) {
        self.scoped(level, None, |k| k.waxpby(level, w, alpha, x, beta, y));
    }

    fn axpy(&mut self, level: usize, x: &mut Vector<f64>, alpha: f64, y: &Vector<f64>) {
        self.scoped(level, None, |k| k.axpy(level, x, alpha, y));
    }

    fn xpay(&mut self, level: usize, p: &mut Vector<f64>, beta: f64, z: &Vector<f64>) {
        self.scoped(level, None, |k| k.xpay(level, p, beta, z));
    }

    fn sub_reverse(&mut self, level: usize, w: &mut Vector<f64>, r: &Vector<f64>) {
        self.scoped(level, None, |k| k.sub_reverse(level, w, r));
    }

    fn spmv_dot(&mut self, level: usize, y: &mut Vector<f64>, x: &Vector<f64>) -> f64 {
        self.scoped(level, None, |k| k.spmv_dot(level, y, x))
    }

    fn axpy_norm2(
        &mut self,
        level: usize,
        x: &mut Vector<f64>,
        alpha: f64,
        y: &Vector<f64>,
    ) -> f64 {
        self.scoped(level, None, |k| k.axpy_norm2(level, x, alpha, y))
    }

    // `residual_restrict` keeps the trait's unfused decomposition: the
    // restriction `mxv` must land in the RestrictRefine cell (via
    // `restrict_to`'s scope), which a single fused scope cannot express.

    fn smooth(&mut self, level: usize, x: &mut Vector<f64>, r: &Vector<f64>) {
        self.scoped(level, Some(KernelClass::Smoother), |k| {
            k.smooth(level, x, r)
        });
    }

    fn restrict_to(&mut self, level: usize, rc: &mut Vector<f64>, rf: &Vector<f64>) {
        self.scoped(level, Some(KernelClass::RestrictRefine), |k| {
            k.restrict_to(level, rc, rf)
        });
    }

    fn prolong_add(&mut self, level: usize, zf: &mut Vector<f64>, zc: &Vector<f64>) {
        self.scoped(level, Some(KernelClass::RestrictRefine), |k| {
            k.prolong_add(level, zf, zc)
        });
    }

    fn timers_mut(&mut self) -> &mut KernelTimers {
        &mut self.timers
    }

    fn timers(&self) -> &KernelTimers {
        &self.timers
    }

    fn name(&self) -> &'static str {
        match self.layout {
            AlpLayout::Cyclic1D => "ALP distributed (1D block-cyclic)",
            AlpLayout::Block2D { .. } => "ALP distributed (2D block, §VII-B ii)",
        }
    }

    fn backend_name(&self) -> &'static str {
        "distributed(bsp)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Grid3;
    use crate::problem::RhsVariant;

    fn make(nodes: usize) -> AlpDistHpcg {
        let p = Problem::build_with(Grid3::cube(8), 2, RhsVariant::Reference).unwrap();
        AlpDistHpcg::new(p, nodes, MachineParams::arm_cluster())
    }

    #[test]
    fn spmv_allgather_volume_matches_table1() {
        let mut k = make(4);
        let x = Vector::filled(512, 1.0);
        let mut y = k.alloc(0);
        k.spmv(0, &mut y, &x);
        let steps = k.tracker().steps();
        assert_eq!(steps.len(), 1);
        // h = (p-1)·(n/p)·8 = 3·128·8 bytes.
        assert_eq!(steps[0].h_bytes, 3.0 * 128.0 * 8.0);
        assert!(!steps[0].overlap, "blocking GraphBLAS semantics");
        assert_eq!(steps[0].mg_level, Some(0));
    }

    #[test]
    fn smoother_pays_one_allgather_per_color_step() {
        let mut k = make(2);
        let r = k.alloc(0);
        let mut x = k.alloc(0);
        k.smooth(0, &mut x, &r);
        // 8 colors × 2 sweeps: each color step is a masked mxv superstep
        // (paying a full allgather) plus a purely local masked update.
        let comm: Vec<_> = k
            .tracker()
            .steps()
            .iter()
            .filter(|s| s.h_bytes > 0.0)
            .collect();
        assert_eq!(comm.len(), 16);
        for s in k.tracker().steps() {
            assert_eq!(s.class, KernelClass::Smoother);
            assert_eq!(s.mg_level, Some(0));
        }
        assert!(k.timers().secs(0, Kernel::Smoother) > 0.0);
        assert_eq!(k.timers().secs(0, Kernel::SpMV), 0.0, "scope overrides");
    }

    #[test]
    fn single_node_pays_no_communication() {
        let mut k = make(1);
        let x = Vector::filled(512, 1.0);
        let mut y = k.alloc(0);
        k.spmv(0, &mut y, &x);
        assert_eq!(k.tracker().steps()[0].h_bytes, 0.0);
    }

    #[test]
    fn execution_matches_shared_memory_kernels() {
        // The distributed wrapper must not perturb numerics.
        use crate::grb_impl::GrbHpcg;
        use graphblas::Sequential;
        let prob = Problem::build_with(Grid3::cube(8), 2, RhsVariant::Reference).unwrap();
        let b = prob.b.clone();
        let mut shared = GrbHpcg::<Sequential>::new(prob.clone());
        let mut dist = AlpDistHpcg::new(prob, 4, MachineParams::arm_cluster());
        let mut xs = shared.alloc(0);
        let mut xd = dist.alloc(0);
        shared.smooth(0, &mut xs, &b);
        dist.smooth(0, &mut xd, &b);
        assert_eq!(xs.as_slice(), xd.as_slice());
    }

    #[test]
    fn fused_spmv_dot_costs_one_sweep_plus_allreduce() {
        let mut fused = make(4);
        let mut eager = make(4);
        eager.set_pipeline(false);
        let x = Vector::filled(512, 1.0);
        let mut yf = fused.alloc(0);
        let mut ye = eager.alloc(0);
        let df = fused.spmv_dot(0, &mut yf, &x);
        let de = eager.spmv_dot(0, &mut ye, &x);
        assert_eq!(df.to_bits(), de.to_bits(), "fusion never changes numerics");
        assert_eq!(fused.tracker().superstep_count(), 2);
        assert_eq!(eager.tracker().superstep_count(), 2);
        // Same allgather either way; the fused allreduce step streams no
        // fresh vectors, so the modeled time strictly improves.
        let (tf, te) = (fused.tracker(), eager.tracker());
        assert_eq!(tf.steps()[0].h_bytes, te.steps()[0].h_bytes);
        assert!(tf.total_secs() < te.total_secs());
        assert!(fused.timers().secs(0, Kernel::SpMV) > 0.0);
        assert!(fused.timers().secs(0, Kernel::Dot) > 0.0);
    }

    #[test]
    fn restriction_lands_in_the_restrict_refine_cell() {
        let mut k = make(2);
        let rf = Vector::filled(512, 1.0);
        let mut rc = k.alloc(1);
        k.restrict_to(0, &mut rc, &rf);
        assert_eq!(k.tracker().steps().len(), 1);
        assert_eq!(k.tracker().steps()[0].class, KernelClass::RestrictRefine);
        assert!(k.timers().secs(0, Kernel::RestrictRefine) > 0.0);
        let zc = Vector::filled(64, 2.0);
        let mut zf = Vector::filled(512, 1.0);
        k.prolong_add(0, &mut zf, &zc);
        assert_eq!(k.tracker().steps()[1].class, KernelClass::RestrictRefine);
    }
}

#[cfg(test)]
mod layout_tests {
    use super::*;
    use crate::geometry::Grid3;
    use crate::problem::RhsVariant;

    #[test]
    fn block2d_communicates_less_than_1d_more_than_nothing() {
        let prob = Problem::build_with(Grid3::cube(16), 1, RhsVariant::Reference).unwrap();
        let n = prob.n();
        let p = 16; // 4x4 process grid
        let mut one_d = AlpDistHpcg::new(prob.clone(), p, MachineParams::arm_cluster());
        let mut two_d = AlpDistHpcg::new_2d(prob, p, MachineParams::arm_cluster());
        let x = Vector::filled(n, 1.0);
        let mut y1 = one_d.alloc(0);
        let mut y2 = two_d.alloc(0);
        one_d.spmv(0, &mut y1, &x);
        two_d.spmv(0, &mut y2, &x);
        assert_eq!(
            y1.as_slice(),
            y2.as_slice(),
            "layout changes cost, not numerics"
        );
        let h1 = one_d.tracker().steps()[0].h_bytes;
        let h2 = two_d.tracker().steps()[0].h_bytes;
        // 1D: (p-1)*n/p elements; 2D: (pr-1 + pc-1)*n/p = 6*n/p vs 15*n/p.
        assert!(h2 < h1, "2D must communicate less: {h2} vs {h1}");
        assert!(
            (h1 / h2 - 15.0 / 6.0).abs() < 0.01,
            "exact ratio 15/6, got {}",
            h1 / h2
        );
        assert!(h2 > 0.0);
    }

    #[test]
    fn block2d_layout_reports_its_name() {
        let prob = Problem::build_with(Grid3::cube(8), 1, RhsVariant::Reference).unwrap();
        let two_d = AlpDistHpcg::new_2d(prob, 4, MachineParams::arm_cluster());
        assert_eq!(two_d.layout(), AlpLayout::Block2D { pr: 2, pc: 2 });
        assert!(two_d.name().contains("2D"));
    }
}
