//! The kernel interface both HPCG implementations provide.
//!
//! The paper builds HPCG twice — once on GraphBLAS (ALP), once in the
//! reference code base (Ref) — but the *solver logic* (CG iteration, MG
//! V-cycle, Listing 1) is identical. [`Kernels`] captures exactly the
//! operations that logic needs; [`crate::cg`] and [`crate::mg`] are written
//! once against it, and [`crate::grb_impl::GrbHpcg`] /
//! [`crate::ref_impl::RefHpcg`] plug in their own containers and kernels.
//!
//! Every method carries the multigrid `level` it operates at so
//! implementations can attribute time to the right cell of the breakdown
//! figures (Figs 4-7).

use crate::timers::KernelTimers;

/// The operations HPCG's solvers require of an implementation.
pub trait Kernels {
    /// The vector container of this implementation.
    type V: Clone + Send;

    /// Number of multigrid levels.
    fn levels(&self) -> usize;

    /// Unknowns at `level` (0 = finest).
    fn n_at(&self, level: usize) -> usize;

    /// A zero vector sized for `level`.
    fn alloc(&self, level: usize) -> Self::V;

    /// Zeroes `v` (sized for `level`).
    fn set_zero(&mut self, level: usize, v: &mut Self::V);

    /// `dst ← src` (both sized for `level`).
    fn copy(&mut self, level: usize, src: &Self::V, dst: &mut Self::V);

    /// `y ← A_level · x`.
    fn spmv(&mut self, level: usize, y: &mut Self::V, x: &Self::V);

    /// `⟨x, y⟩`.
    fn dot(&mut self, level: usize, x: &Self::V, y: &Self::V) -> f64;

    /// `w ← α·x + β·y`.
    fn waxpby(
        &mut self,
        level: usize,
        w: &mut Self::V,
        alpha: f64,
        x: &Self::V,
        beta: f64,
        y: &Self::V,
    );

    /// `x ← x + α·y`.
    fn axpy(&mut self, level: usize, x: &mut Self::V, alpha: f64, y: &Self::V);

    /// `y ← A_level · x` and `⟨x, y⟩` as one logical step — CG needs
    /// `⟨p, Ap⟩` immediately after `Ap`, so implementations may fuse the
    /// pair into a single pass (the nonblocking-execution optimization,
    /// paper §VI). The default runs the unfused pair; fused
    /// implementations must stay bit-identical to it.
    fn spmv_dot(&mut self, level: usize, y: &mut Self::V, x: &Self::V) -> f64 {
        self.spmv(level, y, x);
        self.dot(level, x, y)
    }

    /// `x ← x + α·y` and `‖x‖²` of the update as one logical step — CG
    /// needs the residual norm immediately after the residual update. Same
    /// fusion contract as [`spmv_dot`](Kernels::spmv_dot).
    fn axpy_norm2(&mut self, level: usize, x: &mut Self::V, alpha: f64, y: &Self::V) -> f64 {
        self.axpy(level, x, alpha, y);
        let xs = &*x;
        self.dot(level, xs, xs)
    }

    /// The MG residual-and-restrict step: `f ← A_level · z`, `f ← r − f`,
    /// `rc ← R_level · f` (`rc` sized for `level + 1`). Implementations may
    /// run the three ops through one deferred pipeline; the default runs
    /// them eagerly.
    fn residual_restrict(
        &mut self,
        level: usize,
        f: &mut Self::V,
        z: &Self::V,
        r: &Self::V,
        rc: &mut Self::V,
    ) {
        self.spmv(level, f, z);
        self.sub_reverse(level, f, r);
        self.restrict_to(level, rc, f);
    }

    /// `p ← z + β·p` (CG's search-direction update, in place).
    fn xpay(&mut self, level: usize, p: &mut Self::V, beta: f64, z: &Self::V);

    /// `w ← r − w` (used to form the MG residual in place).
    fn sub_reverse(&mut self, level: usize, w: &mut Self::V, r: &Self::V);

    /// One symmetric smoother sweep on `A_level·x = r`, updating `x`.
    fn smooth(&mut self, level: usize, x: &mut Self::V, r: &Self::V);

    /// Restriction: `rc ← R_level · rf`, `rc` sized for `level + 1`.
    fn restrict_to(&mut self, level: usize, rc: &mut Self::V, rf: &Self::V);

    /// Prolongation-and-add: `zf ← zf + R_levelᵀ · zc` (refinement, §II-F).
    fn prolong_add(&mut self, level: usize, zf: &mut Self::V, zc: &Self::V);

    /// The timing sink.
    fn timers_mut(&mut self) -> &mut KernelTimers;

    /// Read access to accumulated timings.
    fn timers(&self) -> &KernelTimers;

    /// Implementation name for reports.
    fn name(&self) -> &'static str;

    /// Backend the kernels execute on, for reports (implementations with a
    /// fixed execution strategy keep the default).
    fn backend_name(&self) -> &'static str {
        "-"
    }
}
