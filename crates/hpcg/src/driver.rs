//! Benchmark driver: runs the full HPCG loop and reports timings.
//!
//! Mirrors the HPCG benchmark protocol the paper follows (§V): fixed
//! iteration count (numerics are equivalent across implementations, so
//! times are directly comparable), per-kernel / per-level timer breakdown,
//! and a GFLOP/s figure computed from the official HPCG flop model.

use crate::cg::{cg_solve, CgResult, CgWorkspace};
use crate::kernels::Kernels;
use crate::mg::MgWorkspace;
use crate::problem::Problem;
use crate::timers::Kernel;

/// Configuration of one benchmark run.
#[derive(Copy, Clone, Debug)]
pub struct RunConfig {
    /// CG iterations to execute (HPCG runs sets of 50).
    pub iterations: usize,
    /// Whether to apply the MG preconditioner (the benchmark always does).
    pub preconditioned: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            iterations: 50,
            preconditioned: true,
        }
    }
}

/// Per-level kernel-time snapshot for the breakdown figures.
#[derive(Clone, Debug)]
pub struct LevelBreakdown {
    /// Multigrid level (0 = finest).
    pub level: usize,
    /// Seconds in the smoother at this level.
    pub smoother_secs: f64,
    /// Seconds in restriction/refinement at this level.
    pub restrict_refine_secs: f64,
    /// Seconds in spmv at this level.
    pub spmv_secs: f64,
}

/// The outcome of one full benchmark run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Implementation name.
    pub name: &'static str,
    /// Fine-level unknowns.
    pub n: usize,
    /// Iterations executed.
    pub iterations: usize,
    /// Total wall-clock seconds.
    pub total_secs: f64,
    /// Final relative residual (validation).
    pub relative_residual: f64,
    /// Per-level smoother / grid-transfer breakdown.
    pub levels: Vec<LevelBreakdown>,
    /// Seconds in dot products (all levels).
    pub dot_secs: f64,
    /// Seconds in vector updates (all levels).
    pub waxpby_secs: f64,
    /// GFLOP/s by the official HPCG flop model.
    pub gflops: f64,
}

impl RunReport {
    /// Fraction of total time in the smoother, summed over levels — the
    /// ">50 % in RBGS" observation of §V-C.
    pub fn smoother_fraction(&self) -> f64 {
        if self.total_secs <= 0.0 {
            return 0.0;
        }
        self.levels.iter().map(|l| l.smoother_secs).sum::<f64>() / self.total_secs
    }

    /// Fraction of total time in the MG preconditioner (smoother +
    /// transfer + MG spmv below the finest CG kernels), the "80-90 %"
    /// observation of §V-C.
    pub fn mg_fraction(&self) -> f64 {
        if self.total_secs <= 0.0 {
            return 0.0;
        }
        let mg: f64 = self
            .levels
            .iter()
            .map(|l| {
                l.smoother_secs
                    + l.restrict_refine_secs
                    + if l.level > 0 { l.spmv_secs } else { 0.0 }
            })
            .sum();
        mg / self.total_secs
    }
}

/// Flops of one MG-preconditioned CG iteration under the official HPCG
/// model (`2·nnz` per spmv / per GS sweep half, `2n` per dot/axpy).
pub fn flops_per_iteration(problem: &Problem) -> f64 {
    let n0 = problem.levels[0].n() as f64;
    // CG body: one spmv, 3 dots (r·z, p·Ap, r·r), 3 vector updates.
    let mut flops = 2.0 * problem.levels[0].a.nnz() as f64 + 3.0 * 2.0 * n0 + 3.0 * 2.0 * n0;
    // MG: per level above the coarsest: 2 symmetric sweeps (each fwd+bwd =
    // 4·nnz), one residual spmv (2·nnz) + restriction/prolongation (2n);
    // coarsest level: one symmetric sweep.
    for (i, l) in problem.levels.iter().enumerate() {
        let nnz = l.a.nnz() as f64;
        let n = l.n() as f64;
        if i + 1 < problem.levels.len() {
            flops += 2.0 * 4.0 * nnz + 2.0 * nnz + 2.0 * n;
        } else {
            flops += 4.0 * nnz;
        }
    }
    flops
}

/// Memory bytes streamed by one MG-preconditioned CG iteration — the
/// quantity that bounds HPCG performance on real machines (the benchmark
/// is bandwidth-bound; see the vendor reports cited in §VI).
///
/// Counts CSR traffic (12 bytes/nonzero + 16/row) for every spmv-shaped
/// kernel and 8 bytes per vector element per stream for the rest.
pub fn bytes_per_iteration(problem: &Problem) -> f64 {
    let csr = |nnz: usize, rows: usize| (nnz * (8 + 4 + 8) + rows * 16) as f64;
    let n0 = problem.levels[0].n();
    // CG body: spmv + 3 dots + 3 updates.
    let mut bytes = csr(problem.levels[0].a.nnz(), n0) + 6.0 * 2.0 * (n0 as f64) * 8.0;
    for (i, l) in problem.levels.iter().enumerate() {
        let nnz = l.a.nnz();
        let n = l.n();
        if i + 1 < problem.levels.len() {
            // Two symmetric sweeps (4 matrix passes), one residual spmv,
            // restriction + prolongation streams.
            bytes += 4.0 * csr(nnz, n) + csr(nnz, n) + 5.0 * (n as f64) * 8.0;
        } else {
            bytes += 2.0 * csr(nnz, n);
        }
    }
    bytes
}

/// Runs `config.iterations` of HPCG on `k` with right-hand side `b`,
/// returning the timing report and the CG convergence data.
pub fn run_with_rhs<K: Kernels>(
    k: &mut K,
    b: &K::V,
    flops_per_iter: f64,
    config: RunConfig,
) -> (RunReport, CgResult) {
    k.timers_mut().reset();
    let mut cg_ws = CgWorkspace::new(k);
    let mut mg_ws = MgWorkspace::new(k);
    let mut x = k.alloc(0);

    k.timers_mut().start_run();
    let cg = cg_solve(
        k,
        &mut cg_ws,
        &mut mg_ws,
        b,
        &mut x,
        config.iterations,
        0.0,
        config.preconditioned,
    );
    k.timers_mut().end_run();

    let report = snapshot_report(k, flops_per_iter, &cg);
    (report, cg)
}

/// Builds a [`RunReport`] from the current timer state.
pub fn snapshot_report<K: Kernels>(k: &K, flops_per_iter: f64, cg: &CgResult) -> RunReport {
    let t = k.timers();
    let total = t.total_secs();
    let levels = (0..k.levels())
        .map(|l| LevelBreakdown {
            level: l,
            smoother_secs: t.secs(l, Kernel::Smoother),
            restrict_refine_secs: t.secs(l, Kernel::RestrictRefine),
            spmv_secs: t.secs(l, Kernel::SpMV),
        })
        .collect();
    RunReport {
        name: k.name(),
        n: k.n_at(0),
        iterations: cg.iterations,
        total_secs: total,
        relative_residual: cg.relative_residual,
        levels,
        dot_secs: t.secs_all_levels(Kernel::Dot),
        waxpby_secs: t.secs_all_levels(Kernel::Waxpby),
        gflops: if total > 0.0 {
            flops_per_iter * cg.iterations as f64 / total / 1e9
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Grid3;
    use crate::grb_impl::GrbHpcg;
    use crate::problem::RhsVariant;
    use crate::ref_impl::RefHpcg;
    use graphblas::Sequential;

    #[test]
    fn grb_run_produces_consistent_report() {
        let p = Problem::build_with(Grid3::cube(16), 4, RhsVariant::Reference).unwrap();
        let fpi = flops_per_iteration(&p);
        let b = p.b.clone();
        let mut k = GrbHpcg::<Sequential>::new(p);
        let (report, cg) = run_with_rhs(
            &mut k,
            &b,
            fpi,
            RunConfig {
                iterations: 5,
                preconditioned: true,
            },
        );
        assert_eq!(report.iterations, 5);
        assert_eq!(cg.iterations, 5);
        assert!(report.total_secs > 0.0);
        assert!(report.gflops > 0.0);
        assert!(
            report.smoother_fraction() > 0.3,
            "RBGS dominates: {}",
            report.smoother_fraction()
        );
        assert!(report.mg_fraction() > report.smoother_fraction());
        assert!(report.relative_residual < 1e-2);
    }

    #[test]
    fn ref_run_matches_grb_numerics() {
        let p = Problem::build_with(Grid3::cube(8), 3, RhsVariant::Reference).unwrap();
        let fpi = flops_per_iteration(&p);
        let b_vec = p.b.as_slice().to_vec();
        let b_grb = p.b.clone();
        let mut kr = RefHpcg::new(p.clone());
        let mut kg = GrbHpcg::<Sequential>::new(p);
        let cfg = RunConfig {
            iterations: 10,
            preconditioned: true,
        };
        let (_, cg_r) = run_with_rhs(&mut kr, &b_vec, fpi, cfg);
        let (_, cg_g) = run_with_rhs(&mut kg, &b_grb, fpi, cfg);
        // Same schedule, different rounding in dots → agree to ~1e-12.
        for (a, b) in cg_r.residual_history.iter().zip(&cg_g.residual_history) {
            let denom = a.abs().max(1e-300);
            assert!(
                ((a - b) / denom).abs() < 1e-9,
                "residual histories diverged: {a} vs {b}"
            );
        }
    }

    #[test]
    fn flop_model_scales_linearly_with_n() {
        let p1 = Problem::build_with(Grid3::cube(8), 2, RhsVariant::Reference).unwrap();
        let p2 = Problem::build_with(Grid3::cube(16), 2, RhsVariant::Reference).unwrap();
        let (f1, f2) = (flops_per_iteration(&p1), flops_per_iteration(&p2));
        let ratio = f2 / f1;
        assert!(
            ratio > 6.0 && ratio < 10.0,
            "Θ(n) model: 8x points → ~8x flops, got {ratio}"
        );
    }
}
