//! The 3D problem geometry of HPCG.
//!
//! HPCG discretizes a heat-diffusion problem on an `nx×ny×nz` grid with a
//! 27-point stencil: every grid point interacts with all neighbors within
//! Chebyshev distance 1 (paper §II-A/§II-B). Interior points have 27
//! stencil entries; faces, edges and corners have fewer (down to 8),
//! which is the "8 to 27 nonzeroes per row" of §II-C.

/// An `nx×ny×nz` grid of points, indexed `g = x + nx·(y + ny·z)`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Grid3 {
    /// Points along x.
    pub nx: usize,
    /// Points along y.
    pub ny: usize,
    /// Points along z.
    pub nz: usize,
}

impl Grid3 {
    /// Creates a grid; all dimensions must be positive.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Grid3 {
        assert!(
            nx > 0 && ny > 0 && nz > 0,
            "grid dimensions must be positive"
        );
        Grid3 { nx, ny, nz }
    }

    /// A cubic grid.
    pub fn cube(n: usize) -> Grid3 {
        Grid3::new(n, n, n)
    }

    /// Total number of points.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Whether the grid has no points (never true — dimensions are positive).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Linear index of point `(x, y, z)`.
    #[inline(always)]
    pub fn index(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny && z < self.nz);
        x + self.nx * (y + self.ny * z)
    }

    /// Coordinates of linear index `g`.
    #[inline(always)]
    pub fn coords(&self, g: usize) -> (usize, usize, usize) {
        debug_assert!(g < self.len());
        (
            g % self.nx,
            (g / self.nx) % self.ny,
            g / (self.nx * self.ny),
        )
    }

    /// Visits the (up to 27, including the point itself) stencil neighbors
    /// of `g` in increasing linear-index order.
    ///
    /// The order is increasing because the offsets enumerate `dz`, `dy`,
    /// `dx` from −1 to 1 in the same nesting as the linear index — which is
    /// what lets the problem generator emit CSR rows directly.
    #[inline]
    pub fn for_each_stencil_neighbor(&self, g: usize, mut f: impl FnMut(usize)) {
        let (x, y, z) = self.coords(g);
        for dz in -1i64..=1 {
            let zz = z as i64 + dz;
            if zz < 0 || zz >= self.nz as i64 {
                continue;
            }
            for dy in -1i64..=1 {
                let yy = y as i64 + dy;
                if yy < 0 || yy >= self.ny as i64 {
                    continue;
                }
                for dx in -1i64..=1 {
                    let xx = x as i64 + dx;
                    if xx < 0 || xx >= self.nx as i64 {
                        continue;
                    }
                    f(self.index(xx as usize, yy as usize, zz as usize));
                }
            }
        }
    }

    /// Number of stencil neighbors of `g`, itself included (8..=27).
    pub fn stencil_size(&self, g: usize) -> usize {
        let (x, y, z) = self.coords(g);
        let span = |c: usize, n: usize| -> usize {
            let lo = if c == 0 { 0 } else { 1 };
            let hi = if c + 1 == n { 0 } else { 1 };
            1 + lo + hi
        };
        span(x, self.nx) * span(y, self.ny) * span(z, self.nz)
    }

    /// Whether the grid can coarsen by 2 in every dimension (§II-F).
    pub fn coarsenable(&self) -> bool {
        self.nx.is_multiple_of(2)
            && self.ny.is_multiple_of(2)
            && self.nz.is_multiple_of(2)
            && self.nx >= 2
            && self.ny >= 2
            && self.nz >= 2
    }

    /// The coarse grid of half the points per dimension.
    ///
    /// Panics if not [`Grid3::coarsenable`].
    pub fn coarsen(&self) -> Grid3 {
        assert!(self.coarsenable(), "grid {self:?} cannot coarsen by 2");
        Grid3::new(self.nx / 2, self.ny / 2, self.nz / 2)
    }

    /// The fine-grid index corresponding to coarse point `gc` under HPCG's
    /// straight injection: the lowest-coordinate point of the octet.
    pub fn fine_index_of_coarse(&self, coarse: Grid3, gc: usize) -> usize {
        let (cx, cy, cz) = coarse.coords(gc);
        self.index(2 * cx, 2 * cy, 2 * cz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_coords_roundtrip() {
        let g = Grid3::new(4, 5, 6);
        for i in 0..g.len() {
            let (x, y, z) = g.coords(i);
            assert_eq!(g.index(x, y, z), i);
        }
    }

    #[test]
    fn stencil_sizes() {
        let g = Grid3::cube(4);
        // Corner: 2*2*2 = 8; edge: 2*2*3 = 12; face: 2*3*3 = 18; interior: 27.
        assert_eq!(g.stencil_size(g.index(0, 0, 0)), 8);
        assert_eq!(g.stencil_size(g.index(1, 0, 0)), 12);
        assert_eq!(g.stencil_size(g.index(1, 1, 0)), 18);
        assert_eq!(g.stencil_size(g.index(1, 1, 1)), 27);
    }

    #[test]
    fn neighbors_are_sorted_and_counted() {
        let g = Grid3::cube(5);
        for i in 0..g.len() {
            let mut prev = None;
            let mut count = 0;
            g.for_each_stencil_neighbor(i, |j| {
                if let Some(p) = prev {
                    assert!(j > p, "neighbors must come out strictly increasing");
                }
                prev = Some(j);
                count += 1;
            });
            assert_eq!(count, g.stencil_size(i));
        }
    }

    #[test]
    fn neighbors_include_self_and_are_adjacent() {
        let g = Grid3::new(3, 4, 5);
        let center = g.index(1, 2, 2);
        let mut saw_self = false;
        g.for_each_stencil_neighbor(center, |j| {
            if j == center {
                saw_self = true;
            }
            let (x1, y1, z1) = g.coords(center);
            let (x2, y2, z2) = g.coords(j);
            assert!(x1.abs_diff(x2) <= 1 && y1.abs_diff(y2) <= 1 && z1.abs_diff(z2) <= 1);
        });
        assert!(saw_self);
    }

    #[test]
    fn coarsening() {
        let g = Grid3::new(16, 8, 4);
        assert!(g.coarsenable());
        let c = g.coarsen();
        assert_eq!(c, Grid3::new(8, 4, 2));
        assert!(!Grid3::new(3, 4, 4).coarsenable());
        assert!(
            !Grid3::new(2, 2, 2).coarsen().coarsenable(),
            "1-point dims stop coarsening"
        );
    }

    #[test]
    fn injection_map_hits_even_coordinates() {
        let fine = Grid3::cube(8);
        let coarse = fine.coarsen();
        for gc in 0..coarse.len() {
            let gf = fine.fine_index_of_coarse(coarse, gc);
            let (x, y, z) = fine.coords(gf);
            assert_eq!((x % 2, y % 2, z % 2), (0, 0, 0));
        }
        // Injection is injective and increasing in gc.
        let maps: Vec<usize> = (0..coarse.len())
            .map(|gc| fine.fine_index_of_coarse(coarse, gc))
            .collect();
        assert!(maps.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dims_rejected() {
        let _ = Grid3::new(0, 1, 1);
    }
}
