//! HPCG-style validation tests (paper §III-A).
//!
//! HPCG's technical specification allows replacing the smoother **only if
//! the replacement passes the internal symmetry test**: the preconditioner
//! `M` must satisfy `⟨x, M·y⟩ = ⟨M·x, y⟩` (up to rounding), which RBGS does
//! because its forward and backward passes walk mirror-image schedules.
//! This module implements that test plus the spectral/convergence checks
//! the benchmark performs before timing.

use crate::cg::{cg_solve, CgWorkspace};
use crate::kernels::Kernels;
use crate::mg::{mg_precondition, MgWorkspace};

/// The outcome of the validation suite.
#[derive(Clone, Debug)]
pub struct ValidationReport {
    /// Relative symmetry defect of the spmv: `|x'Ay − y'Ax| / ‖A‖-scale`.
    pub spmv_symmetry_defect: f64,
    /// Relative symmetry defect of the MG preconditioner.
    pub mg_symmetry_defect: f64,
    /// Iterations preconditioned CG took to 1e-8 relative residual.
    pub pcg_iterations: usize,
    /// Iterations unpreconditioned CG took (must be more).
    pub plain_cg_iterations: usize,
    /// Whether all checks passed.
    pub passed: bool,
}

/// Tolerance on the relative symmetry defects (HPCG uses a comparable
/// rounding-scaled bound).
pub const SYMMETRY_TOL: f64 = 1e-10;

/// Deterministic pseudo-random vector in `[-0.5, 0.5)`, the probe vectors
/// of the symmetry test (fixed seed → reproducible validation).
fn probe_vector(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
    (0..n)
        .map(|_| {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let r = state.wrapping_mul(0x2545F4914F6CDD1D);
            (r >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

/// Fills an implementation vector from a dense slice.
fn fill_from<K: Kernels>(k: &mut K, level: usize, data: &[f64]) -> K::V
where
    K::V: AsMut<[f64]>,
{
    let mut v = k.alloc(level);
    v.as_mut().copy_from_slice(data);
    v
}

/// Runs the full validation suite against implementation `k` with
/// right-hand side `b`.
///
/// Requires `K::V: AsMut<[f64]>` to inject probe vectors — both provided
/// implementations satisfy it.
pub fn validate<K: Kernels>(k: &mut K, b: &K::V, max_iters: usize) -> ValidationReport
where
    K::V: AsMut<[f64]>,
{
    let n = k.n_at(0);
    let xp = probe_vector(n, 1);
    let yp = probe_vector(n, 2);
    let x = fill_from(k, 0, &xp);
    let y = fill_from(k, 0, &yp);

    // Symmetry of A: x'(Ay) == y'(Ax).
    let mut ax = k.alloc(0);
    let mut ay = k.alloc(0);
    k.spmv(0, &mut ax, &x);
    k.spmv(0, &mut ay, &y);
    let xtay = k.dot(0, &x, &ay);
    let ytax = k.dot(0, &y, &ax);
    let scale_a = xtay.abs().max(ytax.abs()).max(1e-300);
    let spmv_defect = (xtay - ytax).abs() / scale_a;

    // Symmetry of the MG preconditioner: x'(My) == y'(Mx).
    let mut mg_ws = MgWorkspace::new(k);
    let mut mx = k.alloc(0);
    let mut my = k.alloc(0);
    mg_precondition(k, &mut mg_ws, &x, &mut mx);
    mg_precondition(k, &mut mg_ws, &y, &mut my);
    let xtmy = k.dot(0, &x, &my);
    let ytmx = k.dot(0, &y, &mx);
    let scale_m = xtmy.abs().max(ytmx.abs()).max(1e-300);
    let mg_defect = (xtmy - ytmx).abs() / scale_m;

    // Convergence: preconditioned CG must beat plain CG to 1e-8.
    let mut cg_ws = CgWorkspace::new(k);
    let mut x0 = k.alloc(0);
    let pcg = cg_solve(k, &mut cg_ws, &mut mg_ws, b, &mut x0, max_iters, 1e-8, true);
    let mut x1 = k.alloc(0);
    let plain = cg_solve(
        k, &mut cg_ws, &mut mg_ws, b, &mut x1, max_iters, 1e-8, false,
    );

    let passed = spmv_defect < SYMMETRY_TOL
        && mg_defect < SYMMETRY_TOL
        && pcg.relative_residual <= 1e-8
        && pcg.iterations < plain.iterations;

    ValidationReport {
        spmv_symmetry_defect: spmv_defect,
        mg_symmetry_defect: mg_defect,
        pcg_iterations: pcg.iterations,
        plain_cg_iterations: plain.iterations,
        passed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Grid3;
    use crate::grb_impl::GrbHpcg;
    use crate::problem::{Problem, RhsVariant};
    use crate::ref_impl::RefHpcg;
    use graphblas::Sequential;

    #[test]
    fn grb_implementation_passes_validation() {
        let p = Problem::build_with(Grid3::cube(16), 4, RhsVariant::Reference).unwrap();
        let b = p.b.clone();
        let mut k = GrbHpcg::<Sequential>::new(p);
        let report = validate(&mut k, &b, 500);
        assert!(report.passed, "validation failed: {report:?}");
        assert!(report.spmv_symmetry_defect < SYMMETRY_TOL);
        assert!(report.mg_symmetry_defect < SYMMETRY_TOL);
    }

    #[test]
    fn ref_implementation_passes_validation() {
        let p = Problem::build_with(Grid3::cube(16), 4, RhsVariant::Reference).unwrap();
        let b = p.b.as_slice().to_vec();
        let mut k = RefHpcg::new(p);
        let report = validate(&mut k, &b, 500);
        assert!(report.passed, "validation failed: {report:?}");
    }

    #[test]
    fn probe_vectors_are_deterministic_and_distinct() {
        let a = probe_vector(100, 1);
        let b = probe_vector(100, 1);
        let c = probe_vector(100, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|&v| (-0.5..0.5).contains(&v)));
        // Not constant.
        assert!(a.iter().any(|&v| (v - a[0]).abs() > 1e-3));
    }
}
