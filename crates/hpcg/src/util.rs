//! Internal utilities for the reference (non-GraphBLAS) implementation.

use std::cell::UnsafeCell;

/// A `Sync` view over a mutable slice allowing concurrent writes to
/// disjoint indices — the reference implementation's equivalent of an
/// OpenMP `parallel for` over an output array.
///
/// # Safety
///
/// Callers must never access the same index from two threads in one
/// parallel region. The RBGS sweeps satisfy this by construction: a color
/// class is a set of distinct indices.
pub(crate) struct SyncSlice<'a, T> {
    slice: &'a [UnsafeCell<T>],
}

unsafe impl<T: Send + Sync> Sync for SyncSlice<'_, T> {}
unsafe impl<T: Send + Sync> Send for SyncSlice<'_, T> {}

impl<'a, T> SyncSlice<'a, T> {
    pub(crate) fn new(slice: &'a mut [T]) -> Self {
        // SAFETY: identical layout; unique borrow held for 'a.
        let ptr = slice as *mut [T] as *const [UnsafeCell<T>];
        Self {
            slice: unsafe { &*ptr },
        }
    }

    /// # Safety
    /// `i` in bounds and not concurrently accessed.
    #[inline(always)]
    pub(crate) unsafe fn write(&self, i: usize, value: T) {
        debug_assert!(i < self.slice.len());
        unsafe { *self.slice.get_unchecked(i).get() = value }
    }

    /// # Safety
    /// `i` in bounds and not concurrently accessed.
    #[inline(always)]
    pub(crate) unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(i < self.slice.len());
        unsafe { *self.slice.get_unchecked(i).get() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read() {
        let mut data = vec![0.0f64; 8];
        {
            let s = SyncSlice::new(&mut data);
            unsafe {
                s.write(3, 1.5);
                assert_eq!(s.read(3), 1.5);
            }
        }
        assert_eq!(data[3], 1.5);
    }
}
