//! Greedy graph coloring for the Red-Black Gauss-Seidel smoother.
//!
//! Gauss-Seidel's `(i, j)` dependencies follow the nonzero pattern of `A`
//! (paper §II-E). Coloring the adjacency graph so no two dependent indices
//! share a color lets all indices of one color update in parallel
//! (§III-A). The paper uses first-fit greedy coloring, which is optimal on
//! the HPCG 27-point stencil: exactly **8 colors**, one per parity octant
//! `(x mod 2, y mod 2, z mod 2)` — asserted by tests here and in the
//! problem generator.

use graphblas::{CsrMatrix, Scalar, Vector};

/// The result of coloring a matrix's adjacency structure.
#[derive(Clone, Debug)]
pub struct Coloring {
    /// `color[i]` ∈ `0..num_colors` for every row `i`.
    pub color: Vec<u8>,
    /// Number of colors used.
    pub num_colors: usize,
}

impl Coloring {
    /// Greedy first-fit coloring of the symmetric adjacency of `a`
    /// (diagonal entries are ignored — self-dependencies don't constrain).
    ///
    /// Rows are visited in natural order; each takes the smallest color not
    /// used by an already-colored neighbor. For symmetric matrices this
    /// needs one pass (`Θ(nnz)` work).
    pub fn greedy<T: Scalar>(a: &CsrMatrix<T>) -> Coloring {
        let n = a.nrows();
        let mut color = vec![u8::MAX; n];
        let mut used = [false; 256];
        let mut num_colors = 0usize;
        for i in 0..n {
            let (cols, _) = a.row(i);
            for &j in cols {
                let j = j as usize;
                if j != i && color[j] != u8::MAX {
                    used[color[j] as usize] = true;
                }
            }
            let c = (0..256)
                .find(|&c| !used[c])
                .expect("more than 255 colors required") as u8;
            color[i] = c;
            num_colors = num_colors.max(c as usize + 1);
            // Reset the scratch flags touched by this row.
            for &j in cols {
                let j = j as usize;
                if j != i && color[j] != u8::MAX {
                    used[color[j] as usize] = false;
                }
            }
        }
        Coloring { color, num_colors }
    }

    /// Checks that no stored off-diagonal `(i, j)` links two same-colored
    /// indices — the property RBGS correctness rests on.
    pub fn verify<T: Scalar>(&self, a: &CsrMatrix<T>) -> bool {
        (0..a.nrows()).all(|i| {
            let (cols, _) = a.row(i);
            cols.iter()
                .all(|&j| j as usize == i || self.color[j as usize] != self.color[i])
        })
    }

    /// Number of indices with color `c`.
    pub fn class_size(&self, c: u8) -> usize {
        self.color.iter().filter(|&&k| k == c).count()
    }

    /// The sorted index list of every color class.
    pub fn classes(&self) -> Vec<Vec<u32>> {
        let mut classes = vec![Vec::new(); self.num_colors];
        for (i, &c) in self.color.iter().enumerate() {
            classes[c as usize].push(i as u32);
        }
        classes
    }

    /// The color classes as sparse boolean **GraphBLAS masks**
    /// (`Vector<bool>` with `true` at class members), the form Listing 3's
    /// `colors` parameter takes.
    pub fn masks(&self, n: usize) -> Vec<Vector<bool>> {
        self.classes()
            .into_iter()
            .map(|idx| {
                Vector::sparse_filled(n, idx, true)
                    .expect("class indices are sorted and in range by construction")
            })
            .collect()
    }
}

/// The closed-form octant coloring of a 3D 27-point stencil grid:
/// `color = (x mod 2) + 2(y mod 2) + 4(z mod 2)`.
///
/// Greedy coloring on the HPCG matrix reproduces exactly this (the stencil
/// connects every pair of distinct parities in a 2×2×2 octet); provided
/// separately so tests can cross-check and so the reference implementation
/// can color without touching matrix internals.
pub fn octant_coloring(grid: crate::geometry::Grid3) -> Coloring {
    let mut color = vec![0u8; grid.len()];
    for (g, slot) in color.iter_mut().enumerate() {
        let (x, y, z) = grid.coords(g);
        *slot = ((x % 2) + 2 * (y % 2) + 4 * (z % 2)) as u8;
    }
    let num_colors = if grid.nx >= 2 && grid.ny >= 2 && grid.nz >= 2 {
        8
    } else {
        // Degenerate thin grids use fewer octants.
        let mut seen = [false; 8];
        for &c in &color {
            seen[c as usize] = true;
        }
        seen.iter().filter(|&&s| s).count()
    };
    Coloring { color, num_colors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Grid3;
    use crate::problem::build_stencil_matrix;

    #[test]
    fn greedy_on_path_graph_uses_two_colors() {
        // Tridiagonal: a path; greedy must 2-color it.
        let n = 10;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
        }
        let a = CsrMatrix::from_triplets(n, n, &t).unwrap();
        let c = Coloring::greedy(&a);
        assert_eq!(c.num_colors, 2);
        assert!(c.verify(&a));
    }

    #[test]
    fn greedy_on_hpcg_stencil_finds_exactly_eight_colors() {
        // The paper's §III-A claim: greedy is optimal on the HPCG grid.
        let grid = Grid3::cube(6);
        let a = build_stencil_matrix(grid);
        let c = Coloring::greedy(&a);
        assert_eq!(c.num_colors, 8);
        assert!(c.verify(&a));
    }

    #[test]
    fn greedy_matches_octant_coloring_structure() {
        let grid = Grid3::cube(4);
        let a = build_stencil_matrix(grid);
        let greedy = Coloring::greedy(&a);
        let octant = octant_coloring(grid);
        assert_eq!(greedy.num_colors, octant.num_colors);
        assert!(
            octant.verify(&a),
            "octant coloring is a valid coloring of the stencil"
        );
        // Class sizes agree for even cubic grids (each octant has n/8).
        for c in 0..8u8 {
            assert_eq!(greedy.class_size(c), grid.len() / 8);
            assert_eq!(octant.class_size(c), grid.len() / 8);
        }
    }

    #[test]
    fn classes_partition_indices() {
        let grid = Grid3::new(4, 6, 2);
        let a = build_stencil_matrix(grid);
        let c = Coloring::greedy(&a);
        let classes = c.classes();
        let total: usize = classes.iter().map(Vec::len).sum();
        assert_eq!(total, grid.len());
        for class in &classes {
            assert!(class.windows(2).all(|w| w[0] < w[1]), "classes sorted");
        }
    }

    #[test]
    fn masks_are_structural_color_sets() {
        let grid = Grid3::cube(4);
        let a = build_stencil_matrix(grid);
        let c = Coloring::greedy(&a);
        let masks = c.masks(grid.len());
        assert_eq!(masks.len(), 8);
        let nnz_total: usize = masks.iter().map(Vector::nnz).sum();
        assert_eq!(nnz_total, grid.len());
        for m in &masks {
            assert!(!m.is_dense());
        }
    }

    #[test]
    fn degenerate_thin_grid_uses_fewer_octants() {
        let grid = Grid3::new(4, 4, 1);
        let c = octant_coloring(grid);
        assert_eq!(c.num_colors, 4, "flat grid has no z-parity");
        let a = build_stencil_matrix(grid);
        assert!(c.verify(&a));
    }

    #[test]
    fn bad_coloring_fails_verify() {
        let grid = Grid3::cube(4);
        let a = build_stencil_matrix(grid);
        let mut c = Coloring::greedy(&a);
        // Force a conflict: give a neighbor pair the same color.
        let (cols, _) = a.row(0);
        let neighbor = cols.iter().find(|&&j| j != 0).copied().unwrap() as usize;
        c.color[neighbor] = c.color[0];
        assert!(!c.verify(&a));
    }
}
