//! Fused kernels — the nonblocking-execution ablation (paper §VI, §VII-A).
//!
//! The related-work section singles out kernel fusion as the key
//! hand-optimization HPCG vendors apply ("[29] stresses the importance of
//! kernels fusion to improve access locality and save on bandwidth"), and
//! cites the ALP nonblocking extension [32] as the GraphBLAS answer. Since
//! the context layer grew its deferred-execution pipeline, fusion is a
//! property of the execution layer: [`spmv_dot_fused`] and
//! [`axpy_norm_fused`] are now **thin wrappers** that record the unfused
//! op pair into a [`Pipeline`](graphblas::Pipeline) on the caller's
//! context and let the generic fusion pass merge it — the one
//! implementation the solver kernels and the ablation bench share.
//!
//! The original hand-written single-pass loops survive as
//! [`spmv_dot_hand`] / [`axpy_norm_hand`]: they are the oracles the tests
//! pin the generic pass against (bit-identical on the sequential backend)
//! and the "hand-fused" arm of the `fusion_ablation` benchmark's three-way
//! comparison (hand-fused vs pipeline-fused vs unfused).

//!
//! Both pairs also exist in **compile-once** form: [`build_spmv_dot_plan`]
//! and [`build_axpy_norm_plan`] record the same op graphs against
//! dimensioned slots and freeze the fused schedule into a reusable
//! [`Plan`](graphblas::Plan); [`spmv_dot_replay`] / [`axpy_norm_replay`]
//! bind fresh buffers into it. The CG driver compiles each kernel once per
//! level (through `GrbHpcg`'s plan cache) and replays it every iteration
//! instead of re-recording and re-fusing the graph.

use graphblas::{CsrMatrix, Ctx, Exec, Plan, Vector};

/// Computes `y = A·x` and returns `⟨x, y⟩`, reading `x` once — the op pair
/// recorded into a pipeline on `exec` and merged by the generic fusion
/// pass. This is the single implementation `GrbHpcg::spmv_dot` and the
/// ablation bench share.
pub fn spmv_dot_fused<E: Exec>(
    exec: Ctx<E>,
    a: &CsrMatrix<f64>,
    x: &Vector<f64>,
    y: &mut Vector<f64>,
) -> f64 {
    let mut pl = exec.pipeline();
    let yh = pl.mxv(a, x).into(y);
    let d = pl.dot(x, yh).result();
    pl.finish().expect("spmv_dot dimensions fixed by caller")[d]
}

/// Computes `r ← r − α·q` and returns `‖r‖²`, streaming `r` once — the op
/// pair recorded into a pipeline on `exec` and merged by the generic
/// fusion pass (shared by `GrbHpcg::axpy_norm2` and the ablation bench).
pub fn axpy_norm_fused<E: Exec>(
    exec: Ctx<E>,
    r: &mut Vector<f64>,
    alpha: f64,
    q: &Vector<f64>,
) -> f64 {
    let mut pl = exec.pipeline();
    let rh = pl.axpy(r, -alpha, q);
    let n = pl.norm2_squared(rh);
    pl.finish().expect("axpy_norm dimensions fixed by caller")[n]
}

/// Compiles the `y = A·x` + `⟨x, y⟩` pair for an `n × n` system into a
/// reusable plan: matrix slot 0 is `A`, input 0 is `x`, output 0 is `y`,
/// scalar 0 the dot. The schedule fuses into one SpMV-with-epilogue sweep,
/// so replaying it is the compile-once form of [`spmv_dot_fused`].
pub fn build_spmv_dot_plan<E: Exec>(exec: Ctx<E>, n: usize) -> Plan<f64, E> {
    let mut pb = exec.plan::<f64>();
    let am = pb.matrix(n, n);
    let xs = pb.input(n);
    let ys = pb.output(n);
    let yh = pb.mxv(am, xs).into(ys);
    pb.dot(xs, yh).result();
    pb.compile()
}

/// Replays a [`build_spmv_dot_plan`] plan: `y = A·x`, returns `⟨x, y⟩` —
/// bit-identical to [`spmv_dot_fused`] on the plan's backend.
pub fn spmv_dot_replay<E: Exec>(
    plan: &Plan<f64, E>,
    a: &CsrMatrix<f64>,
    x: &Vector<f64>,
    y: &mut Vector<f64>,
) -> f64 {
    let mut b = plan.bindings();
    b.bind_matrix(plan.matrix_slot(0), a)
        .bind_input(plan.input_slot(0), x)
        .bind_output(plan.output_slot(0), y);
    let out = plan
        .run(&mut b)
        .expect("spmv_dot dimensions fixed by caller");
    out[plan.scalar(0)]
}

/// Compiles the `r ← r − α·q` + `‖r‖²` pair for length-`n` vectors into a
/// reusable plan: output 0 is `r`, input 0 is `q`, parameter 0 the (already
/// negated) axpy coefficient, scalar 0 the norm.
pub fn build_axpy_norm_plan<E: Exec>(exec: Ctx<E>, n: usize) -> Plan<f64, E> {
    let mut pb = exec.plan::<f64>();
    let rs = pb.output(n);
    let qs = pb.input(n);
    let alpha = pb.param(0.0);
    pb.axpy(rs, alpha, qs);
    pb.norm2_squared(rs);
    pb.compile()
}

/// Replays a [`build_axpy_norm_plan`] plan with [`axpy_norm_fused`]'s
/// convention — `r ← r − α·q`, returns `‖r‖²` — by rebinding the vectors
/// and setting the coefficient parameter to `−α`.
pub fn axpy_norm_replay<E: Exec>(
    plan: &Plan<f64, E>,
    r: &mut Vector<f64>,
    alpha: f64,
    q: &Vector<f64>,
) -> f64 {
    let mut b = plan.bindings();
    b.bind_output(plan.output_slot(0), r)
        .bind_input(plan.input_slot(0), q)
        .set(plan.param(0), -alpha);
    let out = plan
        .run(&mut b)
        .expect("axpy_norm dimensions fixed by caller");
    out[plan.scalar(0)]
}

/// The hand-written `y = A·x` + `⟨x, y⟩` single pass — the ablation's
/// hand-fused oracle the generic pass must match bit for bit.
pub fn spmv_dot_hand(a: &CsrMatrix<f64>, x: &Vector<f64>, y: &mut Vector<f64>) -> f64 {
    let xs = x.as_slice();
    let ys = y.as_mut_slice();
    let mut acc = 0.0;
    for i in 0..a.nrows() {
        let (cols, vals) = a.row(i);
        let mut row = 0.0;
        for (&c, &v) in cols.iter().zip(vals) {
            row += v * xs[c as usize];
        }
        ys[i] = row;
        acc += xs[i] * row;
    }
    acc
}

/// The hand-written `r ← r − α·q` + `‖r‖²` single pass — the ablation's
/// hand-fused oracle the generic pass must match bit for bit.
pub fn axpy_norm_hand(r: &mut Vector<f64>, alpha: f64, q: &Vector<f64>) -> f64 {
    let qs = q.as_slice();
    let rs = r.as_mut_slice();
    let mut acc = 0.0;
    for (ri, &qi) in rs.iter_mut().zip(qs) {
        *ri -= alpha * qi;
        acc += *ri * *ri;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Grid3;
    use crate::problem::build_stencil_matrix;
    use graphblas::{ctx, Sequential};

    #[test]
    fn generic_fusion_matches_hand_oracle_bitwise() {
        let a = build_stencil_matrix(Grid3::cube(6));
        let x = Vector::from_dense((0..a.nrows()).map(|i| ((i % 7) as f64) - 3.0).collect());

        let mut y_hand = Vector::zeros(a.nrows());
        let d_hand = spmv_dot_hand(&a, &x, &mut y_hand);
        let mut y_pipe = Vector::zeros(a.nrows());
        let d_pipe = spmv_dot_fused(ctx::<Sequential>(), &a, &x, &mut y_pipe);
        assert_eq!(y_hand.as_slice(), y_pipe.as_slice());
        assert_eq!(d_hand.to_bits(), d_pipe.to_bits());

        let q = Vector::from_dense((0..1000).map(|i| (i % 5) as f64 - 2.0).collect::<Vec<_>>());
        let mut r_hand =
            Vector::from_dense((0..1000).map(|i| (i % 13) as f64 - 6.0).collect::<Vec<_>>());
        let mut r_pipe = r_hand.clone();
        let n_hand = axpy_norm_hand(&mut r_hand, 0.37, &q);
        let n_pipe = axpy_norm_fused(ctx::<Sequential>(), &mut r_pipe, 0.37, &q);
        assert_eq!(r_hand.as_slice(), r_pipe.as_slice());
        assert_eq!(n_hand.to_bits(), n_pipe.to_bits());
    }

    #[test]
    fn fused_spmv_dot_matches_unfused() {
        let a = build_stencil_matrix(Grid3::cube(6));
        let x = Vector::from_dense((0..a.nrows()).map(|i| ((i % 7) as f64) - 3.0).collect());
        let mut y_f = Vector::zeros(a.nrows());
        let d_f = spmv_dot_fused(ctx::<Sequential>(), &a, &x, &mut y_f);

        let exec = ctx::<Sequential>();
        let mut y_u = Vector::zeros(a.nrows());
        exec.mxv(&a, &x).into(&mut y_u).unwrap();
        let d_u = exec.dot(&x, &y_u).compute().unwrap();

        assert_eq!(y_f.as_slice(), y_u.as_slice());
        assert_eq!(d_f.to_bits(), d_u.to_bits(), "fused pass is bit-identical");
    }

    #[test]
    fn fused_axpy_norm_matches_unfused() {
        let n = 1000;
        let mut r1 = Vector::from_dense((0..n).map(|i| (i % 13) as f64 - 6.0).collect());
        let mut r2 = r1.clone();
        let q = Vector::from_dense((0..n).map(|i| (i % 5) as f64 - 2.0).collect());
        let alpha = 0.37;

        let norm_f = axpy_norm_fused(ctx::<Sequential>(), &mut r1, alpha, &q);

        let exec = ctx::<Sequential>();
        exec.axpy(&mut r2, -alpha, &q).unwrap();
        let norm_u = exec.norm2_squared(&r2).unwrap();

        assert_eq!(r1.as_slice(), r2.as_slice());
        assert_eq!(
            norm_f.to_bits(),
            norm_u.to_bits(),
            "fused pass is bit-identical"
        );
    }

    #[test]
    fn compiled_plans_replay_bit_identical_to_recording() {
        let a = build_stencil_matrix(Grid3::cube(6));
        let n = a.nrows();
        let exec = ctx::<Sequential>();
        let spmv_plan = build_spmv_dot_plan(exec, n);
        let axpy_plan = build_axpy_norm_plan(exec, n);

        // Replay twice with different bindings; each must match the
        // record-every-time wrapper bitwise.
        for seed in [3, 11] {
            let x = Vector::from_dense((0..n).map(|i| ((i % seed) as f64) - 2.0).collect());
            let mut y_replay = Vector::zeros(n);
            let mut y_record = Vector::zeros(n);
            let d_replay = spmv_dot_replay(&spmv_plan, &a, &x, &mut y_replay);
            let d_record = spmv_dot_fused(exec, &a, &x, &mut y_record);
            assert_eq!(y_replay.as_slice(), y_record.as_slice());
            assert_eq!(d_replay.to_bits(), d_record.to_bits());

            let alpha = 0.1 * seed as f64;
            let q = Vector::from_dense((0..n).map(|i| (i % 5) as f64 - 2.0).collect::<Vec<_>>());
            let mut r_replay =
                Vector::from_dense((0..n).map(|i| (i % 13) as f64 - 6.0).collect::<Vec<_>>());
            let mut r_record = r_replay.clone();
            let n_replay = axpy_norm_replay(&axpy_plan, &mut r_replay, alpha, &q);
            let n_record = axpy_norm_fused(exec, &mut r_record, alpha, &q);
            assert_eq!(r_replay.as_slice(), r_record.as_slice());
            assert_eq!(n_replay.to_bits(), n_record.to_bits());
        }
    }

    #[test]
    fn fused_spmv_dot_is_spd_quadratic_form() {
        // x'Ax > 0 for x ≠ 0: A is SPD, and the fused kernel computes
        // exactly that quadratic form.
        let a = build_stencil_matrix(Grid3::cube(4));
        let x = Vector::from_dense((0..a.nrows()).map(|i| (i as f64).sin()).collect());
        let mut y = Vector::zeros(a.nrows());
        assert!(spmv_dot_fused(ctx::<Sequential>(), &a, &x, &mut y) > 0.0);
    }
}
