//! Fused kernels — the nonblocking-execution ablation (paper §VI, §VII-A).
//!
//! The related-work section singles out kernel fusion as the key
//! hand-optimization HPCG vendors apply ("[29] stresses the importance of
//! kernels fusion to improve access locality and save on bandwidth"), and
//! cites the ALP nonblocking extension [32] as the GraphBLAS answer. This
//! module implements the two fusions CG admits without changing numerics
//! *semantics* (the fused dot reduces in a slightly different association
//! order, like any parallel reduction):
//!
//! * [`spmv_dot_fused`] — `y = A·x` and `⟨x, y⟩` in one pass: CG needs
//!   `p·Ap` right after `Ap`, so fusing saves re-streaming `y` and `x`;
//! * [`axpy_norm_fused`] — `r ← r − α·q` and `‖r‖²` in one pass: CG needs
//!   the residual norm right after the update.
//!
//! The `fusion_ablation` bench measures the bandwidth saving; the tests
//! here pin down exact agreement with the unfused pair.

use graphblas::{CsrMatrix, Vector};

/// Computes `y = A·x` and returns `⟨x, y⟩`, reading `x` once.
///
/// Sequential kernel: the fusion story is about memory traffic, and the
/// ablation bench compares like with like (both sides single-threaded).
pub fn spmv_dot_fused(a: &CsrMatrix<f64>, x: &Vector<f64>, y: &mut Vector<f64>) -> f64 {
    let xs = x.as_slice();
    let ys = y.as_mut_slice();
    let mut acc = 0.0;
    for i in 0..a.nrows() {
        let (cols, vals) = a.row(i);
        let mut row = 0.0;
        for (&c, &v) in cols.iter().zip(vals) {
            row += v * xs[c as usize];
        }
        ys[i] = row;
        acc += xs[i] * row;
    }
    acc
}

/// Computes `r ← r − α·q` and returns `‖r‖²`, streaming `r` once.
pub fn axpy_norm_fused(r: &mut Vector<f64>, alpha: f64, q: &Vector<f64>) -> f64 {
    let qs = q.as_slice();
    let rs = r.as_mut_slice();
    let mut acc = 0.0;
    for (ri, &qi) in rs.iter_mut().zip(qs) {
        *ri -= alpha * qi;
        acc += *ri * *ri;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Grid3;
    use crate::problem::build_stencil_matrix;
    use graphblas::{ctx, Sequential};

    #[test]
    fn fused_spmv_dot_matches_unfused() {
        let a = build_stencil_matrix(Grid3::cube(6));
        let x = Vector::from_dense((0..a.nrows()).map(|i| ((i % 7) as f64) - 3.0).collect());
        let mut y_f = Vector::zeros(a.nrows());
        let d_f = spmv_dot_fused(&a, &x, &mut y_f);

        let exec = ctx::<Sequential>();
        let mut y_u = Vector::zeros(a.nrows());
        exec.mxv(&a, &x).into(&mut y_u).unwrap();
        let d_u = exec.dot(&x, &y_u).compute().unwrap();

        assert_eq!(y_f.as_slice(), y_u.as_slice());
        assert!((d_f - d_u).abs() <= 1e-12 * d_u.abs().max(1.0));
    }

    #[test]
    fn fused_axpy_norm_matches_unfused() {
        let n = 1000;
        let mut r1 = Vector::from_dense((0..n).map(|i| (i % 13) as f64 - 6.0).collect());
        let mut r2 = r1.clone();
        let q = Vector::from_dense((0..n).map(|i| (i % 5) as f64 - 2.0).collect());
        let alpha = 0.37;

        let norm_f = axpy_norm_fused(&mut r1, alpha, &q);

        let exec = ctx::<Sequential>();
        exec.axpy(&mut r2, -alpha, &q).unwrap();
        let norm_u = exec.norm2_squared(&r2).unwrap();

        assert_eq!(r1.as_slice(), r2.as_slice());
        assert!((norm_f - norm_u).abs() <= 1e-12 * norm_u.max(1.0));
    }

    #[test]
    fn fused_spmv_dot_is_spd_quadratic_form() {
        // x'Ax > 0 for x ≠ 0: A is SPD, and the fused kernel computes
        // exactly that quadratic form.
        let a = build_stencil_matrix(Grid3::cube(4));
        let x = Vector::from_dense((0..a.nrows()).map(|i| (i as f64).sin()).collect());
        let mut y = Vector::zeros(a.nrows());
        assert!(spmv_dot_fused(&a, &x, &mut y) > 0.0);
    }
}
