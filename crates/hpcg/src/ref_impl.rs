//! **Ref**: HPCG in the reference style (paper §IV).
//!
//! The paper's `Ref` is the official HPCG code base with the RBGS smoother
//! grafted in: plain arrays, direct CSR access, OpenMP loops. This module
//! is that implementation with `Vec<f64>` vectors, `csr_parts()` access
//! (the non-opaque escape hatch the paper notes GraphBLAS forbids, §III-B)
//! and rayon as the fork-join substrate:
//!
//! * restriction copies through the `f2c` index array **in place** — no
//!   matrix, no extra storage (§II-F);
//! * refinement scatters through the same array;
//! * the smoother updates rows of one color in parallel with direct
//!   neighbor reads.
//!
//! Dot products use fixed-size chunking so results are bitwise identical
//! regardless of thread count (HPC determinism discipline; rayon's free
//! reduction tree would not be).

use crate::kernels::Kernels;
use crate::problem::Problem;
use crate::smoother::rbgs_ref;
use crate::timers::{Kernel, KernelTimers};
use crate::util::SyncSlice;
use rayon::prelude::*;

/// Chunk size for deterministic parallel reductions and vector updates.
const CHUNK: usize = 4096;

/// The reference (direct-access) HPCG implementation.
pub struct RefHpcg {
    problem: Problem,
    timers: KernelTimers,
}

impl RefHpcg {
    /// Wraps a generated problem.
    pub fn new(problem: Problem) -> RefHpcg {
        let timers = KernelTimers::new(problem.levels.len());
        RefHpcg { problem, timers }
    }

    /// The underlying problem.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }
}

fn spmv_rows(a: &graphblas::CsrMatrix<f64>, x: &[f64], y: &mut [f64]) {
    let ys = SyncSlice::new(y);
    let n = a.nrows();
    let run = |i: usize| {
        let (cols, vals) = a.row(i);
        let mut acc = 0.0;
        for (&c, &v) in cols.iter().zip(vals) {
            acc += v * x[c as usize];
        }
        // SAFETY: each row index written exactly once.
        unsafe { ys.write(i, acc) };
    };
    if n < CHUNK {
        (0..n).for_each(run);
    } else {
        (0..n).into_par_iter().with_min_len(CHUNK / 8).for_each(run);
    }
}

fn det_dot(x: &[f64], y: &[f64]) -> f64 {
    // Fixed chunking → fixed association order → bitwise-deterministic
    // result at any thread count.
    if x.len() < CHUNK {
        return x.iter().zip(y).map(|(&a, &b)| a * b).sum();
    }
    let partials: Vec<f64> = x
        .par_chunks(CHUNK)
        .zip(y.par_chunks(CHUNK))
        .map(|(cx, cy)| cx.iter().zip(cy).map(|(&a, &b)| a * b).sum::<f64>())
        .collect();
    partials.iter().sum()
}

fn par_map2(w: &mut [f64], x: &[f64], y: &[f64], f: impl Fn(f64, f64) -> f64 + Send + Sync) {
    if w.len() < CHUNK {
        for i in 0..w.len() {
            w[i] = f(x[i], y[i]);
        }
    } else {
        w.par_chunks_mut(CHUNK)
            .zip(x.par_chunks(CHUNK).zip(y.par_chunks(CHUNK)))
            .for_each(|(cw, (cx, cy))| {
                for i in 0..cw.len() {
                    cw[i] = f(cx[i], cy[i]);
                }
            });
    }
}

fn par_update(w: &mut [f64], y: &[f64], f: impl Fn(f64, f64) -> f64 + Send + Sync) {
    if w.len() < CHUNK {
        for i in 0..w.len() {
            w[i] = f(w[i], y[i]);
        }
    } else {
        w.par_chunks_mut(CHUNK)
            .zip(y.par_chunks(CHUNK))
            .for_each(|(cw, cy)| {
                for i in 0..cw.len() {
                    cw[i] = f(cw[i], cy[i]);
                }
            });
    }
}

impl Kernels for RefHpcg {
    type V = Vec<f64>;

    fn levels(&self) -> usize {
        self.problem.levels.len()
    }

    fn n_at(&self, level: usize) -> usize {
        self.problem.levels[level].n()
    }

    fn alloc(&self, level: usize) -> Vec<f64> {
        vec![0.0; self.problem.levels[level].n()]
    }

    fn set_zero(&mut self, _level: usize, v: &mut Vec<f64>) {
        v.iter_mut().for_each(|x| *x = 0.0);
    }

    fn copy(&mut self, _level: usize, src: &Vec<f64>, dst: &mut Vec<f64>) {
        dst.copy_from_slice(src);
    }

    fn spmv(&mut self, level: usize, y: &mut Vec<f64>, x: &Vec<f64>) {
        let a = &self.problem.levels[level].a;
        self.timers.time(level, Kernel::SpMV, || spmv_rows(a, x, y));
    }

    fn dot(&mut self, level: usize, x: &Vec<f64>, y: &Vec<f64>) -> f64 {
        self.timers.time(level, Kernel::Dot, || det_dot(x, y))
    }

    fn waxpby(
        &mut self,
        level: usize,
        w: &mut Vec<f64>,
        alpha: f64,
        x: &Vec<f64>,
        beta: f64,
        y: &Vec<f64>,
    ) {
        self.timers.time(level, Kernel::Waxpby, || {
            par_map2(w, x, y, |a, b| alpha * a + beta * b)
        });
    }

    fn axpy(&mut self, level: usize, x: &mut Vec<f64>, alpha: f64, y: &Vec<f64>) {
        self.timers.time(level, Kernel::Waxpby, || {
            par_update(x, y, |a, b| a + alpha * b)
        });
    }

    fn xpay(&mut self, level: usize, p: &mut Vec<f64>, beta: f64, z: &Vec<f64>) {
        self.timers.time(level, Kernel::Waxpby, || {
            par_update(p, z, |a, b| b + beta * a)
        });
    }

    fn sub_reverse(&mut self, level: usize, w: &mut Vec<f64>, r: &Vec<f64>) {
        self.timers
            .time(level, Kernel::Waxpby, || par_update(w, r, |a, b| b - a));
    }

    fn smooth(&mut self, level: usize, x: &mut Vec<f64>, r: &Vec<f64>) {
        let l = &self.problem.levels[level];
        self.timers.time(level, Kernel::Smoother, || {
            rbgs_ref::rbgs_symmetric(&l.a, l.a_diag.as_slice(), &l.color_classes, r, x);
        });
    }

    fn restrict_to(&mut self, level: usize, rc: &mut Vec<f64>, rf: &Vec<f64>) {
        // Straight injection through the index array, exactly §II-F: no
        // matrix product, just gathers.
        let f2c = &self.problem.levels[level].f2c;
        self.timers.time(level, Kernel::RestrictRefine, || {
            if rc.len() < CHUNK {
                for (i, slot) in rc.iter_mut().enumerate() {
                    *slot = rf[f2c[i] as usize];
                }
            } else {
                rc.par_chunks_mut(CHUNK)
                    .enumerate()
                    .for_each(|(chunk, slots)| {
                        let base = chunk * CHUNK;
                        for (k, slot) in slots.iter_mut().enumerate() {
                            *slot = rf[f2c[base + k] as usize];
                        }
                    });
            }
        });
    }

    fn prolong_add(&mut self, level: usize, zf: &mut Vec<f64>, zc: &Vec<f64>) {
        let f2c = &self.problem.levels[level].f2c;
        self.timers.time(level, Kernel::RestrictRefine, || {
            let zs = SyncSlice::new(zf.as_mut_slice());
            let run = |i: usize| {
                let fi = f2c[i] as usize;
                // SAFETY: f2c is strictly increasing → distinct targets.
                unsafe { zs.write(fi, zs.read(fi) + zc[i]) };
            };
            if zc.len() < CHUNK {
                (0..zc.len()).for_each(run);
            } else {
                (0..zc.len())
                    .into_par_iter()
                    .with_min_len(CHUNK / 8)
                    .for_each(run);
            }
        });
    }

    fn timers_mut(&mut self) -> &mut KernelTimers {
        &mut self.timers
    }

    fn timers(&self) -> &KernelTimers {
        &self.timers
    }

    fn name(&self) -> &'static str {
        "Ref (direct access)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Grid3;
    use crate::problem::RhsVariant;

    fn make() -> RefHpcg {
        let p = Problem::build_with(Grid3::cube(8), 2, RhsVariant::Reference).unwrap();
        RefHpcg::new(p)
    }

    #[test]
    fn spmv_matches_manual() {
        let mut k = make();
        let x = vec![1.0; 512];
        let mut y = k.alloc(0);
        k.spmv(0, &mut y, &x);
        // Row sums of the stencil: 26 - (nnz-1).
        for (i, &yi) in y.iter().enumerate().take(512) {
            let expected = 26.0 - (k.problem().levels[0].a.row_nnz(i) as f64 - 1.0);
            assert!((yi - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn restriction_and_prolongation_roundtrip() {
        let mut k = make();
        let rf: Vec<f64> = (0..512).map(|i| i as f64).collect();
        let mut rc = k.alloc(1);
        k.restrict_to(0, &mut rc, &rf);
        let f2c = k.problem().levels[0].f2c.clone();
        for (i, &v) in rc.iter().enumerate() {
            assert_eq!(v, f2c[i] as f64);
        }
        let mut zf = vec![1.0; 512];
        k.prolong_add(0, &mut zf, &rc);
        for (i, &v) in zf.iter().enumerate() {
            if let Ok(c) = f2c.binary_search(&(i as u32)) {
                assert_eq!(v, 1.0 + rc[c]);
            } else {
                assert_eq!(v, 1.0);
            }
        }
    }

    #[test]
    fn deterministic_dot() {
        let x: Vec<f64> = (0..100_000)
            .map(|i| ((i * 31) % 101) as f64 * 0.125)
            .collect();
        let y: Vec<f64> = (0..100_000)
            .map(|i| ((i * 17) % 97) as f64 * 0.25)
            .collect();
        let a = det_dot(&x, &y);
        let b = det_dot(&x, &y);
        assert_eq!(a, b);
    }

    #[test]
    fn vector_kernels() {
        let mut k = make();
        let x = vec![2.0; 512];
        let y = vec![3.0; 512];
        let mut w = k.alloc(0);
        k.waxpby(0, &mut w, 2.0, &x, 1.0, &y);
        assert!(w.iter().all(|&v| v == 7.0));
        k.axpy(0, &mut w, -1.0, &y);
        assert!(w.iter().all(|&v| v == 4.0));
        k.xpay(0, &mut w, 0.5, &x);
        assert!(w.iter().all(|&v| v == 4.0));
        k.sub_reverse(0, &mut w, &x);
        assert!(w.iter().all(|&v| v == -2.0));
        assert_eq!(k.dot(0, &x, &y), 512.0 * 6.0);
    }
}
