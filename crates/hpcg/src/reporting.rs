//! Official-HPCG-style result reporting.
//!
//! The real benchmark emits a YAML-ish summary (problem dimensions,
//! validation results, per-kernel GFLOP/s, final rating). This module
//! renders the same sections from a [`RunReport`] + [`ValidationReport`],
//! so harness output is recognizable to anyone who has read an
//! `HPCG-Benchmark.yaml`.

use crate::driver::RunReport;
use crate::problem::Problem;
use crate::validation::ValidationReport;
use std::fmt::Write as _;

/// Per-kernel flop totals over a whole run, following the official HPCG
/// accounting (`2·nnz` per spmv-shaped pass, `2n` per dot / vector update).
#[derive(Clone, Copy, Debug, Default)]
pub struct FlopBreakdown {
    /// Dot-product flops.
    pub ddot: f64,
    /// waxpby/axpy flops.
    pub waxpby: f64,
    /// Fine-level spmv flops.
    pub spmv: f64,
    /// Multigrid flops (smoother + residual + transfer).
    pub mg: f64,
}

impl FlopBreakdown {
    /// The official per-iteration flop split for `problem`.
    pub fn per_iteration(problem: &Problem) -> FlopBreakdown {
        let n0 = problem.levels[0].n() as f64;
        let mut b = FlopBreakdown {
            ddot: 3.0 * 2.0 * n0,
            waxpby: 3.0 * 2.0 * n0,
            spmv: 2.0 * problem.levels[0].a.nnz() as f64,
            mg: 0.0,
        };
        for (i, l) in problem.levels.iter().enumerate() {
            let nnz = l.a.nnz() as f64;
            let n = l.n() as f64;
            if i + 1 < problem.levels.len() {
                b.mg += 2.0 * 4.0 * nnz + 2.0 * nnz + 2.0 * n;
            } else {
                b.mg += 4.0 * nnz;
            }
        }
        b
    }

    /// Total flops per iteration.
    pub fn total(&self) -> f64 {
        self.ddot + self.waxpby + self.spmv + self.mg
    }
}

/// Renders the benchmark summary in the official layout.
pub fn render_report(
    problem: &Problem,
    run: &RunReport,
    validation: Option<&ValidationReport>,
) -> String {
    let g0 = problem.levels[0].grid;
    let flops = FlopBreakdown::per_iteration(problem);
    let iters = run.iterations as f64;
    let secs = run.total_secs.max(1e-300);
    let mut out = String::new();
    let _ = writeln!(out, "HPCG-Benchmark (GraphBLAS reproduction)");
    let _ = writeln!(out, "version: 3.1-rs");
    let _ = writeln!(out, "implementation: {}", run.name);
    let _ = writeln!(out, "Global Problem Dimensions:");
    let _ = writeln!(out, "  nx: {}", g0.nx);
    let _ = writeln!(out, "  ny: {}", g0.ny);
    let _ = writeln!(out, "  nz: {}", g0.nz);
    let _ = writeln!(out, "Linear System Information:");
    let _ = writeln!(out, "  Number of Equations: {}", run.n);
    let _ = writeln!(
        out,
        "  Number of Nonzero Terms: {}",
        problem.levels[0].a.nnz()
    );
    let _ = writeln!(out, "Multigrid Information:");
    let _ = writeln!(
        out,
        "  Number of coarse grid levels: {}",
        problem.levels.len() - 1
    );
    for (i, l) in problem.levels.iter().enumerate() {
        let _ = writeln!(out, "  level {} equations: {}", i, l.n());
    }
    if let Some(v) = validation {
        let _ = writeln!(out, "Validation Testing:");
        let _ = writeln!(
            out,
            "  spmv symmetry defect: {:.3e}",
            v.spmv_symmetry_defect
        );
        let _ = writeln!(out, "  MG symmetry defect: {:.3e}", v.mg_symmetry_defect);
        let _ = writeln!(out, "  PCG iterations to 1e-8: {}", v.pcg_iterations);
        let _ = writeln!(
            out,
            "  unpreconditioned CG iterations: {}",
            v.plain_cg_iterations
        );
        let _ = writeln!(
            out,
            "  result: {}",
            if v.passed { "PASSED" } else { "FAILED" }
        );
    }
    let _ = writeln!(out, "Iteration Count Information:");
    let _ = writeln!(
        out,
        "  Total number of optimized iterations: {}",
        run.iterations
    );
    let _ = writeln!(
        out,
        "  Final relative residual: {:.6e}",
        run.relative_residual
    );
    let _ = writeln!(out, "Benchmark Time Summary:");
    let _ = writeln!(out, "  Total: {:.6}", run.total_secs);
    let _ = writeln!(out, "  DDOT: {:.6}", run.dot_secs);
    let _ = writeln!(out, "  WAXPBY: {:.6}", run.waxpby_secs);
    let _ = writeln!(
        out,
        "  SpMV: {:.6}",
        run.levels.first().map(|l| l.spmv_secs).unwrap_or(0.0)
    );
    let mg_secs: f64 = run
        .levels
        .iter()
        .map(|l| {
            l.smoother_secs + l.restrict_refine_secs + if l.level > 0 { l.spmv_secs } else { 0.0 }
        })
        .sum();
    let _ = writeln!(out, "  MG: {:.6}", mg_secs);
    let _ = writeln!(out, "GFLOP/s Summary:");
    let _ = writeln!(
        out,
        "  Raw DDOT: {:.4}",
        flops.ddot * iters / run.dot_secs.max(1e-300) / 1e9
    );
    let _ = writeln!(
        out,
        "  Raw WAXPBY: {:.4}",
        flops.waxpby * iters / run.waxpby_secs.max(1e-300) / 1e9
    );
    let _ = writeln!(
        out,
        "  Raw SpMV: {:.4}",
        flops.spmv * iters
            / run
                .levels
                .first()
                .map(|l| l.spmv_secs)
                .unwrap_or(0.0)
                .max(1e-300)
            / 1e9
    );
    let _ = writeln!(
        out,
        "  Raw MG: {:.4}",
        flops.mg * iters / mg_secs.max(1e-300) / 1e9
    );
    let _ = writeln!(
        out,
        "  Raw Total: {:.4}",
        flops.total() * iters / secs / 1e9
    );
    let _ = writeln!(out, "Final Summary:");
    let _ = writeln!(
        out,
        "  HPCG result is VALID with a GFLOP/s rating of: {:.4}",
        run.gflops
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{flops_per_iteration, run_with_rhs, RunConfig};
    use crate::geometry::Grid3;
    use crate::grb_impl::GrbHpcg;
    use crate::problem::RhsVariant;
    use crate::validation::validate;
    use graphblas::Sequential;

    #[test]
    fn report_contains_official_sections() {
        let p = Problem::build_with(Grid3::cube(8), 2, RhsVariant::Reference).unwrap();
        let fpi = flops_per_iteration(&p);
        let b = p.b.clone();
        let mut k = GrbHpcg::<Sequential>::new(p.clone());
        let (run, _) = run_with_rhs(
            &mut k,
            &b,
            fpi,
            RunConfig {
                iterations: 3,
                preconditioned: true,
            },
        );
        let v = validate(&mut k, &b, 100);
        let text = render_report(&p, &run, Some(&v));
        for section in [
            "Global Problem Dimensions:",
            "Linear System Information:",
            "Multigrid Information:",
            "Validation Testing:",
            "Benchmark Time Summary:",
            "GFLOP/s Summary:",
            "Final Summary:",
        ] {
            assert!(text.contains(section), "missing section {section}\n{text}");
        }
        assert!(text.contains("nx: 8"));
        assert!(text.contains("PASSED"));
    }

    #[test]
    fn flop_breakdown_sums_to_driver_model() {
        let p = Problem::build_with(Grid3::cube(16), 3, RhsVariant::Reference).unwrap();
        let b = FlopBreakdown::per_iteration(&p);
        let total = flops_per_iteration(&p);
        assert!((b.total() - total).abs() < 1e-6, "{} vs {total}", b.total());
        assert!(b.mg > b.spmv, "MG dominates the flop budget");
    }

    #[test]
    fn report_without_validation_skips_section() {
        let p = Problem::build_with(Grid3::cube(8), 2, RhsVariant::Reference).unwrap();
        let fpi = flops_per_iteration(&p);
        let b = p.b.clone();
        let mut k = GrbHpcg::<Sequential>::new(p.clone());
        let (run, _) = run_with_rhs(
            &mut k,
            &b,
            fpi,
            RunConfig {
                iterations: 2,
                preconditioned: true,
            },
        );
        let text = render_report(&p, &run, None);
        assert!(!text.contains("Validation Testing:"));
        assert!(text.contains("Final Summary:"));
    }
}
