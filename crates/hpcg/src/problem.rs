//! HPCG input generation (paper §II-B).
//!
//! Generates the synthetic heat-diffusion problem: the 27-point stencil
//! matrix `A` (diagonal 26, off-diagonals −1 — diagonally dominant and
//! symmetric positive definite), the right-hand side `b`, the initial guess
//! `x⁽⁰⁾ = 0`, and the multigrid hierarchy: each coarser level halves every
//! grid dimension and regenerates the stencil on the coarse grid, exactly
//! as the HPCG reference does (rediscretization, not Galerkin coarsening).
//!
//! Per level the generator also precomputes everything the smoothers and
//! grid-transfer kernels need:
//!
//! * `a_diag` — the diagonal as a vector, because GraphBLAS gives no
//!   constant-time access to matrix entries (§III-A);
//! * the greedy coloring, its index classes (for the reference RBGS) and
//!   its sparse boolean masks (for the GraphBLAS RBGS);
//! * the coarse→fine injection map, as a raw index array (reference), as a
//!   materialized `n/8 × n` CSR restriction matrix (GraphBLAS, §III-B) and
//!   as a matrix-free [`InjectionOperator`] (the §VII-A extension).

use crate::coloring::Coloring;
use crate::geometry::Grid3;
use graphblas::{CsrMatrix, GrbError, InjectionOperator, Vector};

/// Stencil diagonal value (HPCG reference: 26).
pub const DIAG_VALUE: f64 = 26.0;
/// Stencil off-diagonal value (HPCG reference: −1).
pub const OFFDIAG_VALUE: f64 = -1.0;
/// Default number of multigrid levels (HPCG reference: 4).
pub const DEFAULT_LEVELS: usize = 4;

/// Which right-hand side to generate.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum RhsVariant {
    /// The HPCG reference rhs `b_i = 26 − (nnz_i − 1)`, whose exact solution
    /// is the all-ones vector — lets tests check convergence to a known x.
    #[default]
    Reference,
    /// `b = 1`, the variant the paper's §II-B quotes.
    Ones,
}

/// Builds the 27-point stencil matrix on `grid`.
pub fn build_stencil_matrix(grid: Grid3) -> CsrMatrix<f64> {
    let n = grid.len();
    CsrMatrix::from_row_fn(n, n, n * 27, |r, row| {
        grid.for_each_stencil_neighbor(r, |j| {
            row.push((j as u32, if j == r { DIAG_VALUE } else { OFFDIAG_VALUE }));
        });
    })
    .expect("stencil emission yields valid CSR by construction")
}

/// Builds the rhs for `a` under `variant`.
pub fn build_rhs(a: &CsrMatrix<f64>, variant: RhsVariant) -> Vector<f64> {
    match variant {
        RhsVariant::Ones => Vector::filled(a.nrows(), 1.0),
        RhsVariant::Reference => {
            let vals: Vec<f64> = (0..a.nrows())
                .map(|r| DIAG_VALUE - (a.row_nnz(r) as f64 - 1.0))
                .collect();
            Vector::from_dense(vals)
        }
    }
}

/// One level of the multigrid hierarchy.
#[derive(Clone, Debug)]
pub struct MgLevel {
    /// The level's grid geometry.
    pub grid: Grid3,
    /// The system matrix at this level.
    pub a: CsrMatrix<f64>,
    /// The diagonal of `a` as a vector (§III-A).
    pub a_diag: Vector<f64>,
    /// Greedy coloring of `a` (8 colors on HPCG grids).
    pub coloring: Coloring,
    /// Per-color sorted index lists — the reference RBGS iterates these.
    pub color_classes: Vec<Vec<u32>>,
    /// Per-color sparse boolean masks — the GraphBLAS RBGS passes these to
    /// masked `mxv`/`eWiseLambda` (Listing 3).
    pub color_masks: Vec<Vector<bool>>,
    /// Coarse→fine injection index map (`len == coarse n`); empty at the
    /// coarsest level.
    pub f2c: Vec<u32>,
    /// The materialized `n_c × n_f` restriction matrix (GraphBLAS form,
    /// §III-B); `None` at the coarsest level.
    pub restriction: Option<CsrMatrix<f64>>,
    /// The matrix-free injection operator (§VII-A form); `None` at the
    /// coarsest level.
    pub injection: Option<InjectionOperator>,
}

impl MgLevel {
    /// Number of unknowns at this level.
    pub fn n(&self) -> usize {
        self.grid.len()
    }

    /// Whether a coarser level exists below this one.
    pub fn has_coarse(&self) -> bool {
        self.restriction.is_some()
    }
}

/// The generated HPCG problem: multigrid hierarchy plus rhs.
#[derive(Clone, Debug)]
pub struct Problem {
    /// Levels from finest (`levels[0]`) to coarsest.
    pub levels: Vec<MgLevel>,
    /// Right-hand side at the finest level.
    pub b: Vector<f64>,
}

impl Problem {
    /// Generates the full problem with [`DEFAULT_LEVELS`] levels and the
    /// reference rhs.
    pub fn build(grid: Grid3) -> Result<Problem, GrbError> {
        Self::build_with(grid, DEFAULT_LEVELS, RhsVariant::Reference)
    }

    /// Generates with explicit level count and rhs variant.
    ///
    /// Every dimension of `grid` must be divisible by `2^(num_levels-1)` so
    /// each level can coarsen (the HPCG setup requirement).
    pub fn build_with(
        grid: Grid3,
        num_levels: usize,
        rhs: RhsVariant,
    ) -> Result<Problem, GrbError> {
        if num_levels == 0 {
            return Err(GrbError::InvalidInput(
                "need at least one multigrid level".into(),
            ));
        }
        let factor = 1usize << (num_levels - 1);
        if !grid.nx.is_multiple_of(factor)
            || !grid.ny.is_multiple_of(factor)
            || !grid.nz.is_multiple_of(factor)
        {
            return Err(GrbError::InvalidInput(format!(
                "grid {}x{}x{} not divisible by 2^{} for {} levels",
                grid.nx,
                grid.ny,
                grid.nz,
                num_levels - 1,
                num_levels
            )));
        }
        let mut levels = Vec::with_capacity(num_levels);
        let mut g = grid;
        for lvl in 0..num_levels {
            let a = build_stencil_matrix(g);
            let a_diag = a.extract_diagonal();
            let coloring = Coloring::greedy(&a);
            let color_classes = coloring.classes();
            let color_masks = coloring.masks(g.len());
            let (f2c, restriction, injection) = if lvl + 1 < num_levels {
                let coarse = g.coarsen();
                let map: Vec<u32> = (0..coarse.len())
                    .map(|gc| g.fine_index_of_coarse(coarse, gc) as u32)
                    .collect();
                let injection = InjectionOperator::new(g.len(), map.clone())?;
                let restriction = injection.to_csr::<f64>();
                (map, Some(restriction), Some(injection))
            } else {
                (Vec::new(), None, None)
            };
            levels.push(MgLevel {
                grid: g,
                a,
                a_diag,
                coloring,
                color_classes,
                color_masks,
                f2c,
                restriction,
                injection,
            });
            if lvl + 1 < num_levels {
                g = g.coarsen();
            }
        }
        let b = build_rhs(&levels[0].a, rhs);
        Ok(Problem { levels, b })
    }

    /// Number of unknowns at the finest level.
    pub fn n(&self) -> usize {
        self.levels[0].n()
    }

    /// Total stored nonzeroes across all levels.
    pub fn total_nnz(&self) -> usize {
        self.levels.iter().map(|l| l.a.nnz()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stencil_matrix_properties() {
        let grid = Grid3::cube(4);
        let a = build_stencil_matrix(grid);
        assert_eq!(a.nrows(), 64);
        assert!(a.is_symmetric());
        // Row nnz between 8 and 27; interior row has 27.
        for r in 0..a.nrows() {
            let nnz = a.row_nnz(r);
            assert!((8..=27).contains(&nnz));
        }
        assert_eq!(a.row_nnz(grid.index(1, 1, 1)), 27);
        assert_eq!(a.row_nnz(grid.index(0, 0, 0)), 8);
        // Diagonal dominance: 26 > (nnz-1)·1.
        for r in 0..a.nrows() {
            assert_eq!(a.get(r, r), Some(DIAG_VALUE));
        }
    }

    #[test]
    fn reference_rhs_has_all_ones_solution() {
        let grid = Grid3::cube(4);
        let a = build_stencil_matrix(grid);
        let b = build_rhs(&a, RhsVariant::Reference);
        // A·1 must equal b.
        for r in 0..a.nrows() {
            let (_, vals) = a.row(r);
            let row_sum: f64 = vals.iter().sum();
            assert!((row_sum - b.as_slice()[r]).abs() < 1e-12);
        }
    }

    #[test]
    fn ones_rhs() {
        let grid = Grid3::cube(2);
        let a = build_stencil_matrix(grid);
        let b = build_rhs(&a, RhsVariant::Ones);
        assert!(b.as_slice().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn hierarchy_shapes() {
        let p = Problem::build_with(Grid3::cube(16), 4, RhsVariant::Reference).unwrap();
        assert_eq!(p.levels.len(), 4);
        let sizes: Vec<usize> = p.levels.iter().map(MgLevel::n).collect();
        assert_eq!(sizes, vec![4096, 512, 64, 8]);
        for (i, l) in p.levels.iter().enumerate() {
            let is_last = i + 1 == p.levels.len();
            assert_eq!(l.has_coarse(), !is_last);
            assert_eq!(l.f2c.is_empty(), is_last);
            if let Some(r) = &l.restriction {
                assert_eq!(r.nrows(), p.levels[i + 1].n());
                assert_eq!(r.ncols(), l.n());
                assert_eq!(
                    r.nnz(),
                    r.nrows(),
                    "straight injection: one nonzero per row"
                );
                assert!(r.columns_conflict_free());
            }
        }
    }

    #[test]
    fn eight_colors_on_every_level() {
        let p = Problem::build_with(Grid3::cube(16), 3, RhsVariant::Reference).unwrap();
        for l in &p.levels {
            assert_eq!(l.coloring.num_colors, 8, "level {:?}", l.grid);
            assert!(l.coloring.verify(&l.a));
            assert_eq!(l.color_classes.len(), 8);
            assert_eq!(l.color_masks.len(), 8);
        }
    }

    #[test]
    fn diag_vector_matches_matrix() {
        let p = Problem::build_with(Grid3::cube(8), 2, RhsVariant::Reference).unwrap();
        for l in &p.levels {
            for i in 0..l.n() {
                assert_eq!(l.a_diag.get_or_zero(i), DIAG_VALUE);
                assert_eq!(l.a.get(i, i), Some(DIAG_VALUE));
            }
        }
    }

    #[test]
    fn indivisible_grid_rejected() {
        assert!(Problem::build_with(Grid3::new(12, 12, 12), 4, RhsVariant::Reference).is_err());
        assert!(Problem::build_with(Grid3::new(12, 12, 12), 3, RhsVariant::Reference).is_ok());
        assert!(Problem::build_with(Grid3::cube(4), 0, RhsVariant::Reference).is_err());
    }

    #[test]
    fn total_nnz_dominated_by_finest() {
        let p = Problem::build(Grid3::cube(16)).unwrap();
        let finest = p.levels[0].a.nnz();
        assert!(
            finest * 2 > p.total_nnz(),
            "coarser levels add less than the finest level"
        );
        assert_eq!(p.n(), 4096);
    }
}
