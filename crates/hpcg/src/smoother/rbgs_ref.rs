//! Red-Black Gauss-Seidel, reference style (paper §IV, `Ref`).
//!
//! The paper ports its RBGS into the official HPCG code base using OpenMP:
//! colors are processed sequentially to honor inter-color dependencies, and
//! the rows *within* one color — which are mutually independent by the
//! coloring property — update in parallel with direct CSR array access.
//! This module is that implementation with rayon as the fork-join substrate.
//!
//! Numerically, a forward pass here computes exactly what the GraphBLAS
//! version (Listing 3) computes, in the same color order, so the two agree
//! bitwise (asserted in `smoother::tests`).

use crate::util::SyncSlice;
use graphblas::CsrMatrix;
use rayon::prelude::*;

/// Minimum color-class size before parallelizing (coarse levels are tiny).
const PAR_THRESHOLD: usize = 256;

#[inline(always)]
fn update_row(a: &CsrMatrix<f64>, diag: &[f64], r: &[f64], x: &SyncSlice<'_, f64>, i: usize) {
    let (cols, vals) = a.row(i);
    // Accumulate the full row product first, then combine — the same
    // association order as the GraphBLAS `mxv` + `eWiseLambda` pair, so the
    // two implementations agree bitwise.
    let mut acc = 0.0f64;
    // SAFETY: reads cover neighbor values; neighbors of `i` never share
    // `i`'s color, so no concurrent writer touches them, and `i` itself is
    // written only by this call.
    unsafe {
        for (&c, &v) in cols.iter().zip(vals) {
            acc += v * x.read(c as usize);
        }
        let d = diag[i];
        let xi = x.read(i);
        x.write(i, (r[i] - acc + xi * d) / d);
    }
}

/// One forward RBGS pass: colors in ascending order, rows of each color in
/// parallel.
pub fn rbgs_forward(
    a: &CsrMatrix<f64>,
    diag: &[f64],
    classes: &[Vec<u32>],
    r: &[f64],
    x: &mut [f64],
) {
    let xs = SyncSlice::new(x);
    for class in classes {
        run_class(a, diag, r, &xs, class);
    }
}

/// One backward RBGS pass: colors in descending order.
pub fn rbgs_backward(
    a: &CsrMatrix<f64>,
    diag: &[f64],
    classes: &[Vec<u32>],
    r: &[f64],
    x: &mut [f64],
) {
    let xs = SyncSlice::new(x);
    for class in classes.iter().rev() {
        run_class(a, diag, r, &xs, class);
    }
}

/// One symmetric RBGS sweep (forward + backward), the smoother HPCG's MG
/// preconditioner invokes (Listing 1, lines 2 and 10).
pub fn rbgs_symmetric(
    a: &CsrMatrix<f64>,
    diag: &[f64],
    classes: &[Vec<u32>],
    r: &[f64],
    x: &mut [f64],
) {
    rbgs_forward(a, diag, classes, r, x);
    rbgs_backward(a, diag, classes, r, x);
}

fn run_class(a: &CsrMatrix<f64>, diag: &[f64], r: &[f64], xs: &SyncSlice<'_, f64>, class: &[u32]) {
    if class.len() < PAR_THRESHOLD {
        for &i in class {
            update_row(a, diag, r, xs, i as usize);
        }
    } else {
        class.par_iter().with_min_len(PAR_THRESHOLD).for_each(|&i| {
            update_row(a, diag, r, xs, i as usize);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::Coloring;
    use crate::geometry::Grid3;
    use crate::problem::{build_rhs, build_stencil_matrix, RhsVariant};

    fn setup(n: usize) -> (CsrMatrix<f64>, Vec<f64>, Vec<Vec<u32>>, Vec<f64>) {
        let grid = Grid3::cube(n);
        let a = build_stencil_matrix(grid);
        let diag: Vec<f64> = (0..a.nrows()).map(|i| a.get(i, i).unwrap()).collect();
        let coloring = Coloring::greedy(&a);
        let classes = coloring.classes();
        let b = build_rhs(&a, RhsVariant::Reference);
        (a, diag, classes, b.as_slice().to_vec())
    }

    fn residual_norm(a: &CsrMatrix<f64>, b: &[f64], x: &[f64]) -> f64 {
        (0..a.nrows())
            .map(|i| {
                let (cols, vals) = a.row(i);
                let ax: f64 = cols
                    .iter()
                    .zip(vals)
                    .map(|(&c, &v)| v * x[c as usize])
                    .sum();
                (b[i] - ax) * (b[i] - ax)
            })
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn forward_pass_reduces_residual() {
        let (a, diag, classes, b) = setup(6);
        let mut x = vec![0.0; a.nrows()];
        let r0 = residual_norm(&a, &b, &x);
        rbgs_forward(&a, &diag, &classes, &b, &mut x);
        assert!(residual_norm(&a, &b, &x) < r0);
    }

    #[test]
    fn symmetric_sweeps_converge_to_ones() {
        let (a, diag, classes, b) = setup(4);
        let mut x = vec![0.0; a.nrows()];
        for _ in 0..25 {
            rbgs_symmetric(&a, &diag, &classes, &b, &mut x);
        }
        for &v in &x {
            assert!((v - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        // The color schedule fixes the data flow; repeated runs (and thus
        // any thread interleavings within a color) must agree bitwise.
        let (a, diag, classes, b) = setup(8);
        let mut x1 = vec![0.0; a.nrows()];
        let mut x2 = vec![0.0; a.nrows()];
        rbgs_symmetric(&a, &diag, &classes, &b, &mut x1);
        rbgs_symmetric(&a, &diag, &classes, &b, &mut x2);
        assert_eq!(x1, x2);
    }

    #[test]
    fn backward_is_reverse_schedule() {
        // On a 2-color (tridiagonal) system, forward then backward differs
        // from forward twice — order matters, which is the point of GS.
        let n = 16;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.5));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
        }
        let a = CsrMatrix::from_triplets(n, n, &t).unwrap();
        let diag = vec![2.5; n];
        let coloring = Coloring::greedy(&a);
        let classes = coloring.classes();
        let b = vec![1.0; n];
        let mut x_fb = vec![0.0; n];
        rbgs_forward(&a, &diag, &classes, &b, &mut x_fb);
        rbgs_backward(&a, &diag, &classes, &b, &mut x_fb);
        let mut x_ff = vec![0.0; n];
        rbgs_forward(&a, &diag, &classes, &b, &mut x_ff);
        rbgs_forward(&a, &diag, &classes, &b, &mut x_ff);
        assert_ne!(x_fb, x_ff);
    }
}
