//! Red-Black Gauss-Seidel on GraphBLAS primitives (paper Listings 2 & 3).
//!
//! Per color `k`, two primitives off the caller's execution context:
//!
//! 1. a **structural masked `mxv`** computing `s_i = Σ_j A_ij·x_j` only for
//!    `i ∈ C_k` — the structural descriptor makes the kernel follow the
//!    mask's sparsity pattern without reading its boolean values;
//! 2. a **masked `transform`** (the paper's `eWiseLambda`) applying
//!    `x_i ← (r_i − s_i + x_i·A_ii) / A_ii` at the same indices, reading the
//!    separately stored diagonal vector (GraphBLAS offers no constant-time
//!    matrix element access, §III-A).
//!
//! Colors run sequentially (the `for` of Listing 2 line 2); parallelism
//! lives inside each primitive, supplied by the [`Ctx`]'s backend — the
//! exact division of labor ALP's shared-memory backend uses. The context is
//! an explicit parameter (rather than a type-level choice here) so the same
//! smoother text serves compile-time backends and the runtime-dispatched
//! [`DynCtx`](graphblas::DynCtx).

use graphblas::{CsrMatrix, Ctx, Exec, Plan, Result, Vector};

/// One forward RBGS pass (Listing 3's `grb_rbgs_forward`).
///
/// `tmp` is the caller-provided workspace buffer (Listing 3 line 7) — MG
/// reuses one per level to avoid per-sweep allocation.
pub fn rbgs_forward<E: Exec>(
    exec: Ctx<E>,
    a: &CsrMatrix<f64>,
    a_diag: &Vector<f64>,
    colors: &[Vector<bool>],
    r: &Vector<f64>,
    x: &mut Vector<f64>,
    tmp: &mut Vector<f64>,
) -> Result<()> {
    for mask in colors {
        color_step(exec, a, a_diag, mask, r, x, tmp)?;
    }
    Ok(())
}

/// One backward RBGS pass: identical update, colors in reverse.
pub fn rbgs_backward<E: Exec>(
    exec: Ctx<E>,
    a: &CsrMatrix<f64>,
    a_diag: &Vector<f64>,
    colors: &[Vector<bool>],
    r: &Vector<f64>,
    x: &mut Vector<f64>,
    tmp: &mut Vector<f64>,
) -> Result<()> {
    for mask in colors.iter().rev() {
        color_step(exec, a, a_diag, mask, r, x, tmp)?;
    }
    Ok(())
}

/// One symmetric sweep (forward + backward) — the MG smoother call.
pub fn rbgs_symmetric<E: Exec>(
    exec: Ctx<E>,
    a: &CsrMatrix<f64>,
    a_diag: &Vector<f64>,
    colors: &[Vector<bool>],
    r: &Vector<f64>,
    x: &mut Vector<f64>,
    tmp: &mut Vector<f64>,
) -> Result<()> {
    rbgs_forward(exec, a, a_diag, colors, r, x, tmp)?;
    rbgs_backward(exec, a, a_diag, colors, r, x, tmp)
}

/// One symmetric sweep recorded as a single deferred op graph: all
/// `2 × colors` masked `mxv` + masked update pairs go into one
/// [`Pipeline`](graphblas::Pipeline) and execute on `finish`.
///
/// The iterate and the scratch buffer are *bound* (in-out) vectors; each
/// color's update reads the scratch through a [`zip`] stage, the deferred
/// rendering of Listing 3's capture-by-reference lambda. Color steps are
/// not fusable with each other (the masked `mxv` is not element-wise), so
/// the graph executes the exact eager kernels in the exact eager order —
/// bit-identical to [`rbgs_symmetric`] by construction, which the tests
/// below assert.
///
/// [`zip`]: graphblas::pipeline::PipeTransform::zip
pub fn rbgs_symmetric_pipelined<E: Exec>(
    exec: Ctx<E>,
    a: &CsrMatrix<f64>,
    a_diag: &Vector<f64>,
    colors: &[Vector<bool>],
    r: &Vector<f64>,
    x: &mut Vector<f64>,
    tmp: &mut Vector<f64>,
) -> Result<()> {
    let mut pl = exec.pipeline::<f64>();
    let xh = pl.bind(x);
    let th = pl.bind(tmp);
    let rs = r.as_slice();
    let ds = a_diag.as_slice();
    for mask in colors.iter().chain(colors.iter().rev()) {
        pl.mxv(a, xh).mask(mask).structural().into_handle(th);
        pl.transform_at(xh)
            .mask(mask)
            .structural()
            .zip(th)
            .apply(move |i, xi, ti| {
                let d = ds[i];
                *xi = (rs[i] - ti + *xi * d) / d;
            });
    }
    pl.finish()?;
    Ok(())
}

/// Compiles one symmetric sweep over `num_colors` colors into a reusable
/// [`Plan`]: the `2 × num_colors` masked `mxv` + masked zipped-update
/// pairs of [`rbgs_symmetric_pipelined`], recorded once against slots.
///
/// Slot layout (what [`rbgs_symmetric_replay`] binds): matrix 0 is `A`,
/// inputs 0/1 are `r` and the diagonal, outputs 0/1 are the iterate and
/// the scratch buffer, and mask `k` is the `k`-th color of the
/// forward-then-backward order. The per-index update reads its operands
/// through zip sources — the slot-based rendering of the pipeline
/// version's capture-by-reference lambda — with identical arithmetic, so
/// replay stays bit-identical to both other forms.
pub fn build_rbgs_plan<E: Exec>(exec: Ctx<E>, n: usize, num_colors: usize) -> Plan<f64, E> {
    let mut pb = exec.plan::<f64>();
    let am = pb.matrix(n, n);
    let rs = pb.input(n);
    let ds = pb.input(n);
    let xs = pb.output(n);
    let ts = pb.output(n);
    for _ in 0..2 * num_colors {
        let m = pb.mask(n);
        pb.mxv(am, xs).mask(m).structural().into(ts);
        pb.transform(xs)
            .mask(m)
            .structural()
            .zip(ts)
            .zip(rs)
            .zip(ds)
            .apply(|_i, xi, ti, ri, di| *xi = (ri - ti + *xi * di) / di);
    }
    pb.compile()
}

/// Replays a [`build_rbgs_plan`] plan — one symmetric sweep, bit-identical
/// to [`rbgs_symmetric`]. `colors` must have the color count the plan was
/// compiled for.
pub fn rbgs_symmetric_replay<E: Exec>(
    plan: &Plan<f64, E>,
    a: &CsrMatrix<f64>,
    a_diag: &Vector<f64>,
    colors: &[Vector<bool>],
    r: &Vector<f64>,
    x: &mut Vector<f64>,
    tmp: &mut Vector<f64>,
) -> Result<()> {
    let mut b = plan.bindings();
    b.bind_matrix(plan.matrix_slot(0), a)
        .bind_input(plan.input_slot(0), r)
        .bind_input(plan.input_slot(1), a_diag)
        .bind_output(plan.output_slot(0), x)
        .bind_output(plan.output_slot(1), tmp);
    for (k, mask) in colors.iter().chain(colors.iter().rev()).enumerate() {
        b.bind_mask(plan.mask_slot(k), mask);
    }
    plan.run(&mut b)?;
    Ok(())
}

#[inline]
#[allow(clippy::too_many_arguments)]
fn color_step<E: Exec>(
    exec: Ctx<E>,
    a: &CsrMatrix<f64>,
    a_diag: &Vector<f64>,
    mask: &Vector<bool>,
    r: &Vector<f64>,
    x: &mut Vector<f64>,
    tmp: &mut Vector<f64>,
) -> Result<()> {
    // Listing 3 line 11: tmp⟨mask, structural⟩ = A ⊕.⊗ x.
    exec.mxv(a, &*x).mask(mask).structural().into(tmp)?;
    // Listing 3 lines 13-17: the masked lambda update.
    let rs = r.as_slice();
    let ts = tmp.as_slice();
    let ds = a_diag.as_slice();
    exec.transform(x).mask(mask).structural().apply(|i, xi| {
        let d = ds[i];
        *xi = (rs[i] - ts[i] + *xi * d) / d;
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::Coloring;
    use crate::geometry::Grid3;
    use crate::problem::{build_rhs, build_stencil_matrix, RhsVariant};
    use graphblas::{ctx, BackendKind, DynCtx, Sequential};

    fn setup(n: usize) -> (CsrMatrix<f64>, Vector<f64>, Vec<Vector<bool>>, Vector<f64>) {
        let grid = Grid3::cube(n);
        let a = build_stencil_matrix(grid);
        let diag = a.extract_diagonal();
        let coloring = Coloring::greedy(&a);
        let masks = coloring.masks(a.nrows());
        let b = build_rhs(&a, RhsVariant::Reference);
        (a, diag, masks, b)
    }

    fn residual_norm(a: &CsrMatrix<f64>, b: &Vector<f64>, x: &Vector<f64>) -> f64 {
        let (bs, xs) = (b.as_slice(), x.as_slice());
        (0..a.nrows())
            .map(|i| {
                let (cols, vals) = a.row(i);
                let ax: f64 = cols
                    .iter()
                    .zip(vals)
                    .map(|(&c, &v)| v * xs[c as usize])
                    .sum();
                (bs[i] - ax) * (bs[i] - ax)
            })
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn forward_reduces_residual() {
        let (a, diag, masks, b) = setup(6);
        let mut x = Vector::zeros(a.nrows());
        let mut tmp = Vector::zeros(a.nrows());
        let r0 = residual_norm(&a, &b, &x);
        rbgs_forward(ctx::<Sequential>(), &a, &diag, &masks, &b, &mut x, &mut tmp).unwrap();
        assert!(residual_norm(&a, &b, &x) < r0);
    }

    #[test]
    fn symmetric_converges_to_ones() {
        let (a, diag, masks, b) = setup(4);
        let mut x = Vector::zeros(a.nrows());
        let mut tmp = Vector::zeros(a.nrows());
        for _ in 0..25 {
            rbgs_symmetric(ctx::<Sequential>(), &a, &diag, &masks, &b, &mut x, &mut tmp).unwrap();
        }
        for &v in x.as_slice() {
            assert!((v - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn runtime_context_matches_static_backend() {
        // The same smoother text on a DynCtx must be bit-identical per
        // backend (the smoother is deterministic on either backend).
        let (a, diag, masks, b) = setup(4);
        let mut x_static = Vector::zeros(a.nrows());
        let mut x_dyn = Vector::zeros(a.nrows());
        let mut tmp = Vector::zeros(a.nrows());
        rbgs_symmetric(
            ctx::<Sequential>(),
            &a,
            &diag,
            &masks,
            &b,
            &mut x_static,
            &mut tmp,
        )
        .unwrap();
        let dyn_ctx = DynCtx::runtime(BackendKind::Sequential);
        rbgs_symmetric(dyn_ctx, &a, &diag, &masks, &b, &mut x_dyn, &mut tmp).unwrap();
        assert_eq!(x_static.as_slice(), x_dyn.as_slice());
    }

    #[test]
    fn pipelined_sweep_is_bit_identical_to_eager() {
        let (a, diag, masks, b) = setup(6);
        for kind in [BackendKind::Sequential, BackendKind::Parallel] {
            let exec = DynCtx::runtime(kind);
            let mut x_eager = Vector::from_dense((0..a.nrows()).map(|i| (i % 3) as f64).collect());
            let mut x_pipe = x_eager.clone();
            let mut tmp_eager = Vector::zeros(a.nrows());
            let mut tmp_pipe = Vector::zeros(a.nrows());
            for _ in 0..3 {
                rbgs_symmetric(exec, &a, &diag, &masks, &b, &mut x_eager, &mut tmp_eager).unwrap();
                rbgs_symmetric_pipelined(exec, &a, &diag, &masks, &b, &mut x_pipe, &mut tmp_pipe)
                    .unwrap();
            }
            assert_eq!(x_eager.as_slice(), x_pipe.as_slice(), "backend {kind}");
            assert_eq!(tmp_eager.as_slice(), tmp_pipe.as_slice(), "backend {kind}");
        }
    }

    #[test]
    fn compiled_sweep_replays_bit_identical_to_eager() {
        let (a, diag, masks, b) = setup(6);
        let exec = ctx::<Sequential>();
        let plan = build_rbgs_plan(exec, a.nrows(), masks.len());
        let mut x_eager = Vector::from_dense((0..a.nrows()).map(|i| (i % 3) as f64).collect());
        let mut x_plan = x_eager.clone();
        let mut tmp_eager = Vector::zeros(a.nrows());
        let mut tmp_plan = Vector::zeros(a.nrows());
        for _ in 0..3 {
            rbgs_symmetric(exec, &a, &diag, &masks, &b, &mut x_eager, &mut tmp_eager).unwrap();
            rbgs_symmetric_replay(&plan, &a, &diag, &masks, &b, &mut x_plan, &mut tmp_plan)
                .unwrap();
        }
        assert_eq!(x_eager.as_slice(), x_plan.as_slice());
        assert_eq!(tmp_eager.as_slice(), tmp_plan.as_slice());
    }

    #[test]
    fn color_masks_required_to_cover_all_rows_for_full_smoothing() {
        // Smoothing with only 4 of the 8 masks leaves the other rows at
        // their initial value — masked semantics touch nothing else.
        let (a, diag, masks, b) = setup(4);
        let mut x = Vector::zeros(a.nrows());
        let mut tmp = Vector::zeros(a.nrows());
        rbgs_forward(
            ctx::<Sequential>(),
            &a,
            &diag,
            &masks[..4],
            &b,
            &mut x,
            &mut tmp,
        )
        .unwrap();
        let untouched: usize = masks[4..]
            .iter()
            .flat_map(|m| m.pattern().unwrap().iter())
            .filter(|&&i| x.as_slice()[i as usize] == 0.0)
            .count();
        let expected: usize = masks[4..].iter().map(|m| m.nnz()).sum();
        assert_eq!(untouched, expected);
    }
}
