//! Red-Black Gauss-Seidel on GraphBLAS primitives (paper Listings 2 & 3).
//!
//! Per color `k`, two primitives:
//!
//! 1. a **structural masked `mxv`** computing `s_i = Σ_j A_ij·x_j` only for
//!    `i ∈ C_k` — the structural descriptor makes the kernel follow the
//!    mask's sparsity pattern without reading its boolean values;
//! 2. a **masked `eWiseLambda`** applying
//!    `x_i ← (r_i − s_i + x_i·A_ii) / A_ii` at the same indices, reading the
//!    separately stored diagonal vector (GraphBLAS offers no constant-time
//!    matrix element access, §III-A).
//!
//! Colors run sequentially (the `for` of Listing 2 line 2); parallelism
//! lives inside each primitive, supplied by the [`Backend`] type parameter
//! — the exact division of labor ALP's shared-memory backend uses.

use graphblas::{
    ewise_lambda, mxv, Backend, CsrMatrix, Descriptor, PlusTimes, Result, Vector,
};

/// One forward RBGS pass (Listing 3's `grb_rbgs_forward`).
///
/// `tmp` is the caller-provided workspace buffer (Listing 3 line 7) — MG
/// reuses one per level to avoid per-sweep allocation.
pub fn rbgs_forward<B: Backend>(
    a: &CsrMatrix<f64>,
    a_diag: &Vector<f64>,
    colors: &[Vector<bool>],
    r: &Vector<f64>,
    x: &mut Vector<f64>,
    tmp: &mut Vector<f64>,
) -> Result<()> {
    for mask in colors {
        color_step::<B>(a, a_diag, mask, r, x, tmp)?;
    }
    Ok(())
}

/// One backward RBGS pass: identical update, colors in reverse.
pub fn rbgs_backward<B: Backend>(
    a: &CsrMatrix<f64>,
    a_diag: &Vector<f64>,
    colors: &[Vector<bool>],
    r: &Vector<f64>,
    x: &mut Vector<f64>,
    tmp: &mut Vector<f64>,
) -> Result<()> {
    for mask in colors.iter().rev() {
        color_step::<B>(a, a_diag, mask, r, x, tmp)?;
    }
    Ok(())
}

/// One symmetric sweep (forward + backward) — the MG smoother call.
pub fn rbgs_symmetric<B: Backend>(
    a: &CsrMatrix<f64>,
    a_diag: &Vector<f64>,
    colors: &[Vector<bool>],
    r: &Vector<f64>,
    x: &mut Vector<f64>,
    tmp: &mut Vector<f64>,
) -> Result<()> {
    rbgs_forward::<B>(a, a_diag, colors, r, x, tmp)?;
    rbgs_backward::<B>(a, a_diag, colors, r, x, tmp)
}

#[inline]
fn color_step<B: Backend>(
    a: &CsrMatrix<f64>,
    a_diag: &Vector<f64>,
    mask: &Vector<bool>,
    r: &Vector<f64>,
    x: &mut Vector<f64>,
    tmp: &mut Vector<f64>,
) -> Result<()> {
    // Listing 3 line 11: tmp⟨mask, structural⟩ = A ⊕.⊗ x.
    mxv::<f64, PlusTimes, B>(tmp, Some(mask), Descriptor::STRUCTURAL, a, &*x, PlusTimes)?;
    // Listing 3 lines 13-17: the masked lambda update.
    let rs = r.as_slice();
    let ts = tmp.as_slice();
    let ds = a_diag.as_slice();
    ewise_lambda::<f64, B, _>(x, Some(mask), Descriptor::STRUCTURAL, |i, xi| {
        let d = ds[i];
        *xi = (rs[i] - ts[i] + *xi * d) / d;
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::Coloring;
    use crate::geometry::Grid3;
    use crate::problem::{build_rhs, build_stencil_matrix, RhsVariant};
    use graphblas::Sequential;

    fn setup(n: usize) -> (CsrMatrix<f64>, Vector<f64>, Vec<Vector<bool>>, Vector<f64>) {
        let grid = Grid3::cube(n);
        let a = build_stencil_matrix(grid);
        let diag = a.extract_diagonal();
        let coloring = Coloring::greedy(&a);
        let masks = coloring.masks(a.nrows());
        let b = build_rhs(&a, RhsVariant::Reference);
        (a, diag, masks, b)
    }

    fn residual_norm(a: &CsrMatrix<f64>, b: &Vector<f64>, x: &Vector<f64>) -> f64 {
        let (bs, xs) = (b.as_slice(), x.as_slice());
        (0..a.nrows())
            .map(|i| {
                let (cols, vals) = a.row(i);
                let ax: f64 = cols.iter().zip(vals).map(|(&c, &v)| v * xs[c as usize]).sum();
                (bs[i] - ax) * (bs[i] - ax)
            })
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn forward_reduces_residual() {
        let (a, diag, masks, b) = setup(6);
        let mut x = Vector::zeros(a.nrows());
        let mut tmp = Vector::zeros(a.nrows());
        let r0 = residual_norm(&a, &b, &x);
        rbgs_forward::<Sequential>(&a, &diag, &masks, &b, &mut x, &mut tmp).unwrap();
        assert!(residual_norm(&a, &b, &x) < r0);
    }

    #[test]
    fn symmetric_converges_to_ones() {
        let (a, diag, masks, b) = setup(4);
        let mut x = Vector::zeros(a.nrows());
        let mut tmp = Vector::zeros(a.nrows());
        for _ in 0..25 {
            rbgs_symmetric::<Sequential>(&a, &diag, &masks, &b, &mut x, &mut tmp).unwrap();
        }
        for &v in x.as_slice() {
            assert!((v - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn color_masks_required_to_cover_all_rows_for_full_smoothing() {
        // Smoothing with only 4 of the 8 masks leaves the other rows at
        // their initial value — masked semantics touch nothing else.
        let (a, diag, masks, b) = setup(4);
        let mut x = Vector::zeros(a.nrows());
        let mut tmp = Vector::zeros(a.nrows());
        rbgs_forward::<Sequential>(&a, &diag, &masks[..4], &b, &mut x, &mut tmp).unwrap();
        let untouched: usize = masks[4..]
            .iter()
            .flat_map(|m| m.pattern().unwrap().iter())
            .filter(|&&i| x.as_slice()[i as usize] == 0.0)
            .count();
        let expected: usize = masks[4..].iter().map(|m| m.nnz()).sum();
        assert_eq!(untouched, expected);
    }
}
