//! The classic symmetric Gauss-Seidel smoother (paper §II-E).
//!
//! Each update solves the `i`-th equation of `A·x = r` using the freshest
//! neighbor values (Equation 1). On the HPCG grid the dependencies chain
//! through every preceding index, making this kernel inherently sequential
//! — the bottleneck that motivates the RBGS replacement. It is retained as
//! the numerical baseline, and because HPCG's validation compares smoother
//! variants through the symmetry test.

use graphblas::CsrMatrix;

/// One forward Gauss-Seidel sweep: `x_i ← (r_i − Σ_{j≠i} A_ij·x_j) / A_ii`
/// for `i = 0..n`.
pub fn gs_forward(a: &CsrMatrix<f64>, diag: &[f64], r: &[f64], x: &mut [f64]) {
    let n = a.nrows();
    for i in 0..n {
        let (cols, vals) = a.row(i);
        let mut sum = r[i];
        for (&c, &v) in cols.iter().zip(vals) {
            sum -= v * x[c as usize];
        }
        // The loop above subtracted the diagonal term too; add it back
        // (HPCG reference formulation).
        sum += diag[i] * x[i];
        x[i] = sum / diag[i];
    }
}

/// One backward sweep: same update, `i = n−1..0`.
pub fn gs_backward(a: &CsrMatrix<f64>, diag: &[f64], r: &[f64], x: &mut [f64]) {
    for i in (0..a.nrows()).rev() {
        let (cols, vals) = a.row(i);
        let mut sum = r[i];
        for (&c, &v) in cols.iter().zip(vals) {
            sum -= v * x[c as usize];
        }
        sum += diag[i] * x[i];
        x[i] = sum / diag[i];
    }
}

/// One symmetric sweep: forward then backward (§II-E).
pub fn sgs_symmetric(a: &CsrMatrix<f64>, diag: &[f64], r: &[f64], x: &mut [f64]) {
    gs_forward(a, diag, r, x);
    gs_backward(a, diag, r, x);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Grid3;
    use crate::problem::{build_rhs, build_stencil_matrix, RhsVariant};

    fn residual_norm(a: &CsrMatrix<f64>, b: &[f64], x: &[f64]) -> f64 {
        (0..a.nrows())
            .map(|i| {
                let (cols, vals) = a.row(i);
                let ax: f64 = cols
                    .iter()
                    .zip(vals)
                    .map(|(&c, &v)| v * x[c as usize])
                    .sum();
                (b[i] - ax) * (b[i] - ax)
            })
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn solves_diagonal_system_in_one_sweep() {
        // With a diagonal matrix GS is exact after one forward sweep.
        let a = CsrMatrix::from_triplets(3, 3, &[(0, 0, 2.0), (1, 1, 4.0), (2, 2, 8.0)]).unwrap();
        let diag = [2.0, 4.0, 8.0];
        let r = [2.0, 8.0, 24.0];
        let mut x = [0.0; 3];
        gs_forward(&a, &diag, &r, &mut x);
        assert_eq!(x, [1.0, 2.0, 3.0]);
    }

    #[test]
    fn forward_sweep_uses_fresh_values() {
        // Lower-triangular system: forward GS is exact forward substitution.
        // [2 0; -1 2] x = [2; 0] → x = [1, 0.5].
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (1, 0, -1.0), (1, 1, 2.0)]).unwrap();
        let mut x = [0.0; 2];
        gs_forward(&a, &[2.0, 2.0], &[2.0, 0.0], &mut x);
        assert_eq!(x, [1.0, 0.5]);
    }

    #[test]
    fn backward_sweep_is_backward_substitution() {
        // Upper-triangular: backward GS exact.
        // [2 -1; 0 2] x = [0; 2] → x = [0.5, 1].
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (0, 1, -1.0), (1, 1, 2.0)]).unwrap();
        let mut x = [0.0; 2];
        gs_backward(&a, &[2.0, 2.0], &[0.0, 2.0], &mut x);
        assert_eq!(x, [0.5, 1.0]);
    }

    #[test]
    fn repeated_sweeps_converge_on_hpcg_matrix() {
        let grid = Grid3::cube(4);
        let a = build_stencil_matrix(grid);
        let diag: Vec<f64> = (0..a.nrows()).map(|i| a.get(i, i).unwrap()).collect();
        let b = build_rhs(&a, RhsVariant::Reference);
        let mut x = vec![0.0; a.nrows()];
        let mut prev = residual_norm(&a, b.as_slice(), &x);
        for _ in 0..20 {
            sgs_symmetric(&a, &diag, b.as_slice(), &mut x);
            let now = residual_norm(&a, b.as_slice(), &x);
            assert!(now <= prev + 1e-12, "residual must not increase");
            prev = now;
        }
        // Exact solution of the reference rhs is all-ones.
        for &v in &x {
            assert!((v - 1.0).abs() < 1e-6, "converged to ones, got {v}");
        }
    }
}
