//! Gauss-Seidel smoothers.
//!
//! Three implementations of the multigrid smoother, matching the paper's
//! cast of characters:
//!
//! * [`sgs`] — the classic **symmetric Gauss-Seidel** of the unmodified
//!   HPCG reference: inherently sequential on the HPCG grid (§II-E). Kept
//!   as the numerical baseline and for the symmetry validation.
//! * [`rbgs_ref`] — **Red-Black (multi-color) Gauss-Seidel, reference
//!   style**: direct CSR array access, rows of one color updated in
//!   parallel (the paper's modified `Ref`, §IV).
//! * [`rbgs_grb`] — the same RBGS expressed in **GraphBLAS primitives**:
//!   per color, a structural masked `mxv` followed by a masked
//!   `eWiseLambda` (Listings 2 and 3).
//!
//! `rbgs_ref` and `rbgs_grb` execute the identical update schedule, so
//! their outputs agree bit-for-bit — the cross-implementation tests below
//! assert it.

pub mod rbgs_grb;
pub mod rbgs_ref;
pub mod sgs;

#[cfg(test)]
mod tests {
    use crate::geometry::Grid3;
    use crate::problem::{build_rhs, Problem, RhsVariant};
    use graphblas::{ctx, Parallel, Sequential, Vector};

    /// Forward-then-backward RBGS through both implementations must agree
    /// exactly: same schedule, same arithmetic, different programming model.
    #[test]
    fn ref_and_grb_rbgs_agree_bitwise() {
        let p = Problem::build_with(Grid3::cube(8), 1, RhsVariant::Reference).unwrap();
        let l = &p.levels[0];
        let r = build_rhs(&l.a, RhsVariant::Reference);

        let mut x_ref = vec![0.0f64; l.n()];
        super::rbgs_ref::rbgs_symmetric(
            &l.a,
            l.a_diag.as_slice(),
            &l.color_classes,
            r.as_slice(),
            &mut x_ref,
        );

        let mut x_grb = Vector::zeros(l.n());
        let mut tmp = Vector::zeros(l.n());
        super::rbgs_grb::rbgs_symmetric(
            ctx::<Sequential>(),
            &l.a,
            &l.a_diag,
            &l.color_masks,
            &r,
            &mut x_grb,
            &mut tmp,
        )
        .unwrap();
        assert_eq!(x_ref.as_slice(), x_grb.as_slice());
    }

    #[test]
    fn parallel_grb_matches_sequential_grb() {
        let p = Problem::build_with(Grid3::cube(8), 1, RhsVariant::Reference).unwrap();
        let l = &p.levels[0];
        let r = build_rhs(&l.a, RhsVariant::Reference);
        let mut x_seq = Vector::zeros(l.n());
        let mut x_par = Vector::zeros(l.n());
        let mut tmp = Vector::zeros(l.n());
        super::rbgs_grb::rbgs_symmetric(
            ctx::<Sequential>(),
            &l.a,
            &l.a_diag,
            &l.color_masks,
            &r,
            &mut x_seq,
            &mut tmp,
        )
        .unwrap();
        super::rbgs_grb::rbgs_symmetric(
            ctx::<Parallel>(),
            &l.a,
            &l.a_diag,
            &l.color_masks,
            &r,
            &mut x_par,
            &mut tmp,
        )
        .unwrap();
        assert_eq!(x_seq.as_slice(), x_par.as_slice());
    }

    /// All three smoothers must *reduce the residual* of A·x = r from a
    /// zero initial guess (they are smoothers of the same system even
    /// though SGS and RBGS walk different orders).
    #[test]
    fn all_smoothers_reduce_residual() {
        let p = Problem::build_with(Grid3::cube(8), 1, RhsVariant::Reference).unwrap();
        let l = &p.levels[0];
        let r = build_rhs(&l.a, RhsVariant::Reference);
        let res0 = residual_norm(&l.a, r.as_slice(), &vec![0.0; l.n()]);

        let mut x_sgs = vec![0.0f64; l.n()];
        super::sgs::sgs_symmetric(&l.a, l.a_diag.as_slice(), r.as_slice(), &mut x_sgs);
        assert!(residual_norm(&l.a, r.as_slice(), &x_sgs) < 0.5 * res0);

        let mut x_rb = vec![0.0f64; l.n()];
        super::rbgs_ref::rbgs_symmetric(
            &l.a,
            l.a_diag.as_slice(),
            &l.color_classes,
            r.as_slice(),
            &mut x_rb,
        );
        assert!(residual_norm(&l.a, r.as_slice(), &x_rb) < 0.5 * res0);
    }

    fn residual_norm(a: &graphblas::CsrMatrix<f64>, b: &[f64], x: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (i, &bi) in b.iter().enumerate().take(a.nrows()) {
            let (cols, vals) = a.row(i);
            let ax: f64 = cols
                .iter()
                .zip(vals)
                .map(|(&c, &v)| v * x[c as usize])
                .sum();
            acc += (bi - ax) * (bi - ax);
        }
        acc.sqrt()
    }
}
