//! Kernel timing instrumentation for the breakdown figures.
//!
//! Figures 4-7 of the paper report, per multigrid level, the percentage of
//! total execution time spent in the RBGS smoother and in
//! restriction/refinement. [`KernelTimers`] accumulates wall-clock per
//! `(level, kernel)` cell; the breakdown harnesses query it after a run.

use std::time::Instant;

/// The kernels HPCG's breakdown distinguishes.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Gauss-Seidel smoother sweeps (SGS or RBGS).
    Smoother,
    /// Restriction + refinement (grid transfer).
    RestrictRefine,
    /// Sparse matrix–vector products (both CG's and MG's residual spmv).
    SpMV,
    /// Dot products.
    Dot,
    /// Vector updates (waxpby / axpy).
    Waxpby,
}

/// All kernels, for iteration in reports.
pub const ALL_KERNELS: [Kernel; 5] = [
    Kernel::Smoother,
    Kernel::RestrictRefine,
    Kernel::SpMV,
    Kernel::Dot,
    Kernel::Waxpby,
];

/// Accumulated seconds per `(mg level, kernel)` cell.
///
/// Level `0` is the finest grid. Kernel time at a level excludes coarser
/// levels (matching the paper's "runtime in a given level does not include
/// coarser levels", §V-C) because each call is timed at its own level.
#[derive(Clone, Debug)]
pub struct KernelTimers {
    levels: usize,
    /// `secs[level][kernel as usize]`.
    secs: Vec<[f64; 5]>,
    run_start: Option<Instant>,
    total_secs: f64,
}

fn kernel_slot(k: Kernel) -> usize {
    match k {
        Kernel::Smoother => 0,
        Kernel::RestrictRefine => 1,
        Kernel::SpMV => 2,
        Kernel::Dot => 3,
        Kernel::Waxpby => 4,
    }
}

impl KernelTimers {
    /// Timers for a hierarchy of `levels` grids.
    pub fn new(levels: usize) -> KernelTimers {
        KernelTimers {
            levels,
            secs: vec![[0.0; 5]; levels],
            run_start: None,
            total_secs: 0.0,
        }
    }

    /// Number of levels tracked.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Times `f`, charging its duration to `(level, kernel)`, and returns
    /// its result.
    #[inline]
    pub fn time<R>(&mut self, level: usize, kernel: Kernel, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let out = f();
        self.secs[level][kernel_slot(kernel)] += t0.elapsed().as_secs_f64();
        out
    }

    /// Adds externally measured seconds to a cell (used by the distributed
    /// simulator, whose "time" is modeled rather than measured).
    pub fn add_secs(&mut self, level: usize, kernel: Kernel, secs: f64) {
        self.secs[level][kernel_slot(kernel)] += secs;
    }

    /// Marks the start of a whole benchmark run.
    pub fn start_run(&mut self) {
        self.run_start = Some(Instant::now());
    }

    /// Marks the end of a run, accumulating total wall-clock.
    pub fn end_run(&mut self) {
        if let Some(t0) = self.run_start.take() {
            self.total_secs += t0.elapsed().as_secs_f64();
        }
    }

    /// Sets the run total directly (modeled-time runs).
    pub fn set_total_secs(&mut self, secs: f64) {
        self.total_secs = secs;
    }

    /// Total run seconds (measured via start/end or set directly).
    pub fn total_secs(&self) -> f64 {
        self.total_secs
    }

    /// Seconds accumulated in `(level, kernel)`.
    pub fn secs(&self, level: usize, kernel: Kernel) -> f64 {
        self.secs[level][kernel_slot(kernel)]
    }

    /// Seconds in `kernel` summed over all levels.
    pub fn secs_all_levels(&self, kernel: Kernel) -> f64 {
        (0..self.levels).map(|l| self.secs(l, kernel)).sum()
    }

    /// Percentage of total run time in `(level, kernel)` — the bar heights
    /// of Figs 4-7.
    pub fn percent(&self, level: usize, kernel: Kernel) -> f64 {
        if self.total_secs <= 0.0 {
            0.0
        } else {
            100.0 * self.secs(level, kernel) / self.total_secs
        }
    }

    /// Resets every cell and the total.
    pub fn reset(&mut self) {
        self.secs.iter_mut().for_each(|row| *row = [0.0; 5]);
        self.total_secs = 0.0;
        self.run_start = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_cell() {
        let mut t = KernelTimers::new(2);
        let v = t.time(0, Kernel::Smoother, || {
            std::thread::sleep(std::time::Duration::from_millis(2));
            42
        });
        assert_eq!(v, 42);
        assert!(t.secs(0, Kernel::Smoother) > 0.0);
        assert_eq!(t.secs(1, Kernel::Smoother), 0.0);
        assert_eq!(t.secs(0, Kernel::Dot), 0.0);
    }

    #[test]
    fn add_secs_and_percent() {
        let mut t = KernelTimers::new(3);
        t.add_secs(0, Kernel::Smoother, 0.5);
        t.add_secs(1, Kernel::RestrictRefine, 0.25);
        t.set_total_secs(1.0);
        assert_eq!(t.percent(0, Kernel::Smoother), 50.0);
        assert_eq!(t.percent(1, Kernel::RestrictRefine), 25.0);
        assert_eq!(t.percent(2, Kernel::Smoother), 0.0);
        assert_eq!(t.secs_all_levels(Kernel::Smoother), 0.5);
    }

    #[test]
    fn run_total_measured() {
        let mut t = KernelTimers::new(1);
        t.start_run();
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.end_run();
        assert!(t.total_secs() >= 0.002);
    }

    #[test]
    fn percent_zero_total_is_zero() {
        let t = KernelTimers::new(1);
        assert_eq!(t.percent(0, Kernel::Smoother), 0.0);
    }

    #[test]
    fn reset_clears() {
        let mut t = KernelTimers::new(1);
        t.add_secs(0, Kernel::Dot, 1.0);
        t.set_total_secs(2.0);
        t.reset();
        assert_eq!(t.secs(0, Kernel::Dot), 0.0);
        assert_eq!(t.total_secs(), 0.0);
    }
}
