//! h-relation sizes of the collective patterns HPCG's two distributed
//! designs use.
//!
//! These closed forms are what Table I tabulates; the distributed simulator
//! uses the *recorded* exchanges instead, and the `table1_bsp_costs` harness
//! checks the two agree.

/// h-relation (bytes) of an allgather where each of `p` nodes contributes
/// `local_elems` elements of `elem_bytes` bytes: every node sends its part
/// to `p − 1` peers and receives the rest of the vector.
///
/// This is the pre-`mxv` exchange of the 1D block-cyclic ALP backend:
/// `h = (p−1)·(n/p)·sizeof(T) ≈ n·sizeof(T)` (Table I, right column).
pub fn allgather_h_bytes(p: usize, local_elems: usize, elem_bytes: usize) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    ((p - 1) * local_elems * elem_bytes) as f64
}

/// h-relation (bytes) of a scalar allreduce implemented as direct exchange:
/// every node sends its partial to all peers (`p − 1` words out and in).
///
/// CG's dot products need one of these per iteration; it is `Θ(p)` ≪ the
/// vector exchanges, hence the Θ(1) synchronization row of Table I.
pub fn allreduce_h_bytes(p: usize, elem_bytes: usize) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    ((p - 1) * elem_bytes) as f64
}

/// h-relation (bytes) of a halo exchange where a node sends/receives
/// `halo_elems` boundary elements: the Ref design's pre-`mxv` cost,
/// `Θ(∛(n²/p²))` (Table I, left column).
pub fn halo_h_bytes(halo_elems: usize, elem_bytes: usize) -> f64 {
    (halo_elems * elem_bytes) as f64
}

/// The 2D block-distribution communication bound the paper's §VII-B(ii)
/// quotes: `n/p·(√p − 1)` elements, partially alleviating the 1D cost.
pub fn block2d_h_elems(n: usize, p: usize) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    (n as f64 / p as f64) * ((p as f64).sqrt() - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allgather_approaches_n() {
        let n = 1_000_000usize;
        for p in [2usize, 4, 8] {
            let h = allgather_h_bytes(p, n / p, 8);
            let ratio = h / (n as f64 * 8.0);
            assert!((ratio - (p as f64 - 1.0) / p as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn single_node_exchanges_nothing() {
        assert_eq!(allgather_h_bytes(1, 100, 8), 0.0);
        assert_eq!(allreduce_h_bytes(1, 8), 0.0);
        assert_eq!(block2d_h_elems(100, 1), 0.0);
    }

    #[test]
    fn allreduce_is_tiny() {
        assert!(allreduce_h_bytes(8, 8) < allgather_h_bytes(8, 1000, 8) / 100.0);
    }

    #[test]
    fn ordering_matches_table1() {
        // For fixed n and growing p: halo (3D) ≪ 2D block ≪ 1D allgather.
        let n = 4096 * 4096; // large enough to separate the regimes
        let p = 16;
        let s = ((n as f64).powf(2.0 / 3.0) / (p as f64).powf(2.0 / 3.0)) as usize;
        let halo = halo_h_bytes(s, 8);
        let b2d = block2d_h_elems(n, p) * 8.0;
        let b1d = allgather_h_bytes(p, n / p, 8);
        assert!(halo < b2d, "halo {halo} < 2D {b2d}");
        assert!(b2d < b1d, "2D {b2d} < 1D {b1d}");
    }
}
