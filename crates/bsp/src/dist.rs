//! Data distributions across the simulated cluster.
//!
//! Two layouts matter to the paper:
//!
//! * [`BlockCyclic1D`] — ALP/GraphBLAS's hybrid backend assumes a 1D grid of
//!   nodes and splits matrix rows and vectors block-cyclically (§IV). The
//!   layout is domain-oblivious: before an `mxv`, every node needs the whole
//!   input vector → `Θ(n(p−1)/p)` communication (Table I).
//! * [`Geometric3D`] — the HPCG reference splits the physical `nx×ny×nz`
//!   grid into `px×py×pz` boxes (§II-G). Only 2D halos are exchanged →
//!   `Θ(∛(n²/p²))` communication.
//!
//! Both implement [`Distribution`], the owner/local-index algebra the
//! distributed HPCG simulator drives.

use crate::factor::factor3d;

/// An assignment of `0..global_len` to `nodes` with local renumbering.
pub trait Distribution {
    /// Number of nodes in the cluster.
    fn nodes(&self) -> usize;
    /// Global number of elements distributed.
    fn global_len(&self) -> usize;
    /// The node owning global index `g`.
    fn owner(&self, g: usize) -> usize;
    /// Number of elements local to `node`.
    fn local_len(&self, node: usize) -> usize;
    /// Maps a global index to `(owner, local index)`.
    fn to_local(&self, g: usize) -> (usize, usize);
    /// Maps `(node, local index)` back to the global index.
    fn to_global(&self, node: usize, local: usize) -> usize;
}

/// 1D block-cyclic distribution with block size `block`.
///
/// Global index `g` lives in block `g / block`, owned by node
/// `(g / block) mod p`. ALP's hybrid backend default.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BlockCyclic1D {
    n: usize,
    p: usize,
    block: usize,
}

impl BlockCyclic1D {
    /// Distributes `n` elements over `p` nodes in blocks of `block`.
    pub fn new(n: usize, p: usize, block: usize) -> BlockCyclic1D {
        assert!(p > 0 && block > 0);
        BlockCyclic1D { n, p, block }
    }

    /// The block size.
    pub fn block(&self) -> usize {
        self.block
    }
}

impl Distribution for BlockCyclic1D {
    fn nodes(&self) -> usize {
        self.p
    }

    fn global_len(&self) -> usize {
        self.n
    }

    fn owner(&self, g: usize) -> usize {
        debug_assert!(g < self.n);
        (g / self.block) % self.p
    }

    fn local_len(&self, node: usize) -> usize {
        // Full cycles plus the partial tail cycle.
        let full_cycles = self.n / (self.block * self.p);
        let mut len = full_cycles * self.block;
        let tail_start = full_cycles * self.block * self.p;
        let tail = self.n - tail_start;
        // Within the tail, node k holds min(block, max(0, tail - k·block)).
        let offset = node * self.block;
        if tail > offset {
            len += (tail - offset).min(self.block);
        }
        len
    }

    fn to_local(&self, g: usize) -> (usize, usize) {
        let blk = g / self.block;
        let node = blk % self.p;
        let local = (blk / self.p) * self.block + g % self.block;
        (node, local)
    }

    fn to_global(&self, node: usize, local: usize) -> usize {
        let cycle = local / self.block;
        (cycle * self.p + node) * self.block + local % self.block
    }
}

/// 3D geometric block distribution over an `nx×ny×nz` point grid.
///
/// Global index order follows HPCG: `g = x + nx·(y + ny·z)`. Each node owns
/// the box of points whose coordinates fall in its `sx×sy×sz` sub-grid.
/// Requires each dimension to divide evenly — the same restriction the HPCG
/// reference imposes on its process grid.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Geometric3D {
    /// Grid points per dimension.
    pub nx: usize,
    /// Grid points per dimension.
    pub ny: usize,
    /// Grid points per dimension.
    pub nz: usize,
    /// Process grid.
    pub px: usize,
    /// Process grid.
    pub py: usize,
    /// Process grid.
    pub pz: usize,
}

impl Geometric3D {
    /// Builds the distribution, choosing the optimal process factorization
    /// for `p` nodes via [`factor3d`]. Panics if the factors do not divide
    /// the grid (mirroring the reference's setup assertion).
    pub fn new(nx: usize, ny: usize, nz: usize, p: usize) -> Geometric3D {
        let (px, py, pz) = factor3d(p, nx, ny, nz);
        Self::with_process_grid(nx, ny, nz, px, py, pz)
    }

    /// Builds with an explicit process grid.
    pub fn with_process_grid(
        nx: usize,
        ny: usize,
        nz: usize,
        px: usize,
        py: usize,
        pz: usize,
    ) -> Geometric3D {
        assert!(
            nx.is_multiple_of(px) && ny.is_multiple_of(py) && nz.is_multiple_of(pz),
            "process grid {px}x{py}x{pz} must divide point grid {nx}x{ny}x{nz}"
        );
        Geometric3D {
            nx,
            ny,
            nz,
            px,
            py,
            pz,
        }
    }

    /// Local box dimensions `(sx, sy, sz)`.
    pub fn local_dims(&self) -> (usize, usize, usize) {
        (self.nx / self.px, self.ny / self.py, self.nz / self.pz)
    }

    /// Decomposes a global index into grid coordinates.
    #[inline]
    pub fn coords(&self, g: usize) -> (usize, usize, usize) {
        let x = g % self.nx;
        let y = (g / self.nx) % self.ny;
        let z = g / (self.nx * self.ny);
        (x, y, z)
    }

    /// Composes grid coordinates into a global index.
    #[inline]
    pub fn index(&self, x: usize, y: usize, z: usize) -> usize {
        x + self.nx * (y + self.ny * z)
    }

    /// The node-grid coordinates of `node`.
    #[inline]
    pub fn node_coords(&self, node: usize) -> (usize, usize, usize) {
        let ix = node % self.px;
        let iy = (node / self.px) % self.py;
        let iz = node / (self.px * self.py);
        (ix, iy, iz)
    }

    /// The half-open coordinate ranges of the box owned by `node`.
    pub fn node_box(
        &self,
        node: usize,
    ) -> (
        std::ops::Range<usize>,
        std::ops::Range<usize>,
        std::ops::Range<usize>,
    ) {
        let (sx, sy, sz) = self.local_dims();
        let (ix, iy, iz) = self.node_coords(node);
        (
            ix * sx..(ix + 1) * sx,
            iy * sy..(iy + 1) * sy,
            iz * sz..(iz + 1) * sz,
        )
    }
}

impl Distribution for Geometric3D {
    fn nodes(&self) -> usize {
        self.px * self.py * self.pz
    }

    fn global_len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    fn owner(&self, g: usize) -> usize {
        let (sx, sy, sz) = self.local_dims();
        let (x, y, z) = self.coords(g);
        (x / sx) + self.px * ((y / sy) + self.py * (z / sz))
    }

    fn local_len(&self, _node: usize) -> usize {
        let (sx, sy, sz) = self.local_dims();
        sx * sy * sz
    }

    fn to_local(&self, g: usize) -> (usize, usize) {
        let (sx, sy, sz) = self.local_dims();
        let (x, y, z) = self.coords(g);
        let node = (x / sx) + self.px * ((y / sy) + self.py * (z / sz));
        let local = (x % sx) + sx * ((y % sy) + sy * (z % sz));
        (node, local)
    }

    fn to_global(&self, node: usize, local: usize) -> usize {
        let (sx, sy, sz) = self.local_dims();
        let (ix, iy, iz) = self.node_coords(node);
        let lx = local % sx;
        let ly = (local / sx) % sy;
        let lz = local / (sx * sy);
        debug_assert!(lz < sz);
        self.index(ix * sx + lx, iy * sy + ly, iz * sz + lz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<D: Distribution>(d: &D) {
        let mut seen = vec![false; d.global_len()];
        for node in 0..d.nodes() {
            for local in 0..d.local_len(node) {
                let g = d.to_global(node, local);
                assert!(g < d.global_len());
                assert!(!seen[g], "index {g} owned twice");
                seen[g] = true;
                assert_eq!(d.owner(g), node);
                assert_eq!(d.to_local(g), (node, local));
            }
        }
        assert!(seen.iter().all(|&s| s), "every index owned exactly once");
    }

    #[test]
    fn block_cyclic_roundtrip_even() {
        roundtrip(&BlockCyclic1D::new(64, 4, 4));
    }

    #[test]
    fn block_cyclic_roundtrip_ragged() {
        // 50 elements, 4 nodes, block 4: tail of 2 blocks + 2 leftovers.
        roundtrip(&BlockCyclic1D::new(50, 4, 4));
        roundtrip(&BlockCyclic1D::new(7, 3, 2));
        roundtrip(&BlockCyclic1D::new(1, 5, 3));
    }

    #[test]
    fn block_cyclic_ownership_pattern() {
        let d = BlockCyclic1D::new(16, 2, 2);
        // blocks: [0,1]→n0, [2,3]→n1, [4,5]→n0, ...
        assert_eq!(d.owner(0), 0);
        assert_eq!(d.owner(2), 1);
        assert_eq!(d.owner(4), 0);
        assert_eq!(d.owner(15), 1);
        assert_eq!(d.local_len(0), 8);
        assert_eq!(d.local_len(1), 8);
    }

    #[test]
    fn block_cyclic_local_len_sums_to_n() {
        for (n, p, b) in [(100, 3, 7), (64, 4, 4), (5, 8, 2), (1000, 7, 13)] {
            let d = BlockCyclic1D::new(n, p, b);
            let total: usize = (0..p).map(|k| d.local_len(k)).sum();
            assert_eq!(total, n, "n={n} p={p} b={b}");
        }
    }

    #[test]
    fn geometric_roundtrip() {
        roundtrip(&Geometric3D::new(8, 8, 8, 8));
        roundtrip(&Geometric3D::new(4, 8, 16, 4));
        roundtrip(&Geometric3D::new(6, 6, 6, 1));
    }

    #[test]
    fn geometric_boxes_are_contiguous_in_space() {
        let d = Geometric3D::new(8, 8, 8, 8); // 2x2x2 process grid
        let (bx, by, bz) = d.node_box(0);
        assert_eq!((bx.start, by.start, bz.start), (0, 0, 0));
        assert_eq!((bx.end, by.end, bz.end), (4, 4, 4));
        // Opposite corner node.
        let last = d.nodes() - 1;
        let (bx, by, bz) = d.node_box(last);
        assert_eq!((bx.start, by.start, bz.start), (4, 4, 4));
    }

    #[test]
    fn geometric_coords_inverse() {
        let d = Geometric3D::new(4, 5, 6, 1);
        for g in 0..d.global_len() {
            let (x, y, z) = d.coords(g);
            assert_eq!(d.index(x, y, z), g);
        }
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn geometric_rejects_non_dividing_grid() {
        let _ = Geometric3D::with_process_grid(7, 8, 8, 2, 1, 1);
    }

    #[test]
    fn prime_node_count_still_works() {
        // 7 nodes → pencil decomposition along one axis that divides.
        let d = Geometric3D::new(14, 14, 14, 7);
        assert_eq!(d.nodes(), 7);
        roundtrip(&d);
    }
}
