//! Superstep cost accounting.
//!
//! A distributed algorithm runs as a sequence of supersteps. Within a step,
//! each simulated node reports its local work (`flops`, `bytes` touched) and
//! its sends; closing the step computes the BSP time
//!
//! ```text
//! t_step = max_i w_i + g · max_i h_i + l
//! ```
//!
//! with `h_i = max(bytes sent by i, bytes received by i)` — the standard
//! h-relation. Steps carry a [`KernelClass`] so harnesses can report the
//! per-kernel breakdown of Figs 4-7, and an `overlap` flag modeling the
//! reference HPCG's `MPI_Irecv/Isend` compute/communication overlap
//! (paper §IV: Ref overlaps, blocking GraphBLAS semantics cannot).

use crate::machine::MachineParams;
use serde::{Deserialize, Serialize};

/// Which HPCG kernel a superstep belongs to, for breakdown reporting.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelClass {
    /// Sparse matrix–vector product in the CG loop.
    SpMV,
    /// Dot products / reductions.
    Dot,
    /// Vector updates (waxpby / axpy).
    Waxpby,
    /// The smoother (SGS or RBGS).
    Smoother,
    /// Restriction or prolongation between multigrid levels.
    RestrictRefine,
    /// Everything else (setup, exchange scaffolding).
    Other,
}

/// The cost of one closed superstep.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StepCost {
    /// Kernel attribution.
    pub class: KernelClass,
    /// Multigrid level (0 = finest) if applicable.
    pub mg_level: Option<usize>,
    /// `max_i w_i` in seconds.
    pub compute_secs: f64,
    /// `g · max_i h_i` in seconds.
    pub comm_secs: f64,
    /// Barrier latency `l` in seconds.
    pub sync_secs: f64,
    /// `max_i h_i` in bytes (diagnostic; drives Table I).
    pub h_bytes: f64,
    /// Whether compute and communication were overlapped.
    pub overlap: bool,
    /// Measured wall-clock seconds attributed to this step (0 until a
    /// timed execution calls [`CostTracker::attribute_measured`]). This is
    /// the cross-check column next to the modeled [`total_secs`]
    /// (`StepCost::total_secs`).
    pub measured_secs: f64,
    /// Measured seconds of exchange time hidden behind local compute by
    /// split-phase execution (0 until a sharded run calls
    /// [`CostTracker::attribute_overlap`]). Always ≤ `measured_secs`; the
    /// §VII "overlap win" the reports surface.
    pub overlap_hidden_secs: f64,
}

impl StepCost {
    /// Wall-clock contribution of this step.
    pub fn total_secs(&self) -> f64 {
        if self.overlap {
            self.compute_secs.max(self.comm_secs) + self.sync_secs
        } else {
            self.compute_secs + self.comm_secs + self.sync_secs
        }
    }
}

/// Records per-node work and traffic for the open superstep, and the cost
/// history of closed ones.
#[derive(Clone, Debug)]
pub struct CostTracker {
    params: MachineParams,
    p: usize,
    // Open-step state.
    flops: Vec<f64>,
    local_bytes: Vec<f64>,
    sent: Vec<f64>,
    received: Vec<f64>,
    // Closed steps.
    steps: Vec<StepCost>,
}

impl CostTracker {
    /// A tracker for `p` nodes with machine parameters `params`.
    pub fn new(p: usize, params: MachineParams) -> CostTracker {
        assert!(p > 0, "a cluster needs at least one node");
        CostTracker {
            params,
            p,
            flops: vec![0.0; p],
            local_bytes: vec![0.0; p],
            sent: vec![0.0; p],
            received: vec![0.0; p],
            steps: Vec::new(),
        }
    }

    /// Number of simulated nodes.
    pub fn nodes(&self) -> usize {
        self.p
    }

    /// The machine parameters in use.
    pub fn params(&self) -> MachineParams {
        self.params
    }

    /// Records local work on `node`: `flops` operations over `bytes` of traffic.
    pub fn record_compute(&mut self, node: usize, flops: f64, bytes: f64) {
        self.flops[node] += flops;
        self.local_bytes[node] += bytes;
    }

    /// Records a point-to-point message of `bytes` from `from` to `to`.
    /// Self-sends are free (local copies are part of local work).
    pub fn record_send(&mut self, from: usize, to: usize, bytes: f64) {
        if from == to {
            return;
        }
        self.sent[from] += bytes;
        self.received[to] += bytes;
    }

    /// Records a broadcast-style send of `bytes` from `from` to every other node.
    pub fn record_send_all(&mut self, from: usize, bytes_per_peer: f64) {
        for to in 0..self.p {
            self.record_send(from, to, bytes_per_peer);
        }
    }

    /// Closes the current superstep, attributing it to `class` /
    /// `mg_level`, and returns its cost. `overlap` applies the
    /// `max(compute, comm)` model (Ref's nonblocking exchange).
    pub fn end_superstep(
        &mut self,
        class: KernelClass,
        mg_level: Option<usize>,
        overlap: bool,
    ) -> StepCost {
        self.end_step(class, mg_level, overlap, true)
    }

    /// Closes a *local* step: same accounting but no barrier latency.
    /// Models purely local kernels (waxpby, the reference's in-place grid
    /// transfers) that synchronize with nobody.
    pub fn end_local_step(&mut self, class: KernelClass, mg_level: Option<usize>) -> StepCost {
        self.end_step(class, mg_level, false, false)
    }

    fn end_step(
        &mut self,
        class: KernelClass,
        mg_level: Option<usize>,
        overlap: bool,
        barrier: bool,
    ) -> StepCost {
        let mut w = 0.0f64;
        let mut h = 0.0f64;
        for i in 0..self.p {
            w = w.max(self.params.compute_time(self.flops[i], self.local_bytes[i]));
            h = h.max(self.sent[i].max(self.received[i]));
        }
        let cost = StepCost {
            class,
            mg_level,
            compute_secs: w,
            comm_secs: self.params.comm_time(h),
            sync_secs: if barrier { self.params.l_secs } else { 0.0 },
            h_bytes: h,
            overlap,
            measured_secs: 0.0,
            overlap_hidden_secs: 0.0,
        };
        self.steps.push(cost);
        self.flops.iter_mut().for_each(|v| *v = 0.0);
        self.local_bytes.iter_mut().for_each(|v| *v = 0.0);
        self.sent.iter_mut().for_each(|v| *v = 0.0);
        self.received.iter_mut().for_each(|v| *v = 0.0);
        cost
    }

    /// All closed steps, in order.
    pub fn steps(&self) -> &[StepCost] {
        &self.steps
    }

    /// Distributes `secs` of measured wall-clock over the steps closed
    /// since index `from` (a value previously read off `steps().len()`),
    /// proportionally to their modeled `total_secs`. One timed kernel may
    /// close more than one superstep (a fused SpMV+dot closes the sweep
    /// and the reduction), so attribution splits the measurement along the
    /// model's own ratio; if the model says zero everywhere the split is
    /// even. No-op when no steps closed.
    pub fn attribute_measured(&mut self, from: usize, secs: f64) {
        let from = from.min(self.steps.len());
        let closed = &mut self.steps[from..];
        if closed.is_empty() {
            return;
        }
        let modeled: f64 = closed.iter().map(StepCost::total_secs).sum();
        if modeled > 0.0 {
            for s in closed {
                s.measured_secs = secs * s.total_secs() / modeled;
            }
        } else {
            let even = secs / closed.len() as f64;
            for s in closed {
                s.measured_secs = even;
            }
        }
    }

    /// Distributes `secs` of measured *hidden* exchange time — the part of
    /// an input exchange that split-phase execution overlapped with local
    /// compute — over the steps closed since index `from`, proportionally
    /// to their communication volume (only exchange-bearing steps can hide
    /// exchange time). No-op when nothing was communicated or no steps
    /// closed.
    pub fn attribute_overlap(&mut self, from: usize, secs: f64) {
        if secs <= 0.0 {
            return;
        }
        let from = from.min(self.steps.len());
        let closed = &mut self.steps[from..];
        let h: f64 = closed.iter().map(|s| s.h_bytes).sum();
        if h <= 0.0 {
            return;
        }
        for s in closed {
            s.overlap_hidden_secs += secs * s.h_bytes / h;
        }
    }

    /// Total measured seconds attributed to closed steps.
    pub fn total_measured_secs(&self) -> f64 {
        self.steps.iter().map(|s| s.measured_secs).sum()
    }

    /// Total measured exchange seconds hidden behind compute.
    pub fn total_overlap_hidden_secs(&self) -> f64 {
        self.steps.iter().map(|s| s.overlap_hidden_secs).sum()
    }

    /// Total modeled wall-clock of all closed steps.
    pub fn total_secs(&self) -> f64 {
        self.steps.iter().map(StepCost::total_secs).sum()
    }

    /// Total communicated bytes (sum over steps of the max-per-node
    /// h-relation — the quantity Table I bounds).
    pub fn total_h_bytes(&self) -> f64 {
        self.steps.iter().map(|s| s.h_bytes).sum()
    }

    /// Number of closed supersteps (the paper's Θ(1)-per-mxv sync count).
    pub fn superstep_count(&self) -> usize {
        self.steps.len()
    }

    /// Seconds spent in steps of `class`, optionally filtered by MG level.
    pub fn secs_in(&self, class: KernelClass, mg_level: Option<usize>) -> f64 {
        self.steps
            .iter()
            .filter(|s| s.class == class && (mg_level.is_none() || s.mg_level == mg_level))
            .map(StepCost::total_secs)
            .sum()
    }

    /// Clears the step history (open-step state must already be closed).
    pub fn reset(&mut self) {
        self.steps.clear();
    }

    /// Drains and returns the closed steps, leaving the history empty —
    /// how a harness moves recorded cost into its own attribution buckets.
    pub fn take_steps(&mut self) -> Vec<StepCost> {
        std::mem::take(&mut self.steps)
    }

    /// Appends an externally recorded closed step (e.g. one drained from a
    /// shared tracker via [`take_steps`](CostTracker::take_steps)).
    pub fn import_step(&mut self, step: StepCost) {
        self.steps.push(step);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(p: usize) -> CostTracker {
        CostTracker::new(p, MachineParams::arm_cluster())
    }

    #[test]
    fn compute_takes_max_over_nodes() {
        let mut t = tracker(3);
        t.record_compute(0, 1e9, 0.0);
        t.record_compute(1, 4e9, 0.0);
        t.record_compute(2, 2e9, 0.0);
        let c = t.end_superstep(KernelClass::SpMV, None, false);
        let p = MachineParams::arm_cluster();
        assert!((c.compute_secs - 4e9 / p.flops_per_sec).abs() < 1e-15);
        assert_eq!(c.h_bytes, 0.0);
    }

    #[test]
    fn h_relation_is_max_of_in_and_out() {
        let mut t = tracker(3);
        // Node 0 sends 100 to 1 and 2; node 1 receives 100; node 2 receives 100.
        t.record_send(0, 1, 100.0);
        t.record_send(0, 2, 100.0);
        let c = t.end_superstep(KernelClass::Other, None, false);
        assert_eq!(c.h_bytes, 200.0, "sender's fan-out dominates");
    }

    #[test]
    fn self_sends_free() {
        let mut t = tracker(2);
        t.record_send(1, 1, 1e9);
        let c = t.end_superstep(KernelClass::Other, None, false);
        assert_eq!(c.h_bytes, 0.0);
    }

    #[test]
    fn measured_attribution_splits_along_the_model() {
        let mut t = tracker(2);
        t.record_compute(0, 1e9, 0.0);
        t.end_local_step(KernelClass::SpMV, None);
        let mark = t.steps().len();
        // Two steps close after the mark, modeled 3:1.
        t.record_compute(0, 3e9, 0.0);
        t.end_local_step(KernelClass::SpMV, None);
        t.record_compute(0, 1e9, 0.0);
        t.end_local_step(KernelClass::Dot, None);
        t.attribute_measured(mark, 8.0);
        let steps = t.steps();
        assert_eq!(steps[0].measured_secs, 0.0, "pre-mark steps untouched");
        assert!((steps[1].measured_secs - 6.0).abs() < 1e-12);
        assert!((steps[2].measured_secs - 2.0).abs() < 1e-12);
        assert!((t.total_measured_secs() - 8.0).abs() < 1e-12);
        // A mark past the end is a no-op, not a panic.
        t.attribute_measured(99, 1.0);
    }

    #[test]
    fn overlap_attribution_lands_on_exchange_steps_only() {
        let mut t = tracker(2);
        let mark = t.steps().len();
        t.record_send(0, 1, 300.0);
        t.end_superstep(KernelClass::SpMV, None, false);
        t.end_local_step(KernelClass::Waxpby, None);
        t.record_send(0, 1, 100.0);
        t.end_superstep(KernelClass::Dot, None, false);
        t.attribute_overlap(mark, 4.0);
        let steps = t.steps();
        assert!((steps[0].overlap_hidden_secs - 3.0).abs() < 1e-12);
        assert_eq!(steps[1].overlap_hidden_secs, 0.0, "no exchange to hide");
        assert!((steps[2].overlap_hidden_secs - 1.0).abs() < 1e-12);
        assert!((t.total_overlap_hidden_secs() - 4.0).abs() < 1e-12);
        // Zero or comm-free windows are no-ops, not panics.
        t.attribute_overlap(mark, 0.0);
        t.attribute_overlap(99, 1.0);
        assert!((t.total_overlap_hidden_secs() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn measured_attribution_splits_evenly_when_model_is_zero() {
        let mut t = tracker(2);
        let mark = t.steps().len();
        t.end_local_step(KernelClass::Waxpby, None);
        t.end_local_step(KernelClass::Waxpby, None);
        t.attribute_measured(mark, 4.0);
        assert_eq!(t.steps()[0].measured_secs, 2.0);
        assert_eq!(t.steps()[1].measured_secs, 2.0);
    }

    #[test]
    fn overlap_takes_max() {
        let p = MachineParams::arm_cluster();
        let mut t = tracker(2);
        t.record_compute(0, 0.0, p.mem_bw_bytes_per_sec); // exactly 1 s compute
        t.record_send(0, 1, 0.5 / p.g_secs_per_byte); // 0.5 s comm
        let c = t.end_superstep(KernelClass::Smoother, Some(0), true);
        assert!(
            (c.total_secs() - (1.0 + p.l_secs)).abs() < 1e-9,
            "overlap hides comm"
        );

        let mut t2 = tracker(2);
        t2.record_compute(0, 0.0, p.mem_bw_bytes_per_sec);
        t2.record_send(0, 1, 0.5 / p.g_secs_per_byte);
        let c2 = t2.end_superstep(KernelClass::Smoother, Some(0), false);
        assert!(
            (c2.total_secs() - (1.5 + p.l_secs)).abs() < 1e-9,
            "blocking adds comm"
        );
    }

    #[test]
    fn steps_accumulate_and_filter() {
        let mut t = tracker(2);
        t.record_compute(0, 1e9, 0.0);
        t.end_superstep(KernelClass::SpMV, Some(0), false);
        t.record_compute(0, 1e9, 0.0);
        t.end_superstep(KernelClass::Smoother, Some(1), false);
        t.record_compute(0, 1e9, 0.0);
        t.end_superstep(KernelClass::Smoother, Some(0), false);
        assert_eq!(t.superstep_count(), 3);
        assert!(t.secs_in(KernelClass::Smoother, None) > t.secs_in(KernelClass::SpMV, None));
        assert!(t.secs_in(KernelClass::Smoother, Some(1)) > 0.0);
        assert_eq!(t.secs_in(KernelClass::Dot, None), 0.0);
        let total = t.total_secs();
        assert!(total > 0.0);
        t.reset();
        assert_eq!(t.superstep_count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = CostTracker::new(0, MachineParams::arm_cluster());
    }
}

#[cfg(test)]
mod local_step_tests {
    use super::*;

    #[test]
    fn local_step_has_no_barrier() {
        let mut t = CostTracker::new(2, MachineParams::arm_cluster());
        t.record_compute(0, 1e6, 0.0);
        let c = t.end_local_step(KernelClass::Waxpby, None);
        assert_eq!(c.sync_secs, 0.0);
        assert!(c.compute_secs > 0.0);

        let mut t2 = CostTracker::new(2, MachineParams::arm_cluster());
        t2.record_compute(0, 1e6, 0.0);
        let c2 = t2.end_superstep(KernelClass::Waxpby, None, false);
        assert!(c2.sync_secs > 0.0);
    }
}
