//! A simulated Bulk-Synchronous Parallel (BSP) machine.
//!
//! The paper's distributed experiments (Fig 3, Figs 6-7, Table I) ran on a
//! 7-node InfiniBand ARM cluster through LPF, a BSP-model communication
//! layer. This crate is the substitute substrate: a **cost-accounted
//! simulated cluster**. Algorithms execute their real data movement between
//! per-node buffers (so numerics are exact and communication volumes are
//! byte-accurate), and the machine model converts the recorded volumes into
//! wall-clock via the classic BSP formula
//!
//! ```text
//! T = Σ_steps [ max_i w_i  +  g · max_i h_i  +  l ]
//! ```
//!
//! where `w_i` is node `i`'s local work time in the step, `h_i` its
//! communicated bytes, `g` the gap (seconds per byte) and `l` the barrier
//! latency (paper §IV, Table I).
//!
//! Module map:
//!
//! * [`machine`] — machine parameter sets (compute rate, bandwidths, g, l);
//! * [`cost`] — the superstep cost tracker;
//! * [`dist`] — data distributions: 1D block, 1D block-cyclic (ALP's hybrid
//!   backend), and 3D geometric (the HPCG reference);
//! * [`factor`] — the 3D processor-grid factorization HPCG uses;
//! * [`halo`] — 2D-halo exchange volumes on the 3D geometric distribution;
//! * [`collectives`] — h-relation sizes of allgather / allreduce;
//! * [`exchange`] — the mailbox-backed split-phase exchange fabric the
//!   sharded executor moves real bytes through (post/complete halves).

#![warn(missing_docs)]

pub mod collectives;
pub mod cost;
pub mod dist;
pub mod exchange;
pub mod factor;
pub mod halo;
pub mod machine;

pub use cost::{CostTracker, KernelClass, StepCost};
pub use dist::{BlockCyclic1D, Distribution, Geometric3D};
pub use exchange::{Envelope, Exchange};
pub use factor::{factor2d, factor3d};
pub use machine::MachineParams;
