//! Halo geometry on the 3D distribution.
//!
//! With the 27-point HPCG stencil, a node's computation reads every grid
//! point within Chebyshev distance 1 of its box. The points it does not own
//! form its **halo**; their owners are its (up to 26) geometric neighbors.
//! The paper's §II-G counts the dominant face contribution as
//! `h = 2(sx·sy + sy·sz + sx·sz)`; this module computes the *exact* halo
//! (faces + edges + corners, clipped at the domain boundary), which the
//! distributed simulator uses for byte-accurate exchanges.

use crate::dist::{Distribution, Geometric3D};

/// The global indices of `node`'s halo, grouped by owning neighbor node.
///
/// Each entry is `(neighbor, indices)` with `indices` sorted; neighbors are
/// visited in node-id order. Only nonempty groups are returned.
pub fn halo_by_neighbor(d: &Geometric3D, node: usize) -> Vec<(usize, Vec<usize>)> {
    let (bx, by, bz) = d.node_box(node);
    let mut groups: std::collections::BTreeMap<usize, Vec<usize>> =
        std::collections::BTreeMap::new();
    let x_lo = bx.start.saturating_sub(1);
    let x_hi = (bx.end + 1).min(d.nx);
    let y_lo = by.start.saturating_sub(1);
    let y_hi = (by.end + 1).min(d.ny);
    let z_lo = bz.start.saturating_sub(1);
    let z_hi = (bz.end + 1).min(d.nz);
    for z in z_lo..z_hi {
        for y in y_lo..y_hi {
            for x in x_lo..x_hi {
                let inside = bx.contains(&x) && by.contains(&y) && bz.contains(&z);
                if inside {
                    continue;
                }
                let g = d.index(x, y, z);
                groups.entry(d.owner(g)).or_default().push(g);
            }
        }
    }
    groups.into_iter().collect()
}

/// Total number of halo points of `node` (sum over neighbors).
pub fn halo_size(d: &Geometric3D, node: usize) -> usize {
    halo_by_neighbor(d, node).iter().map(|(_, v)| v.len()).sum()
}

/// The paper's face-only halo estimate `2(sx·sy + sy·sz + sx·sz)` — the
/// asymptotic `Θ(∛(n²/p²))` of Table I. Exact counts from
/// [`halo_size`] approach this for interior nodes of large grids.
pub fn face_halo_estimate(d: &Geometric3D) -> usize {
    let (sx, sy, sz) = d.local_dims();
    2 * (sx * sy + sy * sz + sx * sz)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_has_no_halo() {
        let d = Geometric3D::new(8, 8, 8, 1);
        assert_eq!(halo_size(&d, 0), 0);
        assert!(halo_by_neighbor(&d, 0).is_empty());
    }

    #[test]
    fn two_nodes_share_one_face() {
        // 8x4x4 grid split 2x1x1: each node's halo is one 4x4 face = 16 points.
        let d = Geometric3D::with_process_grid(8, 4, 4, 2, 1, 1);
        let h0 = halo_by_neighbor(&d, 0);
        assert_eq!(h0.len(), 1);
        assert_eq!(h0[0].0, 1, "the only neighbor is node 1");
        assert_eq!(h0[0].1.len(), 16);
        assert_eq!(halo_size(&d, 1), 16);
    }

    #[test]
    fn halo_points_are_adjacent_and_foreign() {
        let d = Geometric3D::new(8, 8, 8, 8);
        for node in 0..8 {
            let (bx, by, bz) = d.node_box(node);
            for (nbr, idx) in halo_by_neighbor(&d, node) {
                assert_ne!(nbr, node);
                for &g in &idx {
                    assert_eq!(d.owner(g), nbr);
                    let (x, y, z) = d.coords(g);
                    let dx = dist_to_range(x, &bx);
                    let dy = dist_to_range(y, &by);
                    let dz = dist_to_range(z, &bz);
                    assert!(dx.max(dy).max(dz) == 1, "halo point at distance 1");
                }
            }
        }
    }

    fn dist_to_range(v: usize, r: &std::ops::Range<usize>) -> usize {
        if r.contains(&v) {
            0
        } else if v < r.start {
            r.start - v
        } else {
            v + 1 - r.end
        }
    }

    #[test]
    fn interior_node_halo_close_to_face_estimate() {
        // 3x3x3 process grid: the center node has all 26 neighbors.
        let d = Geometric3D::with_process_grid(24, 24, 24, 3, 3, 3);
        let center = 1 + 3 * (1 + 3); // (1,1,1)
        let exact = halo_size(&d, center);
        let estimate = face_halo_estimate(&d);
        // Exact = faces + edges + corners = estimate + O(s): for s=8,
        // faces=6*64=384, edges=12*8=96, corners=8 → 488.
        assert_eq!(exact, 488);
        assert_eq!(estimate, 384);
        assert!(exact >= estimate && exact < estimate + estimate / 2);
        assert_eq!(halo_by_neighbor(&d, center).len(), 26);
    }

    #[test]
    fn corner_node_has_seven_neighbors() {
        let d = Geometric3D::with_process_grid(24, 24, 24, 3, 3, 3);
        assert_eq!(halo_by_neighbor(&d, 0).len(), 7);
    }

    #[test]
    fn halo_shrinks_relative_to_volume_as_n_grows() {
        // Weak-scaling sanity: per-node halo / volume → 0 as s grows.
        let small = Geometric3D::with_process_grid(8, 8, 8, 2, 2, 2);
        let large = Geometric3D::with_process_grid(32, 32, 32, 2, 2, 2);
        let frac_small = halo_size(&small, 0) as f64 / small.local_len(0) as f64;
        let frac_large = halo_size(&large, 0) as f64 / large.local_len(0) as f64;
        assert!(frac_large < frac_small);
    }
}
