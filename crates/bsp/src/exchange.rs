//! A real mailbox-backed exchange layer for split-phase supersteps.
//!
//! The closed forms in [`collectives`](crate::collectives) size the
//! h-relations; this module *moves the bytes*. Each pair of nodes shares a
//! single-message mailbox, and every transfer is split-phase in the BSPlib
//! / paper-§VII sense: the sender **posts** its payload and immediately
//! returns to local work, the receiver **completes** the transfer only
//! when it actually needs the data. The window between the two is where a
//! sharded executor hides exchange time behind its local compute tail.
//!
//! Every envelope carries the [`Instant`] the sender posted it, so the
//! receiver can measure how much of the exchange was in flight while it
//! was still computing — the directly measured counterpart of the modeled
//! `g·h` term.

use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// A delivered message: the payload plus the instant the sender posted it.
///
/// Split-phase semantics mean receipt can be arbitrarily later than the
/// post; the stamp lets the receiver compute the in-flight window.
#[derive(Debug)]
pub struct Envelope<T> {
    /// The transferred elements.
    pub data: Vec<T>,
    /// When the sender posted the message.
    pub posted_at: Instant,
}

/// One single-message mailbox: a slot plus the condvar its receiver parks on.
#[derive(Debug)]
struct Slot<T> {
    payload: Mutex<Option<Envelope<T>>>,
    ready: Condvar,
}

/// `p × p` single-message mailboxes implementing point-to-point
/// h-relations, allgather, and allreduce with split-phase
/// [`post_send`](Exchange::post_send) / [`complete`](Exchange::complete)
/// halves. One instance backs one cluster; supersteps reuse it (each
/// complete drains its slot, so a mailbox is free again for step k+1).
#[derive(Debug)]
pub struct Exchange<T> {
    p: usize,
    slots: Vec<Slot<T>>,
}

impl<T: Send> Exchange<T> {
    /// An exchange fabric for `p` nodes.
    pub fn new(p: usize) -> Exchange<T> {
        assert!(p > 0, "a cluster needs at least one node");
        Exchange {
            p,
            slots: (0..p * p)
                .map(|_| Slot {
                    payload: Mutex::new(None),
                    ready: Condvar::new(),
                })
                .collect(),
        }
    }

    /// Number of nodes wired into the fabric.
    pub fn nodes(&self) -> usize {
        self.p
    }

    fn slot(&self, to: usize, from: usize) -> &Slot<T> {
        &self.slots[to * self.p + from]
    }

    /// The split-phase send: deposits `data` in the `from → to` mailbox
    /// with an arrival stamp and returns immediately, leaving the sender
    /// free to overlap local work. Panics if the previous message in this
    /// mailbox was never completed (a lost-synchronization bug).
    pub fn post_send(&self, from: usize, to: usize, data: Vec<T>) {
        let slot = self.slot(to, from);
        let mut guard = slot.payload.lock().unwrap();
        assert!(
            guard.is_none(),
            "mailbox {from}->{to} still full: superstep k's exchange was never completed"
        );
        *guard = Some(Envelope {
            data,
            posted_at: Instant::now(),
        });
        slot.ready.notify_all();
    }

    /// The matching completion: blocks until `from`'s message for `to`
    /// arrives, then drains the mailbox and returns the envelope.
    pub fn complete(&self, to: usize, from: usize) -> Envelope<T> {
        let slot = self.slot(to, from);
        let mut guard = slot.payload.lock().unwrap();
        loop {
            match guard.take() {
                Some(envelope) => return envelope,
                None => guard = slot.ready.wait(guard).unwrap(),
            }
        }
    }

    /// Posts `node`'s contribution to every peer — the post half of an
    /// allgather (`h = (p−1)·|chunk|` elements out). Self-delivery is
    /// skipped: a node's own chunk never leaves it.
    pub fn post_allgather(&self, node: usize, chunk: &[T])
    where
        T: Clone,
    {
        for to in 0..self.p {
            if to != node {
                self.post_send(node, to, chunk.to_vec());
            }
        }
    }

    /// Completes an allgather at `node`: receives every peer's chunk, in
    /// ascending peer order, as `(peer, envelope)` pairs. Empty at `p = 1`.
    pub fn complete_allgather(&self, node: usize) -> Vec<(usize, Envelope<T>)> {
        (0..self.p)
            .filter(|&from| from != node)
            .map(|from| (from, self.complete(node, from)))
            .collect()
    }

    /// Posts `node`'s scalar partial to every peer — the post half of a
    /// direct-exchange allreduce (`h = (p−1)` words each way).
    pub fn post_allreduce(&self, node: usize, partial: T)
    where
        T: Clone,
    {
        for to in 0..self.p {
            if to != node {
                self.post_send(node, to, vec![partial.clone()]);
            }
        }
    }

    /// Completes an allreduce at `node`: every peer's partial in ascending
    /// peer order, plus the latest post stamp (`None` at `p = 1`). The
    /// combine itself is the caller's: deterministic reductions need an
    /// owner-order fold, which only the caller can sequence.
    pub fn complete_allreduce(&self, node: usize) -> (Vec<(usize, T)>, Option<Instant>) {
        let mut latest = None;
        let partials = self
            .complete_allgather(node)
            .into_iter()
            .map(|(peer, mut envelope)| {
                latest =
                    Some(latest.map_or(envelope.posted_at, |t: Instant| t.max(envelope.posted_at)));
                (peer, envelope.data.pop().expect("allreduce payload"))
            })
            .collect();
        (partials, latest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_roundtrip() {
        let ex = Exchange::<u64>::new(2);
        ex.post_send(0, 1, vec![7, 8, 9]);
        let env = ex.complete(1, 0);
        assert_eq!(env.data, vec![7, 8, 9]);
        // The mailbox drained: the next superstep may post again.
        ex.post_send(0, 1, vec![1]);
        assert_eq!(ex.complete(1, 0).data, vec![1]);
    }

    #[test]
    fn complete_blocks_until_posted() {
        let ex = Exchange::<f64>::new(2);
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(std::time::Duration::from_millis(10));
                ex.post_send(1, 0, vec![2.5]);
            });
            let env = ex.complete(0, 1);
            assert_eq!(env.data, vec![2.5]);
            assert!(env.posted_at.elapsed().as_secs_f64() >= 0.0);
        });
    }

    #[test]
    fn allgather_reassembles_the_vector() {
        let p = 4;
        let ex = Exchange::<usize>::new(p);
        let mut assembled: Vec<Vec<usize>> = vec![Vec::new(); p];
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..p)
                .map(|node| {
                    let ex = &ex;
                    s.spawn(move || {
                        let chunk = vec![node * 10, node * 10 + 1];
                        ex.post_allgather(node, &chunk);
                        let mut got = vec![(node, chunk)];
                        got.extend(
                            ex.complete_allgather(node)
                                .into_iter()
                                .map(|(peer, env)| (peer, env.data)),
                        );
                        got.sort_by_key(|&(peer, _)| peer);
                        got.into_iter().flat_map(|(_, c)| c).collect::<Vec<_>>()
                    })
                })
                .collect();
            for (node, h) in handles.into_iter().enumerate() {
                assembled[node] = h.join().unwrap();
            }
        });
        for got in &assembled {
            assert_eq!(*got, vec![0, 1, 10, 11, 20, 21, 30, 31]);
        }
    }

    #[test]
    fn allreduce_delivers_every_partial_in_peer_order() {
        let p = 3;
        let ex = Exchange::<f64>::new(p);
        std::thread::scope(|s| {
            for node in 0..p {
                let ex = &ex;
                s.spawn(move || {
                    ex.post_allreduce(node, node as f64 + 1.0);
                    let (partials, latest) = ex.complete_allreduce(node);
                    let peers: Vec<_> = partials.iter().map(|&(peer, _)| peer).collect();
                    let expect: Vec<_> = (0..p).filter(|&q| q != node).collect();
                    assert_eq!(peers, expect);
                    let sum: f64 =
                        partials.iter().map(|&(_, v)| v).sum::<f64>() + node as f64 + 1.0;
                    assert_eq!(sum, 6.0);
                    assert!(latest.is_some());
                });
            }
        });
    }

    #[test]
    fn single_node_exchanges_nothing() {
        let ex = Exchange::<f64>::new(1);
        ex.post_allgather(0, &[1.0, 2.0]);
        assert!(ex.complete_allgather(0).is_empty());
        ex.post_allreduce(0, 1.0);
        let (partials, latest) = ex.complete_allreduce(0);
        assert!(partials.is_empty());
        assert!(latest.is_none());
    }

    #[test]
    #[should_panic(expected = "still full")]
    fn double_post_without_complete_is_a_bug() {
        let ex = Exchange::<u64>::new(2);
        ex.post_send(0, 1, vec![1]);
        ex.post_send(0, 1, vec![2]);
    }
}
