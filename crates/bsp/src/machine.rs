//! Machine parameter sets for the BSP cost model.
//!
//! HPCG kernels are memory-bandwidth bound on real hardware (every vendor
//! optimization report the paper cites says so), so local work time is
//! modeled as `max(flops / R, bytes / BW)` — the roofline with two
//! ceilings. Network cost uses the BSP pair `(g, l)`.

use serde::{Deserialize, Serialize};

/// Parameters of one simulated machine / cluster node.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MachineParams {
    /// Peak floating-point rate of one node, flop/s.
    pub flops_per_sec: f64,
    /// Sustained memory bandwidth of one node, bytes/s.
    pub mem_bw_bytes_per_sec: f64,
    /// BSP gap: seconds per byte entering or leaving a node.
    pub g_secs_per_byte: f64,
    /// BSP latency: seconds per superstep (barrier + message startup).
    pub l_secs: f64,
}

impl MachineParams {
    /// A Kunpeng-920-like ARM node on 100 Gb/s InfiniBand — the paper's
    /// cluster (Table II: 48 cores, 246 GB/s attained bandwidth, ConnectX-5
    /// at 2×100 Gb/s).
    pub fn arm_cluster() -> MachineParams {
        MachineParams {
            // 48 cores × ~20 Gflop/s sustained DP each is far above what
            // bandwidth admits; 1e11 keeps the roofline bandwidth-bound.
            flops_per_sec: 1.0e11,
            mem_bw_bytes_per_sec: 246.3e9,
            // 100 Gb/s ≈ 12.5 GB/s effective per direction.
            g_secs_per_byte: 1.0 / 12.5e9,
            l_secs: 5.0e-6,
        }
    }

    /// A Xeon-Gold-6238T-like x86 node (Table II: 2×22 cores, 192 GB/s).
    pub fn x86_node() -> MachineParams {
        MachineParams {
            flops_per_sec: 1.2e11,
            mem_bw_bytes_per_sec: 192.0e9,
            g_secs_per_byte: 1.0 / 12.5e9,
            l_secs: 5.0e-6,
        }
    }

    /// A deliberately slow network (10× the ARM gap), used by tests and the
    /// sensitivity sweep in the weak-scaling harness.
    pub fn slow_network() -> MachineParams {
        let mut p = Self::arm_cluster();
        p.g_secs_per_byte *= 10.0;
        p
    }

    /// Roofline local-work time for `flops` floating-point operations
    /// touching `bytes` bytes of memory.
    #[inline]
    pub fn compute_time(&self, flops: f64, bytes: f64) -> f64 {
        (flops / self.flops_per_sec).max(bytes / self.mem_bw_bytes_per_sec)
    }

    /// Communication time of an `h`-byte relation.
    #[inline]
    pub fn comm_time(&self, h_bytes: f64) -> f64 {
        self.g_secs_per_byte * h_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        for p in [MachineParams::arm_cluster(), MachineParams::x86_node()] {
            assert!(p.flops_per_sec > 1e10);
            assert!(p.mem_bw_bytes_per_sec > 1e10);
            assert!(p.g_secs_per_byte > 0.0);
            assert!(p.l_secs > 0.0);
        }
    }

    #[test]
    fn roofline_switches_regimes() {
        let p = MachineParams::arm_cluster();
        // Pure compute: tiny bytes → flops bound.
        let t1 = p.compute_time(1e9, 1.0);
        assert!((t1 - 1e9 / p.flops_per_sec).abs() < 1e-12);
        // Streaming: HPCG-like 1 flop per 8 bytes → bandwidth bound.
        let t2 = p.compute_time(1e9, 8e9);
        assert!((t2 - 8e9 / p.mem_bw_bytes_per_sec).abs() < 1e-12);
        assert!(t2 > t1);
    }

    #[test]
    fn comm_time_linear_in_bytes() {
        let p = MachineParams::arm_cluster();
        assert!((p.comm_time(2e6) - 2.0 * p.comm_time(1e6)).abs() < 1e-12);
    }

    #[test]
    fn slow_network_is_slower() {
        assert!(
            MachineParams::slow_network().comm_time(1e6)
                > MachineParams::arm_cluster().comm_time(1e6) * 9.0
        );
    }
}
