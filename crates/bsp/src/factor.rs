//! The 3D processor-grid factorization of the HPCG reference.
//!
//! Given `p` nodes, HPCG computes `p = px·py·pz` minimizing the
//! communication surface when a `nx×ny×nz` point grid is split into
//! `px×py×pz` blocks (paper §II-G). We enumerate all ordered factor triples
//! and pick the one minimizing the per-node halo area
//! `2(sx·sy + sy·sz + sx·sz)` with `sd = nd/pd`.

/// Returns the `(px, py, pz)` factorization of `p` that minimizes the halo
/// surface for an `nx×ny×nz` grid.
///
/// Ties break toward the most cube-like triple (smallest max/min ratio),
/// matching the reference's preference for balanced subdomains.
pub fn factor3d(p: usize, nx: usize, ny: usize, nz: usize) -> (usize, usize, usize) {
    assert!(p > 0, "cannot factor zero processes");
    let mut best = (1, 1, p);
    let mut best_surface = f64::INFINITY;
    let mut best_aspect = f64::INFINITY;
    for px in 1..=p {
        if !p.is_multiple_of(px) {
            continue;
        }
        let rest = p / px;
        for py in 1..=rest {
            if !rest.is_multiple_of(py) {
                continue;
            }
            let pz = rest / py;
            let (sx, sy, sz) = (
                nx as f64 / px as f64,
                ny as f64 / py as f64,
                nz as f64 / pz as f64,
            );
            let surface = 2.0 * (sx * sy + sy * sz + sx * sz);
            let aspect = {
                let mx = sx.max(sy).max(sz);
                let mn = sx.min(sy).min(sz);
                mx / mn
            };
            if surface < best_surface - 1e-9
                || ((surface - best_surface).abs() <= 1e-9 && aspect < best_aspect)
            {
                best_surface = surface;
                best_aspect = aspect;
                best = (px, py, pz);
            }
        }
    }
    best
}

/// Returns the most square-like 2D factorization `p = pr·pc` with
/// `pr ≤ pc` — the process grid of the paper's §VII-B(ii) 2D block
/// distribution. Squarer grids minimize `(pr−1) + (pc−1)`, the per-node
/// message-partner count of a 2D SpMV.
pub fn factor2d(p: usize) -> (usize, usize) {
    assert!(p > 0, "cannot factor zero processes");
    let mut best = (1, p);
    for pr in 1..=p {
        if p.is_multiple_of(pr) {
            let pc = p / pr;
            if pr <= pc {
                best = (pr, pc);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor2d_squares() {
        assert_eq!(factor2d(1), (1, 1));
        assert_eq!(factor2d(4), (2, 2));
        assert_eq!(factor2d(12), (3, 4));
        assert_eq!(factor2d(16), (4, 4));
        assert_eq!(factor2d(7), (1, 7), "primes degrade to 1D");
    }

    #[test]
    fn factor2d_product_always_p() {
        for p in 1..=64 {
            let (pr, pc) = factor2d(p);
            assert_eq!(pr * pc, p);
            assert!(pr <= pc);
        }
    }

    #[test]
    fn perfect_cubes() {
        assert_eq!(factor3d(8, 64, 64, 64), (2, 2, 2));
        assert_eq!(factor3d(27, 96, 96, 96), (3, 3, 3));
        assert_eq!(factor3d(64, 128, 128, 128), (4, 4, 4));
    }

    #[test]
    fn primes_fall_back_to_pencils() {
        let (px, py, pz) = factor3d(7, 64, 64, 64);
        assert_eq!(px * py * pz, 7);
        // A prime p can only split one dimension.
        assert_eq!([px, py, pz].iter().filter(|&&d| d == 1).count(), 2);
    }

    #[test]
    fn respects_anisotropic_grids() {
        // Grid much longer in z: split z first.
        let (px, py, pz) = factor3d(4, 16, 16, 256);
        assert_eq!(px * py * pz, 4);
        assert_eq!(
            pz, 4,
            "the long dimension takes all the cuts, got ({px},{py},{pz})"
        );
    }

    #[test]
    fn all_p_covered_up_to_16() {
        for p in 1..=16 {
            let (px, py, pz) = factor3d(p, 64, 64, 64);
            assert_eq!(px * py * pz, p);
        }
    }

    #[test]
    fn surface_is_minimal_for_p4_cube_grid() {
        // For p=4 on a cube, 1×2×2 beats 1×1×4.
        let (px, py, pz) = factor3d(4, 64, 64, 64);
        let mut dims = [px, py, pz];
        dims.sort_unstable();
        assert_eq!(dims, [1, 2, 2]);
    }
}
