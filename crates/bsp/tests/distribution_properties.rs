//! Property tests of the distribution algebra and cost model.

use bsp::cost::{CostTracker, KernelClass};
use bsp::dist::{BlockCyclic1D, Distribution, Geometric3D};
use bsp::halo::{face_halo_estimate, halo_by_neighbor, halo_size};
use bsp::machine::MachineParams;
use bsp::{factor2d, factor3d};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn block_cyclic_is_a_bijection(n in 1usize..400, p in 1usize..9, block in 1usize..17) {
        let d = BlockCyclic1D::new(n, p, block);
        let mut seen = vec![false; n];
        for node in 0..p {
            for local in 0..d.local_len(node) {
                let g = d.to_global(node, local);
                prop_assert!(g < n);
                prop_assert!(!seen[g], "index {} owned twice", g);
                seen[g] = true;
                prop_assert_eq!(d.owner(g), node);
                prop_assert_eq!(d.to_local(g), (node, local));
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn block_cyclic_balance(n in 1usize..1000, p in 1usize..9, block in 1usize..9) {
        // No node holds more than one block over the minimum.
        let d = BlockCyclic1D::new(n, p, block);
        let lens: Vec<usize> = (0..p).map(|k| d.local_len(k)).collect();
        let max = *lens.iter().max().unwrap();
        let min = *lens.iter().min().unwrap();
        prop_assert!(max - min <= block, "imbalance {} > block {}", max - min, block);
    }

    #[test]
    fn factor3d_covers_and_divides(p in 1usize..40) {
        let (px, py, pz) = factor3d(p, 64, 64, 64);
        prop_assert_eq!(px * py * pz, p);
    }

    #[test]
    fn factor2d_covers(p in 1usize..200) {
        let (pr, pc) = factor2d(p);
        prop_assert_eq!(pr * pc, p);
        prop_assert!(pr <= pc);
    }

    #[test]
    fn geometric_halo_disjoint_from_owned(sx in 2usize..5, p_exp in 0usize..2) {
        // 2^p_exp boxes per dimension.
        let pd = 1 << p_exp;
        let side = sx * pd;
        let d = Geometric3D::with_process_grid(side, side, side, pd, pd, pd);
        for node in 0..d.nodes() {
            for (nbr, idx) in halo_by_neighbor(&d, node) {
                prop_assert_ne!(nbr, node);
                for g in idx {
                    prop_assert_eq!(d.owner(g), nbr);
                    prop_assert_ne!(d.owner(g), node);
                }
            }
        }
    }

    #[test]
    fn halo_bounded_by_estimate_plus_corners(s in 2usize..7) {
        // Exact halo of the center node of a 3x3x3 grid: faces + edges +
        // corners = 6s² + 12s + 8, always within 2x of the face estimate.
        let d = Geometric3D::with_process_grid(3 * s, 3 * s, 3 * s, 3, 3, 3);
        let center = 1 + 3 * (1 + 3);
        let exact = halo_size(&d, center);
        prop_assert_eq!(exact, 6 * s * s + 12 * s + 8);
        let estimate = face_halo_estimate(&d);
        prop_assert!(exact >= estimate);
        // Edge/corner overhead is 2/s + O(1/s²) relative: bounded by 3x at
        // s = 2 and shrinking toward 1x as s grows.
        prop_assert!(exact <= 3 * estimate);
        if s >= 6 {
            prop_assert!(exact <= 3 * estimate / 2);
        }
    }

    #[test]
    fn step_cost_total_monotone_in_components(
        flops in 0f64..1e12,
        bytes in 0f64..1e10,
        h in 0f64..1e9,
    ) {
        let params = MachineParams::arm_cluster();
        let mut t = CostTracker::new(2, params);
        t.record_compute(0, flops, bytes);
        t.record_send(0, 1, h);
        let c = t.end_superstep(KernelClass::Other, None, false);
        // Blocking total = compute + comm + sync; overlap total ≤ blocking.
        let mut t2 = CostTracker::new(2, params);
        t2.record_compute(0, flops, bytes);
        t2.record_send(0, 1, h);
        let c2 = t2.end_superstep(KernelClass::Other, None, true);
        prop_assert!(c2.total_secs() <= c.total_secs() + 1e-15);
        prop_assert!(c.total_secs() >= c.compute_secs);
        prop_assert!(c.total_secs() >= c.comm_secs);
    }

    #[test]
    fn h_relation_symmetric_exchange(p in 2usize..8, bytes in 1f64..1e6) {
        // An all-pairs symmetric exchange has h = (p-1)·bytes for every node.
        let mut t = CostTracker::new(p, MachineParams::arm_cluster());
        for i in 0..p {
            for j in 0..p {
                if i != j {
                    t.record_send(i, j, bytes);
                }
            }
        }
        let c = t.end_superstep(KernelClass::Other, None, false);
        prop_assert!((c.h_bytes - (p as f64 - 1.0) * bytes).abs() < 1e-9);
    }
}
