//! Property tests of the algebraic-structure contracts.
//!
//! The [`Monoid`] documentation promises associativity + identity; the
//! parallel backend's re-association of folds is only sound if they hold.
//! These tests check them on every provided structure, over domains where
//! the laws are exact (integers; integer-valued floats for `+`; all floats
//! for `min`/`max`).

use graphblas::{BinaryOp, Land, Lor, Max, Min, Monoid, Plus, Scalar, Semiring, Times};
use graphblas::{MaxTimes, MinPlus, PlusTimes};
use proptest::prelude::*;

fn assoc<T: Scalar, M: Monoid<T>>(a: T, b: T, c: T) -> bool {
    M::apply(M::apply(a, b), c) == M::apply(a, M::apply(b, c))
}

fn identity_law<T: Scalar, M: Monoid<T>>(a: T) -> bool {
    M::apply(M::identity(), a) == a && M::apply(a, M::identity()) == a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn plus_monoid_laws_i64(a in -1000i64..1000, b in -1000i64..1000, c in -1000i64..1000) {
        prop_assert!(assoc::<i64, Plus>(a, b, c));
        prop_assert!(identity_law::<i64, Plus>(a));
    }

    #[test]
    fn times_monoid_laws_i64(a in -30i64..30, b in -30i64..30, c in -30i64..30) {
        prop_assert!(assoc::<i64, Times>(a, b, c));
        prop_assert!(identity_law::<i64, Times>(a));
    }

    #[test]
    fn min_max_monoid_laws_f64(a in -1e6f64..1e6, b in -1e6f64..1e6, c in -1e6f64..1e6) {
        prop_assert!(assoc::<f64, Min>(a, b, c));
        prop_assert!(assoc::<f64, Max>(a, b, c));
        prop_assert!(identity_law::<f64, Min>(a));
        prop_assert!(identity_law::<f64, Max>(a));
    }

    #[test]
    fn logical_monoid_laws_bool(a: bool, b: bool, c: bool) {
        prop_assert!(assoc::<bool, Lor>(a, b, c));
        prop_assert!(assoc::<bool, Land>(a, b, c));
        prop_assert!(identity_law::<bool, Lor>(a));
        prop_assert!(identity_law::<bool, Land>(a));
    }

    #[test]
    fn plus_monoid_exact_on_integer_valued_floats(
        a in -1000i64..1000, b in -1000i64..1000, c in -1000i64..1000,
    ) {
        // The association order the parallel backend may choose must give
        // bit-identical results on integer-valued f64 — the basis of the
        // backend determinism tests.
        let (x, y, z) = (a as f64, b as f64, c as f64);
        prop_assert!(assoc::<f64, Plus>(x, y, z));
    }

    #[test]
    fn semiring_distributivity_i64(a in -20i64..20, b in -20i64..20, c in -20i64..20) {
        // a ⊗ (b ⊕ c) == (a ⊗ b) ⊕ (a ⊗ c) for the arithmetic semiring.
        let lhs = <PlusTimes as Semiring<i64>>::mul(a, <PlusTimes as Semiring<i64>>::add(b, c));
        let rhs = <PlusTimes as Semiring<i64>>::add(
            <PlusTimes as Semiring<i64>>::mul(a, b),
            <PlusTimes as Semiring<i64>>::mul(a, c),
        );
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn tropical_distributivity_f64(a in -1e3f64..1e3, b in -1e3f64..1e3, c in -1e3f64..1e3) {
        // a + min(b, c) == min(a + b, a + c): MinPlus is a true semiring.
        let lhs = <MinPlus as Semiring<f64>>::mul(a, <MinPlus as Semiring<f64>>::add(b, c));
        let rhs = <MinPlus as Semiring<f64>>::add(
            <MinPlus as Semiring<f64>>::mul(a, b),
            <MinPlus as Semiring<f64>>::mul(a, c),
        );
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn max_times_distributivity_nonneg(a in 0f64..1e3, b in 0f64..1e3, c in 0f64..1e3) {
        // a · max(b, c) == max(a·b, a·c) for nonnegative a (the domain
        // widest-path problems use).
        let lhs = <MaxTimes as Semiring<f64>>::mul(a, <MaxTimes as Semiring<f64>>::add(b, c));
        let rhs = <MaxTimes as Semiring<f64>>::add(
            <MaxTimes as Semiring<f64>>::mul(a, b),
            <MaxTimes as Semiring<f64>>::mul(a, c),
        );
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn semiring_zero_annihilates(a in -1000i64..1000) {
        prop_assert_eq!(
            <PlusTimes as Semiring<i64>>::mul(<PlusTimes as Semiring<i64>>::zero(), a),
            0
        );
        let inf = <MinPlus as Semiring<f64>>::zero();
        prop_assert_eq!(<MinPlus as Semiring<f64>>::mul(inf, a as f64), f64::INFINITY);
    }

    #[test]
    fn commutativity_of_additive_monoids(a in -1000i64..1000, b in -1000i64..1000) {
        prop_assert_eq!(<Plus as BinaryOp<i64>>::apply(a, b), <Plus as BinaryOp<i64>>::apply(b, a));
        prop_assert_eq!(
            <Min as BinaryOp<i64>>::apply(a, b),
            <Min as BinaryOp<i64>>::apply(b, a)
        );
        prop_assert_eq!(
            <Max as BinaryOp<i64>>::apply(a, b),
            <Max as BinaryOp<i64>>::apply(b, a)
        );
    }
}
