//! Sparse matrix–vector multiplication (`mxv`, `vxm`).
//!
//! `mxv` is HPCG's dominant kernel (paper §II-C): `y_i = ⊕_j A_ij ⊗ x_j`
//! over the caller's semiring. This module provides:
//!
//! * the row-parallel untransposed kernel (each output row is owned by one
//!   task, so no synchronization is needed);
//! * the transposed kernel honoring [`Descriptor::TRANSPOSE`], used by
//!   HPCG's refinement to reuse the restriction matrix without
//!   materializing its transpose (§IV). The transpose kernel scatters into
//!   the output, so it parallelizes only when the matrix's columns are
//!   conflict-free (at most one nonzero per column — true for straight
//!   injection); otherwise it falls back to a sequential scatter;
//! * masked variants computing only the selected output rows — the
//!   workhorse of the RBGS smoother (Listing 2, line 3).

use crate::backend::Backend;
use crate::container::matrix::CsrMatrix;
use crate::container::vector::Vector;
use crate::descriptor::Descriptor;
use crate::error::{check_dims, GrbError, Result};
use crate::exec::for_each_selected;
use crate::ops::scalar::Scalar;
use crate::ops::semiring::Semiring;
use crate::util::UnsafeSlice;

/// `y⟨mask⟩ = A ⊕.⊗ x` (or `Aᵀ` under [`Descriptor::TRANSPOSE`]).
///
/// Only masked output positions are written; others keep their prior values.
/// With `TRANSPOSE`, masks are unsupported (HPCG never needs them) and a
/// [`GrbError::Unsupported`] is returned if one is passed.
pub fn mxv<T, R, B>(
    y: &mut Vector<T>,
    mask: Option<&Vector<bool>>,
    desc: Descriptor,
    a: &CsrMatrix<T>,
    x: &Vector<T>,
    _ring: R,
) -> Result<()>
where
    T: Scalar,
    R: Semiring<T>,
    B: Backend,
{
    if desc.is_transposed() {
        if mask.is_some() {
            return Err(GrbError::Unsupported("masked transpose-mxv"));
        }
        check_dims("mxv^T", "x vs nrows", a.nrows(), x.len())?;
        check_dims("mxv^T", "y vs ncols", a.ncols(), y.len())?;
        return transpose_mxv::<T, R, B>(y, a, x);
    }
    check_dims("mxv", "x vs ncols", a.ncols(), x.len())?;
    check_dims("mxv", "y vs nrows", a.nrows(), y.len())?;
    let xs = x.as_slice();
    let out = UnsafeSlice::new(y.as_mut_slice());
    for_each_selected::<B, _>(a.nrows(), mask, desc, |i| {
        let (cols, vals) = a.row(i);
        let mut acc = R::zero();
        for (&c, &v) in cols.iter().zip(vals) {
            acc = R::add(acc, R::mul(v, xs[c as usize]));
        }
        // SAFETY: selected indices are unique (mask patterns are strictly
        // increasing; the unmasked path covers each row once).
        unsafe { out.write(i, acc) };
    })?;
    Ok(())
}

/// `y = xᵀA` — the vector–matrix product, equal to `Aᵀx`.
///
/// Provided for API parity with the GraphBLAS C interface; forwards to the
/// transposed `mxv` kernel (and vice versa under `TRANSPOSE`).
pub fn vxm<T, R, B>(
    y: &mut Vector<T>,
    mask: Option<&Vector<bool>>,
    desc: Descriptor,
    x: &Vector<T>,
    a: &CsrMatrix<T>,
    ring: R,
) -> Result<()>
where
    T: Scalar,
    R: Semiring<T>,
    B: Backend,
{
    // x^T A == A^T x, so flip the transpose flag and reuse mxv.
    let flipped = if desc.is_transposed() {
        desc_without_transpose(desc)
    } else {
        desc.with(Descriptor::TRANSPOSE)
    };
    mxv::<T, R, B>(y, mask, flipped, a, x, ring)
}

fn desc_without_transpose(desc: Descriptor) -> Descriptor {
    let mut d = Descriptor::DEFAULT;
    if desc.is_structural() {
        d = d.with(Descriptor::STRUCTURAL);
    }
    if desc.is_mask_inverted() {
        d = d.with(Descriptor::INVERT_MASK);
    }
    d
}

/// `y⟨mask⟩ = y ⊕ (A ⊕.⊗ x)` — `mxv` with an additive accumulator, the
/// GraphBLAS `accum` parameter specialized to the semiring's own monoid.
///
/// HPCG's refinement step uses this with [`Descriptor::TRANSPOSE`] to
/// compute `z += Rᵀ·zc` in one pass over the restriction matrix (§III-B).
pub fn mxv_accum<T, R, B>(
    y: &mut Vector<T>,
    mask: Option<&Vector<bool>>,
    desc: Descriptor,
    a: &CsrMatrix<T>,
    x: &Vector<T>,
    _ring: R,
) -> Result<()>
where
    T: Scalar,
    R: Semiring<T>,
    B: Backend,
{
    if desc.is_transposed() {
        if mask.is_some() {
            return Err(GrbError::Unsupported("masked transpose-mxv"));
        }
        check_dims("mxv_accum^T", "x vs nrows", a.nrows(), x.len())?;
        check_dims("mxv_accum^T", "y vs ncols", a.ncols(), y.len())?;
        return transpose_mxv_accum::<T, R, B>(y, a, x);
    }
    check_dims("mxv_accum", "x vs ncols", a.ncols(), x.len())?;
    check_dims("mxv_accum", "y vs nrows", a.nrows(), y.len())?;
    let xs = x.as_slice();
    let out = UnsafeSlice::new(y.as_mut_slice());
    for_each_selected::<B, _>(a.nrows(), mask, desc, |i| {
        let (cols, vals) = a.row(i);
        let mut acc = R::zero();
        for (&c, &v) in cols.iter().zip(vals) {
            acc = R::add(acc, R::mul(v, xs[c as usize]));
        }
        // SAFETY: selected indices are unique per the mask contract.
        unsafe {
            let slot = out.get_mut(i);
            *slot = R::add(*slot, acc);
        }
    })?;
    Ok(())
}

/// Accumulating scatter `y ⊕= Aᵀ x` (no zero-initialization of `y`).
fn transpose_mxv_accum<T, R, B>(y: &mut Vector<T>, a: &CsrMatrix<T>, x: &Vector<T>) -> Result<()>
where
    T: Scalar,
    R: Semiring<T>,
    B: Backend,
{
    y.densify();
    let xs = x.as_slice();
    let ys = y.as_mut_slice();
    if a.columns_conflict_free() {
        let out = UnsafeSlice::new(ys);
        B::for_n(a.nrows(), |r| {
            let (cols, vals) = a.row(r);
            let xr = xs[r];
            for (&c, &v) in cols.iter().zip(vals) {
                // SAFETY: conflict-free columns → c unique across rows.
                unsafe {
                    let slot = out.get_mut(c as usize);
                    *slot = R::add(*slot, R::mul(v, xr));
                }
            }
        });
    } else {
        for r in 0..a.nrows() {
            let (cols, vals) = a.row(r);
            let xr = xs[r];
            for (&c, &v) in cols.iter().zip(vals) {
                let slot = &mut ys[c as usize];
                *slot = R::add(*slot, R::mul(v, xr));
            }
        }
    }
    Ok(())
}

/// Scatter-based `y = Aᵀ x`.
///
/// Initializes all of `y` to the semiring zero, then accumulates
/// `y[c] ⊕= A[r,c] ⊗ x[r]` over stored entries.
fn transpose_mxv<T, R, B>(y: &mut Vector<T>, a: &CsrMatrix<T>, x: &Vector<T>) -> Result<()>
where
    T: Scalar,
    R: Semiring<T>,
    B: Backend,
{
    y.densify();
    let xs = x.as_slice();
    let ys = y.as_mut_slice();
    ys.iter_mut().for_each(|v| *v = R::zero());
    if a.columns_conflict_free() {
        // Each output index is written by at most one source row, so rows
        // may be processed in parallel without synchronization.
        let out = UnsafeSlice::new(ys);
        B::for_n(a.nrows(), |r| {
            let (cols, vals) = a.row(r);
            let xr = xs[r];
            for (&c, &v) in cols.iter().zip(vals) {
                // SAFETY: conflict-free columns → index c is unique across rows.
                unsafe {
                    let slot = out.get_mut(c as usize);
                    *slot = R::add(*slot, R::mul(v, xr));
                }
            }
        });
    } else {
        for r in 0..a.nrows() {
            let (cols, vals) = a.row(r);
            let xr = xs[r];
            for (&c, &v) in cols.iter().zip(vals) {
                let slot = &mut ys[c as usize];
                *slot = R::add(*slot, R::mul(v, xr));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Parallel, Sequential};
    use crate::ops::semiring::{MinPlus, PlusTimes};

    fn a3() -> CsrMatrix<f64> {
        // [[2, 0, 1],
        //  [0, 3, 0],
        //  [4, 0, 5]]
        CsrMatrix::from_triplets(
            3,
            3,
            &[(0, 0, 2.0), (0, 2, 1.0), (1, 1, 3.0), (2, 0, 4.0), (2, 2, 5.0)],
        )
        .unwrap()
    }

    #[test]
    fn plain_mxv() {
        let a = a3();
        let x = Vector::from_dense(vec![1.0, 2.0, 3.0]);
        let mut y = Vector::zeros(3);
        mxv::<f64, PlusTimes, Sequential>(&mut y, None, Descriptor::DEFAULT, &a, &x, PlusTimes)
            .unwrap();
        assert_eq!(y.as_slice(), &[5.0, 6.0, 19.0]);
    }

    #[test]
    fn parallel_matches_sequential() {
        let n = 500;
        let mut triplets = Vec::new();
        for i in 0..n {
            triplets.push((i, i, 2.0 + i as f64));
            if i + 1 < n {
                triplets.push((i, i + 1, -1.0));
                triplets.push((i + 1, i, -1.0));
            }
        }
        let a = CsrMatrix::from_triplets(n, n, &triplets).unwrap();
        let x = Vector::from_dense((0..n).map(|i| (i % 13) as f64 - 6.0).collect());
        let mut y1 = Vector::zeros(n);
        let mut y2 = Vector::zeros(n);
        mxv::<f64, PlusTimes, Sequential>(&mut y1, None, Descriptor::DEFAULT, &a, &x, PlusTimes)
            .unwrap();
        mxv::<f64, PlusTimes, Parallel>(&mut y2, None, Descriptor::DEFAULT, &a, &x, PlusTimes)
            .unwrap();
        assert_eq!(y1.as_slice(), y2.as_slice(), "row-parallel mxv is deterministic");
    }

    #[test]
    fn masked_mxv_touches_only_selected_rows() {
        let a = a3();
        let x = Vector::from_dense(vec![1.0, 2.0, 3.0]);
        let mut y = Vector::from_dense(vec![-1.0, -1.0, -1.0]);
        let mask = Vector::<bool>::sparse_filled(3, vec![0, 2], true).unwrap();
        mxv::<f64, PlusTimes, Sequential>(
            &mut y,
            Some(&mask),
            Descriptor::STRUCTURAL,
            &a,
            &x,
            PlusTimes,
        )
        .unwrap();
        assert_eq!(y.as_slice(), &[5.0, -1.0, 19.0], "row 1 untouched");
    }

    #[test]
    fn transpose_mxv_equals_materialized_transpose() {
        let a = CsrMatrix::from_triplets(
            2,
            4,
            &[(0, 0, 1.0), (0, 3, 2.0), (1, 1, 3.0), (1, 3, 4.0)],
        )
        .unwrap();
        let x = Vector::from_dense(vec![10.0, 100.0]);
        let mut via_desc = Vector::zeros(4);
        mxv::<f64, PlusTimes, Sequential>(
            &mut via_desc,
            None,
            Descriptor::TRANSPOSE,
            &a,
            &x,
            PlusTimes,
        )
        .unwrap();
        let at = a.transpose();
        let mut via_mat = Vector::zeros(4);
        mxv::<f64, PlusTimes, Sequential>(&mut via_mat, None, Descriptor::DEFAULT, &at, &x, PlusTimes)
            .unwrap();
        assert_eq!(via_desc.as_slice(), via_mat.as_slice());
        assert_eq!(via_desc.as_slice(), &[10.0, 300.0, 0.0, 420.0]);
    }

    #[test]
    fn transpose_conflict_free_parallel_matches_sequential() {
        // Injection-style matrix: one nonzero per row, distinct columns.
        let n = 2000;
        let triplets: Vec<(usize, usize, f64)> =
            (0..n).map(|i| (i, i * 4, 1.0)).collect();
        let a = CsrMatrix::from_triplets(n, 4 * n, &triplets).unwrap();
        assert!(a.columns_conflict_free());
        let x = Vector::from_dense((0..n).map(|i| i as f64).collect());
        let mut y1 = Vector::zeros(4 * n);
        let mut y2 = Vector::zeros(4 * n);
        mxv::<f64, PlusTimes, Sequential>(&mut y1, None, Descriptor::TRANSPOSE, &a, &x, PlusTimes)
            .unwrap();
        mxv::<f64, PlusTimes, Parallel>(&mut y2, None, Descriptor::TRANSPOSE, &a, &x, PlusTimes)
            .unwrap();
        assert_eq!(y1.as_slice(), y2.as_slice());
        assert_eq!(y1.get_or_zero(8), 2.0);
    }

    #[test]
    fn vxm_equals_transposed_mxv() {
        let a = a3();
        let x = Vector::from_dense(vec![1.0, 2.0, 3.0]);
        let mut via_vxm = Vector::zeros(3);
        vxm::<f64, PlusTimes, Sequential>(&mut via_vxm, None, Descriptor::DEFAULT, &x, &a, PlusTimes)
            .unwrap();
        let mut via_t = Vector::zeros(3);
        mxv::<f64, PlusTimes, Sequential>(&mut via_t, None, Descriptor::TRANSPOSE, &a, &x, PlusTimes)
            .unwrap();
        assert_eq!(via_vxm.as_slice(), via_t.as_slice());
        // And vxm with TRANSPOSE is plain mxv.
        let mut via_vxm_t = Vector::zeros(3);
        vxm::<f64, PlusTimes, Sequential>(
            &mut via_vxm_t,
            None,
            Descriptor::TRANSPOSE,
            &x,
            &a,
            PlusTimes,
        )
        .unwrap();
        let mut plain = Vector::zeros(3);
        mxv::<f64, PlusTimes, Sequential>(&mut plain, None, Descriptor::DEFAULT, &a, &x, PlusTimes)
            .unwrap();
        assert_eq!(via_vxm_t.as_slice(), plain.as_slice());
    }

    #[test]
    fn dimension_errors() {
        let a = a3();
        let x_bad = Vector::<f64>::zeros(2);
        let mut y = Vector::zeros(3);
        assert!(mxv::<f64, PlusTimes, Sequential>(
            &mut y,
            None,
            Descriptor::DEFAULT,
            &a,
            &x_bad,
            PlusTimes
        )
        .is_err());
        let x = Vector::zeros(3);
        let mut y_bad = Vector::<f64>::zeros(5);
        assert!(mxv::<f64, PlusTimes, Sequential>(
            &mut y_bad,
            None,
            Descriptor::DEFAULT,
            &a,
            &x,
            PlusTimes
        )
        .is_err());
    }

    #[test]
    fn masked_transpose_rejected() {
        let a = a3();
        let x = Vector::zeros(3);
        let mut y = Vector::<f64>::zeros(3);
        let mask = Vector::<bool>::filled(3, true);
        let err = mxv::<f64, PlusTimes, Sequential>(
            &mut y,
            Some(&mask),
            Descriptor::TRANSPOSE,
            &a,
            &x,
            PlusTimes,
        );
        assert!(matches!(err, Err(GrbError::Unsupported(_))));
    }

    #[test]
    fn min_plus_semiring_mxv() {
        // Tropical semiring: y_i = min_j (A_ij + x_j) — one shortest-path
        // relaxation step. Absent entries contribute +inf (the min identity).
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 2.0)]).unwrap();
        let x = Vector::from_dense(vec![0.0, 10.0]);
        let mut y = Vector::zeros(2);
        mxv::<f64, MinPlus, Sequential>(&mut y, None, Descriptor::DEFAULT, &a, &x, MinPlus)
            .unwrap();
        assert_eq!(y.as_slice(), &[11.0, 2.0]);
    }

    #[test]
    fn empty_rows_produce_semiring_zero() {
        let a = CsrMatrix::<f64>::from_triplets(2, 2, &[(0, 0, 3.0)]).unwrap();
        let x = Vector::from_dense(vec![1.0, 1.0]);
        let mut y = Vector::from_dense(vec![99.0, 99.0]);
        mxv::<f64, PlusTimes, Sequential>(&mut y, None, Descriptor::DEFAULT, &a, &x, PlusTimes)
            .unwrap();
        assert_eq!(y.as_slice(), &[3.0, 0.0], "empty row yields additive identity");
    }
}

#[cfg(test)]
mod accum_tests {
    use super::*;
    use crate::backend::Sequential;
    use crate::ops::semiring::PlusTimes;

    #[test]
    fn accum_adds_to_existing_values() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (1, 1, 3.0)]).unwrap();
        let x = Vector::from_dense(vec![1.0, 1.0]);
        let mut y = Vector::from_dense(vec![10.0, 20.0]);
        mxv_accum::<f64, PlusTimes, Sequential>(&mut y, None, Descriptor::DEFAULT, &a, &x, PlusTimes)
            .unwrap();
        assert_eq!(y.as_slice(), &[12.0, 23.0]);
    }

    #[test]
    fn transpose_accum_matches_manual() {
        // Injection-like rectangular matrix: y += A^T x.
        let a = CsrMatrix::from_triplets(2, 4, &[(0, 1, 1.0), (1, 3, 1.0)]).unwrap();
        let x = Vector::from_dense(vec![5.0, 7.0]);
        let mut y = Vector::from_dense(vec![1.0, 1.0, 1.0, 1.0]);
        mxv_accum::<f64, PlusTimes, Sequential>(
            &mut y,
            None,
            Descriptor::TRANSPOSE,
            &a,
            &x,
            PlusTimes,
        )
        .unwrap();
        assert_eq!(y.as_slice(), &[1.0, 6.0, 1.0, 8.0]);
    }

    #[test]
    fn masked_accum_touches_only_selected() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (1, 1, 3.0)]).unwrap();
        let x = Vector::from_dense(vec![1.0, 1.0]);
        let mut y = Vector::from_dense(vec![10.0, 20.0]);
        let mask = Vector::<bool>::sparse_filled(2, vec![1], true).unwrap();
        mxv_accum::<f64, PlusTimes, Sequential>(
            &mut y,
            Some(&mask),
            Descriptor::STRUCTURAL,
            &a,
            &x,
            PlusTimes,
        )
        .unwrap();
        assert_eq!(y.as_slice(), &[10.0, 23.0]);
    }
}
