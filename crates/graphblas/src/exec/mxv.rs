//! Sparse matrix–vector multiplication (`mxv`, `vxm`).
//!
//! `mxv` is HPCG's dominant kernel (paper §II-C): `y_i = ⊕_j A_ij ⊗ x_j`
//! over the caller's semiring. This module provides:
//!
//! * the row-parallel untransposed kernel (each output row is owned by one
//!   task, so no synchronization is needed);
//! * the transposed kernel honoring [`Descriptor::TRANSPOSE`], used by
//!   HPCG's refinement to reuse the restriction matrix without
//!   materializing its transpose (§IV). The transpose kernel scatters into
//!   the output, so it parallelizes only when the matrix's columns are
//!   conflict-free (at most one nonzero per column — true for straight
//!   injection); otherwise it falls back to a sequential scatter;
//! * masked variants computing only the selected output rows — the
//!   workhorse of the RBGS smoother (Listing 2, line 3). Masks compose
//!   with `TRANSPOSE` too: the product is computed once into a scratch
//!   vector and only the selected positions are written back (transpose
//!   output positions are scatter targets, so there is no cheaper
//!   mask-following path without a CSC view).
//!
//! All variants funnel into one kernel, [`mxv_exec`], generic over an
//! [`AccumMode`]: `NoAccum` overwrites selected outputs, `AccumWith<Op>`
//! fuses `y = y ⊙ (A ⊕.⊗ x)` — the collapse of the historical
//! `mxv`/`mxv_accum` twin entry points. The public ways in are
//! [`Ctx::mxv`](crate::Ctx::mxv) (eager) and
//! [`Pipeline::mxv`](crate::Pipeline::mxv) (deferred); the pre-0.2 free
//! functions were removed in 0.3.

use crate::backend::Backend;
use crate::container::matrix::CsrMatrix;
use crate::container::vector::Vector;
use crate::descriptor::Descriptor;
use crate::error::{check_dims, Result};
use crate::exec::for_each_selected;
use crate::ops::accum::{AccumMode, AccumWith};
use crate::ops::scalar::Scalar;
use crate::ops::semiring::Semiring;
use crate::util::UnsafeSlice;
use std::any::TypeId;

/// `y⟨mask⟩ = y ⊙? (A ⊕.⊗ x)` — the single mxv kernel behind the builder
/// API (or `Aᵀ` under [`Descriptor::TRANSPOSE`]).
///
/// Only masked output positions are written; others keep their prior
/// values (GraphBLAS no-replace semantics).
pub(crate) fn mxv_exec<T, R, A, B>(
    y: &mut Vector<T>,
    mask: Option<&Vector<bool>>,
    desc: Descriptor,
    a: &CsrMatrix<T>,
    x: &Vector<T>,
) -> Result<()>
where
    T: Scalar,
    R: Semiring<T>,
    A: AccumMode<T>,
    B: Backend,
{
    if desc.is_transposed() {
        check_dims("mxv^T", "x vs nrows", a.nrows(), x.len())?;
        check_dims("mxv^T", "y vs ncols", a.ncols(), y.len())?;
        return transpose_mxv_exec::<T, R, A, B>(y, mask, desc, a, x);
    }
    check_dims("mxv", "x vs ncols", a.ncols(), x.len())?;
    check_dims("mxv", "y vs nrows", a.nrows(), y.len())?;
    let xs = x.as_slice();
    let out = UnsafeSlice::new(y.as_mut_slice());
    for_each_selected::<B, _>(a.nrows(), mask, desc, |i| {
        let (cols, vals) = a.row(i);
        let mut acc = R::zero();
        for (&c, &v) in cols.iter().zip(vals) {
            acc = R::add(acc, R::mul(v, xs[c as usize]));
        }
        // SAFETY: selected indices are unique (mask patterns are strictly
        // increasing; the unmasked path covers each row once).
        unsafe { A::store(out.get_mut(i), acc) };
    })?;
    Ok(())
}

/// Transposed product `y⟨mask⟩ = y ⊙? (Aᵀ ⊕.⊗ x)`.
///
/// Three regimes:
///
/// * unmasked, no accumulator — zero-initialize and scatter (the classic
///   transpose kernel);
/// * unmasked, accumulator `⊙ = ⊕` — scatter straight onto `y`: each
///   contribution folds into the slot through the semiring's own monoid,
///   associativity makes the one-pass fusion exact (HPCG's refinement);
/// * anything else (a mask, or an accumulator other than `⊕`) — compute
///   the full product into a scratch vector, then combine only the
///   selected positions. Costs one `|cols(A)|` allocation; outside HPCG's
///   hot path.
fn transpose_mxv_exec<T, R, A, B>(
    y: &mut Vector<T>,
    mask: Option<&Vector<bool>>,
    desc: Descriptor,
    a: &CsrMatrix<T>,
    x: &Vector<T>,
) -> Result<()>
where
    T: Scalar,
    R: Semiring<T>,
    A: AccumMode<T>,
    B: Backend,
{
    let fuses_with_semiring_add = TypeId::of::<A>() == TypeId::of::<AccumWith<R::Add>>();
    if mask.is_none() {
        if !A::ACCUMULATES {
            return scatter_product::<T, R, B>(y, a, x, true);
        }
        if fuses_with_semiring_add {
            return scatter_product::<T, R, B>(y, a, x, false);
        }
    }
    // General case: full product once, then masked/accumulated write-back.
    let mut scratch = Vector::zeros(y.len());
    scatter_product::<T, R, B>(&mut scratch, a, x, true)?;
    let ss = scratch.as_slice();
    y.densify();
    let n = y.len();
    let out = UnsafeSlice::new(y.as_mut_slice());
    for_each_selected::<B, _>(n, mask, desc, |i| {
        // SAFETY: selected indices are unique per the mask contract.
        unsafe { A::store(out.get_mut(i), ss[i]) };
    })
}

/// Scatter kernel `y ⊕= Aᵀ x`, optionally zero-initializing `y` first.
///
/// Parallelizes only when the matrix's columns are conflict-free (each
/// output index owned by at most one row — true for straight injection);
/// otherwise falls back to a sequential scatter.
fn scatter_product<T, R, B>(
    y: &mut Vector<T>,
    a: &CsrMatrix<T>,
    x: &Vector<T>,
    zero_init: bool,
) -> Result<()>
where
    T: Scalar,
    R: Semiring<T>,
    B: Backend,
{
    y.densify();
    let xs = x.as_slice();
    let ys = y.as_mut_slice();
    if zero_init {
        ys.iter_mut().for_each(|v| *v = R::zero());
    }
    if a.columns_conflict_free() {
        // Each output index is written by at most one source row, so rows
        // may be processed in parallel without synchronization.
        let out = UnsafeSlice::new(ys);
        B::for_n(a.nrows(), |r| {
            let (cols, vals) = a.row(r);
            let xr = xs[r];
            for (&c, &v) in cols.iter().zip(vals) {
                // SAFETY: conflict-free columns → index c is unique across rows.
                unsafe {
                    let slot = out.get_mut(c as usize);
                    *slot = R::add(*slot, R::mul(v, xr));
                }
            }
        });
    } else {
        for (r, &xr) in xs.iter().enumerate() {
            let (cols, vals) = a.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let slot = &mut ys[c as usize];
                *slot = R::add(*slot, R::mul(v, xr));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Parallel, Sequential};
    use crate::context::ctx;
    use crate::ops::binary::Plus;
    use crate::ops::semiring::MinPlus;

    fn a3() -> CsrMatrix<f64> {
        // [[2, 0, 1],
        //  [0, 3, 0],
        //  [4, 0, 5]]
        CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 2.0),
                (0, 2, 1.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn plain_mxv() {
        let a = a3();
        let x = Vector::from_dense(vec![1.0, 2.0, 3.0]);
        let mut y = Vector::zeros(3);
        ctx::<Sequential>().mxv(&a, &x).into(&mut y).unwrap();
        assert_eq!(y.as_slice(), &[5.0, 6.0, 19.0]);
    }

    #[test]
    fn parallel_matches_sequential() {
        let n = 500;
        let mut triplets = Vec::new();
        for i in 0..n {
            triplets.push((i, i, 2.0 + i as f64));
            if i + 1 < n {
                triplets.push((i, i + 1, -1.0));
                triplets.push((i + 1, i, -1.0));
            }
        }
        let a = CsrMatrix::from_triplets(n, n, &triplets).unwrap();
        let x = Vector::from_dense((0..n).map(|i| (i % 13) as f64 - 6.0).collect());
        let mut y1 = Vector::zeros(n);
        let mut y2 = Vector::zeros(n);
        ctx::<Sequential>().mxv(&a, &x).into(&mut y1).unwrap();
        ctx::<Parallel>().mxv(&a, &x).into(&mut y2).unwrap();
        assert_eq!(
            y1.as_slice(),
            y2.as_slice(),
            "row-parallel mxv is deterministic"
        );
    }

    #[test]
    fn masked_mxv_touches_only_selected_rows() {
        let a = a3();
        let x = Vector::from_dense(vec![1.0, 2.0, 3.0]);
        let mut y = Vector::from_dense(vec![-1.0, -1.0, -1.0]);
        let mask = Vector::<bool>::sparse_filled(3, vec![0, 2], true).unwrap();
        ctx::<Sequential>()
            .mxv(&a, &x)
            .mask(&mask)
            .structural()
            .into(&mut y)
            .unwrap();
        assert_eq!(y.as_slice(), &[5.0, -1.0, 19.0], "row 1 untouched");
    }

    #[test]
    fn transpose_mxv_equals_materialized_transpose() {
        let a =
            CsrMatrix::from_triplets(2, 4, &[(0, 0, 1.0), (0, 3, 2.0), (1, 1, 3.0), (1, 3, 4.0)])
                .unwrap();
        let x = Vector::from_dense(vec![10.0, 100.0]);
        let exec = ctx::<Sequential>();
        let mut via_desc = Vector::zeros(4);
        exec.mxv(&a, &x).transpose().into(&mut via_desc).unwrap();
        let at = a.transpose();
        let mut via_mat = Vector::zeros(4);
        exec.mxv(&at, &x).into(&mut via_mat).unwrap();
        assert_eq!(via_desc.as_slice(), via_mat.as_slice());
        assert_eq!(via_desc.as_slice(), &[10.0, 300.0, 0.0, 420.0]);
    }

    #[test]
    fn transpose_conflict_free_parallel_matches_sequential() {
        // Injection-style matrix: one nonzero per row, distinct columns.
        let n = 2000;
        let triplets: Vec<(usize, usize, f64)> = (0..n).map(|i| (i, i * 4, 1.0)).collect();
        let a = CsrMatrix::from_triplets(n, 4 * n, &triplets).unwrap();
        assert!(a.columns_conflict_free());
        let x = Vector::from_dense((0..n).map(|i| i as f64).collect());
        let mut y1 = Vector::zeros(4 * n);
        let mut y2 = Vector::zeros(4 * n);
        ctx::<Sequential>()
            .mxv(&a, &x)
            .transpose()
            .into(&mut y1)
            .unwrap();
        ctx::<Parallel>()
            .mxv(&a, &x)
            .transpose()
            .into(&mut y2)
            .unwrap();
        assert_eq!(y1.as_slice(), y2.as_slice());
        assert_eq!(y1.get_or_zero(8), 2.0);
    }

    #[test]
    fn vxm_equals_transposed_mxv() {
        let a = a3();
        let x = Vector::from_dense(vec![1.0, 2.0, 3.0]);
        let exec = ctx::<Sequential>();
        let mut via_vxm = Vector::zeros(3);
        exec.vxm(&x, &a).into(&mut via_vxm).unwrap();
        let mut via_t = Vector::zeros(3);
        exec.mxv(&a, &x).transpose().into(&mut via_t).unwrap();
        assert_eq!(via_vxm.as_slice(), via_t.as_slice());
        // And vxm with a second transposition is plain mxv.
        let mut via_vxm_t = Vector::zeros(3);
        exec.vxm(&x, &a).transpose().into(&mut via_vxm_t).unwrap();
        let mut plain = Vector::zeros(3);
        exec.mxv(&a, &x).into(&mut plain).unwrap();
        assert_eq!(via_vxm_t.as_slice(), plain.as_slice());
    }

    #[test]
    fn dimension_errors() {
        let a = a3();
        let exec = ctx::<Sequential>();
        let x_bad = Vector::<f64>::zeros(2);
        let mut y = Vector::zeros(3);
        assert!(exec.mxv(&a, &x_bad).into(&mut y).is_err());
        let x = Vector::zeros(3);
        let mut y_bad = Vector::<f64>::zeros(5);
        assert!(exec.mxv(&a, &x).into(&mut y_bad).is_err());
    }

    #[test]
    fn masked_transpose_writes_only_selected() {
        // Previously `GrbError::Unsupported`; now the full descriptor/mask
        // matrix is supported.
        let a = a3();
        let x = Vector::from_dense(vec![1.0, 2.0, 3.0]);
        let mask = Vector::<bool>::sparse_filled(3, vec![0, 2], true).unwrap();
        let mut masked = Vector::from_dense(vec![-1.0, -1.0, -1.0]);
        ctx::<Sequential>()
            .mxv(&a, &x)
            .transpose()
            .mask(&mask)
            .structural()
            .into(&mut masked)
            .unwrap();
        let mut full = Vector::zeros(3);
        ctx::<Sequential>()
            .mxv(&a, &x)
            .transpose()
            .into(&mut full)
            .unwrap();
        assert_eq!(masked.as_slice()[0], full.as_slice()[0]);
        assert_eq!(masked.as_slice()[1], -1.0, "unselected position untouched");
        assert_eq!(masked.as_slice()[2], full.as_slice()[2]);
    }

    #[test]
    fn masked_transpose_accum_combines() {
        let a = a3();
        let x = Vector::from_dense(vec![1.0, 2.0, 3.0]);
        let mask = Vector::<bool>::sparse_filled(3, vec![1], true).unwrap();
        let mut y = Vector::from_dense(vec![10.0, 10.0, 10.0]);
        ctx::<Sequential>()
            .mxv(&a, &x)
            .transpose()
            .mask(&mask)
            .structural()
            .accum(Plus)
            .into(&mut y)
            .unwrap();
        // (Aᵀx)[1] = 3·2 = 6; only index 1 is selected.
        assert_eq!(y.as_slice(), &[10.0, 16.0, 10.0]);
    }

    #[test]
    fn min_plus_semiring_mxv() {
        // Tropical semiring: y_i = min_j (A_ij + x_j) — one shortest-path
        // relaxation step. Absent entries contribute +inf (the min identity).
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 2.0)]).unwrap();
        let x = Vector::from_dense(vec![0.0, 10.0]);
        let mut y = Vector::zeros(2);
        ctx::<Sequential>()
            .mxv(&a, &x)
            .ring(MinPlus)
            .into(&mut y)
            .unwrap();
        assert_eq!(y.as_slice(), &[11.0, 2.0]);
    }

    #[test]
    fn empty_rows_produce_semiring_zero() {
        let a = CsrMatrix::<f64>::from_triplets(2, 2, &[(0, 0, 3.0)]).unwrap();
        let x = Vector::from_dense(vec![1.0, 1.0]);
        let mut y = Vector::from_dense(vec![99.0, 99.0]);
        ctx::<Sequential>().mxv(&a, &x).into(&mut y).unwrap();
        assert_eq!(
            y.as_slice(),
            &[3.0, 0.0],
            "empty row yields additive identity"
        );
    }
}

#[cfg(test)]
mod accum_tests {
    use super::*;
    use crate::backend::Sequential;
    use crate::context::ctx;
    use crate::ops::binary::{Minus, Plus};

    #[test]
    fn accum_adds_to_existing_values() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (1, 1, 3.0)]).unwrap();
        let x = Vector::from_dense(vec![1.0, 1.0]);
        let mut y = Vector::from_dense(vec![10.0, 20.0]);
        ctx::<Sequential>()
            .mxv(&a, &x)
            .accum(Plus)
            .into(&mut y)
            .unwrap();
        assert_eq!(y.as_slice(), &[12.0, 23.0]);
    }

    #[test]
    fn transpose_accum_matches_manual() {
        // Injection-like rectangular matrix: y += A^T x.
        let a = CsrMatrix::from_triplets(2, 4, &[(0, 1, 1.0), (1, 3, 1.0)]).unwrap();
        let x = Vector::from_dense(vec![5.0, 7.0]);
        let mut y = Vector::from_dense(vec![1.0, 1.0, 1.0, 1.0]);
        ctx::<Sequential>()
            .mxv(&a, &x)
            .transpose()
            .accum(Plus)
            .into(&mut y)
            .unwrap();
        assert_eq!(y.as_slice(), &[1.0, 6.0, 1.0, 8.0]);
    }

    #[test]
    fn masked_accum_touches_only_selected() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (1, 1, 3.0)]).unwrap();
        let x = Vector::from_dense(vec![1.0, 1.0]);
        let mut y = Vector::from_dense(vec![10.0, 20.0]);
        let mask = Vector::<bool>::sparse_filled(2, vec![1], true).unwrap();
        ctx::<Sequential>()
            .mxv(&a, &x)
            .mask(&mask)
            .structural()
            .accum(Plus)
            .into(&mut y)
            .unwrap();
        assert_eq!(y.as_slice(), &[10.0, 23.0]);
    }

    #[test]
    fn non_additive_accumulator_on_transpose_uses_scratch_path() {
        // accum = Minus is not the semiring's ⊕, so the kernel must compute
        // the full product first: y = y − Aᵀx.
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (0, 1, 1.0), (1, 1, 3.0)]).unwrap();
        let x = Vector::from_dense(vec![1.0, 2.0]);
        let mut y = Vector::from_dense(vec![10.0, 10.0]);
        ctx::<Sequential>()
            .mxv(&a, &x)
            .transpose()
            .accum(Minus)
            .into(&mut y)
            .unwrap();
        // Aᵀx = [2·1, 1·1 + 3·2] = [2, 7].
        assert_eq!(y.as_slice(), &[8.0, 3.0]);
    }
}
