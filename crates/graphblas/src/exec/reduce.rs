//! Reductions: `reduce` (vector → scalar over a monoid) and `dot`.
//!
//! `dot` is the second of CG's three hot kernels (paper §II-C). In BSP terms
//! it is also the kernel that forces a global synchronization per CG
//! iteration, which the distributed simulation accounts for.

use crate::backend::Backend;
use crate::container::vector::Vector;
use crate::descriptor::Descriptor;
use crate::error::{check_dims, Result};
use crate::exec::fold_selected;
use crate::ops::monoid::Monoid;
use crate::ops::scalar::Scalar;
use crate::ops::semiring::Semiring;

/// Folds the selected entries of `x` over monoid `M`.
pub fn reduce<T, M, B>(x: &Vector<T>, mask: Option<&Vector<bool>>, desc: Descriptor) -> Result<T>
where
    T: Scalar,
    M: Monoid<T>,
    B: Backend,
{
    let xs = x.as_slice();
    fold_selected::<B, T, M, _>(x.len(), mask, desc, |i| xs[i])
}

/// `⟨x, y⟩ = ⊕_i x_i ⊗ y_i` over semiring `R`.
pub fn dot<T, R, B>(x: &Vector<T>, y: &Vector<T>, _ring: R) -> Result<T>
where
    T: Scalar,
    R: Semiring<T>,
    B: Backend,
{
    check_dims("dot", "y vs x", x.len(), y.len())?;
    let xs = x.as_slice();
    let ys = y.as_slice();
    Ok(B::fold::<T, R::Add, _>(x.len(), |i| R::mul(xs[i], ys[i])))
}

/// `‖x‖² = ⟨x, x⟩` over the arithmetic semiring — the residual norm CG
/// tracks each iteration.
pub fn norm2_squared<T, R, B>(x: &Vector<T>, ring: R) -> Result<T>
where
    T: Scalar,
    R: Semiring<T>,
    B: Backend,
{
    dot::<T, R, B>(x, x, ring)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Parallel, Sequential};
    use crate::ops::binary::{Max, Min, Plus};
    use crate::ops::semiring::PlusTimes;

    #[test]
    fn reduce_sum_min_max() {
        let x = Vector::from_dense(vec![3.0, -1.0, 4.0, 1.0, -5.0]);
        let s = reduce::<f64, Plus, Sequential>(&x, None, Descriptor::DEFAULT).unwrap();
        assert_eq!(s, 2.0);
        let mn = reduce::<f64, Min, Sequential>(&x, None, Descriptor::DEFAULT).unwrap();
        assert_eq!(mn, -5.0);
        let mx = reduce::<f64, Max, Sequential>(&x, None, Descriptor::DEFAULT).unwrap();
        assert_eq!(mx, 4.0);
    }

    #[test]
    fn reduce_masked() {
        let x = Vector::from_dense(vec![1.0, 2.0, 4.0, 8.0]);
        let mask = Vector::<bool>::sparse_filled(4, vec![0, 2], true).unwrap();
        let s = reduce::<f64, Plus, Sequential>(&x, Some(&mask), Descriptor::STRUCTURAL).unwrap();
        assert_eq!(s, 5.0);
        let inv = Descriptor::STRUCTURAL.with(Descriptor::INVERT_MASK);
        let s = reduce::<f64, Plus, Sequential>(&x, Some(&mask), inv).unwrap();
        assert_eq!(s, 10.0);
    }

    #[test]
    fn reduce_empty_is_identity() {
        let x = Vector::<f64>::zeros(0);
        assert_eq!(reduce::<f64, Plus, Sequential>(&x, None, Descriptor::DEFAULT).unwrap(), 0.0);
        assert_eq!(
            reduce::<f64, Min, Sequential>(&x, None, Descriptor::DEFAULT).unwrap(),
            f64::INFINITY
        );
    }

    #[test]
    fn dot_basic() {
        let x = Vector::from_dense(vec![1.0, 2.0, 3.0]);
        let y = Vector::from_dense(vec![4.0, -5.0, 6.0]);
        assert_eq!(dot::<f64, PlusTimes, Sequential>(&x, &y, PlusTimes).unwrap(), 12.0);
    }

    #[test]
    fn dot_dim_mismatch() {
        let x = Vector::<f64>::zeros(2);
        let y = Vector::<f64>::zeros(3);
        assert!(dot::<f64, PlusTimes, Sequential>(&x, &y, PlusTimes).is_err());
    }

    #[test]
    fn norm2() {
        let x = Vector::from_dense(vec![3.0, 4.0]);
        assert_eq!(norm2_squared::<f64, PlusTimes, Sequential>(&x, PlusTimes).unwrap(), 25.0);
    }

    #[test]
    fn parallel_dot_matches_sequential_on_exact_values() {
        let n = 50_000;
        let x = Vector::from_dense((0..n).map(|i| ((i % 17) as f64) - 8.0).collect());
        let y = Vector::from_dense((0..n).map(|i| ((i % 13) as f64) - 6.0).collect());
        let a = dot::<f64, PlusTimes, Sequential>(&x, &y, PlusTimes).unwrap();
        let b = dot::<f64, PlusTimes, Parallel>(&x, &y, PlusTimes).unwrap();
        // Small-integer-valued products sum exactly in f64 at this size.
        assert_eq!(a, b);
    }
}
