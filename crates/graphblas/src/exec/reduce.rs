//! Reductions: `reduce` (vector → scalar over a monoid) and `dot`.
//!
//! `dot` is the second of CG's three hot kernels (paper §II-C). In BSP terms
//! it is also the kernel that forces a global synchronization per CG
//! iteration, which the distributed simulation accounts for.
//!
//! The public ways in are [`Ctx::reduce`](crate::Ctx::reduce) /
//! [`Ctx::dot`](crate::Ctx::dot) and their deferred counterparts on
//! [`Pipeline`](crate::Pipeline); the pre-0.2 free functions were removed
//! in 0.3.

use crate::backend::Backend;
use crate::container::vector::Vector;
use crate::descriptor::Descriptor;
use crate::error::{check_dims, Result};
use crate::exec::fold_selected;
use crate::ops::monoid::Monoid;
use crate::ops::scalar::Scalar;
use crate::ops::semiring::Semiring;

/// Folds the selected entries of `x` over monoid `M` — the kernel behind
/// the reduce builder.
pub(crate) fn reduce_exec<T, M, B>(
    x: &Vector<T>,
    mask: Option<&Vector<bool>>,
    desc: Descriptor,
) -> Result<T>
where
    T: Scalar,
    M: Monoid<T>,
    B: Backend,
{
    let xs = x.as_slice();
    fold_selected::<B, T, M, _>(x.len(), mask, desc, |i| xs[i])
}

/// `⟨x, y⟩ = ⊕_i x_i ⊗ y_i` over semiring `R` — the kernel behind the dot
/// builder.
pub(crate) fn dot_exec<T, R, B>(x: &Vector<T>, y: &Vector<T>) -> Result<T>
where
    T: Scalar,
    R: Semiring<T>,
    B: Backend,
{
    check_dims("dot", "y vs x", x.len(), y.len())?;
    let xs = x.as_slice();
    let ys = y.as_slice();
    Ok(B::fold::<T, R::Add, _>(x.len(), |i| R::mul(xs[i], ys[i])))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Parallel, Sequential};
    use crate::context::ctx;
    use crate::ops::binary::{Max, Min};
    use crate::ops::semiring::MinPlus;

    #[test]
    fn reduce_sum_min_max() {
        let x = Vector::from_dense(vec![3.0, -1.0, 4.0, 1.0, -5.0]);
        let exec = ctx::<Sequential>();
        let s = exec.reduce(&x).compute().unwrap();
        assert_eq!(s, 2.0);
        let mn = exec.reduce(&x).monoid(Min).compute().unwrap();
        assert_eq!(mn, -5.0);
        let mx = exec.reduce(&x).monoid(Max).compute().unwrap();
        assert_eq!(mx, 4.0);
    }

    #[test]
    fn reduce_masked() {
        let x = Vector::from_dense(vec![1.0, 2.0, 4.0, 8.0]);
        let mask = Vector::<bool>::sparse_filled(4, vec![0, 2], true).unwrap();
        let exec = ctx::<Sequential>();
        let s = exec.reduce(&x).mask(&mask).structural().compute().unwrap();
        assert_eq!(s, 5.0);
        let s = exec
            .reduce(&x)
            .mask(&mask)
            .structural()
            .invert_mask()
            .compute()
            .unwrap();
        assert_eq!(s, 10.0);
    }

    #[test]
    fn reduce_empty_is_identity() {
        let x = Vector::<f64>::zeros(0);
        let exec = ctx::<Sequential>();
        assert_eq!(exec.reduce(&x).compute().unwrap(), 0.0);
        assert_eq!(
            exec.reduce(&x).monoid(Min).compute().unwrap(),
            f64::INFINITY
        );
    }

    #[test]
    fn dot_basic() {
        let x = Vector::from_dense(vec![1.0, 2.0, 3.0]);
        let y = Vector::from_dense(vec![4.0, -5.0, 6.0]);
        assert_eq!(ctx::<Sequential>().dot(&x, &y).compute().unwrap(), 12.0);
    }

    #[test]
    fn dot_over_tropical_ring() {
        // min_i (x_i + y_i): the ring parameter stays fully generic.
        let x = Vector::from_dense(vec![3.0, 1.0, 9.0]);
        let y = Vector::from_dense(vec![2.0, 5.0, 1.0]);
        assert_eq!(
            ctx::<Sequential>()
                .dot(&x, &y)
                .ring(MinPlus)
                .compute()
                .unwrap(),
            5.0
        );
    }

    #[test]
    fn dot_dim_mismatch() {
        let x = Vector::<f64>::zeros(2);
        let y = Vector::<f64>::zeros(3);
        assert!(ctx::<Sequential>().dot(&x, &y).compute().is_err());
    }

    #[test]
    fn norm2() {
        let x = Vector::from_dense(vec![3.0, 4.0]);
        assert_eq!(ctx::<Sequential>().norm2_squared(&x).unwrap(), 25.0);
    }

    #[test]
    fn parallel_dot_matches_sequential_on_exact_values() {
        let n = 50_000;
        let x = Vector::from_dense((0..n).map(|i| ((i % 17) as f64) - 8.0).collect());
        let y = Vector::from_dense((0..n).map(|i| ((i % 13) as f64) - 6.0).collect());
        let a = ctx::<Sequential>().dot(&x, &y).compute().unwrap();
        let b = ctx::<Parallel>().dot(&x, &y).compute().unwrap();
        // Small-integer-valued products sum exactly in f64 at this size.
        assert_eq!(a, b);
    }
}
