//! Direction-optimizing sparse-frontier `mxv` (push/pull selection).
//!
//! Graph traversals spend most steps on frontiers that touch a tiny
//! fraction of the vertex set; the dense kernel still sweeps all `n` rows.
//! This module provides the sparse-input product
//! `y⟨mask⟩ = y ⊙? (A ⊕.⊗ x)` for a [`SparseVector`] frontier, choosing
//! between two orientations per call (Beamer et al.'s direction
//! optimization, as adopted by GraphBLAST / SuiteSparse:GraphBLAS):
//!
//! * **push** — scatter along the columns named by the frontier's stored
//!   entries, using the [`GraphMatrix`]'s column-major (CSC) view. Work is
//!   `Θ(Σ_{j ∈ frontier} nnz(A(:,j)))` — proportional to the frontier, not
//!   to `n`;
//! * **pull** — densify the frontier and run the ordinary dense kernel
//!   ([`mxv_exec`]), a full row sweep. This *is* the dense code path on the
//!   same data, so its results are bit-identical by construction.
//!
//! Push is selected only when it is both profitable (frontier density at
//! most [`PUSH_PULL_THRESHOLD`]) and **provably bit-identical** to the
//! dense sweep: the frontier must be compressed with `fill == R::zero()`
//! and the semiring must declare
//! [`ANNIHILATING_ZERO`](crate::Semiring::ANNIHILATING_ZERO), so every
//! column the scatter skips would have contributed a bitwise no-op
//! `add(acc, mul(a, zero))` to the dense accumulation. One further
//! carve-out: the transposed dense kernel fuses `accum = ⊕` scatters
//! directly onto `y` (a different float summation order than
//! scratch-then-store), so that regime also pulls. Everything else —
//! masks, accumulators, `TRANSPOSE` — is honored identically in both
//! modes, which is what keeps the fluent builder surface unchanged for
//! sparse callers.
//!
//! Sparse products are **eager-only**: they do not participate in
//! pipeline fusion or compiled plans, so a traversal mixing sparse `mxv`
//! with deferred dense stages simply falls through to these exact kernels
//! between pipeline runs.

use crate::backend::Backend;
use crate::container::matrix::GraphMatrix;
use crate::container::vector::{SparseVector, Vector};
use crate::descriptor::Descriptor;
use crate::error::{check_dims, Result};
use crate::exec::for_each_selected;
use crate::exec::mxv::mxv_exec;
use crate::ops::accum::{AccumMode, AccumWith};
use crate::ops::scalar::Scalar;
use crate::ops::semiring::Semiring;
use crate::util::UnsafeSlice;
use std::any::TypeId;

/// Frontier densities at or below this fraction run in push mode
/// (when push is otherwise legal); denser frontiers pull.
///
/// 1/16 is the classic direction-optimization break-even point: below it
/// the frontier-proportional scatter beats the `Θ(n)` row sweep.
pub const PUSH_PULL_THRESHOLD: f64 = 1.0 / 16.0;

/// Which orientation a sparse-frontier product actually ran in.
///
/// Returned by the sparse terminals so algorithms (and the serve meter)
/// can count direction-optimization decisions.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FrontierMode {
    /// Column-oriented scatter over the frontier's stored entries.
    Push,
    /// Densified frontier through the ordinary dense row sweep.
    Pull,
}

/// `y⟨mask⟩ = y ⊙? (A ⊕.⊗ x)` for a sparse frontier `x` — the single
/// direction-optimizing kernel behind [`Ctx::mxv_sparse`](crate::Ctx::mxv_sparse).
///
/// Returns the [`FrontierMode`] the call executed in. Either mode is
/// bit-identical to densifying `x` and running the dense kernel.
pub(crate) fn mxv_sparse_exec<T, R, A, B>(
    y: &mut Vector<T>,
    mask: Option<&Vector<bool>>,
    desc: Descriptor,
    m: &GraphMatrix<T>,
    x: &SparseVector<T>,
) -> Result<FrontierMode>
where
    T: Scalar,
    R: Semiring<T>,
    A: AccumMode<T>,
    B: Backend,
{
    if desc.is_transposed() {
        check_dims("mxv_sparse^T", "x vs nrows", m.nrows(), x.len())?;
        check_dims("mxv_sparse^T", "y vs ncols", m.ncols(), y.len())?;
    } else {
        check_dims("mxv_sparse", "x vs ncols", m.ncols(), x.len())?;
        check_dims("mxv_sparse", "y vs nrows", m.nrows(), y.len())?;
    }

    // The transposed dense kernel fuses `accum = ⊕` scatters straight onto
    // `y` (see `transpose_mxv_exec`), a different summation order than our
    // scratch-then-store scatter; pull instead so results stay bit-exact.
    let transposed_fused_accum = desc.is_transposed()
        && mask.is_none()
        && TypeId::of::<A>() == TypeId::of::<AccumWith<R::Add>>();
    let push_legal = R::ANNIHILATING_ZERO
        && !x.is_promoted()
        && x.fill() == R::zero()
        && !transposed_fused_accum;

    if !push_legal || x.density() > PUSH_PULL_THRESHOLD {
        mxv_exec::<T, R, A, B>(y, mask, desc, m.csr(), &x.to_dense())?;
        return Ok(FrontierMode::Pull);
    }

    // Push: walk the stored frontier entries in ascending index order and
    // scatter each column of the effective matrix into a scratch
    // accumulator, then write the selected outputs through the accumulator
    // mode — the same `for_each_selected` + `A::store` tail as the dense
    // kernels, so mask/descriptor semantics match exactly.
    let col_major = if desc.is_transposed() {
        m.csr()
    } else {
        m.csc()
    };
    let out_len = y.len();
    let mut scratch = vec![R::zero(); out_len];
    for (j, xv) in x.iter_stored() {
        let (rows, vals) = col_major.row(j);
        for (&i, &a) in rows.iter().zip(vals) {
            let slot = &mut scratch[i as usize];
            *slot = R::add(*slot, R::mul(a, xv));
        }
    }
    let out = UnsafeSlice::new(y.as_mut_slice());
    for_each_selected::<B, _>(out_len, mask, desc, |i| {
        // SAFETY: selected indices are unique per the mask contract.
        unsafe { A::store(out.get_mut(i), scratch[i]) };
    })?;
    Ok(FrontierMode::Push)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Parallel, Sequential};
    use crate::container::matrix::CsrMatrix;
    use crate::ops::accum::NoAccum;
    use crate::ops::binary::Plus;
    use crate::ops::semiring::{MaxTimes, MinPlus, PlusTimes};

    fn graph() -> GraphMatrix<f64> {
        // 32×32 ring + chords: every column has a few nonzeroes, so push
        // and pull genuinely traverse different storage.
        let n = 32;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, (i + 1) % n, 1.0 + i as f64));
            t.push(((i + 5) % n, i, 2.0 + (i % 7) as f64));
        }
        GraphMatrix::from_csr(CsrMatrix::from_triplets(n, n, &t).unwrap())
    }

    fn sparse_frontier(n: usize) -> SparseVector<f64> {
        SparseVector::from_entries(n, 0.0, &[(3, 1.0), (17, 2.0)]).unwrap()
    }

    fn dense_vs_sparse<R, A>(
        mask: Option<&Vector<bool>>,
        desc: Descriptor,
        y0: &[f64],
        want_mode: FrontierMode,
    ) where
        R: Semiring<f64>,
        A: AccumMode<f64>,
    {
        let m = graph();
        let x = sparse_frontier(m.ncols());
        let mut y_dense = Vector::from_dense(y0.to_vec());
        let mut y_sparse = Vector::from_dense(y0.to_vec());
        mxv_exec::<f64, R, A, Sequential>(&mut y_dense, mask, desc, m.csr(), &x.to_dense())
            .unwrap();
        let mode =
            mxv_sparse_exec::<f64, R, A, Sequential>(&mut y_sparse, mask, desc, &m, &x).unwrap();
        assert_eq!(mode, want_mode);
        assert_eq!(y_dense.as_slice(), y_sparse.as_slice());
        // And the parallel backend agrees bit-for-bit.
        let mut y_par = Vector::from_dense(y0.to_vec());
        mxv_sparse_exec::<f64, R, A, Parallel>(&mut y_par, mask, desc, &m, &x).unwrap();
        assert_eq!(y_dense.as_slice(), y_par.as_slice());
    }

    #[test]
    fn push_matches_dense_plain() {
        let y0 = vec![0.0; 32];
        dense_vs_sparse::<PlusTimes, NoAccum>(None, Descriptor::DEFAULT, &y0, FrontierMode::Push);
    }

    #[test]
    fn push_matches_dense_with_accum_and_prior_values() {
        let y0: Vec<f64> = (0..32).map(|i| i as f64 - 7.5).collect();
        dense_vs_sparse::<PlusTimes, AccumWith<Plus>>(
            None,
            Descriptor::DEFAULT,
            &y0,
            FrontierMode::Push,
        );
    }

    #[test]
    fn push_matches_dense_masked() {
        let mask = Vector::<bool>::sparse_filled(32, vec![0, 4, 18, 31], true).unwrap();
        let y0 = vec![-1.0; 32];
        dense_vs_sparse::<PlusTimes, NoAccum>(
            Some(&mask),
            Descriptor::STRUCTURAL,
            &y0,
            FrontierMode::Push,
        );
        dense_vs_sparse::<PlusTimes, NoAccum>(
            Some(&mask),
            Descriptor::STRUCTURAL.with(Descriptor::INVERT_MASK),
            &y0,
            FrontierMode::Push,
        );
    }

    #[test]
    fn push_matches_dense_transposed() {
        let y0 = vec![0.0; 32];
        dense_vs_sparse::<PlusTimes, NoAccum>(None, Descriptor::TRANSPOSE, &y0, FrontierMode::Push);
        // Masked transpose still pushes (the fused-accum carve-out is only
        // for the unmasked `accum = ⊕` regime).
        let mask = Vector::<bool>::sparse_filled(32, vec![2, 3, 30], true).unwrap();
        dense_vs_sparse::<PlusTimes, AccumWith<Plus>>(
            Some(&mask),
            Descriptor::TRANSPOSE.with(Descriptor::STRUCTURAL),
            &vec![5.0; 32],
            FrontierMode::Push,
        );
    }

    #[test]
    fn transposed_fused_accum_pulls_for_bit_exactness() {
        let y0: Vec<f64> = (0..32).map(|i| 0.125 * i as f64).collect();
        dense_vs_sparse::<PlusTimes, AccumWith<Plus>>(
            None,
            Descriptor::TRANSPOSE,
            &y0,
            FrontierMode::Pull,
        );
    }

    #[test]
    fn dense_frontier_pulls() {
        let m = graph();
        let n = m.ncols();
        let entries: Vec<(u32, f64)> = (0..n as u32 / 2).map(|i| (2 * i, 1.0)).collect();
        let x = SparseVector::from_entries(n, 0.0, &entries).unwrap();
        assert!(x.density() > PUSH_PULL_THRESHOLD);
        let mut y_sparse = Vector::zeros(n);
        let mode = mxv_sparse_exec::<f64, PlusTimes, NoAccum, Sequential>(
            &mut y_sparse,
            None,
            Descriptor::DEFAULT,
            &m,
            &x,
        )
        .unwrap();
        assert_eq!(mode, FrontierMode::Pull);
        let mut y_dense = Vector::zeros(n);
        mxv_exec::<f64, PlusTimes, NoAccum, Sequential>(
            &mut y_dense,
            None,
            Descriptor::DEFAULT,
            m.csr(),
            &x.to_dense(),
        )
        .unwrap();
        assert_eq!(y_dense.as_slice(), y_sparse.as_slice());
    }

    #[test]
    fn min_plus_frontier_pushes_with_infinite_fill_only_when_zero() {
        // A MinPlus frontier with fill == +∞ (the ring's zero) may push…
        let m = graph();
        let x = SparseVector::from_entries(32, f64::INFINITY, &[(3, 0.5), (17, 0.25)]).unwrap();
        let mut y_sparse = Vector::from_dense(vec![f64::INFINITY; 32]);
        let mode = mxv_sparse_exec::<f64, MinPlus, NoAccum, Sequential>(
            &mut y_sparse,
            None,
            Descriptor::DEFAULT,
            &m,
            &x,
        )
        .unwrap();
        assert_eq!(mode, FrontierMode::Push);
        let mut y_dense = Vector::from_dense(vec![f64::INFINITY; 32]);
        mxv_exec::<f64, MinPlus, NoAccum, Sequential>(
            &mut y_dense,
            None,
            Descriptor::DEFAULT,
            m.csr(),
            &x.to_dense(),
        )
        .unwrap();
        assert_eq!(y_dense.as_slice(), y_sparse.as_slice());

        // …but a frontier whose fill is NOT the ring's zero must pull:
        // skipped entries would not be no-ops.
        let x0 = SparseVector::from_entries(32, 0.0, &[(3, 0.5)]).unwrap();
        let mut y = Vector::from_dense(vec![f64::INFINITY; 32]);
        let mode = mxv_sparse_exec::<f64, MinPlus, NoAccum, Sequential>(
            &mut y,
            None,
            Descriptor::DEFAULT,
            &m,
            &x0,
        )
        .unwrap();
        assert_eq!(mode, FrontierMode::Pull);
    }

    #[test]
    fn non_annihilating_ring_always_pulls() {
        let m = graph();
        let x = SparseVector::from_entries(32, f64::NEG_INFINITY, &[(3, 1.0)]).unwrap();
        let mut y = Vector::from_dense(vec![f64::NEG_INFINITY; 32]);
        let mode = mxv_sparse_exec::<f64, MaxTimes, NoAccum, Sequential>(
            &mut y,
            None,
            Descriptor::DEFAULT,
            &m,
            &x,
        )
        .unwrap();
        assert_eq!(
            mode,
            FrontierMode::Pull,
            "MaxTimes zero does not annihilate"
        );
    }

    #[test]
    fn promoted_frontier_pulls() {
        let m = graph();
        let x = SparseVector::promoted(vec![1.0; 32], 0.0);
        let mut y = Vector::zeros(32);
        let mode = mxv_sparse_exec::<f64, PlusTimes, NoAccum, Sequential>(
            &mut y,
            None,
            Descriptor::DEFAULT,
            &m,
            &x,
        )
        .unwrap();
        assert_eq!(mode, FrontierMode::Pull);
    }

    #[test]
    fn sparse_dimension_errors() {
        let m = graph();
        let x_bad = SparseVector::<f64>::empty(7, 0.0);
        let mut y = Vector::zeros(32);
        assert!(mxv_sparse_exec::<f64, PlusTimes, NoAccum, Sequential>(
            &mut y,
            None,
            Descriptor::DEFAULT,
            &m,
            &x_bad,
        )
        .is_err());
        let x = sparse_frontier(32);
        let mut y_bad = Vector::<f64>::zeros(5);
        assert!(mxv_sparse_exec::<f64, PlusTimes, NoAccum, Sequential>(
            &mut y_bad,
            None,
            Descriptor::DEFAULT,
            &m,
            &x,
        )
        .is_err());
    }
}
