//! The GraphBLAS primitives.
//!
//! Every primitive is generic over the value domain `T`, an algebraic
//! structure, and a [`Backend`](crate::Backend). Masked variants follow the
//! semantics of the paper's Listing 2/3: outputs are computed **only at
//! selected positions**; unselected positions of the output are left
//! untouched (no-replace semantics), which is what the RBGS color sweep
//! relies on.

pub mod apply;
pub mod ewise;
pub mod extract;
pub mod fused;
pub mod mxm;
pub mod mxv;
pub mod reduce;
pub mod sparse;

use crate::backend::Backend;
use crate::container::vector::Vector;
use crate::descriptor::Descriptor;
use crate::error::{check_dims, Result};
use crate::ops::monoid::Monoid;

/// Drives `f(i)` over every index selected by `mask` under `desc`.
///
/// Selection rules (GraphBLAS C API §3.7, restricted to boolean masks):
///
/// * no mask → all of `0..n`;
/// * structural → stored entries of the mask select (values ignored);
/// * non-structural → entries stored **and** true select;
/// * inverted → the complement of the above.
///
/// The common HPCG case — sparse structural mask, not inverted — takes the
/// fast path that iterates the pattern directly, so cost is `Θ(nnz(mask))`.
pub(crate) fn for_each_selected<B, F>(
    n: usize,
    mask: Option<&Vector<bool>>,
    desc: Descriptor,
    f: F,
) -> Result<()>
where
    B: Backend,
    F: Fn(usize) + Send + Sync,
{
    let Some(m) = mask else {
        B::for_n(n, f);
        return Ok(());
    };
    check_dims("mask", "mask length", n, m.len())?;
    let inverted = desc.is_mask_inverted();
    match (m.pattern(), desc.is_structural()) {
        (Some(idx), true) if !inverted => B::for_indices(idx, f),
        (None, true) if !inverted => B::for_n(n, f),
        (Some(idx), true) => {
            // Structural complement of a sparse pattern: merge-skip. The
            // pattern is sorted, so a linear merge suffices; this path is
            // outside HPCG's hot loop.
            let mut cursor = 0;
            for i in 0..n {
                if cursor < idx.len() && idx[cursor] as usize == i {
                    cursor += 1;
                } else {
                    f(i);
                }
            }
        }
        (None, true) => { /* complement of a dense structural mask is empty */ }
        (_, false) => {
            // Value-checked: unstored slots hold `false`, so the dense value
            // buffer answers both stored-ness and truth in one read.
            let vals = m.as_slice();
            B::for_n(n, |i| {
                if vals[i] != inverted {
                    f(i);
                }
            });
        }
    }
    Ok(())
}

/// Folds `map(i)` over monoid `M` across every selected index (same
/// selection rules as [`for_each_selected`]).
pub(crate) fn fold_selected<B, T, M, F>(
    n: usize,
    mask: Option<&Vector<bool>>,
    desc: Descriptor,
    map: F,
) -> Result<T>
where
    B: Backend,
    T: Send,
    M: Monoid<T>,
    F: Fn(usize) -> T + Send + Sync,
{
    let Some(m) = mask else {
        return Ok(B::fold::<T, M, F>(n, map));
    };
    check_dims("mask", "mask length", n, m.len())?;
    let inverted = desc.is_mask_inverted();
    Ok(match (m.pattern(), desc.is_structural()) {
        (Some(idx), true) if !inverted => B::fold_indices::<T, M, F>(idx, map),
        (None, true) if !inverted => B::fold::<T, M, F>(n, map),
        (Some(idx), true) => {
            let mut acc = M::identity();
            let mut cursor = 0;
            for i in 0..n {
                if cursor < idx.len() && idx[cursor] as usize == i {
                    cursor += 1;
                } else {
                    acc = M::apply(acc, map(i));
                }
            }
            acc
        }
        (None, true) => M::identity(),
        (_, false) => {
            let vals = m.as_slice();
            B::fold::<T, M, _>(n, |i| {
                if vals[i] != inverted {
                    map(i)
                } else {
                    M::identity()
                }
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Sequential;
    use crate::ops::binary::Plus;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn collect_selected(n: usize, mask: Option<&Vector<bool>>, desc: Descriptor) -> Vec<usize> {
        let hits = std::sync::Mutex::new(Vec::new());
        for_each_selected::<Sequential, _>(n, mask, desc, |i| hits.lock().unwrap().push(i))
            .unwrap();
        let mut v = hits.into_inner().unwrap();
        v.sort_unstable();
        v
    }

    #[test]
    fn no_mask_selects_all() {
        assert_eq!(
            collect_selected(4, None, Descriptor::DEFAULT),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn sparse_structural_fast_path() {
        let m = Vector::<bool>::sparse_filled(6, vec![1, 4], true).unwrap();
        assert_eq!(
            collect_selected(6, Some(&m), Descriptor::STRUCTURAL),
            vec![1, 4]
        );
    }

    #[test]
    fn sparse_structural_ignores_values() {
        // Stored-but-false entries still select under structural.
        let m = Vector::<bool>::from_entries(4, &[(0, false), (2, true)]).unwrap();
        assert_eq!(
            collect_selected(4, Some(&m), Descriptor::STRUCTURAL),
            vec![0, 2]
        );
        // ... but not under value semantics.
        assert_eq!(collect_selected(4, Some(&m), Descriptor::DEFAULT), vec![2]);
    }

    #[test]
    fn inverted_masks() {
        let m = Vector::<bool>::sparse_filled(5, vec![1, 3], true).unwrap();
        let inv_struct = Descriptor::STRUCTURAL.with(Descriptor::INVERT_MASK);
        assert_eq!(collect_selected(5, Some(&m), inv_struct), vec![0, 2, 4]);
        assert_eq!(
            collect_selected(5, Some(&m), Descriptor::INVERT_MASK),
            vec![0, 2, 4],
            "value-inverted: unstored entries read as false"
        );
    }

    #[test]
    fn dense_structural_complement_is_empty() {
        let m = Vector::<bool>::filled(4, true);
        let inv = Descriptor::STRUCTURAL.with(Descriptor::INVERT_MASK);
        assert_eq!(collect_selected(4, Some(&m), inv), Vec::<usize>::new());
    }

    #[test]
    fn mask_length_checked() {
        let m = Vector::<bool>::filled(3, true);
        let count = AtomicUsize::new(0);
        let err = for_each_selected::<Sequential, _>(5, Some(&m), Descriptor::DEFAULT, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert!(err.is_err());
        assert_eq!(count.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn fold_selected_matches_for_each() {
        let m = Vector::<bool>::sparse_filled(10, vec![2, 3, 7], true).unwrap();
        let s: usize = fold_selected::<Sequential, usize, Plus, _>(
            10,
            Some(&m),
            Descriptor::STRUCTURAL,
            |i| i,
        )
        .unwrap();
        assert_eq!(s, 2 + 3 + 7);
        let all: usize =
            fold_selected::<Sequential, usize, Plus, _>(10, None, Descriptor::DEFAULT, |i| i)
                .unwrap();
        assert_eq!(all, 45);
    }
}
