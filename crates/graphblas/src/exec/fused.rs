//! Fused kernels behind the pipeline fusion pass (nonblocking execution).
//!
//! The paper's related work singles out kernel fusion as the optimization
//! HPCG vendors hand-write and cites the ALP nonblocking extension as the
//! GraphBLAS answer: express the operations separately, let the runtime
//! merge them. These kernels are the merge targets the generic pass in
//! [`crate::fusion`] lowers onto:
//!
//! * [`spmv_dot_exec`] — `y = A ⊕.⊗ x` with a dot-product epilogue folded
//!   into the same row sweep (CG's `⟨p, Ap⟩` right after `Ap`);
//! * [`axpy_norm_exec`] — `x ← x + α·y` with `⟨x, x⟩` accumulated in the
//!   same stream (CG's residual norm right after the residual update).
//!
//! # Bit-identity with the eager pair
//!
//! Both kernels drive the reduction through the *same* [`Backend::fold`]
//! the eager `dot` kernel uses, over the same length, with the row/element
//! computation as a side effect of the fold's map. Because the backends
//! partition folds deterministically by length, the fused result is
//! bit-identical to running the unfused pair — the property the pipeline
//! tests pin down on both backends.

use crate::backend::Backend;
use crate::container::matrix::CsrMatrix;
use crate::container::vector::Vector;
use crate::error::{check_dims, Result};
use crate::ops::scalar::Scalar;
use crate::ops::semiring::Semiring;
use crate::util::UnsafeSlice;

/// `y = A ⊕.⊗ x`, returning a dot product over the freshly computed rows.
///
/// The epilogue is `⟨w, y⟩` (or `⟨y, w⟩` when `product_on_left`); with
/// `w = None` it is `⟨y, y⟩`. Each fold element multiplies exactly as the
/// eager `dot` kernel would, so the reduction is bit-identical to running
/// `mxv` then `dot` on the same backend.
pub(crate) fn spmv_dot_exec<T, R, B>(
    y: &mut Vector<T>,
    a: &CsrMatrix<T>,
    x: &Vector<T>,
    w: Option<&Vector<T>>,
    product_on_left: bool,
) -> Result<T>
where
    T: Scalar,
    R: Semiring<T>,
    B: Backend,
{
    check_dims("spmv_dot", "x vs ncols", a.ncols(), x.len())?;
    check_dims("spmv_dot", "y vs nrows", a.nrows(), y.len())?;
    if let Some(w) = w {
        check_dims("spmv_dot", "w vs nrows", a.nrows(), w.len())?;
    }
    let xs = x.as_slice();
    let out = UnsafeSlice::new(y.as_mut_slice());
    // The epilogue shape is selected once out here and monomorphized into
    // its own sweep — never branched on inside the hot loop.
    Ok(match (w.map(|v| v.as_slice()), product_on_left) {
        (Some(ws), true) => spmv_sweep::<T, R, B, _>(a, xs, &out, |i, acc| R::mul(acc, ws[i])),
        (Some(ws), false) => spmv_sweep::<T, R, B, _>(a, xs, &out, |i, acc| R::mul(ws[i], acc)),
        (None, _) => spmv_sweep::<T, R, B, _>(a, xs, &out, |_, acc| R::mul(acc, acc)),
    })
}

/// The shared row sweep of [`spmv_dot_exec`], monomorphized per epilogue.
fn spmv_sweep<T, R, B, F>(a: &CsrMatrix<T>, xs: &[T], out: &UnsafeSlice<'_, T>, epilogue: F) -> T
where
    T: Scalar,
    R: Semiring<T>,
    B: Backend,
    F: Fn(usize, T) -> T + Send + Sync,
{
    B::fold::<T, R::Add, _>(a.nrows(), |i| {
        let (cols, vals) = a.row(i);
        let mut acc = R::zero();
        for (&c, &v) in cols.iter().zip(vals) {
            acc = R::add(acc, R::mul(v, xs[c as usize]));
        }
        // SAFETY: each row index is visited exactly once by the fold.
        unsafe { *out.get_mut(i) = acc };
        epilogue(i, acc)
    })
}

/// `x ← x + α·y`, returning `⟨x, x⟩` of the updated vector in the same pass.
///
/// The update expression matches the eager `axpy` kernel exactly and the
/// norm folds through the same backend fold `dot(x, x)` would use, so the
/// fused pair is bit-identical to running them separately.
pub(crate) fn axpy_norm_exec<T, R, B>(x: &mut Vector<T>, alpha: T, y: &Vector<T>) -> Result<T>
where
    T: Scalar,
    R: Semiring<T>,
    B: Backend,
{
    check_dims("axpy_norm", "y vs x", x.len(), y.len())?;
    let ys = y.as_slice();
    let n = x.len();
    let out = UnsafeSlice::new(x.as_mut_slice());
    Ok(B::fold::<T, R::Add, _>(n, |i| {
        // SAFETY: each index is visited exactly once by the fold.
        let slot = unsafe { out.get_mut(i) };
        *slot = slot.add(alpha.mul(ys[i]));
        R::mul(*slot, *slot)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Parallel, Sequential};
    use crate::context::ctx;
    use crate::ops::semiring::PlusTimes;

    fn tridiag(n: usize) -> CsrMatrix<f64> {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0 + (i % 5) as f64));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
        }
        CsrMatrix::from_triplets(n, n, &t).unwrap()
    }

    fn vec_mod(n: usize, m: usize) -> Vector<f64> {
        Vector::from_dense((0..n).map(|i| (i % m) as f64 - (m / 2) as f64).collect())
    }

    fn check_spmv_dot<B: Backend>() {
        let n = 3000; // large enough that the parallel backend actually splits
        let a = tridiag(n);
        let x = vec_mod(n, 13);
        let w = vec_mod(n, 7);

        let mut y_eager = Vector::zeros(n);
        let exec = ctx::<B>();
        exec.mxv(&a, &x).into(&mut y_eager).unwrap();
        let d_eager = exec.dot(&w, &y_eager).compute().unwrap();

        let mut y_fused = Vector::zeros(n);
        let d_fused =
            spmv_dot_exec::<f64, PlusTimes, B>(&mut y_fused, &a, &x, Some(&w), false).unwrap();
        assert_eq!(y_eager.as_slice(), y_fused.as_slice());
        assert_eq!(
            d_eager.to_bits(),
            d_fused.to_bits(),
            "fused dot must be bit-identical"
        );

        // Self-product epilogue: ⟨y, y⟩.
        let norm_eager = exec.norm2_squared(&y_eager).unwrap();
        let mut y2 = Vector::zeros(n);
        let norm_fused = spmv_dot_exec::<f64, PlusTimes, B>(&mut y2, &a, &x, None, true).unwrap();
        assert_eq!(norm_eager.to_bits(), norm_fused.to_bits());
    }

    fn check_axpy_norm<B: Backend>() {
        let n = 3000;
        let x0 = vec_mod(n, 11);
        let y = vec_mod(n, 9);
        let alpha = -0.375; // exactly representable

        let exec = ctx::<B>();
        let mut x_eager = x0.clone();
        exec.axpy(&mut x_eager, alpha, &y).unwrap();
        let norm_eager = exec.norm2_squared(&x_eager).unwrap();

        let mut x_fused = x0.clone();
        let norm_fused = axpy_norm_exec::<f64, PlusTimes, B>(&mut x_fused, alpha, &y).unwrap();
        assert_eq!(x_eager.as_slice(), x_fused.as_slice());
        assert_eq!(norm_eager.to_bits(), norm_fused.to_bits());
    }

    #[test]
    fn fused_kernels_match_eager_pair_sequential() {
        check_spmv_dot::<Sequential>();
        check_axpy_norm::<Sequential>();
    }

    #[test]
    fn fused_kernels_match_eager_pair_parallel() {
        check_spmv_dot::<Parallel>();
        check_axpy_norm::<Parallel>();
    }

    #[test]
    fn dimension_errors() {
        let a = tridiag(4);
        let x_bad = Vector::<f64>::zeros(3);
        let mut y = Vector::zeros(4);
        assert!(
            spmv_dot_exec::<f64, PlusTimes, Sequential>(&mut y, &a, &x_bad, None, true).is_err()
        );
        let mut x = Vector::<f64>::zeros(4);
        assert!(axpy_norm_exec::<f64, PlusTimes, Sequential>(&mut x, 1.0, &x_bad).is_err());
    }
}
