//! Element-wise binary operations on vectors.
//!
//! Covers HPCG's `waxpby` kernel (`w = α·x + β·y`, paper §II-C) plus the
//! general GraphBLAS `eWiseApply`. `waxpby` gets a dedicated kernel because
//! it is one of CG's three hot operations and fusing the two scalings with
//! the addition halves memory traffic versus two passes.

use crate::backend::Backend;
use crate::container::vector::Vector;
use crate::descriptor::Descriptor;
use crate::error::{check_dims, Result};
use crate::exec::for_each_selected;
use crate::ops::binary::BinaryOp;
use crate::ops::scalar::Scalar;
use crate::util::UnsafeSlice;

/// `w⟨mask⟩ = Op(x, y)` element-wise over the full index space.
///
/// This is GraphBLAS `eWiseApply` with set-union semantics on dense
/// operands: both inputs are read densely (absent entries are domain zero).
pub fn ewise<T, Op, B>(
    w: &mut Vector<T>,
    mask: Option<&Vector<bool>>,
    desc: Descriptor,
    x: &Vector<T>,
    y: &Vector<T>,
    _op: Op,
) -> Result<()>
where
    T: Scalar,
    Op: BinaryOp<T>,
    B: Backend,
{
    check_dims("ewise", "x vs output", w.len(), x.len())?;
    check_dims("ewise", "y vs output", w.len(), y.len())?;
    let xs = x.as_slice();
    let ys = y.as_slice();
    let n = w.len();
    let slots = UnsafeSlice::new(w.as_mut_slice());
    for_each_selected::<B, _>(n, mask, desc, |i| {
        // SAFETY: selected indices are unique per the mask contract.
        unsafe { slots.write(i, Op::apply(xs[i], ys[i])) };
    })?;
    Ok(())
}

/// `w = α·x + β·y` — HPCG's `waxpby`.
///
/// `w` may alias neither `x` nor `y` through Rust's borrow rules, but the
/// common in-place forms (`x = x + βy`) are expressed by passing the same
/// vector as `w` after cloning is avoided at the call site via
/// [`axpy_in_place`].
pub fn waxpby<T, B>(w: &mut Vector<T>, alpha: T, x: &Vector<T>, beta: T, y: &Vector<T>) -> Result<()>
where
    T: Scalar,
    B: Backend,
{
    check_dims("waxpby", "x vs output", w.len(), x.len())?;
    check_dims("waxpby", "y vs output", w.len(), y.len())?;
    let xs = x.as_slice();
    let ys = y.as_slice();
    let n = w.len();
    let slots = UnsafeSlice::new(w.as_mut_slice());
    B::for_n(n, |i| {
        // SAFETY: each index visited exactly once.
        unsafe { slots.write(i, alpha.mul(xs[i]).add(beta.mul(ys[i]))) };
    });
    Ok(())
}

/// `x = x + α·y` — the in-place `axpy` CG uses for its vector updates.
pub fn axpy_in_place<T, B>(x: &mut Vector<T>, alpha: T, y: &Vector<T>) -> Result<()>
where
    T: Scalar,
    B: Backend,
{
    check_dims("axpy", "y vs x", x.len(), y.len())?;
    let ys = y.as_slice();
    let n = x.len();
    let slots = UnsafeSlice::new(x.as_mut_slice());
    B::for_n(n, |i| {
        // SAFETY: each index visited exactly once.
        unsafe {
            let slot = slots.get_mut(i);
            *slot = slot.add(alpha.mul(ys[i]));
        }
    });
    Ok(())
}

/// `w = w ⊕ (x ⊗ y)` element-wise with explicit accumulate — GraphBLAS
/// `eWiseMult` with a `plus` accumulator, exposed for solver fusion
/// experiments (see the `fused` module of the `hpcg` crate).
pub fn ewise_mul_add<T, B>(w: &mut Vector<T>, x: &Vector<T>, y: &Vector<T>) -> Result<()>
where
    T: Scalar,
    B: Backend,
{
    check_dims("ewise_mul_add", "x vs output", w.len(), x.len())?;
    check_dims("ewise_mul_add", "y vs output", w.len(), y.len())?;
    let xs = x.as_slice();
    let ys = y.as_slice();
    let n = w.len();
    let slots = UnsafeSlice::new(w.as_mut_slice());
    B::for_n(n, |i| {
        // SAFETY: each index visited exactly once.
        unsafe {
            let slot = slots.get_mut(i);
            *slot = slot.add(xs[i].mul(ys[i]));
        }
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Parallel, Sequential};
    use crate::ops::binary::{Minus, Plus, Times};

    #[test]
    fn ewise_plus_and_minus() {
        let x = Vector::from_dense(vec![1.0, 2.0, 3.0]);
        let y = Vector::from_dense(vec![10.0, 20.0, 30.0]);
        let mut w = Vector::zeros(3);
        ewise::<f64, Plus, Sequential>(&mut w, None, Descriptor::DEFAULT, &x, &y, Plus).unwrap();
        assert_eq!(w.as_slice(), &[11.0, 22.0, 33.0]);
        ewise::<f64, Minus, Sequential>(&mut w, None, Descriptor::DEFAULT, &y, &x, Minus).unwrap();
        assert_eq!(w.as_slice(), &[9.0, 18.0, 27.0]);
    }

    #[test]
    fn ewise_masked() {
        let x = Vector::from_dense(vec![1.0, 2.0]);
        let y = Vector::from_dense(vec![3.0, 4.0]);
        let mut w = Vector::from_dense(vec![0.5, 0.5]);
        let mask = Vector::<bool>::sparse_filled(2, vec![1], true).unwrap();
        ewise::<f64, Times, Sequential>(&mut w, Some(&mask), Descriptor::STRUCTURAL, &x, &y, Times)
            .unwrap();
        assert_eq!(w.as_slice(), &[0.5, 8.0]);
    }

    #[test]
    fn waxpby_basic() {
        let x = Vector::from_dense(vec![1.0, 2.0]);
        let y = Vector::from_dense(vec![10.0, 20.0]);
        let mut w = Vector::zeros(2);
        waxpby::<f64, Sequential>(&mut w, 2.0, &x, -1.0, &y).unwrap();
        assert_eq!(w.as_slice(), &[-8.0, -16.0]);
    }

    #[test]
    fn waxpby_parallel_matches_sequential() {
        let n = 20_000;
        let x = Vector::from_dense((0..n).map(|i| (i % 11) as f64).collect());
        let y = Vector::from_dense((0..n).map(|i| (i % 5) as f64).collect());
        let mut w1 = Vector::zeros(n);
        let mut w2 = Vector::zeros(n);
        waxpby::<f64, Sequential>(&mut w1, 3.0, &x, -2.0, &y).unwrap();
        waxpby::<f64, Parallel>(&mut w2, 3.0, &x, -2.0, &y).unwrap();
        assert_eq!(w1.as_slice(), w2.as_slice());
    }

    #[test]
    fn axpy_in_place_updates() {
        let mut x = Vector::from_dense(vec![1.0, 2.0, 3.0]);
        let y = Vector::from_dense(vec![1.0, 1.0, 1.0]);
        axpy_in_place::<f64, Sequential>(&mut x, 0.5, &y).unwrap();
        assert_eq!(x.as_slice(), &[1.5, 2.5, 3.5]);
    }

    #[test]
    fn ewise_mul_add_accumulates() {
        let mut w = Vector::from_dense(vec![1.0, 1.0]);
        let x = Vector::from_dense(vec![2.0, 3.0]);
        let y = Vector::from_dense(vec![10.0, 10.0]);
        ewise_mul_add::<f64, Sequential>(&mut w, &x, &y).unwrap();
        assert_eq!(w.as_slice(), &[21.0, 31.0]);
    }

    #[test]
    fn dim_mismatches_rejected() {
        let short = Vector::<f64>::zeros(2);
        let long = Vector::<f64>::zeros(3);
        let mut w = Vector::<f64>::zeros(3);
        assert!(ewise::<f64, Plus, Sequential>(
            &mut w,
            None,
            Descriptor::DEFAULT,
            &short,
            &long,
            Plus
        )
        .is_err());
        assert!(waxpby::<f64, Sequential>(&mut w, 1.0, &short, 1.0, &long).is_err());
        let mut x = Vector::<f64>::zeros(3);
        assert!(axpy_in_place::<f64, Sequential>(&mut x, 1.0, &short).is_err());
        assert!(ewise_mul_add::<f64, Sequential>(&mut w, &short, &long).is_err());
    }
}
