//! Element-wise binary operations on vectors.
//!
//! Covers HPCG's `waxpby` kernel (`w = α·x + β·y`, paper §II-C) plus the
//! general GraphBLAS `eWiseApply`. All variants funnel into one kernel,
//! [`ewise_exec`], generic over the operator, an optional operand scaling
//! (which turns `Plus` into `waxpby` — fusing the two scalings with the
//! addition halves memory traffic versus two passes) and an
//! [`AccumMode`] (which turns `Times` + `AccumWith<Plus>` into the old
//! `ewise_mul_add`). The public ways in are [`Ctx::ewise`](crate::Ctx::ewise)
//! (eager) and [`Pipeline::ewise`](crate::Pipeline::ewise) (deferred); the
//! pre-0.2 free functions were removed in 0.3.

use crate::backend::Backend;
use crate::container::vector::Vector;
use crate::descriptor::Descriptor;
use crate::error::{check_dims, Result};
use crate::exec::for_each_selected;
use crate::ops::accum::AccumMode;
use crate::ops::binary::BinaryOp;
use crate::ops::scalar::Scalar;
use crate::util::UnsafeSlice;

/// `w⟨mask⟩ = w ⊙? Op(α·x, β·y)` — the single element-wise kernel behind
/// the builder API. The `scale` branch sits outside the loop, so the
/// unscaled form pays nothing for the option.
pub(crate) fn ewise_exec<T, Op, A, B>(
    w: &mut Vector<T>,
    mask: Option<&Vector<bool>>,
    desc: Descriptor,
    x: &Vector<T>,
    y: &Vector<T>,
    scale: Option<(T, T)>,
) -> Result<()>
where
    T: Scalar,
    Op: BinaryOp<T>,
    A: AccumMode<T>,
    B: Backend,
{
    check_dims("ewise", "x vs output", w.len(), x.len())?;
    check_dims("ewise", "y vs output", w.len(), y.len())?;
    let xs = x.as_slice();
    let ys = y.as_slice();
    let n = w.len();
    let slots = UnsafeSlice::new(w.as_mut_slice());
    match scale {
        None => for_each_selected::<B, _>(n, mask, desc, |i| {
            // SAFETY: selected indices are unique per the mask contract.
            unsafe { A::store(slots.get_mut(i), Op::apply(xs[i], ys[i])) };
        })?,
        Some((alpha, beta)) => for_each_selected::<B, _>(n, mask, desc, |i| {
            // SAFETY: selected indices are unique per the mask contract.
            unsafe {
                A::store(
                    slots.get_mut(i),
                    Op::apply(alpha.mul(xs[i]), beta.mul(ys[i])),
                )
            };
        })?,
    }
    Ok(())
}

/// `x = x + α·y` — the in-place `axpy` CG uses for its vector updates.
///
/// Stays a dedicated kernel because the output aliases an input, which the
/// two-operand builder form cannot express under Rust's borrow rules.
pub(crate) fn axpy_exec<T, B>(x: &mut Vector<T>, alpha: T, y: &Vector<T>) -> Result<()>
where
    T: Scalar,
    B: Backend,
{
    check_dims("axpy", "y vs x", x.len(), y.len())?;
    let ys = y.as_slice();
    let n = x.len();
    let slots = UnsafeSlice::new(x.as_mut_slice());
    B::for_n(n, |i| {
        // SAFETY: each index visited exactly once.
        unsafe {
            let slot = slots.get_mut(i);
            *slot = slot.add(alpha.mul(ys[i]));
        }
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Parallel, Sequential};
    use crate::context::ctx;
    use crate::ops::binary::{Minus, Plus, Times};

    #[test]
    fn ewise_plus_and_minus() {
        let x = Vector::from_dense(vec![1.0, 2.0, 3.0]);
        let y = Vector::from_dense(vec![10.0, 20.0, 30.0]);
        let exec = ctx::<Sequential>();
        let mut w = Vector::zeros(3);
        exec.ewise(&x, &y).op(Plus).into(&mut w).unwrap();
        assert_eq!(w.as_slice(), &[11.0, 22.0, 33.0]);
        exec.ewise(&y, &x).op(Minus).into(&mut w).unwrap();
        assert_eq!(w.as_slice(), &[9.0, 18.0, 27.0]);
    }

    #[test]
    fn ewise_masked() {
        let x = Vector::from_dense(vec![1.0, 2.0]);
        let y = Vector::from_dense(vec![3.0, 4.0]);
        let mut w = Vector::from_dense(vec![0.5, 0.5]);
        let mask = Vector::<bool>::sparse_filled(2, vec![1], true).unwrap();
        ctx::<Sequential>()
            .ewise(&x, &y)
            .op(Times)
            .mask(&mask)
            .structural()
            .into(&mut w)
            .unwrap();
        assert_eq!(w.as_slice(), &[0.5, 8.0]);
    }

    #[test]
    fn waxpby_basic() {
        let x = Vector::from_dense(vec![1.0, 2.0]);
        let y = Vector::from_dense(vec![10.0, 20.0]);
        let mut w = Vector::zeros(2);
        ctx::<Sequential>()
            .ewise(&x, &y)
            .scaled(2.0, -1.0)
            .into(&mut w)
            .unwrap();
        assert_eq!(w.as_slice(), &[-8.0, -16.0]);
    }

    #[test]
    fn waxpby_parallel_matches_sequential() {
        let n = 20_000;
        let x = Vector::from_dense((0..n).map(|i| (i % 11) as f64).collect());
        let y = Vector::from_dense((0..n).map(|i| (i % 5) as f64).collect());
        let mut w1 = Vector::zeros(n);
        let mut w2 = Vector::zeros(n);
        ctx::<Sequential>()
            .ewise(&x, &y)
            .scaled(3.0, -2.0)
            .into(&mut w1)
            .unwrap();
        ctx::<Parallel>()
            .ewise(&x, &y)
            .scaled(3.0, -2.0)
            .into(&mut w2)
            .unwrap();
        assert_eq!(w1.as_slice(), w2.as_slice());
    }

    #[test]
    fn axpy_in_place_updates() {
        let mut x = Vector::from_dense(vec![1.0, 2.0, 3.0]);
        let y = Vector::from_dense(vec![1.0, 1.0, 1.0]);
        ctx::<Sequential>().axpy(&mut x, 0.5, &y).unwrap();
        assert_eq!(x.as_slice(), &[1.5, 2.5, 3.5]);
    }

    #[test]
    fn ewise_mul_add_accumulates() {
        let mut w = Vector::from_dense(vec![1.0, 1.0]);
        let x = Vector::from_dense(vec![2.0, 3.0]);
        let y = Vector::from_dense(vec![10.0, 10.0]);
        ctx::<Sequential>()
            .ewise(&x, &y)
            .op(Times)
            .accum(Plus)
            .into(&mut w)
            .unwrap();
        assert_eq!(w.as_slice(), &[21.0, 31.0]);
    }

    #[test]
    fn scaled_op_composes_with_accum() {
        // w = w ⊙ (αx + βy): the collapse the builder enables — previously
        // required a temporary plus two passes.
        let mut w = Vector::from_dense(vec![100.0, 200.0]);
        let x = Vector::from_dense(vec![1.0, 2.0]);
        let y = Vector::from_dense(vec![10.0, 20.0]);
        ctx::<Sequential>()
            .ewise(&x, &y)
            .scaled(2.0, 1.0)
            .accum(Minus)
            .into(&mut w)
            .unwrap();
        assert_eq!(w.as_slice(), &[100.0 - 12.0, 200.0 - 24.0]);
    }

    #[test]
    fn dim_mismatches_rejected() {
        let exec = ctx::<Sequential>();
        let short = Vector::<f64>::zeros(2);
        let long = Vector::<f64>::zeros(3);
        let mut w = Vector::<f64>::zeros(3);
        assert!(exec.ewise(&short, &long).op(Plus).into(&mut w).is_err());
        assert!(exec
            .ewise(&short, &long)
            .scaled(1.0, 1.0)
            .into(&mut w)
            .is_err());
        let mut x = Vector::<f64>::zeros(3);
        assert!(exec.axpy(&mut x, 1.0, &short).is_err());
    }
}
