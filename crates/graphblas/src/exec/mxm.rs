//! Sparse matrix–matrix multiplication over a semiring (Gustavson's
//! algorithm).
//!
//! The paper needs `mxm` for one job: applying a row permutation `PᵀAP` to
//! re-group indices by color while staying inside the opaque-container API
//! (§III-A). The kernel is a two-pass row-parallel Gustavson: a symbolic
//! pass sizing each output row, then a numeric pass filling it — the
//! standard structure for CSR×CSR.

use crate::backend::Backend;
use crate::container::matrix::CsrMatrix;
use crate::descriptor::Descriptor;
use crate::error::{check_dims, GrbError, Result};
use crate::ops::scalar::Scalar;
use crate::ops::semiring::Semiring;

/// The mxm kernel behind the builder API (two-pass row-wise Gustavson).
/// `Aᵀ B` under [`Descriptor::TRANSPOSE`] materializes `Aᵀ` once — `mxm`
/// is a setup-time operation in this crate, not an inner-loop one.
pub(crate) fn mxm_exec<T, R, B>(
    a: &CsrMatrix<T>,
    b: &CsrMatrix<T>,
    desc: Descriptor,
) -> Result<CsrMatrix<T>>
where
    T: Scalar,
    R: Semiring<T>,
    B: Backend,
{
    let a_t;
    let a_eff: &CsrMatrix<T> = if desc.is_transposed() {
        a_t = a.transpose();
        &a_t
    } else {
        a
    };
    check_dims("mxm", "inner dimensions", a_eff.ncols(), b.nrows())?;
    let m = a_eff.nrows();
    let n = b.ncols();

    // Pass 1 (symbolic): count distinct columns per output row.
    let mut row_nnz = vec![0usize; m];
    {
        // Sequential symbolic pass with a reusable marker array; the numeric
        // pass below re-derives the pattern, so this only sizes allocations.
        let mut marker = vec![u32::MAX; n];
        for (i, slot) in row_nnz.iter_mut().enumerate() {
            let (acols, _) = a_eff.row(i);
            let mut count = 0usize;
            for &k in acols {
                let (bcols, _) = b.row(k as usize);
                for &j in bcols {
                    if marker[j as usize] != i as u32 {
                        marker[j as usize] = i as u32;
                        count += 1;
                    }
                }
            }
            *slot = count;
        }
    }
    let mut row_ptr = vec![0usize; m + 1];
    for i in 0..m {
        row_ptr[i + 1] = row_ptr[i] + row_nnz[i];
    }
    let nnz = row_ptr[m];
    if nnz > u32::MAX as usize {
        return Err(GrbError::Unsupported("mxm output exceeds u32 index space"));
    }
    let mut col_idx = vec![0u32; nnz];
    let mut values = vec![T::ZERO; nnz];

    // Pass 2 (numeric): per-row sparse accumulator. Rows are independent, so
    // this pass could parallelize over disjoint output slices; it runs
    // sequentially because mxm sits outside every benchmarked loop.
    let _ = <B as Backend>::threads();
    {
        let mut accum: Vec<T> = vec![R::zero(); n];
        let mut pattern: Vec<u32> = Vec::with_capacity(64);
        for i in 0..m {
            pattern.clear();
            let (acols, avals) = a_eff.row(i);
            for (&k, &av) in acols.iter().zip(avals) {
                let (bcols, bvals) = b.row(k as usize);
                for (&j, &bv) in bcols.iter().zip(bvals) {
                    let j = j as usize;
                    if accum[j] == R::zero() && !pattern.contains(&(j as u32)) {
                        pattern.push(j as u32);
                    }
                    accum[j] = R::add(accum[j], R::mul(av, bv));
                }
            }
            pattern.sort_unstable();
            let base = row_ptr[i];
            for (k, &j) in pattern.iter().enumerate() {
                col_idx[base + k] = j;
                values[base + k] = accum[j as usize];
                accum[j as usize] = R::zero();
            }
            // Symbolic and numeric passes can disagree only if a row's
            // column set was miscounted; guard in debug builds.
            debug_assert_eq!(pattern.len(), row_ptr[i + 1] - row_ptr[i]);
        }
    }
    CsrMatrix::from_csr(m, n, row_ptr, col_idx, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Sequential;
    use crate::context::ctx;

    fn dense_to_csr(rows: &[&[f64]]) -> CsrMatrix<f64> {
        let nrows = rows.len();
        let ncols = rows[0].len();
        let mut triplets = Vec::new();
        for (i, r) in rows.iter().enumerate() {
            for (j, &v) in r.iter().enumerate() {
                if v != 0.0 {
                    triplets.push((i, j, v));
                }
            }
        }
        CsrMatrix::from_triplets(nrows, ncols, &triplets).unwrap()
    }

    #[test]
    fn small_product() {
        let a = dense_to_csr(&[&[1.0, 2.0], &[0.0, 3.0]]);
        let b = dense_to_csr(&[&[4.0, 0.0], &[1.0, 5.0]]);
        let c = ctx::<Sequential>().mxm(&a, &b).compute().unwrap();
        // [[1*4+2*1, 2*5], [3*1, 3*5]]
        assert_eq!(c.get(0, 0), Some(6.0));
        assert_eq!(c.get(0, 1), Some(10.0));
        assert_eq!(c.get(1, 0), Some(3.0));
        assert_eq!(c.get(1, 1), Some(15.0));
    }

    #[test]
    fn identity_is_neutral() {
        let a = dense_to_csr(&[&[1.0, 2.0, 0.0], &[0.0, 0.0, 3.0], &[4.0, 0.0, 5.0]]);
        let i3 = dense_to_csr(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 1.0]]);
        let c = ctx::<Sequential>().mxm(&a, &i3).compute().unwrap();
        for (r, col, v) in a.iter_entries() {
            assert_eq!(c.get(r, col), Some(v));
        }
        assert_eq!(c.nnz(), a.nnz());
    }

    #[test]
    fn transpose_descriptor() {
        let a = dense_to_csr(&[&[1.0, 0.0], &[2.0, 3.0]]);
        let b = dense_to_csr(&[&[1.0, 1.0], &[0.0, 1.0]]);
        let c = ctx::<Sequential>()
            .mxm(&a, &b)
            .transpose()
            .compute()
            .unwrap();
        let at = a.transpose();
        let expected = ctx::<Sequential>().mxm(&at, &b).compute().unwrap();
        assert_eq!(c, expected);
    }

    #[test]
    fn permutation_conjugation_regroups_rows() {
        // P^T A P with P the permutation sending 0->1, 1->0: swaps both rows
        // and columns — exactly the paper's §III-A regrouping mechanism.
        let a = dense_to_csr(&[&[2.0, -1.0], &[-1.0, 2.0]]);
        // P has P[i, perm(i)] = 1 with perm = [1, 0].
        let p = dense_to_csr(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let ap = ctx::<Sequential>().mxm(&a, &p).compute().unwrap();
        let ptap = ctx::<Sequential>()
            .mxm(&p, &ap)
            .transpose()
            .compute()
            .unwrap();
        // Symmetric tridiagonal is invariant under this swap.
        assert_eq!(ptap.get(0, 0), Some(2.0));
        assert_eq!(ptap.get(0, 1), Some(-1.0));
        assert!(ptap.is_symmetric());
    }

    #[test]
    fn dimension_mismatch() {
        let a = dense_to_csr(&[&[1.0, 2.0]]);
        let b = dense_to_csr(&[&[1.0]]);
        assert!(ctx::<Sequential>().mxm(&a, &b).compute().is_err());
    }

    #[test]
    fn cancellation_keeps_explicit_entry() {
        // 1*1 + (-1)*1 = 0: GraphBLAS keeps the explicit zero (the symbolic
        // pattern is value-independent).
        let a = dense_to_csr(&[&[1.0, -1.0]]);
        let b = dense_to_csr(&[&[1.0], &[1.0]]);
        let c = ctx::<Sequential>().mxm(&a, &b).compute().unwrap();
        assert_eq!(c.get(0, 0), Some(0.0));
        assert_eq!(c.nnz(), 1);
    }
}
