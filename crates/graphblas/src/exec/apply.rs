//! Element-wise application: `apply` (unary operator) and `eWiseLambda`
//! (user lambda at masked positions).
//!
//! `eWiseLambda` is the primitive the paper's RBGS update step builds on
//! (Listing 3, lines 13-17): for every index of the current color, read
//! `r[i]`, `tmp[i]`, `A_diag[i]` and update `x[i]` in place. Rust renders
//! the C++ capture-by-reference lambda as a closure that borrows the read
//! vectors and receives `&mut` access to the one output slot — the
//! disjointness of masked indices makes the parallel version sound.
//!
//! The public ways in are [`Ctx::apply`](crate::Ctx::apply) /
//! [`Ctx::transform`](crate::Ctx::transform) and their deferred
//! counterparts on [`Pipeline`](crate::Pipeline); the pre-0.2 free
//! functions were removed in 0.3.

use crate::backend::Backend;
use crate::container::vector::Vector;
use crate::descriptor::Descriptor;
use crate::error::Result;
use crate::exec::for_each_selected;
use crate::ops::accum::AccumMode;
use crate::ops::scalar::Scalar;
use crate::ops::unary::UnaryOp;
use crate::util::UnsafeSlice;

/// `out⟨mask⟩ = out ⊙? Op(input)` — the unary-application kernel behind the
/// builder API.
pub(crate) fn apply_exec<T, Op, A, B>(
    out: &mut Vector<T>,
    mask: Option<&Vector<bool>>,
    desc: Descriptor,
    input: &Vector<T>,
) -> Result<()>
where
    T: Scalar,
    Op: UnaryOp<T>,
    A: AccumMode<T>,
    B: Backend,
{
    crate::error::check_dims("apply", "input vs output", out.len(), input.len())?;
    let xs = input.as_slice();
    let n = out.len();
    let slots = UnsafeSlice::new(out.as_mut_slice());
    for_each_selected::<B, _>(n, mask, desc, |i| {
        // SAFETY: selected indices are unique per the mask contract.
        unsafe { A::store(slots.get_mut(i), Op::apply(xs[i])) };
    })?;
    Ok(())
}

/// Applies `f(i, &mut out[i])` at every selected index — the kernel behind
/// [`Ctx::transform`](crate::Ctx::transform).
pub(crate) fn ewise_lambda_exec<T, B, F>(
    out: &mut Vector<T>,
    mask: Option<&Vector<bool>>,
    desc: Descriptor,
    f: F,
) -> Result<()>
where
    T: Scalar,
    B: Backend,
    F: Fn(usize, &mut T) + Send + Sync,
{
    let n = out.len();
    let slots = UnsafeSlice::new(out.as_mut_slice());
    for_each_selected::<B, _>(n, mask, desc, |i| {
        // SAFETY: selected indices are unique per the mask contract, so each
        // slot is handed to exactly one closure invocation.
        f(i, unsafe { slots.get_mut(i) });
    })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Parallel, Sequential};
    use crate::context::ctx;
    use crate::ops::binary::Plus;
    use crate::ops::unary::{Abs, AdditiveInverse, MultiplicativeInverse};

    #[test]
    fn apply_unmasked() {
        let x = Vector::from_dense(vec![1.0, -2.0, 3.0]);
        let mut y = Vector::zeros(3);
        ctx::<Sequential>()
            .apply(&x)
            .op(AdditiveInverse)
            .into(&mut y)
            .unwrap();
        assert_eq!(y.as_slice(), &[-1.0, 2.0, -3.0]);
    }

    #[test]
    fn apply_masked_leaves_rest() {
        let x = Vector::from_dense(vec![-1.0, -2.0, -3.0, -4.0]);
        let mut y = Vector::from_dense(vec![9.0; 4]);
        let mask = Vector::<bool>::sparse_filled(4, vec![1, 3], true).unwrap();
        ctx::<Sequential>()
            .apply(&x)
            .op(Abs)
            .mask(&mask)
            .structural()
            .into(&mut y)
            .unwrap();
        assert_eq!(y.as_slice(), &[9.0, 2.0, 9.0, 4.0]);
    }

    #[test]
    fn apply_accumulates() {
        let x = Vector::from_dense(vec![1.0, 2.0]);
        let mut y = Vector::from_dense(vec![10.0, 20.0]);
        ctx::<Sequential>()
            .apply(&x)
            .op(Abs)
            .accum(Plus)
            .into(&mut y)
            .unwrap();
        assert_eq!(y.as_slice(), &[11.0, 22.0]);
    }

    #[test]
    fn apply_dim_mismatch() {
        let x = Vector::<f64>::zeros(3);
        let mut y = Vector::<f64>::zeros(4);
        assert!(ctx::<Sequential>().apply(&x).op(Abs).into(&mut y).is_err());
    }

    #[test]
    fn apply_in_place_via_same_length() {
        let x = Vector::from_dense(vec![4.0, 0.5]);
        let mut y = Vector::zeros(2);
        ctx::<Sequential>()
            .apply(&x)
            .op(MultiplicativeInverse)
            .into(&mut y)
            .unwrap();
        assert_eq!(y.as_slice(), &[0.25, 2.0]);
    }

    #[test]
    fn transform_rbgs_update_shape() {
        // The exact update of Listing 3: x[i] = (r[i] - tmp[i] + x[i]*d)/d.
        let r = Vector::from_dense(vec![10.0, 20.0, 30.0]);
        let tmp = Vector::from_dense(vec![1.0, 2.0, 3.0]);
        let diag = Vector::from_dense(vec![2.0, 4.0, 5.0]);
        let mut x = Vector::from_dense(vec![1.0, 1.0, 1.0]);
        let mask = Vector::<bool>::sparse_filled(3, vec![0, 2], true).unwrap();
        let (rs, ts, ds) = (r.as_slice(), tmp.as_slice(), diag.as_slice());
        ctx::<Sequential>()
            .transform(&mut x)
            .mask(&mask)
            .structural()
            .apply(|i, xi| {
                let d = ds[i];
                *xi = (rs[i] - ts[i] + *xi * d) / d;
            })
            .unwrap();
        assert_eq!(x.as_slice()[0], (10.0 - 1.0 + 2.0) / 2.0);
        assert_eq!(x.as_slice()[1], 1.0, "unmasked slot untouched");
        assert_eq!(x.as_slice()[2], (30.0 - 3.0 + 5.0) / 5.0);
    }

    #[test]
    fn transform_parallel_matches_sequential() {
        let n = 10_000;
        let r: Vector<f64> = Vector::from_dense((0..n).map(|i| (i % 7) as f64).collect());
        let mut x1 = Vector::from_dense((0..n).map(|i| (i % 3) as f64).collect());
        let mut x2 = x1.clone();
        let rs = r.as_slice();
        ctx::<Sequential>()
            .transform(&mut x1)
            .apply(|i, xi| {
                *xi = *xi * 2.0 + rs[i];
            })
            .unwrap();
        ctx::<Parallel>()
            .transform(&mut x2)
            .apply(|i, xi| {
                *xi = *xi * 2.0 + rs[i];
            })
            .unwrap();
        assert_eq!(x1.as_slice(), x2.as_slice());
    }
}
