//! `extract` / `assign`: sub-container selection and placement.
//!
//! The GraphBLAS C API's `GrB_extract` and `GrB_assign` families,
//! restricted to explicit index lists (the form solvers use to carve
//! subdomains out of global containers). These are setup-time operations
//! here — HPCG's hot path never slices — so the kernels favor clarity and
//! validation over parallel tuning.

use crate::backend::Backend;
use crate::container::matrix::CsrMatrix;
use crate::container::vector::Vector;
use crate::error::{check_dims, GrbError, Result};
use crate::ops::scalar::Scalar;
use crate::util::UnsafeSlice;

/// `out[k] = x[indices[k]]` — gathers a subvector.
pub fn extract_vector<T, B>(out: &mut Vector<T>, x: &Vector<T>, indices: &[u32]) -> Result<()>
where
    T: Scalar,
    B: Backend,
{
    check_dims("extract", "output vs index list", indices.len(), out.len())?;
    for &i in indices {
        if i as usize >= x.len() {
            return Err(GrbError::IndexOutOfBounds {
                index: i as usize,
                len: x.len(),
            });
        }
    }
    let xs = x.as_slice();
    let slots = UnsafeSlice::new(out.as_mut_slice());
    B::for_n(indices.len(), |k| {
        // SAFETY: each output slot k written exactly once.
        unsafe { slots.write(k, xs[indices[k] as usize]) };
    });
    Ok(())
}

/// `x[indices[k]] = values[k]` — scatters into a vector. Indices must be
/// unique (checked), matching `GrB_assign`'s no-duplicate contract.
pub fn assign_vector<T, B>(x: &mut Vector<T>, indices: &[u32], values: &Vector<T>) -> Result<()>
where
    T: Scalar,
    B: Backend,
{
    check_dims(
        "assign",
        "values vs index list",
        indices.len(),
        values.len(),
    )?;
    let mut seen = vec![false; x.len()];
    for &i in indices {
        let i = i as usize;
        if i >= x.len() {
            return Err(GrbError::IndexOutOfBounds {
                index: i,
                len: x.len(),
            });
        }
        if seen[i] {
            return Err(GrbError::InvalidInput(format!(
                "duplicate assign index {i}"
            )));
        }
        seen[i] = true;
    }
    let vs = values.as_slice();
    let slots = UnsafeSlice::new(x.as_mut_slice());
    B::for_n(indices.len(), |k| {
        // SAFETY: indices verified unique above.
        unsafe { slots.write(indices[k] as usize, vs[k]) };
    });
    Ok(())
}

/// Extracts the submatrix `A[rows, cols]` as a new CSR matrix.
///
/// `rows` and `cols` are explicit index lists; `cols` must be strictly
/// increasing (keeps the output's column order sorted in one pass), `rows`
/// may repeat or reorder — the `GrB_Matrix_extract` contract.
pub fn extract_submatrix<T, B>(a: &CsrMatrix<T>, rows: &[u32], cols: &[u32]) -> Result<CsrMatrix<T>>
where
    T: Scalar,
    B: Backend,
{
    for &r in rows {
        if r as usize >= a.nrows() {
            return Err(GrbError::IndexOutOfBounds {
                index: r as usize,
                len: a.nrows(),
            });
        }
    }
    // Inverse column map: global column -> output column (or absent).
    let mut col_map: Vec<u32> = vec![u32::MAX; a.ncols()];
    for (k, &c) in cols.iter().enumerate() {
        if c as usize >= a.ncols() {
            return Err(GrbError::IndexOutOfBounds {
                index: c as usize,
                len: a.ncols(),
            });
        }
        if k > 0 && cols[k - 1] >= c {
            return Err(GrbError::InvalidInput(
                "extract columns must be strictly increasing".into(),
            ));
        }
        col_map[c as usize] = k as u32;
    }
    CsrMatrix::from_row_fn(rows.len(), cols.len(), rows.len() * 8, |out_r, row| {
        let (rcols, rvals) = a.row(rows[out_r] as usize);
        for (&c, &v) in rcols.iter().zip(rvals) {
            let mapped = col_map[c as usize];
            if mapped != u32::MAX {
                row.push((mapped, v));
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Sequential;

    #[test]
    fn extract_vector_gathers() {
        let x = Vector::from_dense(vec![10.0, 11.0, 12.0, 13.0]);
        let mut out = Vector::zeros(2);
        extract_vector::<f64, Sequential>(&mut out, &x, &[3, 1]).unwrap();
        assert_eq!(out.as_slice(), &[13.0, 11.0]);
    }

    #[test]
    fn extract_vector_checks_bounds_and_dims() {
        let x = Vector::<f64>::zeros(3);
        let mut out = Vector::<f64>::zeros(2);
        assert!(extract_vector::<f64, Sequential>(&mut out, &x, &[0, 9]).is_err());
        assert!(extract_vector::<f64, Sequential>(&mut out, &x, &[0]).is_err());
    }

    #[test]
    fn assign_vector_scatters() {
        let mut x = Vector::from_dense(vec![0.0; 5]);
        let vals = Vector::from_dense(vec![7.0, 8.0]);
        assign_vector::<f64, Sequential>(&mut x, &[4, 0], &vals).unwrap();
        assert_eq!(x.as_slice(), &[8.0, 0.0, 0.0, 0.0, 7.0]);
    }

    #[test]
    fn assign_rejects_duplicates_and_oob() {
        let mut x = Vector::<f64>::zeros(4);
        let vals = Vector::from_dense(vec![1.0, 2.0]);
        assert!(assign_vector::<f64, Sequential>(&mut x, &[1, 1], &vals).is_err());
        assert!(assign_vector::<f64, Sequential>(&mut x, &[1, 9], &vals).is_err());
        assert!(assign_vector::<f64, Sequential>(&mut x, &[1], &vals).is_err());
    }

    #[test]
    fn extract_submatrix_basic() {
        // [[1, 2, 0],
        //  [0, 3, 4],
        //  [5, 0, 6]]
        let a = CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 1.0),
                (0, 1, 2.0),
                (1, 1, 3.0),
                (1, 2, 4.0),
                (2, 0, 5.0),
                (2, 2, 6.0),
            ],
        )
        .unwrap();
        // Rows [2, 0], columns [0, 2] → [[5, 6], [1, 0]].
        let sub = extract_submatrix::<f64, Sequential>(&a, &[2, 0], &[0, 2]).unwrap();
        assert_eq!(sub.nrows(), 2);
        assert_eq!(sub.ncols(), 2);
        assert_eq!(sub.get(0, 0), Some(5.0));
        assert_eq!(sub.get(0, 1), Some(6.0));
        assert_eq!(sub.get(1, 0), Some(1.0));
        assert_eq!(sub.get(1, 1), None);
    }

    #[test]
    fn extract_submatrix_validates() {
        let a = CsrMatrix::<f64>::from_triplets(2, 2, &[(0, 0, 1.0)]).unwrap();
        assert!(extract_submatrix::<f64, Sequential>(&a, &[5], &[0]).is_err());
        assert!(extract_submatrix::<f64, Sequential>(&a, &[0], &[5]).is_err());
        assert!(
            extract_submatrix::<f64, Sequential>(&a, &[0], &[1, 0]).is_err(),
            "cols must increase"
        );
    }

    #[test]
    fn extract_principal_submatrix_keeps_symmetry() {
        let a = CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 2.0),
                (0, 2, -1.0),
                (2, 0, -1.0),
                (1, 1, 3.0),
                (2, 2, 2.0),
            ],
        )
        .unwrap();
        let sub = extract_submatrix::<f64, Sequential>(&a, &[0, 2], &[0, 2]).unwrap();
        assert!(sub.is_symmetric());
        assert_eq!(sub.get(0, 1), Some(-1.0));
    }
}
