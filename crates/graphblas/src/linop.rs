//! Matrix-free linear operators — the paper's §VII-A extension.
//!
//! The paper observes that forcing HPCG's restriction into a materialized
//! `n/8 × n` matrix costs storage and bandwidth, and proposes extending
//! GraphBLAS with "a more abstract description of a linear operation" that
//! can trade bandwidth for computation. [`LinearOperator`] is that
//! extension: anything that can apply itself (and its transpose) to a
//! vector. [`CsrMatrix`] implements it (the baseline), and
//! [`InjectionOperator`] implements HPCG's straight-injection
//! restriction/refinement from just the fine→coarse index map — zero
//! stored nonzeroes. The `restriction_ablation` bench compares the two.

use crate::backend::Backend;
use crate::container::matrix::CsrMatrix;
use crate::container::vector::Vector;
use crate::context::ctx;
use crate::error::{check_dims, Result};
use crate::ops::scalar::Scalar;
use crate::util::UnsafeSlice;

/// An abstract linear map `Tⁿ → Tᵐ` with an applyable transpose.
///
/// This is deliberately *less* opaque than a GraphBLAS matrix: the
/// implementation may exploit any structure it likes (geometry, closed
/// forms), which is exactly the domain-information channel §VII-A argues
/// for.
pub trait LinearOperator<T: Scalar>: Send + Sync {
    /// Output dimension `m` (rows).
    fn nrows(&self) -> usize;
    /// Input dimension `n` (columns).
    fn ncols(&self) -> usize;
    /// `y = L·x`.
    fn apply<B: Backend>(&self, y: &mut Vector<T>, x: &Vector<T>) -> Result<()>;
    /// `y = Lᵀ·x`.
    fn apply_transpose<B: Backend>(&self, y: &mut Vector<T>, x: &Vector<T>) -> Result<()>;
    /// Bytes of auxiliary storage the operator holds — the §VII-A cost axis.
    fn storage_bytes(&self) -> usize;
}

impl<T: Scalar> LinearOperator<T> for CsrMatrix<T> {
    fn nrows(&self) -> usize {
        CsrMatrix::nrows(self)
    }

    fn ncols(&self) -> usize {
        CsrMatrix::ncols(self)
    }

    fn apply<B: Backend>(&self, y: &mut Vector<T>, x: &Vector<T>) -> Result<()> {
        ctx::<B>().mxv(self, x).into(y)
    }

    fn apply_transpose<B: Backend>(&self, y: &mut Vector<T>, x: &Vector<T>) -> Result<()> {
        ctx::<B>().mxv(self, x).transpose().into(y)
    }

    fn storage_bytes(&self) -> usize {
        CsrMatrix::storage_bytes(self)
    }
}

/// Straight injection as a closed-form operator: `y[i] = x[map[i]]`.
///
/// `apply` is HPCG's **restriction** (fine → coarse); `apply_transpose` is
/// its **refinement** (coarse value lands at `map[i]`, zeros elsewhere),
/// matching §II-F exactly. Storage is one `u32` per coarse point — 1/13th
/// of the CSR restriction matrix for the HPCG stencil.
#[derive(Clone, Debug)]
pub struct InjectionOperator {
    /// `map[coarse] = fine` index, strictly increasing.
    map: Vec<u32>,
    ncols: usize,
}

impl InjectionOperator {
    /// Builds from a strictly increasing coarse→fine index map into a fine
    /// space of dimension `nfine`.
    pub fn new(nfine: usize, map: Vec<u32>) -> Result<Self> {
        for (k, &f) in map.iter().enumerate() {
            if f as usize >= nfine {
                return Err(crate::error::GrbError::IndexOutOfBounds {
                    index: f as usize,
                    len: nfine,
                });
            }
            if k > 0 && map[k - 1] >= f {
                return Err(crate::error::GrbError::InvalidInput(
                    "injection map must be strictly increasing".into(),
                ));
            }
        }
        Ok(InjectionOperator { map, ncols: nfine })
    }

    /// The coarse→fine index map.
    pub fn map(&self) -> &[u32] {
        &self.map
    }

    /// Materializes the equivalent CSR restriction matrix (the §III-B
    /// GraphBLAS-conformant form) — used by tests and the ablation bench to
    /// show the two agree.
    pub fn to_csr<T: Scalar>(&self) -> CsrMatrix<T> {
        CsrMatrix::from_row_fn(self.map.len(), self.ncols, self.map.len(), |r, row| {
            row.push((self.map[r], T::ONE));
        })
        .expect("injection map validated at construction")
    }
}

impl<T: Scalar> LinearOperator<T> for InjectionOperator {
    fn nrows(&self) -> usize {
        self.map.len()
    }

    fn ncols(&self) -> usize {
        self.ncols
    }

    fn apply<B: Backend>(&self, y: &mut Vector<T>, x: &Vector<T>) -> Result<()> {
        check_dims("injection", "x vs ncols", self.ncols, x.len())?;
        check_dims("injection", "y vs nrows", self.map.len(), y.len())?;
        let xs = x.as_slice();
        let map = &self.map;
        let out = UnsafeSlice::new(y.as_mut_slice());
        B::for_n(map.len(), |i| {
            // SAFETY: each output index i visited exactly once.
            unsafe { out.write(i, xs[map[i] as usize]) };
        });
        Ok(())
    }

    fn apply_transpose<B: Backend>(&self, y: &mut Vector<T>, x: &Vector<T>) -> Result<()> {
        check_dims("injection^T", "x vs nrows", self.map.len(), x.len())?;
        check_dims("injection^T", "y vs ncols", self.ncols, y.len())?;
        let xs = x.as_slice();
        let map = &self.map;
        y.densify();
        let ys = y.as_mut_slice();
        ys.iter_mut().for_each(|v| *v = T::ZERO);
        let out = UnsafeSlice::new(ys);
        B::for_n(map.len(), |i| {
            // SAFETY: map entries are strictly increasing → distinct outputs.
            unsafe { out.write(map[i] as usize, xs[i]) };
        });
        Ok(())
    }

    fn storage_bytes(&self) -> usize {
        self.map.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Parallel, Sequential};

    #[test]
    fn injection_validates_map() {
        assert!(InjectionOperator::new(8, vec![0, 2, 4, 6]).is_ok());
        assert!(InjectionOperator::new(4, vec![0, 9]).is_err());
        assert!(InjectionOperator::new(8, vec![2, 2]).is_err());
        assert!(InjectionOperator::new(8, vec![4, 2]).is_err());
    }

    #[test]
    fn injection_restricts() {
        let op = InjectionOperator::new(8, vec![0, 2, 4, 6]).unwrap();
        let x = Vector::from_dense((0..8).map(|i| i as f64).collect());
        let mut y = Vector::zeros(4);
        LinearOperator::<f64>::apply::<Sequential>(&op, &mut y, &x).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn injection_transpose_refines_with_zeros() {
        let op = InjectionOperator::new(8, vec![0, 2, 4, 6]).unwrap();
        let xc = Vector::from_dense(vec![1.0, 2.0, 3.0, 4.0]);
        let mut yf = Vector::from_dense(vec![9.0; 8]);
        LinearOperator::<f64>::apply_transpose::<Sequential>(&op, &mut yf, &xc).unwrap();
        assert_eq!(yf.as_slice(), &[1.0, 0.0, 2.0, 0.0, 3.0, 0.0, 4.0, 0.0]);
    }

    #[test]
    fn injection_agrees_with_materialized_csr() {
        let nf = 64;
        let map: Vec<u32> = (0..nf as u32).step_by(4).collect();
        let op = InjectionOperator::new(nf, map).unwrap();
        let csr: CsrMatrix<f64> = op.to_csr();
        assert!(csr.columns_conflict_free());
        let x = Vector::from_dense((0..nf).map(|i| (i * i) as f64).collect());
        let (mut y_op, mut y_mat) = (Vector::zeros(16), Vector::zeros(16));
        LinearOperator::<f64>::apply::<Parallel>(&op, &mut y_op, &x).unwrap();
        LinearOperator::<f64>::apply::<Parallel>(&csr, &mut y_mat, &x).unwrap();
        assert_eq!(y_op.as_slice(), y_mat.as_slice());

        let xc = Vector::from_dense((0..16).map(|i| i as f64 - 8.0).collect());
        let (mut z_op, mut z_mat) = (Vector::zeros(nf), Vector::zeros(nf));
        LinearOperator::<f64>::apply_transpose::<Parallel>(&op, &mut z_op, &xc).unwrap();
        LinearOperator::<f64>::apply_transpose::<Parallel>(&csr, &mut z_mat, &xc).unwrap();
        assert_eq!(z_op.as_slice(), z_mat.as_slice());
    }

    #[test]
    fn storage_tradeoff_is_real() {
        let nf = 4096;
        let map: Vec<u32> = (0..nf as u32).step_by(8).collect();
        let op = InjectionOperator::new(nf, map).unwrap();
        let csr: CsrMatrix<f64> = op.to_csr();
        assert!(
            LinearOperator::<f64>::storage_bytes(&op) * 4
                < LinearOperator::<f64>::storage_bytes(&csr),
            "matrix-free operator must be several times smaller"
        );
    }

    #[test]
    fn dim_errors() {
        let op = InjectionOperator::new(8, vec![0, 4]).unwrap();
        let bad = Vector::<f64>::zeros(3);
        let mut y = Vector::<f64>::zeros(2);
        assert!(LinearOperator::<f64>::apply::<Sequential>(&op, &mut y, &bad).is_err());
        let x = Vector::<f64>::zeros(8);
        let mut bad_y = Vector::<f64>::zeros(5);
        assert!(LinearOperator::<f64>::apply::<Sequential>(&op, &mut bad_y, &x).is_err());
    }
}
