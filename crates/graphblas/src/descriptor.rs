//! Operation descriptors: compile-time-ish domain hints for primitives.
//!
//! Descriptors are GraphBLAS's channel for passing *how* an operation should
//! interpret its arguments without changing *what* it computes. The paper's
//! HPCG port depends on two of them (§IV):
//!
//! * [`Descriptor::STRUCTURAL`] — a masked operation follows only the
//!   sparsity *pattern* of the mask, never reading mask values. The RBGS
//!   color masks are structural: every stored entry means "this row belongs
//!   to the color", so reading the boolean values would be wasted memory
//!   traffic (Listing 3, line 11).
//! * [`Descriptor::TRANSPOSE`] — the matrix operand is used transposed
//!   without materializing the transpose. HPCG's refinement is the transpose
//!   of its restriction matrix (§III-B), so one stored matrix serves both.
//! * [`Descriptor::INVERT_MASK`] — the complement of the mask selects.

/// A set of flags modifying how a primitive interprets its operands.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Descriptor {
    structural: bool,
    transpose: bool,
    invert_mask: bool,
}

impl Descriptor {
    /// No modifiers: mask values are honored, matrices untransposed.
    pub const DEFAULT: Descriptor = Descriptor {
        structural: false,
        transpose: false,
        invert_mask: false,
    };

    /// Use only the sparsity pattern of the mask (ignore stored values).
    pub const STRUCTURAL: Descriptor = Descriptor {
        structural: true,
        transpose: false,
        invert_mask: false,
    };

    /// Use the matrix operand transposed, without materializing it.
    pub const TRANSPOSE: Descriptor = Descriptor {
        structural: false,
        transpose: true,
        invert_mask: false,
    };

    /// Select where the mask does **not** (complement semantics).
    pub const INVERT_MASK: Descriptor = Descriptor {
        structural: false,
        transpose: false,
        invert_mask: true,
    };

    /// Combines this descriptor with another, or-ing all flags.
    #[must_use]
    pub const fn with(self, other: Descriptor) -> Descriptor {
        Descriptor {
            structural: self.structural || other.structural,
            transpose: self.transpose || other.transpose,
            invert_mask: self.invert_mask || other.invert_mask,
        }
    }

    /// This descriptor with the transpose flag flipped — used by `vxm`
    /// (`xᵀA == Aᵀx`) and by builders toggling transposition fluently.
    #[must_use]
    pub const fn toggled_transpose(self) -> Descriptor {
        Descriptor {
            transpose: !self.transpose,
            ..self
        }
    }

    /// Whether the mask is interpreted structurally.
    #[inline(always)]
    pub const fn is_structural(self) -> bool {
        self.structural
    }

    /// Whether the matrix operand is used transposed.
    #[inline(always)]
    pub const fn is_transposed(self) -> bool {
        self.transpose
    }

    /// Whether mask selection is complemented.
    #[inline(always)]
    pub const fn is_mask_inverted(self) -> bool {
        self.invert_mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_has_no_flags() {
        let d = Descriptor::DEFAULT;
        assert!(!d.is_structural());
        assert!(!d.is_transposed());
        assert!(!d.is_mask_inverted());
        assert_eq!(d, Descriptor::default());
    }

    #[test]
    fn named_constants_set_one_flag_each() {
        assert!(Descriptor::STRUCTURAL.is_structural());
        assert!(Descriptor::TRANSPOSE.is_transposed());
        assert!(Descriptor::INVERT_MASK.is_mask_inverted());
    }

    #[test]
    fn with_combines_flags() {
        let d = Descriptor::STRUCTURAL.with(Descriptor::TRANSPOSE);
        assert!(d.is_structural());
        assert!(d.is_transposed());
        assert!(!d.is_mask_inverted());
        // `with` is commutative and idempotent.
        assert_eq!(d, Descriptor::TRANSPOSE.with(Descriptor::STRUCTURAL));
        assert_eq!(d.with(d), d);
    }
}
