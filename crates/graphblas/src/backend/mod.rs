//! Execution backends: the same algorithm text, different machines.
//!
//! ALP/GraphBLAS selects a backend (reference, shared-memory OpenMP, hybrid
//! LPF) at compile time; every primitive is written once against the backend
//! interface. This crate mirrors that: the primitives in [`crate::exec`] are
//! generic over [`Backend`], and callers pick [`Sequential`] or [`Parallel`]
//! (rayon work-stealing, the guides' prescribed data-parallel substrate).
//!
//! The distributed ("hybrid") backend of the paper lives in [`dist`]: a
//! cost-accounted [`Exec`](crate::context::Exec) dispatcher over the `bsp`
//! crate's simulated multi-node machine. It is not a [`Backend`] — its
//! parallelism lives across simulated nodes, not inside these data-parallel
//! loops — but a `Ctx<Distributed>` drives the exact same builder surface.

pub mod dist;

use crate::ops::monoid::Monoid;
use rayon::prelude::*;

/// Minimum items per rayon task; below this, splitting costs more than it buys.
const MIN_CHUNK: usize = 512;

/// An execution strategy for the data-parallel loops inside primitives.
///
/// All methods take `Fn` closures (not `FnMut`): parallel backends invoke
/// them concurrently, so any mutation must go through interior-mutability
/// wrappers whose disjointness the *kernel* (not the user) guarantees.
///
/// Every backend is also an [`Exec`](crate::context::Exec) dispatcher, so a
/// `B: Backend` bound suffices to build a `ctx::<B>()` execution context.
pub trait Backend: Copy + Default + Send + Sync + 'static + crate::context::Exec {
    /// Human-readable backend name, used by benchmark reports.
    const NAME: &'static str;

    /// Calls `f(i)` for every `i in 0..n`.
    fn for_n<F: Fn(usize) + Send + Sync>(n: usize, f: F);

    /// Calls `f(idx[k] as usize)` for every element of `idx`.
    fn for_indices<F: Fn(usize) + Send + Sync>(idx: &[u32], f: F);

    /// Folds `map(i)` for `i in 0..n` over monoid `M`.
    fn fold<T, M, F>(n: usize, map: F) -> T
    where
        T: Send,
        M: Monoid<T>,
        F: Fn(usize) -> T + Send + Sync;

    /// Folds `map(idx[k] as usize)` over monoid `M`.
    fn fold_indices<T, M, F>(idx: &[u32], map: F) -> T
    where
        T: Send,
        M: Monoid<T>,
        F: Fn(usize) -> T + Send + Sync;

    /// The degree of parallelism this backend will use.
    fn threads() -> usize;
}

/// Single-threaded reference backend: plain loops, deterministic order.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Sequential;

impl Backend for Sequential {
    const NAME: &'static str = "sequential";

    #[inline]
    fn for_n<F: Fn(usize) + Send + Sync>(n: usize, f: F) {
        for i in 0..n {
            f(i);
        }
    }

    #[inline]
    fn for_indices<F: Fn(usize) + Send + Sync>(idx: &[u32], f: F) {
        for &i in idx {
            f(i as usize);
        }
    }

    #[inline]
    fn fold<T, M, F>(n: usize, map: F) -> T
    where
        T: Send,
        M: Monoid<T>,
        F: Fn(usize) -> T + Send + Sync,
    {
        let mut acc = M::identity();
        for i in 0..n {
            acc = M::apply(acc, map(i));
        }
        acc
    }

    #[inline]
    fn fold_indices<T, M, F>(idx: &[u32], map: F) -> T
    where
        T: Send,
        M: Monoid<T>,
        F: Fn(usize) -> T + Send + Sync,
    {
        let mut acc = M::identity();
        for &i in idx {
            acc = M::apply(acc, map(i as usize));
        }
        acc
    }

    fn threads() -> usize {
        1
    }
}

/// Shared-memory data-parallel backend on the rayon global pool.
///
/// The analogue of ALP's OpenMP shared-memory backend (§IV). Work is split
/// with a minimum chunk size so fine-grained kernels (small coarse multigrid
/// levels) do not drown in scheduling overhead.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Parallel;

impl Backend for Parallel {
    const NAME: &'static str = "parallel(rayon)";

    #[inline]
    fn for_n<F: Fn(usize) + Send + Sync>(n: usize, f: F) {
        if n < MIN_CHUNK {
            for i in 0..n {
                f(i);
            }
        } else {
            (0..n).into_par_iter().with_min_len(MIN_CHUNK).for_each(f);
        }
    }

    #[inline]
    fn for_indices<F: Fn(usize) + Send + Sync>(idx: &[u32], f: F) {
        if idx.len() < MIN_CHUNK {
            for &i in idx {
                f(i as usize);
            }
        } else {
            idx.par_iter()
                .with_min_len(MIN_CHUNK)
                .for_each(|&i| f(i as usize));
        }
    }

    #[inline]
    fn fold<T, M, F>(n: usize, map: F) -> T
    where
        T: Send,
        M: Monoid<T>,
        F: Fn(usize) -> T + Send + Sync,
    {
        if n < MIN_CHUNK {
            return Sequential::fold::<T, M, F>(n, map);
        }
        (0..n)
            .into_par_iter()
            .with_min_len(MIN_CHUNK)
            .map(&map)
            .reduce(M::identity, M::apply)
    }

    #[inline]
    fn fold_indices<T, M, F>(idx: &[u32], map: F) -> T
    where
        T: Send,
        M: Monoid<T>,
        F: Fn(usize) -> T + Send + Sync,
    {
        if idx.len() < MIN_CHUNK {
            return Sequential::fold_indices::<T, M, F>(idx, map);
        }
        idx.par_iter()
            .with_min_len(MIN_CHUNK)
            .map(|&i| map(i as usize))
            .reduce(M::identity, M::apply)
    }

    fn threads() -> usize {
        rayon::current_num_threads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::{Max, Plus};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn check_for_n<B: Backend>() {
        let count = AtomicUsize::new(0);
        B::for_n(1000, |i| {
            count.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    fn check_for_indices<B: Backend>() {
        let idx: Vec<u32> = (0..2000).filter(|i| i % 3 == 0).collect();
        let count = AtomicUsize::new(0);
        B::for_indices(&idx, |i| {
            count.fetch_add(i, Ordering::Relaxed);
        });
        let expected: usize = idx.iter().map(|&i| i as usize).sum();
        assert_eq!(count.load(Ordering::Relaxed), expected);
    }

    fn check_fold<B: Backend>() {
        let sum = B::fold::<f64, Plus, _>(10_000, |i| i as f64);
        assert_eq!(sum, (0..10_000u64).sum::<u64>() as f64);
        let max = B::fold::<f64, Max, _>(10_000, |i| ((i * 37) % 101) as f64);
        assert_eq!(max, 100.0);
        // Empty fold yields the identity.
        assert_eq!(B::fold::<f64, Plus, _>(0, |_| 1.0), 0.0);
    }

    fn check_fold_indices<B: Backend>() {
        let idx: Vec<u32> = (0..5000).filter(|i| i % 7 == 0).collect();
        let sum = B::fold_indices::<f64, Plus, _>(&idx, |i| i as f64);
        let expected: f64 = idx.iter().map(|&i| i as f64).sum();
        assert_eq!(sum, expected);
    }

    #[test]
    fn sequential_backend() {
        check_for_n::<Sequential>();
        check_for_indices::<Sequential>();
        check_fold::<Sequential>();
        check_fold_indices::<Sequential>();
        assert_eq!(Sequential::threads(), 1);
    }

    #[test]
    fn parallel_backend() {
        check_for_n::<Parallel>();
        check_for_indices::<Parallel>();
        check_fold::<Parallel>();
        check_fold_indices::<Parallel>();
        assert!(Parallel::threads() >= 1);
    }

    #[test]
    fn parallel_matches_sequential_on_float_sum_of_integers() {
        // Integer-valued floats sum exactly in any association order, so the
        // two backends must agree bit-for-bit here.
        let a = Sequential::fold::<f64, Plus, _>(100_000, |i| (i % 97) as f64);
        let b = Parallel::fold::<f64, Plus, _>(100_000, |i| (i % 97) as f64);
        assert_eq!(a, b);
    }
}
