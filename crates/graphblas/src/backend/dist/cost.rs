//! Superstep-by-superstep cost recording for the distributed backend.
//!
//! Every [`Exec`](crate::context::Exec) entry point of
//! [`Distributed`](super::Distributed) executes its numerics once on
//! global state and then calls into [`ClusterState`] here, which replays
//! the operation against the cost model: per-node flops and touched bytes
//! (from the shard layout and, for masked operations, the *exact* mask
//! selection), per-node sent/received bytes for the collective the 1D
//! layout forces (a full allgather of the input vector before every
//! `mxv`, a scalar allreduce after every reduction), and one closed BSP
//! superstep per exchange — the quantities Table I bounds.

use super::layout::ShardLayout;
use crate::container::matrix::{CsrMatrix, GraphMatrix};
use crate::container::vector::{SparseVector, Vector};
use crate::descriptor::Descriptor;
use crate::exec::sparse::FrontierMode;
use bsp::cost::{CostTracker, KernelClass, StepCost};
use bsp::dist::Distribution;
use bsp::machine::MachineParams;

/// Bytes of one `f64` element (the backend's value domain for costing).
pub(crate) const ELEM_BYTES: f64 = 8.0;

/// Roofline byte estimate of an spmv over `nnz` nonzeroes and `rows`
/// rows: value (8) + column index (4) + input gather (8) per nonzero,
/// output + row pointer (16) per row. Public so every distributed cost
/// model in the workspace (this backend, HPCG's Ref-design simulator)
/// prices a sweep identically.
pub fn spmv_bytes(nnz: usize, rows: usize) -> f64 {
    (nnz * (8 + 4 + 8) + rows * 16) as f64
}

/// Byte estimate of a streaming vector op touching `k` vectors of `n`
/// selected elements (shared across the workspace's cost models, like
/// [`spmv_bytes`]).
pub fn stream_bytes(k: usize, n: usize) -> f64 {
    (k * n * 8) as f64
}

/// Kernel attribution the caller can force on recorded steps (plus an
/// optional multigrid level), used by HPCG's distributed harness to tag
/// smoother / grid-transfer supersteps.
#[derive(Copy, Clone, Debug, Default)]
pub(crate) struct Scope {
    pub class: Option<KernelClass>,
    pub level: Option<usize>,
}

/// Mutable state of one simulated cluster: the BSP cost trace plus the
/// layout and attribution scope the recorders consult.
#[derive(Debug)]
pub(crate) struct ClusterState {
    pub tracker: CostTracker,
    pub layout: ShardLayout,
    /// `Some((pr, pc))` switches the pre-`mxv` exchange from the 1D
    /// allgather to the §VII-B(ii) 2D expand/fold pattern.
    pub grid2d: Option<(usize, usize)>,
    pub scope: Scope,
    /// Stable obs thread ids, one per node, labeled `node k/p` — the
    /// per-op worker threads adopt them so every operation of this
    /// cluster lands on the same named Chrome-trace tracks.
    pub worker_tids: Vec<u64>,
}

impl ClusterState {
    pub fn new(nodes: usize, machine: MachineParams, layout: ShardLayout) -> ClusterState {
        let worker_tids = (0..nodes)
            .map(|w| {
                let tid = obs::alloc_tid();
                obs::set_thread_label(tid, format!("node {}/{}", w + 1, nodes));
                tid
            })
            .collect();
        ClusterState {
            tracker: CostTracker::new(nodes, machine),
            layout,
            grid2d: None,
            scope: Scope::default(),
            worker_tids,
        }
    }

    fn nodes(&self) -> usize {
        self.tracker.nodes()
    }

    fn class(&self, default: KernelClass) -> KernelClass {
        self.scope.class.unwrap_or(default)
    }

    /// Records the pre-`mxv` exchange of an `n`-element input vector.
    /// Under the 1D layout every node sends its local share to all peers
    /// (the `Θ(n(p−1)/p)` allgather); under a 2D `pr×pc` grid each node
    /// exchanges only with its process row and column.
    fn record_input_exchange(&mut self, n: usize) {
        let p = self.nodes();
        let dist = self.layout.dist_for(n, p);
        match self.grid2d {
            None => {
                for from in 0..p {
                    let bytes = dist.local_len(from) as f64 * ELEM_BYTES;
                    self.tracker.record_send_all(from, bytes);
                }
            }
            Some((pr, pc)) => {
                for from in 0..p {
                    let bytes = dist.local_len(from) as f64 * ELEM_BYTES;
                    let (r, c) = (from / pc, from % pc);
                    // Expand along the process column, fold along the row.
                    for c2 in 0..pc {
                        if c2 != c {
                            self.tracker.record_send(from, r * pc + c2, bytes);
                        }
                    }
                    for r2 in 0..pr {
                        if r2 != r {
                            self.tracker.record_send(from, r2 * pc + c, bytes);
                        }
                    }
                }
            }
        }
    }

    /// Records the direct-exchange scalar allreduce every node pays after
    /// a distributed reduction: `p − 1` words out and in (`Θ(p)` ≪ the
    /// vector exchanges — the Θ(1)-synchronization row of Table I).
    fn record_allreduce(&mut self) {
        for from in 0..self.nodes() {
            self.tracker.record_send_all(from, ELEM_BYTES);
        }
    }

    /// Per-node `(selected rows, selected nnz)` of an `mxv` under `mask` /
    /// `desc`, attributing each selected output row to its shard owner.
    /// For the transposed product the effective rows are `A`'s columns.
    fn mxv_partition<T: crate::ops::scalar::Scalar>(
        &self,
        a: &CsrMatrix<T>,
        mask: Option<&Vector<bool>>,
        desc: Descriptor,
    ) -> (Vec<usize>, Vec<usize>) {
        let p = self.nodes();
        let transposed = desc.is_transposed();
        let out_len = if transposed { a.ncols() } else { a.nrows() };
        let dist = self.layout.dist_for(out_len, p);
        let mut rows = vec![0usize; p];
        let mut nnzs = vec![0usize; p];
        if transposed {
            // Effective row `i` of Aᵀ holds A's column-`i` entries.
            let mut col_nnz = vec![0usize; a.ncols()];
            let (_, cols, _) = a.csr_parts();
            for &c in cols {
                col_nnz[c as usize] += 1;
            }
            for_selected(out_len, mask, desc, |i| {
                let node = dist.owner(i);
                rows[node] += 1;
                nnzs[node] += col_nnz[i];
            });
        } else {
            for_selected(out_len, mask, desc, |i| {
                let node = dist.owner(i);
                rows[node] += 1;
                nnzs[node] += a.row_nnz(i);
            });
        }
        (rows, nnzs)
    }

    /// Records one `mxv` superstep: the forced input exchange, then each
    /// node's selected-row sweep. With `fused_dot` the dot-product
    /// epilogue rides the same sweep (2 extra flops per row, no extra
    /// vector stream) and a scalar allreduce closes a second, `Θ(p)`-byte
    /// superstep — one sweep plus one allreduce instead of two full
    /// supersteps.
    pub fn record_mxv<T: crate::ops::scalar::Scalar>(
        &mut self,
        a: &CsrMatrix<T>,
        x_len: usize,
        mask: Option<&Vector<bool>>,
        desc: Descriptor,
        fused_dot: bool,
    ) -> StepCost {
        self.record_input_exchange(x_len);
        let (rows, nnzs) = self.mxv_partition(a, mask, desc);
        for node in 0..self.nodes() {
            let (r, z) = (rows[node], nnzs[node]);
            let epilogue_flops = if fused_dot { 2.0 * r as f64 } else { 0.0 };
            self.tracker
                .record_compute(node, 2.0 * z as f64 + epilogue_flops, spmv_bytes(z, r));
        }
        let class = self.class(KernelClass::SpMV);
        let level = self.scope.level;
        let step = self.tracker.end_superstep(class, level, false);
        if fused_dot {
            self.record_allreduce();
            self.tracker
                .end_superstep(self.class(KernelClass::Dot), level, false);
        }
        step
    }

    /// Records one **sparse-frontier** `mxv` superstep.
    ///
    /// The input exchange bills only the frontier's stored entries —
    /// value + `u32` index, 12 bytes each, `Θ(nvals·(p−1)/p)` total under
    /// the 1D layout — instead of the dense `Θ(n·(p−1)/p)` allgather; a
    /// promoted frontier travels like the dense vector it is. Compute is
    /// attributed per shard owner of the touched output rows: push mode
    /// sweeps only the columns the frontier names, pull mode bills the
    /// full dense row sweep the kernel actually ran.
    pub fn record_mxv_sparse<T: crate::ops::scalar::Scalar>(
        &mut self,
        m: &GraphMatrix<T>,
        x: &SparseVector<T>,
        mask: Option<&Vector<bool>>,
        desc: Descriptor,
        mode: FrontierMode,
    ) -> StepCost {
        let p = self.nodes();
        match x.indices() {
            Some(stored) => {
                let dist = self.layout.dist_for(x.len(), p);
                let mut counts = vec![0usize; p];
                for &i in stored {
                    counts[dist.owner(i as usize)] += 1;
                }
                for (from, &c) in counts.iter().enumerate() {
                    self.tracker
                        .record_send_all(from, c as f64 * (ELEM_BYTES + 4.0));
                }
            }
            None => self.record_input_exchange(x.len()),
        }
        match mode {
            FrontierMode::Pull => {
                let (rows, nnzs) = self.mxv_partition(m.csr(), mask, desc);
                for node in 0..p {
                    let (r, z) = (rows[node], nnzs[node]);
                    self.tracker
                        .record_compute(node, 2.0 * z as f64, spmv_bytes(z, r));
                }
            }
            FrontierMode::Push => {
                let col_major = if desc.is_transposed() {
                    m.csr()
                } else {
                    m.csc()
                };
                let out_len = if desc.is_transposed() {
                    m.ncols()
                } else {
                    m.nrows()
                };
                let dist = self.layout.dist_for(out_len, p);
                let mut rows = vec![0usize; p];
                let mut nnzs = vec![0usize; p];
                let mut touched = vec![false; out_len];
                if let Some(stored) = x.indices() {
                    for &j in stored {
                        let (idx, _) = col_major.row(j as usize);
                        for &i in idx {
                            let node = dist.owner(i as usize);
                            nnzs[node] += 1;
                            if !touched[i as usize] {
                                touched[i as usize] = true;
                                rows[node] += 1;
                            }
                        }
                    }
                }
                for node in 0..p {
                    let (r, z) = (rows[node], nnzs[node]);
                    self.tracker
                        .record_compute(node, 2.0 * z as f64, spmv_bytes(z, r));
                }
            }
        }
        self.tracker
            .end_superstep(self.class(KernelClass::SpMV), self.scope.level, false)
    }

    /// Records a purely local streaming step over the mask-selected subset
    /// of `n` elements, touching `k` vectors at `flops_per_elem` flops.
    pub fn record_stream(
        &mut self,
        n: usize,
        mask: Option<&Vector<bool>>,
        desc: Descriptor,
        k: usize,
        flops_per_elem: f64,
    ) -> StepCost {
        let p = self.nodes();
        let dist = self.layout.dist_for(n, p);
        let mut counts = vec![0usize; p];
        match mask {
            None => {
                for (node, c) in counts.iter_mut().enumerate() {
                    *c = dist.local_len(node);
                }
            }
            Some(_) => for_selected(n, mask, desc, |i| counts[dist.owner(i)] += 1),
        }
        for (node, &c) in counts.iter().enumerate() {
            self.tracker
                .record_compute(node, flops_per_elem * c as f64, stream_bytes(k, c));
        }
        self.tracker
            .end_local_step(self.class(KernelClass::Waxpby), self.scope.level)
    }

    /// Records a distributed reduction: a local streaming fold over the
    /// selection, then the scalar allreduce, one blocking superstep.
    pub fn record_reduction(
        &mut self,
        n: usize,
        mask: Option<&Vector<bool>>,
        desc: Descriptor,
        k: usize,
        flops_per_elem: f64,
    ) -> StepCost {
        let p = self.nodes();
        let dist = self.layout.dist_for(n, p);
        let mut counts = vec![0usize; p];
        match mask {
            None => {
                for (node, c) in counts.iter_mut().enumerate() {
                    *c = dist.local_len(node);
                }
            }
            Some(_) => for_selected(n, mask, desc, |i| counts[dist.owner(i)] += 1),
        }
        for (node, &c) in counts.iter().enumerate() {
            self.tracker
                .record_compute(node, flops_per_elem * c as f64, stream_bytes(k, c));
        }
        self.record_allreduce();
        self.tracker
            .end_superstep(self.class(KernelClass::Dot), self.scope.level, false)
    }

    /// Records a local update stream followed by the allreduce of its
    /// fused norm — the cost shape of `run_axpy_norm`: one stream instead
    /// of an update pass plus a separate two-vector reduction pass.
    pub fn record_stream_with_norm(&mut self, n: usize, k: usize, flops_per_elem: f64) {
        self.record_stream(n, None, Descriptor::DEFAULT, k, flops_per_elem);
        self.record_allreduce();
        self.tracker
            .end_superstep(self.class(KernelClass::Dot), self.scope.level, false);
    }

    /// Records `mxm` as a setup-time step: each node multiplies its owned
    /// `A` rows after receiving every peer's share of `B` (the opaque-
    /// container layout again forces the full operand across the wire).
    pub fn record_mxm<T: crate::ops::scalar::Scalar>(
        &mut self,
        a: &CsrMatrix<T>,
        b: &CsrMatrix<T>,
    ) -> StepCost {
        let p = self.nodes();
        // B travels like a vector allgather, weighted by its storage.
        let b_bytes_per_node = (b.nnz() * (8 + 4)) as f64 / p as f64;
        for from in 0..p {
            self.tracker.record_send_all(from, b_bytes_per_node);
        }
        let dist = self.layout.dist_for(a.nrows(), p);
        let mut flops = vec![0.0f64; p];
        for r in 0..a.nrows() {
            let node = dist.owner(r);
            let (cols, _) = a.row(r);
            for &c in cols {
                flops[node] += 2.0 * b.row_nnz(c as usize) as f64;
            }
        }
        for (node, &fl) in flops.iter().enumerate() {
            // The flop stream reads ~12 bytes per multiply-add (CSR value
            // + index of each operand row entry).
            self.tracker.record_compute(node, fl, fl * 6.0);
        }
        self.tracker
            .end_superstep(self.class(KernelClass::Other), self.scope.level, false)
    }
}

/// Drives `f(i)` over every index selected by `mask` under `desc` — the
/// same selection rules as `exec::for_each_selected`, in a plain `FnMut`
/// form the per-node counters need (cross-checked against the kernel-side
/// implementation in the tests below).
pub(crate) fn for_selected<F: FnMut(usize)>(
    n: usize,
    mask: Option<&Vector<bool>>,
    desc: Descriptor,
    mut f: F,
) {
    let Some(m) = mask else {
        for i in 0..n {
            f(i);
        }
        return;
    };
    if m.len() != n {
        // The kernel rejects the op before any cost is recorded; selecting
        // nothing keeps the recorder total consistent with "no work ran".
        return;
    }
    let inverted = desc.is_mask_inverted();
    match (m.pattern(), desc.is_structural()) {
        (Some(idx), true) if !inverted => {
            for &i in idx {
                f(i as usize);
            }
        }
        (None, true) if !inverted => {
            for i in 0..n {
                f(i);
            }
        }
        (Some(idx), true) => {
            let mut cursor = 0;
            for i in 0..n {
                if cursor < idx.len() && idx[cursor] as usize == i {
                    cursor += 1;
                } else {
                    f(i);
                }
            }
        }
        (None, true) => { /* complement of a dense structural mask is empty */ }
        (_, false) => {
            let vals = m.as_slice();
            for (i, &v) in vals.iter().enumerate() {
                if v != inverted {
                    f(i);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::for_each_selected;
    use crate::Sequential;
    use std::sync::Mutex;

    fn kernel_selection(n: usize, mask: Option<&Vector<bool>>, desc: Descriptor) -> Vec<usize> {
        let hits = Mutex::new(Vec::new());
        for_each_selected::<Sequential, _>(n, mask, desc, |i| hits.lock().unwrap().push(i))
            .unwrap();
        let mut v = hits.into_inner().unwrap();
        v.sort_unstable();
        v
    }

    fn recorder_selection(n: usize, mask: Option<&Vector<bool>>, desc: Descriptor) -> Vec<usize> {
        let mut v = Vec::new();
        for_selected(n, mask, desc, |i| v.push(i));
        v.sort_unstable();
        v
    }

    #[test]
    fn recorder_selection_matches_kernel_selection() {
        let sparse = Vector::<bool>::sparse_filled(9, vec![1, 4, 7], true).unwrap();
        let valued = Vector::<bool>::from_entries(9, &[(0, false), (3, true), (8, true)]).unwrap();
        let dense = Vector::<bool>::filled(9, true);
        let descs = [
            Descriptor::DEFAULT,
            Descriptor::STRUCTURAL,
            Descriptor::INVERT_MASK,
            Descriptor::STRUCTURAL.with(Descriptor::INVERT_MASK),
        ];
        for mask in [None, Some(&sparse), Some(&valued), Some(&dense)] {
            for desc in descs {
                assert_eq!(
                    recorder_selection(9, mask, desc),
                    kernel_selection(9, mask, desc),
                    "mask={:?} desc={desc:?}",
                    mask.map(|m| m.nnz())
                );
            }
        }
    }

    #[test]
    fn mismatched_mask_selects_nothing() {
        let m = Vector::<bool>::filled(3, true);
        let mut hits = 0;
        for_selected(5, Some(&m), Descriptor::DEFAULT, |_| hits += 1);
        assert_eq!(hits, 0);
    }

    #[test]
    fn allgather_matches_closed_form_on_even_split() {
        use bsp::collectives::allgather_h_bytes;
        let (n, p) = (512usize, 4usize);
        let mut st = ClusterState::new(p, MachineParams::arm_cluster(), ShardLayout::Block);
        st.record_input_exchange(n);
        let step = st.tracker.end_superstep(KernelClass::SpMV, None, false);
        assert_eq!(step.h_bytes, allgather_h_bytes(p, n / p, 8));
    }

    #[test]
    fn single_node_is_communication_free() {
        let mut st = ClusterState::new(1, MachineParams::arm_cluster(), ShardLayout::Block);
        st.record_input_exchange(100);
        st.record_allreduce();
        let step = st.tracker.end_superstep(KernelClass::Dot, None, false);
        assert_eq!(step.h_bytes, 0.0);
    }

    #[test]
    fn grid2d_exchange_is_cheaper_than_1d() {
        let (n, p) = (1024usize, 16usize);
        let mut one_d = ClusterState::new(p, MachineParams::arm_cluster(), ShardLayout::Block);
        one_d.record_input_exchange(n);
        let h1 = one_d
            .tracker
            .end_superstep(KernelClass::SpMV, None, false)
            .h_bytes;
        let mut two_d = ClusterState::new(p, MachineParams::arm_cluster(), ShardLayout::Block);
        two_d.grid2d = Some((4, 4));
        two_d.record_input_exchange(n);
        let h2 = two_d
            .tracker
            .end_superstep(KernelClass::SpMV, None, false)
            .h_bytes;
        // 1D: (p−1)·n/p per node; 2D: (pr−1 + pc−1)·n/p = 6·n/p vs 15·n/p.
        assert!((h1 / h2 - 15.0 / 6.0).abs() < 1e-12, "ratio {}", h1 / h2);
    }

    #[test]
    fn scope_overrides_class_and_level() {
        let mut st = ClusterState::new(2, MachineParams::arm_cluster(), ShardLayout::Block);
        st.scope = Scope {
            class: Some(KernelClass::Smoother),
            level: Some(3),
        };
        let step = st.record_stream(64, None, Descriptor::DEFAULT, 3, 2.0);
        assert_eq!(step.class, KernelClass::Smoother);
        assert_eq!(step.mg_level, Some(3));
    }
}
