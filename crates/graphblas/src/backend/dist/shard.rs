//! Sharded superstep execution: the kernels, actually run on `p` workers.
//!
//! Until PR 10 the distributed backend computed once on global state and
//! only *modeled* BSP costs. This module is the real thing: every
//! operation spawns one worker per simulated node (`std::thread::scope`),
//! each worker touches only the rows/elements its node owns under the
//! cluster's [`ShardLayout`], and the bytes a superstep's h-relation
//! describes genuinely move through the [`bsp::Exchange`] mailbox fabric
//! in **split-phase** form: post the shard, compute the interior rows
//! while peers' shards are in flight, complete the exchange only for the
//! boundary tail (paper §VII's nonblocking proposal).
//!
//! # Bit-identity with `Sequential`
//!
//! The workspace invariant is zero-tolerance: every backend must produce
//! results bit-identical to [`Sequential`]. Sharding threatens that in
//! exactly one place — combine order of floating-point reductions — so
//! every kernel here is built from one of two provably-safe shapes:
//!
//! * **Disjoint writes** (`mxv`, element-wise, apply, lambda): each owned
//!   output slot is computed by exactly one worker with the same
//!   per-element expression as the sequential kernel, reading input
//!   values that are bitwise copies of the global ones (the allgather
//!   reassembles the exact bytes). Order across slots is irrelevant.
//! * **Scratch + owner-order fold** (`dot`, `reduce`, the fused
//!   epilogues): workers fill a shared per-element scratch array at their
//!   owned indices, then one ascending fold — the *same*
//!   `Sequential::fold` / `fold_selected::<Sequential>` the eager kernel
//!   runs — combines them. The combine is deterministic owner order by
//!   construction: ascending global index order, which block layouts
//!   enumerate node by node.
//!
//! The sparse-frontier push kernel reassembles the *full* frontier on
//! every node (sorted ascending, the kernel's `iter_stored` order) before
//! scattering, so each scratch slot sees its contributions in exactly the
//! sequence the global walk produces.
//!
//! # Measured overlap
//!
//! Each worker stamps its superstep entry, posts, computes its interior
//! phase, then completes. The envelope stamps tell it how long the
//! exchange was in flight; the hidden time is
//! `min(local work before complete, in-flight window)` and the step's
//! overlap win is the maximum over nodes — directly measured, attributed
//! onto the modeled trace via [`bsp::cost::CostTracker`] overlap
//! attribution, and 0 by construction on one node (no peers).
//!
//! Transposed `mxv`, `mxm`, and 2D process grids keep the global
//! sequential kernels (their exchange structure differs; the recorder
//! still models them), reporting zero overlap.

use super::cost;
use super::layout::ShardLayout;
use crate::backend::Backend;
use crate::container::matrix::{CsrMatrix, GraphMatrix};
use crate::container::vector::{SparseVector, Vector};
use crate::descriptor::Descriptor;
use crate::error::{check_dims, Result};
use crate::exec::fold_selected;
use crate::exec::mxv::mxv_exec;
use crate::exec::sparse::{mxv_sparse_exec, FrontierMode, PUSH_PULL_THRESHOLD};
use crate::ops::accum::{AccumMode, AccumWith};
use crate::ops::binary::BinaryOp;
use crate::ops::monoid::Monoid;
use crate::ops::scalar::Scalar;
use crate::ops::semiring::Semiring;
use crate::ops::unary::UnaryOp;
use crate::util::UnsafeSlice;
use crate::Sequential;
use bsp::dist::Distribution;
use bsp::{BlockCyclic1D, Exchange};
use std::any::TypeId;
use std::time::Instant;

/// Snapshot of the cluster shape one sharded operation executes under.
///
/// Taken under the state lock, used outside it: workers must not hold the
/// cluster mutex while computing (the recorder takes it afterwards).
#[derive(Clone, Debug)]
pub(crate) struct ShardShape {
    /// Worker (node) count `p`.
    pub nodes: usize,
    /// Row/element sharding over the 1D node grid.
    pub layout: ShardLayout,
    /// 2D process grids exchange along both grid axes; 1D sharded
    /// execution falls back to the global kernels under them.
    pub grid2d: bool,
    /// Stable obs thread ids, one per node; workers adopt them so the
    /// Chrome trace shows one named per-node track across operations.
    pub tids: Vec<u64>,
}

impl ShardShape {
    fn dist(&self, n: usize) -> BlockCyclic1D {
        self.layout.dist_for(n, self.nodes)
    }
}

/// Runs `f(worker)` on `p` scoped threads and returns the largest
/// per-worker hidden-exchange time. One node runs inline: there are no
/// peers, so nothing can be in flight and nothing can hide.
fn run_superstep<F>(shape: &ShardShape, f: F) -> f64
where
    F: Fn(usize) -> f64 + Sync,
{
    if shape.nodes == 1 {
        return f(0);
    }
    let mut hidden = 0.0f64;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..shape.nodes)
            .map(|w| {
                let f = &f;
                let tid = shape.tids.get(w).copied();
                s.spawn(move || {
                    if let Some(tid) = tid {
                        obs::adopt_tid(tid);
                    }
                    f(w)
                })
            })
            .collect();
        for handle in handles {
            hidden = hidden.max(handle.join().expect("BSP worker panicked"));
        }
    });
    hidden
}

/// Exchange time hidden behind local work at one node: the in-flight
/// window (superstep entry to the last peer's post) clipped to the local
/// work done before completing. `None` arrival (no peers) hides nothing.
fn hidden_window(t_post: Instant, t_complete: Instant, last_arrival: Option<Instant>) -> f64 {
    let Some(arrival) = last_arrival else {
        return 0.0;
    };
    let local = t_complete.saturating_duration_since(t_post).as_secs_f64();
    let inflight = arrival.saturating_duration_since(t_post).as_secs_f64();
    local.min(inflight)
}

/// The owned selected indices per node, ascending within each node —
/// the sharded counterpart of `for_each_selected`'s visit set.
///
/// Replicates the kernel's mask-length check up front so sharded paths
/// fail with exactly the error the sequential kernel returns (the cost
/// mirror `cost::for_selected` silently selects nothing on mismatch).
fn owned_selected(
    n: usize,
    mask: Option<&Vector<bool>>,
    desc: Descriptor,
    dist: &BlockCyclic1D,
) -> Result<Vec<Vec<usize>>> {
    if let Some(m) = mask {
        check_dims("mask", "mask length", n, m.len())?;
    }
    let mut owned = vec![Vec::new(); dist.nodes()];
    cost::for_selected(n, mask, desc, |i| owned[dist.owner(i)].push(i));
    Ok(owned)
}

/// The split-phase sharded row sweep shared by `mxv` and `spmv_dot`.
///
/// Each worker posts its `x` shard, reassembles the local part, computes
/// every owned row whose columns are all local while peer shards are in
/// flight, then completes the allgather and sweeps the boundary tail.
/// `sink(i, acc)` stores row `i`'s accumulator (the only per-kernel
/// difference). Returns the measured hidden-exchange time.
fn sharded_row_sweep<T, R, G>(
    a: &CsrMatrix<T>,
    xs: &[T],
    owned: &[Vec<usize>],
    shape: &ShardShape,
    sink: G,
) -> f64
where
    T: Scalar,
    R: Semiring<T>,
    G: Fn(usize, T) + Sync,
{
    let x_dist = shape.dist(xs.len());
    let ex = Exchange::<T>::new(shape.nodes);
    run_superstep(shape, |w| {
        let compute_row = |i: usize, src: &[T]| {
            let (cols, vals) = a.row(i);
            let mut acc = R::zero();
            for (&c, &v) in cols.iter().zip(vals) {
                acc = R::add(acc, R::mul(v, src[c as usize]));
            }
            sink(i, acc);
        };
        // Post phase: ship this node's x shard to every peer.
        let t_post = Instant::now();
        let chunk: Vec<T> = (0..x_dist.local_len(w))
            .map(|l| xs[x_dist.to_global(w, l)])
            .collect();
        ex.post_allgather(w, &chunk);
        // Interior phase, overlapping the in-flight exchange: unpack the
        // local shard, sweep every owned row that reads only local
        // columns; boundary rows wait for the peers.
        let mut assembled = vec![R::zero(); xs.len()];
        for (l, &v) in chunk.iter().enumerate() {
            assembled[x_dist.to_global(w, l)] = v;
        }
        let mut boundary = Vec::new();
        for &i in &owned[w] {
            let (cols, _) = a.row(i);
            if cols.iter().all(|&c| x_dist.owner(c as usize) == w) {
                compute_row(i, &assembled);
            } else {
                boundary.push(i);
            }
        }
        let t_complete = Instant::now();
        // Complete phase: drain the mailboxes, then the boundary tail.
        let mut last_arrival: Option<Instant> = None;
        for (peer, envelope) in ex.complete_allgather(w) {
            last_arrival = Some(
                last_arrival.map_or(envelope.posted_at, |t: Instant| t.max(envelope.posted_at)),
            );
            for (l, v) in envelope.data.into_iter().enumerate() {
                assembled[x_dist.to_global(peer, l)] = v;
            }
        }
        let t_boundary = Instant::now();
        for &i in &boundary {
            compute_row(i, &assembled);
        }
        if obs::enabled() {
            obs::record_span("shard.interior", "shard", t_post, t_complete);
            obs::record_span("shard.exchange", "shard", t_complete, t_boundary);
            obs::record_span("shard.boundary", "shard", t_boundary, Instant::now());
        }
        hidden_window(t_post, t_complete, last_arrival)
    })
}

/// Sharded `y⟨mask⟩ = y ⊙? (A ⊕.⊗ x)`. Returns the hidden-exchange time.
pub(crate) fn mxv_sharded<T, R, A>(
    y: &mut Vector<T>,
    mask: Option<&Vector<bool>>,
    desc: Descriptor,
    a: &CsrMatrix<T>,
    x: &Vector<T>,
    shape: &ShardShape,
) -> Result<f64>
where
    T: Scalar,
    R: Semiring<T>,
    A: AccumMode<T>,
{
    if desc.is_transposed() || shape.grid2d {
        mxv_exec::<T, R, A, Sequential>(y, mask, desc, a, x)?;
        return Ok(0.0);
    }
    check_dims("mxv", "x vs ncols", a.ncols(), x.len())?;
    check_dims("mxv", "y vs nrows", a.nrows(), y.len())?;
    let row_dist = shape.dist(a.nrows());
    let owned = owned_selected(a.nrows(), mask, desc, &row_dist)?;
    let xs = x.as_slice();
    let out = UnsafeSlice::new(y.as_mut_slice());
    // SAFETY: `owned` partitions the selected rows across workers, so
    // each output slot is written by exactly one worker exactly once.
    let hidden = sharded_row_sweep::<T, R, _>(a, xs, &owned, shape, |i, acc| unsafe {
        A::store(out.get_mut(i), acc)
    });
    Ok(hidden)
}

/// Sharded direction-optimizing sparse-frontier product. Returns the mode
/// the kernel chose plus the hidden-exchange time.
pub(crate) fn mxv_sparse_sharded<T, R, A>(
    y: &mut Vector<T>,
    mask: Option<&Vector<bool>>,
    desc: Descriptor,
    m: &GraphMatrix<T>,
    x: &SparseVector<T>,
    shape: &ShardShape,
) -> Result<(FrontierMode, f64)>
where
    T: Scalar,
    R: Semiring<T>,
    A: AccumMode<T>,
{
    if shape.grid2d {
        let mode = mxv_sparse_exec::<T, R, A, Sequential>(y, mask, desc, m, x)?;
        return Ok((mode, 0.0));
    }
    if desc.is_transposed() {
        check_dims("mxv_sparse^T", "x vs nrows", m.nrows(), x.len())?;
        check_dims("mxv_sparse^T", "y vs ncols", m.ncols(), y.len())?;
    } else {
        check_dims("mxv_sparse", "x vs ncols", m.ncols(), x.len())?;
        check_dims("mxv_sparse", "y vs nrows", m.nrows(), y.len())?;
    }

    // The kernel's direction heuristic, replicated decision-for-decision
    // (see `mxv_sparse_exec`) so dist picks the mode Sequential picks.
    let transposed_fused_accum = desc.is_transposed()
        && mask.is_none()
        && TypeId::of::<A>() == TypeId::of::<AccumWith<R::Add>>();
    let push_legal = R::ANNIHILATING_ZERO
        && !x.is_promoted()
        && x.fill() == R::zero()
        && !transposed_fused_accum;
    if !push_legal || x.density() > PUSH_PULL_THRESHOLD {
        let hidden = mxv_sharded::<T, R, A>(y, mask, desc, m.csr(), &x.to_dense(), shape)?;
        return Ok((FrontierMode::Pull, hidden));
    }

    // Push: a real sparse frontier exchange. Each node posts its owned
    // stored entries; every node reassembles the full frontier sorted
    // ascending — the kernel's `iter_stored` order — and scatters it into
    // the scratch slots its node owns, so each slot accumulates its
    // contributions in exactly the global walk's sequence.
    let col_major = if desc.is_transposed() {
        m.csr()
    } else {
        m.csc()
    };
    let out_len = y.len();
    let out_dist = shape.dist(out_len);
    let owned_out = owned_selected(out_len, mask, desc, &out_dist)?;
    let x_dist = shape.dist(x.len());
    let mut frontier_shards: Vec<Vec<(u32, T)>> = vec![Vec::new(); shape.nodes];
    for (j, v) in x.iter_stored() {
        frontier_shards[x_dist.owner(j)].push((j as u32, v));
    }
    let mut scratch = vec![R::zero(); out_len];
    let hidden = {
        let sc = UnsafeSlice::new(&mut scratch);
        let out = UnsafeSlice::new(y.as_mut_slice());
        let ex = Exchange::<(u32, T)>::new(shape.nodes);
        run_superstep(shape, |w| {
            let t_post = Instant::now();
            ex.post_allgather(w, &frontier_shards[w]);
            let mut frontier = frontier_shards[w].clone();
            let t_complete = Instant::now();
            let mut last_arrival: Option<Instant> = None;
            for (_, envelope) in ex.complete_allgather(w) {
                last_arrival = Some(
                    last_arrival.map_or(envelope.posted_at, |t: Instant| t.max(envelope.posted_at)),
                );
                frontier.extend(envelope.data);
            }
            // Frontier indices are unique, so the sort fully determines
            // the walk order.
            frontier.sort_unstable_by_key(|&(j, _)| j);
            for &(j, xv) in &frontier {
                let (rows, vals) = col_major.row(j as usize);
                for (&i, &av) in rows.iter().zip(vals) {
                    let i = i as usize;
                    if out_dist.owner(i) == w {
                        // SAFETY: each scratch slot belongs to exactly one
                        // worker via `out_dist`.
                        unsafe {
                            let slot = sc.get_mut(i);
                            *slot = R::add(*slot, R::mul(av, xv));
                        }
                    }
                }
            }
            for &i in &owned_out[w] {
                // SAFETY: selected owned indices are unique per worker and
                // this worker finished all writes to its scratch slots.
                unsafe { A::store(out.get_mut(i), *sc.get_mut(i)) };
            }
            hidden_window(t_post, t_complete, last_arrival)
        })
    };
    Ok((FrontierMode::Push, hidden))
}

/// Sharded fused `y = A ⊕.⊗ x` with a dot epilogue. Returns the dot value
/// and the hidden-exchange time.
pub(crate) fn spmv_dot_sharded<T, R>(
    y: &mut Vector<T>,
    a: &CsrMatrix<T>,
    x: &Vector<T>,
    w: Option<&Vector<T>>,
    product_on_left: bool,
    shape: &ShardShape,
) -> Result<(T, f64)>
where
    T: Scalar,
    R: Semiring<T>,
{
    if shape.grid2d {
        let v = crate::exec::fused::spmv_dot_exec::<T, R, Sequential>(y, a, x, w, product_on_left)?;
        return Ok((v, 0.0));
    }
    check_dims("spmv_dot", "x vs ncols", a.ncols(), x.len())?;
    check_dims("spmv_dot", "y vs nrows", a.nrows(), y.len())?;
    if let Some(w) = w {
        check_dims("spmv_dot", "w vs nrows", a.nrows(), w.len())?;
    }
    // Same epilogue monomorphization as the fused kernel.
    Ok(match (w.map(|v| v.as_slice()), product_on_left) {
        (Some(ws), true) => fused_sweep::<T, R, _>(y, a, x, shape, |i, acc| R::mul(acc, ws[i])),
        (Some(ws), false) => fused_sweep::<T, R, _>(y, a, x, shape, |i, acc| R::mul(ws[i], acc)),
        (None, _) => fused_sweep::<T, R, _>(y, a, x, shape, |_, acc| R::mul(acc, acc)),
    })
}

/// The shared sharded sweep of [`spmv_dot_sharded`]: workers store each
/// row's accumulator into `y` and its epilogue value into a scratch
/// array; the ascending `Sequential::fold` over the scratch then combines
/// exactly as the eager `dot` kernel would.
fn fused_sweep<T, R, F>(
    y: &mut Vector<T>,
    a: &CsrMatrix<T>,
    x: &Vector<T>,
    shape: &ShardShape,
    epilogue: F,
) -> (T, f64)
where
    T: Scalar,
    R: Semiring<T>,
    F: Fn(usize, T) -> T + Sync,
{
    let n = a.nrows();
    let row_dist = shape.dist(n);
    let owned = owned_selected(n, None, Descriptor::DEFAULT, &row_dist)
        .expect("unmasked selection cannot fail");
    let mut scratch = vec![R::zero(); n];
    let hidden = {
        let xs = x.as_slice();
        let out = UnsafeSlice::new(y.as_mut_slice());
        let sc = UnsafeSlice::new(&mut scratch);
        // SAFETY: `owned` partitions the rows, so each y and scratch slot
        // is written by exactly one worker exactly once.
        sharded_row_sweep::<T, R, _>(a, xs, &owned, shape, |i, acc| unsafe {
            *out.get_mut(i) = acc;
            *sc.get_mut(i) = epilogue(i, acc);
        })
    };
    (Sequential::fold::<T, R::Add, _>(n, |i| scratch[i]), hidden)
}

/// Sharded fused `x ← x + α·y` returning `⟨x, x⟩` of the updated vector.
pub(crate) fn axpy_norm_sharded<T, R>(
    x: &mut Vector<T>,
    alpha: T,
    y: &Vector<T>,
    shape: &ShardShape,
) -> Result<T>
where
    T: Scalar,
    R: Semiring<T>,
{
    check_dims("axpy_norm", "y vs x", x.len(), y.len())?;
    let n = x.len();
    let dist = shape.dist(n);
    let owned = owned_selected(n, None, Descriptor::DEFAULT, &dist)?;
    let ys = y.as_slice();
    let mut scratch = vec![R::zero(); n];
    {
        let out = UnsafeSlice::new(x.as_mut_slice());
        let sc = UnsafeSlice::new(&mut scratch);
        run_superstep(shape, |w| {
            for &i in &owned[w] {
                // SAFETY: owned indices are disjoint across workers.
                unsafe {
                    let slot = out.get_mut(i);
                    *slot = slot.add(alpha.mul(ys[i]));
                    *sc.get_mut(i) = R::mul(*slot, *slot);
                }
            }
            0.0
        });
    }
    Ok(Sequential::fold::<T, R::Add, _>(n, |i| scratch[i]))
}

/// Sharded `⟨x, y⟩` under semiring `R`.
pub(crate) fn dot_sharded<T, R>(x: &Vector<T>, y: &Vector<T>, shape: &ShardShape) -> Result<T>
where
    T: Scalar,
    R: Semiring<T>,
{
    check_dims("dot", "y vs x", x.len(), y.len())?;
    let n = x.len();
    let dist = shape.dist(n);
    let owned = owned_selected(n, None, Descriptor::DEFAULT, &dist)?;
    let xs = x.as_slice();
    let ys = y.as_slice();
    let mut scratch = vec![R::zero(); n];
    {
        let sc = UnsafeSlice::new(&mut scratch);
        run_superstep(shape, |w| {
            for &i in &owned[w] {
                // SAFETY: owned indices are disjoint across workers.
                unsafe { *sc.get_mut(i) = R::mul(xs[i], ys[i]) };
            }
            0.0
        });
    }
    Ok(Sequential::fold::<T, R::Add, _>(n, |i| scratch[i]))
}

/// Sharded masked monoid reduction of `x`.
pub(crate) fn reduce_sharded<T, M>(
    x: &Vector<T>,
    mask: Option<&Vector<bool>>,
    desc: Descriptor,
    shape: &ShardShape,
) -> Result<T>
where
    T: Scalar,
    M: Monoid<T>,
{
    let n = x.len();
    let dist = shape.dist(n);
    let owned = owned_selected(n, mask, desc, &dist)?;
    let xs = x.as_slice();
    // Unselected slots are never read: `fold_selected` maps selected
    // indices only (unselected contribute `M::identity()` directly).
    let mut scratch = vec![M::identity(); n];
    {
        let sc = UnsafeSlice::new(&mut scratch);
        run_superstep(shape, |w| {
            for &i in &owned[w] {
                // SAFETY: owned indices are disjoint across workers.
                unsafe { *sc.get_mut(i) = xs[i] };
            }
            0.0
        });
    }
    // The exact fold structure of the sequential kernel, including its
    // identity handling on unselected indices.
    fold_selected::<Sequential, T, M, _>(n, mask, desc, |i| scratch[i])
}

/// Sharded `w⟨mask⟩ = w ⊙? Op(αx, βy)`.
pub(crate) fn ewise_sharded<T, Op, A>(
    w: &mut Vector<T>,
    mask: Option<&Vector<bool>>,
    desc: Descriptor,
    x: &Vector<T>,
    y: &Vector<T>,
    scale: Option<(T, T)>,
    shape: &ShardShape,
) -> Result<()>
where
    T: Scalar,
    Op: BinaryOp<T>,
    A: AccumMode<T>,
{
    check_dims("ewise", "x vs output", w.len(), x.len())?;
    check_dims("ewise", "y vs output", w.len(), y.len())?;
    let n = w.len();
    let dist = shape.dist(n);
    let owned = owned_selected(n, mask, desc, &dist)?;
    let xs = x.as_slice();
    let ys = y.as_slice();
    let out = UnsafeSlice::new(w.as_mut_slice());
    match scale {
        None => run_superstep(shape, |node| {
            for &i in &owned[node] {
                // SAFETY: owned indices are disjoint across workers.
                unsafe { A::store(out.get_mut(i), Op::apply(xs[i], ys[i])) };
            }
            0.0
        }),
        Some((alpha, beta)) => run_superstep(shape, |node| {
            for &i in &owned[node] {
                // SAFETY: owned indices are disjoint across workers.
                unsafe {
                    A::store(out.get_mut(i), Op::apply(alpha.mul(xs[i]), beta.mul(ys[i])));
                }
            }
            0.0
        }),
    };
    Ok(())
}

/// Sharded `x ← x + α·y`.
pub(crate) fn axpy_sharded<T>(
    x: &mut Vector<T>,
    alpha: T,
    y: &Vector<T>,
    shape: &ShardShape,
) -> Result<()>
where
    T: Scalar,
{
    check_dims("axpy", "y vs x", x.len(), y.len())?;
    let n = x.len();
    let dist = shape.dist(n);
    let owned = owned_selected(n, None, Descriptor::DEFAULT, &dist)?;
    let ys = y.as_slice();
    let out = UnsafeSlice::new(x.as_mut_slice());
    run_superstep(shape, |w| {
        for &i in &owned[w] {
            // SAFETY: owned indices are disjoint across workers.
            unsafe {
                let slot = out.get_mut(i);
                *slot = slot.add(alpha.mul(ys[i]));
            }
        }
        0.0
    });
    Ok(())
}

/// Sharded `out⟨mask⟩ = out ⊙? Op(input)`.
pub(crate) fn apply_sharded<T, Op, A>(
    out: &mut Vector<T>,
    mask: Option<&Vector<bool>>,
    desc: Descriptor,
    input: &Vector<T>,
    shape: &ShardShape,
) -> Result<()>
where
    T: Scalar,
    Op: UnaryOp<T>,
    A: AccumMode<T>,
{
    check_dims("apply", "input vs output", out.len(), input.len())?;
    let n = out.len();
    let dist = shape.dist(n);
    let owned = owned_selected(n, mask, desc, &dist)?;
    let xs = input.as_slice();
    let slots = UnsafeSlice::new(out.as_mut_slice());
    run_superstep(shape, |w| {
        for &i in &owned[w] {
            // SAFETY: owned indices are disjoint across workers.
            unsafe { A::store(slots.get_mut(i), Op::apply(xs[i])) };
        }
        0.0
    });
    Ok(())
}

/// Sharded in-place lambda over the selected indices.
pub(crate) fn lambda_sharded<T, F>(
    out: &mut Vector<T>,
    mask: Option<&Vector<bool>>,
    desc: Descriptor,
    f: F,
    shape: &ShardShape,
) -> Result<()>
where
    T: Scalar,
    F: Fn(usize, &mut T) + Send + Sync,
{
    let n = out.len();
    let dist = shape.dist(n);
    let owned = owned_selected(n, mask, desc, &dist)?;
    let slots = UnsafeSlice::new(out.as_mut_slice());
    run_superstep(shape, |w| {
        for &i in &owned[w] {
            // SAFETY: owned indices are disjoint across workers.
            f(i, unsafe { slots.get_mut(i) });
        }
        0.0
    });
    Ok(())
}

/// Sharded index iteration: `f(i)` for every owned index on its worker.
pub(crate) fn for_each_sharded<F>(n: usize, f: F, shape: &ShardShape)
where
    F: Fn(usize) + Send + Sync,
{
    let dist = shape.dist(n);
    let owned = owned_selected(n, None, Descriptor::DEFAULT, &dist)
        .expect("unmasked selection cannot fail");
    run_superstep(shape, |w| {
        for &i in &owned[w] {
            f(i);
        }
        0.0
    });
}
