//! The distributed backend: the whole GraphBLAS surface on a simulated
//! BSP cluster.
//!
//! The paper's hybrid ALP/GraphBLAS backend runs unmodified GraphBLAS
//! programs on an LPF/BSP cluster (§IV): containers are opaque, rows and
//! vector entries are sharded over a 1D node grid, and — because the
//! layout is domain-oblivious — every `mxv` is preceded by an allgather
//! of the full input vector (`Θ(n(p−1)/p)` bytes, Table I). This module
//! is that backend over the workspace's simulated cluster:
//!
//! * [`Distributed`] implements [`Exec`], so `Ctx<Distributed>` — and with
//!   it every fluent builder, mask/accumulator/descriptor combination and
//!   recorded [`Pipeline`](crate::Pipeline) — runs distributed, including
//!   the fused `spmv+dot` / `axpy+norm` entry points;
//! * numerics execute **sharded across `p` real worker threads** (the
//!   [`shard`] module): each worker owns its node's rows/elements under
//!   the layout, input vectors move through the [`bsp::Exchange`] mailbox
//!   fabric in split-phase (post, compute the interior, complete for the
//!   boundary tail), and every combine is sequenced in deterministic
//!   owner order — so results stay bit-identical to the sequential
//!   backend, the property the workspace pins down with property tests;
//! * the modeled cost is now the **cross-check**: per-node work and
//!   h-relations are recorded superstep-by-superstep into a
//!   [`bsp::CostTracker`] exactly as before, and every step additionally
//!   carries the directly measured wall-clock and the measured
//!   exchange-time-hidden-behind-compute of the sharded execution;
//! * the row/element sharding is a configurable [`ShardLayout`] (1D block
//!   or block-cyclic), and the machine is a [`bsp::MachineParams`] preset.
//!
//! ```
//! use graphblas::{CsrMatrix, Distributed, Vector};
//!
//! let a = CsrMatrix::<f64>::from_triplets(2, 2, &[(0, 0, 2.0), (1, 1, 3.0)]).unwrap();
//! let x = Vector::from_dense(vec![1.0, 2.0]);
//! let mut y = Vector::zeros(2);
//!
//! let cluster = Distributed::new(4);           // 4 simulated nodes
//! cluster.ctx().mxv(&a, &x).into(&mut y).unwrap();
//! assert_eq!(y.as_slice(), &[2.0, 6.0]);       // bit-identical to Sequential
//! assert_eq!(cluster.supersteps(), 1);         // one allgather + sweep
//! assert!(cluster.total_h_bytes() > 0.0);
//! ```
//!
//! A [`Distributed`] value is a `Copy` **handle** onto shared cluster
//! state (a process-wide registry keeps the state alive), which is what
//! lets it satisfy the [`Exec`] bounds while accumulating a cost trace
//! across operations. Handles compare equal only to themselves, and
//! [`BackendKind::Dist`](crate::BackendKind) carries one for runtime
//! backend selection (`--backend dist:<nodes>`, `GRB_BACKEND=dist:4`).

pub mod cost;
pub mod layout;
mod shard;

pub use layout::ShardLayout;

use crate::container::matrix::{CsrMatrix, GraphMatrix};
use crate::container::vector::{SparseVector, Vector};
use crate::context::Exec;
use crate::descriptor::Descriptor;
use crate::error::Result;
use crate::exec::mxm::mxm_exec;
use crate::exec::sparse::FrontierMode;
use crate::ops::accum::AccumMode;
use crate::ops::binary::BinaryOp;
use crate::ops::monoid::Monoid;
use crate::ops::scalar::Scalar;
use crate::ops::semiring::Semiring;
use crate::ops::unary::UnaryOp;
use crate::Sequential;
use bsp::cost::{CostTracker, KernelClass, StepCost};
use bsp::machine::MachineParams;
use cost::{ClusterState, Scope};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// Configuration of a simulated cluster: node count, machine parameters
/// and data layout.
#[derive(Copy, Clone, Debug)]
pub struct DistConfig {
    /// Number of simulated nodes (`p`).
    pub nodes: usize,
    /// BSP machine parameters (compute roofline, gap `g`, latency `l`).
    pub machine: MachineParams,
    /// Row/element sharding over the 1D node grid.
    pub layout: ShardLayout,
    /// `Some((pr, pc))` replaces the 1D pre-`mxv` allgather with the
    /// §VII-B(ii) 2D expand/fold exchange over a `pr×pc` process grid.
    pub grid2d: Option<(usize, usize)>,
}

impl DistConfig {
    /// A `nodes`-node cluster with the paper's ARM machine parameters and
    /// a contiguous 1D block layout.
    pub fn new(nodes: usize) -> DistConfig {
        DistConfig {
            nodes,
            machine: MachineParams::arm_cluster(),
            layout: ShardLayout::Block,
            grid2d: None,
        }
    }

    /// Sets the machine parameters.
    #[must_use]
    pub fn machine(mut self, machine: MachineParams) -> DistConfig {
        self.machine = machine;
        self
    }

    /// Sets the shard layout.
    #[must_use]
    pub fn layout(mut self, layout: ShardLayout) -> DistConfig {
        self.layout = layout;
        self
    }

    /// Switches the pre-`mxv` exchange to a 2D `pr×pc` process grid.
    #[must_use]
    pub fn grid2d(mut self, pr: usize, pc: usize) -> DistConfig {
        assert!(pr * pc == self.nodes, "process grid must cover all nodes");
        self.grid2d = Some((pr, pc));
        self
    }
}

/// Process-wide registry keeping every cluster's state alive; a
/// [`Distributed`] handle is an index into it.
fn registry() -> &'static RwLock<Vec<Arc<Mutex<ClusterState>>>> {
    static REGISTRY: OnceLock<RwLock<Vec<Arc<Mutex<ClusterState>>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(Vec::new()))
}

/// The distributed execution backend: a `Copy` handle onto one simulated
/// cluster. See the [module docs](self).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Distributed {
    id: usize,
}

impl Distributed {
    /// Creates a `nodes`-node cluster with default configuration
    /// ([`DistConfig::new`]): ARM machine parameters, 1D block layout.
    pub fn new(nodes: usize) -> Distributed {
        Self::with_config(DistConfig::new(nodes))
    }

    /// Creates a cluster with explicit configuration.
    pub fn with_config(config: DistConfig) -> Distributed {
        let mut state = ClusterState::new(config.nodes, config.machine, config.layout);
        state.grid2d = config.grid2d;
        let mut reg = registry().write().unwrap();
        let id = reg.len();
        reg.push(Arc::new(Mutex::new(state)));
        Distributed { id }
    }

    fn state(&self) -> Arc<Mutex<ClusterState>> {
        registry().read().unwrap()[self.id].clone()
    }

    fn record<R>(&self, f: impl FnOnce(&mut ClusterState) -> R) -> R {
        let state = self.state();
        let mut guard = state.lock().unwrap();
        f(&mut guard)
    }

    /// Snapshot of the cluster shape a sharded operation executes under,
    /// taken under the state lock and used outside it (workers must not
    /// hold the cluster mutex while computing).
    fn shape(&self) -> shard::ShardShape {
        self.record(|s| shard::ShardShape {
            nodes: s.tracker.nodes(),
            layout: s.layout,
            grid2d: s.grid2d.is_some(),
            tids: s.worker_tids.clone(),
        })
    }

    /// Runs the cost-recording closure `f` and pairs the supersteps it
    /// closes with the measured wall-clock since `t0` (the sharded
    /// execution's wall time), distributed along the model's own per-step
    /// ratio — the cross-check column of [`CostSummary`] — plus the
    /// measured `overlap_hidden` seconds the split-phase exchange hid
    /// behind local compute, attributed to the closed steps that moved
    /// bytes. With tracing on, each closed superstep also becomes a
    /// retrospective span (class `"superstep"`) slicing the measured
    /// interval.
    fn record_measured<R>(
        &self,
        t0: std::time::Instant,
        overlap_hidden: f64,
        f: impl FnOnce(&mut ClusterState) -> R,
    ) {
        let secs = t0.elapsed().as_secs_f64();
        self.record(|s| {
            let mark = s.tracker.steps().len();
            let _ = f(s);
            s.tracker.attribute_measured(mark, secs);
            s.tracker.attribute_overlap(mark, overlap_hidden);
            if obs::enabled() {
                let mut at = t0;
                for step in &s.tracker.steps()[mark..] {
                    let dur = std::time::Duration::from_secs_f64(step.measured_secs.max(0.0));
                    obs::record_span(superstep_name(step.class), "superstep", at, at + dur);
                    at += dur;
                }
            }
        })
    }

    /// Number of simulated nodes.
    pub fn nodes(&self) -> usize {
        self.record(|s| s.tracker.nodes())
    }

    /// The machine parameters of the simulated cluster.
    pub fn machine(&self) -> MachineParams {
        self.record(|s| s.tracker.params())
    }

    /// The shard layout in use.
    pub fn layout(&self) -> ShardLayout {
        self.record(|s| s.layout)
    }

    /// An execution context dispatching to this cluster — the distributed
    /// sibling of `ctx::<Sequential>()`.
    pub fn ctx(self) -> crate::Ctx<Distributed> {
        crate::context::ctx_on(self)
    }

    /// A snapshot of the accumulated BSP cost trace.
    pub fn tracker(&self) -> CostTracker {
        self.record(|s| s.tracker.clone())
    }

    /// Drains and returns the closed supersteps recorded since the last
    /// drain — how a harness attributes modeled cost to its own phases.
    pub fn take_steps(&self) -> Vec<StepCost> {
        self.record(|s| s.tracker.take_steps())
    }

    /// Clears the cost trace (e.g. between a warm-up and a measured run).
    pub fn reset_costs(&self) {
        self.record(|s| s.tracker.reset())
    }

    /// Drains the closed steps and resets the attribution scope in one
    /// atomic operation — the hand-off point a multi-tenant harness uses
    /// between jobs sharing a cached cluster, so neither unbilled steps
    /// nor a dangling [`set_scope`](Distributed::set_scope) can bleed
    /// from one tenant's job into the next tenant's bill.
    pub fn end_job(&self) -> Vec<StepCost> {
        self.record(|s| {
            s.scope = Scope::default();
            s.tracker.take_steps()
        })
    }

    /// Records a purely local streaming step that did not go through a
    /// context operation: `n` elements across `k` vectors, no
    /// communication, no barrier. Harnesses use this for raw buffer moves
    /// (HPCG's `copy`/`set_zero`) so the modeled trace stays faithful to
    /// work the simulated nodes would still perform.
    pub fn record_local_stream(&self, n: usize, k: usize) {
        self.record(|s| {
            s.record_stream(n, None, crate::Descriptor::DEFAULT, k, 0.0);
        })
    }

    /// Forces a kernel class and/or multigrid level onto every superstep
    /// recorded until [`clear_scope`](Distributed::clear_scope) — how the
    /// HPCG harness tags smoother and grid-transfer steps.
    pub fn set_scope(&self, class: Option<KernelClass>, level: Option<usize>) {
        self.record(|s| s.scope = Scope { class, level })
    }

    /// Resets the attribution scope to per-operation defaults.
    pub fn clear_scope(&self) {
        self.record(|s| s.scope = Scope::default())
    }

    /// Total modeled BSP wall-clock of all recorded supersteps.
    pub fn total_modeled_secs(&self) -> f64 {
        self.record(|s| s.tracker.total_secs())
    }

    /// Total communicated bytes (sum over steps of the per-step max
    /// h-relation — the quantity Table I bounds).
    pub fn total_h_bytes(&self) -> f64 {
        self.record(|s| s.tracker.total_h_bytes())
    }

    /// Number of recorded supersteps.
    pub fn supersteps(&self) -> usize {
        self.record(|s| s.tracker.superstep_count())
    }

    /// Total measured exchange time hidden behind local compute by the
    /// split-phase sharded execution (the §VII overlap win).
    pub fn total_overlap_hidden_secs(&self) -> f64 {
        self.record(|s| s.tracker.total_overlap_hidden_secs())
    }

    /// The per-kernel-class cost breakdown of everything recorded so far.
    pub fn cost_summary(&self) -> CostSummary {
        self.record(|s| {
            CostSummary::from_steps(s.tracker.nodes(), s.layout.name(), s.tracker.steps())
        })
    }
}

/// Modeled cost of one kernel class within a [`CostSummary`].
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct ClassCost {
    /// The kernel class the steps were attributed to.
    pub class: KernelClass,
    /// Modeled seconds across all steps of the class.
    pub secs: f64,
    /// Measured seconds attributed across all steps of the class (0 when
    /// the steps were recorded without timed execution).
    pub measured_secs: f64,
    /// h-relation bytes across all steps of the class.
    pub h_bytes: f64,
    /// Measured exchange time hidden behind compute across the class's
    /// steps (0 when the class moved no bytes or ran on one node).
    pub overlap_hidden_secs: f64,
    /// Number of recorded steps of the class.
    pub steps: usize,
}

impl ClassCost {
    /// Measured / modeled seconds for this class (0 when either side is
    /// unmeasured or the model predicts zero).
    pub fn model_error(&self) -> f64 {
        if self.secs > 0.0 && self.measured_secs > 0.0 {
            self.measured_secs / self.secs
        } else {
            0.0
        }
    }
}

/// Per-kernel-class breakdown of a cluster's recorded BSP costs — the
/// report the distributed graph-algorithm examples and the scaling
/// harness print.
#[derive(Clone, Debug)]
pub struct CostSummary {
    /// Simulated nodes.
    pub nodes: usize,
    /// Shard layout name.
    pub layout: &'static str,
    /// Total modeled wall-clock.
    pub total_secs: f64,
    /// Total measured wall-clock attributed to the steps (0 when the
    /// trace was recorded without timed execution).
    pub total_measured_secs: f64,
    /// Total h-relation bytes.
    pub total_h_bytes: f64,
    /// Total measured exchange time hidden behind compute.
    pub total_overlap_hidden_secs: f64,
    /// Total recorded steps.
    pub supersteps: usize,
    /// Per-class breakdown, in first-recorded order.
    pub per_class: Vec<ClassCost>,
}

impl CostSummary {
    /// Aggregates a recorded step sequence into the per-class breakdown —
    /// works on a live cluster's trace ([`Distributed::cost_summary`]) or
    /// on steps a harness drained into its own tracker.
    pub fn from_steps(nodes: usize, layout: &'static str, steps: &[StepCost]) -> CostSummary {
        let mut per_class: Vec<ClassCost> = Vec::new();
        for step in steps {
            match per_class.iter_mut().find(|c| c.class == step.class) {
                Some(c) => {
                    c.secs += step.total_secs();
                    c.measured_secs += step.measured_secs;
                    c.h_bytes += step.h_bytes;
                    c.overlap_hidden_secs += step.overlap_hidden_secs;
                    c.steps += 1;
                }
                None => per_class.push(ClassCost {
                    class: step.class,
                    secs: step.total_secs(),
                    measured_secs: step.measured_secs,
                    h_bytes: step.h_bytes,
                    overlap_hidden_secs: step.overlap_hidden_secs,
                    steps: 1,
                }),
            }
        }
        CostSummary {
            nodes,
            layout,
            total_secs: steps.iter().map(StepCost::total_secs).sum(),
            total_measured_secs: steps.iter().map(|s| s.measured_secs).sum(),
            total_h_bytes: steps.iter().map(|s| s.h_bytes).sum(),
            total_overlap_hidden_secs: steps.iter().map(|s| s.overlap_hidden_secs).sum(),
            supersteps: steps.len(),
            per_class,
        }
    }

    /// Overall measured / modeled wall-clock ratio — the paper's central
    /// cross-check quantity (0 when the trace carries no measurements).
    pub fn model_error(&self) -> f64 {
        if self.total_secs > 0.0 && self.total_measured_secs > 0.0 {
            self.total_measured_secs / self.total_secs
        } else {
            0.0
        }
    }

    /// Stable display name of a [`KernelClass`] for machine-readable
    /// reports (the same spelling [`Display`](std::fmt::Display) uses).
    pub fn class_name(class: KernelClass) -> &'static str {
        class_name(class)
    }
}

/// Span name a closed superstep of `class` records under.
fn superstep_name(class: KernelClass) -> &'static str {
    match class {
        KernelClass::SpMV => "superstep.spmv",
        KernelClass::Dot => "superstep.dot",
        KernelClass::Waxpby => "superstep.waxpby",
        KernelClass::Smoother => "superstep.smoother",
        KernelClass::RestrictRefine => "superstep.restrict",
        KernelClass::Other => "superstep.other",
    }
}

/// Stable display name of a [`KernelClass`] for reports.
pub(crate) fn class_name(class: KernelClass) -> &'static str {
    match class {
        KernelClass::SpMV => "spmv",
        KernelClass::Dot => "dot/reduce",
        KernelClass::Waxpby => "vector update",
        KernelClass::Smoother => "smoother",
        KernelClass::RestrictRefine => "restrict/refine",
        KernelClass::Other => "other",
    }
}

impl std::fmt::Display for CostSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "modeled BSP cost on {} node(s), {} layout: {:.3} ms modeled, {:.3} ms measured \
             (x{:.2} model error), {:.3} ms exchange hidden by overlap, {:.2} MB communicated, \
             {} supersteps",
            self.nodes,
            self.layout,
            self.total_secs * 1e3,
            self.total_measured_secs * 1e3,
            self.model_error(),
            self.total_overlap_hidden_secs * 1e3,
            self.total_h_bytes / 1e6,
            self.supersteps,
        )?;
        for c in &self.per_class {
            writeln!(
                f,
                "  {:<15} {:>10.3} ms modeled  {:>10.3} ms measured  {:>10.3} ms hidden  \
                 {:>9.2} MB  {:>6} step(s)",
                class_name(c.class),
                c.secs * 1e3,
                c.measured_secs * 1e3,
                c.overlap_hidden_secs * 1e3,
                c.h_bytes / 1e6,
                c.steps,
            )?;
        }
        Ok(())
    }
}

impl Exec for Distributed {
    fn threads(self) -> usize {
        // The parallelism being modeled lives across nodes, not threads.
        self.nodes()
    }

    fn backend_name(self) -> &'static str {
        "distributed(bsp)"
    }

    fn run_mxv<T: Scalar, R: Semiring<T>, A: AccumMode<T>>(
        self,
        y: &mut Vector<T>,
        mask: Option<&Vector<bool>>,
        desc: Descriptor,
        a: &CsrMatrix<T>,
        x: &Vector<T>,
    ) -> Result<()> {
        let _span = obs::span_enter("dist.mxv", "spmv");
        let shape = self.shape();
        let t0 = std::time::Instant::now();
        let hidden = shard::mxv_sharded::<T, R, A>(y, mask, desc, a, x, &shape)?;
        self.record_measured(t0, hidden, |s| s.record_mxv(a, x.len(), mask, desc, false));
        Ok(())
    }

    fn run_mxv_sparse<T: Scalar, R: Semiring<T>, A: AccumMode<T>>(
        self,
        y: &mut Vector<T>,
        mask: Option<&Vector<bool>>,
        desc: Descriptor,
        m: &GraphMatrix<T>,
        x: &SparseVector<T>,
    ) -> Result<FrontierMode> {
        let _span = obs::span_enter("dist.mxv_sparse", "spmv");
        let shape = self.shape();
        let t0 = std::time::Instant::now();
        let (mode, hidden) = shard::mxv_sparse_sharded::<T, R, A>(y, mask, desc, m, x, &shape)?;
        self.record_measured(t0, hidden, |s| s.record_mxv_sparse(m, x, mask, desc, mode));
        Ok(mode)
    }

    fn run_ewise<T: Scalar, Op: BinaryOp<T>, A: AccumMode<T>>(
        self,
        w: &mut Vector<T>,
        mask: Option<&Vector<bool>>,
        desc: Descriptor,
        x: &Vector<T>,
        y: &Vector<T>,
        scale: Option<(T, T)>,
    ) -> Result<()> {
        let _span = obs::span_enter("dist.ewise", "update");
        let shape = self.shape();
        let t0 = std::time::Instant::now();
        shard::ewise_sharded::<T, Op, A>(w, mask, desc, x, y, scale, &shape)?;
        let flops = if scale.is_some() { 3.0 } else { 1.0 };
        self.record_measured(t0, 0.0, |s| s.record_stream(w.len(), mask, desc, 3, flops));
        Ok(())
    }

    fn run_axpy<T: Scalar>(self, x: &mut Vector<T>, alpha: T, y: &Vector<T>) -> Result<()> {
        let _span = obs::span_enter("dist.axpy", "update");
        let shape = self.shape();
        let t0 = std::time::Instant::now();
        shard::axpy_sharded::<T>(x, alpha, y, &shape)?;
        self.record_measured(t0, 0.0, |s| {
            s.record_stream(x.len(), None, Descriptor::DEFAULT, 3, 2.0)
        });
        Ok(())
    }

    fn run_apply<T: Scalar, Op: UnaryOp<T>, A: AccumMode<T>>(
        self,
        out: &mut Vector<T>,
        mask: Option<&Vector<bool>>,
        desc: Descriptor,
        input: &Vector<T>,
    ) -> Result<()> {
        let _span = obs::span_enter("dist.apply", "update");
        let shape = self.shape();
        let t0 = std::time::Instant::now();
        shard::apply_sharded::<T, Op, A>(out, mask, desc, input, &shape)?;
        self.record_measured(t0, 0.0, |s| s.record_stream(out.len(), mask, desc, 2, 1.0));
        Ok(())
    }

    fn run_lambda<T: Scalar, F: Fn(usize, &mut T) + Send + Sync>(
        self,
        out: &mut Vector<T>,
        mask: Option<&Vector<bool>>,
        desc: Descriptor,
        f: F,
    ) -> Result<()> {
        let _span = obs::span_enter("dist.lambda", "update");
        let shape = self.shape();
        let t0 = std::time::Instant::now();
        shard::lambda_sharded::<T, F>(out, mask, desc, f, &shape)?;
        // A lambda typically reads a captured vector besides the in-place
        // output; model it as a three-stream update (the xpay shape).
        self.record_measured(t0, 0.0, |s| s.record_stream(out.len(), mask, desc, 3, 2.0));
        Ok(())
    }

    fn run_reduce<T: Scalar, M: Monoid<T>>(
        self,
        x: &Vector<T>,
        mask: Option<&Vector<bool>>,
        desc: Descriptor,
    ) -> Result<T> {
        let _span = obs::span_enter("dist.reduce", "dot");
        let shape = self.shape();
        let t0 = std::time::Instant::now();
        let v = shard::reduce_sharded::<T, M>(x, mask, desc, &shape)?;
        self.record_measured(t0, 0.0, |s| s.record_reduction(x.len(), mask, desc, 1, 1.0));
        Ok(v)
    }

    fn run_dot<T: Scalar, R: Semiring<T>>(self, x: &Vector<T>, y: &Vector<T>) -> Result<T> {
        let _span = obs::span_enter("dist.dot", "dot");
        let shape = self.shape();
        let t0 = std::time::Instant::now();
        let v = shard::dot_sharded::<T, R>(x, y, &shape)?;
        self.record_measured(t0, 0.0, |s| {
            s.record_reduction(x.len(), None, Descriptor::DEFAULT, 2, 2.0)
        });
        Ok(v)
    }

    fn run_mxm<T: Scalar, R: Semiring<T>>(
        self,
        a: &CsrMatrix<T>,
        b: &CsrMatrix<T>,
        desc: Descriptor,
    ) -> Result<CsrMatrix<T>> {
        let _span = obs::span_enter("dist.mxm", "spmv");
        let t0 = std::time::Instant::now();
        let c = mxm_exec::<T, R, Sequential>(a, b, desc)?;
        self.record_measured(t0, 0.0, |s| s.record_mxm(a, b));
        Ok(c)
    }

    fn run_for_each<F: Fn(usize) + Send + Sync>(self, n: usize, f: F) {
        let _span = obs::span_enter("dist.for_each", "update");
        let shape = self.shape();
        let t0 = std::time::Instant::now();
        shard::for_each_sharded(n, f, &shape);
        self.record_measured(t0, 0.0, |s| {
            s.record_stream(n, None, Descriptor::DEFAULT, 2, 1.0)
        });
    }

    fn run_spmv_dot<T: Scalar, R: Semiring<T>>(
        self,
        y: &mut Vector<T>,
        a: &CsrMatrix<T>,
        x: &Vector<T>,
        w: Option<&Vector<T>>,
        product_on_left: bool,
    ) -> Result<T> {
        let _span = obs::span_enter("dist.spmv_dot", "fused");
        let shape = self.shape();
        let t0 = std::time::Instant::now();
        let (v, hidden) = shard::spmv_dot_sharded::<T, R>(y, a, x, w, product_on_left, &shape)?;
        // One sweep with the dot epilogue plus one Θ(p) allreduce — not
        // two full supersteps (the nonblocking-execution payoff, §VI).
        self.record_measured(t0, hidden, |s| {
            s.record_mxv(a, x.len(), None, Descriptor::DEFAULT, true)
        });
        Ok(v)
    }

    fn run_axpy_norm<T: Scalar, R: Semiring<T>>(
        self,
        x: &mut Vector<T>,
        alpha: T,
        y: &Vector<T>,
    ) -> Result<T> {
        let _span = obs::span_enter("dist.axpy_norm", "fused");
        let shape = self.shape();
        let t0 = std::time::Instant::now();
        let v = shard::axpy_norm_sharded::<T, R>(x, alpha, y, &shape)?;
        self.record_measured(t0, 0.0, |s| s.record_stream_with_norm(x.len(), 3, 4.0));
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::{Max, Plus, Times};
    use crate::ops::semiring::MinPlus;
    use crate::{ctx, BackendKind};
    use bsp::collectives::{allgather_h_bytes, allreduce_h_bytes};

    fn a3() -> CsrMatrix<f64> {
        CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 2.0),
                (0, 2, 1.0),
                (1, 1, 3.0),
                (2, 0, -1.0),
                (2, 2, 4.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn results_bit_identical_to_sequential() {
        let a = a3();
        let x = Vector::from_dense(vec![1.0, -2.0, 3.0]);
        let m = Vector::<bool>::sparse_filled(3, vec![0, 2], true).unwrap();
        let seq = ctx::<Sequential>();
        let dist = Distributed::new(3).ctx();

        let mut y_s = Vector::from_dense(vec![7.0; 3]);
        let mut y_d = y_s.clone();
        seq.mxv(&a, &x)
            .mask(&m)
            .structural()
            .transpose()
            .accum(Plus)
            .into(&mut y_s)
            .unwrap();
        dist.mxv(&a, &x)
            .mask(&m)
            .structural()
            .transpose()
            .accum(Plus)
            .into(&mut y_d)
            .unwrap();
        assert_eq!(y_s.as_slice(), y_d.as_slice());

        assert_eq!(
            seq.dot(&x, &y_s).ring(MinPlus).compute().unwrap(),
            dist.dot(&x, &y_d).ring(MinPlus).compute().unwrap()
        );
        let mut w_s = Vector::zeros(3);
        let mut w_d = Vector::zeros(3);
        seq.ewise(&x, &y_s)
            .op(Times)
            .scaled(2.0, -1.0)
            .into(&mut w_s)
            .unwrap();
        dist.ewise(&x, &y_d)
            .op(Times)
            .scaled(2.0, -1.0)
            .into(&mut w_d)
            .unwrap();
        assert_eq!(w_s.as_slice(), w_d.as_slice());
        assert_eq!(
            seq.reduce(&w_s).monoid(Max).compute().unwrap(),
            dist.reduce(&w_d).monoid(Max).compute().unwrap()
        );
    }

    #[test]
    fn mxv_records_one_allgather_superstep() {
        let n = 64usize;
        let a =
            CsrMatrix::<f64>::from_triplets(n, n, &(0..n).map(|i| (i, i, 1.0)).collect::<Vec<_>>())
                .unwrap();
        let x = Vector::filled(n, 1.0);
        let mut y = Vector::zeros(n);
        let cluster = Distributed::new(4);
        cluster.ctx().mxv(&a, &x).into(&mut y).unwrap();
        let t = cluster.tracker();
        assert_eq!(t.superstep_count(), 1);
        // Even split → the closed form of Table I exactly.
        assert_eq!(t.steps()[0].h_bytes, allgather_h_bytes(4, n / 4, 8));
        assert!(t.steps()[0].sync_secs > 0.0, "mxv is a barriered superstep");
    }

    #[test]
    fn fused_spmv_dot_costs_one_sweep_plus_allreduce() {
        let n = 64usize;
        let a =
            CsrMatrix::<f64>::from_triplets(n, n, &(0..n).map(|i| (i, i, 2.0)).collect::<Vec<_>>())
                .unwrap();
        let x = Vector::filled(n, 1.0);
        let p = 4usize;

        // Fused: the pipeline lowers mxv + dot onto run_spmv_dot.
        let fused = Distributed::new(p);
        let mut y = Vector::zeros(n);
        let mut pl = fused.ctx().pipeline();
        let yh = pl.mxv(&a, &x).into(&mut y);
        let d = pl.dot(&x, yh).result();
        let out = pl.finish().unwrap();
        assert_eq!(out[d], 2.0 * n as f64);

        // Unfused: eager mxv then dot.
        let eager = Distributed::new(p);
        let mut y2 = Vector::zeros(n);
        eager.ctx().mxv(&a, &x).into(&mut y2).unwrap();
        eager.ctx().dot(&x, &y2).compute().unwrap();

        let (tf, te) = (fused.tracker(), eager.tracker());
        assert_eq!(tf.superstep_count(), 2, "sweep + allreduce");
        assert_eq!(te.superstep_count(), 2);
        // Both pay the same allgather; the fused allreduce step carries no
        // fresh vector stream, so its compute time vanishes next to the
        // eager dot's two-vector read.
        assert_eq!(tf.steps()[0].h_bytes, te.steps()[0].h_bytes);
        assert_eq!(tf.steps()[1].h_bytes, allreduce_h_bytes(p, 8));
        assert!(tf.steps()[1].compute_secs < te.steps()[1].compute_secs / 10.0);
        assert!(tf.total_secs() < te.total_secs());
    }

    #[test]
    fn masked_mxv_charges_only_selected_rows() {
        let n = 64usize;
        let mut trips = Vec::new();
        for i in 0..n {
            trips.push((i, i, 1.0));
            trips.push((i, (i + 1) % n, 1.0));
        }
        let a = CsrMatrix::<f64>::from_triplets(n, n, &trips).unwrap();
        let x = Vector::filled(n, 1.0);
        let m = Vector::<bool>::sparse_filled(n, vec![0, 1], true).unwrap();

        let full = Distributed::new(2);
        let mut y = Vector::zeros(n);
        full.ctx().mxv(&a, &x).into(&mut y).unwrap();
        let masked = Distributed::new(2);
        masked
            .ctx()
            .mxv(&a, &x)
            .mask(&m)
            .structural()
            .into(&mut y)
            .unwrap();
        // The allgather is identical (opaque containers), the work is not.
        assert_eq!(
            full.tracker().steps()[0].h_bytes,
            masked.tracker().steps()[0].h_bytes
        );
        assert!(
            masked.tracker().steps()[0].compute_secs < full.tracker().steps()[0].compute_secs / 4.0
        );
    }

    #[test]
    fn local_ops_close_barrier_free_steps() {
        let cluster = Distributed::new(4);
        let x = Vector::filled(128, 1.0);
        let y = Vector::filled(128, 2.0);
        let mut w = Vector::zeros(128);
        cluster
            .ctx()
            .ewise(&x, &y)
            .scaled(2.0, 1.0)
            .into(&mut w)
            .unwrap();
        cluster.ctx().axpy(&mut w, 0.5, &x).unwrap();
        let t = cluster.tracker();
        assert_eq!(t.superstep_count(), 2);
        for s in t.steps() {
            assert_eq!(s.h_bytes, 0.0, "vector updates are communication-free");
            assert_eq!(s.sync_secs, 0.0, "and synchronize with nobody");
        }
    }

    #[test]
    fn dot_pays_exactly_one_allreduce() {
        let p = 8usize;
        let cluster = Distributed::new(p);
        let x = Vector::filled(100, 1.0);
        assert_eq!(cluster.ctx().norm2_squared(&x).unwrap(), 100.0);
        let t = cluster.tracker();
        assert_eq!(t.superstep_count(), 1);
        assert_eq!(t.steps()[0].h_bytes, allreduce_h_bytes(p, 8));
    }

    #[test]
    fn handle_accumulates_and_resets() {
        let cluster = Distributed::new(2);
        let x = Vector::filled(16, 1.0);
        cluster.ctx().norm2_squared(&x).unwrap();
        cluster.ctx().norm2_squared(&x).unwrap();
        assert_eq!(cluster.supersteps(), 2);
        let drained = cluster.take_steps();
        assert_eq!(drained.len(), 2);
        assert_eq!(cluster.supersteps(), 0);
        cluster.ctx().norm2_squared(&x).unwrap();
        cluster.reset_costs();
        assert_eq!(cluster.supersteps(), 0);
        assert_eq!(cluster.total_h_bytes(), 0.0);
    }

    #[test]
    fn cost_summary_breaks_down_by_class() {
        let cluster = Distributed::new(3);
        let a = a3();
        let x = Vector::from_dense(vec![1.0, 2.0, 3.0]);
        let mut y = Vector::zeros(3);
        cluster.ctx().mxv(&a, &x).into(&mut y).unwrap();
        cluster.ctx().dot(&x, &y).compute().unwrap();
        cluster.ctx().axpy(&mut y, 1.0, &x).unwrap();
        let summary = cluster.cost_summary();
        assert_eq!(summary.nodes, 3);
        assert_eq!(summary.supersteps, 3);
        let classes: Vec<KernelClass> = summary.per_class.iter().map(|c| c.class).collect();
        assert_eq!(
            classes,
            vec![KernelClass::SpMV, KernelClass::Dot, KernelClass::Waxpby]
        );
        let rendered = summary.to_string();
        assert!(rendered.contains("spmv"), "{rendered}");
        assert!(rendered.contains("3 node(s)"), "{rendered}");
    }

    #[test]
    fn cost_summary_pairs_measured_with_modeled() {
        let cluster = Distributed::new(2);
        let a = a3();
        let x = Vector::from_dense(vec![1.0, 2.0, 3.0]);
        let mut y = Vector::zeros(3);
        cluster.ctx().mxv(&a, &x).into(&mut y).unwrap();
        cluster.ctx().dot(&x, &y).compute().unwrap();
        let summary = cluster.cost_summary();
        // Kernels really executed, so every class carries wall-clock next
        // to its modeled seconds and the overall ratio is defined.
        assert!(summary.total_measured_secs > 0.0);
        assert!(summary.model_error() > 0.0);
        for c in &summary.per_class {
            assert!(c.measured_secs > 0.0, "unmeasured class {:?}", c.class);
        }
        // Attribution conserves the measurement: per-class sums equal the
        // total.
        let class_sum: f64 = summary.per_class.iter().map(|c| c.measured_secs).sum();
        assert!((class_sum - summary.total_measured_secs).abs() < 1e-12);
        let rendered = summary.to_string();
        assert!(rendered.contains("measured"), "{rendered}");
    }

    #[test]
    fn fused_kernel_spreads_measurement_over_both_closed_steps() {
        let cluster = Distributed::new(2);
        let a = a3();
        let x = Vector::from_dense(vec![1.0, 2.0, 3.0]);
        let mut y = Vector::zeros(3);
        cluster
            .run_spmv_dot::<f64, crate::PlusTimes>(&mut y, &a, &x, Some(&x), false)
            .unwrap();
        let steps = cluster.take_steps();
        assert_eq!(steps.len(), 2, "fused SpMV+dot closes two supersteps");
        assert!(steps.iter().all(|s| s.measured_secs > 0.0));
    }

    #[test]
    fn end_job_drains_steps_and_resets_scope() {
        let cluster = Distributed::new(2);
        let x = Vector::filled(16, 1.0);
        cluster.set_scope(Some(KernelClass::Smoother), Some(1));
        cluster.ctx().norm2_squared(&x).unwrap();
        let steps = cluster.end_job();
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].class, KernelClass::Smoother);
        assert_eq!(steps[0].mg_level, Some(1));
        // The hand-off also dropped the scope: the next job's ops are
        // attributed per-operation again, not under the old tenant's tag.
        cluster.ctx().norm2_squared(&x).unwrap();
        let steps = cluster.end_job();
        assert_eq!(steps[0].class, KernelClass::Dot);
        assert_eq!(steps[0].mg_level, None);
        assert_eq!(cluster.supersteps(), 0);
    }

    #[test]
    fn errors_record_no_cost() {
        let cluster = Distributed::new(2);
        let a = a3();
        let bad = Vector::filled(5, 1.0); // wrong length
        let mut y = Vector::zeros(3);
        assert!(cluster.ctx().mxv(&a, &bad).into(&mut y).is_err());
        assert_eq!(cluster.supersteps(), 0);
    }

    #[test]
    fn exec_surface_reports_cluster_shape() {
        let cluster = Distributed::new(5);
        assert_eq!(cluster.nodes(), 5);
        assert_eq!(cluster.ctx().threads(), 5);
        assert_eq!(cluster.ctx().backend_name(), "distributed(bsp)");
        assert_eq!(cluster.layout(), ShardLayout::Block);
        // Handles are identities: a second cluster is a different backend.
        let other = Distributed::new(5);
        assert_ne!(cluster, other);
        assert_eq!(BackendKind::Dist(cluster), BackendKind::Dist(cluster));
    }

    #[test]
    fn block_cyclic_config_shards_cyclically() {
        let cluster = Distributed::with_config(
            DistConfig::new(2)
                .layout(ShardLayout::BlockCyclic { block: 4 })
                .machine(MachineParams::slow_network()),
        );
        assert_eq!(cluster.layout(), ShardLayout::BlockCyclic { block: 4 });
        assert_eq!(
            cluster.machine().g_secs_per_byte,
            MachineParams::slow_network().g_secs_per_byte
        );
    }
}
