//! Row/element sharding of the distributed backend.
//!
//! The paper's hybrid ALP backend assumes a 1D grid of nodes and splits
//! matrix rows and vector entries either in contiguous blocks or
//! block-cyclically (§IV). Containers stay opaque, so the layout is pure
//! cost-model state: it decides which simulated node owns which global
//! index, and therefore how much each node computes and communicates.

use bsp::dist::BlockCyclic1D;

/// How the distributed backend shards rows and vector entries over the
/// 1D node grid.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum ShardLayout {
    /// Contiguous 1D blocks: node `k` owns `[k·⌈n/p⌉, (k+1)·⌈n/p⌉)`.
    #[default]
    Block,
    /// 1D block-cyclic with the given block size (ALP's hybrid default).
    BlockCyclic {
        /// Elements per block.
        block: usize,
    },
}

impl ShardLayout {
    /// The distribution of `n` elements over `p` nodes under this layout.
    ///
    /// A contiguous block layout is a block-cyclic layout whose block size
    /// is one full share, so both variants lower onto [`BlockCyclic1D`].
    pub fn dist_for(self, n: usize, p: usize) -> BlockCyclic1D {
        let block = match self {
            ShardLayout::Block => n.div_ceil(p).max(1),
            ShardLayout::BlockCyclic { block } => block.max(1),
        };
        BlockCyclic1D::new(n, p, block)
    }

    /// Short human-readable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ShardLayout::Block => "1D block",
            ShardLayout::BlockCyclic { .. } => "1D block-cyclic",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsp::dist::Distribution;

    #[test]
    fn block_layout_is_contiguous() {
        let d = ShardLayout::Block.dist_for(10, 3);
        // ⌈10/3⌉ = 4: node 0 owns 0..4, node 1 owns 4..8, node 2 owns 8..10.
        assert_eq!(d.owner(0), 0);
        assert_eq!(d.owner(3), 0);
        assert_eq!(d.owner(4), 1);
        assert_eq!(d.owner(9), 2);
        assert_eq!(
            (0..3).map(|k| d.local_len(k)).collect::<Vec<_>>(),
            vec![4, 4, 2]
        );
    }

    #[test]
    fn block_cyclic_layout_cycles() {
        let d = ShardLayout::BlockCyclic { block: 2 }.dist_for(8, 2);
        assert_eq!(d.owner(0), 0);
        assert_eq!(d.owner(2), 1);
        assert_eq!(d.owner(4), 0);
        assert_eq!(d.local_len(0), 4);
        assert_eq!(d.local_len(1), 4);
    }

    #[test]
    fn local_lens_always_sum_to_n() {
        for layout in [ShardLayout::Block, ShardLayout::BlockCyclic { block: 3 }] {
            for (n, p) in [(0usize, 4usize), (1, 4), (17, 5), (64, 4), (100, 7)] {
                let d = layout.dist_for(n, p);
                assert_eq!(
                    (0..p).map(|k| d.local_len(k)).sum::<usize>(),
                    n,
                    "{layout:?} n={n} p={p}"
                );
            }
        }
    }
}
