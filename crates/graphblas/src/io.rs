//! Matrix Market I/O for [`CsrMatrix`] and [`Vector`].
//!
//! The de-facto interchange format of the sparse-matrix world. Supports
//! the `matrix coordinate real {general|symmetric}` and
//! `matrix array real general` (dense vector) headers — enough to load
//! SuiteSparse-style inputs into the solver and to dump results for
//! external plotting.

use crate::container::matrix::CsrMatrix;
use crate::container::vector::Vector;
use crate::error::{GrbError, Result};
use std::io::{BufRead, Write};

/// Writes `a` in `matrix coordinate real general` format (1-based indices).
pub fn write_matrix_market<W: Write>(mut w: W, a: &CsrMatrix<f64>) -> std::io::Result<()> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by graphblas-rs")?;
    writeln!(w, "{} {} {}", a.nrows(), a.ncols(), a.nnz())?;
    for (r, c, v) in a.iter_entries() {
        writeln!(w, "{} {} {:e}", r + 1, c + 1, v)?;
    }
    Ok(())
}

/// Writes a dense vector in `matrix array real general` format.
pub fn write_vector_market<W: Write>(mut w: W, x: &Vector<f64>) -> std::io::Result<()> {
    writeln!(w, "%%MatrixMarket matrix array real general")?;
    writeln!(w, "{} 1", x.len())?;
    for &v in x.as_slice() {
        writeln!(w, "{v:e}")?;
    }
    Ok(())
}

/// Reads a `matrix coordinate real {general|symmetric}` file.
///
/// Symmetric inputs are expanded: each off-diagonal entry is mirrored, the
/// usual Matrix Market convention.
pub fn read_matrix_market<R: BufRead>(r: R) -> Result<CsrMatrix<f64>> {
    let mut lines = r.lines();
    let header = lines
        .next()
        .ok_or_else(|| GrbError::InvalidInput("empty Matrix Market file".into()))?
        .map_err(io_err)?;
    let header_lc = header.to_ascii_lowercase();
    if !header_lc.starts_with("%%matrixmarket matrix coordinate real") {
        return Err(GrbError::InvalidInput(format!(
            "unsupported header: {header}"
        )));
    }
    let symmetric = header_lc.contains("symmetric");
    if !symmetric && !header_lc.contains("general") {
        return Err(GrbError::InvalidInput(format!(
            "unsupported symmetry in: {header}"
        )));
    }

    let mut dims: Option<(usize, usize, usize)> = None;
    let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
    for line in lines {
        let line = line.map_err(io_err)?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        if dims.is_none() {
            let nrows = parse(it.next(), "rows")?;
            let ncols = parse(it.next(), "cols")?;
            let nnz = parse(it.next(), "nnz")?;
            dims = Some((nrows, ncols, nnz));
            triplets.reserve(nnz);
            continue;
        }
        let r: usize = parse(it.next(), "row index")?;
        let c: usize = parse(it.next(), "col index")?;
        let v: f64 = it
            .next()
            .unwrap_or("1")
            .parse()
            .map_err(|_| GrbError::InvalidInput(format!("bad value in line: {line}")))?;
        if r == 0 || c == 0 {
            return Err(GrbError::InvalidInput(
                "Matrix Market indices are 1-based".into(),
            ));
        }
        triplets.push((r - 1, c - 1, v));
        if symmetric && r != c {
            triplets.push((c - 1, r - 1, v));
        }
    }
    let (nrows, ncols, declared) =
        dims.ok_or_else(|| GrbError::InvalidInput("missing size line".into()))?;
    let base_entries = if symmetric {
        triplets.iter().filter(|&&(r, c, _)| r <= c).count()
    } else {
        triplets.len()
    };
    if base_entries != declared {
        return Err(GrbError::InvalidInput(format!(
            "declared {declared} entries, found {base_entries}"
        )));
    }
    CsrMatrix::from_triplets(nrows, ncols, &triplets)
}

/// Reads a dense vector from `matrix array real general`.
pub fn read_vector_market<R: BufRead>(r: R) -> Result<Vector<f64>> {
    let mut values: Vec<f64> = Vec::new();
    let mut expect: Option<usize> = None;
    for (k, line) in r.lines().enumerate() {
        let line = line.map_err(io_err)?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') {
            if k == 0
                && !line
                    .to_ascii_lowercase()
                    .starts_with("%%matrixmarket matrix array real")
            {
                return Err(GrbError::InvalidInput(format!(
                    "unsupported header: {line}"
                )));
            }
            continue;
        }
        if expect.is_none() {
            let mut it = line.split_whitespace();
            let n: usize = parse(it.next(), "length")?;
            let cols: usize = parse(it.next(), "columns")?;
            if cols != 1 {
                return Err(GrbError::InvalidInput(
                    "only single-column vectors supported".into(),
                ));
            }
            expect = Some(n);
            values.reserve(n);
            continue;
        }
        values.push(
            line.parse::<f64>()
                .map_err(|_| GrbError::InvalidInput(format!("bad value: {line}")))?,
        );
    }
    let n = expect.ok_or_else(|| GrbError::InvalidInput("missing size line".into()))?;
    if values.len() != n {
        return Err(GrbError::InvalidInput(format!(
            "declared {n} values, found {}",
            values.len()
        )));
    }
    Ok(Vector::from_dense(values))
}

fn parse<T: std::str::FromStr>(tok: Option<&str>, what: &str) -> Result<T> {
    tok.and_then(|t| t.parse().ok())
        .ok_or_else(|| GrbError::InvalidInput(format!("missing or invalid {what}")))
}

fn io_err(e: std::io::Error) -> GrbError {
    GrbError::InvalidInput(format!("I/O error: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn small() -> CsrMatrix<f64> {
        CsrMatrix::from_triplets(3, 2, &[(0, 0, 1.5), (2, 1, -2.0), (1, 0, 3.0)]).unwrap()
    }

    #[test]
    fn matrix_roundtrip() {
        let a = small();
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &a).unwrap();
        let b = read_matrix_market(BufReader::new(&buf[..])).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn vector_roundtrip() {
        let x = Vector::from_dense(vec![1.0, -2.5, 3.25]);
        let mut buf = Vec::new();
        write_vector_market(&mut buf, &x).unwrap();
        let y = read_vector_market(BufReader::new(&buf[..])).unwrap();
        assert_eq!(x.as_slice(), y.as_slice());
    }

    #[test]
    fn symmetric_expansion() {
        let text =
            "%%MatrixMarket matrix coordinate real symmetric\n3 3 3\n1 1 2.0\n2 1 -1.0\n3 3 5.0\n";
        let a = read_matrix_market(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(a.get(0, 1), Some(-1.0), "mirrored entry");
        assert_eq!(a.get(1, 0), Some(-1.0));
        assert_eq!(a.nnz(), 4);
        assert!(a.is_symmetric());
    }

    #[test]
    fn rejects_malformed() {
        let bad_header = "%%MatrixMarket matrix coordinate complex general\n1 1 0\n";
        assert!(read_matrix_market(BufReader::new(bad_header.as_bytes())).is_err());
        let zero_based = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(read_matrix_market(BufReader::new(zero_based.as_bytes())).is_err());
        let wrong_count = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market(BufReader::new(wrong_count.as_bytes())).is_err());
        assert!(read_matrix_market(BufReader::new("".as_bytes())).is_err());
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "%%MatrixMarket matrix coordinate real general\n% a comment\n\n2 2 1\n% more\n2 2 4.0\n";
        let a = read_matrix_market(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(a.get(1, 1), Some(4.0));
    }

    #[test]
    fn pattern_entries_default_to_one() {
        // Lines with only indices parse with value 1 (pattern-ish input).
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2\n";
        let a = read_matrix_market(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(a.get(0, 1), Some(1.0));
    }
}
