//! Deferred (nonblocking) execution: record operations, fuse, then run.
//!
//! The paper cites the ALP nonblocking extension as the GraphBLAS answer to
//! the hand-fused kernels HPCG vendors ship: the program *expresses* each
//! primitive separately and the runtime merges compatible stages so paired
//! kernels stream their operands once. [`Pipeline`] is that subsystem here:
//!
//! ```
//! use graphblas::{ctx, CsrMatrix, Sequential, Vector};
//!
//! let a = CsrMatrix::<f64>::from_triplets(2, 2, &[(0, 0, 2.0), (1, 1, 3.0)]).unwrap();
//! let p = Vector::from_dense(vec![1.0, 2.0]);
//! let mut ap = Vector::zeros(2);
//!
//! let mut pl = ctx::<Sequential>().pipeline();
//! let ap_h = pl.mxv(&a, &p).into(&mut ap);      // records, nothing runs yet
//! let p_ap = pl.dot(&p, ap_h).result();         // ⟨p, A·p⟩, also deferred
//! let out = pl.finish().unwrap();               // fuses into one SpMV pass
//! assert_eq!(out[p_ap], 1.0 * 2.0 + 2.0 * 6.0);
//! assert_eq!(ap.as_slice(), &[2.0, 6.0]);
//! ```
//!
//! # Recording model
//!
//! The fluent builders off a [`Pipeline`] mirror the eager ones on
//! [`Ctx`](crate::Ctx) — `mxv`, `vxm`, `ewise`, `apply`, `axpy`,
//! `transform`, `dot`, `reduce`, `norm2_squared` with the same
//! mask/descriptor/ring/accumulator modifiers — but their terminals push a
//! typed node into a small dependency graph instead of executing. Dataflow
//! between recorded stages is expressed with handles:
//!
//! * writing a vector (`.into(&mut y)`, `axpy`, `transform`) borrows it
//!   exclusively for the pipeline's lifetime and returns a [`VecHandle`];
//!   later stages use the handle as an *input* operand (the borrow checker
//!   rules out touching `y` directly until the pipeline is finished);
//! * in-place updates of an already-recorded vector go through the
//!   handle-taking forms (`axpy_at`, `transform_at`, `.into_handle`);
//! * scalar-producing stages return a [`ScalarHandle`], redeemed against
//!   the [`PipelineResults`] that [`Pipeline::finish`] returns.
//!
//! Because outputs are registered exactly once as `&mut` and inputs as `&`,
//! the usual borrow rules statically guarantee the graph's vectors don't
//! alias — the same property that makes the fused loops sound.
//!
//! # Fusion
//!
//! `finish()` runs the generic pass in [`crate::fusion`]: element-wise
//! chains collapse into single loops, an `mxv` feeding a `dot`/norm becomes
//! one SpMV-with-epilogue sweep, and an `axpy` feeding a norm becomes one
//! fused update-and-reduce stream. Everything else executes stage by stage
//! through the exact kernels the eager builders use, so pipeline execution
//! is **bit-identical** to eager execution on either backend (a property
//! the workspace pins down with dedicated tests).
//!
//! # Algebra at recording time
//!
//! A deferred op must remember its algebra at runtime; the zero-sized
//! operator types are recorded as tags ([`RingTag`], [`BinOpTag`],
//! [`UnaryOpTag`], [`MonoidTag`]) and re-monomorphized at execution. The
//! taggable subset (arithmetic + tropical rings, the arithmetic/min/max
//! operator families) covers HPCG and the workspace's graph workloads;
//! `mxm` stays eager-only (it is a setup-time primitive).
//!
//! # Compile once, replay many times
//!
//! A pipeline records against *borrowed* operands, so a loop body recorded
//! this way must be re-recorded (and re-fused) every iteration. When the
//! same op graph runs repeatedly — a CG iteration body, per-request serve
//! work — record it once against dimensioned **slots** instead with
//! [`Ctx::plan`](crate::Ctx::plan): `compile()` freezes the fused schedule
//! into a reusable [`Plan`](crate::plan::Plan) and each replay binds fresh
//! buffers (and scalar parameters) into the already-fused stages. Replay
//! runs the same tagged kernels as `finish()` and stays bit-identical to
//! both this module and the eager path; see [`crate::plan`] for the
//! slot/binding model and the process-wide
//! [`PlanCache`](crate::plan::PlanCache).

use crate::container::matrix::CsrMatrix;
use crate::container::vector::Vector;
use crate::context::Exec;
use crate::descriptor::Descriptor;
use crate::error::{check_dims, Result};
use crate::fusion::{fuse, PlannedStage, Stage};
use crate::ops::accum::{AccumWith, NoAccum};
use crate::ops::binary::{Divide, Max, Min, Minus, Plus, Times};
use crate::ops::scalar::Scalar;
use crate::ops::semiring::{MaxTimes, MinPlus, PlusTimes};
use crate::ops::unary::{Abs, AdditiveInverse, Identity, MultiplicativeInverse};
use crate::util::UnsafeSlice;
use std::marker::PhantomData;

// ---------------------------------------------------------------------------
// Runtime algebra tags
// ---------------------------------------------------------------------------

/// Runtime identifier of a semiring a recorded op executes over.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RingTag {
    /// The arithmetic semiring `(+, ×)`.
    PlusTimes,
    /// The tropical semiring `(min, +)`.
    MinPlus,
    /// The `(max, ×)` semiring.
    MaxTimes,
}

/// Runtime identifier of a binary operator (element-wise op or accumulator).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BinOpTag {
    /// Addition.
    Plus,
    /// Subtraction.
    Minus,
    /// Multiplication.
    Times,
    /// Division.
    Divide,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

/// Runtime identifier of a unary operator.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum UnaryOpTag {
    /// The identity function.
    Identity,
    /// Absolute value.
    Abs,
    /// Additive inverse.
    AdditiveInverse,
    /// Multiplicative inverse.
    MultiplicativeInverse,
}

/// Runtime identifier of a reduction monoid.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MonoidTag {
    /// Sum.
    Plus,
    /// Product.
    Times,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

/// Zero-sized semirings a pipeline can record (the runtime-taggable subset).
pub trait TaggedRing: Copy {
    /// The runtime tag of this semiring.
    const TAG: RingTag;
}
impl TaggedRing for PlusTimes {
    const TAG: RingTag = RingTag::PlusTimes;
}
impl TaggedRing for MinPlus {
    const TAG: RingTag = RingTag::MinPlus;
}
impl TaggedRing for MaxTimes {
    const TAG: RingTag = RingTag::MaxTimes;
}

/// Zero-sized binary operators a pipeline can record.
pub trait TaggedBinOp: Copy {
    /// The runtime tag of this operator.
    const TAG: BinOpTag;
}
impl TaggedBinOp for Plus {
    const TAG: BinOpTag = BinOpTag::Plus;
}
impl TaggedBinOp for Minus {
    const TAG: BinOpTag = BinOpTag::Minus;
}
impl TaggedBinOp for Times {
    const TAG: BinOpTag = BinOpTag::Times;
}
impl TaggedBinOp for Divide {
    const TAG: BinOpTag = BinOpTag::Divide;
}
impl TaggedBinOp for Min {
    const TAG: BinOpTag = BinOpTag::Min;
}
impl TaggedBinOp for Max {
    const TAG: BinOpTag = BinOpTag::Max;
}

/// Zero-sized unary operators a pipeline can record.
pub trait TaggedUnaryOp: Copy {
    /// The runtime tag of this operator.
    const TAG: UnaryOpTag;
}
impl TaggedUnaryOp for Identity {
    const TAG: UnaryOpTag = UnaryOpTag::Identity;
}
impl TaggedUnaryOp for Abs {
    const TAG: UnaryOpTag = UnaryOpTag::Abs;
}
impl TaggedUnaryOp for AdditiveInverse {
    const TAG: UnaryOpTag = UnaryOpTag::AdditiveInverse;
}
impl TaggedUnaryOp for MultiplicativeInverse {
    const TAG: UnaryOpTag = UnaryOpTag::MultiplicativeInverse;
}

/// Zero-sized monoids a pipeline can record.
pub trait TaggedMonoid: Copy {
    /// The runtime tag of this monoid.
    const TAG: MonoidTag;
}
impl TaggedMonoid for Plus {
    const TAG: MonoidTag = MonoidTag::Plus;
}
impl TaggedMonoid for Times {
    const TAG: MonoidTag = MonoidTag::Times;
}
impl TaggedMonoid for Min {
    const TAG: MonoidTag = MonoidTag::Min;
}
impl TaggedMonoid for Max {
    const TAG: MonoidTag = MonoidTag::Max;
}

impl BinOpTag {
    /// Applies the tagged operator — exactly the arithmetic its zero-sized
    /// counterpart inlines to, so fused loops match eager kernels bitwise.
    #[inline(always)]
    pub(crate) fn apply<T: Scalar>(self, a: T, b: T) -> T {
        match self {
            BinOpTag::Plus => a.add(b),
            BinOpTag::Minus => a.sub(b),
            BinOpTag::Times => a.mul(b),
            BinOpTag::Divide => a.div(b),
            BinOpTag::Min => a.min_of(b),
            BinOpTag::Max => a.max_of(b),
        }
    }
}

impl UnaryOpTag {
    /// Applies the tagged operator (see [`BinOpTag::apply`]).
    #[inline(always)]
    pub(crate) fn apply<T: Scalar>(self, a: T) -> T {
        match self {
            UnaryOpTag::Identity => a,
            UnaryOpTag::Abs => a.abs_of(),
            UnaryOpTag::AdditiveInverse => T::ZERO.sub(a),
            UnaryOpTag::MultiplicativeInverse => T::ONE.div(a),
        }
    }
}

/// Re-monomorphizes a [`RingTag`] into its zero-sized semiring.
macro_rules! with_ring {
    ($tag:expr, $R:ident => $body:expr) => {
        match $tag {
            RingTag::PlusTimes => {
                type $R = PlusTimes;
                $body
            }
            RingTag::MinPlus => {
                type $R = MinPlus;
                $body
            }
            RingTag::MaxTimes => {
                type $R = MaxTimes;
                $body
            }
        }
    };
}

/// Re-monomorphizes an optional accumulator tag into an `AccumMode`.
macro_rules! with_accum {
    ($tag:expr, $A:ident => $body:expr) => {
        match $tag {
            None => {
                type $A = NoAccum;
                $body
            }
            Some(BinOpTag::Plus) => {
                type $A = AccumWith<Plus>;
                $body
            }
            Some(BinOpTag::Minus) => {
                type $A = AccumWith<Minus>;
                $body
            }
            Some(BinOpTag::Times) => {
                type $A = AccumWith<Times>;
                $body
            }
            Some(BinOpTag::Divide) => {
                type $A = AccumWith<Divide>;
                $body
            }
            Some(BinOpTag::Min) => {
                type $A = AccumWith<Min>;
                $body
            }
            Some(BinOpTag::Max) => {
                type $A = AccumWith<Max>;
                $body
            }
        }
    };
}

/// Re-monomorphizes a [`BinOpTag`] into its zero-sized operator type.
macro_rules! with_binop {
    ($tag:expr, $Op:ident => $body:expr) => {
        match $tag {
            BinOpTag::Plus => {
                type $Op = Plus;
                $body
            }
            BinOpTag::Minus => {
                type $Op = Minus;
                $body
            }
            BinOpTag::Times => {
                type $Op = Times;
                $body
            }
            BinOpTag::Divide => {
                type $Op = Divide;
                $body
            }
            BinOpTag::Min => {
                type $Op = Min;
                $body
            }
            BinOpTag::Max => {
                type $Op = Max;
                $body
            }
        }
    };
}

/// Re-monomorphizes a [`UnaryOpTag`] into its zero-sized operator type.
macro_rules! with_unop {
    ($tag:expr, $Op:ident => $body:expr) => {
        match $tag {
            UnaryOpTag::Identity => {
                type $Op = Identity;
                $body
            }
            UnaryOpTag::Abs => {
                type $Op = Abs;
                $body
            }
            UnaryOpTag::AdditiveInverse => {
                type $Op = AdditiveInverse;
                $body
            }
            UnaryOpTag::MultiplicativeInverse => {
                type $Op = MultiplicativeInverse;
                $body
            }
        }
    };
}

/// Re-monomorphizes a [`MonoidTag`] into its zero-sized monoid type.
macro_rules! with_monoid {
    ($tag:expr, $M:ident => $body:expr) => {
        match $tag {
            MonoidTag::Plus => {
                type $M = Plus;
                $body
            }
            MonoidTag::Times => {
                type $M = Times;
                $body
            }
            MonoidTag::Min => {
                type $M = Min;
                $body
            }
            MonoidTag::Max => {
                type $M = Max;
                $body
            }
        }
    };
}

// The plan module replays the same tagged ops, so it shares the
// re-monomorphization macros.
pub(crate) use {with_accum, with_binop, with_monoid, with_ring, with_unop};

// ---------------------------------------------------------------------------
// Handles, operands, nodes
// ---------------------------------------------------------------------------

/// Names the vector output of a recorded stage (or a vector bound with
/// [`Pipeline::bind`]); later stages use it as an input operand. Handles
/// are branded with the issuing pipeline's id, so passing one to another
/// pipeline panics instead of silently resolving to the wrong vector.
#[derive(Copy, Clone, Debug)]
pub struct VecHandle {
    pl: u64,
    pub(crate) idx: usize,
}

/// Names the scalar result of a recorded `dot`/`reduce`/norm stage; redeem
/// it against [`PipelineResults`] after [`Pipeline::finish`]. Branded like
/// [`VecHandle`].
#[derive(Copy, Clone, Debug)]
pub struct ScalarHandle {
    pl: u64,
    pub(crate) idx: usize,
}

/// An input operand of a recorded stage: a vector outside the pipeline or
/// the output of an earlier stage.
#[derive(Copy, Clone)]
pub enum PipeInput<'a, T: Scalar> {
    /// A vector the pipeline only reads (borrowed for its whole lifetime).
    Ref(&'a Vector<T>),
    /// The output of an earlier recorded stage.
    Out(VecHandle),
}

impl<'a, T: Scalar> From<&'a Vector<T>> for PipeInput<'a, T> {
    fn from(v: &'a Vector<T>) -> Self {
        PipeInput::Ref(v)
    }
}

impl<T: Scalar> From<VecHandle> for PipeInput<'_, T> {
    fn from(h: VecHandle) -> Self {
        PipeInput::Out(h)
    }
}

/// A resolved operand (handle checked against this pipeline's registry).
#[derive(Copy, Clone)]
pub(crate) enum Src<'a, T: Scalar> {
    /// A read-only vector outside the pipeline.
    Ref(&'a Vector<T>),
    /// Index into the pipeline's output registry.
    Out(usize),
}

impl<T: Scalar> Src<'_, T> {
    pub(crate) fn out_index(&self) -> Option<usize> {
        match self {
            Src::Ref(_) => None,
            Src::Out(o) => Some(*o),
        }
    }
}

pub(crate) type ElemFn<'a, T> = Box<dyn Fn(usize, &mut T) + Send + Sync + 'a>;
pub(crate) type ZipFn<'a, T> = Box<dyn Fn(usize, &mut T, T) + Send + Sync + 'a>;

/// One recorded operation. Field meanings mirror the eager kernels.
pub(crate) enum Node<'a, T: Scalar> {
    Mxv {
        out: usize,
        a: &'a CsrMatrix<T>,
        x: Src<'a, T>,
        mask: Option<&'a Vector<bool>>,
        desc: Descriptor,
        ring: RingTag,
        accum: Option<BinOpTag>,
    },
    Ewise {
        out: usize,
        x: Src<'a, T>,
        y: Src<'a, T>,
        mask: Option<&'a Vector<bool>>,
        desc: Descriptor,
        op: BinOpTag,
        scale: Option<(T, T)>,
        accum: Option<BinOpTag>,
    },
    Apply {
        out: usize,
        input: Src<'a, T>,
        mask: Option<&'a Vector<bool>>,
        desc: Descriptor,
        op: UnaryOpTag,
        accum: Option<BinOpTag>,
    },
    Axpy {
        out: usize,
        alpha: T,
        y: Src<'a, T>,
    },
    Lambda {
        out: usize,
        mask: Option<&'a Vector<bool>>,
        desc: Descriptor,
        f: ElemFn<'a, T>,
    },
    LambdaZip {
        out: usize,
        src: Src<'a, T>,
        mask: Option<&'a Vector<bool>>,
        desc: Descriptor,
        f: ZipFn<'a, T>,
    },
    Dot {
        sid: usize,
        x: Src<'a, T>,
        y: Src<'a, T>,
        ring: RingTag,
    },
    Reduce {
        sid: usize,
        x: Src<'a, T>,
        mask: Option<&'a Vector<bool>>,
        desc: Descriptor,
        monoid: MonoidTag,
    },
}

impl<T: Scalar> Node<'_, T> {
    /// Short kernel name for plans and debugging.
    pub(crate) fn name(&self) -> &'static str {
        match self {
            Node::Mxv { .. } => "mxv",
            Node::Ewise { .. } => "ewise",
            Node::Apply { .. } => "apply",
            Node::Axpy { .. } => "axpy",
            Node::Lambda { .. } => "transform",
            Node::LambdaZip { .. } => "transform_zip",
            Node::Dot { .. } => "dot",
            Node::Reduce { .. } => "reduce",
        }
    }
}

// ---------------------------------------------------------------------------
// The pipeline
// ---------------------------------------------------------------------------

/// A deferred-execution context: records operations into an op graph,
/// fuses, and executes on [`finish`](Pipeline::finish). Created by
/// [`Ctx::pipeline`](crate::Ctx::pipeline); see the [module docs](self).
pub struct Pipeline<'a, T: Scalar, E: Exec> {
    /// Process-unique id branding this pipeline's handles.
    id: u64,
    exec: E,
    defaults: Descriptor,
    nodes: Vec<Node<'a, T>>,
    /// Output registry: one slot per exclusively borrowed vector.
    outs: Vec<*mut Vector<T>>,
    /// Logical length of each registered output (fixed for the lifetime).
    out_lens: Vec<usize>,
    scalars: usize,
    /// Holds the `'a` borrows of every registered output.
    _borrows: PhantomData<&'a mut Vector<T>>,
}

impl<'a, T: Scalar, E: Exec> Pipeline<'a, T, E> {
    pub(crate) fn new(exec: E, defaults: Descriptor) -> Pipeline<'a, T, E> {
        static NEXT_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        Pipeline {
            id: NEXT_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            exec,
            defaults,
            nodes: Vec::new(),
            outs: Vec::new(),
            out_lens: Vec::new(),
            scalars: 0,
            _borrows: PhantomData,
        }
    }

    /// Number of operations recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn register(&mut self, v: &'a mut Vector<T>) -> usize {
        let idx = self.outs.len();
        self.out_lens.push(v.len());
        self.outs.push(v as *mut Vector<T>);
        idx
    }

    fn vec_handle(&self, idx: usize) -> VecHandle {
        VecHandle { pl: self.id, idx }
    }

    fn check_handle(&self, h: VecHandle) -> usize {
        assert!(
            h.pl == self.id && h.idx < self.outs.len(),
            "VecHandle does not belong to this pipeline"
        );
        h.idx
    }

    fn resolve(&self, input: PipeInput<'a, T>) -> Src<'a, T> {
        match input {
            PipeInput::Ref(v) => Src::Ref(v),
            PipeInput::Out(h) => Src::Out(self.check_handle(h)),
        }
    }

    fn new_scalar(&mut self) -> ScalarHandle {
        let sid = self.scalars;
        self.scalars += 1;
        ScalarHandle {
            pl: self.id,
            idx: sid,
        }
    }

    /// Registers a vector the pipeline will update in place (e.g. the
    /// iterate a recorded smoother sweep refines), without recording an
    /// operation. Returns its handle for use as operand or in-place target.
    pub fn bind(&mut self, v: &'a mut Vector<T>) -> VecHandle {
        let idx = self.register(v);
        self.vec_handle(idx)
    }

    /// Starts recording `y = A ⊕.⊗ x` (default ring: `PlusTimes`).
    pub fn mxv(
        &mut self,
        a: &'a CsrMatrix<T>,
        x: impl Into<PipeInput<'a, T>>,
    ) -> PipeMxv<'_, 'a, T, E> {
        let x = self.resolve(x.into());
        let desc = self.defaults;
        PipeMxv {
            pl: self,
            a,
            x,
            mask: None,
            desc,
            ring: RingTag::PlusTimes,
            accum: None,
        }
    }

    /// Starts recording `y = xᵀA` — an mxv with the transposition
    /// pre-toggled, exactly like the eager `vxm` builder.
    pub fn vxm(
        &mut self,
        x: impl Into<PipeInput<'a, T>>,
        a: &'a CsrMatrix<T>,
    ) -> PipeMxv<'_, 'a, T, E> {
        let mut b = self.mxv(a, x);
        b.desc = b.desc.toggled_transpose();
        b
    }

    /// Starts recording `w = Op(x, y)` element-wise (default op: `Plus`).
    pub fn ewise(
        &mut self,
        x: impl Into<PipeInput<'a, T>>,
        y: impl Into<PipeInput<'a, T>>,
    ) -> PipeEwise<'_, 'a, T, E> {
        let x = self.resolve(x.into());
        let y = self.resolve(y.into());
        let desc = self.defaults;
        PipeEwise {
            pl: self,
            x,
            y,
            mask: None,
            desc,
            op: BinOpTag::Plus,
            scale: None,
            accum: None,
        }
    }

    /// Starts recording `out = Op(input)` (default op: `Identity`).
    pub fn apply(&mut self, input: impl Into<PipeInput<'a, T>>) -> PipeApply<'_, 'a, T, E> {
        let input = self.resolve(input.into());
        let desc = self.defaults;
        PipeApply {
            pl: self,
            input,
            mask: None,
            desc,
            op: UnaryOpTag::Identity,
            accum: None,
        }
    }

    /// Records `x = x + α·y` on a vector entering the pipeline here.
    pub fn axpy(
        &mut self,
        x: &'a mut Vector<T>,
        alpha: T,
        y: impl Into<PipeInput<'a, T>>,
    ) -> VecHandle {
        let out = self.register(x);
        self.push_axpy(out, alpha, y.into())
    }

    /// Records `x = x + α·y` on an already-registered vector.
    pub fn axpy_at(&mut self, x: VecHandle, alpha: T, y: impl Into<PipeInput<'a, T>>) -> VecHandle {
        let out = self.check_handle(x);
        self.push_axpy(out, alpha, y.into())
    }

    fn push_axpy(&mut self, out: usize, alpha: T, y: PipeInput<'a, T>) -> VecHandle {
        let y = self.resolve(y);
        assert!(
            y.out_index() != Some(out),
            "axpy operand may not alias its output"
        );
        self.nodes.push(Node::Axpy { out, alpha, y });
        self.vec_handle(out)
    }

    /// Starts recording an in-place indexed update of `out` (the eager
    /// `transform` / `eWiseLambda`).
    pub fn transform(&mut self, out: &'a mut Vector<T>) -> PipeTransform<'_, 'a, T, E> {
        let out = self.register(out);
        let desc = self.defaults;
        PipeTransform {
            pl: self,
            out,
            mask: None,
            desc,
        }
    }

    /// Starts recording an in-place indexed update of an already-registered
    /// vector.
    pub fn transform_at(&mut self, out: VecHandle) -> PipeTransform<'_, 'a, T, E> {
        let out = self.check_handle(out);
        let desc = self.defaults;
        PipeTransform {
            pl: self,
            out,
            mask: None,
            desc,
        }
    }

    /// Starts recording `⟨x, y⟩` (default ring: `PlusTimes`).
    pub fn dot(
        &mut self,
        x: impl Into<PipeInput<'a, T>>,
        y: impl Into<PipeInput<'a, T>>,
    ) -> PipeDot<'_, 'a, T, E> {
        let x = self.resolve(x.into());
        let y = self.resolve(y.into());
        PipeDot {
            pl: self,
            x,
            y,
            ring: RingTag::PlusTimes,
        }
    }

    /// Records `‖x‖² = ⟨x, x⟩` over the arithmetic semiring.
    pub fn norm2_squared(&mut self, x: impl Into<PipeInput<'a, T>>) -> ScalarHandle {
        let x = self.resolve(x.into());
        let h = self.new_scalar();
        self.nodes.push(Node::Dot {
            sid: h.idx,
            x,
            y: x,
            ring: RingTag::PlusTimes,
        });
        h
    }

    /// Starts recording a fold of `x` over a monoid (default: `Plus`).
    pub fn reduce(&mut self, x: impl Into<PipeInput<'a, T>>) -> PipeReduce<'_, 'a, T, E> {
        let x = self.resolve(x.into());
        let desc = self.defaults;
        PipeReduce {
            pl: self,
            x,
            mask: None,
            desc,
            monoid: MonoidTag::Plus,
        }
    }

    /// The fusion plan `finish` would execute right now — for tests,
    /// benchmarks and debugging.
    pub fn plan(&self) -> Vec<PlannedStage> {
        fuse(&self.nodes, &self.out_lens)
            .iter()
            .map(|s| s.describe(&self.nodes))
            .collect()
    }

    /// Runs the fusion pass and executes the fused schedule, consuming the
    /// pipeline (and releasing its borrows). On error, already-executed
    /// stages have taken effect; the contents of output vectors recorded
    /// after the failing stage are unspecified.
    pub fn finish(self) -> Result<PipelineResults<T>> {
        let _span = obs::span_enter("pipeline.finish", "plan");
        let stages = fuse(&self.nodes, &self.out_lens);
        let mut scalars = vec![T::ZERO; self.scalars];
        for stage in &stages {
            self.run_stage(stage, &mut scalars)?;
        }
        Ok(PipelineResults {
            pipeline_id: self.id,
            values: scalars,
        })
    }

    // -- execution ----------------------------------------------------------

    /// Reborrows a registered output.
    ///
    /// # Safety
    ///
    /// The caller must not hold any other reference to the same registry
    /// slot for the returned lifetime. Record-time assertions guarantee a
    /// stage's inputs never name its own output; distinct slots never alias
    /// because each vector is registered from a distinct `&'a mut`.
    #[allow(clippy::mut_from_ref)]
    unsafe fn out_mut(&self, idx: usize) -> &mut Vector<T> {
        let ptr = self.outs[idx];
        unsafe { &mut *ptr }
    }

    fn src_vec<'s>(&'s self, s: &Src<'a, T>) -> &'s Vector<T> {
        match s {
            Src::Ref(v) => v,
            // SAFETY: shared reborrow of a registry slot; stages that hold
            // an exclusive reborrow of the same slot are never executed
            // while this one is live (record-time assertions).
            Src::Out(o) => unsafe { &*self.outs[*o] },
        }
    }

    fn run_stage(&self, stage: &Stage, scalars: &mut [T]) -> Result<()> {
        match stage {
            Stage::Single(i) => self.run_node(&self.nodes[*i], scalars),
            Stage::SpmvDot { mxv, dot } => self.run_spmv_dot(*mxv, *dot, scalars),
            Stage::AxpyNorm { axpy, dot } => self.run_axpy_norm(*axpy, *dot, scalars),
            Stage::Loop(run) => self.run_fused_loop(run),
        }
    }

    fn run_node(&self, node: &Node<'a, T>, scalars: &mut [T]) -> Result<()> {
        let exec = self.exec;
        match node {
            Node::Mxv {
                out,
                a,
                x,
                mask,
                desc,
                ring,
                accum,
            } => {
                let x = self.src_vec(x);
                // SAFETY: record-time assertion — `x` never names `out`.
                let y = unsafe { self.out_mut(*out) };
                with_ring!(*ring, R => with_accum!(*accum, A =>
                    exec.run_mxv::<T, R, A>(y, *mask, *desc, a, x)))
            }
            Node::Ewise {
                out,
                x,
                y,
                mask,
                desc,
                op,
                scale,
                accum,
            } => {
                let xs = self.src_vec(x);
                let ys = self.src_vec(y);
                // SAFETY: record-time assertion — inputs never name `out`.
                let w = unsafe { self.out_mut(*out) };
                with_binop!(*op, Op => with_accum!(*accum, A =>
                    exec.run_ewise::<T, Op, A>(w, *mask, *desc, xs, ys, *scale)))
            }
            Node::Apply {
                out,
                input,
                mask,
                desc,
                op,
                accum,
            } => {
                let input = self.src_vec(input);
                // SAFETY: record-time assertion — `input` never names `out`.
                let o = unsafe { self.out_mut(*out) };
                with_unop!(*op, Op => with_accum!(*accum, A =>
                    exec.run_apply::<T, Op, A>(o, *mask, *desc, input)))
            }
            Node::Axpy { out, alpha, y } => {
                let ys = self.src_vec(y);
                // SAFETY: record-time assertion — `y` never names `out`.
                let x = unsafe { self.out_mut(*out) };
                exec.run_axpy::<T>(x, *alpha, ys)
            }
            Node::Lambda { out, mask, desc, f } => {
                // SAFETY: sole reference to the slot during this call.
                let o = unsafe { self.out_mut(*out) };
                exec.run_lambda(o, *mask, *desc, f)
            }
            Node::LambdaZip {
                out,
                src,
                mask,
                desc,
                f,
            } => {
                let ss = self.src_vec(src).as_slice();
                // SAFETY: record-time assertion — `src` never names `out`.
                let o = unsafe { self.out_mut(*out) };
                exec.run_lambda(o, *mask, *desc, move |i, t| f(i, t, ss[i]))
            }
            Node::Dot { sid, x, y, ring } => {
                let xs = self.src_vec(x);
                let ys = self.src_vec(y);
                scalars[*sid] = with_ring!(*ring, R => exec.run_dot::<T, R>(xs, ys))?;
                Ok(())
            }
            Node::Reduce {
                sid,
                x,
                mask,
                desc,
                monoid,
            } => {
                let xs = self.src_vec(x);
                scalars[*sid] =
                    with_monoid!(*monoid, M => exec.run_reduce::<T, M>(xs, *mask, *desc))?;
                Ok(())
            }
        }
    }

    fn run_spmv_dot(&self, mxv: usize, dot: usize, scalars: &mut [T]) -> Result<()> {
        let (out, a, x) = match &self.nodes[mxv] {
            Node::Mxv { out, a, x, .. } => (*out, *a, x),
            _ => unreachable!("fusion pass pairs SpmvDot with an mxv node"),
        };
        let (sid, dx, dy) = match &self.nodes[dot] {
            Node::Dot { sid, x, y, .. } => (*sid, x, y),
            _ => unreachable!("fusion pass pairs SpmvDot with a dot node"),
        };
        let xs = self.src_vec(x);
        let product_on_left = dx.out_index() == Some(out);
        let other = if product_on_left { dy } else { dx };
        let w = if other.out_index() == Some(out) {
            None
        } else {
            Some(self.src_vec(other))
        };
        // SAFETY: neither `x` nor the dot's other operand names `out`
        // (record-time assertion / the `None` branch above).
        let y = unsafe { self.out_mut(out) };
        scalars[sid] = self
            .exec
            .run_spmv_dot::<T, PlusTimes>(y, a, xs, w, product_on_left)?;
        Ok(())
    }

    fn run_axpy_norm(&self, axpy: usize, dot: usize, scalars: &mut [T]) -> Result<()> {
        let (out, alpha, y) = match &self.nodes[axpy] {
            Node::Axpy { out, alpha, y } => (*out, *alpha, y),
            _ => unreachable!("fusion pass pairs AxpyNorm with an axpy node"),
        };
        let sid = match &self.nodes[dot] {
            Node::Dot { sid, .. } => *sid,
            _ => unreachable!("fusion pass pairs AxpyNorm with a dot node"),
        };
        let ys = self.src_vec(y);
        // SAFETY: record-time assertion — `y` never names `out`.
        let x = unsafe { self.out_mut(out) };
        scalars[sid] = self.exec.run_axpy_norm::<T, PlusTimes>(x, alpha, ys)?;
        Ok(())
    }

    fn run_fused_loop(&self, run: &[usize]) -> Result<()> {
        let n = match &self.nodes[run[0]] {
            Node::Ewise { out, .. }
            | Node::Apply { out, .. }
            | Node::Axpy { out, .. }
            | Node::Lambda { out, .. }
            | Node::LambdaZip { out, .. } => self.out_lens[*out],
            _ => unreachable!("fusion pass only loops element-wise nodes"),
        };
        let mut elems: Vec<Elem<'_, 'a, T>> = Vec::with_capacity(run.len());
        for &i in run {
            match &self.nodes[i] {
                Node::Ewise {
                    out,
                    x,
                    y,
                    op,
                    scale,
                    accum,
                    ..
                } => {
                    let xs = self.src_vec(x).as_slice();
                    let ys = self.src_vec(y).as_slice();
                    check_dims("ewise", "x vs output", n, xs.len())?;
                    check_dims("ewise", "y vs output", n, ys.len())?;
                    // SAFETY: loop legality — outputs in a run are distinct
                    // and never read as another run member's input.
                    let w = unsafe { self.out_mut(*out) };
                    elems.push(Elem::Ewise {
                        w: UnsafeSlice::new(w.as_mut_slice()),
                        xs,
                        ys,
                        op: *op,
                        scale: *scale,
                        accum: *accum,
                    });
                }
                Node::Apply {
                    out,
                    input,
                    op,
                    accum,
                    ..
                } => {
                    let xs = self.src_vec(input).as_slice();
                    check_dims("apply", "input vs output", n, xs.len())?;
                    // SAFETY: see the Ewise arm.
                    let o = unsafe { self.out_mut(*out) };
                    elems.push(Elem::Apply {
                        out: UnsafeSlice::new(o.as_mut_slice()),
                        xs,
                        op: *op,
                        accum: *accum,
                    });
                }
                Node::Axpy { out, alpha, y } => {
                    let ys = self.src_vec(y).as_slice();
                    check_dims("axpy", "y vs x", n, ys.len())?;
                    // SAFETY: see the Ewise arm.
                    let x = unsafe { self.out_mut(*out) };
                    elems.push(Elem::Axpy {
                        x: UnsafeSlice::new(x.as_mut_slice()),
                        alpha: *alpha,
                        ys,
                    });
                }
                Node::Lambda { out, f, .. } => {
                    // SAFETY: see the Ewise arm.
                    let o = unsafe { self.out_mut(*out) };
                    elems.push(Elem::Lambda {
                        out: UnsafeSlice::new(o.as_mut_slice()),
                        f,
                    });
                }
                Node::LambdaZip { out, src, f, .. } => {
                    let ss = self.src_vec(src).as_slice();
                    check_dims("transform_zip", "src vs output", n, ss.len())?;
                    // SAFETY: see the Ewise arm.
                    let o = unsafe { self.out_mut(*out) };
                    elems.push(Elem::LambdaZip {
                        out: UnsafeSlice::new(o.as_mut_slice()),
                        ss,
                        f,
                    });
                }
                _ => unreachable!("fusion pass only loops element-wise nodes"),
            }
        }
        let elems = &elems;
        self.exec.run_for_each(n, move |i| {
            for e in elems {
                // SAFETY: each index is visited by exactly one invocation
                // and run outputs are pairwise disjoint.
                unsafe { e.apply(i) };
            }
        });
        Ok(())
    }
}

/// One element-wise stage of a fused loop, pre-resolved for the hot loop.
enum Elem<'s, 'a, T: Scalar> {
    Ewise {
        w: UnsafeSlice<'s, T>,
        xs: &'s [T],
        ys: &'s [T],
        op: BinOpTag,
        scale: Option<(T, T)>,
        accum: Option<BinOpTag>,
    },
    Apply {
        out: UnsafeSlice<'s, T>,
        xs: &'s [T],
        op: UnaryOpTag,
        accum: Option<BinOpTag>,
    },
    Axpy {
        x: UnsafeSlice<'s, T>,
        alpha: T,
        ys: &'s [T],
    },
    Lambda {
        out: UnsafeSlice<'s, T>,
        f: &'s ElemFn<'a, T>,
    },
    LambdaZip {
        out: UnsafeSlice<'s, T>,
        ss: &'s [T],
        f: &'s ZipFn<'a, T>,
    },
}

impl<T: Scalar> Elem<'_, '_, T> {
    /// Applies this stage at index `i` — the same per-element arithmetic
    /// the eager kernel monomorphizes, so the fused loop is bit-identical.
    ///
    /// # Safety
    ///
    /// `i` must be in bounds and handed to at most one concurrent caller.
    #[inline(always)]
    unsafe fn apply(&self, i: usize) {
        match self {
            Elem::Ewise {
                w,
                xs,
                ys,
                op,
                scale,
                accum,
            } => {
                let (a, b) = match scale {
                    None => (xs[i], ys[i]),
                    Some((alpha, beta)) => (alpha.mul(xs[i]), beta.mul(ys[i])),
                };
                let v = op.apply(a, b);
                // SAFETY: forwarded contract.
                let slot = unsafe { w.get_mut(i) };
                match accum {
                    None => *slot = v,
                    Some(acc) => *slot = acc.apply(*slot, v),
                }
            }
            Elem::Apply { out, xs, op, accum } => {
                let v = op.apply(xs[i]);
                // SAFETY: forwarded contract.
                let slot = unsafe { out.get_mut(i) };
                match accum {
                    None => *slot = v,
                    Some(acc) => *slot = acc.apply(*slot, v),
                }
            }
            Elem::Axpy { x, alpha, ys } => {
                // SAFETY: forwarded contract.
                let slot = unsafe { x.get_mut(i) };
                *slot = slot.add(alpha.mul(ys[i]));
            }
            // SAFETY: forwarded contract.
            Elem::Lambda { out, f } => f(i, unsafe { out.get_mut(i) }),
            // SAFETY: forwarded contract.
            Elem::LambdaZip { out, ss, f } => f(i, unsafe { out.get_mut(i) }, ss[i]),
        }
    }
}

/// Scalar results of an executed pipeline, indexed by [`ScalarHandle`].
#[derive(Clone, Debug)]
pub struct PipelineResults<T> {
    pipeline_id: u64,
    values: Vec<T>,
}

impl<T: Scalar> PipelineResults<T> {
    /// The value a recorded scalar stage produced.
    pub fn get(&self, h: ScalarHandle) -> T {
        self[h]
    }
}

impl<T: Scalar> std::ops::Index<ScalarHandle> for PipelineResults<T> {
    type Output = T;
    fn index(&self, h: ScalarHandle) -> &T {
        assert!(
            h.pl == self.pipeline_id,
            "ScalarHandle does not belong to this pipeline"
        );
        &self.values[h.idx]
    }
}

// ---------------------------------------------------------------------------
// Recording builders
// ---------------------------------------------------------------------------

/// Records `y⟨mask⟩ = y ⊙? (A ⊕.⊗ x)` (see [`Pipeline::mxv`]).
#[must_use = "recording builders do nothing until the terminal `.into(..)`"]
pub struct PipeMxv<'p, 'a, T: Scalar, E: Exec> {
    pl: &'p mut Pipeline<'a, T, E>,
    a: &'a CsrMatrix<T>,
    x: Src<'a, T>,
    mask: Option<&'a Vector<bool>>,
    desc: Descriptor,
    ring: RingTag,
    accum: Option<BinOpTag>,
}

impl<'a, T: Scalar, E: Exec> PipeMxv<'_, 'a, T, E> {
    /// Computes only the output positions selected by `mask`.
    pub fn mask(mut self, mask: &'a Vector<bool>) -> Self {
        self.mask = Some(mask);
        self
    }

    /// Interprets the mask structurally (pattern only, values ignored).
    pub fn structural(mut self) -> Self {
        self.desc = self.desc.with(Descriptor::STRUCTURAL);
        self
    }

    /// Selects where the mask does **not**.
    pub fn invert_mask(mut self) -> Self {
        self.desc = self.desc.with(Descriptor::INVERT_MASK);
        self
    }

    /// Toggles use of the matrix's transpose.
    pub fn transpose(mut self) -> Self {
        self.desc = self.desc.toggled_transpose();
        self
    }

    /// ORs explicit descriptor flags into the builder state.
    pub fn descriptor(mut self, desc: Descriptor) -> Self {
        self.desc = self.desc.with(desc);
        self
    }

    /// Switches the semiring (default: `PlusTimes`).
    pub fn ring<R: TaggedRing>(mut self, _ring: R) -> Self {
        self.ring = R::TAG;
        self
    }

    /// Accumulates into the output through `Op` instead of overwriting.
    pub fn accum<Op: TaggedBinOp>(mut self, _op: Op) -> Self {
        self.accum = Some(Op::TAG);
        self
    }

    /// Records the operation writing into `y`, returning its handle.
    pub fn into(self, y: &'a mut Vector<T>) -> VecHandle {
        let out = self.pl.register(y);
        self.record(out)
    }

    /// Records the operation writing into an already-registered vector.
    pub fn into_handle(self, y: VecHandle) -> VecHandle {
        let out = self.pl.check_handle(y);
        self.record(out)
    }

    fn record(self, out: usize) -> VecHandle {
        assert!(
            self.x.out_index() != Some(out),
            "mxv input may not alias its output"
        );
        self.pl.nodes.push(Node::Mxv {
            out,
            a: self.a,
            x: self.x,
            mask: self.mask,
            desc: self.desc,
            ring: self.ring,
            accum: self.accum,
        });
        self.pl.vec_handle(out)
    }
}

/// Records `w⟨mask⟩ = w ⊙? Op(α·x, β·y)` (see [`Pipeline::ewise`]).
#[must_use = "recording builders do nothing until the terminal `.into(..)`"]
pub struct PipeEwise<'p, 'a, T: Scalar, E: Exec> {
    pl: &'p mut Pipeline<'a, T, E>,
    x: Src<'a, T>,
    y: Src<'a, T>,
    mask: Option<&'a Vector<bool>>,
    desc: Descriptor,
    op: BinOpTag,
    scale: Option<(T, T)>,
    accum: Option<BinOpTag>,
}

impl<'a, T: Scalar, E: Exec> PipeEwise<'_, 'a, T, E> {
    /// Computes only the output positions selected by `mask`.
    pub fn mask(mut self, mask: &'a Vector<bool>) -> Self {
        self.mask = Some(mask);
        self
    }

    /// Interprets the mask structurally (pattern only, values ignored).
    pub fn structural(mut self) -> Self {
        self.desc = self.desc.with(Descriptor::STRUCTURAL);
        self
    }

    /// Selects where the mask does **not**.
    pub fn invert_mask(mut self) -> Self {
        self.desc = self.desc.with(Descriptor::INVERT_MASK);
        self
    }

    /// Scales the operands before the operator: `Op(α·x, β·y)`.
    pub fn scaled(mut self, alpha: T, beta: T) -> Self {
        self.scale = Some((alpha, beta));
        self
    }

    /// Switches the element-wise operator (default: `Plus`).
    pub fn op<Op: TaggedBinOp>(mut self, _op: Op) -> Self {
        self.op = Op::TAG;
        self
    }

    /// Accumulates into the output through `AccOp` instead of overwriting.
    pub fn accum<AccOp: TaggedBinOp>(mut self, _op: AccOp) -> Self {
        self.accum = Some(AccOp::TAG);
        self
    }

    /// Records the operation writing into `w`, returning its handle.
    pub fn into(self, w: &'a mut Vector<T>) -> VecHandle {
        let out = self.pl.register(w);
        self.record(out)
    }

    /// Records the operation writing into an already-registered vector.
    pub fn into_handle(self, w: VecHandle) -> VecHandle {
        let out = self.pl.check_handle(w);
        self.record(out)
    }

    fn record(self, out: usize) -> VecHandle {
        assert!(
            self.x.out_index() != Some(out) && self.y.out_index() != Some(out),
            "ewise operands may not alias the output"
        );
        self.pl.nodes.push(Node::Ewise {
            out,
            x: self.x,
            y: self.y,
            mask: self.mask,
            desc: self.desc,
            op: self.op,
            scale: self.scale,
            accum: self.accum,
        });
        self.pl.vec_handle(out)
    }
}

/// Records `out⟨mask⟩ = out ⊙? Op(input)` (see [`Pipeline::apply`]).
#[must_use = "recording builders do nothing until the terminal `.into(..)`"]
pub struct PipeApply<'p, 'a, T: Scalar, E: Exec> {
    pl: &'p mut Pipeline<'a, T, E>,
    input: Src<'a, T>,
    mask: Option<&'a Vector<bool>>,
    desc: Descriptor,
    op: UnaryOpTag,
    accum: Option<BinOpTag>,
}

impl<'a, T: Scalar, E: Exec> PipeApply<'_, 'a, T, E> {
    /// Computes only the output positions selected by `mask`.
    pub fn mask(mut self, mask: &'a Vector<bool>) -> Self {
        self.mask = Some(mask);
        self
    }

    /// Interprets the mask structurally (pattern only, values ignored).
    pub fn structural(mut self) -> Self {
        self.desc = self.desc.with(Descriptor::STRUCTURAL);
        self
    }

    /// Selects where the mask does **not**.
    pub fn invert_mask(mut self) -> Self {
        self.desc = self.desc.with(Descriptor::INVERT_MASK);
        self
    }

    /// Switches the unary operator (default: `Identity`).
    pub fn op<Op: TaggedUnaryOp>(mut self, _op: Op) -> Self {
        self.op = Op::TAG;
        self
    }

    /// Accumulates into the output through `AccOp` instead of overwriting.
    pub fn accum<AccOp: TaggedBinOp>(mut self, _op: AccOp) -> Self {
        self.accum = Some(AccOp::TAG);
        self
    }

    /// Records the operation writing into `out`, returning its handle.
    pub fn into(self, out: &'a mut Vector<T>) -> VecHandle {
        let out = self.pl.register(out);
        self.record(out)
    }

    /// Records the operation writing into an already-registered vector.
    pub fn into_handle(self, out: VecHandle) -> VecHandle {
        let out = self.pl.check_handle(out);
        self.record(out)
    }

    fn record(self, out: usize) -> VecHandle {
        assert!(
            self.input.out_index() != Some(out),
            "apply input may not alias its output"
        );
        self.pl.nodes.push(Node::Apply {
            out,
            input: self.input,
            mask: self.mask,
            desc: self.desc,
            op: self.op,
            accum: self.accum,
        });
        self.pl.vec_handle(out)
    }
}

/// Records an in-place indexed update (see [`Pipeline::transform`]).
#[must_use = "recording builders do nothing until the terminal `.apply(f)`"]
pub struct PipeTransform<'p, 'a, T: Scalar, E: Exec> {
    pl: &'p mut Pipeline<'a, T, E>,
    out: usize,
    mask: Option<&'a Vector<bool>>,
    desc: Descriptor,
}

impl<'p, 'a, T: Scalar, E: Exec> PipeTransform<'p, 'a, T, E> {
    /// Updates only the positions selected by `mask`.
    pub fn mask(mut self, mask: &'a Vector<bool>) -> Self {
        self.mask = Some(mask);
        self
    }

    /// Interprets the mask structurally (pattern only, values ignored).
    pub fn structural(mut self) -> Self {
        self.desc = self.desc.with(Descriptor::STRUCTURAL);
        self
    }

    /// Selects where the mask does **not**.
    pub fn invert_mask(mut self) -> Self {
        self.desc = self.desc.with(Descriptor::INVERT_MASK);
        self
    }

    /// Pairs the update with a second vector read at the same index: the
    /// terminal closure receives `(i, &mut out[i], src[i])`. This is how a
    /// recorded stage reads another stage's output inside a lambda (boxed
    /// closures cannot capture handles).
    pub fn zip(self, src: impl Into<PipeInput<'a, T>>) -> PipeTransformZip<'p, 'a, T, E> {
        let src = self.pl.resolve(src.into());
        assert!(
            src.out_index() != Some(self.out),
            "zip source may not alias the transform output"
        );
        PipeTransformZip {
            pl: self.pl,
            out: self.out,
            src,
            mask: self.mask,
            desc: self.desc,
        }
    }

    /// Records `f(i, &mut out[i])` at every selected index.
    pub fn apply(self, f: impl Fn(usize, &mut T) + Send + Sync + 'a) -> VecHandle {
        self.pl.nodes.push(Node::Lambda {
            out: self.out,
            mask: self.mask,
            desc: self.desc,
            f: Box::new(f),
        });
        self.pl.vec_handle(self.out)
    }
}

/// Records an in-place indexed update reading a paired source (see
/// [`PipeTransform::zip`]).
#[must_use = "recording builders do nothing until the terminal `.apply(f)`"]
pub struct PipeTransformZip<'p, 'a, T: Scalar, E: Exec> {
    pl: &'p mut Pipeline<'a, T, E>,
    out: usize,
    src: Src<'a, T>,
    mask: Option<&'a Vector<bool>>,
    desc: Descriptor,
}

impl<'a, T: Scalar, E: Exec> PipeTransformZip<'_, 'a, T, E> {
    /// Records `f(i, &mut out[i], src[i])` at every selected index.
    pub fn apply(self, f: impl Fn(usize, &mut T, T) + Send + Sync + 'a) -> VecHandle {
        self.pl.nodes.push(Node::LambdaZip {
            out: self.out,
            src: self.src,
            mask: self.mask,
            desc: self.desc,
            f: Box::new(f),
        });
        self.pl.vec_handle(self.out)
    }
}

/// Records `⟨x, y⟩` (see [`Pipeline::dot`]).
#[must_use = "recording builders do nothing until the terminal `.result()`"]
pub struct PipeDot<'p, 'a, T: Scalar, E: Exec> {
    pl: &'p mut Pipeline<'a, T, E>,
    x: Src<'a, T>,
    y: Src<'a, T>,
    ring: RingTag,
}

impl<T: Scalar, E: Exec> PipeDot<'_, '_, T, E> {
    /// Switches the semiring (default: `PlusTimes`).
    pub fn ring<R: TaggedRing>(mut self, _ring: R) -> Self {
        self.ring = R::TAG;
        self
    }

    /// Records the dot product, returning the handle of its result.
    pub fn result(self) -> ScalarHandle {
        let h = self.pl.new_scalar();
        self.pl.nodes.push(Node::Dot {
            sid: h.idx,
            x: self.x,
            y: self.y,
            ring: self.ring,
        });
        h
    }
}

/// Records a monoid fold (see [`Pipeline::reduce`]).
#[must_use = "recording builders do nothing until the terminal `.result()`"]
pub struct PipeReduce<'p, 'a, T: Scalar, E: Exec> {
    pl: &'p mut Pipeline<'a, T, E>,
    x: Src<'a, T>,
    mask: Option<&'a Vector<bool>>,
    desc: Descriptor,
    monoid: MonoidTag,
}

impl<'a, T: Scalar, E: Exec> PipeReduce<'_, 'a, T, E> {
    /// Folds only the positions selected by `mask`.
    pub fn mask(mut self, mask: &'a Vector<bool>) -> Self {
        self.mask = Some(mask);
        self
    }

    /// Interprets the mask structurally (pattern only, values ignored).
    pub fn structural(mut self) -> Self {
        self.desc = self.desc.with(Descriptor::STRUCTURAL);
        self
    }

    /// Selects where the mask does **not**.
    pub fn invert_mask(mut self) -> Self {
        self.desc = self.desc.with(Descriptor::INVERT_MASK);
        self
    }

    /// Switches the monoid (default: `Plus`).
    pub fn monoid<M: TaggedMonoid>(mut self, _monoid: M) -> Self {
        self.monoid = M::TAG;
        self
    }

    /// Records the fold, returning the handle of its result.
    pub fn result(self) -> ScalarHandle {
        let h = self.pl.new_scalar();
        self.pl.nodes.push(Node::Reduce {
            sid: h.idx,
            x: self.x,
            mask: self.mask,
            desc: self.desc,
            monoid: self.monoid,
        });
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Parallel, Sequential};
    use crate::context::{ctx, BackendKind, DynCtx};

    fn a3() -> CsrMatrix<f64> {
        CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 2.0),
                (0, 2, 1.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn deferred_mxv_runs_nothing_until_finish() {
        let a = a3();
        let x = Vector::from_dense(vec![1.0, 2.0, 3.0]);
        let mut y = Vector::zeros(3);
        let mut pl = ctx::<Sequential>().pipeline();
        let _ = pl.mxv(&a, &x).into(&mut y);
        assert_eq!(pl.len(), 1);
        pl.finish().unwrap();
        assert_eq!(y.as_slice(), &[5.0, 6.0, 19.0]);
    }

    #[test]
    fn spmv_dot_fuses_and_matches_eager() {
        let a = a3();
        let p = Vector::from_dense(vec![1.0, 2.0, 3.0]);
        let mut ap_pipe = Vector::zeros(3);
        let mut pl = ctx::<Sequential>().pipeline();
        let ap_h = pl.mxv(&a, &p).into(&mut ap_pipe);
        let d = pl.dot(&p, ap_h).result();
        assert_eq!(pl.plan(), vec![PlannedStage::SpmvDot]);
        let out = pl.finish().unwrap();

        let exec = ctx::<Sequential>();
        let mut ap = Vector::zeros(3);
        exec.mxv(&a, &p).into(&mut ap).unwrap();
        let d_eager = exec.dot(&p, &ap).compute().unwrap();
        assert_eq!(ap.as_slice(), ap_pipe.as_slice());
        assert_eq!(out[d].to_bits(), d_eager.to_bits());
    }

    #[test]
    fn spmv_norm_epilogue_fuses() {
        let a = a3();
        let x = Vector::from_dense(vec![1.0, -1.0, 2.0]);
        let mut y = Vector::zeros(3);
        let mut pl = ctx::<Sequential>().pipeline();
        let yh = pl.mxv(&a, &x).into(&mut y);
        let n = pl.norm2_squared(yh);
        assert_eq!(pl.plan(), vec![PlannedStage::SpmvDot]);
        let out = pl.finish().unwrap();
        let expected = ctx::<Sequential>().norm2_squared(&y).unwrap();
        assert_eq!(out[n], expected);
    }

    #[test]
    fn axpy_norm_fuses_and_matches_eager() {
        let q = Vector::from_dense((0..500).map(|i| (i % 7) as f64 - 3.0).collect::<Vec<_>>());
        let r0 = Vector::from_dense((0..500).map(|i| (i % 5) as f64).collect::<Vec<_>>());

        let mut r_pipe = r0.clone();
        let mut pl = ctx::<Parallel>().pipeline();
        let rh = pl.axpy(&mut r_pipe, -0.25, &q);
        let nh = pl.norm2_squared(rh);
        assert_eq!(pl.plan(), vec![PlannedStage::AxpyNorm]);
        let out = pl.finish().unwrap();

        let exec = ctx::<Parallel>();
        let mut r = r0.clone();
        exec.axpy(&mut r, -0.25, &q).unwrap();
        let n_eager = exec.norm2_squared(&r).unwrap();
        assert_eq!(r.as_slice(), r_pipe.as_slice());
        assert_eq!(out[nh].to_bits(), n_eager.to_bits());
    }

    #[test]
    fn elementwise_chain_fuses_into_one_loop() {
        let x = Vector::from_dense(vec![1.0, 2.0, 3.0]);
        let y = Vector::from_dense(vec![10.0, 20.0, 30.0]);
        let mut w = Vector::zeros(3);
        let mut z = Vector::from_dense(vec![1.0, 1.0, 1.0]);
        let mut pl = ctx::<Sequential>().pipeline();
        let wh = pl.ewise(&x, &y).scaled(2.0, -1.0).into(&mut w);
        pl.axpy(&mut z, 0.5, &x);
        let _ = wh;
        assert_eq!(pl.plan(), vec![PlannedStage::FusedLoop(2)]);
        pl.finish().unwrap();
        assert_eq!(w.as_slice(), &[-8.0, -16.0, -24.0]);
        assert_eq!(z.as_slice(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn chain_reading_prior_output_splits_the_loop() {
        // The second stage reads the first stage's output, so they may not
        // share one loop (the read must see the fully written vector only
        // in the same-index sense — legality keeps them separate).
        let x = Vector::from_dense(vec![1.0, 2.0]);
        let y = Vector::from_dense(vec![3.0, 4.0]);
        let mut w = Vector::zeros(2);
        let mut v = Vector::zeros(2);
        let mut pl = ctx::<Sequential>().pipeline();
        let wh = pl.ewise(&x, &y).into(&mut w);
        let _ = pl.ewise(wh, &x).op(Times).into(&mut v);
        assert_eq!(
            pl.plan(),
            vec![PlannedStage::Single("ewise"), PlannedStage::Single("ewise")]
        );
        pl.finish().unwrap();
        assert_eq!(w.as_slice(), &[4.0, 6.0]);
        assert_eq!(v.as_slice(), &[4.0, 12.0]);
    }

    #[test]
    fn masked_stages_stay_unfused_but_execute() {
        let x = Vector::from_dense(vec![1.0, 2.0, 3.0]);
        let y = Vector::from_dense(vec![1.0, 1.0, 1.0]);
        let mask = Vector::<bool>::sparse_filled(3, vec![1], true).unwrap();
        let mut w = Vector::from_dense(vec![9.0, 9.0, 9.0]);
        let mut v = Vector::zeros(3);
        let mut pl = ctx::<Sequential>().pipeline();
        pl.ewise(&x, &y).mask(&mask).structural().into(&mut w);
        pl.apply(&x).op(AdditiveInverse).into(&mut v);
        assert_eq!(
            pl.plan(),
            vec![PlannedStage::Single("ewise"), PlannedStage::Single("apply")]
        );
        pl.finish().unwrap();
        assert_eq!(w.as_slice(), &[9.0, 3.0, 9.0]);
        assert_eq!(v.as_slice(), &[-1.0, -2.0, -3.0]);
    }

    #[test]
    fn bind_and_transform_zip_express_rbgs_shape() {
        // One masked color step: tmp⟨m⟩ = A·x, then x⟨m⟩ updated reading tmp.
        let a = a3();
        let r = Vector::from_dense(vec![1.0, 2.0, 3.0]);
        let diag = Vector::from_dense(vec![2.0, 3.0, 5.0]);
        let mask = Vector::<bool>::sparse_filled(3, vec![0, 2], true).unwrap();
        let mut x_pipe = Vector::from_dense(vec![0.5, 0.5, 0.5]);
        let mut tmp_pipe = Vector::zeros(3);

        let (rs, ds) = (r.as_slice(), diag.as_slice());
        let mut pl = ctx::<Sequential>().pipeline();
        let xh = pl.bind(&mut x_pipe);
        let th = pl.mxv(&a, xh).mask(&mask).structural().into(&mut tmp_pipe);
        pl.transform_at(xh)
            .mask(&mask)
            .structural()
            .zip(th)
            .apply(move |i, xi, ti| {
                let d = ds[i];
                *xi = (rs[i] - ti + *xi * d) / d;
            });
        pl.finish().unwrap();

        // Eager reference.
        let exec = ctx::<Sequential>();
        let mut x = Vector::from_dense(vec![0.5, 0.5, 0.5]);
        let mut tmp = Vector::zeros(3);
        exec.mxv(&a, &x)
            .mask(&mask)
            .structural()
            .into(&mut tmp)
            .unwrap();
        let ts = tmp.as_slice();
        exec.transform(&mut x)
            .mask(&mask)
            .structural()
            .apply(|i, xi| {
                let d = ds[i];
                *xi = (rs[i] - ts[i] + *xi * d) / d;
            })
            .unwrap();
        assert_eq!(x.as_slice(), x_pipe.as_slice());
        assert_eq!(tmp.as_slice(), tmp_pipe.as_slice());
    }

    #[test]
    fn dyn_ctx_pipeline_matches_static() {
        let a = a3();
        let x = Vector::from_dense(vec![1.0, 2.0, 3.0]);
        for kind in [BackendKind::Sequential, BackendKind::Parallel] {
            let mut y = Vector::zeros(3);
            let mut pl = DynCtx::runtime(kind).pipeline();
            let yh = pl.mxv(&a, &x).into(&mut y);
            let d = pl.dot(&x, yh).result();
            let out = pl.finish().unwrap();
            let mut y_ref = Vector::zeros(3);
            ctx::<Sequential>().mxv(&a, &x).into(&mut y_ref).unwrap();
            let d_ref = ctx::<Sequential>().dot(&x, &y_ref).compute().unwrap();
            assert_eq!(y.as_slice(), y_ref.as_slice(), "backend {kind}");
            assert_eq!(out[d], d_ref, "backend {kind}");
        }
    }

    #[test]
    fn transposed_and_accumulated_mxv_records_faithfully() {
        let a = a3();
        let x = Vector::from_dense(vec![1.0, 2.0, 3.0]);
        let mut y_pipe = Vector::from_dense(vec![1.0, 1.0, 1.0]);
        let mut pl = ctx::<Sequential>().pipeline();
        pl.mxv(&a, &x).transpose().accum(Plus).into(&mut y_pipe);
        pl.finish().unwrap();

        let mut y = Vector::from_dense(vec![1.0, 1.0, 1.0]);
        ctx::<Sequential>()
            .mxv(&a, &x)
            .transpose()
            .accum(Plus)
            .into(&mut y)
            .unwrap();
        assert_eq!(y.as_slice(), y_pipe.as_slice());
    }

    #[test]
    fn reduce_and_ring_dot_through_pipeline() {
        use crate::ops::semiring::MinPlus;
        let x = Vector::from_dense(vec![3.0, 1.0, 9.0]);
        let y = Vector::from_dense(vec![2.0, 5.0, 1.0]);
        let mut pl = ctx::<Sequential>().pipeline();
        let s = pl.reduce(&x).monoid(Max).result();
        let d = pl.dot(&x, &y).ring(MinPlus).result();
        let out = pl.finish().unwrap();
        assert_eq!(out.get(s), 9.0);
        assert_eq!(out[d], 5.0);
    }

    #[test]
    fn dimension_error_propagates_from_finish() {
        let a = a3();
        let x_bad = Vector::from_dense(vec![1.0, 2.0]);
        let mut y = Vector::zeros(3);
        let mut pl = ctx::<Sequential>().pipeline();
        pl.mxv(&a, &x_bad).into(&mut y);
        assert!(pl.finish().is_err());
    }

    #[test]
    fn fused_loop_dimension_error_propagates() {
        let x = Vector::from_dense(vec![1.0, 2.0, 3.0]);
        let y_bad = Vector::from_dense(vec![1.0]);
        let mut w = Vector::zeros(3);
        let mut z = Vector::zeros(3);
        let mut pl = ctx::<Sequential>().pipeline();
        pl.ewise(&x, &y_bad).into(&mut w);
        pl.axpy(&mut z, 1.0, &x);
        assert!(pl.finish().is_err());
    }

    #[test]
    #[should_panic(expected = "does not belong to this pipeline")]
    fn foreign_handle_is_rejected() {
        let x = Vector::from_dense(vec![1.0]);
        let mut y = Vector::<f64>::zeros(1);
        let mut w = Vector::zeros(1);
        let mut other = ctx::<Sequential>().pipeline::<f64>();
        let h = other.apply(&x).into(&mut w);
        drop(other);
        let mut pl = ctx::<Sequential>().pipeline::<f64>();
        pl.apply(h).into(&mut y);
    }
}
