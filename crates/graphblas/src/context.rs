//! Execution contexts and fluent operation builders — the public face of
//! the primitive layer.
//!
//! ALP pairs its single-source/compile-time-backend kernels with a launcher
//! object that owns execution configuration (paper §IV). [`Ctx`] is that
//! object here: it carries the backend choice and descriptor defaults, and
//! every primitive family hangs off it as a **builder** —
//!
//! ```
//! use graphblas::{ctx, CsrMatrix, Plus, Sequential, Vector};
//!
//! let a = CsrMatrix::<f64>::from_triplets(2, 2, &[(0, 0, 2.0), (1, 1, 3.0)]).unwrap();
//! let x = Vector::from_dense(vec![1.0, 2.0]);
//! let mut y = Vector::from_dense(vec![10.0, 10.0]);
//! let exec = ctx::<Sequential>();
//! exec.mxv(&a, &x).accum(Plus).into(&mut y).unwrap();   // y += A·x
//! assert_eq!(y.as_slice(), &[12.0, 16.0]);
//! ```
//!
//! — so mask, descriptor flags and accumulator are typed, optional,
//! self-documenting builder state instead of positional arguments, and the
//! historical `mxv`/`mxv_accum`-style twin entry points collapse into one
//! builder with an optional [`accum`](MxvBuilder::accum).
//!
//! # Backends: compile-time or runtime
//!
//! `Ctx` is generic over an [`Exec`] dispatcher. [`Sequential`] and
//! [`Parallel`] implement it statically — `ctx::<Parallel>()` monomorphizes
//! every kernel exactly like the old turbofish form, a zero-cost wrapper.
//! [`BackendKind`] implements it by matching at each operation, giving the
//! runtime-selected [`DynCtx`] (`--backend seq|par` in the benchmark
//! binaries, `GRB_BACKEND` in the environment):
//!
//! ```
//! use graphblas::{BackendKind, DynCtx, Vector};
//!
//! let exec = DynCtx::from_env_or(BackendKind::Sequential).unwrap();
//! let x = Vector::from_dense(vec![3.0, 4.0]);
//! assert_eq!(exec.norm2_squared(&x).unwrap(), 25.0);
//! ```
//!
//! # Deferred (nonblocking) execution
//!
//! [`Ctx::pipeline`] returns a [`Pipeline`] on which the same builders
//! *record* operations instead of executing them; `finish()` runs a fusion
//! pass and executes the fused schedule. See [`crate::pipeline`].

use crate::backend::dist::Distributed;
use crate::backend::{Backend, Parallel, Sequential};
use crate::container::matrix::{CsrMatrix, GraphMatrix};
use crate::container::vector::{SparseVector, Vector};
use crate::descriptor::Descriptor;
use crate::error::{GrbError, Result};
use crate::exec::apply::{apply_exec, ewise_lambda_exec};
use crate::exec::ewise::{axpy_exec, ewise_exec};
use crate::exec::fused::{axpy_norm_exec, spmv_dot_exec};
use crate::exec::mxm::mxm_exec;
use crate::exec::mxv::mxv_exec;
use crate::exec::reduce::{dot_exec, reduce_exec};
use crate::exec::sparse::{mxv_sparse_exec, FrontierMode};
use crate::ops::accum::{AccumMode, AccumWith, NoAccum};
use crate::ops::binary::{BinaryOp, Plus};
use crate::ops::monoid::Monoid;
use crate::ops::scalar::Scalar;
use crate::ops::semiring::{PlusTimes, Semiring};
use crate::ops::unary::{Identity, UnaryOp};
use crate::pipeline::Pipeline;
use crate::plan::PlanBuilder;
use std::marker::PhantomData;

/// A backend chosen at runtime — the dispatch target of [`DynCtx`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Single-threaded reference backend.
    Sequential,
    /// Shared-memory data-parallel backend.
    Parallel,
    /// Distributed backend over a simulated BSP cluster. Carries the
    /// cluster handle; two parses of `"dist:4"` create two *distinct*
    /// clusters (each with its own cost trace), so compare kinds with
    /// `matches!` rather than `==` when the identity does not matter.
    Dist(Distributed),
}

/// Node count used for `"dist"` when the `:<nodes>` suffix is omitted.
pub const DEFAULT_DIST_NODES: usize = 4;

impl BackendKind {
    /// Parses a backend spelling: `"seq"`/`"sequential"`,
    /// `"par"`/`"parallel"`, or the parameterized `"dist"` /
    /// `"dist:<nodes>"` (default node count: [`DEFAULT_DIST_NODES`]).
    ///
    /// Malformed values produce precise errors — an operator's typo must
    /// name exactly what was wrong, never silently pick a backend.
    ///
    /// Note that successfully parsing a `dist` spelling **registers a new
    /// cluster** (its state lives for the rest of the process, see
    /// [`Distributed`]): parse a spec once per intended cluster, not per
    /// validation round-trip.
    pub fn parse(s: &str) -> Result<BackendKind> {
        let norm = s.trim().to_ascii_lowercase();
        match norm.as_str() {
            "seq" | "sequential" => return Ok(BackendKind::Sequential),
            "par" | "parallel" => return Ok(BackendKind::Parallel),
            "dist" | "distributed" => {
                return Ok(BackendKind::Dist(Distributed::new(DEFAULT_DIST_NODES)))
            }
            _ => {}
        }
        if let Some(nodes) = norm
            .strip_prefix("dist:")
            .or_else(|| norm.strip_prefix("distributed:"))
        {
            let n: usize = nodes.parse().map_err(|_| {
                GrbError::InvalidInput(format!(
                    "invalid node count {nodes:?} in backend {s:?} \
                     (expected dist:<nodes> with a positive integer)"
                ))
            })?;
            if n == 0 {
                return Err(GrbError::InvalidInput(format!(
                    "invalid node count 0 in backend {s:?} (a cluster needs at least one node)"
                )));
            }
            return Ok(BackendKind::Dist(Distributed::new(n)));
        }
        Err(GrbError::InvalidInput(format!(
            "unknown backend {s:?} (expected seq|par|dist[:<nodes>])"
        )))
    }

    /// Reads the `GRB_BACKEND` environment variable.
    ///
    /// Returns `Ok(None)` when unset, `Ok(Some(kind))` when set to a valid
    /// spelling (including `dist:<nodes>`), and an error when the variable
    /// holds an unrecognized value — a typo in `GRB_BACKEND` must never
    /// silently run on a different backend than the operator asked for.
    pub fn from_env() -> Result<Option<BackendKind>> {
        match std::env::var("GRB_BACKEND") {
            Err(_) => Ok(None),
            Ok(v) => match BackendKind::parse(&v) {
                Ok(kind) => Ok(Some(kind)),
                Err(e) => Err(GrbError::InvalidInput(format!(
                    "invalid GRB_BACKEND value {v:?}: {e}"
                ))),
            },
        }
    }

    /// The short flag spelling (`"seq"` / `"par"` / `"dist"`); the
    /// [`Display`](std::fmt::Display) form additionally carries the node
    /// count (`"dist:4"`).
    pub const fn flag(self) -> &'static str {
        match self {
            BackendKind::Sequential => "seq",
            BackendKind::Parallel => "par",
            BackendKind::Dist(_) => "dist",
        }
    }
}

impl std::str::FromStr for BackendKind {
    type Err = GrbError;
    fn from_str(s: &str) -> Result<BackendKind> {
        BackendKind::parse(s)
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendKind::Dist(d) => write!(f, "dist:{}", d.nodes()),
            other => f.write_str(other.flag()),
        }
    }
}

/// The execution dispatcher behind a [`Ctx`]: forwards each kernel either
/// statically (a [`Backend`] type — zero cost) or through a runtime match
/// ([`BackendKind`]).
///
/// The `run_*` methods are plumbing between the builders and the kernels in
/// [`crate::exec`]; user code never calls them directly.
pub trait Exec: Copy + Send + Sync + 'static {
    /// The degree of parallelism operations will use.
    fn threads(self) -> usize;

    /// Human-readable backend name.
    fn backend_name(self) -> &'static str;

    #[doc(hidden)]
    fn run_mxv<T: Scalar, R: Semiring<T>, A: AccumMode<T>>(
        self,
        y: &mut Vector<T>,
        mask: Option<&Vector<bool>>,
        desc: Descriptor,
        a: &CsrMatrix<T>,
        x: &Vector<T>,
    ) -> Result<()>;

    #[doc(hidden)]
    fn run_mxv_sparse<T: Scalar, R: Semiring<T>, A: AccumMode<T>>(
        self,
        y: &mut Vector<T>,
        mask: Option<&Vector<bool>>,
        desc: Descriptor,
        m: &GraphMatrix<T>,
        x: &SparseVector<T>,
    ) -> Result<FrontierMode>;

    #[doc(hidden)]
    #[allow(clippy::too_many_arguments)]
    fn run_ewise<T: Scalar, Op: BinaryOp<T>, A: AccumMode<T>>(
        self,
        w: &mut Vector<T>,
        mask: Option<&Vector<bool>>,
        desc: Descriptor,
        x: &Vector<T>,
        y: &Vector<T>,
        scale: Option<(T, T)>,
    ) -> Result<()>;

    #[doc(hidden)]
    fn run_axpy<T: Scalar>(self, x: &mut Vector<T>, alpha: T, y: &Vector<T>) -> Result<()>;

    #[doc(hidden)]
    fn run_apply<T: Scalar, Op: UnaryOp<T>, A: AccumMode<T>>(
        self,
        out: &mut Vector<T>,
        mask: Option<&Vector<bool>>,
        desc: Descriptor,
        input: &Vector<T>,
    ) -> Result<()>;

    #[doc(hidden)]
    fn run_lambda<T: Scalar, F: Fn(usize, &mut T) + Send + Sync>(
        self,
        out: &mut Vector<T>,
        mask: Option<&Vector<bool>>,
        desc: Descriptor,
        f: F,
    ) -> Result<()>;

    #[doc(hidden)]
    fn run_reduce<T: Scalar, M: Monoid<T>>(
        self,
        x: &Vector<T>,
        mask: Option<&Vector<bool>>,
        desc: Descriptor,
    ) -> Result<T>;

    #[doc(hidden)]
    fn run_dot<T: Scalar, R: Semiring<T>>(self, x: &Vector<T>, y: &Vector<T>) -> Result<T>;

    #[doc(hidden)]
    fn run_mxm<T: Scalar, R: Semiring<T>>(
        self,
        a: &CsrMatrix<T>,
        b: &CsrMatrix<T>,
        desc: Descriptor,
    ) -> Result<CsrMatrix<T>>;

    #[doc(hidden)]
    fn run_for_each<F: Fn(usize) + Send + Sync>(self, n: usize, f: F);

    #[doc(hidden)]
    fn run_spmv_dot<T: Scalar, R: Semiring<T>>(
        self,
        y: &mut Vector<T>,
        a: &CsrMatrix<T>,
        x: &Vector<T>,
        w: Option<&Vector<T>>,
        product_on_left: bool,
    ) -> Result<T>;

    #[doc(hidden)]
    fn run_axpy_norm<T: Scalar, R: Semiring<T>>(
        self,
        x: &mut Vector<T>,
        alpha: T,
        y: &Vector<T>,
    ) -> Result<T>;
}

macro_rules! impl_exec_for_backend {
    ($backend:ty) => {
        impl Exec for $backend {
            fn threads(self) -> usize {
                <$backend as Backend>::threads()
            }

            fn backend_name(self) -> &'static str {
                <$backend as Backend>::NAME
            }

            fn run_mxv<T: Scalar, R: Semiring<T>, A: AccumMode<T>>(
                self,
                y: &mut Vector<T>,
                mask: Option<&Vector<bool>>,
                desc: Descriptor,
                a: &CsrMatrix<T>,
                x: &Vector<T>,
            ) -> Result<()> {
                let _span = obs::span_enter("mxv", "spmv");
                mxv_exec::<T, R, A, $backend>(y, mask, desc, a, x)
            }

            fn run_mxv_sparse<T: Scalar, R: Semiring<T>, A: AccumMode<T>>(
                self,
                y: &mut Vector<T>,
                mask: Option<&Vector<bool>>,
                desc: Descriptor,
                m: &GraphMatrix<T>,
                x: &SparseVector<T>,
            ) -> Result<FrontierMode> {
                let _span = obs::span_enter("mxv_sparse", "spmv");
                mxv_sparse_exec::<T, R, A, $backend>(y, mask, desc, m, x)
            }

            fn run_ewise<T: Scalar, Op: BinaryOp<T>, A: AccumMode<T>>(
                self,
                w: &mut Vector<T>,
                mask: Option<&Vector<bool>>,
                desc: Descriptor,
                x: &Vector<T>,
                y: &Vector<T>,
                scale: Option<(T, T)>,
            ) -> Result<()> {
                let _span = obs::span_enter("ewise", "update");
                ewise_exec::<T, Op, A, $backend>(w, mask, desc, x, y, scale)
            }

            fn run_axpy<T: Scalar>(self, x: &mut Vector<T>, alpha: T, y: &Vector<T>) -> Result<()> {
                let _span = obs::span_enter("axpy", "update");
                axpy_exec::<T, $backend>(x, alpha, y)
            }

            fn run_apply<T: Scalar, Op: UnaryOp<T>, A: AccumMode<T>>(
                self,
                out: &mut Vector<T>,
                mask: Option<&Vector<bool>>,
                desc: Descriptor,
                input: &Vector<T>,
            ) -> Result<()> {
                let _span = obs::span_enter("apply", "update");
                apply_exec::<T, Op, A, $backend>(out, mask, desc, input)
            }

            fn run_lambda<T: Scalar, F: Fn(usize, &mut T) + Send + Sync>(
                self,
                out: &mut Vector<T>,
                mask: Option<&Vector<bool>>,
                desc: Descriptor,
                f: F,
            ) -> Result<()> {
                let _span = obs::span_enter("lambda", "update");
                ewise_lambda_exec::<T, $backend, F>(out, mask, desc, f)
            }

            fn run_reduce<T: Scalar, M: Monoid<T>>(
                self,
                x: &Vector<T>,
                mask: Option<&Vector<bool>>,
                desc: Descriptor,
            ) -> Result<T> {
                let _span = obs::span_enter("reduce", "dot");
                reduce_exec::<T, M, $backend>(x, mask, desc)
            }

            fn run_dot<T: Scalar, R: Semiring<T>>(self, x: &Vector<T>, y: &Vector<T>) -> Result<T> {
                let _span = obs::span_enter("dot", "dot");
                dot_exec::<T, R, $backend>(x, y)
            }

            fn run_mxm<T: Scalar, R: Semiring<T>>(
                self,
                a: &CsrMatrix<T>,
                b: &CsrMatrix<T>,
                desc: Descriptor,
            ) -> Result<CsrMatrix<T>> {
                let _span = obs::span_enter("mxm", "spmv");
                mxm_exec::<T, R, $backend>(a, b, desc)
            }

            fn run_for_each<F: Fn(usize) + Send + Sync>(self, n: usize, f: F) {
                let _span = obs::span_enter("for_each", "update");
                <$backend as Backend>::for_n(n, f)
            }

            fn run_spmv_dot<T: Scalar, R: Semiring<T>>(
                self,
                y: &mut Vector<T>,
                a: &CsrMatrix<T>,
                x: &Vector<T>,
                w: Option<&Vector<T>>,
                product_on_left: bool,
            ) -> Result<T> {
                let _span = obs::span_enter("spmv_dot", "fused");
                spmv_dot_exec::<T, R, $backend>(y, a, x, w, product_on_left)
            }

            fn run_axpy_norm<T: Scalar, R: Semiring<T>>(
                self,
                x: &mut Vector<T>,
                alpha: T,
                y: &Vector<T>,
            ) -> Result<T> {
                let _span = obs::span_enter("axpy_norm", "fused");
                axpy_norm_exec::<T, R, $backend>(x, alpha, y)
            }
        }
    };
}

impl_exec_for_backend!(Sequential);
impl_exec_for_backend!(Parallel);

/// Forwards every kernel through a two-way match — the single place runtime
/// backend selection pays its (branch-predictable) cost.
macro_rules! kind_dispatch {
    ($self:ident, $b:ident => $call:expr) => {
        match $self {
            BackendKind::Sequential => {
                let $b = Sequential;
                $call
            }
            BackendKind::Parallel => {
                let $b = Parallel;
                $call
            }
            BackendKind::Dist($b) => $call,
        }
    };
}

impl Exec for BackendKind {
    fn threads(self) -> usize {
        kind_dispatch!(self, b => b.threads())
    }

    fn backend_name(self) -> &'static str {
        kind_dispatch!(self, b => b.backend_name())
    }

    fn run_mxv<T: Scalar, R: Semiring<T>, A: AccumMode<T>>(
        self,
        y: &mut Vector<T>,
        mask: Option<&Vector<bool>>,
        desc: Descriptor,
        a: &CsrMatrix<T>,
        x: &Vector<T>,
    ) -> Result<()> {
        kind_dispatch!(self, b => b.run_mxv::<T, R, A>(y, mask, desc, a, x))
    }

    fn run_mxv_sparse<T: Scalar, R: Semiring<T>, A: AccumMode<T>>(
        self,
        y: &mut Vector<T>,
        mask: Option<&Vector<bool>>,
        desc: Descriptor,
        m: &GraphMatrix<T>,
        x: &SparseVector<T>,
    ) -> Result<FrontierMode> {
        kind_dispatch!(self, b => b.run_mxv_sparse::<T, R, A>(y, mask, desc, m, x))
    }

    fn run_ewise<T: Scalar, Op: BinaryOp<T>, A: AccumMode<T>>(
        self,
        w: &mut Vector<T>,
        mask: Option<&Vector<bool>>,
        desc: Descriptor,
        x: &Vector<T>,
        y: &Vector<T>,
        scale: Option<(T, T)>,
    ) -> Result<()> {
        kind_dispatch!(self, b => b.run_ewise::<T, Op, A>(w, mask, desc, x, y, scale))
    }

    fn run_axpy<T: Scalar>(self, x: &mut Vector<T>, alpha: T, y: &Vector<T>) -> Result<()> {
        kind_dispatch!(self, b => b.run_axpy::<T>(x, alpha, y))
    }

    fn run_apply<T: Scalar, Op: UnaryOp<T>, A: AccumMode<T>>(
        self,
        out: &mut Vector<T>,
        mask: Option<&Vector<bool>>,
        desc: Descriptor,
        input: &Vector<T>,
    ) -> Result<()> {
        kind_dispatch!(self, b => b.run_apply::<T, Op, A>(out, mask, desc, input))
    }

    fn run_lambda<T: Scalar, F: Fn(usize, &mut T) + Send + Sync>(
        self,
        out: &mut Vector<T>,
        mask: Option<&Vector<bool>>,
        desc: Descriptor,
        f: F,
    ) -> Result<()> {
        kind_dispatch!(self, b => b.run_lambda::<T, F>(out, mask, desc, f))
    }

    fn run_reduce<T: Scalar, M: Monoid<T>>(
        self,
        x: &Vector<T>,
        mask: Option<&Vector<bool>>,
        desc: Descriptor,
    ) -> Result<T> {
        kind_dispatch!(self, b => b.run_reduce::<T, M>(x, mask, desc))
    }

    fn run_dot<T: Scalar, R: Semiring<T>>(self, x: &Vector<T>, y: &Vector<T>) -> Result<T> {
        kind_dispatch!(self, b => b.run_dot::<T, R>(x, y))
    }

    fn run_mxm<T: Scalar, R: Semiring<T>>(
        self,
        a: &CsrMatrix<T>,
        b: &CsrMatrix<T>,
        desc: Descriptor,
    ) -> Result<CsrMatrix<T>> {
        kind_dispatch!(self, b2 => b2.run_mxm::<T, R>(a, b, desc))
    }

    fn run_for_each<F: Fn(usize) + Send + Sync>(self, n: usize, f: F) {
        kind_dispatch!(self, b => b.run_for_each::<F>(n, f))
    }

    fn run_spmv_dot<T: Scalar, R: Semiring<T>>(
        self,
        y: &mut Vector<T>,
        a: &CsrMatrix<T>,
        x: &Vector<T>,
        w: Option<&Vector<T>>,
        product_on_left: bool,
    ) -> Result<T> {
        kind_dispatch!(self, b => b.run_spmv_dot::<T, R>(y, a, x, w, product_on_left))
    }

    fn run_axpy_norm<T: Scalar, R: Semiring<T>>(
        self,
        x: &mut Vector<T>,
        alpha: T,
        y: &Vector<T>,
    ) -> Result<T> {
        kind_dispatch!(self, b => b.run_axpy_norm::<T, R>(x, alpha, y))
    }
}

/// An execution context: backend choice + descriptor defaults, the entry
/// point of every operation builder. See the [module docs](self) for the
/// overall shape.
#[derive(Copy, Clone, Debug, Default)]
pub struct Ctx<E: Exec> {
    exec: E,
    defaults: Descriptor,
}

/// A context whose backend is chosen at runtime (CLI flag / environment).
pub type DynCtx = Ctx<BackendKind>;

/// Creates a compile-time-backend context: `ctx::<Parallel>()`.
pub fn ctx<B: Backend>() -> Ctx<B> {
    Ctx {
        exec: B::default(),
        defaults: Descriptor::DEFAULT,
    }
}

/// Creates a context on an explicit dispatcher value — the entry point for
/// dispatchers that carry state, like a [`Distributed`] cluster handle
/// (`ctx_on(Distributed::new(4))`, or equivalently `Distributed::new(4).ctx()`).
pub fn ctx_on<E: Exec>(exec: E) -> Ctx<E> {
    Ctx {
        exec,
        defaults: Descriptor::DEFAULT,
    }
}

impl<B: Backend> Ctx<B> {
    /// Creates a context on the statically chosen backend `B`.
    pub fn new() -> Ctx<B> {
        ctx::<B>()
    }
}

impl DynCtx {
    /// Creates a runtime-dispatched context on the given backend.
    pub fn runtime(kind: BackendKind) -> DynCtx {
        Ctx {
            exec: kind,
            defaults: Descriptor::DEFAULT,
        }
    }

    /// Creates a runtime-dispatched context from `GRB_BACKEND`, falling
    /// back to `default` when the variable is unset.
    ///
    /// A set-but-invalid `GRB_BACKEND` is an **error**, not a silent
    /// fallback: a typo must never run a benchmark on the wrong backend.
    pub fn from_env_or(default: BackendKind) -> Result<DynCtx> {
        Ok(DynCtx::runtime(BackendKind::from_env()?.unwrap_or(default)))
    }

    /// The runtime backend this context dispatches to.
    pub fn kind(&self) -> BackendKind {
        self.exec
    }
}

impl<E: Exec> Ctx<E> {
    /// Returns this context with `defaults` OR-ed into every builder's
    /// starting descriptor (e.g. make all masked operations structural).
    #[must_use]
    pub fn with_defaults(mut self, defaults: Descriptor) -> Ctx<E> {
        self.defaults = self.defaults.with(defaults);
        self
    }

    /// The descriptor every builder starts from.
    pub fn defaults(&self) -> Descriptor {
        self.defaults
    }

    /// The degree of parallelism operations on this context will use.
    pub fn threads(&self) -> usize {
        self.exec.threads()
    }

    /// Human-readable backend name, used by benchmark reports.
    pub fn backend_name(&self) -> &'static str {
        self.exec.backend_name()
    }

    /// Starts `y = A ⊕.⊗ x` (default ring: [`PlusTimes`]).
    pub fn mxv<'a, T: Scalar>(
        &self,
        a: &'a CsrMatrix<T>,
        x: &'a Vector<T>,
    ) -> MxvBuilder<'a, T, PlusTimes, NoAccum, E> {
        MxvBuilder {
            exec: self.exec,
            a,
            x,
            mask: None,
            desc: self.defaults,
            _algebra: PhantomData,
        }
    }

    /// Starts `y = xᵀA` (`vxm`), equal to `Aᵀx`: an [`MxvBuilder`] with the
    /// transposition pre-toggled.
    pub fn vxm<'a, T: Scalar>(
        &self,
        x: &'a Vector<T>,
        a: &'a CsrMatrix<T>,
    ) -> MxvBuilder<'a, T, PlusTimes, NoAccum, E> {
        MxvBuilder {
            exec: self.exec,
            a,
            x,
            mask: None,
            desc: self.defaults.toggled_transpose(),
            _algebra: PhantomData,
        }
    }

    /// Starts `y = A ⊕.⊗ x` for a **sparse frontier** `x` over a
    /// [`GraphMatrix`] (default ring: [`PlusTimes`]).
    ///
    /// Same fluent surface as [`Ctx::mxv`] — mask, accumulator and
    /// descriptor flags compose identically — but the terminal
    /// [`into`](SparseMxvBuilder::into) additionally reports which
    /// [`FrontierMode`] (push or pull) the direction-optimizing kernel
    /// chose. Results are bit-identical to densifying `x` and calling
    /// [`Ctx::mxv`]. Sparse products are eager-only: they never enter a
    /// pipeline or plan, falling through to the exact kernels instead.
    pub fn mxv_sparse<'a, T: Scalar>(
        &self,
        m: &'a GraphMatrix<T>,
        x: &'a SparseVector<T>,
    ) -> SparseMxvBuilder<'a, T, PlusTimes, NoAccum, E> {
        SparseMxvBuilder {
            exec: self.exec,
            m,
            x,
            mask: None,
            desc: self.defaults,
            _algebra: PhantomData,
        }
    }

    /// Starts `y = xᵀA` for a sparse frontier `x`: a [`SparseMxvBuilder`]
    /// with the transposition pre-toggled.
    pub fn vxm_sparse<'a, T: Scalar>(
        &self,
        x: &'a SparseVector<T>,
        m: &'a GraphMatrix<T>,
    ) -> SparseMxvBuilder<'a, T, PlusTimes, NoAccum, E> {
        SparseMxvBuilder {
            exec: self.exec,
            m,
            x,
            mask: None,
            desc: self.defaults.toggled_transpose(),
            _algebra: PhantomData,
        }
    }

    /// Starts `C = A ⊕.⊗ B` (default ring: [`PlusTimes`]).
    pub fn mxm<'a, T: Scalar>(
        &self,
        a: &'a CsrMatrix<T>,
        b: &'a CsrMatrix<T>,
    ) -> MxmBuilder<'a, T, PlusTimes, E> {
        MxmBuilder {
            exec: self.exec,
            a,
            b,
            desc: self.defaults,
            _algebra: PhantomData,
        }
    }

    /// Starts `w = Op(x, y)` element-wise (default op: [`Plus`]).
    pub fn ewise<'a, T: Scalar>(
        &self,
        x: &'a Vector<T>,
        y: &'a Vector<T>,
    ) -> EwiseBuilder<'a, T, Plus, NoAccum, E> {
        EwiseBuilder {
            exec: self.exec,
            x,
            y,
            mask: None,
            desc: self.defaults,
            scale: None,
            _algebra: PhantomData,
        }
    }

    /// Starts `out = Op(input)` element-wise (default op: [`Identity`]).
    pub fn apply<'a, T: Scalar>(
        &self,
        input: &'a Vector<T>,
    ) -> ApplyBuilder<'a, T, Identity, NoAccum, E> {
        ApplyBuilder {
            exec: self.exec,
            input,
            mask: None,
            desc: self.defaults,
            _algebra: PhantomData,
        }
    }

    /// Starts an in-place indexed update of `out` — the paper's
    /// `eWiseLambda` (Listing 3): the terminal
    /// [`apply`](TransformBuilder::apply) receives `(i, &mut out[i])` at
    /// every selected index.
    pub fn transform<'a, T: Scalar>(&self, out: &'a mut Vector<T>) -> TransformBuilder<'a, T, E> {
        TransformBuilder {
            exec: self.exec,
            out,
            mask: None,
            desc: self.defaults,
        }
    }

    /// Starts a fold of `x` over a monoid (default: [`Plus`]).
    pub fn reduce<'a, T: Scalar>(&self, x: &'a Vector<T>) -> ReduceBuilder<'a, T, Plus, E> {
        ReduceBuilder {
            exec: self.exec,
            x,
            mask: None,
            desc: self.defaults,
            _algebra: PhantomData,
        }
    }

    /// Starts `⟨x, y⟩` (default ring: [`PlusTimes`]).
    pub fn dot<'a, T: Scalar>(
        &self,
        x: &'a Vector<T>,
        y: &'a Vector<T>,
    ) -> DotBuilder<'a, T, PlusTimes, E> {
        DotBuilder {
            exec: self.exec,
            x,
            y,
            _algebra: PhantomData,
        }
    }

    /// `‖x‖² = ⟨x, x⟩` over the arithmetic semiring.
    pub fn norm2_squared<T: Scalar>(&self, x: &Vector<T>) -> Result<T>
    where
        PlusTimes: Semiring<T>,
    {
        self.exec.run_dot::<T, PlusTimes>(x, x)
    }

    /// `x = x + α·y` — in-place `axpy`. Stays a direct method because the
    /// output aliases an input, which the two-operand `ewise` builder
    /// cannot express under Rust's borrow rules.
    pub fn axpy<T: Scalar>(&self, x: &mut Vector<T>, alpha: T, y: &Vector<T>) -> Result<()> {
        self.exec.run_axpy::<T>(x, alpha, y)
    }

    /// Starts a deferred-execution [`Pipeline`]: the same operation
    /// builders *record* into an op graph instead of executing, and
    /// [`Pipeline::finish`] fuses compatible stages before running them on
    /// this context's backend. See the [`crate::pipeline`] module docs.
    pub fn pipeline<'a, T: Scalar>(&self) -> Pipeline<'a, T, E> {
        Pipeline::new(self.exec, self.defaults)
    }

    /// Starts a compile-once [`PlanBuilder`]: operands are declared as
    /// dimensioned slots, the recorded op graph compiles into a reusable
    /// fused [`Plan`](crate::plan::Plan), and each replay binds fresh
    /// buffers/scalars — record once, run every iteration. See the
    /// [`crate::plan`] module docs.
    pub fn plan<T: Scalar>(&self) -> PlanBuilder<T, E> {
        PlanBuilder::new(self.exec, self.defaults)
    }
}

/// Builder for `y⟨mask⟩ = y ⊙? (A ⊕.⊗ x)` (see [`Ctx::mxv`] / [`Ctx::vxm`]).
#[must_use = "builders do nothing until the terminal `.into(&mut y)`"]
pub struct MxvBuilder<'a, T: Scalar, R, A, E: Exec> {
    exec: E,
    a: &'a CsrMatrix<T>,
    x: &'a Vector<T>,
    mask: Option<&'a Vector<bool>>,
    desc: Descriptor,
    _algebra: PhantomData<(R, A)>,
}

impl<'a, T: Scalar, R, A, E: Exec> MxvBuilder<'a, T, R, A, E> {
    /// Computes only the output positions selected by `mask`.
    pub fn mask(mut self, mask: &'a Vector<bool>) -> Self {
        self.mask = Some(mask);
        self
    }

    /// Interprets the mask structurally (pattern only, values ignored).
    pub fn structural(mut self) -> Self {
        self.desc = self.desc.with(Descriptor::STRUCTURAL);
        self
    }

    /// Selects where the mask does **not**.
    pub fn invert_mask(mut self) -> Self {
        self.desc = self.desc.with(Descriptor::INVERT_MASK);
        self
    }

    /// Toggles use of the matrix's transpose (no materialization). On a
    /// [`Ctx::vxm`] builder this undoes the implicit transposition.
    pub fn transpose(mut self) -> Self {
        self.desc = self.desc.toggled_transpose();
        self
    }

    /// ORs explicit descriptor flags into the builder state.
    pub fn descriptor(mut self, desc: Descriptor) -> Self {
        self.desc = self.desc.with(desc);
        self
    }

    /// Switches the semiring (default: [`PlusTimes`]).
    pub fn ring<R2>(self, _ring: R2) -> MxvBuilder<'a, T, R2, A, E> {
        MxvBuilder {
            exec: self.exec,
            a: self.a,
            x: self.x,
            mask: self.mask,
            desc: self.desc,
            _algebra: PhantomData,
        }
    }

    /// Accumulates into the output through `Op` (`y = Op(y, t)`) instead of
    /// overwriting — the GraphBLAS `accum` parameter.
    pub fn accum<Op>(self, _op: Op) -> MxvBuilder<'a, T, R, AccumWith<Op>, E> {
        MxvBuilder {
            exec: self.exec,
            a: self.a,
            x: self.x,
            mask: self.mask,
            desc: self.desc,
            _algebra: PhantomData,
        }
    }
}

impl<T: Scalar, R: Semiring<T>, A: AccumMode<T>, E: Exec> MxvBuilder<'_, T, R, A, E> {
    /// Executes into `y`. Unselected positions keep their prior values.
    pub fn into(self, y: &mut Vector<T>) -> Result<()> {
        self.exec
            .run_mxv::<T, R, A>(y, self.mask, self.desc, self.a, self.x)
    }
}

/// Builder for `y⟨mask⟩ = y ⊙? (A ⊕.⊗ x)` on a **sparse frontier**
/// (see [`Ctx::mxv_sparse`]).
///
/// Identical fluent surface to [`MxvBuilder`]; the terminal
/// [`into`](SparseMxvBuilder::into) additionally returns the
/// [`FrontierMode`] the direction-optimizing kernel selected.
#[must_use = "builders do nothing until the terminal `.into(&mut y)`"]
pub struct SparseMxvBuilder<'a, T: Scalar, R, A, E: Exec> {
    exec: E,
    m: &'a GraphMatrix<T>,
    x: &'a SparseVector<T>,
    mask: Option<&'a Vector<bool>>,
    desc: Descriptor,
    _algebra: PhantomData<(R, A)>,
}

impl<'a, T: Scalar, R, A, E: Exec> SparseMxvBuilder<'a, T, R, A, E> {
    /// Computes only the output positions selected by `mask`.
    pub fn mask(mut self, mask: &'a Vector<bool>) -> Self {
        self.mask = Some(mask);
        self
    }

    /// Interprets the mask structurally (pattern only, values ignored).
    pub fn structural(mut self) -> Self {
        self.desc = self.desc.with(Descriptor::STRUCTURAL);
        self
    }

    /// Selects where the mask does **not**.
    pub fn invert_mask(mut self) -> Self {
        self.desc = self.desc.with(Descriptor::INVERT_MASK);
        self
    }

    /// Toggles use of the matrix's transpose (no materialization — the
    /// [`GraphMatrix`] already carries both orientations). On a
    /// [`Ctx::vxm_sparse`] builder this undoes the implicit transposition.
    pub fn transpose(mut self) -> Self {
        self.desc = self.desc.toggled_transpose();
        self
    }

    /// ORs explicit descriptor flags into the builder state.
    pub fn descriptor(mut self, desc: Descriptor) -> Self {
        self.desc = self.desc.with(desc);
        self
    }

    /// Switches the semiring (default: [`PlusTimes`]).
    pub fn ring<R2>(self, _ring: R2) -> SparseMxvBuilder<'a, T, R2, A, E> {
        SparseMxvBuilder {
            exec: self.exec,
            m: self.m,
            x: self.x,
            mask: self.mask,
            desc: self.desc,
            _algebra: PhantomData,
        }
    }

    /// Accumulates into the output through `Op` (`y = Op(y, t)`) instead of
    /// overwriting — the GraphBLAS `accum` parameter.
    pub fn accum<Op>(self, _op: Op) -> SparseMxvBuilder<'a, T, R, AccumWith<Op>, E> {
        SparseMxvBuilder {
            exec: self.exec,
            m: self.m,
            x: self.x,
            mask: self.mask,
            desc: self.desc,
            _algebra: PhantomData,
        }
    }
}

impl<T: Scalar, R: Semiring<T>, A: AccumMode<T>, E: Exec> SparseMxvBuilder<'_, T, R, A, E> {
    /// Executes into `y`, reporting the push/pull decision. Unselected
    /// positions keep their prior values.
    pub fn into(self, y: &mut Vector<T>) -> Result<FrontierMode> {
        self.exec
            .run_mxv_sparse::<T, R, A>(y, self.mask, self.desc, self.m, self.x)
    }
}

/// Builder for `C = A ⊕.⊗ B` (see [`Ctx::mxm`]).
#[must_use = "builders do nothing until the terminal `.compute()`"]
pub struct MxmBuilder<'a, T: Scalar, R, E: Exec> {
    exec: E,
    a: &'a CsrMatrix<T>,
    b: &'a CsrMatrix<T>,
    desc: Descriptor,
    _algebra: PhantomData<R>,
}

impl<'a, T: Scalar, R, E: Exec> MxmBuilder<'a, T, R, E> {
    /// Toggles use of `Aᵀ` (materialized once; `mxm` is setup-time).
    pub fn transpose(mut self) -> Self {
        self.desc = self.desc.toggled_transpose();
        self
    }

    /// Switches the semiring (default: [`PlusTimes`]).
    pub fn ring<R2>(self, _ring: R2) -> MxmBuilder<'a, T, R2, E> {
        MxmBuilder {
            exec: self.exec,
            a: self.a,
            b: self.b,
            desc: self.desc,
            _algebra: PhantomData,
        }
    }
}

impl<T: Scalar, R: Semiring<T>, E: Exec> MxmBuilder<'_, T, R, E> {
    /// Executes, returning the product matrix.
    pub fn compute(self) -> Result<CsrMatrix<T>> {
        self.exec.run_mxm::<T, R>(self.a, self.b, self.desc)
    }
}

/// Builder for `w⟨mask⟩ = w ⊙? Op(α·x, β·y)` (see [`Ctx::ewise`]).
#[must_use = "builders do nothing until the terminal `.into(&mut w)`"]
pub struct EwiseBuilder<'a, T: Scalar, Op, A, E: Exec> {
    exec: E,
    x: &'a Vector<T>,
    y: &'a Vector<T>,
    mask: Option<&'a Vector<bool>>,
    desc: Descriptor,
    scale: Option<(T, T)>,
    _algebra: PhantomData<(Op, A)>,
}

impl<'a, T: Scalar, Op, A, E: Exec> EwiseBuilder<'a, T, Op, A, E> {
    /// Computes only the output positions selected by `mask`.
    pub fn mask(mut self, mask: &'a Vector<bool>) -> Self {
        self.mask = Some(mask);
        self
    }

    /// Interprets the mask structurally (pattern only, values ignored).
    pub fn structural(mut self) -> Self {
        self.desc = self.desc.with(Descriptor::STRUCTURAL);
        self
    }

    /// Selects where the mask does **not**.
    pub fn invert_mask(mut self) -> Self {
        self.desc = self.desc.with(Descriptor::INVERT_MASK);
        self
    }

    /// Scales the operands before the operator: `Op(α·x, β·y)`. With the
    /// default [`Plus`] this is HPCG's fused `waxpby` kernel.
    pub fn scaled(mut self, alpha: T, beta: T) -> Self {
        self.scale = Some((alpha, beta));
        self
    }

    /// Switches the element-wise operator (default: [`Plus`]).
    pub fn op<Op2>(self, _op: Op2) -> EwiseBuilder<'a, T, Op2, A, E> {
        EwiseBuilder {
            exec: self.exec,
            x: self.x,
            y: self.y,
            mask: self.mask,
            desc: self.desc,
            scale: self.scale,
            _algebra: PhantomData,
        }
    }

    /// Accumulates into the output through `AccOp` instead of overwriting.
    pub fn accum<AccOp>(self, _op: AccOp) -> EwiseBuilder<'a, T, Op, AccumWith<AccOp>, E> {
        EwiseBuilder {
            exec: self.exec,
            x: self.x,
            y: self.y,
            mask: self.mask,
            desc: self.desc,
            scale: self.scale,
            _algebra: PhantomData,
        }
    }
}

impl<T: Scalar, Op: BinaryOp<T>, A: AccumMode<T>, E: Exec> EwiseBuilder<'_, T, Op, A, E> {
    /// Executes into `w`. Unselected positions keep their prior values.
    pub fn into(self, w: &mut Vector<T>) -> Result<()> {
        self.exec
            .run_ewise::<T, Op, A>(w, self.mask, self.desc, self.x, self.y, self.scale)
    }
}

/// Builder for `out⟨mask⟩ = out ⊙? Op(input)` (see [`Ctx::apply`]).
#[must_use = "builders do nothing until the terminal `.into(&mut out)`"]
pub struct ApplyBuilder<'a, T: Scalar, Op, A, E: Exec> {
    exec: E,
    input: &'a Vector<T>,
    mask: Option<&'a Vector<bool>>,
    desc: Descriptor,
    _algebra: PhantomData<(Op, A)>,
}

impl<'a, T: Scalar, Op, A, E: Exec> ApplyBuilder<'a, T, Op, A, E> {
    /// Computes only the output positions selected by `mask`.
    pub fn mask(mut self, mask: &'a Vector<bool>) -> Self {
        self.mask = Some(mask);
        self
    }

    /// Interprets the mask structurally (pattern only, values ignored).
    pub fn structural(mut self) -> Self {
        self.desc = self.desc.with(Descriptor::STRUCTURAL);
        self
    }

    /// Selects where the mask does **not**.
    pub fn invert_mask(mut self) -> Self {
        self.desc = self.desc.with(Descriptor::INVERT_MASK);
        self
    }

    /// Switches the unary operator (default: [`Identity`]).
    pub fn op<Op2>(self, _op: Op2) -> ApplyBuilder<'a, T, Op2, A, E> {
        ApplyBuilder {
            exec: self.exec,
            input: self.input,
            mask: self.mask,
            desc: self.desc,
            _algebra: PhantomData,
        }
    }

    /// Accumulates into the output through `AccOp` instead of overwriting.
    pub fn accum<AccOp>(self, _op: AccOp) -> ApplyBuilder<'a, T, Op, AccumWith<AccOp>, E> {
        ApplyBuilder {
            exec: self.exec,
            input: self.input,
            mask: self.mask,
            desc: self.desc,
            _algebra: PhantomData,
        }
    }
}

impl<T: Scalar, Op: UnaryOp<T>, A: AccumMode<T>, E: Exec> ApplyBuilder<'_, T, Op, A, E> {
    /// Executes into `out`. Unselected positions keep their prior values.
    pub fn into(self, out: &mut Vector<T>) -> Result<()> {
        self.exec
            .run_apply::<T, Op, A>(out, self.mask, self.desc, self.input)
    }
}

/// Builder for the in-place indexed update (see [`Ctx::transform`]).
#[must_use = "builders do nothing until the terminal `.apply(f)`"]
pub struct TransformBuilder<'a, T: Scalar, E: Exec> {
    exec: E,
    out: &'a mut Vector<T>,
    mask: Option<&'a Vector<bool>>,
    desc: Descriptor,
}

impl<'a, T: Scalar, E: Exec> TransformBuilder<'a, T, E> {
    /// Updates only the positions selected by `mask`.
    pub fn mask(mut self, mask: &'a Vector<bool>) -> Self {
        self.mask = Some(mask);
        self
    }

    /// Interprets the mask structurally (pattern only, values ignored).
    pub fn structural(mut self) -> Self {
        self.desc = self.desc.with(Descriptor::STRUCTURAL);
        self
    }

    /// Selects where the mask does **not**.
    pub fn invert_mask(mut self) -> Self {
        self.desc = self.desc.with(Descriptor::INVERT_MASK);
        self
    }

    /// Executes `f(i, &mut out[i])` at every selected index. The closure
    /// may capture shared references to other vectors (as the paper's
    /// `eWiseLambda` captures `r`, `tmp`, `A_diag`); under a parallel
    /// backend it runs concurrently for different `i`.
    pub fn apply<F: Fn(usize, &mut T) + Send + Sync>(self, f: F) -> Result<()> {
        self.exec
            .run_lambda::<T, F>(self.out, self.mask, self.desc, f)
    }
}

/// Builder for a monoid fold of a vector (see [`Ctx::reduce`]).
#[must_use = "builders do nothing until the terminal `.compute()`"]
pub struct ReduceBuilder<'a, T: Scalar, M, E: Exec> {
    exec: E,
    x: &'a Vector<T>,
    mask: Option<&'a Vector<bool>>,
    desc: Descriptor,
    _algebra: PhantomData<M>,
}

impl<'a, T: Scalar, M, E: Exec> ReduceBuilder<'a, T, M, E> {
    /// Folds only the positions selected by `mask`.
    pub fn mask(mut self, mask: &'a Vector<bool>) -> Self {
        self.mask = Some(mask);
        self
    }

    /// Interprets the mask structurally (pattern only, values ignored).
    pub fn structural(mut self) -> Self {
        self.desc = self.desc.with(Descriptor::STRUCTURAL);
        self
    }

    /// Selects where the mask does **not**.
    pub fn invert_mask(mut self) -> Self {
        self.desc = self.desc.with(Descriptor::INVERT_MASK);
        self
    }

    /// Switches the monoid (default: [`Plus`]).
    pub fn monoid<M2>(self, _monoid: M2) -> ReduceBuilder<'a, T, M2, E> {
        ReduceBuilder {
            exec: self.exec,
            x: self.x,
            mask: self.mask,
            desc: self.desc,
            _algebra: PhantomData,
        }
    }
}

impl<T: Scalar, M: Monoid<T>, E: Exec> ReduceBuilder<'_, T, M, E> {
    /// Executes, returning the fold (the monoid identity on empty
    /// selections).
    pub fn compute(self) -> Result<T> {
        self.exec.run_reduce::<T, M>(self.x, self.mask, self.desc)
    }
}

/// Builder for `⟨x, y⟩` (see [`Ctx::dot`]).
#[must_use = "builders do nothing until the terminal `.compute()`"]
pub struct DotBuilder<'a, T: Scalar, R, E: Exec> {
    exec: E,
    x: &'a Vector<T>,
    y: &'a Vector<T>,
    _algebra: PhantomData<R>,
}

impl<'a, T: Scalar, R, E: Exec> DotBuilder<'a, T, R, E> {
    /// Switches the semiring (default: [`PlusTimes`]).
    pub fn ring<R2>(self, _ring: R2) -> DotBuilder<'a, T, R2, E> {
        DotBuilder {
            exec: self.exec,
            x: self.x,
            y: self.y,
            _algebra: PhantomData,
        }
    }
}

impl<T: Scalar, R: Semiring<T>, E: Exec> DotBuilder<'_, T, R, E> {
    /// Executes, returning the inner product.
    pub fn compute(self) -> Result<T> {
        self.exec.run_dot::<T, R>(self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::Times;
    use crate::ops::semiring::MinPlus;

    fn a2() -> CsrMatrix<f64> {
        CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (0, 1, 1.0), (1, 1, 3.0)]).unwrap()
    }

    #[test]
    fn backend_kind_parsing() {
        assert_eq!(BackendKind::parse("seq").unwrap(), BackendKind::Sequential);
        assert_eq!(
            BackendKind::parse("SEQUENTIAL").unwrap(),
            BackendKind::Sequential
        );
        assert_eq!(BackendKind::parse("par").unwrap(), BackendKind::Parallel);
        assert_eq!(
            BackendKind::parse(" Parallel ").unwrap(),
            BackendKind::Parallel
        );
        assert!(BackendKind::parse("gpu").is_err());
        assert!("par".parse::<BackendKind>().is_ok());
        assert!("tpu".parse::<BackendKind>().is_err());
        assert_eq!(BackendKind::Sequential.to_string(), "seq");
    }

    #[test]
    fn dist_backend_parsing() {
        match BackendKind::parse("dist:3").unwrap() {
            BackendKind::Dist(d) => assert_eq!(d.nodes(), 3),
            other => panic!("expected dist, got {other}"),
        }
        // Default node count when the suffix is omitted.
        match BackendKind::parse("dist").unwrap() {
            BackendKind::Dist(d) => assert_eq!(d.nodes(), DEFAULT_DIST_NODES),
            other => panic!("expected dist, got {other}"),
        }
        // The long spelling and case folding work too.
        assert!(matches!(
            BackendKind::parse("Distributed:2").unwrap(),
            BackendKind::Dist(_)
        ));
        // Display carries the node count; flag stays the family name.
        let kind = BackendKind::parse("dist:7").unwrap();
        assert_eq!(kind.to_string(), "dist:7");
        assert_eq!(kind.flag(), "dist");
    }

    #[test]
    fn malformed_dist_spellings_name_the_problem() {
        let e = BackendKind::parse("dist:abc").unwrap_err().to_string();
        assert!(e.contains("abc") && e.contains("node count"), "got: {e}");
        let e = BackendKind::parse("dist:0").unwrap_err().to_string();
        assert!(e.contains("at least one node"), "got: {e}");
        let e = BackendKind::parse("dist:-2").unwrap_err().to_string();
        assert!(e.contains("-2"), "got: {e}");
        let e = BackendKind::parse("dist:").unwrap_err().to_string();
        assert!(e.contains("node count"), "got: {e}");
        let e = BackendKind::parse("dust:4").unwrap_err().to_string();
        assert!(e.contains("dist[:<nodes>]"), "got: {e}");
        // Non-integer, internal-whitespace, and overflowing counts all
        // name the offending token instead of silently defaulting.
        let e = BackendKind::parse("dist:3.5").unwrap_err().to_string();
        assert!(e.contains("3.5"), "got: {e}");
        let e = BackendKind::parse("dist: 4").unwrap_err().to_string();
        assert!(e.contains("node count"), "got: {e}");
        let e = BackendKind::parse("distributed:").unwrap_err().to_string();
        assert!(e.contains("node count"), "got: {e}");
        let e = BackendKind::parse("dist:99999999999999999999999")
            .unwrap_err()
            .to_string();
        assert!(e.contains("node count"), "got: {e}");
    }

    #[test]
    fn empty_and_whitespace_specs_are_rejected() {
        let e = BackendKind::parse("").unwrap_err().to_string();
        assert!(e.contains("unknown backend"), "got: {e}");
        let e = BackendKind::parse("   \t ").unwrap_err().to_string();
        assert!(e.contains("unknown backend"), "got: {e}");
        assert!("".parse::<BackendKind>().is_err());
        // A separator with no family name is not a dist spelling.
        assert!(BackendKind::parse(":4").is_err());
    }

    #[test]
    fn dyn_ctx_dispatches_to_dist() {
        let a = a2();
        let x = Vector::from_dense(vec![1.0, 2.0]);
        let mut y_seq = Vector::zeros(2);
        ctx::<Sequential>().mxv(&a, &x).into(&mut y_seq).unwrap();
        let kind = BackendKind::parse("dist:3").unwrap();
        let exec = DynCtx::runtime(kind);
        assert_eq!(exec.threads(), 3);
        assert_eq!(exec.backend_name(), "distributed(bsp)");
        let mut y = Vector::zeros(2);
        exec.mxv(&a, &x).into(&mut y).unwrap();
        assert_eq!(y.as_slice(), y_seq.as_slice());
        match kind {
            BackendKind::Dist(d) => assert!(d.total_h_bytes() > 0.0, "cost was recorded"),
            _ => unreachable!(),
        }
    }

    #[test]
    fn static_and_dynamic_contexts_agree() {
        let a = a2();
        let x = Vector::from_dense(vec![1.0, 2.0]);
        let mut y_static = Vector::zeros(2);
        ctx::<Sequential>().mxv(&a, &x).into(&mut y_static).unwrap();
        for kind in [BackendKind::Sequential, BackendKind::Parallel] {
            let mut y_dyn = Vector::zeros(2);
            DynCtx::runtime(kind).mxv(&a, &x).into(&mut y_dyn).unwrap();
            assert_eq!(y_static.as_slice(), y_dyn.as_slice(), "backend {kind}");
        }
    }

    #[test]
    fn dyn_ctx_reports_backend() {
        let seq = DynCtx::runtime(BackendKind::Sequential);
        assert_eq!(seq.kind(), BackendKind::Sequential);
        assert_eq!(seq.threads(), 1);
        assert_eq!(seq.backend_name(), "sequential");
        let par = DynCtx::runtime(BackendKind::Parallel);
        assert!(par.threads() >= 1);
    }

    #[test]
    fn defaults_seed_every_builder() {
        let a = a2();
        let x = Vector::from_dense(vec![1.0, 1.0]);
        let mask = Vector::<bool>::from_entries(2, &[(0, false), (1, true)]).unwrap();
        // A context whose masks are structural by default: the stored-but-
        // false entry still selects.
        let exec = ctx::<Sequential>().with_defaults(Descriptor::STRUCTURAL);
        assert!(exec.defaults().is_structural());
        let mut y = Vector::from_dense(vec![-1.0, -1.0]);
        exec.mxv(&a, &x).mask(&mask).into(&mut y).unwrap();
        assert_eq!(
            y.as_slice(),
            &[3.0, 3.0],
            "structural default selects both rows"
        );
    }

    #[test]
    fn fluent_chain_composes_every_axis() {
        // The ISSUE's canonical chain: mask + structural + transpose + accum.
        let a = a2();
        let x = Vector::from_dense(vec![1.0, 2.0]);
        let m = Vector::<bool>::sparse_filled(2, vec![1], true).unwrap();
        let mut y = Vector::from_dense(vec![5.0, 5.0]);
        ctx::<Sequential>()
            .mxv(&a, &x)
            .mask(&m)
            .structural()
            .transpose()
            .accum(Plus)
            .into(&mut y)
            .unwrap();
        // (Aᵀx)[1] = 1·1 + 3·2 = 7, accumulated onto 5; index 0 untouched.
        assert_eq!(y.as_slice(), &[5.0, 12.0]);
    }

    #[test]
    fn ring_rebinding_composes_with_dyn() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 2.0)]).unwrap();
        let x = Vector::from_dense(vec![0.0, 10.0]);
        let mut y = Vector::zeros(2);
        DynCtx::runtime(BackendKind::Parallel)
            .mxv(&a, &x)
            .ring(MinPlus)
            .into(&mut y)
            .unwrap();
        assert_eq!(y.as_slice(), &[11.0, 2.0]);
    }

    #[test]
    fn mxm_builder_transposes() {
        let a = a2();
        let exec = ctx::<Sequential>();
        let direct = exec.mxm(&a, &a).compute().unwrap();
        assert_eq!(direct.get(0, 1), Some(5.0), "(A²)[0,1] = 2·1 + 1·3");
        let at_a = exec.mxm(&a, &a).transpose().compute().unwrap();
        let manual = exec.mxm(&a.transpose(), &a).compute().unwrap();
        assert_eq!(at_a, manual);
    }

    #[test]
    fn ewise_times_and_dot_builders() {
        let exec = ctx::<Sequential>();
        let x = Vector::from_dense(vec![1.0, 2.0, 3.0]);
        let y = Vector::from_dense(vec![4.0, 5.0, 6.0]);
        let mut w = Vector::zeros(3);
        exec.ewise(&x, &y).op(Times).into(&mut w).unwrap();
        assert_eq!(w.as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(exec.dot(&x, &y).compute().unwrap(), 32.0);
        assert_eq!(exec.dot(&x, &y).ring(MinPlus).compute().unwrap(), 5.0);
    }

    /// Serializes the tests that read or mutate `GRB_BACKEND` — tests in
    /// one binary share the process environment.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn env_fallback_used_when_var_absent() {
        let _guard = ENV_LOCK.lock().unwrap();
        // GRB_BACKEND is not set in the test environment.
        if std::env::var("GRB_BACKEND").is_err() {
            let exec = DynCtx::from_env_or(BackendKind::Parallel).unwrap();
            assert_eq!(exec.kind(), BackendKind::Parallel);
            assert_eq!(BackendKind::from_env().unwrap(), None);
        }
    }

    #[test]
    fn invalid_env_value_is_an_error_not_a_fallback() {
        let _guard = ENV_LOCK.lock().unwrap();
        let previous = std::env::var("GRB_BACKEND").ok();
        std::env::set_var("GRB_BACKEND", "gpu");
        let err = DynCtx::from_env_or(BackendKind::Sequential);
        match previous {
            Some(v) => std::env::set_var("GRB_BACKEND", v),
            None => std::env::remove_var("GRB_BACKEND"),
        }
        let err = err.expect_err("invalid GRB_BACKEND must not silently fall back");
        assert!(err.to_string().contains("GRB_BACKEND"), "got: {err}");
        assert!(err.to_string().contains("gpu"), "got: {err}");
    }

    /// Runs `f` with `GRB_BACKEND` set to `value`, restoring the previous
    /// state afterwards (under [`ENV_LOCK`], which the caller must hold).
    fn with_env_backend<R>(value: &str, f: impl FnOnce() -> R) -> R {
        let previous = std::env::var("GRB_BACKEND").ok();
        std::env::set_var("GRB_BACKEND", value);
        let out = f();
        match previous {
            Some(v) => std::env::set_var("GRB_BACKEND", v),
            None => std::env::remove_var("GRB_BACKEND"),
        }
        out
    }

    #[test]
    fn malformed_dist_env_values_error_with_the_value() {
        let _guard = ENV_LOCK.lock().unwrap();
        for bad in ["dist:zero", "dist:0", "dist:-1", "dist:"] {
            let err = with_env_backend(bad, || DynCtx::from_env_or(BackendKind::Sequential))
                .expect_err("malformed dist count in GRB_BACKEND must error");
            let msg = err.to_string();
            assert!(msg.contains("GRB_BACKEND"), "{bad}: got {msg}");
            assert!(msg.contains(bad), "{bad}: got {msg}");
        }
    }

    #[test]
    fn empty_env_value_is_an_error_not_unset() {
        // `GRB_BACKEND=` (set but empty) is a malformed request, not the
        // absence of one: the default must NOT kick in silently.
        let _guard = ENV_LOCK.lock().unwrap();
        let err = with_env_backend("", || DynCtx::from_env_or(BackendKind::Parallel))
            .expect_err("empty GRB_BACKEND must error");
        assert!(err.to_string().contains("GRB_BACKEND"), "got: {err}");
        let err = with_env_backend("", BackendKind::from_env)
            .expect_err("from_env agrees with from_env_or");
        assert!(err.to_string().contains("invalid"), "got: {err}");
    }

    #[test]
    fn valid_env_value_overrides_the_default() {
        let _guard = ENV_LOCK.lock().unwrap();
        let exec = with_env_backend("seq", || DynCtx::from_env_or(BackendKind::Parallel))
            .expect("valid GRB_BACKEND parses");
        assert_eq!(exec.kind(), BackendKind::Sequential);
        // Whitespace is tolerated in a *valid* spelling.
        let exec = with_env_backend("  PAR  ", || DynCtx::from_env_or(BackendKind::Sequential))
            .expect("padded GRB_BACKEND parses");
        assert_eq!(exec.kind(), BackendKind::Parallel);
    }
}
