//! The generic fusion pass over recorded pipeline op graphs.
//!
//! Given the node list a [`Pipeline`](crate::pipeline::Pipeline) recorded,
//! [`fuse`] partitions it into execution stages, merging patterns the
//! backends have fused kernels for (paper §VI — the hand-optimizations
//! HPCG vendors apply, recovered here from the op graph):
//!
//! * **SpMV with epilogue** — an unmasked, untransposed, non-accumulating
//!   `mxv` over the arithmetic semiring immediately consumed by a `dot` (or
//!   norm) of its output: one row sweep computes the product and folds the
//!   epilogue, so `y` is never re-streamed (CG's `⟨p, Ap⟩`).
//! * **Axpy with norm** — an `axpy` immediately followed by the squared
//!   norm of its output: one stream updates and reduces (CG's residual
//!   update + convergence check).
//! * **Element-wise loops** — maximal runs of adjacent unmasked
//!   element-wise stages of one length collapse into a single index loop,
//!   as long as no stage reads a vector another stage *in the same run*
//!   writes (same-index dataflow stays legal because element-wise stages
//!   only touch index `i`; cross-stage reads of a run member's output would
//!   observe a half-written vector, so they split the run instead).
//!
//! Everything else runs as a single stage through the exact kernel its
//! eager builder would call. The pass never reorders nodes, which together
//! with the per-element equivalence of the fused kernels keeps pipeline
//! execution bit-identical to eager execution.

use crate::ops::scalar::Scalar;
use crate::pipeline::{Node, RingTag};

/// One execution stage of a fused schedule (indices into the node list).
pub(crate) enum Stage {
    /// A lone node, executed through its eager kernel.
    Single(usize),
    /// `mxv` + `dot`/norm of its output in one sweep.
    SpmvDot {
        /// Index of the `mxv` node.
        mxv: usize,
        /// Index of the consuming `dot` node.
        dot: usize,
    },
    /// `axpy` + squared norm of its output in one sweep.
    AxpyNorm {
        /// Index of the `axpy` node.
        axpy: usize,
        /// Index of the consuming `dot` node.
        dot: usize,
    },
    /// Adjacent element-wise stages sharing a single index loop.
    Loop(Vec<usize>),
}

/// Public description of a planned stage — what [`Pipeline::plan`]
/// (crate::pipeline::Pipeline::plan) reports for tests and debugging.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlannedStage {
    /// An unfused stage running the named eager kernel.
    Single(&'static str),
    /// A fused SpMV-with-dot-epilogue sweep.
    SpmvDot,
    /// A fused axpy-with-norm stream.
    AxpyNorm,
    /// A single loop executing this many element-wise stages.
    FusedLoop(usize),
}

impl Stage {
    pub(crate) fn describe<T: Scalar>(&self, nodes: &[Node<'_, T>]) -> PlannedStage {
        match self {
            Stage::Single(i) => PlannedStage::Single(nodes[*i].name()),
            Stage::SpmvDot { .. } => PlannedStage::SpmvDot,
            Stage::AxpyNorm { .. } => PlannedStage::AxpyNorm,
            Stage::Loop(run) => PlannedStage::FusedLoop(run.len()),
        }
    }
}

/// The output registry slot a node writes, if any.
fn node_out<T: Scalar>(node: &Node<'_, T>) -> Option<usize> {
    match node {
        Node::Mxv { out, .. }
        | Node::Ewise { out, .. }
        | Node::Apply { out, .. }
        | Node::Axpy { out, .. }
        | Node::Lambda { out, .. }
        | Node::LambdaZip { out, .. } => Some(*out),
        Node::Dot { .. } | Node::Reduce { .. } => None,
    }
}

/// The registry slots a node reads (vector operands that are handles).
fn node_input_outs<T: Scalar>(node: &Node<'_, T>) -> [Option<usize>; 2] {
    match node {
        Node::Mxv { x, .. } => [x.out_index(), None],
        Node::Ewise { x, y, .. } => [x.out_index(), y.out_index()],
        Node::Apply { input, .. } => [input.out_index(), None],
        Node::Axpy { y, .. } => [y.out_index(), None],
        Node::Lambda { .. } => [None, None],
        Node::LambdaZip { src, .. } => [src.out_index(), None],
        Node::Dot { x, y, .. } => [x.out_index(), y.out_index()],
        Node::Reduce { x, .. } => [x.out_index(), None],
    }
}

/// Whether `nodes[i]` + `nodes[i + 1]` form a fusable SpMV-with-epilogue.
fn spmv_dot_fusable<T: Scalar>(nodes: &[Node<'_, T>], i: usize) -> bool {
    let Some(Node::Mxv {
        out,
        mask,
        desc,
        ring,
        accum,
        ..
    }) = nodes.get(i)
    else {
        return false;
    };
    if mask.is_some() || desc.is_transposed() || *ring != RingTag::PlusTimes || accum.is_some() {
        return false;
    }
    match nodes.get(i + 1) {
        Some(Node::Dot { x, y, ring, .. }) => {
            *ring == RingTag::PlusTimes
                && (x.out_index() == Some(*out) || y.out_index() == Some(*out))
        }
        _ => false,
    }
}

/// Whether `nodes[i]` + `nodes[i + 1]` form a fusable axpy-with-norm.
fn axpy_norm_fusable<T: Scalar>(nodes: &[Node<'_, T>], i: usize) -> bool {
    let Some(Node::Axpy { out, .. }) = nodes.get(i) else {
        return false;
    };
    match nodes.get(i + 1) {
        Some(Node::Dot { x, y, ring, .. }) => {
            *ring == RingTag::PlusTimes
                && x.out_index() == Some(*out)
                && y.out_index() == Some(*out)
        }
        _ => false,
    }
}

/// Whether a node can participate in a fused element-wise loop.
fn loop_candidate<T: Scalar>(node: &Node<'_, T>) -> bool {
    match node {
        Node::Ewise { mask, .. }
        | Node::Apply { mask, .. }
        | Node::Lambda { mask, .. }
        | Node::LambdaZip { mask, .. } => mask.is_none(),
        Node::Axpy { .. } => true,
        Node::Mxv { .. } | Node::Dot { .. } | Node::Reduce { .. } => false,
    }
}

/// Partitions the recorded nodes into a fused execution schedule.
pub(crate) fn fuse<T: Scalar>(nodes: &[Node<'_, T>], out_lens: &[usize]) -> Vec<Stage> {
    let mut stages = Vec::new();
    let mut i = 0;
    while i < nodes.len() {
        if spmv_dot_fusable(nodes, i) {
            stages.push(Stage::SpmvDot { mxv: i, dot: i + 1 });
            i += 2;
            continue;
        }
        if axpy_norm_fusable(nodes, i) {
            stages.push(Stage::AxpyNorm {
                axpy: i,
                dot: i + 1,
            });
            i += 2;
            continue;
        }
        if !loop_candidate(&nodes[i]) {
            stages.push(Stage::Single(i));
            i += 1;
            continue;
        }
        // Grow a maximal legal element-wise run starting at i.
        let n = out_lens[node_out(&nodes[i]).expect("element-wise nodes write a vector")];
        let mut run = vec![i];
        let mut outs_in_run = vec![node_out(&nodes[i]).unwrap()];
        let mut inputs_in_run: Vec<usize> = node_input_outs(&nodes[i])
            .iter()
            .flatten()
            .copied()
            .collect();
        let mut j = i + 1;
        while j < nodes.len() {
            if !loop_candidate(&nodes[j]) || axpy_norm_fusable(nodes, j) {
                break;
            }
            let out = node_out(&nodes[j]).unwrap();
            // One loop may not contain two writers of a slot, a reader of a
            // slot the run writes (it would observe a half-written vector),
            // or a writer of a slot the run reads (an earlier member's
            // shared view would alias the write).
            if out_lens[out] != n || outs_in_run.contains(&out) || inputs_in_run.contains(&out) {
                break;
            }
            let reads_run_output = node_input_outs(&nodes[j])
                .iter()
                .flatten()
                .any(|o| outs_in_run.contains(o));
            if reads_run_output {
                break;
            }
            outs_in_run.push(out);
            inputs_in_run.extend(node_input_outs(&nodes[j]).iter().flatten());
            run.push(j);
            j += 1;
        }
        if run.len() >= 2 {
            stages.push(Stage::Loop(run));
        } else {
            stages.push(Stage::Single(i));
        }
        i = j;
    }
    stages
}
