//! The generic fusion pass over recorded pipeline op graphs.
//!
//! Given the node list a [`Pipeline`](crate::pipeline::Pipeline) recorded,
//! [`fuse`] partitions it into execution stages, merging patterns the
//! backends have fused kernels for (paper §VI — the hand-optimizations
//! HPCG vendors apply, recovered here from the op graph):
//!
//! * **SpMV with epilogue** — an unmasked, untransposed, non-accumulating
//!   `mxv` over the arithmetic semiring immediately consumed by a `dot` (or
//!   norm) of its output: one row sweep computes the product and folds the
//!   epilogue, so `y` is never re-streamed (CG's `⟨p, Ap⟩`).
//! * **Axpy with norm** — an `axpy` immediately followed by the squared
//!   norm of its output: one stream updates and reduces (CG's residual
//!   update + convergence check).
//! * **Element-wise loops** — maximal runs of adjacent unmasked
//!   element-wise stages of one length collapse into a single index loop,
//!   as long as no stage reads a vector another stage *in the same run*
//!   writes (same-index dataflow stays legal because element-wise stages
//!   only touch index `i`; cross-stage reads of a run member's output would
//!   observe a half-written vector, so they split the run instead).
//!
//! Everything else runs as a single stage through the exact kernel its
//! eager builder would call. The pass never reorders nodes, which together
//! with the per-element equivalence of the fused kernels keeps pipeline
//! execution bit-identical to eager execution.
//!
//! The pass itself is *shape generic*: it sees each recorded op only as an
//! [`OpShape`] (kind, output slot, read slots, maskedness), so the same
//! [`fuse_shapes`] schedule builder serves both the borrow-carrying
//! [`Pipeline`](crate::pipeline::Pipeline) nodes and the slot-based
//! [`Plan`](crate::plan::Plan) nodes that outlive their operands.

use crate::ops::scalar::Scalar;
use crate::pipeline::{Node, RingTag};

/// One execution stage of a fused schedule (indices into the node list).
pub(crate) enum Stage {
    /// A lone node, executed through its eager kernel.
    Single(usize),
    /// `mxv` + `dot`/norm of its output in one sweep.
    SpmvDot {
        /// Index of the `mxv` node.
        mxv: usize,
        /// Index of the consuming `dot` node.
        dot: usize,
    },
    /// `axpy` + squared norm of its output in one sweep.
    AxpyNorm {
        /// Index of the `axpy` node.
        axpy: usize,
        /// Index of the consuming `dot` node.
        dot: usize,
    },
    /// Adjacent element-wise stages sharing a single index loop.
    Loop(Vec<usize>),
}

/// Public description of a planned stage — what [`Pipeline::plan`]
/// (crate::pipeline::Pipeline::plan) reports for tests and debugging.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlannedStage {
    /// An unfused stage running the named eager kernel.
    Single(&'static str),
    /// A fused SpMV-with-dot-epilogue sweep.
    SpmvDot,
    /// A fused axpy-with-norm stream.
    AxpyNorm,
    /// A single loop executing this many element-wise stages.
    FusedLoop(usize),
}

impl Stage {
    pub(crate) fn describe<T: Scalar>(&self, nodes: &[Node<'_, T>]) -> PlannedStage {
        self.describe_by(|i| nodes[i].name())
    }

    /// Describes the stage given a node-index → kernel-name mapping, so
    /// both pipeline nodes and plan nodes can report schedules.
    pub(crate) fn describe_by(&self, name_of: impl Fn(usize) -> &'static str) -> PlannedStage {
        match self {
            Stage::Single(i) => PlannedStage::Single(name_of(*i)),
            Stage::SpmvDot { .. } => PlannedStage::SpmvDot,
            Stage::AxpyNorm { .. } => PlannedStage::AxpyNorm,
            Stage::Loop(run) => PlannedStage::FusedLoop(run.len()),
        }
    }
}

/// How an op participates in fusion.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum ShapeKind {
    /// An `mxv` eligible for the SpMV-with-epilogue fusion: unmasked,
    /// untransposed, plus-times ring, no accumulator.
    MxvFusable,
    /// Any other `mxv`.
    MxvOther,
    /// An element-wise binary op.
    Ewise,
    /// An element-wise unary op.
    Apply,
    /// An in-place `x += alpha * y` update.
    Axpy,
    /// An element-wise user lambda (with any number of zipped sources).
    Lambda,
    /// A `dot` over the plus-times ring — the only epilogue the fused
    /// SpMV/axpy kernels implement.
    DotPlusTimes,
    /// A `dot` over any other ring.
    DotOther,
    /// A masked or monoid reduction.
    Reduce,
}

/// The fusion-relevant footprint of one recorded op: what it writes, which
/// registry slots it reads, and whether a mask gates it. Operands that are
/// external borrows (not registry slots) cannot alias a registry output —
/// the recorders enforce that — so they are invisible to the pass.
#[derive(Clone, Copy, Debug)]
pub(crate) struct OpShape {
    pub(crate) kind: ShapeKind,
    pub(crate) out: Option<usize>,
    pub(crate) reads: [Option<usize>; 3],
    pub(crate) masked: bool,
}

impl OpShape {
    fn reads(&self) -> impl Iterator<Item = usize> + '_ {
        self.reads.iter().flatten().copied()
    }
}

/// Whether `shapes[i]` + `shapes[i + 1]` form a fusable SpMV-with-epilogue.
fn spmv_dot_fusable(shapes: &[OpShape], i: usize) -> bool {
    let Some(mxv) = shapes.get(i) else {
        return false;
    };
    if mxv.kind != ShapeKind::MxvFusable {
        return false;
    }
    let out = mxv.out.expect("mxv writes a vector");
    match shapes.get(i + 1) {
        Some(dot) => dot.kind == ShapeKind::DotPlusTimes && dot.reads().any(|r| r == out),
        None => false,
    }
}

/// Whether `shapes[i]` + `shapes[i + 1]` form a fusable axpy-with-norm.
fn axpy_norm_fusable(shapes: &[OpShape], i: usize) -> bool {
    let Some(axpy) = shapes.get(i) else {
        return false;
    };
    if axpy.kind != ShapeKind::Axpy {
        return false;
    }
    let out = axpy.out.expect("axpy writes a vector");
    match shapes.get(i + 1) {
        Some(dot) => {
            dot.kind == ShapeKind::DotPlusTimes
                && dot.reads[0] == Some(out)
                && dot.reads[1] == Some(out)
        }
        None => false,
    }
}

/// Whether an op can participate in a fused element-wise loop.
fn loop_candidate(shape: &OpShape) -> bool {
    match shape.kind {
        ShapeKind::Ewise | ShapeKind::Apply | ShapeKind::Lambda => !shape.masked,
        ShapeKind::Axpy => true,
        ShapeKind::MxvFusable
        | ShapeKind::MxvOther
        | ShapeKind::DotPlusTimes
        | ShapeKind::DotOther
        | ShapeKind::Reduce => false,
    }
}

/// Partitions a sequence of op shapes into a fused execution schedule.
///
/// `out_lens[s]` is the length of output registry slot `s`; element-wise
/// runs only merge ops whose outputs share one length.
pub(crate) fn fuse_shapes(shapes: &[OpShape], out_lens: &[usize]) -> Vec<Stage> {
    let mut stages = Vec::new();
    let mut i = 0;
    while i < shapes.len() {
        if spmv_dot_fusable(shapes, i) {
            stages.push(Stage::SpmvDot { mxv: i, dot: i + 1 });
            i += 2;
            continue;
        }
        if axpy_norm_fusable(shapes, i) {
            stages.push(Stage::AxpyNorm {
                axpy: i,
                dot: i + 1,
            });
            i += 2;
            continue;
        }
        if !loop_candidate(&shapes[i]) {
            stages.push(Stage::Single(i));
            i += 1;
            continue;
        }
        // Grow a maximal legal element-wise run starting at i.
        let n = out_lens[shapes[i].out.expect("element-wise ops write a vector")];
        let mut run = vec![i];
        let mut outs_in_run = vec![shapes[i].out.unwrap()];
        let mut inputs_in_run: Vec<usize> = shapes[i].reads().collect();
        let mut j = i + 1;
        while j < shapes.len() {
            if !loop_candidate(&shapes[j]) || axpy_norm_fusable(shapes, j) {
                break;
            }
            let out = shapes[j].out.unwrap();
            // One loop may not contain two writers of a slot, a reader of a
            // slot the run writes (it would observe a half-written vector),
            // or a writer of a slot the run reads (an earlier member's
            // shared view would alias the write).
            if out_lens[out] != n || outs_in_run.contains(&out) || inputs_in_run.contains(&out) {
                break;
            }
            let reads_run_output = shapes[j].reads().any(|o| outs_in_run.contains(&o));
            if reads_run_output {
                break;
            }
            outs_in_run.push(out);
            inputs_in_run.extend(shapes[j].reads());
            run.push(j);
            j += 1;
        }
        if run.len() >= 2 {
            stages.push(Stage::Loop(run));
        } else {
            stages.push(Stage::Single(i));
        }
        i = j;
    }
    stages
}

/// The [`OpShape`] of a recorded pipeline node.
fn node_shape<T: Scalar>(node: &Node<'_, T>) -> OpShape {
    match node {
        Node::Mxv {
            out,
            x,
            mask,
            desc,
            ring,
            accum,
            ..
        } => OpShape {
            kind: if mask.is_none()
                && !desc.is_transposed()
                && *ring == RingTag::PlusTimes
                && accum.is_none()
            {
                ShapeKind::MxvFusable
            } else {
                ShapeKind::MxvOther
            },
            out: Some(*out),
            reads: [x.out_index(), None, None],
            masked: mask.is_some(),
        },
        Node::Ewise {
            out, x, y, mask, ..
        } => OpShape {
            kind: ShapeKind::Ewise,
            out: Some(*out),
            reads: [x.out_index(), y.out_index(), None],
            masked: mask.is_some(),
        },
        Node::Apply {
            out, input, mask, ..
        } => OpShape {
            kind: ShapeKind::Apply,
            out: Some(*out),
            reads: [input.out_index(), None, None],
            masked: mask.is_some(),
        },
        Node::Axpy { out, y, .. } => OpShape {
            kind: ShapeKind::Axpy,
            out: Some(*out),
            reads: [y.out_index(), None, None],
            masked: false,
        },
        Node::Lambda { out, mask, .. } => OpShape {
            kind: ShapeKind::Lambda,
            out: Some(*out),
            reads: [None, None, None],
            masked: mask.is_some(),
        },
        Node::LambdaZip { out, src, mask, .. } => OpShape {
            kind: ShapeKind::Lambda,
            out: Some(*out),
            reads: [src.out_index(), None, None],
            masked: mask.is_some(),
        },
        Node::Dot { x, y, ring, .. } => OpShape {
            kind: if *ring == RingTag::PlusTimes {
                ShapeKind::DotPlusTimes
            } else {
                ShapeKind::DotOther
            },
            out: None,
            reads: [x.out_index(), y.out_index(), None],
            masked: false,
        },
        Node::Reduce { x, mask, .. } => OpShape {
            kind: ShapeKind::Reduce,
            out: None,
            reads: [x.out_index(), None, None],
            masked: mask.is_some(),
        },
    }
}

/// Partitions the recorded pipeline nodes into a fused execution schedule.
pub(crate) fn fuse<T: Scalar>(nodes: &[Node<'_, T>], out_lens: &[usize]) -> Vec<Stage> {
    let shapes: Vec<OpShape> = nodes.iter().map(node_shape).collect();
    fuse_shapes(&shapes, out_lens)
}
