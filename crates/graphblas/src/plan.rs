//! Compile-once, run-many pipelines: reusable [`Plan`]s and a [`PlanCache`].
//!
//! A [`Pipeline`](crate::pipeline::Pipeline) borrows its operands while
//! recording, so its op graph lives at most as long as the vectors it
//! touches — a CG loop re-records (and re-fuses) the same iteration body on
//! every pass. A [`Plan`] removes that cost: operands are declared as
//! *slots* (dimensions only), the op graph is recorded once against the
//! slots, [`PlanBuilder::compile`] runs the same fusion pass in
//! [`crate::fusion`] to an immutable fused schedule, and every
//! [`Plan::run`] executes that schedule against freshly bound buffers:
//!
//! ```
//! use graphblas::{ctx, CsrMatrix, Sequential, Vector};
//!
//! let a = CsrMatrix::<f64>::from_triplets(2, 2, &[(0, 0, 2.0), (1, 1, 3.0)]).unwrap();
//!
//! // Record the op graph once, against slots instead of buffers.
//! let mut pb = ctx::<Sequential>().plan::<f64>();
//! let am = pb.matrix(2, 2);
//! let xs = pb.input(2);
//! let ys = pb.output(2);
//! let ap = pb.mxv(am, xs).into(ys);
//! let p_ap = pb.dot(xs, ap).result();
//! let plan = pb.compile(); // fuses into one SpMV-with-dot sweep
//!
//! // Replay it — per call only the bindings change, never the schedule.
//! let x = Vector::from_dense(vec![1.0, 2.0]);
//! let mut y = Vector::zeros(2);
//! let mut b = plan.bindings();
//! b.bind_matrix(plan.matrix_slot(0), &a)
//!     .bind_input(plan.input_slot(0), &x)
//!     .bind_output(plan.output_slot(0), &mut y);
//! let out = plan.run(&mut b).unwrap();
//! assert_eq!(out[p_ap], 1.0 * 2.0 + 2.0 * 6.0);
//! drop(b);
//! assert_eq!(y.as_slice(), &[2.0, 6.0]);
//! ```
//!
//! # Execution model
//!
//! `Plan::run` resolves each slot through a [`Bindings`] table and then
//! executes the fused stages through exactly the kernels
//! `Pipeline::finish` uses, so a replayed plan is **bit-identical** to the
//! freshly recorded pipeline and to eager execution (pinned by tests).
//! Scalars (CG's alpha/beta) enter as [`ScalarParam`] slots mutated with
//! [`Bindings::set`] between runs. The borrow checker gives replay the
//! same aliasing guarantees recording had: all bindings borrow for the
//! lifetime of the `Bindings` value, so an input and an output can never
//! name the same vector.
//!
//! # Caching
//!
//! [`PlanCache`] memoizes compiled plans under a caller-chosen `u64` key
//! (see [`plan_key`]) so hot paths skip both recording and fusion. Keys
//! should describe the op-graph *shape* — ops, masks, descriptors,
//! dimensions — never concrete buffers; rebinding handles re-put matrices
//! with identical dimensions, and a dimension change must be part of the
//! key (or the stale plan's `run` fails validation rather than corrupting
//! memory). [`Plan::structural_hash`] is that shape digest for a compiled
//! plan. Two caveats, both documented per method: closures recorded with
//! `transform` hash by arity and operand slots only, and a plan captures
//! its backend handle by value, so plans for a specific
//! [`Distributed`](crate::Distributed) cluster belong in a cache owned by
//! that cluster's user, not in [`PlanCache::global`].

use crate::container::matrix::CsrMatrix;
use crate::container::vector::Vector;
use crate::context::Exec;
use crate::descriptor::Descriptor;
use crate::error::{check_dims, GrbError, Result};
use crate::fusion::{fuse_shapes, OpShape, PlannedStage, ShapeKind, Stage};
use crate::ops::accum::{AccumWith, NoAccum};
use crate::ops::binary::{Divide, Max, Min, Minus, Plus, Times};
use crate::ops::scalar::Scalar;
use crate::ops::semiring::{MaxTimes, MinPlus, PlusTimes};
use crate::ops::unary::{Abs, AdditiveInverse, Identity, MultiplicativeInverse};
use crate::pipeline::{
    with_accum, with_binop, with_monoid, with_ring, with_unop, BinOpTag, MonoidTag, RingTag,
    TaggedBinOp, TaggedMonoid, TaggedRing, TaggedUnaryOp, UnaryOpTag,
};
use crate::util::UnsafeSlice;
use std::any::{Any, TypeId};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Slots
// ---------------------------------------------------------------------------

/// Names a matrix operand slot of a plan. Branded with the issuing
/// builder's id: passing it to another plan's bindings panics instead of
/// silently resolving to the wrong operand.
#[derive(Copy, Clone, Debug)]
pub struct MatSlot {
    plan: u64,
    idx: usize,
}

/// Names a read-only vector operand slot of a plan (branded, see
/// [`MatSlot`]).
#[derive(Copy, Clone, Debug)]
pub struct InSlot {
    plan: u64,
    idx: usize,
}

/// Names a mutable vector slot of a plan — recorded ops write it and may
/// read it in place (branded, see [`MatSlot`]).
#[derive(Copy, Clone, Debug)]
pub struct OutSlot {
    plan: u64,
    idx: usize,
}

/// Names a mask operand slot of a plan (branded, see [`MatSlot`]).
#[derive(Copy, Clone, Debug)]
pub struct MaskSlot {
    plan: u64,
    idx: usize,
}

/// Names a scalar parameter of a plan (CG's alpha/beta): recorded ops use
/// its value, and [`Bindings::set`] changes it between replays without
/// recompiling (branded, see [`MatSlot`]).
#[derive(Copy, Clone, Debug)]
pub struct ScalarParam {
    plan: u64,
    idx: usize,
}

/// Names the scalar result of a recorded `dot`/`reduce`/norm op; redeem it
/// against the [`PlanResults`] each [`Plan::run`] returns (branded, see
/// [`MatSlot`]).
#[derive(Copy, Clone, Debug)]
pub struct ScalarSlot {
    plan: u64,
    idx: usize,
}

/// A readable vector operand of a recorded plan op: an input slot or the
/// (possibly already written) contents of an output slot.
#[derive(Copy, Clone, Debug)]
pub enum PlanRead {
    /// A read-only input slot.
    In(InSlot),
    /// An output slot read as an operand.
    Out(OutSlot),
}

impl From<InSlot> for PlanRead {
    fn from(s: InSlot) -> Self {
        PlanRead::In(s)
    }
}

impl From<OutSlot> for PlanRead {
    fn from(s: OutSlot) -> Self {
        PlanRead::Out(s)
    }
}

/// A scalar operand of a recorded plan op: a value baked in at recording
/// time or a [`ScalarParam`] resolved at each run. Mostly constructed through
/// the `From` impls — pass a `T` or a `ScalarParam` wherever an
/// `impl Into<PlanScalar<T>>` is accepted.
#[derive(Copy, Clone, Debug)]
pub enum PlanScalar<T: Scalar> {
    /// A constant recorded into the plan.
    Const(T),
    /// A parameter slot read from the bindings at run time.
    Param(ScalarParam),
}

impl<T: Scalar> From<T> for PlanScalar<T> {
    fn from(v: T) -> Self {
        PlanScalar::Const(v)
    }
}

impl<T: Scalar> From<ScalarParam> for PlanScalar<T> {
    fn from(p: ScalarParam) -> Self {
        PlanScalar::Param(p)
    }
}

/// A resolved readable operand (slot index checked against the builder).
#[derive(Copy, Clone, Debug)]
enum PlanSrc {
    /// Index into the input-slot table.
    In(usize),
    /// Index into the output-slot table.
    Out(usize),
}

impl PlanSrc {
    fn out_index(self) -> Option<usize> {
        match self {
            PlanSrc::In(_) => None,
            PlanSrc::Out(o) => Some(o),
        }
    }
}

/// A resolved scalar operand.
#[derive(Copy, Clone, Debug)]
enum ScalarRef<T> {
    Const(T),
    Param(usize),
}

type F0<T> = Box<dyn Fn(usize, &mut T) + Send + Sync>;
type F1<T> = Box<dyn Fn(usize, &mut T, T) + Send + Sync>;
type F2<T> = Box<dyn Fn(usize, &mut T, T, T) + Send + Sync>;
type F3<T> = Box<dyn Fn(usize, &mut T, T, T, T) + Send + Sync>;

/// A recorded element-wise closure with zero to three zipped sources.
enum PlanFn<T> {
    F0(F0<T>),
    F1(PlanSrc, F1<T>),
    F2([PlanSrc; 2], F2<T>),
    F3([PlanSrc; 3], F3<T>),
}

/// One recorded plan op — the owned, `'static` mirror of the pipeline's
/// borrow-carrying `Node`.
enum PlanNode<T: Scalar> {
    Mxv {
        out: usize,
        a: usize,
        x: PlanSrc,
        mask: Option<usize>,
        desc: Descriptor,
        ring: RingTag,
        accum: Option<BinOpTag>,
    },
    Ewise {
        out: usize,
        x: PlanSrc,
        y: PlanSrc,
        mask: Option<usize>,
        desc: Descriptor,
        op: BinOpTag,
        scale: Option<(ScalarRef<T>, ScalarRef<T>)>,
        accum: Option<BinOpTag>,
    },
    Apply {
        out: usize,
        input: PlanSrc,
        mask: Option<usize>,
        desc: Descriptor,
        op: UnaryOpTag,
        accum: Option<BinOpTag>,
    },
    Axpy {
        out: usize,
        alpha: ScalarRef<T>,
        y: PlanSrc,
    },
    Lambda {
        out: usize,
        mask: Option<usize>,
        desc: Descriptor,
        f: PlanFn<T>,
    },
    Dot {
        sid: usize,
        x: PlanSrc,
        y: PlanSrc,
        ring: RingTag,
    },
    Reduce {
        sid: usize,
        x: PlanSrc,
        mask: Option<usize>,
        desc: Descriptor,
        monoid: MonoidTag,
    },
}

impl<T: Scalar> PlanNode<T> {
    /// Short kernel name for schedules and debugging (matches the
    /// pipeline's names so schedule tests read the same).
    fn name(&self) -> &'static str {
        match self {
            PlanNode::Mxv { .. } => "mxv",
            PlanNode::Ewise { .. } => "ewise",
            PlanNode::Apply { .. } => "apply",
            PlanNode::Axpy { .. } => "axpy",
            PlanNode::Lambda {
                f: PlanFn::F0(_), ..
            } => "transform",
            PlanNode::Lambda { .. } => "transform_zip",
            PlanNode::Dot { .. } => "dot",
            PlanNode::Reduce { .. } => "reduce",
        }
    }

    /// The fusion-relevant footprint of this op (see [`OpShape`]). Input
    /// slots are invisible to the pass for the same reason a pipeline's
    /// external borrows are: the borrow rules on [`Bindings`] keep a bound
    /// input from aliasing a bound output.
    fn shape(&self) -> OpShape {
        match self {
            PlanNode::Mxv {
                out,
                x,
                mask,
                desc,
                ring,
                accum,
                ..
            } => OpShape {
                kind: if mask.is_none()
                    && !desc.is_transposed()
                    && *ring == RingTag::PlusTimes
                    && accum.is_none()
                {
                    ShapeKind::MxvFusable
                } else {
                    ShapeKind::MxvOther
                },
                out: Some(*out),
                reads: [x.out_index(), None, None],
                masked: mask.is_some(),
            },
            PlanNode::Ewise {
                out, x, y, mask, ..
            } => OpShape {
                kind: ShapeKind::Ewise,
                out: Some(*out),
                reads: [x.out_index(), y.out_index(), None],
                masked: mask.is_some(),
            },
            PlanNode::Apply {
                out, input, mask, ..
            } => OpShape {
                kind: ShapeKind::Apply,
                out: Some(*out),
                reads: [input.out_index(), None, None],
                masked: mask.is_some(),
            },
            PlanNode::Axpy { out, y, .. } => OpShape {
                kind: ShapeKind::Axpy,
                out: Some(*out),
                reads: [y.out_index(), None, None],
                masked: false,
            },
            PlanNode::Lambda { out, mask, f, .. } => {
                let mut reads = [None, None, None];
                match f {
                    PlanFn::F0(_) => {}
                    PlanFn::F1(s, _) => reads[0] = s.out_index(),
                    PlanFn::F2(ss, _) => {
                        for (k, s) in ss.iter().enumerate() {
                            reads[k] = s.out_index();
                        }
                    }
                    PlanFn::F3(ss, _) => {
                        for (k, s) in ss.iter().enumerate() {
                            reads[k] = s.out_index();
                        }
                    }
                }
                OpShape {
                    kind: ShapeKind::Lambda,
                    out: Some(*out),
                    reads,
                    masked: mask.is_some(),
                }
            }
            PlanNode::Dot { x, y, ring, .. } => OpShape {
                kind: if *ring == RingTag::PlusTimes {
                    ShapeKind::DotPlusTimes
                } else {
                    ShapeKind::DotOther
                },
                out: None,
                reads: [x.out_index(), y.out_index(), None],
                masked: false,
            },
            PlanNode::Reduce { x, mask, .. } => OpShape {
                kind: ShapeKind::Reduce,
                out: None,
                reads: [x.out_index(), None, None],
                masked: mask.is_some(),
            },
        }
    }

    /// Feeds this op's structure (not its data) into a hasher.
    fn hash_structure<H: Hasher>(&self, h: &mut H) {
        match self {
            PlanNode::Mxv {
                out,
                a,
                x,
                mask,
                desc,
                ring,
                accum,
            } => {
                0u8.hash(h);
                out.hash(h);
                a.hash(h);
                hash_src(h, *x);
                mask.hash(h);
                hash_desc(h, *desc);
                (*ring as u8).hash(h);
                hash_binop_opt(h, *accum);
            }
            PlanNode::Ewise {
                out,
                x,
                y,
                mask,
                desc,
                op,
                scale,
                accum,
            } => {
                1u8.hash(h);
                out.hash(h);
                hash_src(h, *x);
                hash_src(h, *y);
                mask.hash(h);
                hash_desc(h, *desc);
                (*op as u8).hash(h);
                match scale {
                    None => 0u8.hash(h),
                    Some((a, b)) => {
                        1u8.hash(h);
                        hash_scalar(h, a);
                        hash_scalar(h, b);
                    }
                }
                hash_binop_opt(h, *accum);
            }
            PlanNode::Apply {
                out,
                input,
                mask,
                desc,
                op,
                accum,
            } => {
                2u8.hash(h);
                out.hash(h);
                hash_src(h, *input);
                mask.hash(h);
                hash_desc(h, *desc);
                (*op as u8).hash(h);
                hash_binop_opt(h, *accum);
            }
            PlanNode::Axpy { out, alpha, y } => {
                3u8.hash(h);
                out.hash(h);
                hash_scalar(h, alpha);
                hash_src(h, *y);
            }
            PlanNode::Lambda { out, mask, desc, f } => {
                4u8.hash(h);
                out.hash(h);
                mask.hash(h);
                hash_desc(h, *desc);
                // Closures hash by arity and operand slots only; see the
                // module docs' caching caveat.
                match f {
                    PlanFn::F0(_) => 0u8.hash(h),
                    PlanFn::F1(s, _) => {
                        1u8.hash(h);
                        hash_src(h, *s);
                    }
                    PlanFn::F2(ss, _) => {
                        2u8.hash(h);
                        for s in ss {
                            hash_src(h, *s);
                        }
                    }
                    PlanFn::F3(ss, _) => {
                        3u8.hash(h);
                        for s in ss {
                            hash_src(h, *s);
                        }
                    }
                }
            }
            PlanNode::Dot { sid, x, y, ring } => {
                5u8.hash(h);
                sid.hash(h);
                hash_src(h, *x);
                hash_src(h, *y);
                (*ring as u8).hash(h);
            }
            PlanNode::Reduce {
                sid,
                x,
                mask,
                desc,
                monoid,
            } => {
                6u8.hash(h);
                sid.hash(h);
                hash_src(h, *x);
                mask.hash(h);
                hash_desc(h, *desc);
                (*monoid as u8).hash(h);
            }
        }
    }
}

fn hash_src<H: Hasher>(h: &mut H, s: PlanSrc) {
    match s {
        PlanSrc::In(i) => {
            0u8.hash(h);
            i.hash(h);
        }
        PlanSrc::Out(o) => {
            1u8.hash(h);
            o.hash(h);
        }
    }
}

fn hash_desc<H: Hasher>(h: &mut H, d: Descriptor) {
    d.is_structural().hash(h);
    d.is_transposed().hash(h);
    d.is_mask_inverted().hash(h);
}

fn hash_binop_opt<H: Hasher>(h: &mut H, t: Option<BinOpTag>) {
    match t {
        None => 255u8.hash(h),
        Some(t) => (t as u8).hash(h),
    }
}

fn hash_scalar<T: Scalar, H: Hasher>(h: &mut H, s: &ScalarRef<T>) {
    match s {
        // `Scalar` has no `Hash` bound (floats), so constants hash through
        // their exact `Debug` rendering.
        ScalarRef::Const(v) => {
            0u8.hash(h);
            format!("{v:?}").hash(h);
        }
        ScalarRef::Param(i) => {
            1u8.hash(h);
            i.hash(h);
        }
    }
}

// ---------------------------------------------------------------------------
// The builder
// ---------------------------------------------------------------------------

/// Records an op graph against declared slots and compiles it into a
/// reusable [`Plan`]. Created by [`Ctx::plan`](crate::Ctx::plan); see the
/// [module docs](self).
///
/// The fluent recorders mirror [`Pipeline`](crate::pipeline::Pipeline)'s —
/// `mxv`, `vxm`, `ewise`, `apply`, `axpy`, `transform`, `dot`, `reduce`,
/// `norm2_squared` with the same mask/descriptor/ring/accumulator
/// modifiers — but every vector operand is a slot and every tunable scalar
/// may be a [`ScalarParam`].
pub struct PlanBuilder<T: Scalar, E: Exec> {
    /// Process-unique id branding this builder's slots (and its plan's).
    id: u64,
    exec: E,
    defaults: Descriptor,
    nodes: Vec<PlanNode<T>>,
    /// Declared `(nrows, ncols)` of each matrix slot.
    mats: Vec<(usize, usize)>,
    /// Declared length of each input slot.
    ins: Vec<usize>,
    /// Declared length of each output slot.
    outs: Vec<usize>,
    /// Declared length of each mask slot.
    masks: Vec<usize>,
    /// Default value of each scalar parameter.
    params: Vec<T>,
    scalars: usize,
}

impl<T: Scalar, E: Exec> PlanBuilder<T, E> {
    pub(crate) fn new(exec: E, defaults: Descriptor) -> PlanBuilder<T, E> {
        static NEXT_ID: AtomicU64 = AtomicU64::new(0);
        PlanBuilder {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            exec,
            defaults,
            nodes: Vec::new(),
            mats: Vec::new(),
            ins: Vec::new(),
            outs: Vec::new(),
            masks: Vec::new(),
            params: Vec::new(),
            scalars: 0,
        }
    }

    /// Number of operations recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Declares a matrix operand slot with the given dimensions.
    pub fn matrix(&mut self, nrows: usize, ncols: usize) -> MatSlot {
        let idx = self.mats.len();
        self.mats.push((nrows, ncols));
        MatSlot { plan: self.id, idx }
    }

    /// Declares a read-only vector operand slot of the given length.
    pub fn input(&mut self, len: usize) -> InSlot {
        let idx = self.ins.len();
        self.ins.push(len);
        InSlot { plan: self.id, idx }
    }

    /// Declares a mutable vector slot of the given length — the target of
    /// recorded writes, readable in place by later (or in-place) ops.
    pub fn output(&mut self, len: usize) -> OutSlot {
        let idx = self.outs.len();
        self.outs.push(len);
        OutSlot { plan: self.id, idx }
    }

    /// Declares a mask operand slot of the given length.
    pub fn mask(&mut self, len: usize) -> MaskSlot {
        let idx = self.masks.len();
        self.masks.push(len);
        MaskSlot { plan: self.id, idx }
    }

    /// Declares a scalar parameter with a default value; replays override
    /// it with [`Bindings::set`].
    pub fn param(&mut self, default: T) -> ScalarParam {
        let idx = self.params.len();
        self.params.push(default);
        ScalarParam { plan: self.id, idx }
    }

    fn check_mat(&self, s: MatSlot) -> usize {
        assert!(
            s.plan == self.id && s.idx < self.mats.len(),
            "MatSlot does not belong to this plan"
        );
        s.idx
    }

    fn check_out(&self, s: OutSlot) -> usize {
        assert!(
            s.plan == self.id && s.idx < self.outs.len(),
            "OutSlot does not belong to this plan"
        );
        s.idx
    }

    fn check_mask(&self, s: MaskSlot) -> usize {
        assert!(
            s.plan == self.id && s.idx < self.masks.len(),
            "MaskSlot does not belong to this plan"
        );
        s.idx
    }

    fn resolve(&self, r: PlanRead) -> PlanSrc {
        match r {
            PlanRead::In(s) => {
                assert!(
                    s.plan == self.id && s.idx < self.ins.len(),
                    "InSlot does not belong to this plan"
                );
                PlanSrc::In(s.idx)
            }
            PlanRead::Out(s) => PlanSrc::Out(self.check_out(s)),
        }
    }

    fn resolve_scalar(&self, s: PlanScalar<T>) -> ScalarRef<T> {
        match s {
            PlanScalar::Const(v) => ScalarRef::Const(v),
            PlanScalar::Param(p) => {
                assert!(
                    p.plan == self.id && p.idx < self.params.len(),
                    "ScalarParam does not belong to this plan"
                );
                ScalarRef::Param(p.idx)
            }
        }
    }

    /// Declared length of a readable operand.
    fn src_len(&self, s: PlanSrc) -> usize {
        match s {
            PlanSrc::In(i) => self.ins[i],
            PlanSrc::Out(o) => self.outs[o],
        }
    }

    fn new_scalar(&mut self) -> ScalarSlot {
        let idx = self.scalars;
        self.scalars += 1;
        ScalarSlot { plan: self.id, idx }
    }

    /// Starts recording `y = A ⊕.⊗ x` (default ring: `PlusTimes`).
    pub fn mxv(&mut self, a: MatSlot, x: impl Into<PlanRead>) -> PlanMxv<'_, T, E> {
        let a = self.check_mat(a);
        let x = self.resolve(x.into());
        let desc = self.defaults;
        PlanMxv {
            pb: self,
            a,
            x,
            mask: None,
            desc,
            ring: RingTag::PlusTimes,
            accum: None,
        }
    }

    /// Starts recording `y = xᵀA` — an mxv with the transposition
    /// pre-toggled, exactly like the eager `vxm` builder.
    pub fn vxm(&mut self, x: impl Into<PlanRead>, a: MatSlot) -> PlanMxv<'_, T, E> {
        let mut b = self.mxv(a, x);
        b.desc = b.desc.toggled_transpose();
        b
    }

    /// Starts recording `w = Op(x, y)` element-wise (default op: `Plus`).
    pub fn ewise(&mut self, x: impl Into<PlanRead>, y: impl Into<PlanRead>) -> PlanEwise<'_, T, E> {
        let x = self.resolve(x.into());
        let y = self.resolve(y.into());
        let desc = self.defaults;
        PlanEwise {
            pb: self,
            x,
            y,
            mask: None,
            desc,
            op: BinOpTag::Plus,
            scale: None,
            accum: None,
        }
    }

    /// Starts recording `out = Op(input)` (default op: `Identity`).
    pub fn apply(&mut self, input: impl Into<PlanRead>) -> PlanApply<'_, T, E> {
        let input = self.resolve(input.into());
        let desc = self.defaults;
        PlanApply {
            pb: self,
            input,
            mask: None,
            desc,
            op: UnaryOpTag::Identity,
            accum: None,
        }
    }

    /// Records `x = x + α·y`, where `α` is a constant or a
    /// [`ScalarParam`]. Returns `x` for operand chaining.
    pub fn axpy(
        &mut self,
        x: OutSlot,
        alpha: impl Into<PlanScalar<T>>,
        y: impl Into<PlanRead>,
    ) -> OutSlot {
        let out = self.check_out(x);
        let alpha = self.resolve_scalar(alpha.into());
        let y = self.resolve(y.into());
        assert!(
            y.out_index() != Some(out),
            "axpy operand may not alias its output"
        );
        assert!(
            self.src_len(y) == self.outs[out],
            "axpy operand length must match its output slot"
        );
        self.nodes.push(PlanNode::Axpy { out, alpha, y });
        x
    }

    /// Starts recording an in-place indexed update of `out` (the eager
    /// `transform` / `eWiseLambda`). Closures recorded here must be
    /// `'static`: values they read per index enter through
    /// [`PlanTransform::zip`] sources, not captures.
    pub fn transform(&mut self, out: OutSlot) -> PlanTransform<'_, T, E> {
        let out = self.check_out(out);
        let desc = self.defaults;
        PlanTransform {
            pb: self,
            out,
            mask: None,
            desc,
        }
    }

    /// Starts recording `⟨x, y⟩` (default ring: `PlusTimes`).
    pub fn dot(&mut self, x: impl Into<PlanRead>, y: impl Into<PlanRead>) -> PlanDot<'_, T, E> {
        let x = self.resolve(x.into());
        let y = self.resolve(y.into());
        PlanDot {
            pb: self,
            x,
            y,
            ring: RingTag::PlusTimes,
        }
    }

    /// Records `‖x‖² = ⟨x, x⟩` over the arithmetic semiring.
    pub fn norm2_squared(&mut self, x: impl Into<PlanRead>) -> ScalarSlot {
        let x = self.resolve(x.into());
        let h = self.new_scalar();
        self.nodes.push(PlanNode::Dot {
            sid: h.idx,
            x,
            y: x,
            ring: RingTag::PlusTimes,
        });
        h
    }

    /// Starts recording a fold of `x` over a monoid (default: `Plus`).
    pub fn reduce(&mut self, x: impl Into<PlanRead>) -> PlanReduce<'_, T, E> {
        let x = self.resolve(x.into());
        let desc = self.defaults;
        PlanReduce {
            pb: self,
            x,
            mask: None,
            desc,
            monoid: MonoidTag::Plus,
        }
    }

    /// Digest of the recorded op-graph *shape*: ops, tags, masks,
    /// descriptors, slot wiring, dimension signature, and the scalar/backend
    /// types — never concrete buffers or parameter values. Two builders
    /// that recorded the same graph over the same-shaped slots agree.
    fn structural_hash(&self) -> u64 {
        let mut h = DefaultHasher::new();
        std::any::type_name::<T>().hash(&mut h);
        std::any::type_name::<E>().hash(&mut h);
        self.mats.hash(&mut h);
        self.ins.hash(&mut h);
        self.outs.hash(&mut h);
        self.masks.hash(&mut h);
        self.params.len().hash(&mut h);
        self.scalars.hash(&mut h);
        for node in &self.nodes {
            node.hash_structure(&mut h);
        }
        h.finish()
    }

    /// Runs the fusion pass once and freezes the schedule into an
    /// immutable, reusable [`Plan`].
    pub fn compile(self) -> Plan<T, E> {
        let _span = obs::span_enter("plan.compile", "plan");
        let shapes: Vec<OpShape> = self.nodes.iter().map(PlanNode::shape).collect();
        let stages = fuse_shapes(&shapes, &self.outs);
        let hash = self.structural_hash();
        Plan {
            id: self.id,
            exec: self.exec,
            nodes: self.nodes,
            stages,
            mats: self.mats,
            ins: self.ins,
            outs: self.outs,
            masks: self.masks,
            params: self.params,
            scalars: self.scalars,
            hash,
        }
    }
}

// ---------------------------------------------------------------------------
// Recording builders
// ---------------------------------------------------------------------------

/// Records `y⟨mask⟩ = y ⊙? (A ⊕.⊗ x)` (see [`PlanBuilder::mxv`]).
#[must_use = "recording builders do nothing until the terminal `.into(..)`"]
pub struct PlanMxv<'p, T: Scalar, E: Exec> {
    pb: &'p mut PlanBuilder<T, E>,
    a: usize,
    x: PlanSrc,
    mask: Option<usize>,
    desc: Descriptor,
    ring: RingTag,
    accum: Option<BinOpTag>,
}

impl<T: Scalar, E: Exec> PlanMxv<'_, T, E> {
    /// Computes only the output positions selected by `mask`.
    pub fn mask(mut self, mask: MaskSlot) -> Self {
        self.mask = Some(self.pb.check_mask(mask));
        self
    }

    /// Interprets the mask structurally (pattern only, values ignored).
    pub fn structural(mut self) -> Self {
        self.desc = self.desc.with(Descriptor::STRUCTURAL);
        self
    }

    /// Selects where the mask does **not**.
    pub fn invert_mask(mut self) -> Self {
        self.desc = self.desc.with(Descriptor::INVERT_MASK);
        self
    }

    /// Toggles use of the matrix's transpose.
    pub fn transpose(mut self) -> Self {
        self.desc = self.desc.toggled_transpose();
        self
    }

    /// ORs explicit descriptor flags into the builder state.
    pub fn descriptor(mut self, desc: Descriptor) -> Self {
        self.desc = self.desc.with(desc);
        self
    }

    /// Switches the semiring (default: `PlusTimes`).
    pub fn ring<R: TaggedRing>(mut self, _ring: R) -> Self {
        self.ring = R::TAG;
        self
    }

    /// Accumulates into the output through `Op` instead of overwriting.
    pub fn accum<Op: TaggedBinOp>(mut self, _op: Op) -> Self {
        self.accum = Some(Op::TAG);
        self
    }

    /// Records the operation writing into `y`, returning the slot back for
    /// operand chaining.
    pub fn into(self, y: OutSlot) -> OutSlot {
        let out = self.pb.check_out(y);
        assert!(
            self.x.out_index() != Some(out),
            "mxv input may not alias its output"
        );
        self.pb.nodes.push(PlanNode::Mxv {
            out,
            a: self.a,
            x: self.x,
            mask: self.mask,
            desc: self.desc,
            ring: self.ring,
            accum: self.accum,
        });
        y
    }
}

/// Records `w⟨mask⟩ = w ⊙? Op(α·x, β·y)` (see [`PlanBuilder::ewise`]).
#[must_use = "recording builders do nothing until the terminal `.into(..)`"]
pub struct PlanEwise<'p, T: Scalar, E: Exec> {
    pb: &'p mut PlanBuilder<T, E>,
    x: PlanSrc,
    y: PlanSrc,
    mask: Option<usize>,
    desc: Descriptor,
    op: BinOpTag,
    scale: Option<(ScalarRef<T>, ScalarRef<T>)>,
    accum: Option<BinOpTag>,
}

impl<T: Scalar, E: Exec> PlanEwise<'_, T, E> {
    /// Computes only the output positions selected by `mask`.
    pub fn mask(mut self, mask: MaskSlot) -> Self {
        self.mask = Some(self.pb.check_mask(mask));
        self
    }

    /// Interprets the mask structurally (pattern only, values ignored).
    pub fn structural(mut self) -> Self {
        self.desc = self.desc.with(Descriptor::STRUCTURAL);
        self
    }

    /// Selects where the mask does **not**.
    pub fn invert_mask(mut self) -> Self {
        self.desc = self.desc.with(Descriptor::INVERT_MASK);
        self
    }

    /// Scales the operands before the operator: `Op(α·x, β·y)`; each
    /// factor is a constant or a [`ScalarParam`].
    pub fn scaled(
        mut self,
        alpha: impl Into<PlanScalar<T>>,
        beta: impl Into<PlanScalar<T>>,
    ) -> Self {
        let alpha = self.pb.resolve_scalar(alpha.into());
        let beta = self.pb.resolve_scalar(beta.into());
        self.scale = Some((alpha, beta));
        self
    }

    /// Switches the element-wise operator (default: `Plus`).
    pub fn op<Op: TaggedBinOp>(mut self, _op: Op) -> Self {
        self.op = Op::TAG;
        self
    }

    /// Accumulates into the output through `AccOp` instead of overwriting.
    pub fn accum<AccOp: TaggedBinOp>(mut self, _op: AccOp) -> Self {
        self.accum = Some(AccOp::TAG);
        self
    }

    /// Records the operation writing into `w`, returning the slot back for
    /// operand chaining.
    pub fn into(self, w: OutSlot) -> OutSlot {
        let out = self.pb.check_out(w);
        assert!(
            self.x.out_index() != Some(out) && self.y.out_index() != Some(out),
            "ewise operands may not alias the output"
        );
        self.pb.nodes.push(PlanNode::Ewise {
            out,
            x: self.x,
            y: self.y,
            mask: self.mask,
            desc: self.desc,
            op: self.op,
            scale: self.scale,
            accum: self.accum,
        });
        w
    }
}

/// Records `out⟨mask⟩ = out ⊙? Op(input)` (see [`PlanBuilder::apply`]).
#[must_use = "recording builders do nothing until the terminal `.into(..)`"]
pub struct PlanApply<'p, T: Scalar, E: Exec> {
    pb: &'p mut PlanBuilder<T, E>,
    input: PlanSrc,
    mask: Option<usize>,
    desc: Descriptor,
    op: UnaryOpTag,
    accum: Option<BinOpTag>,
}

impl<T: Scalar, E: Exec> PlanApply<'_, T, E> {
    /// Computes only the output positions selected by `mask`.
    pub fn mask(mut self, mask: MaskSlot) -> Self {
        self.mask = Some(self.pb.check_mask(mask));
        self
    }

    /// Interprets the mask structurally (pattern only, values ignored).
    pub fn structural(mut self) -> Self {
        self.desc = self.desc.with(Descriptor::STRUCTURAL);
        self
    }

    /// Selects where the mask does **not**.
    pub fn invert_mask(mut self) -> Self {
        self.desc = self.desc.with(Descriptor::INVERT_MASK);
        self
    }

    /// Switches the unary operator (default: `Identity`).
    pub fn op<Op: TaggedUnaryOp>(mut self, _op: Op) -> Self {
        self.op = Op::TAG;
        self
    }

    /// Accumulates into the output through `AccOp` instead of overwriting.
    pub fn accum<AccOp: TaggedBinOp>(mut self, _op: AccOp) -> Self {
        self.accum = Some(AccOp::TAG);
        self
    }

    /// Records the operation writing into `out`, returning the slot back
    /// for operand chaining.
    pub fn into(self, out_slot: OutSlot) -> OutSlot {
        let out = self.pb.check_out(out_slot);
        assert!(
            self.input.out_index() != Some(out),
            "apply input may not alias its output"
        );
        self.pb.nodes.push(PlanNode::Apply {
            out,
            input: self.input,
            mask: self.mask,
            desc: self.desc,
            op: self.op,
            accum: self.accum,
        });
        out_slot
    }
}

/// Records an in-place indexed update (see [`PlanBuilder::transform`]).
#[must_use = "recording builders do nothing until the terminal `.apply(f)`"]
pub struct PlanTransform<'p, T: Scalar, E: Exec> {
    pb: &'p mut PlanBuilder<T, E>,
    out: usize,
    mask: Option<usize>,
    desc: Descriptor,
}

impl<'p, T: Scalar, E: Exec> PlanTransform<'p, T, E> {
    /// Updates only the positions selected by `mask`.
    pub fn mask(mut self, mask: MaskSlot) -> Self {
        self.mask = Some(self.pb.check_mask(mask));
        self
    }

    /// Interprets the mask structurally (pattern only, values ignored).
    pub fn structural(mut self) -> Self {
        self.desc = self.desc.with(Descriptor::STRUCTURAL);
        self
    }

    /// Selects where the mask does **not**.
    pub fn invert_mask(mut self) -> Self {
        self.desc = self.desc.with(Descriptor::INVERT_MASK);
        self
    }

    /// Pairs the update with a vector read at the same index: the terminal
    /// closure receives `(i, &mut out[i], src[i])`. Chain up to three
    /// sources — this is how a `'static` plan closure reads other slots.
    pub fn zip(self, src: impl Into<PlanRead>) -> PlanTransformZip1<'p, T, E> {
        let src = self.pb.resolve(src.into());
        check_zip(self.pb, self.out, src);
        PlanTransformZip1 {
            pb: self.pb,
            out: self.out,
            srcs: [src],
            mask: self.mask,
            desc: self.desc,
        }
    }

    /// Records `f(i, &mut out[i])` at every selected index.
    pub fn apply(self, f: impl Fn(usize, &mut T) + Send + Sync + 'static) -> OutSlot {
        let out = self.out;
        self.pb.nodes.push(PlanNode::Lambda {
            out,
            mask: self.mask,
            desc: self.desc,
            f: PlanFn::F0(Box::new(f)),
        });
        OutSlot {
            plan: self.pb.id,
            idx: out,
        }
    }
}

/// Asserts a zip source is legal: it may not alias the transform output,
/// and (unlike the pipeline, whose buffers exist at record time) its
/// declared length must match the output's so replay can never index out
/// of bounds.
fn check_zip<T: Scalar, E: Exec>(pb: &PlanBuilder<T, E>, out: usize, src: PlanSrc) {
    assert!(
        src.out_index() != Some(out),
        "zip source may not alias the transform output"
    );
    assert!(
        pb.src_len(src) == pb.outs[out],
        "zip source length must match the transform output"
    );
}

/// Records an indexed update reading one paired source (see
/// [`PlanTransform::zip`]).
#[must_use = "recording builders do nothing until the terminal `.apply(f)`"]
pub struct PlanTransformZip1<'p, T: Scalar, E: Exec> {
    pb: &'p mut PlanBuilder<T, E>,
    out: usize,
    srcs: [PlanSrc; 1],
    mask: Option<usize>,
    desc: Descriptor,
}

impl<'p, T: Scalar, E: Exec> PlanTransformZip1<'p, T, E> {
    /// Adds a second zipped source.
    pub fn zip(self, src: impl Into<PlanRead>) -> PlanTransformZip2<'p, T, E> {
        let src = self.pb.resolve(src.into());
        check_zip(self.pb, self.out, src);
        PlanTransformZip2 {
            pb: self.pb,
            out: self.out,
            srcs: [self.srcs[0], src],
            mask: self.mask,
            desc: self.desc,
        }
    }

    /// Records `f(i, &mut out[i], src[i])` at every selected index.
    pub fn apply(self, f: impl Fn(usize, &mut T, T) + Send + Sync + 'static) -> OutSlot {
        let out = self.out;
        self.pb.nodes.push(PlanNode::Lambda {
            out,
            mask: self.mask,
            desc: self.desc,
            f: PlanFn::F1(self.srcs[0], Box::new(f)),
        });
        OutSlot {
            plan: self.pb.id,
            idx: out,
        }
    }
}

/// Records an indexed update reading two paired sources (see
/// [`PlanTransform::zip`]).
#[must_use = "recording builders do nothing until the terminal `.apply(f)`"]
pub struct PlanTransformZip2<'p, T: Scalar, E: Exec> {
    pb: &'p mut PlanBuilder<T, E>,
    out: usize,
    srcs: [PlanSrc; 2],
    mask: Option<usize>,
    desc: Descriptor,
}

impl<'p, T: Scalar, E: Exec> PlanTransformZip2<'p, T, E> {
    /// Adds a third zipped source.
    pub fn zip(self, src: impl Into<PlanRead>) -> PlanTransformZip3<'p, T, E> {
        let src = self.pb.resolve(src.into());
        check_zip(self.pb, self.out, src);
        PlanTransformZip3 {
            pb: self.pb,
            out: self.out,
            srcs: [self.srcs[0], self.srcs[1], src],
            mask: self.mask,
            desc: self.desc,
        }
    }

    /// Records `f(i, &mut out[i], src1[i], src2[i])` at every selected
    /// index.
    pub fn apply(self, f: impl Fn(usize, &mut T, T, T) + Send + Sync + 'static) -> OutSlot {
        let out = self.out;
        self.pb.nodes.push(PlanNode::Lambda {
            out,
            mask: self.mask,
            desc: self.desc,
            f: PlanFn::F2(self.srcs, Box::new(f)),
        });
        OutSlot {
            plan: self.pb.id,
            idx: out,
        }
    }
}

/// Records an indexed update reading three paired sources (see
/// [`PlanTransform::zip`]).
#[must_use = "recording builders do nothing until the terminal `.apply(f)`"]
pub struct PlanTransformZip3<'p, T: Scalar, E: Exec> {
    pb: &'p mut PlanBuilder<T, E>,
    out: usize,
    srcs: [PlanSrc; 3],
    mask: Option<usize>,
    desc: Descriptor,
}

impl<T: Scalar, E: Exec> PlanTransformZip3<'_, T, E> {
    /// Records `f(i, &mut out[i], src1[i], src2[i], src3[i])` at every
    /// selected index.
    pub fn apply(self, f: impl Fn(usize, &mut T, T, T, T) + Send + Sync + 'static) -> OutSlot {
        let out = self.out;
        self.pb.nodes.push(PlanNode::Lambda {
            out,
            mask: self.mask,
            desc: self.desc,
            f: PlanFn::F3(self.srcs, Box::new(f)),
        });
        OutSlot {
            plan: self.pb.id,
            idx: out,
        }
    }
}

/// Records `⟨x, y⟩` (see [`PlanBuilder::dot`]).
#[must_use = "recording builders do nothing until the terminal `.result()`"]
pub struct PlanDot<'p, T: Scalar, E: Exec> {
    pb: &'p mut PlanBuilder<T, E>,
    x: PlanSrc,
    y: PlanSrc,
    ring: RingTag,
}

impl<T: Scalar, E: Exec> PlanDot<'_, T, E> {
    /// Switches the semiring (default: `PlusTimes`).
    pub fn ring<R: TaggedRing>(mut self, _ring: R) -> Self {
        self.ring = R::TAG;
        self
    }

    /// Records the dot product, returning the slot of its result.
    pub fn result(self) -> ScalarSlot {
        let h = self.pb.new_scalar();
        self.pb.nodes.push(PlanNode::Dot {
            sid: h.idx,
            x: self.x,
            y: self.y,
            ring: self.ring,
        });
        h
    }
}

/// Records a monoid fold (see [`PlanBuilder::reduce`]).
#[must_use = "recording builders do nothing until the terminal `.result()`"]
pub struct PlanReduce<'p, T: Scalar, E: Exec> {
    pb: &'p mut PlanBuilder<T, E>,
    x: PlanSrc,
    mask: Option<usize>,
    desc: Descriptor,
    monoid: MonoidTag,
}

impl<T: Scalar, E: Exec> PlanReduce<'_, T, E> {
    /// Folds only the positions selected by `mask`.
    pub fn mask(mut self, mask: MaskSlot) -> Self {
        self.mask = Some(self.pb.check_mask(mask));
        self
    }

    /// Interprets the mask structurally (pattern only, values ignored).
    pub fn structural(mut self) -> Self {
        self.desc = self.desc.with(Descriptor::STRUCTURAL);
        self
    }

    /// Selects where the mask does **not**.
    pub fn invert_mask(mut self) -> Self {
        self.desc = self.desc.with(Descriptor::INVERT_MASK);
        self
    }

    /// Switches the monoid (default: `Plus`).
    pub fn monoid<M: TaggedMonoid>(mut self, _monoid: M) -> Self {
        self.monoid = M::TAG;
        self
    }

    /// Records the fold, returning the slot of its result.
    pub fn result(self) -> ScalarSlot {
        let h = self.pb.new_scalar();
        self.pb.nodes.push(PlanNode::Reduce {
            sid: h.idx,
            x: self.x,
            mask: self.mask,
            desc: self.desc,
            monoid: self.monoid,
        });
        h
    }
}

// ---------------------------------------------------------------------------
// The compiled plan
// ---------------------------------------------------------------------------

/// A compiled, immutable, reusable fused schedule — the product of
/// [`PlanBuilder::compile`]. Replay it any number of times via
/// [`Plan::run`] with fresh [`Bindings`]; see the [module docs](self).
///
/// A plan captures its backend handle by value. For unit backends
/// (`Sequential`, `Parallel`) any cache may share it process-wide; a plan
/// compiled for a specific [`Distributed`](crate::Distributed) cluster
/// runs on *that* cluster, so cache it next to the cluster it belongs to.
pub struct Plan<T: Scalar, E: Exec> {
    /// Brand shared with the builder's slots and every `Bindings`.
    id: u64,
    exec: E,
    nodes: Vec<PlanNode<T>>,
    stages: Vec<Stage>,
    mats: Vec<(usize, usize)>,
    ins: Vec<usize>,
    outs: Vec<usize>,
    masks: Vec<usize>,
    params: Vec<T>,
    scalars: usize,
    hash: u64,
}

impl<T: Scalar, E: Exec> Plan<T, E> {
    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the plan records no operations.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The shape digest computed at compile time (see the module docs'
    /// caching section for what it does and does not cover).
    pub fn structural_hash(&self) -> u64 {
        self.hash
    }

    /// The fused schedule, for tests, benchmarks and debugging.
    pub fn schedule(&self) -> Vec<PlannedStage> {
        self.stages
            .iter()
            .map(|s| s.describe_by(|i| self.nodes[i].name()))
            .collect()
    }

    /// The `i`-th declared matrix slot (declaration order). Slot accessors
    /// exist so a consumer that got this plan from a [`PlanCache`] hit —
    /// and therefore never saw the builder — can still bind operands.
    pub fn matrix_slot(&self, i: usize) -> MatSlot {
        assert!(i < self.mats.len(), "matrix slot index out of range");
        MatSlot {
            plan: self.id,
            idx: i,
        }
    }

    /// The `i`-th declared input slot (declaration order).
    pub fn input_slot(&self, i: usize) -> InSlot {
        assert!(i < self.ins.len(), "input slot index out of range");
        InSlot {
            plan: self.id,
            idx: i,
        }
    }

    /// The `i`-th declared output slot (declaration order).
    pub fn output_slot(&self, i: usize) -> OutSlot {
        assert!(i < self.outs.len(), "output slot index out of range");
        OutSlot {
            plan: self.id,
            idx: i,
        }
    }

    /// The `i`-th declared mask slot (declaration order).
    pub fn mask_slot(&self, i: usize) -> MaskSlot {
        assert!(i < self.masks.len(), "mask slot index out of range");
        MaskSlot {
            plan: self.id,
            idx: i,
        }
    }

    /// The `i`-th declared scalar parameter (declaration order).
    pub fn param(&self, i: usize) -> ScalarParam {
        assert!(i < self.params.len(), "scalar parameter index out of range");
        ScalarParam {
            plan: self.id,
            idx: i,
        }
    }

    /// The `i`-th recorded scalar result (recording order).
    pub fn scalar(&self, i: usize) -> ScalarSlot {
        assert!(i < self.scalars, "scalar result index out of range");
        ScalarSlot {
            plan: self.id,
            idx: i,
        }
    }

    /// An empty bindings table for this plan: every slot unbound, every
    /// parameter at its declared default.
    pub fn bindings<'b>(&self) -> Bindings<'b, T> {
        Bindings {
            plan: self.id,
            mats: vec![None; self.mats.len()],
            ins: vec![None; self.ins.len()],
            masks: vec![None; self.masks.len()],
            outs: vec![None; self.outs.len()],
            params: self.params.clone(),
            _borrows: PhantomData,
        }
    }

    /// Validates the bindings and executes the fused schedule against
    /// them. Every declared slot must be bound, with dimensions matching
    /// the declaration — that is the whole invalidation rule: a plan can
    /// never silently run against buffers of the wrong shape. On error,
    /// already-executed stages have taken effect.
    pub fn run(&self, b: &mut Bindings<'_, T>) -> Result<PlanResults<T>> {
        let _span = obs::span_enter("plan.run", "plan");
        assert!(b.plan == self.id, "Bindings do not belong to this plan");
        self.validate(b)?;
        let mut scalars = vec![T::ZERO; self.scalars];
        for stage in &self.stages {
            self.run_stage(b, stage, &mut scalars)?;
        }
        Ok(PlanResults {
            plan_id: self.id,
            values: scalars,
        })
    }

    fn validate(&self, b: &Bindings<'_, T>) -> Result<()> {
        fn unbound(what: &str, i: usize) -> GrbError {
            GrbError::InvalidInput(format!("plan: {what} slot {i} is unbound"))
        }
        for (i, &(nrows, ncols)) in self.mats.iter().enumerate() {
            let a = b.mats[i].ok_or_else(|| unbound("matrix", i))?;
            check_dims("plan", "matrix rows vs declaration", nrows, a.nrows())?;
            check_dims("plan", "matrix cols vs declaration", ncols, a.ncols())?;
        }
        for (i, &len) in self.ins.iter().enumerate() {
            let v = b.ins[i].ok_or_else(|| unbound("input", i))?;
            check_dims("plan", "input length vs declaration", len, v.len())?;
        }
        for (i, &len) in self.masks.iter().enumerate() {
            let m = b.masks[i].ok_or_else(|| unbound("mask", i))?;
            check_dims("plan", "mask length vs declaration", len, m.len())?;
        }
        for (i, &len) in self.outs.iter().enumerate() {
            let ptr = b.outs[i].ok_or_else(|| unbound("output", i))?;
            // SAFETY: `Bindings` holds each output's `&'a mut` exclusively;
            // no other reference exists while we only measure its length.
            let v = unsafe { &*ptr };
            check_dims("plan", "output length vs declaration", len, v.len())?;
        }
        Ok(())
    }

    // -- execution ----------------------------------------------------------

    /// Reborrows a bound output.
    ///
    /// # Safety
    ///
    /// The caller must not hold any other reference to the same slot for
    /// the returned lifetime. Record-time assertions guarantee an op's
    /// inputs never name its own output slot; distinct slots never alias
    /// because each is bound from a distinct `&'a mut`.
    #[allow(clippy::mut_from_ref)]
    unsafe fn out_mut<'s>(&self, b: &'s Bindings<'_, T>, idx: usize) -> &'s mut Vector<T> {
        let ptr = b.outs[idx].expect("validated before execution");
        unsafe { &mut *ptr }
    }

    fn src_vec<'s>(&self, b: &'s Bindings<'_, T>, s: PlanSrc) -> &'s Vector<T> {
        match s {
            PlanSrc::In(i) => b.ins[i].expect("validated before execution"),
            // SAFETY: shared reborrow of a bound output; ops that hold an
            // exclusive reborrow of the same slot are never executed while
            // this one is live (record-time assertions).
            PlanSrc::Out(o) => unsafe { &*b.outs[o].expect("validated before execution") },
        }
    }

    fn mask_vec<'s>(&self, b: &'s Bindings<'_, T>, m: Option<usize>) -> Option<&'s Vector<bool>> {
        m.map(|i| b.masks[i].expect("validated before execution"))
    }

    fn mat<'s>(&self, b: &'s Bindings<'_, T>, a: usize) -> &'s CsrMatrix<T> {
        b.mats[a].expect("validated before execution")
    }

    fn scalar_val(&self, b: &Bindings<'_, T>, s: &ScalarRef<T>) -> T {
        match s {
            ScalarRef::Const(v) => *v,
            ScalarRef::Param(i) => b.params[*i],
        }
    }

    fn run_stage(&self, b: &Bindings<'_, T>, stage: &Stage, scalars: &mut [T]) -> Result<()> {
        match stage {
            Stage::Single(i) => self.run_node(b, &self.nodes[*i], scalars),
            Stage::SpmvDot { mxv, dot } => self.run_spmv_dot(b, *mxv, *dot, scalars),
            Stage::AxpyNorm { axpy, dot } => self.run_axpy_norm(b, *axpy, *dot, scalars),
            Stage::Loop(run) => self.run_fused_loop(b, run),
        }
    }

    fn run_node(&self, b: &Bindings<'_, T>, node: &PlanNode<T>, scalars: &mut [T]) -> Result<()> {
        let exec = self.exec;
        match node {
            PlanNode::Mxv {
                out,
                a,
                x,
                mask,
                desc,
                ring,
                accum,
            } => {
                let a = self.mat(b, *a);
                let x = self.src_vec(b, *x);
                let mask = self.mask_vec(b, *mask);
                // SAFETY: record-time assertion — `x` never names `out`.
                let y = unsafe { self.out_mut(b, *out) };
                with_ring!(*ring, R => with_accum!(*accum, A =>
                    exec.run_mxv::<T, R, A>(y, mask, *desc, a, x)))
            }
            PlanNode::Ewise {
                out,
                x,
                y,
                mask,
                desc,
                op,
                scale,
                accum,
            } => {
                let xs = self.src_vec(b, *x);
                let ys = self.src_vec(b, *y);
                let mask = self.mask_vec(b, *mask);
                let scale = scale
                    .as_ref()
                    .map(|(al, be)| (self.scalar_val(b, al), self.scalar_val(b, be)));
                // SAFETY: record-time assertion — inputs never name `out`.
                let w = unsafe { self.out_mut(b, *out) };
                with_binop!(*op, Op => with_accum!(*accum, A =>
                    exec.run_ewise::<T, Op, A>(w, mask, *desc, xs, ys, scale)))
            }
            PlanNode::Apply {
                out,
                input,
                mask,
                desc,
                op,
                accum,
            } => {
                let input = self.src_vec(b, *input);
                let mask = self.mask_vec(b, *mask);
                // SAFETY: record-time assertion — `input` never names `out`.
                let o = unsafe { self.out_mut(b, *out) };
                with_unop!(*op, Op => with_accum!(*accum, A =>
                    exec.run_apply::<T, Op, A>(o, mask, *desc, input)))
            }
            PlanNode::Axpy { out, alpha, y } => {
                let ys = self.src_vec(b, *y);
                let alpha = self.scalar_val(b, alpha);
                // SAFETY: record-time assertion — `y` never names `out`.
                let x = unsafe { self.out_mut(b, *out) };
                exec.run_axpy::<T>(x, alpha, ys)
            }
            PlanNode::Lambda { out, mask, desc, f } => {
                let mask = self.mask_vec(b, *mask);
                // SAFETY: record-time assertions — zip sources never name
                // `out`; sole exclusive reference to the slot.
                let o = unsafe { self.out_mut(b, *out) };
                match f {
                    PlanFn::F0(f) => exec.run_lambda(o, mask, *desc, f),
                    PlanFn::F1(s, f) => {
                        let ss = self.src_vec(b, *s).as_slice();
                        exec.run_lambda(o, mask, *desc, move |i, t| f(i, t, ss[i]))
                    }
                    PlanFn::F2(srcs, f) => {
                        let s1 = self.src_vec(b, srcs[0]).as_slice();
                        let s2 = self.src_vec(b, srcs[1]).as_slice();
                        exec.run_lambda(o, mask, *desc, move |i, t| f(i, t, s1[i], s2[i]))
                    }
                    PlanFn::F3(srcs, f) => {
                        let s1 = self.src_vec(b, srcs[0]).as_slice();
                        let s2 = self.src_vec(b, srcs[1]).as_slice();
                        let s3 = self.src_vec(b, srcs[2]).as_slice();
                        exec.run_lambda(o, mask, *desc, move |i, t| f(i, t, s1[i], s2[i], s3[i]))
                    }
                }
            }
            PlanNode::Dot { sid, x, y, ring } => {
                let xs = self.src_vec(b, *x);
                let ys = self.src_vec(b, *y);
                scalars[*sid] = with_ring!(*ring, R => exec.run_dot::<T, R>(xs, ys))?;
                Ok(())
            }
            PlanNode::Reduce {
                sid,
                x,
                mask,
                desc,
                monoid,
            } => {
                let xs = self.src_vec(b, *x);
                let mask = self.mask_vec(b, *mask);
                scalars[*sid] =
                    with_monoid!(*monoid, M => exec.run_reduce::<T, M>(xs, mask, *desc))?;
                Ok(())
            }
        }
    }

    fn run_spmv_dot(
        &self,
        b: &Bindings<'_, T>,
        mxv: usize,
        dot: usize,
        scalars: &mut [T],
    ) -> Result<()> {
        let (out, a, x) = match &self.nodes[mxv] {
            PlanNode::Mxv { out, a, x, .. } => (*out, *a, *x),
            _ => unreachable!("fusion pass pairs SpmvDot with an mxv node"),
        };
        let (sid, dx, dy) = match &self.nodes[dot] {
            PlanNode::Dot { sid, x, y, .. } => (*sid, *x, *y),
            _ => unreachable!("fusion pass pairs SpmvDot with a dot node"),
        };
        let a = self.mat(b, a);
        let xs = self.src_vec(b, x);
        let product_on_left = dx.out_index() == Some(out);
        let other = if product_on_left { dy } else { dx };
        let w = if other.out_index() == Some(out) {
            None
        } else {
            Some(self.src_vec(b, other))
        };
        // SAFETY: neither `x` nor the dot's other operand names `out`
        // (record-time assertion / the `None` branch above).
        let y = unsafe { self.out_mut(b, out) };
        scalars[sid] = self
            .exec
            .run_spmv_dot::<T, PlusTimes>(y, a, xs, w, product_on_left)?;
        Ok(())
    }

    fn run_axpy_norm(
        &self,
        b: &Bindings<'_, T>,
        axpy: usize,
        dot: usize,
        scalars: &mut [T],
    ) -> Result<()> {
        let (out, alpha, y) = match &self.nodes[axpy] {
            PlanNode::Axpy { out, alpha, y } => (*out, self.scalar_val(b, alpha), *y),
            _ => unreachable!("fusion pass pairs AxpyNorm with an axpy node"),
        };
        let sid = match &self.nodes[dot] {
            PlanNode::Dot { sid, .. } => *sid,
            _ => unreachable!("fusion pass pairs AxpyNorm with a dot node"),
        };
        let ys = self.src_vec(b, y);
        // SAFETY: record-time assertion — `y` never names `out`.
        let x = unsafe { self.out_mut(b, out) };
        scalars[sid] = self.exec.run_axpy_norm::<T, PlusTimes>(x, alpha, ys)?;
        Ok(())
    }

    fn run_fused_loop(&self, b: &Bindings<'_, T>, run: &[usize]) -> Result<()> {
        let n = match &self.nodes[run[0]] {
            PlanNode::Ewise { out, .. }
            | PlanNode::Apply { out, .. }
            | PlanNode::Axpy { out, .. }
            | PlanNode::Lambda { out, .. } => self.outs[*out],
            _ => unreachable!("fusion pass only loops element-wise nodes"),
        };
        let mut elems: Vec<PlanElem<'_, T>> = Vec::with_capacity(run.len());
        for &i in run {
            match &self.nodes[i] {
                PlanNode::Ewise {
                    out,
                    x,
                    y,
                    op,
                    scale,
                    accum,
                    ..
                } => {
                    let xs = self.src_vec(b, *x).as_slice();
                    let ys = self.src_vec(b, *y).as_slice();
                    check_dims("ewise", "x vs output", n, xs.len())?;
                    check_dims("ewise", "y vs output", n, ys.len())?;
                    let scale = scale
                        .as_ref()
                        .map(|(al, be)| (self.scalar_val(b, al), self.scalar_val(b, be)));
                    // SAFETY: loop legality — outputs in a run are distinct
                    // and never read as another run member's input.
                    let w = unsafe { self.out_mut(b, *out) };
                    elems.push(PlanElem::Ewise {
                        w: UnsafeSlice::new(w.as_mut_slice()),
                        xs,
                        ys,
                        op: *op,
                        scale,
                        accum: *accum,
                    });
                }
                PlanNode::Apply {
                    out,
                    input,
                    op,
                    accum,
                    ..
                } => {
                    let xs = self.src_vec(b, *input).as_slice();
                    check_dims("apply", "input vs output", n, xs.len())?;
                    // SAFETY: see the Ewise arm.
                    let o = unsafe { self.out_mut(b, *out) };
                    elems.push(PlanElem::Apply {
                        out: UnsafeSlice::new(o.as_mut_slice()),
                        xs,
                        op: *op,
                        accum: *accum,
                    });
                }
                PlanNode::Axpy { out, alpha, y } => {
                    let ys = self.src_vec(b, *y).as_slice();
                    check_dims("axpy", "y vs x", n, ys.len())?;
                    let alpha = self.scalar_val(b, alpha);
                    // SAFETY: see the Ewise arm.
                    let x = unsafe { self.out_mut(b, *out) };
                    elems.push(PlanElem::Axpy {
                        x: UnsafeSlice::new(x.as_mut_slice()),
                        alpha,
                        ys,
                    });
                }
                PlanNode::Lambda { out, f, .. } => {
                    // SAFETY: see the Ewise arm.
                    let o = unsafe { self.out_mut(b, *out) };
                    let out = UnsafeSlice::new(o.as_mut_slice());
                    elems.push(match f {
                        PlanFn::F0(f) => PlanElem::Lambda0 { out, f },
                        PlanFn::F1(s, f) => {
                            let ss = self.src_vec(b, *s).as_slice();
                            check_dims("transform_zip", "src vs output", n, ss.len())?;
                            PlanElem::Lambda1 { out, ss, f }
                        }
                        PlanFn::F2(srcs, f) => {
                            let s1 = self.src_vec(b, srcs[0]).as_slice();
                            let s2 = self.src_vec(b, srcs[1]).as_slice();
                            check_dims("transform_zip", "src vs output", n, s1.len())?;
                            check_dims("transform_zip", "src vs output", n, s2.len())?;
                            PlanElem::Lambda2 { out, s1, s2, f }
                        }
                        PlanFn::F3(srcs, f) => {
                            let s1 = self.src_vec(b, srcs[0]).as_slice();
                            let s2 = self.src_vec(b, srcs[1]).as_slice();
                            let s3 = self.src_vec(b, srcs[2]).as_slice();
                            check_dims("transform_zip", "src vs output", n, s1.len())?;
                            check_dims("transform_zip", "src vs output", n, s2.len())?;
                            check_dims("transform_zip", "src vs output", n, s3.len())?;
                            PlanElem::Lambda3 { out, s1, s2, s3, f }
                        }
                    });
                }
                _ => unreachable!("fusion pass only loops element-wise nodes"),
            }
        }
        let elems = &elems;
        self.exec.run_for_each(n, move |i| {
            for e in elems {
                // SAFETY: each index is visited by exactly one invocation
                // and run outputs are pairwise disjoint.
                unsafe { e.apply(i) };
            }
        });
        Ok(())
    }
}

/// One element-wise op of a fused loop, pre-resolved for the hot loop —
/// the plan-side mirror of the pipeline's `Elem`, with identical
/// per-element arithmetic (the bit-identity invariant).
enum PlanElem<'s, T: Scalar> {
    Ewise {
        w: UnsafeSlice<'s, T>,
        xs: &'s [T],
        ys: &'s [T],
        op: BinOpTag,
        scale: Option<(T, T)>,
        accum: Option<BinOpTag>,
    },
    Apply {
        out: UnsafeSlice<'s, T>,
        xs: &'s [T],
        op: UnaryOpTag,
        accum: Option<BinOpTag>,
    },
    Axpy {
        x: UnsafeSlice<'s, T>,
        alpha: T,
        ys: &'s [T],
    },
    Lambda0 {
        out: UnsafeSlice<'s, T>,
        f: &'s F0<T>,
    },
    Lambda1 {
        out: UnsafeSlice<'s, T>,
        ss: &'s [T],
        f: &'s F1<T>,
    },
    Lambda2 {
        out: UnsafeSlice<'s, T>,
        s1: &'s [T],
        s2: &'s [T],
        f: &'s F2<T>,
    },
    Lambda3 {
        out: UnsafeSlice<'s, T>,
        s1: &'s [T],
        s2: &'s [T],
        s3: &'s [T],
        f: &'s F3<T>,
    },
}

impl<T: Scalar> PlanElem<'_, T> {
    /// Applies this op at index `i` — the same per-element arithmetic the
    /// eager kernel monomorphizes, so the fused loop is bit-identical.
    ///
    /// # Safety
    ///
    /// `i` must be in bounds and handed to at most one concurrent caller.
    #[inline(always)]
    unsafe fn apply(&self, i: usize) {
        match self {
            PlanElem::Ewise {
                w,
                xs,
                ys,
                op,
                scale,
                accum,
            } => {
                let (a, b) = match scale {
                    None => (xs[i], ys[i]),
                    Some((alpha, beta)) => (alpha.mul(xs[i]), beta.mul(ys[i])),
                };
                let v = op.apply(a, b);
                // SAFETY: forwarded contract.
                let slot = unsafe { w.get_mut(i) };
                match accum {
                    None => *slot = v,
                    Some(acc) => *slot = acc.apply(*slot, v),
                }
            }
            PlanElem::Apply { out, xs, op, accum } => {
                let v = op.apply(xs[i]);
                // SAFETY: forwarded contract.
                let slot = unsafe { out.get_mut(i) };
                match accum {
                    None => *slot = v,
                    Some(acc) => *slot = acc.apply(*slot, v),
                }
            }
            PlanElem::Axpy { x, alpha, ys } => {
                // SAFETY: forwarded contract.
                let slot = unsafe { x.get_mut(i) };
                *slot = slot.add(alpha.mul(ys[i]));
            }
            // SAFETY: forwarded contract.
            PlanElem::Lambda0 { out, f } => f(i, unsafe { out.get_mut(i) }),
            // SAFETY: forwarded contract.
            PlanElem::Lambda1 { out, ss, f } => f(i, unsafe { out.get_mut(i) }, ss[i]),
            PlanElem::Lambda2 { out, s1, s2, f } => {
                // SAFETY: forwarded contract.
                f(i, unsafe { out.get_mut(i) }, s1[i], s2[i])
            }
            PlanElem::Lambda3 { out, s1, s2, s3, f } => {
                // SAFETY: forwarded contract.
                f(i, unsafe { out.get_mut(i) }, s1[i], s2[i], s3[i])
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Bindings and results
// ---------------------------------------------------------------------------

/// Per-run operand table of a [`Plan`]: which concrete buffers fill each
/// slot, and the current scalar parameter values. Created by
/// [`Plan::bindings`]; all bindings borrow for the table's lifetime, so
/// the borrow checker statically rules out an input aliasing an output —
/// the invariant the fused loops rely on.
pub struct Bindings<'a, T: Scalar> {
    plan: u64,
    mats: Vec<Option<&'a CsrMatrix<T>>>,
    ins: Vec<Option<&'a Vector<T>>>,
    masks: Vec<Option<&'a Vector<bool>>>,
    outs: Vec<Option<*mut Vector<T>>>,
    params: Vec<T>,
    /// Holds the `'a` borrows of every bound output.
    _borrows: PhantomData<&'a mut Vector<T>>,
}

impl<'a, T: Scalar> Bindings<'a, T> {
    /// Binds a matrix slot.
    pub fn bind_matrix(&mut self, s: MatSlot, a: &'a CsrMatrix<T>) -> &mut Self {
        assert!(
            s.plan == self.plan && s.idx < self.mats.len(),
            "MatSlot does not belong to this plan"
        );
        self.mats[s.idx] = Some(a);
        self
    }

    /// Binds an input slot.
    pub fn bind_input(&mut self, s: InSlot, v: &'a Vector<T>) -> &mut Self {
        assert!(
            s.plan == self.plan && s.idx < self.ins.len(),
            "InSlot does not belong to this plan"
        );
        self.ins[s.idx] = Some(v);
        self
    }

    /// Binds a mask slot.
    pub fn bind_mask(&mut self, s: MaskSlot, m: &'a Vector<bool>) -> &mut Self {
        assert!(
            s.plan == self.plan && s.idx < self.masks.len(),
            "MaskSlot does not belong to this plan"
        );
        self.masks[s.idx] = Some(m);
        self
    }

    /// Binds an output slot (exclusively, for the table's lifetime).
    pub fn bind_output(&mut self, s: OutSlot, v: &'a mut Vector<T>) -> &mut Self {
        assert!(
            s.plan == self.plan && s.idx < self.outs.len(),
            "OutSlot does not belong to this plan"
        );
        self.outs[s.idx] = Some(v as *mut Vector<T>);
        self
    }

    /// Overrides a scalar parameter for subsequent runs.
    pub fn set(&mut self, p: ScalarParam, value: T) -> &mut Self {
        assert!(
            p.plan == self.plan && p.idx < self.params.len(),
            "ScalarParam does not belong to this plan"
        );
        self.params[p.idx] = value;
        self
    }
}

/// Scalar results of one plan replay, indexed by [`ScalarSlot`].
#[derive(Clone, Debug)]
pub struct PlanResults<T> {
    plan_id: u64,
    values: Vec<T>,
}

impl<T: Scalar> PlanResults<T> {
    /// The value a recorded scalar op produced.
    pub fn get(&self, s: ScalarSlot) -> T {
        self[s]
    }
}

impl<T: Scalar> std::ops::Index<ScalarSlot> for PlanResults<T> {
    type Output = T;
    fn index(&self, s: ScalarSlot) -> &T {
        assert!(
            s.plan == self.plan_id,
            "ScalarSlot does not belong to this plan"
        );
        &self.values[s.idx]
    }
}

// ---------------------------------------------------------------------------
// The plan cache
// ---------------------------------------------------------------------------

/// Process-wide `plan.cache.hit` / `plan.cache.miss` counters in the obs
/// registry, resolved once so a lookup costs a relaxed add, not a name
/// lookup under the registry lock.
fn cache_metrics() -> &'static (std::sync::Arc<obs::Counter>, std::sync::Arc<obs::Counter>) {
    static METRICS: std::sync::OnceLock<(
        std::sync::Arc<obs::Counter>,
        std::sync::Arc<obs::Counter>,
    )> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = obs::global();
        (
            reg.counter("plan.cache.hit"),
            reg.counter("plan.cache.miss"),
        )
    })
}

/// A concurrent memo table of compiled plans, keyed by `(plan type, u64)`.
///
/// The `u64` is caller-chosen (see [`plan_key`] and the module docs'
/// caching section): it must describe the op-graph shape and dimension
/// signature, never concrete buffers. The plan's scalar and backend types
/// join the key automatically, so one cache can hold plans of mixed types.
///
/// Hit/miss counters feed the serve-layer metering. The cache never
/// evicts — plan shapes per process are few (CG bodies, smoother sweeps,
/// per-matrix serve jobs), which is the premise of compile-once.
pub struct PlanCache {
    map: Mutex<HashMap<(TypeId, u64), Arc<dyn Any + Send + Sync>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> PlanCache {
        PlanCache {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The process-wide cache, for plans over unit backends (`Sequential`,
    /// `Parallel`). Plans for a specific [`Distributed`](crate::Distributed)
    /// cluster capture that cluster's handle; keep those in a cache owned
    /// next to the cluster (e.g. per worker) instead, or replays will run
    /// on whichever cluster compiled first.
    pub fn global() -> &'static PlanCache {
        static GLOBAL: OnceLock<PlanCache> = OnceLock::new();
        GLOBAL.get_or_init(PlanCache::new)
    }

    /// Returns the plan cached under `key`, or records, compiles and
    /// caches one via `build`. The `bool` is `true` on a cache hit (the
    /// builder was skipped).
    ///
    /// On a hit the caller never saw the builder, so operand slots come
    /// from the plan's accessors ([`Plan::matrix_slot`] & co.), which
    /// return them in declaration order.
    pub fn get_or_compile<T, E, F>(&self, key: u64, build: F) -> (Arc<Plan<T, E>>, bool)
    where
        T: Scalar,
        E: Exec,
        F: FnOnce() -> Plan<T, E>,
    {
        let _span = obs::span_enter("plan.cache", "plan");
        let tid = TypeId::of::<Plan<T, E>>();
        let mut map = self.map.lock().expect("plan cache lock poisoned");
        if let Some(entry) = map.get(&(tid, key)) {
            let plan = Arc::clone(entry)
                .downcast::<Plan<T, E>>()
                .expect("entry type matches its TypeId key");
            self.hits.fetch_add(1, Ordering::Relaxed);
            cache_metrics().0.inc();
            return (plan, true);
        }
        // Build under the lock: compiling is cheap (that is the point of
        // caching it), and this keeps one shape from compiling twice.
        let plan = Arc::new(build());
        map.insert((tid, key), Arc::clone(&plan) as Arc<dyn Any + Send + Sync>);
        self.misses.fetch_add(1, Ordering::Relaxed);
        cache_metrics().1.inc();
        (plan, false)
    }

    /// Number of lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to compile.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.map.lock().expect("plan cache lock poisoned").len()
    }

    /// Whether the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached plan (counters keep their values).
    pub fn clear(&self) {
        self.map.lock().expect("plan cache lock poisoned").clear();
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new()
    }
}

/// Hashes any `Hash` value into a [`PlanCache`] key with the same hasher
/// the structural digest uses. Key by shape — e.g.
/// `plan_key(&("cg-iteration", matrix_name, n))` — never by buffer
/// contents.
pub fn plan_key<K: Hash + ?Sized>(key: &K) -> u64 {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ctx, Ctx, Distributed, Parallel, Sequential};

    fn spd() -> CsrMatrix<f64> {
        CsrMatrix::from_triplets(
            4,
            4,
            &[
                (0, 0, 4.0),
                (0, 1, -1.0 / 3.0),
                (1, 0, -1.0 / 3.0),
                (1, 1, 4.1),
                (1, 2, -1.0 / 3.0),
                (2, 1, -1.0 / 3.0),
                (2, 2, 4.2),
                (2, 3, -1.0 / 3.0),
                (3, 2, -1.0 / 3.0),
                (3, 3, 4.3),
            ],
        )
        .expect("triplets are valid")
    }

    fn v(seed: f64) -> Vector<f64> {
        Vector::from_dense((0..4).map(|i| (i as f64 + seed) / 3.0 - 0.7).collect())
    }

    fn bits(v: &Vector<f64>) -> Vec<u64> {
        v.as_slice().iter().map(|x| x.to_bits()).collect()
    }

    /// Compile an ⟨p, Ap⟩ plan once, replay it with rebound vectors on a
    /// backend, and compare bitwise against the eager two-call path.
    fn check_spmv_dot_replay<E: Exec>(exec: Ctx<E>) {
        let a = spd();
        let mut pb = exec.plan::<f64>();
        let am = pb.matrix(4, 4);
        let ps = pb.input(4);
        let aps = pb.output(4);
        let ap = pb.mxv(am, ps).into(aps);
        let p_ap = pb.dot(ps, ap).result();
        let plan = pb.compile();
        assert_eq!(plan.schedule(), vec![PlannedStage::SpmvDot]);

        for seed in [0.0, 1.0, 2.5] {
            let p = v(seed);
            let mut got = Vector::zeros(4);
            let mut b = plan.bindings();
            b.bind_matrix(am, &a)
                .bind_input(ps, &p)
                .bind_output(aps, &mut got);
            let out = plan.run(&mut b).expect("replay succeeds");
            drop(b);

            let mut want = Vector::zeros(4);
            exec.mxv(&a, &p).into(&mut want).expect("eager mxv");
            let want_dot = exec.dot(&p, &want).compute().expect("eager dot");
            assert_eq!(bits(&got), bits(&want), "replayed SpMV diverged");
            assert_eq!(
                out[p_ap].to_bits(),
                want_dot.to_bits(),
                "replayed dot diverged"
            );
        }
    }

    #[test]
    fn spmv_dot_plan_replays_bitwise_on_all_backends() {
        check_spmv_dot_replay(ctx::<Sequential>());
        check_spmv_dot_replay(ctx::<Parallel>());
        check_spmv_dot_replay(Distributed::new(3).ctx());
    }

    #[test]
    fn axpy_norm_plan_with_mutated_param_matches_eager() {
        let exec = ctx::<Sequential>();
        let mut pb = exec.plan::<f64>();
        let xs = pb.output(4);
        let ys = pb.input(4);
        let alpha = pb.param(0.0);
        pb.axpy(xs, alpha, ys);
        let norm = pb.norm2_squared(xs);
        let plan = pb.compile();
        assert_eq!(plan.schedule(), vec![PlannedStage::AxpyNorm]);

        for a in [0.5, -1.25, 3.0] {
            let y = v(1.0);
            let mut got = v(2.0);
            let mut want = v(2.0);
            let mut b = plan.bindings();
            b.bind_output(xs, &mut got).bind_input(ys, &y).set(alpha, a);
            let out = plan.run(&mut b).expect("replay succeeds");
            drop(b);

            exec.axpy(&mut want, a, &y).expect("eager axpy");
            let want_norm = exec.norm2_squared(&want).expect("eager norm");
            assert_eq!(bits(&got), bits(&want));
            assert_eq!(out[norm].to_bits(), want_norm.to_bits());
        }
    }

    #[test]
    fn element_wise_plan_ops_fuse_into_one_loop_and_match_eager() {
        let exec = ctx::<Sequential>();
        let mut pb = exec.plan::<f64>();
        let xs = pb.input(4);
        let ys = pb.input(4);
        let beta = pb.param(1.0);
        let ws = pb.output(4);
        let us = pb.output(4);
        pb.ewise(xs, ys).scaled(2.0, beta).into(ws);
        pb.axpy(us, -0.5, ys);
        let plan = pb.compile();
        assert_eq!(plan.schedule(), vec![PlannedStage::FusedLoop(2)]);

        let x = v(0.0);
        let y = v(1.0);
        let mut w = Vector::zeros(4);
        let mut u = v(2.0);
        let mut b = plan.bindings();
        b.bind_input(xs, &x)
            .bind_input(ys, &y)
            .bind_output(ws, &mut w)
            .bind_output(us, &mut u)
            .set(beta, -3.0);
        plan.run(&mut b).expect("replay succeeds");
        drop(b);

        let mut want_w = Vector::zeros(4);
        exec.ewise(&x, &y)
            .scaled(2.0, -3.0)
            .into(&mut want_w)
            .expect("eager ewise");
        let mut want_u = v(2.0);
        exec.axpy(&mut want_u, -0.5, &y).expect("eager axpy");
        assert_eq!(bits(&w), bits(&want_w));
        assert_eq!(bits(&u), bits(&want_u));
    }

    #[test]
    fn masked_zip3_transform_matches_capturing_pipeline() {
        let exec = ctx::<Sequential>();
        let mask = Vector::<bool>::sparse_filled(4, vec![0, 2, 3], true).expect("mask builds");
        let r = v(0.5);
        let t = v(1.5);
        let d = Vector::from_dense(vec![4.0, 4.1, 4.2, 4.3]);

        let mut pb = exec.plan::<f64>();
        let xs = pb.output(4);
        let rs = pb.input(4);
        let ts = pb.input(4);
        let ds = pb.input(4);
        let ms = pb.mask(4);
        pb.transform(xs)
            .mask(ms)
            .structural()
            .zip(ts)
            .zip(rs)
            .zip(ds)
            .apply(|_i, xi, ti, ri, di| *xi = (ri - ti + *xi * di) / di);
        let plan = pb.compile();

        let mut got = v(3.0);
        let mut b = plan.bindings();
        b.bind_output(xs, &mut got)
            .bind_input(rs, &r)
            .bind_input(ts, &t)
            .bind_input(ds, &d)
            .bind_mask(ms, &mask);
        plan.run(&mut b).expect("replay succeeds");
        drop(b);

        // The pipeline-recorded equivalent captures its sources instead.
        let mut want = v(3.0);
        {
            let (rs, ts, ds) = (r.as_slice(), t.as_slice(), d.as_slice());
            let mut pl = exec.pipeline::<f64>();
            pl.transform(&mut want)
                .mask(&mask)
                .structural()
                .apply(move |i, xi| *xi = (rs[i] - ts[i] + *xi * ds[i]) / ds[i]);
            pl.finish().expect("pipeline runs");
        }
        assert_eq!(bits(&got), bits(&want));
    }

    #[test]
    fn replays_reflect_rebound_outputs_run_after_run() {
        let exec = ctx::<Sequential>();
        let mut pb = exec.plan::<f64>();
        let xs = pb.input(4);
        let os = pb.output(4);
        pb.apply(xs).op(AdditiveInverse).into(os);
        let plan = pb.compile();

        let x = v(1.0);
        let mut o1 = Vector::zeros(4);
        let mut o2 = Vector::zeros(4);
        let mut b = plan.bindings();
        b.bind_input(xs, &x).bind_output(os, &mut o1);
        plan.run(&mut b).expect("first run");
        b.bind_output(os, &mut o2);
        plan.run(&mut b).expect("second run");
        drop(b);
        assert_eq!(bits(&o1), bits(&o2));
        assert_eq!(o1.as_slice()[1], -x.as_slice()[1]);
    }

    #[test]
    fn plan_cache_hits_and_counters() {
        let cache = PlanCache::new();
        let exec = ctx::<Sequential>();
        let key = plan_key(&("negate", 4usize));
        let build = || {
            let mut pb = exec.plan::<f64>();
            let xs = pb.input(4);
            let os = pb.output(4);
            pb.apply(xs).op(AdditiveInverse).into(os);
            pb.compile()
        };
        let (first, hit1) = cache.get_or_compile(key, build);
        assert!(!hit1);
        let (second, hit2) = cache
            .get_or_compile::<f64, Sequential, _>(key, || panic!("cached entry must not rebuild"));
        assert!(hit2);
        assert_eq!(first.structural_hash(), second.structural_hash());
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));

        // A hit-side consumer binds through the plan's slot accessors.
        let x = v(0.0);
        let mut o = Vector::zeros(4);
        let mut b = second.bindings();
        b.bind_input(second.input_slot(0), &x)
            .bind_output(second.output_slot(0), &mut o);
        second.run(&mut b).expect("cached plan runs");
        drop(b);
        assert_eq!(o.as_slice()[2], -x.as_slice()[2]);

        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn structural_hash_tracks_shape_not_values() {
        let exec = ctx::<Sequential>();
        let build = |n: usize, alpha: f64| {
            let mut pb = exec.plan::<f64>();
            let xs = pb.output(n);
            let ys = pb.input(n);
            pb.axpy(xs, alpha, ys);
            pb.compile()
        };
        // Same shape (constants included — they select the kernel's
        // arithmetic) → same digest, across distinct builders.
        assert_eq!(
            build(4, 2.0).structural_hash(),
            build(4, 2.0).structural_hash()
        );
        // Different dimension or constant → different digest.
        assert_ne!(
            build(4, 2.0).structural_hash(),
            build(8, 2.0).structural_hash()
        );
        assert_ne!(
            build(4, 2.0).structural_hash(),
            build(4, 2.5).structural_hash()
        );
    }

    #[test]
    fn unbound_and_misdimensioned_slots_fail_validation() {
        let exec = ctx::<Sequential>();
        let mut pb = exec.plan::<f64>();
        let xs = pb.input(4);
        let os = pb.output(4);
        pb.apply(xs).into(os);
        let plan = pb.compile();

        let x = v(0.0);
        let mut o = Vector::zeros(4);

        let mut b = plan.bindings();
        b.bind_input(xs, &x);
        assert!(matches!(plan.run(&mut b), Err(GrbError::InvalidInput(_))));
        drop(b);

        let wrong = Vector::<f64>::zeros(5);
        let mut b = plan.bindings();
        b.bind_input(xs, &wrong).bind_output(os, &mut o);
        assert!(matches!(
            plan.run(&mut b),
            Err(GrbError::DimensionMismatch { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "InSlot does not belong to this plan")]
    fn foreign_slots_panic() {
        let exec = ctx::<Sequential>();
        let mut other = exec.plan::<f64>();
        let foreign = other.input(4);
        let mut pb = exec.plan::<f64>();
        let _ = pb.apply(foreign);
    }

    #[test]
    #[should_panic(expected = "zip source length must match the transform output")]
    fn zip_length_mismatch_panics_at_record_time() {
        let exec = ctx::<Sequential>();
        let mut pb = exec.plan::<f64>();
        let os = pb.output(4);
        let short = pb.input(3);
        let _ = pb.transform(os).zip(short);
    }
}
