//! Error handling for GraphBLAS operations.
//!
//! Mirrors the error discipline of the GraphBLAS C API: dimension mismatches,
//! out-of-range indices and malformed inputs are reported as values, never as
//! panics, so that callers (solvers, benchmark harnesses) can decide policy.

use std::fmt;

/// The error type returned by all fallible GraphBLAS operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrbError {
    /// Two containers participating in one operation have incompatible sizes.
    DimensionMismatch {
        /// The operation that was attempted, e.g. `"mxv"`.
        op: &'static str,
        /// Human-readable description of the mismatched operands.
        detail: String,
    },
    /// An index was outside the container bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The container length it was checked against.
        len: usize,
    },
    /// The input triplets/arrays do not describe a valid sparse container.
    InvalidInput(String),
    /// The requested operation is not supported in the requested configuration
    /// (e.g. a parallel transpose-`mxv` on a matrix with column conflicts).
    Unsupported(&'static str),
}

impl fmt::Display for GrbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrbError::DimensionMismatch { op, detail } => {
                write!(f, "dimension mismatch in {op}: {detail}")
            }
            GrbError::IndexOutOfBounds { index, len } => {
                write!(
                    f,
                    "index {index} out of bounds for container of length {len}"
                )
            }
            GrbError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            GrbError::Unsupported(msg) => write!(f, "unsupported operation: {msg}"),
        }
    }
}

impl std::error::Error for GrbError {}

/// Convenience alias used by every fallible API in this crate.
pub type Result<T> = std::result::Result<T, GrbError>;

/// Checks that two lengths agree, returning a [`GrbError::DimensionMismatch`]
/// with context otherwise.
pub(crate) fn check_dims(op: &'static str, what: &str, expected: usize, got: usize) -> Result<()> {
    if expected == got {
        Ok(())
    } else {
        Err(GrbError::DimensionMismatch {
            op,
            detail: format!("{what}: expected {expected}, got {got}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = GrbError::DimensionMismatch {
            op: "mxv",
            detail: "x: expected 4, got 3".into(),
        };
        assert_eq!(
            e.to_string(),
            "dimension mismatch in mxv: x: expected 4, got 3"
        );
    }

    #[test]
    fn display_index_out_of_bounds() {
        let e = GrbError::IndexOutOfBounds { index: 9, len: 4 };
        assert!(e.to_string().contains("index 9"));
        assert!(e.to_string().contains("length 4"));
    }

    #[test]
    fn check_dims_ok_and_err() {
        assert!(check_dims("mxv", "x", 4, 4).is_ok());
        let err = check_dims("mxv", "x", 4, 5).unwrap_err();
        match err {
            GrbError::DimensionMismatch { op, .. } => assert_eq!(op, "mxv"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&GrbError::Unsupported("x"));
    }
}
