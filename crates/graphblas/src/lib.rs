//! A GraphBLAS-style sparse linear algebra library in Rust.
//!
//! This crate implements the substrate the paper *"Effective implementation of
//! the High Performance Conjugate Gradient benchmark on GraphBLAS"* (Scolari &
//! Yzelman, IPDPS 2023) builds on: an ALP/GraphBLAS-like programming model
//! where
//!
//! * **containers are opaque** — [`Vector`] and [`CsrMatrix`] expose no
//!   storage details to algorithms, only algebraic operations;
//! * **operations are algebraic** — every primitive ([`mxv`], [`dot`],
//!   [`ewise`], [`reduce`], …) is parameterized by an algebraic structure
//!   ([`BinaryOp`], [`Monoid`], [`Semiring`]) expressed as a zero-sized Rust
//!   type, the analogue of ALP's C++ template metaprogramming: the operation
//!   monomorphizes and inlines to exactly the arithmetic the caller chose;
//! * **backends are swappable** — the same algorithm text runs sequentially
//!   ([`Sequential`]) or data-parallel via rayon ([`Parallel`]), mirroring
//!   ALP's compile-time backend selection (§IV of the paper);
//! * **descriptors pass domain information** — [`Descriptor::STRUCTURAL`]
//!   makes masked operations follow only the sparsity pattern of the mask and
//!   [`Descriptor::TRANSPOSE`] uses a matrix's transpose without
//!   materializing it, both of which the paper's HPCG port relies on
//!   (Listing 3 and §III-B).
//!
//! # Quickstart
//!
//! ```
//! use graphblas::{CsrMatrix, Vector, Descriptor, PlusTimes, Sequential, mxv};
//!
//! // A 2x2 matrix [[2, 0], [1, 3]] from (row, col, value) triplets.
//! let a = CsrMatrix::<f64>::from_triplets(2, 2, &[(0, 0, 2.0), (1, 0, 1.0), (1, 1, 3.0)]).unwrap();
//! let x = Vector::from_dense(vec![1.0, 2.0]);
//! let mut y = Vector::zeros(2);
//! mxv::<f64, PlusTimes, Sequential>(&mut y, None, Descriptor::DEFAULT, &a, &x, PlusTimes).unwrap();
//! assert_eq!(y.as_slice(), &[2.0, 7.0]);
//! ```
//!
//! # Module map
//!
//! | module | contents |
//! |--------|----------|
//! | [`ops`] | algebraic structures: binary/unary operators, monoids, semirings |
//! | [`container`] | [`Vector`] (dense or sparse pattern) and [`CsrMatrix`] |
//! | [`descriptor`] | operation descriptors (structural mask, transpose, …) |
//! | [`backend`] | [`Sequential`] and [`Parallel`] execution backends |
//! | [`exec`] | the primitives: `mxv`, `vxm`, `mxm`, `ewise*`, `apply`, `reduce`, `dot` |
//! | [`linop`] | matrix-free [`LinearOperator`] extension (paper §VII-A) |

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod algorithms;
pub mod backend;
pub mod container;
pub mod descriptor;
pub mod error;
pub mod exec;
pub mod io;
pub mod linop;
pub mod ops;
pub(crate) mod util;

pub use backend::{Backend, Parallel, Sequential};
pub use container::matrix::CsrMatrix;
pub use container::vector::Vector;
pub use descriptor::Descriptor;
pub use error::{GrbError, Result};
pub use exec::apply::{apply, ewise_lambda};
pub use exec::extract::{assign_vector, extract_submatrix, extract_vector};
pub use exec::ewise::{axpy_in_place, ewise, ewise_mul_add, waxpby};
pub use exec::mxm::mxm;
pub use exec::mxv::{mxv, mxv_accum, vxm};
pub use exec::reduce::{dot, norm2_squared, reduce};
pub use linop::{InjectionOperator, LinearOperator};
pub use ops::binary::{BinaryOp, Divide, First, Land, Lor, Max, Min, Minus, Plus, Second, Times};
pub use ops::monoid::Monoid;
pub use ops::scalar::Scalar;
pub use ops::semiring::{MaxTimes, MinPlus, PlusTimes, Semiring};
pub use ops::unary::{Abs, AdditiveInverse, Identity, MultiplicativeInverse, UnaryOp};
