//! A GraphBLAS-style sparse linear algebra library in Rust.
//!
//! This crate implements the substrate the paper *"Effective implementation of
//! the High Performance Conjugate Gradient benchmark on GraphBLAS"* (Scolari &
//! Yzelman, IPDPS 2023) builds on: an ALP/GraphBLAS-like programming model
//! where
//!
//! * **containers are opaque** — [`Vector`] and [`CsrMatrix`] expose no
//!   storage details to algorithms, only algebraic operations;
//! * **operations are algebraic** — every primitive is parameterized by an
//!   algebraic structure ([`BinaryOp`], [`Monoid`], [`Semiring`]) expressed
//!   as a zero-sized Rust type, the analogue of ALP's C++ template
//!   metaprogramming: the operation monomorphizes and inlines to exactly
//!   the arithmetic the caller chose;
//! * **execution is owned by a context** — a [`Ctx`] pairs the kernels with
//!   an execution configuration, mirroring ALP's launcher (§IV). The
//!   backend is either fixed at compile time (`ctx::<Sequential>()`,
//!   `ctx::<Parallel>()` — rayon data-parallel) or selected at runtime
//!   through [`DynCtx`] and [`BackendKind`] (`--backend seq|par`,
//!   `GRB_BACKEND=par`);
//! * **modifiers are builder state** — masks, the structural/transpose/
//!   inverted-mask descriptor flags and the optional accumulator chain
//!   fluently off each operation instead of riding along as positional
//!   arguments.
//!
//! # Quickstart
//!
//! ```
//! use graphblas::{ctx, CsrMatrix, Plus, Sequential, Vector};
//!
//! // A 2x2 matrix [[2, 0], [1, 3]] from (row, col, value) triplets.
//! let a = CsrMatrix::<f64>::from_triplets(2, 2, &[(0, 0, 2.0), (1, 0, 1.0), (1, 1, 3.0)]).unwrap();
//! let x = Vector::from_dense(vec![1.0, 2.0]);
//! let exec = ctx::<Sequential>();          // or ctx::<Parallel>()
//!
//! // y = A ⊕.⊗ x over the default arithmetic semiring.
//! let mut y = Vector::zeros(2);
//! exec.mxv(&a, &x).into(&mut y).unwrap();
//! assert_eq!(y.as_slice(), &[2.0, 7.0]);
//!
//! // Modifiers are fluent builder state: y += Aᵀ·x at masked rows only.
//! let mask = Vector::<bool>::sparse_filled(2, vec![1], true).unwrap();
//! exec.mxv(&a, &x).transpose().mask(&mask).structural().accum(Plus)
//!     .into(&mut y)
//!     .unwrap();
//! assert_eq!(y.as_slice(), &[2.0, 13.0]);
//!
//! // Reductions and element-wise kernels hang off the same context.
//! assert_eq!(exec.dot(&x, &y).compute().unwrap(), 28.0);
//! let mut w = Vector::zeros(2);
//! exec.ewise(&x, &y).scaled(2.0, -1.0).into(&mut w).unwrap();   // w = 2x − y
//! assert_eq!(w.as_slice(), &[0.0, -9.0]);
//! ```
//!
//! Runtime backend selection uses the same builders through [`DynCtx`]:
//!
//! ```
//! use graphblas::{BackendKind, DynCtx, Vector};
//!
//! // Honors GRB_BACKEND; a set-but-invalid value is an error.
//! let exec = DynCtx::from_env_or(BackendKind::Parallel).unwrap();
//! let x = Vector::from_dense(vec![3.0, 4.0]);
//! assert_eq!(exec.norm2_squared(&x).unwrap(), 25.0);
//! ```
//!
//! # Deferred execution (nonblocking pipelines)
//!
//! The same builders can *record* instead of executing: [`Ctx::pipeline`]
//! returns a [`Pipeline`] whose terminals push typed ops into a small
//! dependency graph, and `finish()` runs a fusion pass before executing —
//! an `mxv` feeding a `dot` becomes one SpMV-with-epilogue sweep, an `axpy`
//! feeding a norm one fused stream, adjacent element-wise stages one loop.
//! Results are bit-identical to the eager path on either backend.
//!
//! ```
//! use graphblas::{ctx, CsrMatrix, Sequential, Vector};
//!
//! let a = CsrMatrix::<f64>::from_triplets(2, 2, &[(0, 0, 2.0), (1, 1, 3.0)]).unwrap();
//! let p = Vector::from_dense(vec![1.0, 2.0]);
//! let mut ap = Vector::zeros(2);
//!
//! let mut pl = ctx::<Sequential>().pipeline();
//! let ap_h = pl.mxv(&a, &p).into(&mut ap);   // recorded, not yet executed
//! let p_ap = pl.dot(&p, ap_h).result();      // reads the recorded output
//! let out = pl.finish().unwrap();            // one fused SpMV+dot pass
//! assert_eq!(out[p_ap], 14.0);
//! ```
//!
//! When the same op graph runs many times (a CG iteration body, repeated
//! serve traffic), compile it **once** instead: [`Ctx::plan`] records the
//! graph against dimensioned slots, [`plan::PlanBuilder::compile`] freezes
//! the fused schedule into a reusable [`Plan`], and each replay just binds
//! fresh buffers and scalar parameters — same kernels, bit-identical
//! results, zero per-iteration recording or fusion cost. A [`PlanCache`]
//! memoizes compiled plans by shape. See the [`plan`] module docs.
//!
//! The pre-0.2 free functions (`mxv(&mut y, None, Descriptor::DEFAULT, …)`),
//! deprecated in 0.2, have been **removed** in 0.3 as promised; every entry
//! point now goes through a context or a pipeline.
//!
//! # Module map
//!
//! | module | contents |
//! |--------|----------|
//! | [`context`] | [`Ctx`], [`DynCtx`], [`BackendKind`] and the operation builders |
//! | [`pipeline`] | [`Pipeline`]: deferred op graphs recorded off a context |
//! | [`plan`] | [`Plan`]: compile-once/replay pipelines over slots, plus the [`PlanCache`] |
//! | [`fusion`] | the generic fusion pass `Pipeline::finish` and `PlanBuilder::compile` run |
//! | [`ops`] | algebraic structures: binary/unary operators, monoids, semirings, accumulation modes |
//! | [`container`] | [`Vector`] (dense or sparse pattern), [`SparseVector`] frontiers, [`CsrMatrix`] and the dual-orientation [`GraphMatrix`] |
//! | [`exec::sparse`] | direction-optimizing push/pull `mxv` on sparse frontiers ([`FrontierMode`]) |
//! | [`descriptor`] | operation descriptors (structural mask, transpose, …) |
//! | [`backend`] | [`Sequential`] and [`Parallel`] execution backends |
//! | [`backend::dist`] | [`Distributed`]: the whole surface on a simulated BSP cluster, costs recorded per superstep |
//! | [`exec`] | the kernels behind the builders (incl. the fused entry points) |
//! | [`linop`] | matrix-free [`LinearOperator`] extension (paper §VII-A) |

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod algorithms;
pub mod backend;
pub mod container;
pub mod context;
pub mod descriptor;
pub mod error;
pub mod exec;
pub mod fusion;
pub mod io;
pub mod linop;
pub mod ops;
pub mod pipeline;
pub mod plan;
pub(crate) mod util;

pub use backend::dist::{ClassCost, CostSummary, DistConfig, Distributed, ShardLayout};
pub use backend::{Backend, Parallel, Sequential};
pub use container::matrix::{CsrMatrix, GraphMatrix};
pub use container::vector::{SparseVector, Vector};
pub use context::{
    ctx, ctx_on, ApplyBuilder, BackendKind, Ctx, DotBuilder, DynCtx, EwiseBuilder, Exec,
    MxmBuilder, MxvBuilder, ReduceBuilder, SparseMxvBuilder, TransformBuilder, DEFAULT_DIST_NODES,
};
pub use descriptor::Descriptor;
pub use error::{GrbError, Result};
pub use fusion::PlannedStage;
pub use linop::{InjectionOperator, LinearOperator};
pub use ops::accum::{AccumMode, AccumWith, NoAccum};
pub use ops::binary::{BinaryOp, Divide, First, Land, Lor, Max, Min, Minus, Plus, Second, Times};
pub use ops::monoid::Monoid;
pub use ops::scalar::Scalar;
pub use ops::semiring::{MaxTimes, MinPlus, PlusTimes, Semiring};
pub use ops::unary::{Abs, AdditiveInverse, Identity, MultiplicativeInverse, UnaryOp};
pub use pipeline::{
    BinOpTag, MonoidTag, PipeInput, Pipeline, PipelineResults, RingTag, ScalarHandle, TaggedBinOp,
    TaggedMonoid, TaggedRing, TaggedUnaryOp, UnaryOpTag, VecHandle,
};
pub use plan::{
    plan_key, Bindings, InSlot, MaskSlot, MatSlot, OutSlot, Plan, PlanBuilder, PlanCache, PlanRead,
    PlanResults, PlanScalar, ScalarParam, ScalarSlot,
};

pub use exec::extract::{assign_vector, extract_submatrix, extract_vector};
pub use exec::sparse::{FrontierMode, PUSH_PULL_THRESHOLD};
